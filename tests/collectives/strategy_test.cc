/**
 * @file
 * Tests for the per-architecture weight-sync strategies.
 */

#include <gtest/gtest.h>

#include "collectives/strategy.h"
#include "hw/units.h"

namespace paichar::collectives {
namespace {

using workload::ArchType;
using workload::WorkloadFeatures;

WorkloadFeatures
features(double comm, double emb_comm = 0.0)
{
    WorkloadFeatures f;
    f.batch_size = 32;
    f.comm_bytes = comm;
    f.embedding_comm_bytes = emb_comm;
    return f;
}

/** Run a strategy end-to-end and return its completion time. */
double
runSync(ArchType arch, int cnodes, const WorkloadFeatures &f)
{
    sim::TopologyConfig tc;
    tc.cluster = hw::v100Testbed();
    bool spread = arch == ArchType::PsWorker;
    int gps = tc.cluster.server.gpus_per_server;
    tc.num_servers = spread ? cnodes : (cnodes + gps - 1) / gps;
    sim::ClusterSim cluster(tc);
    auto group = spread ? cluster.gpuGroupOnePerServer(cnodes)
                        : cluster.gpuGroup(cnodes);

    auto strategy = makeStrategy(arch);
    EXPECT_NE(strategy, nullptr);
    double end = -1.0;
    strategy->sync(cluster, group, f,
                   [&](sim::SimTime t) { end = t; });
    cluster.eventQueue().run();
    EXPECT_GE(end, 0.0);
    return end;
}

TEST(StrategyTest, FactoryCoversAllArchitectures)
{
    for (ArchType a : workload::kAllArchTypes) {
        auto s = makeStrategy(a);
        ASSERT_NE(s, nullptr) << toString(a);
        EXPECT_FALSE(s->name().empty());
    }
}

TEST(StrategyTest, NoSyncCompletesInstantly)
{
    EXPECT_DOUBLE_EQ(
        runSync(ArchType::OneWorkerOneGpu, 1, features(1e9)), 0.0);
    auto t = makeStrategy(ArchType::OneWorkerOneGpu)
                 ->traffic(features(1e9), 1);
    EXPECT_DOUBLE_EQ(t.total(), 0.0);
}

TEST(StrategyTest, LocalPsUsesPcie)
{
    // 1 GB over 10 GB/s * 0.7 per dedicated host link.
    double t = runSync(ArchType::OneWorkerMultiGpu, 4, features(1e9));
    EXPECT_NEAR(t, 1e9 / (10e9 * 0.7), 1e-9);
    auto tr = makeStrategy(ArchType::OneWorkerMultiGpu)
                  ->traffic(features(1e9), 4);
    EXPECT_DOUBLE_EQ(tr.pcie_bytes, 1e9);
    EXPECT_DOUBLE_EQ(tr.ethernet_bytes, 0.0);
}

TEST(StrategyTest, PsWorkerSerialLegs)
{
    // Sw over NIC then PCIe: Sw/(3.125 GB/s * 0.7) + Sw/(10 GB/s * 0.7).
    double sw = 1e9;
    double t = runSync(ArchType::PsWorker, 4, features(sw));
    double expected =
        sw / (25e9 / 8.0 * 0.7) + sw / (10e9 * 0.7);
    EXPECT_NEAR(t, expected, 1e-9);
    auto tr = makeStrategy(ArchType::PsWorker)->traffic(features(sw), 4);
    EXPECT_DOUBLE_EQ(tr.pcie_bytes, sw);
    EXPECT_DOUBLE_EQ(tr.ethernet_bytes, sw);
}

TEST(StrategyTest, LocalAllReduceIsRing)
{
    double sw = 1e9;
    double t = runSync(ArchType::AllReduceLocal, 8, features(sw));
    double rate = 50e9 * 0.7;
    EXPECT_NEAR(t, 5e-6 + RingCost::allReduce(8, sw, rate, 5e-6),
                1e-9);
    auto tr = makeStrategy(ArchType::AllReduceLocal)
                  ->traffic(features(sw), 8);
    EXPECT_NEAR(tr.nvlink_bytes, 2.0 * 7 / 8 * sw, 1.0);
}

TEST(StrategyTest, ClusterAllReduceAddsNicRing)
{
    double sw = 1e9;
    double local = runSync(ArchType::AllReduceLocal, 8, features(sw));
    double cluster = runSync(ArchType::AllReduceCluster, 16,
                             features(sw));
    EXPECT_GT(cluster, local);
    // Two servers: local rings + a 2-server NIC ring.
    double nic_rate = 25e9 / 8.0 * 0.7;
    double nvl_rate = 50e9 * 0.7;
    double expected = 5e-6 +
                      RingCost::allReduce(8, sw, nvl_rate, 5e-6) +
                      5e-6 +
                      RingCost::allReduce(2, sw, nic_rate, 5e-6);
    EXPECT_NEAR(cluster, expected, 1e-9);
}

TEST(StrategyTest, PearlSplitsDenseAndEmbedding)
{
    // 0.1 GB dense (ring) + 2.9 GB embedding (sparse exchange).
    double dense = 0.1e9, emb = 2.9e9;
    double t = runSync(ArchType::Pearl, 8,
                       features(dense + emb, emb));
    double rate = 50e9 * 0.7;
    double expected =
        5e-6 + RingCost::allReduce(8, dense, rate, 5e-6) + 5e-6 +
        RingCost::sparseExchange(8, emb * 8, rate, 6, 5e-6);
    EXPECT_NEAR(t, expected, 1e-9);

    // PEARL beats a full AllReduce of the same volume handily.
    double replicated =
        runSync(ArchType::AllReduceLocal, 8, features(dense + emb));
    EXPECT_LT(t, 0.5 * replicated);
}

TEST(StrategyTest, PearlWithAllDenseDegeneratesTowardAllReduce)
{
    double sw = 1e9;
    double pearl = runSync(ArchType::Pearl, 8, features(sw, 0.0));
    double arl = runSync(ArchType::AllReduceLocal, 8, features(sw));
    EXPECT_NEAR(pearl, arl, 2e-5); // one extra phase latency
}

} // namespace
} // namespace paichar::collectives
