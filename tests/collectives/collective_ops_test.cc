/**
 * @file
 * Tests for the event-driven collectives: timings must match the
 * closed-form ring costs, and degenerate groups complete immediately.
 */

#include <gtest/gtest.h>

#include "collectives/collective_ops.h"

namespace paichar::collectives {
namespace {

constexpr double kLat = 5e-6;

sim::TopologyConfig
config(int servers)
{
    sim::TopologyConfig tc;
    tc.cluster = hw::v100Testbed();
    tc.num_servers = servers;
    return tc;
}

double
runCollective(
    const std::function<void(CollectiveOps &, sim::ClusterSim &,
                             Done)> &launch,
    int servers = 1)
{
    sim::ClusterSim cluster(config(servers));
    CollectiveOps ops(cluster.eventQueue(), kLat);
    double end = -1.0;
    launch(ops, cluster, [&](sim::SimTime t) { end = t; });
    cluster.eventQueue().run();
    EXPECT_GE(end, 0.0) << "collective never completed";
    return end;
}

TEST(RingCostTest, ClosedForms)
{
    // n=8, 1 GB, 35 GB/s: allreduce = 14 * (lat + 1/8/35).
    EXPECT_NEAR(RingCost::allReduce(8, 1e9, 35e9, kLat),
                14 * (kLat + 1e9 / 8 / 35e9), 1e-12);
    EXPECT_NEAR(RingCost::allGather(8, 1e9, 35e9, kLat),
                7 * (kLat + 1e9 / 8 / 35e9), 1e-12);
    EXPECT_NEAR(RingCost::sparseExchange(8, 1e9, 35e9, 6, kLat),
                kLat + 1e9 / 8 / 6 / 35e9, 1e-12);
    EXPECT_DOUBLE_EQ(RingCost::allReduce(1, 1e9, 35e9, kLat), 0.0);
}

TEST(CollectiveOpsTest, RingAllReduceMatchesClosedForm)
{
    double t = runCollective([](CollectiveOps &ops,
                                sim::ClusterSim &cluster, Done done) {
        ops.ringAllReduce(cluster.gpuGroup(8), 1e9, std::move(done));
    });
    // Link rate = 50 GB/s * 0.7; plus the initial launch latency.
    double rate = 50e9 * 0.7;
    EXPECT_NEAR(t, kLat + RingCost::allReduce(8, 1e9, rate, kLat),
                1e-9);
}

TEST(CollectiveOpsTest, RingAllGatherMatchesClosedForm)
{
    double t = runCollective([](CollectiveOps &ops,
                                sim::ClusterSim &cluster, Done done) {
        ops.ringAllGather(cluster.gpuGroup(4), 2e9, std::move(done));
    });
    double rate = 50e9 * 0.7;
    EXPECT_NEAR(t, kLat + RingCost::allGather(4, 2e9, rate, kLat),
                1e-9);
}

TEST(CollectiveOpsTest, ReduceScatterEqualsAllGatherSchedule)
{
    auto launch_rs = [](CollectiveOps &ops, sim::ClusterSim &cluster,
                        Done done) {
        ops.ringReduceScatter(cluster.gpuGroup(4), 2e9,
                              std::move(done));
    };
    auto launch_ag = [](CollectiveOps &ops, sim::ClusterSim &cluster,
                        Done done) {
        ops.ringAllGather(cluster.gpuGroup(4), 2e9, std::move(done));
    };
    EXPECT_DOUBLE_EQ(runCollective(launch_rs),
                     runCollective(launch_ag));
}

TEST(CollectiveOpsTest, SparseAllToAllUsesAllMeshLinks)
{
    double t = runCollective([](CollectiveOps &ops,
                                sim::ClusterSim &cluster, Done done) {
        ops.sparseAllToAll(cluster.gpuGroup(8), 24e9, std::move(done));
    });
    double rate = 50e9 * 0.7;
    // 24 GB / 8 GPUs / 6 links each = 0.5 GB per link, one phase.
    EXPECT_NEAR(t, kLat + kLat + 0.5e9 / rate, 1e-9);
    EXPECT_NEAR(
        t, kLat + RingCost::sparseExchange(8, 24e9, rate, 6, kLat),
        1e-9);
}

TEST(CollectiveOpsTest, BroadcastSkipsTailEgress)
{
    sim::ClusterSim cluster(config(1));
    CollectiveOps ops(cluster.eventQueue(), kLat);
    double end = -1.0;
    auto group = cluster.gpuGroup(3);
    ops.broadcast(group, 1e9, [&](sim::SimTime t) { end = t; });
    cluster.eventQueue().run();
    double rate = 50e9 * 0.7;
    EXPECT_NEAR(end, 2 * kLat + 1e9 / rate, 1e-9);
    // The tail GPU's links never carried data.
    EXPECT_DOUBLE_EQ(group[2]->nvlinkOut()->totalAmount(), 0.0);
    EXPECT_DOUBLE_EQ(group[0]->nvlinkOut()->totalAmount(), 1e9);
}

TEST(CollectiveOpsTest, NicRingAcrossServers)
{
    double t = runCollective(
        [](CollectiveOps &ops, sim::ClusterSim &cluster, Done done) {
            std::vector<sim::Server *> servers;
            for (auto &s : cluster.servers())
                servers.push_back(s.get());
            ops.nicRingAllReduce(servers, 1e9, std::move(done));
        },
        4);
    double rate = 25e9 / 8.0 * 0.7;
    EXPECT_NEAR(t, kLat + RingCost::allReduce(4, 1e9, rate, kLat),
                1e-9);
}

TEST(CollectiveOpsTest, SingleGpuGroupCompletesImmediately)
{
    double t = runCollective([](CollectiveOps &ops,
                                sim::ClusterSim &cluster, Done done) {
        ops.ringAllReduce(cluster.gpuGroup(1), 1e9, std::move(done));
    });
    EXPECT_DOUBLE_EQ(t, 0.0);
}

TEST(CollectiveOpsTest, ZeroBytesCompletesImmediately)
{
    double t = runCollective([](CollectiveOps &ops,
                                sim::ClusterSim &cluster, Done done) {
        ops.ringAllReduce(cluster.gpuGroup(8), 0.0, std::move(done));
    });
    EXPECT_DOUBLE_EQ(t, 0.0);
}

/** Volume property: per-GPU ring traffic equals 2(n-1)/n * bytes. */
class RingVolumeProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(RingVolumeProperty, PerGpuTrafficMatchesTextbook)
{
    int n = GetParam();
    sim::ClusterSim cluster(config(1));
    CollectiveOps ops(cluster.eventQueue(), kLat);
    auto group = cluster.gpuGroup(n);
    bool finished = false;
    ops.ringAllReduce(group, 8e9, [&](sim::SimTime) {
        finished = true;
    });
    cluster.eventQueue().run();
    ASSERT_TRUE(finished);
    for (sim::Gpu *gpu : group) {
        EXPECT_NEAR(gpu->nvlinkOut()->totalAmount(),
                    2.0 * (n - 1) / n * 8e9, 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, RingVolumeProperty,
                         ::testing::Values(2, 3, 4, 8));

} // namespace
} // namespace paichar::collectives
