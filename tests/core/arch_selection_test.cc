/**
 * @file
 * Tests for the architecture advisor (Sec VI-A1).
 */

#include <gtest/gtest.h>

#include "core/arch_selection.h"
#include "hw/units.h"
#include "workload/model_zoo.h"

namespace paichar::core {
namespace {

using hw::kGB;
using hw::kMB;
using hw::kTFLOPs;
using workload::ArchType;
using workload::TrainingJob;

constexpr double kGpuMem = 32 * kGB; // V100-32G parameter budget

TrainingJob
jobFromModel(const workload::CaseStudyModel &m)
{
    TrainingJob job;
    job.arch = m.arch;
    job.num_cnodes = m.num_cnodes;
    job.features = m.features;
    return job;
}

TEST(ArchSelectionTest, EvaluatesAllSixArchitectures)
{
    AnalyticalModel model(hw::v100Testbed());
    ArchitectureAdvisor advisor(model, kGpuMem);
    auto options =
        advisor.evaluate(jobFromModel(workload::ModelZoo::resnet50()));
    EXPECT_EQ(options.size(), 6u);
    // Feasible options sort before infeasible ones, by throughput.
    for (size_t i = 1; i < options.size(); ++i) {
        if (options[i].feasible) {
            EXPECT_TRUE(options[i - 1].feasible);
        }
        if (options[i].feasible && options[i - 1].feasible) {
            EXPECT_GE(options[i - 1].throughput,
                      options[i].throughput);
        }
    }
}

TEST(ArchSelectionTest, SmallDenseModelPrefersAllReduce)
{
    // ResNet50 (204 MB) fits everywhere; NVLink AllReduce should win
    // over PS/Worker, as on the paper's testbed (Table IV).
    AnalyticalModel model(hw::v100Testbed());
    ArchitectureAdvisor advisor(model, kGpuMem);
    auto best =
        advisor.recommend(jobFromModel(workload::ModelZoo::resnet50()));
    EXPECT_TRUE(best.arch == ArchType::AllReduceLocal ||
                best.arch == ArchType::Pearl)
        << workload::toString(best.arch);
    EXPECT_TRUE(best.feasible);
}

TEST(ArchSelectionTest, HugeEmbeddingModelCannotReplicate)
{
    // Multi-Interests: 239 GB of embeddings. Replicated AllReduce is
    // infeasible ("the weight size supported by AllReduce is limited
    // by single GPU's memory", Sec III-A); PEARL shards it.
    AnalyticalModel model(hw::v100Testbed());
    ArchitectureAdvisor advisor(model, kGpuMem);
    auto options = advisor.evaluate(
        jobFromModel(workload::ModelZoo::multiInterests()));
    for (const auto &opt : options) {
        if (opt.arch == ArchType::AllReduceLocal ||
            opt.arch == ArchType::AllReduceCluster) {
            EXPECT_FALSE(opt.feasible) << workload::toString(opt.arch);
            EXPECT_FALSE(opt.reason.empty());
        }
        if (opt.arch == ArchType::PsWorker) {
            EXPECT_TRUE(opt.feasible);
        }
    }
    // 239.45 GB / 8 GPUs ~= 30 GB per shard: PEARL just fits at 32 GB.
    auto pearl = *std::find_if(options.begin(), options.end(),
                               [](const ArchOption &o) {
                                   return o.arch == ArchType::Pearl;
                               });
    EXPECT_TRUE(pearl.feasible);
    EXPECT_NEAR(pearl.per_gpu_weight_bytes,
                1.19 * kMB + 239.45 * kGB / 8, 1 * kMB);
}

TEST(ArchSelectionTest, GcnRecommendationIsPearl)
{
    // The paper trains GCN with PEARL (Table IV); the advisor should
    // agree: 54 GB embeddings rule out replication, and Ethernet
    // strangles PS/Worker.
    AnalyticalModel model(hw::v100Testbed());
    ArchitectureAdvisor advisor(model, kGpuMem);
    auto best = advisor.recommend(jobFromModel(workload::ModelZoo::gcn()));
    EXPECT_EQ(best.arch, ArchType::Pearl);
}

TEST(ArchSelectionTest, NoNvlinkRulesOutAllReduceFamily)
{
    hw::ClusterSpec spec = hw::v100Testbed();
    spec.server.has_nvlink = false;
    AnalyticalModel model(spec);
    ArchitectureAdvisor advisor(model, kGpuMem);
    auto options =
        advisor.evaluate(jobFromModel(workload::ModelZoo::resnet50()));
    for (const auto &opt : options) {
        if (opt.arch == ArchType::AllReduceLocal ||
            opt.arch == ArchType::AllReduceCluster ||
            opt.arch == ArchType::Pearl) {
            EXPECT_FALSE(opt.feasible);
            EXPECT_NE(opt.reason.find("NVLink"), std::string::npos);
        }
    }
    auto best =
        advisor.recommend(jobFromModel(workload::ModelZoo::resnet50()));
    EXPECT_TRUE(best.feasible);
}

TEST(ArchSelectionTest, RecommendationIsAlwaysFeasible)
{
    AnalyticalModel model(hw::v100Testbed());
    ArchitectureAdvisor advisor(model, 2 * kGB); // tiny GPU
    for (const auto &m : workload::ModelZoo::all()) {
        auto best = advisor.recommend(jobFromModel(m));
        EXPECT_TRUE(best.feasible) << m.name;
    }
}

TEST(ArchSelectionTest, ClampingRulesApplied)
{
    AnalyticalModel model(hw::v100Testbed());
    ArchitectureAdvisor advisor(model, kGpuMem);
    TrainingJob job =
        jobFromModel(workload::ModelZoo::multiInterests());
    job.num_cnodes = 32;
    auto options = advisor.evaluate(job);
    for (const auto &opt : options) {
        switch (opt.arch) {
          case ArchType::OneWorkerOneGpu:
            EXPECT_EQ(opt.num_cnodes, 1);
            break;
          case ArchType::OneWorkerMultiGpu:
          case ArchType::AllReduceLocal:
          case ArchType::Pearl:
            EXPECT_EQ(opt.num_cnodes, 8);
            break;
          case ArchType::PsWorker:
          case ArchType::AllReduceCluster:
            EXPECT_EQ(opt.num_cnodes, 32);
            break;
        }
    }
}

} // namespace
} // namespace paichar::core
