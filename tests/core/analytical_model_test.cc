/**
 * @file
 * Tests for the analytical model (Sec II-B, Eq 1-3, Table II medium
 * mapping, overlap and efficiency assumptions).
 */

#include <gtest/gtest.h>

#include "core/analytical_model.h"
#include "hw/units.h"

namespace paichar::core {
namespace {

using hw::kGB;
using hw::kMB;
using hw::kTFLOPs;
using workload::ArchType;
using workload::TrainingJob;

TrainingJob
makeJob(ArchType arch, int cnodes, double flops, double mem,
        double input, double comm)
{
    TrainingJob job;
    job.arch = arch;
    job.num_cnodes = cnodes;
    job.features.batch_size = 64;
    job.features.flop_count = flops;
    job.features.mem_access_bytes = mem;
    job.features.input_bytes = input;
    job.features.comm_bytes = comm;
    job.features.dense_weight_bytes = comm;
    return job;
}

TEST(AnalyticalModelTest, ResNet50PaperExample)
{
    // Sec IV-B: "ResNet50 involves 1.56T FLOPs, while the peak ... is
    // 15 TFLOPs; thus the compute-bound computation time is predicted
    // via 1.56 / (15 * 70%) = 0.149s".
    AnalyticalModel model(hw::v100Testbed());
    TrainingJob job = makeJob(ArchType::OneWorkerOneGpu, 1,
                              1.56 * kTFLOPs, 0, 0, 0);
    TimeBreakdown b = model.breakdown(job);
    EXPECT_NEAR(b.t_comp_flops, 1.56 / (15.0 * 0.7), 1e-4);
}

TEST(AnalyticalModelTest, ComponentFormulas)
{
    // On the Table I cluster with 70% efficiency:
    //   flops 7.7T / (11T * 0.7)   = 1.0 s
    //   mem   0.7TB / (1TB * 0.7)  = 1.0 s
    //   input 7GB / (10GB * 0.7)   = 1.0 s
    AnalyticalModel model(hw::paiCluster());
    TrainingJob job = makeJob(ArchType::OneWorkerOneGpu, 1,
                              7.7 * kTFLOPs, 0.7e12, 7 * kGB, 0);
    TimeBreakdown b = model.breakdown(job);
    EXPECT_NEAR(b.t_comp_flops, 1.0, 1e-12);
    EXPECT_NEAR(b.t_comp_mem, 1.0, 1e-12);
    EXPECT_NEAR(b.t_data, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(b.t_weight, 0.0);
    EXPECT_NEAR(b.total(), 3.0, 1e-12);
}

TEST(AnalyticalModelTest, Eq3TwentyOneTimesSpeedup)
{
    // Eq 3: a purely communication-bound PS/Worker job ported to
    // AllReduce-Local speeds up (Sw/25Gb70% + Sw/10GB70%) /
    // (Sw/50GB70%) = 21x.
    AnalyticalModel model(hw::paiCluster());
    TrainingJob ps =
        makeJob(ArchType::PsWorker, 16, 0, 0, 0, 1.0 * kGB);
    TrainingJob arl =
        makeJob(ArchType::AllReduceLocal, 8, 0, 0, 0, 1.0 * kGB);
    double ratio = model.breakdown(ps).t_weight /
                   model.breakdown(arl).t_weight;
    EXPECT_NEAR(ratio, 21.0, 1e-9);
}

TEST(AnalyticalModelTest, AllReduceClusterAtMost1Point2xOverPs)
{
    // Sec III-C1: PS -> AllReduce-Cluster comm speedup is bounded by
    // ~1.2x because Ethernet dominates both configurations.
    AnalyticalModel model(hw::paiCluster());
    TrainingJob ps =
        makeJob(ArchType::PsWorker, 16, 0, 0, 0, 1.0 * kGB);
    TrainingJob arc =
        makeJob(ArchType::AllReduceCluster, 16, 0, 0, 0, 1.0 * kGB);
    double ratio = model.breakdown(ps).t_weight /
                   model.breakdown(arc).t_weight;
    EXPECT_NEAR(ratio, 1.235, 0.001);
}

TEST(AnalyticalModelTest, WeightMediumMappingPerTableII)
{
    AnalyticalModel model(hw::paiCluster());
    auto legs = [&](ArchType a, int n) {
        return model.breakdown(makeJob(a, n, 0, 0, 0, 1.0 * kGB));
    };

    TimeBreakdown b = legs(ArchType::OneWorkerOneGpu, 1);
    EXPECT_DOUBLE_EQ(b.t_weight, 0.0);

    b = legs(ArchType::OneWorkerMultiGpu, 4);
    EXPECT_GT(b.t_weight_pcie, 0.0);
    EXPECT_DOUBLE_EQ(b.t_weight_ethernet, 0.0);
    EXPECT_DOUBLE_EQ(b.t_weight_nvlink, 0.0);

    b = legs(ArchType::PsWorker, 16);
    EXPECT_GT(b.t_weight_ethernet, 0.0);
    EXPECT_GT(b.t_weight_pcie, 0.0);
    EXPECT_DOUBLE_EQ(b.t_weight_nvlink, 0.0);

    b = legs(ArchType::AllReduceLocal, 8);
    EXPECT_GT(b.t_weight_nvlink, 0.0);
    EXPECT_DOUBLE_EQ(b.t_weight_ethernet, 0.0);
    EXPECT_DOUBLE_EQ(b.t_weight_pcie, 0.0);

    b = legs(ArchType::AllReduceCluster, 16);
    EXPECT_GT(b.t_weight_ethernet, 0.0);
    EXPECT_GT(b.t_weight_nvlink, 0.0);
    EXPECT_DOUBLE_EQ(b.t_weight_pcie, 0.0);

    b = legs(ArchType::Pearl, 8);
    EXPECT_GT(b.t_weight_nvlink, 0.0);
    EXPECT_DOUBLE_EQ(b.t_weight_ethernet, 0.0);
}

TEST(AnalyticalModelTest, PcieSharingSlowsColocatedReplicas)
{
    AnalyticalModel model(hw::paiCluster());
    TrainingJob one = makeJob(ArchType::OneWorkerOneGpu, 1, 0, 0,
                              700 * kMB, 0);
    TrainingJob eight = makeJob(ArchType::AllReduceLocal, 8, 0, 0,
                                700 * kMB, 0);
    EXPECT_NEAR(model.breakdown(eight).t_data /
                    model.breakdown(one).t_data,
                8.0, 1e-9);
}

TEST(AnalyticalModelTest, ColocatedReplicas)
{
    auto spec = hw::paiCluster();
    auto n = [&](ArchType a, int c) {
        TrainingJob j = makeJob(a, c, 1, 1, 1, 1);
        return AnalyticalModel::colocatedReplicas(j, spec);
    };
    EXPECT_EQ(n(ArchType::OneWorkerOneGpu, 1), 1);
    EXPECT_EQ(n(ArchType::OneWorkerMultiGpu, 4), 4);
    EXPECT_EQ(n(ArchType::PsWorker, 64), 1);
    EXPECT_EQ(n(ArchType::AllReduceLocal, 8), 8);
    EXPECT_EQ(n(ArchType::AllReduceCluster, 64), 8);
    EXPECT_EQ(n(ArchType::Pearl, 4), 4);
}

TEST(AnalyticalModelTest, OverlapModes)
{
    AnalyticalModel model(hw::paiCluster());
    TrainingJob job = makeJob(ArchType::PsWorker, 8, 7.7 * kTFLOPs,
                              0.35e12, 3.5 * kGB, 1.0 * kGB);
    TimeBreakdown b = model.breakdown(job);
    EXPECT_NEAR(b.total(OverlapMode::NonOverlap),
                b.t_data + b.compute() + b.t_weight, 1e-12);
    EXPECT_NEAR(b.total(OverlapMode::IdealOverlap),
                std::max({b.t_data, b.compute(), b.t_weight}), 1e-12);
    EXPECT_LE(b.total(OverlapMode::IdealOverlap),
              b.total(OverlapMode::NonOverlap));
}

TEST(AnalyticalModelTest, ThroughputEq2)
{
    AnalyticalModel model(hw::paiCluster());
    TrainingJob job = makeJob(ArchType::PsWorker, 10, 7.7 * kTFLOPs,
                              0, 0, 0);
    // step time = 1s; throughput = 10/1 * 64.
    EXPECT_NEAR(model.throughput(job), 640.0, 1e-9);
}

TEST(AnalyticalModelTest, EfficiencyKnobsShiftWeightShare)
{
    // Fig 15: lowering communication efficiency raises the weight-
    // traffic share; lowering computation efficiency lowers it.
    TrainingJob job = makeJob(ArchType::PsWorker, 16, 3 * kTFLOPs,
                              0.2e12, 100 * kMB, 500 * kMB);
    AnalyticalModel base(hw::paiCluster());
    AnalyticalModel low_comm(hw::paiCluster(),
                             EfficiencyAssumption{0.7, 0.5});
    AnalyticalModel low_comp(hw::paiCluster(),
                             EfficiencyAssumption{0.25, 0.7});
    double f0 =
        base.breakdown(job).fraction(Component::WeightTraffic);
    double f_comm =
        low_comm.breakdown(job).fraction(Component::WeightTraffic);
    double f_comp =
        low_comp.breakdown(job).fraction(Component::WeightTraffic);
    EXPECT_GT(f_comm, f0);
    EXPECT_LT(f_comp, f0);
}

TEST(AnalyticalModelTest, RingAwareModeAddsTextbookFactor)
{
    AnalyticalModel model(hw::paiCluster());
    AnalyticalModel ring(hw::paiCluster());
    ring.setRingAware(true);
    EXPECT_FALSE(model.ringAware());
    EXPECT_TRUE(ring.ringAware());

    TrainingJob arl =
        makeJob(ArchType::AllReduceLocal, 8, 0, 0, 0, 1.0 * kGB);
    EXPECT_NEAR(ring.breakdown(arl).t_weight /
                    model.breakdown(arl).t_weight,
                2.0 * 7.0 / 8.0, 1e-12);
    // PS/Worker legs are unaffected.
    TrainingJob ps = makeJob(ArchType::PsWorker, 16, 0, 0, 0,
                             1.0 * kGB);
    EXPECT_DOUBLE_EQ(ring.breakdown(ps).t_weight,
                     model.breakdown(ps).t_weight);
    // A single GPU has no ring.
    TrainingJob solo =
        makeJob(ArchType::AllReduceLocal, 1, 0, 0, 0, 1.0 * kGB);
    EXPECT_DOUBLE_EQ(ring.breakdown(solo).t_weight,
                     model.breakdown(solo).t_weight);
}

TEST(AnalyticalModelTest, ComponentAndHwNamesAreStable)
{
    EXPECT_EQ(toString(Component::DataIo), "Data I/O");
    EXPECT_EQ(toString(Component::WeightTraffic), "Weights traffic");
    EXPECT_EQ(toString(Component::ComputeFlops),
              "Comp.(compute-bound)");
    EXPECT_EQ(toString(Component::ComputeMemory),
              "Comp.(memory-bound)");
    EXPECT_EQ(toString(HwComponent::NvLink), "NVLink");
    EXPECT_EQ(toString(HwComponent::GpuMemory), "GPU_memory");
}

/** Property: for every architecture, fractions are a partition. */
class BreakdownProperty
    : public ::testing::TestWithParam<workload::ArchType>
{
};

TEST_P(BreakdownProperty, FractionsPartitionUnity)
{
    AnalyticalModel model(hw::paiCluster());
    TrainingJob job = makeJob(GetParam(), 8, 2 * kTFLOPs, 0.1e12,
                              200 * kMB, 300 * kMB);
    TimeBreakdown b = model.breakdown(job);

    double comp_sum = 0.0, hw_sum = 0.0;
    for (Component c : kAllComponents) {
        double f = b.fraction(c);
        ASSERT_GE(f, 0.0);
        ASSERT_LE(f, 1.0);
        comp_sum += f;
    }
    for (HwComponent h : kAllHwComponents)
        hw_sum += b.hwFraction(h);
    EXPECT_NEAR(comp_sum, 1.0, 1e-12);
    EXPECT_NEAR(hw_sum, 1.0, 1e-12);
    // Weight legs decompose Tw exactly.
    EXPECT_NEAR(b.t_weight_ethernet + b.t_weight_pcie +
                    b.t_weight_nvlink,
                b.t_weight, 1e-15);
}

INSTANTIATE_TEST_SUITE_P(
    AllArchs, BreakdownProperty,
    ::testing::ValuesIn(std::begin(workload::kAllArchTypes),
                        std::end(workload::kAllArchTypes)),
    [](const auto &info) {
        std::string s = workload::toString(info.param);
        std::string out;
        for (char c : s)
            if (std::isalnum(static_cast<unsigned char>(c)))
                out += c;
        return out;
    });

} // namespace
} // namespace paichar::core
