/**
 * @file
 * Tests for the hardware-evolution sweep (Table III / Fig 11).
 */

#include <gtest/gtest.h>

#include "core/sweep.h"
#include "hw/units.h"

namespace paichar::core {
namespace {

using hw::kGB;
using hw::kMB;
using hw::kTFLOPs;
using workload::ArchType;
using workload::TrainingJob;

TrainingJob
makeJob(ArchType arch, int cnodes, double flops, double mem,
        double input, double comm)
{
    TrainingJob job;
    job.arch = arch;
    job.num_cnodes = cnodes;
    job.features.batch_size = 64;
    job.features.flop_count = flops;
    job.features.mem_access_bytes = mem;
    job.features.input_bytes = input;
    job.features.comm_bytes = comm;
    job.features.dense_weight_bytes = comm;
    return job;
}

TEST(SweepTest, ComputeBoundJobTracksFlopsExactly)
{
    // A pure compute job speeds up exactly by the FLOPs ratio.
    HardwareSweep sweep(hw::paiCluster());
    std::vector<TrainingJob> jobs{
        makeJob(ArchType::OneWorkerOneGpu, 1, 5 * kTFLOPs, 0, 0, 0)};
    EXPECT_NEAR(sweep.avgSpeedup(jobs, hw::Resource::GpuFlops, 22.0),
                2.0, 1e-12);
    EXPECT_NEAR(sweep.avgSpeedup(jobs, hw::Resource::GpuFlops, 5.5),
                0.5, 1e-12);
}

TEST(SweepTest, IrrelevantResourceIsNeutral)
{
    HardwareSweep sweep(hw::paiCluster());
    std::vector<TrainingJob> jobs{
        makeJob(ArchType::OneWorkerOneGpu, 1, 5 * kTFLOPs, 0, 0, 0)};
    EXPECT_NEAR(sweep.avgSpeedup(jobs, hw::Resource::Ethernet, 100.0),
                1.0, 1e-12);
    EXPECT_NEAR(sweep.avgSpeedup(jobs, hw::Resource::GpuMemory, 4.0),
                1.0, 1e-12);
}

TEST(SweepTest, PsJobEthernetUpgradeMatchesClosedForm)
{
    // Pure comm PS job: T = Sw/eth + Sw/pcie. Quadrupling Ethernet:
    // speedup = (1/2.1875 + 1/7) / (1/8.75 + 1/7).
    HardwareSweep sweep(hw::paiCluster());
    std::vector<TrainingJob> jobs{
        makeJob(ArchType::PsWorker, 16, 0, 0, 0, 1 * kGB)};
    double expected = (1.0 / 2.1875e9 + 1.0 / 7e9) /
                      (1.0 / 8.75e9 + 1.0 / 7e9);
    EXPECT_NEAR(
        sweep.avgSpeedup(jobs, hw::Resource::Ethernet, 100.0),
        expected, 1e-9);
}

TEST(SweepTest, RunProducesTableIiiGrid)
{
    HardwareSweep sweep(hw::paiCluster());
    std::vector<TrainingJob> jobs{
        makeJob(ArchType::PsWorker, 16, 1 * kTFLOPs, 0.1e12,
                100 * kMB, 500 * kMB),
        makeJob(ArchType::PsWorker, 4, 2 * kTFLOPs, 0.2e12, 50 * kMB,
                100 * kMB),
    };
    auto series = sweep.run(jobs);
    ASSERT_EQ(series.size(), 4u);
    EXPECT_EQ(series[0].resource, hw::Resource::Ethernet);
    EXPECT_EQ(series[0].points.size(), 3u);
    EXPECT_EQ(series[1].resource, hw::Resource::Pcie);
    EXPECT_EQ(series[1].points.size(), 2u);
    EXPECT_EQ(series[2].points.size(), 4u);
    EXPECT_EQ(series[3].points.size(), 3u);

    // Normalized x values match Table III over Table I.
    EXPECT_DOUBLE_EQ(series[0].points[1].normalized, 1.0); // 25 Gbps
    EXPECT_DOUBLE_EQ(series[0].points[2].normalized, 4.0);
    EXPECT_DOUBLE_EQ(series[3].points[2].normalized, 4.0); // 4 TB/s

    // More bandwidth never hurts within a series (monotone for these
    // jobs), and the base point is exactly 1.0 where it appears.
    for (const auto &s : series) {
        for (size_t i = 1; i < s.points.size(); ++i)
            EXPECT_GE(s.points[i].avg_speedup + 1e-12,
                      s.points[i - 1].avg_speedup);
        for (const auto &p : s.points) {
            if (p.normalized == 1.0) {
                EXPECT_NEAR(p.avg_speedup, 1.0, 1e-12);
            }
        }
    }
}

TEST(SweepTest, PsPopulationMostSensitiveToEthernet)
{
    // Fig 11(c): for comm-heavy PS jobs, Ethernet dominates the
    // sensitivity ranking at the top variation of each resource.
    HardwareSweep sweep(hw::paiCluster());
    std::vector<TrainingJob> jobs{
        makeJob(ArchType::PsWorker, 32, 1 * kTFLOPs, 0.05e12,
                50 * kMB, 2 * kGB),
        makeJob(ArchType::PsWorker, 16, 0.5 * kTFLOPs, 0.1e12,
                20 * kMB, 1 * kGB),
    };
    double eth = sweep.avgSpeedup(jobs, hw::Resource::Ethernet, 100.0);
    double pcie = sweep.avgSpeedup(jobs, hw::Resource::Pcie, 50.0);
    double fl = sweep.avgSpeedup(jobs, hw::Resource::GpuFlops, 64.0);
    double mem = sweep.avgSpeedup(jobs, hw::Resource::GpuMemory, 4.0);
    EXPECT_GT(eth, pcie);
    EXPECT_GT(eth, fl);
    EXPECT_GT(eth, mem);
}

} // namespace
} // namespace paichar::core
