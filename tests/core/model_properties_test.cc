/**
 * @file
 * Property tests for the analytical model: the scaling laws implied
 * by Eq 1-2 must hold for every architecture and for arbitrary
 * demand vectors.
 */

#include <gtest/gtest.h>

#include "core/analytical_model.h"
#include "core/projection.h"
#include "core/sweep.h"
#include "hw/units.h"
#include "stats/rng.h"

namespace paichar::core {
namespace {

using workload::ArchType;
using workload::TrainingJob;

TrainingJob
randomJob(stats::Rng &rng, ArchType arch)
{
    TrainingJob job;
    job.arch = arch;
    job.num_cnodes =
        arch == ArchType::OneWorkerOneGpu
            ? 1
            : static_cast<int>(rng.uniformInt(2, 64));
    if (arch == ArchType::OneWorkerMultiGpu ||
        arch == ArchType::AllReduceLocal || arch == ArchType::Pearl) {
        job.num_cnodes = std::min(job.num_cnodes, 8);
    }
    job.features.batch_size = rng.uniform(16, 2048);
    job.features.flop_count = rng.uniform(1e10, 1e13);
    job.features.mem_access_bytes = rng.uniform(1e8, 1e12);
    job.features.input_bytes = rng.uniform(1e4, 1e9);
    job.features.comm_bytes =
        arch == ArchType::OneWorkerOneGpu ? 0.0
                                          : rng.uniform(1e6, 3e9);
    job.features.embedding_comm_bytes =
        job.features.comm_bytes * rng.uniform(0.0, 1.0);
    job.features.dense_weight_bytes = rng.uniform(1e6, 1e9);
    return job;
}

class ModelScalingProperty
    : public ::testing::TestWithParam<workload::ArchType>
{
  protected:
    AnalyticalModel model_{hw::paiCluster()};
};

TEST_P(ModelScalingProperty, ComponentsLinearInTheirDemand)
{
    stats::Rng rng(101);
    for (int trial = 0; trial < 50; ++trial) {
        TrainingJob job = randomJob(rng, GetParam());
        TimeBreakdown b = model_.breakdown(job);

        TrainingJob j2 = job;
        j2.features.comm_bytes *= 2.0;
        j2.features.embedding_comm_bytes *= 2.0;
        EXPECT_NEAR(model_.breakdown(j2).t_weight, 2.0 * b.t_weight,
                    1e-9 * (b.t_weight + 1e-30));

        j2 = job;
        j2.features.flop_count *= 3.0;
        EXPECT_NEAR(model_.breakdown(j2).t_comp_flops,
                    3.0 * b.t_comp_flops, 1e-9 * b.t_comp_flops);

        j2 = job;
        j2.features.input_bytes *= 5.0;
        EXPECT_NEAR(model_.breakdown(j2).t_data, 5.0 * b.t_data,
                    1e-9 * b.t_data);
    }
}

TEST_P(ModelScalingProperty, UniformDemandScalingScalesTotal)
{
    stats::Rng rng(103);
    for (int trial = 0; trial < 50; ++trial) {
        TrainingJob job = randomJob(rng, GetParam());
        double k = rng.uniform(0.1, 10.0);
        TrainingJob scaled = job;
        scaled.features.flop_count *= k;
        scaled.features.mem_access_bytes *= k;
        scaled.features.input_bytes *= k;
        scaled.features.comm_bytes *= k;
        scaled.features.embedding_comm_bytes *= k;
        for (OverlapMode mode :
             {OverlapMode::NonOverlap, OverlapMode::IdealOverlap}) {
            EXPECT_NEAR(model_.stepTime(scaled, mode),
                        k * model_.stepTime(job, mode),
                        1e-9 * k * model_.stepTime(job, mode));
        }
    }
}

TEST_P(ModelScalingProperty, EfficiencyScalesTimesInversely)
{
    stats::Rng rng(107);
    AnalyticalModel full(hw::paiCluster(),
                         EfficiencyAssumption{1.0, 1.0});
    AnalyticalModel half(hw::paiCluster(),
                         EfficiencyAssumption{0.5, 0.5});
    for (int trial = 0; trial < 50; ++trial) {
        TrainingJob job = randomJob(rng, GetParam());
        EXPECT_NEAR(half.stepTime(job), 2.0 * full.stepTime(job),
                    1e-9 * full.stepTime(job));
    }
}

TEST_P(ModelScalingProperty, ThroughputLinearInBatch)
{
    stats::Rng rng(109);
    for (int trial = 0; trial < 20; ++trial) {
        TrainingJob job = randomJob(rng, GetParam());
        TrainingJob big = job;
        big.features.batch_size *= 4.0;
        // Step time ignores batch (demands already reflect it);
        // Eq 2's throughput is linear in it.
        EXPECT_DOUBLE_EQ(model_.stepTime(big), model_.stepTime(job));
        EXPECT_NEAR(model_.throughput(big),
                    4.0 * model_.throughput(job),
                    1e-9 * model_.throughput(job));
    }
}

TEST_P(ModelScalingProperty, ProjectionInvariantToDemandScale)
{
    if (GetParam() != ArchType::PsWorker)
        GTEST_SKIP() << "projection applies to PS/Worker jobs";
    stats::Rng rng(113);
    ArchitectureProjector proj(model_);
    for (int trial = 0; trial < 50; ++trial) {
        TrainingJob job = randomJob(rng, ArchType::PsWorker);
        TrainingJob scaled = job;
        double k = rng.uniform(0.2, 5.0);
        scaled.features.flop_count *= k;
        scaled.features.mem_access_bytes *= k;
        scaled.features.input_bytes *= k;
        scaled.features.comm_bytes *= k;
        scaled.features.embedding_comm_bytes *= k;
        auto r1 = proj.project(job, ArchType::AllReduceLocal);
        auto r2 = proj.project(scaled, ArchType::AllReduceLocal);
        EXPECT_NEAR(r1.single_node_speedup, r2.single_node_speedup,
                    1e-9 * r1.single_node_speedup);
        EXPECT_NEAR(r1.throughput_speedup, r2.throughput_speedup,
                    1e-9 * r1.throughput_speedup);
    }
}

TEST_P(ModelScalingProperty, MoreBandwidthNeverSlows)
{
    stats::Rng rng(127);
    HardwareSweep sweep(hw::paiCluster());
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<TrainingJob> jobs{randomJob(rng, GetParam())};
        for (auto [r, v] :
             {std::pair{hw::Resource::Ethernet, 100.0},
              std::pair{hw::Resource::Pcie, 50.0},
              std::pair{hw::Resource::GpuFlops, 64.0},
              std::pair{hw::Resource::GpuMemory, 4.0}}) {
            EXPECT_GE(sweep.avgSpeedup(jobs, r, v), 1.0 - 1e-12);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllArchs, ModelScalingProperty,
    ::testing::ValuesIn(std::begin(workload::kAllArchTypes),
                        std::end(workload::kAllArchTypes)),
    [](const auto &info) {
        std::string s = workload::toString(info.param);
        std::string out;
        for (char c : s) {
            if (std::isalnum(static_cast<unsigned char>(c)))
                out += c;
        }
        return out;
    });

} // namespace
} // namespace paichar::core
