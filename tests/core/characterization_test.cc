/**
 * @file
 * Tests for the cluster-level characterizer (Figs 5-8) on a small
 * hand-built population.
 */

#include <gtest/gtest.h>

#include "core/characterization.h"
#include "hw/units.h"

namespace paichar::core {
namespace {

using hw::kGB;
using hw::kMB;
using hw::kTFLOPs;
using workload::ArchType;
using workload::TrainingJob;

TrainingJob
job(int64_t id, ArchType arch, int cnodes, double flops, double input,
    double comm, double weights)
{
    TrainingJob j;
    j.id = id;
    j.arch = arch;
    j.num_cnodes = cnodes;
    j.features.batch_size = 32;
    j.features.flop_count = flops;
    j.features.mem_access_bytes = 0.0;
    j.features.input_bytes = input;
    j.features.comm_bytes = comm;
    j.features.dense_weight_bytes = weights;
    return j;
}

std::vector<TrainingJob>
population()
{
    return {
        job(0, ArchType::OneWorkerOneGpu, 1, 1 * kTFLOPs, 100 * kMB,
            0, 50 * kMB),
        job(1, ArchType::OneWorkerOneGpu, 1, 2 * kTFLOPs, 10 * kMB, 0,
            10 * kMB),
        job(2, ArchType::PsWorker, 16, 1 * kTFLOPs, 10 * kMB,
            500 * kMB, 1 * kGB),
        job(3, ArchType::PsWorker, 2, 4 * kTFLOPs, 10 * kMB, 50 * kMB,
            100 * kMB),
    };
}

TEST(CharacterizationTest, ConstitutionCountsAndShares)
{
    AnalyticalModel model(hw::paiCluster());
    ClusterCharacterizer ch(model, population());
    Constitution c = ch.constitution();

    EXPECT_EQ(c.total_jobs, 4);
    EXPECT_EQ(c.total_cnodes, 20);
    EXPECT_EQ(c.job_counts[ArchType::OneWorkerOneGpu], 2);
    EXPECT_EQ(c.job_counts[ArchType::PsWorker], 2);
    EXPECT_EQ(c.cnode_counts[ArchType::PsWorker], 18);
    EXPECT_DOUBLE_EQ(c.jobShare(ArchType::PsWorker), 0.5);
    EXPECT_DOUBLE_EQ(c.cnodeShare(ArchType::PsWorker), 0.9);
    EXPECT_DOUBLE_EQ(c.jobShare(ArchType::AllReduceLocal), 0.0);
}

TEST(CharacterizationTest, CnodeCountCdf)
{
    AnalyticalModel model(hw::paiCluster());
    ClusterCharacterizer ch(model, population());
    auto cdf = ch.cnodeCountCdf(ArchType::PsWorker);
    EXPECT_EQ(cdf.size(), 2u);
    EXPECT_DOUBLE_EQ(cdf.probAtOrBelow(8.0), 0.5);
    EXPECT_DOUBLE_EQ(cdf.probAtOrBelow(16.0), 1.0);
}

TEST(CharacterizationTest, WeightSizeCdfFilters)
{
    AnalyticalModel model(hw::paiCluster());
    ClusterCharacterizer ch(model, population());
    EXPECT_EQ(ch.weightSizeCdf(std::nullopt).size(), 4u);
    auto ps = ch.weightSizeCdf(ArchType::PsWorker);
    EXPECT_EQ(ps.size(), 2u);
    EXPECT_DOUBLE_EQ(ps.max(), 1 * kGB);
}

TEST(CharacterizationTest, AvgBreakdownWeighting)
{
    AnalyticalModel model(hw::paiCluster());
    ClusterCharacterizer ch(model, population());

    // Job-level average is the uniform mean of per-job fractions;
    // cNode-level weights job 2 (16 cNodes) 8x heavier than job 3.
    auto jl = ch.avgBreakdown(ArchType::PsWorker, Level::Job);
    auto cl = ch.avgBreakdown(ArchType::PsWorker, Level::CNode);

    double f2 = ch.breakdownOf(2).fraction(Component::WeightTraffic);
    double f3 = ch.breakdownOf(3).fraction(Component::WeightTraffic);
    EXPECT_NEAR(jl[1], 0.5 * (f2 + f3), 1e-12);
    EXPECT_NEAR(cl[1], (16.0 * f2 + 2.0 * f3) / 18.0, 1e-12);
    // Job 2 is comm-heavier, so cNode weighting raises the share.
    EXPECT_GT(cl[1], jl[1]);

    // Averages over all four components sum to 1 at both levels.
    EXPECT_NEAR(jl[0] + jl[1] + jl[2] + jl[3], 1.0, 1e-12);
    EXPECT_NEAR(cl[0] + cl[1] + cl[2] + cl[3], 1.0, 1e-12);
}

TEST(CharacterizationTest, ComponentCdfLevelsAndFilters)
{
    AnalyticalModel model(hw::paiCluster());
    ClusterCharacterizer ch(model, population());

    auto all_job =
        ch.componentCdf(Component::WeightTraffic, std::nullopt,
                        Level::Job);
    EXPECT_EQ(all_job.size(), 4u);
    EXPECT_DOUBLE_EQ(all_job.totalWeight(), 4.0);

    auto all_cnode =
        ch.componentCdf(Component::WeightTraffic, std::nullopt,
                        Level::CNode);
    EXPECT_DOUBLE_EQ(all_cnode.totalWeight(), 20.0);

    auto ps_only = ch.componentCdf(Component::DataIo,
                                   ArchType::PsWorker, Level::Job);
    EXPECT_EQ(ps_only.size(), 2u);
}

TEST(CharacterizationTest, HwComponentCdfCoversPopulation)
{
    AnalyticalModel model(hw::paiCluster());
    ClusterCharacterizer ch(model, population());
    for (HwComponent h : kAllHwComponents) {
        auto cdf = ch.hwComponentCdf(h, Level::CNode);
        EXPECT_EQ(cdf.size(), 4u) << toString(h);
        EXPECT_GE(cdf.min(), 0.0);
        EXPECT_LE(cdf.max(), 1.0);
    }
    // 1w1g jobs have zero Ethernet share; PS jobs positive.
    auto eth = ch.hwComponentCdf(HwComponent::Ethernet, Level::Job);
    EXPECT_DOUBLE_EQ(eth.probAtOrBelow(0.0), 0.5);
}

TEST(CharacterizationTest, EmptyPopulation)
{
    AnalyticalModel model(hw::paiCluster());
    ClusterCharacterizer ch(model,
                            std::vector<workload::TrainingJob>{});
    Constitution c = ch.constitution();
    EXPECT_EQ(c.total_jobs, 0);
    EXPECT_DOUBLE_EQ(c.jobShare(ArchType::PsWorker), 0.0);
    auto avg = ch.avgBreakdown(std::nullopt, Level::Job);
    EXPECT_DOUBLE_EQ(avg[0] + avg[1] + avg[2] + avg[3], 0.0);
}

} // namespace
} // namespace paichar::core
