/**
 * @file
 * Tests for architecture projection (Sec III-C1, Figs 9/16).
 */

#include <gtest/gtest.h>

#include "core/projection.h"
#include "hw/units.h"

namespace paichar::core {
namespace {

using hw::kGB;
using hw::kMB;
using hw::kTFLOPs;
using workload::ArchType;
using workload::TrainingJob;

TrainingJob
psJob(int cnodes, double flops, double mem, double input, double comm)
{
    TrainingJob job;
    job.arch = ArchType::PsWorker;
    job.num_cnodes = cnodes;
    job.num_ps = std::max(1, cnodes / 4);
    job.features.batch_size = 128;
    job.features.flop_count = flops;
    job.features.mem_access_bytes = mem;
    job.features.input_bytes = input;
    job.features.comm_bytes = comm;
    job.features.dense_weight_bytes = comm;
    return job;
}

TEST(ProjectionTest, RemapClampsToEightForLocal)
{
    AnalyticalModel model(hw::paiCluster());
    ArchitectureProjector proj(model);
    TrainingJob big = psJob(64, 1, 1, 1, 1);
    TrainingJob small = psJob(4, 1, 1, 1, 1);

    EXPECT_EQ(proj.remap(big, ArchType::AllReduceLocal).num_cnodes, 8);
    EXPECT_EQ(proj.remap(small, ArchType::AllReduceLocal).num_cnodes,
              4);
    EXPECT_EQ(proj.remap(big, ArchType::AllReduceCluster).num_cnodes,
              64);
    EXPECT_EQ(proj.remap(big, ArchType::AllReduceLocal).num_ps, 0);
    EXPECT_EQ(proj.remap(big, ArchType::AllReduceLocal).arch,
              ArchType::AllReduceLocal);
}

TEST(ProjectionTest, CommBoundJobGains21xSingleNode)
{
    AnalyticalModel model(hw::paiCluster());
    ArchitectureProjector proj(model);
    TrainingJob job = psJob(16, 0, 0, 0, 2 * kGB);
    auto r = proj.project(job, ArchType::AllReduceLocal);
    EXPECT_NEAR(r.single_node_speedup, 21.0, 1e-9);
    // Throughput loses the cNode clamp factor 16 -> 8.
    EXPECT_NEAR(r.throughput_speedup, 21.0 * 8.0 / 16.0, 1e-9);
}

TEST(ProjectionTest, DataBoundJobSlowsDown)
{
    // A job dominated by input I/O loses from PCIe sharing when its
    // replicas are packed onto one server (Sec III-C1).
    AnalyticalModel model(hw::paiCluster());
    ArchitectureProjector proj(model);
    TrainingJob job = psJob(8, 0.1 * kTFLOPs, 0, 2 * kGB, 10 * kMB);
    auto r = proj.project(job, ArchType::AllReduceLocal);
    EXPECT_LT(r.single_node_speedup, 1.0);
}

TEST(ProjectionTest, SpeedupsConsistentWithStepTimes)
{
    AnalyticalModel model(hw::paiCluster());
    ArchitectureProjector proj(model);
    TrainingJob job = psJob(32, 1 * kTFLOPs, 0.1e12, 100 * kMB,
                            800 * kMB);
    auto r = proj.project(job, ArchType::AllReduceCluster);
    EXPECT_NEAR(r.old_step_time, model.stepTime(job), 1e-15);
    EXPECT_NEAR(r.new_step_time, model.stepTime(r.projected), 1e-15);
    EXPECT_NEAR(r.single_node_speedup,
                r.old_step_time / r.new_step_time, 1e-12);
    // Same cNode count for cluster projection: throughput speedup
    // equals the single-node speedup.
    EXPECT_NEAR(r.throughput_speedup, r.single_node_speedup, 1e-12);
}

TEST(ProjectionTest, SmallJobKeepsThroughputGain)
{
    AnalyticalModel model(hw::paiCluster());
    ArchitectureProjector proj(model);
    TrainingJob job = psJob(4, 0.5 * kTFLOPs, 0.05e12, 10 * kMB,
                            1 * kGB);
    auto r = proj.project(job, ArchType::AllReduceLocal);
    EXPECT_EQ(r.projected.num_cnodes, 4);
    EXPECT_GT(r.single_node_speedup, 1.0);
    EXPECT_NEAR(r.throughput_speedup, r.single_node_speedup, 1e-12);
}

TEST(ProjectionTest, OverlapModeChangesSpeedupButKeepsCommBound21x)
{
    // Sec V-B / Fig 16: under ideal overlap, purely comm-bound jobs
    // still see the Eq 3 ratio.
    AnalyticalModel model(hw::paiCluster());
    ArchitectureProjector proj(model);
    TrainingJob job = psJob(16, 0, 0, 0, 2 * kGB);
    auto r = proj.project(job, ArchType::AllReduceLocal,
                          OverlapMode::IdealOverlap);
    EXPECT_NEAR(r.single_node_speedup, 21.0, 1e-9);

    // A mixed job: overlap hides part of the original comm cost, so
    // the overlap-mode speedup differs from the non-overlap one.
    TrainingJob mixed = psJob(16, 2 * kTFLOPs, 0.1e12, 50 * kMB,
                              500 * kMB);
    auto r_no = proj.project(mixed, ArchType::AllReduceLocal,
                             OverlapMode::NonOverlap);
    auto r_io = proj.project(mixed, ArchType::AllReduceLocal,
                             OverlapMode::IdealOverlap);
    EXPECT_NE(r_no.single_node_speedup, r_io.single_node_speedup);
}

} // namespace
} // namespace paichar::core
