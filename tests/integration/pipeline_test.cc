/**
 * @file
 * Integration tests crossing module boundaries end to end:
 *
 *  1. generate -> CSV -> parse -> characterize must agree with the
 *     in-memory path bit for bit;
 *  2. simulate -> profile -> extract -> analytical model must agree
 *     with directly evaluating the model-zoo features;
 *  3. the advisor, planner and projector must tell one consistent
 *     story about a workload.
 */

#include <gtest/gtest.h>

#include "core/arch_selection.h"
#include "core/characterization.h"
#include "core/projection.h"
#include "opt/optimization_planner.h"
#include "profiler/feature_extraction.h"
#include "testbed/training_sim.h"
#include "trace/synthetic_cluster.h"
#include "trace/trace_io.h"

namespace paichar {
namespace {

using workload::ArchType;

TEST(PipelineIntegrationTest, CsvRoundTripPreservesAnalysis)
{
    core::AnalyticalModel model(hw::paiCluster());
    trace::SyntheticClusterGenerator gen(20181201);
    auto jobs = gen.generate(3000);

    auto parsed = trace::fromCsv(trace::toCsv(jobs));
    ASSERT_TRUE(parsed.ok) << parsed.error;

    core::ClusterCharacterizer direct(model, jobs);
    core::ClusterCharacterizer via_csv(model,
                                       std::move(parsed.jobs));
    for (core::Level level : {core::Level::Job, core::Level::CNode}) {
        auto a = direct.avgBreakdown(std::nullopt, level);
        auto b = via_csv.avgBreakdown(std::nullopt, level);
        for (int c = 0; c < 4; ++c)
            EXPECT_DOUBLE_EQ(a[c], b[c]);
    }
    EXPECT_DOUBLE_EQ(
        direct.constitution().cnodeShare(ArchType::PsWorker),
        via_csv.constitution().cnodeShare(ArchType::PsWorker));
}

TEST(PipelineIntegrationTest, SimulateProfileExtractPredict)
{
    // Fig 4's full loop: run the testbed, reduce the raw records to
    // features, and check the analytical model sees the same job as
    // the model zoo's ground truth.
    testbed::TrainingSimulator sim;
    core::AnalyticalModel model(hw::v100Testbed());
    model.setPcieContention(false);
    profiler::FeatureExtractor fx;

    auto m = workload::ModelZoo::multiInterests(); // PS: lossless comm
    auto extracted = fx.extract(sim.run(m).metadata);

    workload::TrainingJob truth;
    truth.arch = m.arch;
    truth.num_cnodes = m.num_cnodes;
    truth.features = m.features;

    double t_truth = model.stepTime(truth);
    double t_extracted = model.stepTime(extracted);
    EXPECT_NEAR(t_extracted / t_truth, 1.0, 1e-9);
}

TEST(PipelineIntegrationTest, AdvisorProjectorPlannerAgree)
{
    // For a dense comm-bound PS job, all three decision tools must
    // point the same way: to NVLink AllReduce.
    workload::TrainingJob job;
    job.arch = ArchType::PsWorker;
    job.num_cnodes = 16;
    job.features.batch_size = 128;
    job.features.flop_count = 0.5e12;
    job.features.mem_access_bytes = 2e10;
    job.features.input_bytes = 1e7;
    job.features.comm_bytes = 1.5e9;
    job.features.dense_weight_bytes = 1.5e9;

    core::AnalyticalModel model(hw::v100Testbed());

    core::ArchitectureProjector proj(model);
    auto projection =
        proj.project(job, ArchType::AllReduceLocal);
    EXPECT_GT(projection.throughput_speedup, 1.0);

    core::ArchitectureAdvisor advisor(model, 32e9);
    auto pick = advisor.recommend(job);
    EXPECT_TRUE(pick.arch == ArchType::AllReduceLocal ||
                pick.arch == ArchType::Pearl)
        << workload::toString(pick.arch);

    // The planner measures on the DES testbed rather than the
    // analytical model; build a case-study wrapper around the job.
    workload::CaseStudyModel cs = workload::ModelZoo::resnet50();
    cs.arch = job.arch;
    cs.num_cnodes = job.num_cnodes;
    cs.features = job.features;
    opt::OptimizationPlanner planner;
    auto best = planner.best(cs);
    EXPECT_TRUE(best.spec.arch == ArchType::AllReduceLocal ||
                best.spec.arch == ArchType::Pearl)
        << best.label();
    EXPECT_GT(best.speedup, 1.0);
}

TEST(PipelineIntegrationTest, GeneratedTraceSurvivesScheduler)
{
    // Trace -> CSV -> scheduler CLI path shape: every generated job is
    // placeable on a cluster at least as large as its cNode demand.
    trace::SyntheticClusterGenerator gen(9);
    auto jobs = gen.generate(500);
    int max_cnodes = 0;
    for (const auto &j : jobs)
        max_cnodes = std::max(max_cnodes, j.num_cnodes);
    EXPECT_GT(max_cnodes, 8); // the trace has large jobs
}

} // namespace
} // namespace paichar
