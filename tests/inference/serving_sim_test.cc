/**
 * @file
 * Tests for the inference-serving subsystem (the paper's Sec VIII
 * future work): workload derivation, queueing behavior, batching
 * economics and SLO search.
 */

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "inference/serving_sim.h"
#include "workload/model_zoo.h"

namespace paichar::inference {
namespace {

InferenceWorkload
resnetServing()
{
    return InferenceWorkload::fromTraining(
        workload::ModelZoo::resnet50());
}

TEST(InferenceWorkloadTest, DerivationFromTraining)
{
    auto m = workload::ModelZoo::resnet50();
    auto w = resnetServing();
    EXPECT_EQ(w.name, "ResNet50");
    // Forward-only: a third of the step, per item.
    EXPECT_NEAR(w.flops_per_item,
                m.features.flop_count / 3.0 / 64.0,
                1e-6 * w.flops_per_item);
    EXPECT_NEAR(w.weight_bytes, 0.5 * m.features.dense_weight_bytes,
                1.0);
    EXPECT_GT(w.input_bytes_per_item, 0.0);
}

TEST(InferenceWorkloadTest, ServiceTimeShape)
{
    auto w = resnetServing();
    auto gpu = hw::v100Testbed().server.gpu;
    double s1 = w.serviceTime(1, gpu, 30e-6);
    double s8 = w.serviceTime(8, gpu, 30e-6);
    // Batching amortizes the weight stream + launch: 8 items cost
    // much less than 8 separate launches but more than one.
    EXPECT_GT(s8, s1);
    EXPECT_LT(s8, 8.0 * s1);
    // The batch-independent component equals launch + weight stream.
    double fixed = 30e-6 + w.weight_bytes /
                               (gpu.mem_bandwidth *
                                w.efficiency.gpu_memory);
    EXPECT_NEAR(s8 - s1, 7.0 * (s1 - fixed), 1e-12);
}

TEST(ServingSimTest, DeterministicForEqualSeeds)
{
    ServingSimulator sim;
    auto w = resnetServing();
    auto a = sim.run(w, 500.0, 5000, 7);
    auto b = sim.run(w, 500.0, 5000, 7);
    EXPECT_DOUBLE_EQ(a.p99_latency, b.p99_latency);
    EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
}

TEST(ServingSimTest, IdleLoadLatencyIsServiceTime)
{
    // At negligible load every request is served alone, immediately.
    ServingSimulator sim;
    auto w = resnetServing();
    auto r = sim.run(w, 1.0, 500, 11);
    double solo =
        w.inputTime(1, sim.config().server.pcie_bandwidth) +
        w.serviceTime(1, sim.config().server.gpu,
                      sim.config().launch_overhead);
    EXPECT_NEAR(r.p50_latency, solo, 1e-9);
    EXPECT_NEAR(r.mean_latency, solo, 0.01 * solo);
    EXPECT_NEAR(r.avg_batch, 1.0, 0.01);
    EXPECT_FALSE(r.saturated);
}

TEST(ServingSimTest, UtilizationTracksOfferedLoad)
{
    ServingSimulator sim;
    auto w = resnetServing();
    double solo = w.serviceTime(1, sim.config().server.gpu,
                                sim.config().launch_overhead) +
                  w.inputTime(1, sim.config().server.pcie_bandwidth);
    double qps = 0.3 / solo; // ~30% utilization without batching
    auto r = sim.run(w, qps, 20000, 13);
    EXPECT_NEAR(r.gpu_utilization, 0.3, 0.05);
    EXPECT_FALSE(r.saturated);
}

TEST(ServingSimTest, LatencyGrowsWithLoad)
{
    ServingSimulator sim;
    auto w = resnetServing();
    double prev = 0.0;
    for (double qps : {200.0, 800.0, 2000.0}) {
        auto r = sim.run(w, qps, 20000, 17);
        EXPECT_GT(r.p99_latency, prev) << qps;
        prev = r.p99_latency;
    }
}

TEST(ServingSimTest, OverloadIsDetectedAndBatchingRaisesCapacity)
{
    // A weight-heavy model: the per-launch weight stream dominates,
    // so batching multiplies capacity (the canonical batching win).
    InferenceWorkload w;
    w.name = "weight-heavy";
    w.weight_bytes = 2e9;
    w.flops_per_item = 1e9;
    w.act_bytes_per_item = 1e6;
    w.input_bytes_per_item = 1e4;

    ServingConfig no_batch;
    no_batch.max_batch = 1;
    ServingConfig batch8;
    batch8.max_batch = 8;

    // A load past the unbatched capacity but well within the batched
    // one (per-launch cost ~fixed, so batch-8 capacity is ~7x).
    double solo = w.serviceTime(1, no_batch.server.gpu,
                                no_batch.launch_overhead) +
                  w.inputTime(1, no_batch.server.pcie_bandwidth);
    double qps = 2.0 / solo;
    auto r1 = ServingSimulator(no_batch).run(w, qps, 20000, 19);
    auto r8 = ServingSimulator(batch8).run(w, qps, 20000, 19);
    EXPECT_TRUE(r1.saturated);
    EXPECT_FALSE(r8.saturated);
    EXPECT_GT(r8.avg_batch, 1.2);
    EXPECT_LT(r8.p99_latency, r1.p99_latency);
}

TEST(ServingSimTest, BatchingBuysLittleForPerItemBoundModels)
{
    // ResNet50 inference is per-item bound at batch 64-equivalent
    // demands: batch-8 capacity exceeds unbatched by <25%.
    auto w = resnetServing();
    auto gpu = hw::v100Testbed().server.gpu;
    double cap1 = 1.0 / (w.serviceTime(1, gpu, 30e-6) +
                         w.inputTime(1, 10e9));
    double cap8 = 8.0 / (w.serviceTime(8, gpu, 30e-6) +
                         w.inputTime(8, 10e9));
    EXPECT_GT(cap8, cap1);
    EXPECT_LT(cap8, 1.25 * cap1);
}

TEST(ServingSimTest, ThroughputCapsAtServiceCapacity)
{
    auto w = resnetServing();
    ServingConfig cfg;
    cfg.max_batch = 1;
    ServingSimulator sim(cfg);
    double solo = w.serviceTime(1, cfg.server.gpu,
                                cfg.launch_overhead) +
                  w.inputTime(1, cfg.server.pcie_bandwidth);
    auto r = sim.run(w, 10.0 / solo, 20000, 23);
    EXPECT_TRUE(r.saturated);
    EXPECT_NEAR(r.throughput, 1.0 / solo, 0.02 / solo);
    EXPECT_NEAR(r.gpu_utilization, 1.0, 0.02);
}

TEST(ServingSimTest, MaxQpsUnderSloIsConsistent)
{
    ServingSimulator sim;
    auto w = resnetServing();
    double solo = w.serviceTime(1, sim.config().server.gpu,
                                sim.config().launch_overhead) +
                  w.inputTime(1, sim.config().server.pcie_bandwidth);
    double slo = 5.0 * solo;
    double qps = sim.maxQpsUnderSlo(w, slo, 20.0 / solo, 29);
    ASSERT_GT(qps, 0.0);
    auto at = sim.run(w, qps, 20000, 29);
    EXPECT_LE(at.p99_latency, slo * 1.001);
    // 15% more load breaks the SLO (or saturates).
    auto over = sim.run(w, 1.15 * qps, 20000, 29);
    EXPECT_TRUE(over.p99_latency > slo || over.saturated);
}

TEST(ServingSimTest, ImpossibleSloReturnsZero)
{
    ServingSimulator sim;
    auto w = resnetServing();
    EXPECT_DOUBLE_EQ(sim.maxQpsUnderSlo(w, 1e-9, 1000.0, 31), 0.0);
}

// --- Release-mode bugfix regressions -------------------------------

TEST(ServingSimTest, InvalidArgumentsThrowNotAssert)
{
    // Regression: these were assert()s, compiled away under NDEBUG
    // (a qps of 0 then divided by zero into NaN latencies). The
    // NDEBUG-forced twin of this test lives in tests/ndebug.
    auto w = resnetServing();
    ServingConfig bad;
    bad.max_batch = 0;
    EXPECT_THROW(ServingSimulator{bad}, std::invalid_argument);
    bad.max_batch = -3;
    EXPECT_THROW(ServingSimulator{bad}, std::invalid_argument);
    ServingConfig bad_overhead;
    bad_overhead.launch_overhead = -1e-6;
    EXPECT_THROW(ServingSimulator{bad_overhead},
                 std::invalid_argument);

    ServingSimulator sim;
    EXPECT_THROW(sim.run(w, 0.0, 100, 1), std::invalid_argument);
    EXPECT_THROW(sim.run(w, -5.0, 100, 1), std::invalid_argument);
    EXPECT_THROW(sim.run(w, std::numeric_limits<double>::infinity(),
                         100, 1),
                 std::invalid_argument);
    EXPECT_THROW(sim.run(w, 100.0, 0, 1), std::invalid_argument);
    EXPECT_THROW(sim.maxQpsUnderSlo(w, 0.0, 100.0, 1),
                 std::invalid_argument);
    EXPECT_THROW(sim.maxQpsUnderSlo(w, 0.01, 1.0, 1),
                 std::invalid_argument);
}

TEST(ServingSimTest, ShortRunsReportUndersampledNeverStable)
{
    // Regression: the pre-fix detector silently returned "not
    // saturated" below 100 samples, so a 50-request probe at a
    // hopelessly overloaded operating point looked healthy.
    auto w = resnetServing();
    ServingSimulator sim;
    double solo = w.serviceTime(1, sim.config().server.gpu,
                                sim.config().launch_overhead) +
                  w.inputTime(1, sim.config().server.pcie_bandwidth);
    double overload_qps = 50.0 / solo; // 50x capacity
    auto r = sim.run(w, overload_qps, kMinSaturationSamples - 1, 37);
    EXPECT_EQ(r.verdict, OverloadVerdict::Undersampled);
    EXPECT_FALSE(r.saturated);
    // The same load with enough samples is judged saturated.
    auto full = sim.run(w, overload_qps, 20000, 37);
    EXPECT_EQ(full.verdict, OverloadVerdict::Saturated);
    // At the floor itself the detector judges (no Undersampled).
    auto at_floor = sim.run(w, overload_qps, kMinSaturationSamples,
                            37);
    EXPECT_NE(at_floor.verdict, OverloadVerdict::Undersampled);
}

TEST(ServingSimTest, SloSearchRefusesUndersampledProbes)
{
    // The sample floor is enforced where it matters: a short probe
    // could otherwise certify a saturated operating point as "fits
    // the SLO".
    auto w = resnetServing();
    ServingSimulator sim;
    EXPECT_THROW(sim.maxQpsUnderSlo(w, 0.01, 1000.0, 41,
                                    kMinSaturationSamples - 1),
                 std::invalid_argument);
    // And an Undersampled verdict never passes ok(): a tiny legal
    // probe count still yields a usable (conservative) search.
    double qps = sim.maxQpsUnderSlo(w, 0.02, 2000.0, 41,
                                    kMinSaturationSamples);
    EXPECT_GE(qps, 0.0);
}

} // namespace
} // namespace paichar::inference
