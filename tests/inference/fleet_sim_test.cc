/**
 * @file
 * Serving-fleet simulator tests (`ctest -L serve`): invariants at
 * every fleet shape (throughput bounded by offered load, utilization
 * in [0, 1], batch bounds, quantile ordering, latency monotone in
 * load), routing and batching behavior, admission control, the
 * reactive autoscaler, capacity bisection and input validation.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "inference/fleet_sim.h"
#include "obs/obs.h"
#include "obs/timeline.h"
#include "workload/model_zoo.h"

namespace paichar::inference {
namespace {

InferenceWorkload
resnetServing()
{
    return InferenceWorkload::fromTraining(
        workload::ModelZoo::resnet50());
}

std::vector<ModelLoad>
constantLoad(double qps)
{
    stats::ArrivalConfig a;
    a.qps = qps;
    return {{resnetServing(), a}};
}

TEST(FleetSimTest, DeterministicForEqualSeeds)
{
    FleetConfig cfg;
    cfg.num_servers = 3;
    cfg.routing = Routing::PowerOfTwo;
    FleetSimulator sim(cfg);
    auto a = sim.run(constantLoad(900.0), 5000, 7);
    auto b = sim.run(constantLoad(900.0), 5000, 7);
    EXPECT_DOUBLE_EQ(a.p99_latency, b.p99_latency);
    EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
    EXPECT_DOUBLE_EQ(a.duration, b.duration);
}

TEST(FleetSimTest, InvariantsAcrossShapes)
{
    // The serving invariants, swept across routing x batching.
    for (Routing routing : {Routing::RoundRobin, Routing::LeastQueue,
                            Routing::PowerOfTwo}) {
        for (Batching batching :
             {Batching::Greedy, Batching::Continuous}) {
            FleetConfig cfg;
            cfg.num_servers = 3;
            cfg.max_batch = 8;
            cfg.routing = routing;
            cfg.batching = batching;
            cfg.record_requests = true;
            auto r = FleetSimulator(cfg).run(constantLoad(1000.0),
                                             8000, 21);
            SCOPED_TRACE(std::string(toString(routing)) + "/" +
                         toString(batching));
            // Throughput cannot exceed what was offered.
            EXPECT_LE(r.throughput, 1000.0 * 1.1);
            EXPECT_GE(r.gpu_utilization, 0.0);
            EXPECT_LE(r.gpu_utilization, 1.0);
            EXPECT_LE(r.avg_batch, 8.0);
            EXPECT_GE(r.avg_batch, 1.0);
            for (const RequestRecord &rec : r.requests) {
                ASSERT_GE(rec.batch, 1);
                ASSERT_LE(rec.batch, 8);
            }
            // Quantile ordering.
            EXPECT_LE(r.p50_latency, r.p95_latency);
            EXPECT_LE(r.p95_latency, r.p99_latency);
            EXPECT_LE(r.p99_latency, r.p999_latency);
            EXPECT_LE(r.p999_latency, r.max_latency);
            EXPECT_EQ(r.completed, r.offered);
        }
    }
}

TEST(FleetSimTest, LatencyMonotoneInLoad)
{
    FleetConfig cfg;
    cfg.num_servers = 2;
    FleetSimulator sim(cfg);
    double prev = 0.0;
    for (double qps : {400.0, 1600.0, 4000.0}) {
        auto r = sim.run(constantLoad(qps), 15000, 17);
        EXPECT_GT(r.p99_latency, prev) << qps;
        prev = r.p99_latency;
    }
}

TEST(FleetSimTest, MoreServersRaiseCapacity)
{
    // A load that saturates one server but not four.
    auto one = FleetSimulator([] {
                   FleetConfig c;
                   c.num_servers = 1;
                   return c;
               }()).run(constantLoad(1500.0), 15000, 5);
    auto four = FleetSimulator([] {
                    FleetConfig c;
                    c.num_servers = 4;
                    return c;
                }()).run(constantLoad(1500.0), 15000, 5);
    EXPECT_EQ(one.verdict, OverloadVerdict::Saturated);
    EXPECT_EQ(four.verdict, OverloadVerdict::Stable);
    EXPECT_LT(four.p99_latency, one.p99_latency);
}

TEST(FleetSimTest, LoadAwareRoutingBeatsRoundRobinOnTail)
{
    // For a homogeneous single-model fleet round-robin's perfect
    // spreading is near-optimal and queue-aware routing has nothing
    // to dodge. The win comes from a heterogeneous request mix: a
    // server stuck behind a heavy bert batch keeps receiving its
    // round-robin share, while least-queue routing sees the backlog
    // and steers arrivals to idler servers.
    stats::ArrivalConfig light;
    light.qps = 1600.0;
    stats::ArrivalConfig heavy;
    heavy.qps = 120.0;
    std::vector<ModelLoad> load = {
        {resnetServing(), light},
        {InferenceWorkload::fromTraining(workload::ModelZoo::bert()),
         heavy},
    };

    FleetConfig rr;
    rr.num_servers = 4;
    rr.routing = Routing::RoundRobin;
    FleetConfig lq = rr;
    lq.routing = Routing::LeastQueue;
    auto r_rr = FleetSimulator(rr).run(load, 20000, 9);
    auto r_lq = FleetSimulator(lq).run(load, 20000, 9);
    EXPECT_LT(r_lq.p99_latency, r_rr.p99_latency);
}

TEST(FleetSimTest, ContinuousBatchingCutsLatencyForWeightHeavyModels)
{
    // For a weight-heavy model the greedy discipline makes every
    // request wait for a full launch; continuous batching amortizes
    // the fixed cost without the collective wait.
    InferenceWorkload w;
    w.name = "weight-heavy";
    w.weight_bytes = 2e9;
    w.flops_per_item = 1e9;
    w.act_bytes_per_item = 1e6;
    w.input_bytes_per_item = 1e4;

    stats::ArrivalConfig a;
    FleetConfig cfg;
    cfg.num_servers = 1;
    cfg.max_batch = 8;
    double fixed = w.fixedTime(cfg.server.gpu, cfg.launch_overhead);
    a.qps = 3.0 / fixed; // needs amortization to survive

    FleetConfig greedy = cfg;
    greedy.batching = Batching::Greedy;
    FleetConfig cont = cfg;
    cont.batching = Batching::Continuous;
    auto r_g = FleetSimulator(greedy).run({{w, a}}, 10000, 13);
    auto r_c = FleetSimulator(cont).run({{w, a}}, 10000, 13);
    EXPECT_EQ(r_g.verdict, OverloadVerdict::Stable);
    EXPECT_EQ(r_c.verdict, OverloadVerdict::Stable);
    // Continuous batching strictly improves median latency here:
    // items stop waiting for batch-mates to finish together.
    EXPECT_LT(r_c.p50_latency, r_g.p50_latency);
}

TEST(FleetSimTest, AdmissionControlBoundsQueueAndLatency)
{
    FleetConfig open;
    open.num_servers = 1;
    FleetConfig bounded = open;
    bounded.admit_queue = 16;
    // Far past capacity: the open fleet's queue grows without bound,
    // the bounded fleet sheds load instead.
    auto r_open =
        FleetSimulator(open).run(constantLoad(4000.0), 15000, 3);
    auto r_b =
        FleetSimulator(bounded).run(constantLoad(4000.0), 15000, 3);
    EXPECT_EQ(r_open.verdict, OverloadVerdict::Saturated);
    EXPECT_EQ(r_open.rejected, 0);
    EXPECT_GT(r_b.rejected, 0);
    EXPECT_EQ(r_b.admitted + r_b.rejected, r_b.offered);
    EXPECT_EQ(r_b.completed, r_b.admitted);
    EXPECT_LT(r_b.p99_latency, r_open.p99_latency);
}

TEST(FleetSimTest, AutoscalerAddsServersUnderLoadAndLagMatters)
{
    FleetConfig cfg;
    cfg.num_servers = 1;
    cfg.autoscaler.enabled = true;
    cfg.autoscaler.min_servers = 1;
    cfg.autoscaler.max_servers = 8;
    cfg.autoscaler.check_interval = 0.25;
    cfg.autoscaler.provision_lag = 0.5;
    // 1 server saturates, 8 do not.
    auto r = FleetSimulator(cfg).run(constantLoad(2500.0), 20000, 19);
    EXPECT_GT(r.scale_ups, 0);
    EXPECT_GT(r.peak_servers, 1);
    EXPECT_LE(r.peak_servers, 8);
    EXPECT_EQ(r.completed, r.offered);

    // A (much) longer lag delivers capacity later: tail latency can
    // only get worse, never better.
    FleetConfig slow = cfg;
    slow.autoscaler.provision_lag = 20.0;
    auto r_slow =
        FleetSimulator(slow).run(constantLoad(2500.0), 20000, 19);
    EXPECT_GE(r_slow.p99_latency, r.p99_latency);
}

TEST(FleetSimTest, AutoscalerDrainsIdleServersConservingRequests)
{
    FleetConfig cfg;
    cfg.num_servers = 6; // over-provisioned for the offered load
    cfg.autoscaler.enabled = true;
    cfg.autoscaler.min_servers = 1;
    cfg.autoscaler.max_servers = 6;
    cfg.autoscaler.check_interval = 0.25;
    cfg.record_requests = true;
    auto r = FleetSimulator(cfg).run(constantLoad(200.0), 10000, 23);
    EXPECT_GT(r.scale_downs, 0);
    EXPECT_LT(r.final_servers, 6);
    EXPECT_GE(r.final_servers, 1);
    // Draining must never lose requests.
    EXPECT_EQ(r.completed, r.offered);
}

TEST(FleetSimTest, SloAutoscalerScalesUpAndHoldsTheSlo)
{
    // One server saturates at this load; the SLO controller must
    // grow the fleet until the trailing-window p99 clears the
    // target, with no timeline attached (the controller keeps its
    // own window).
    FleetConfig cfg;
    cfg.num_servers = 1;
    cfg.autoscaler.enabled = true;
    cfg.autoscaler.mode = AutoscalerConfig::Mode::SloLatency;
    cfg.autoscaler.min_servers = 1;
    cfg.autoscaler.max_servers = 8;
    cfg.autoscaler.check_interval = 0.25;
    cfg.autoscaler.provision_lag = 0.5;
    cfg.autoscaler.slo_latency = 0.010; // 10 ms p99 target
    cfg.record_requests = true;
    auto r = FleetSimulator(cfg).run(constantLoad(2500.0), 20000, 19);
    EXPECT_GT(r.scale_ups, 0);
    EXPECT_GT(r.peak_servers, 1);
    EXPECT_EQ(r.completed, r.offered);
    EXPECT_EQ(r.verdict, OverloadVerdict::Stable);
    // The whole-run p99 is dominated by the backlog built up before
    // the fleet grew; the contract is that the *converged* fleet
    // keeps p99 near the target, so check arrivals in the back half
    // of the run. The hysteresis band (scale at 0.8x, drain at
    // 0.35x) means steady state oscillates around the target rather
    // than sitting under it, hence the 1.5x tolerance.
    std::vector<double> tail;
    for (const auto &req : r.requests)
        if (!req.rejected && req.arrival >= r.duration * 0.5)
            tail.push_back(req.completion - req.arrival);
    ASSERT_GT(tail.size(), 100u);
    double tail_p99 = obs::nearestRankQuantile(tail, 0.99);
    EXPECT_LE(tail_p99, cfg.autoscaler.slo_latency * 1.5);
    EXPECT_LT(tail_p99, r.p99_latency); // backlog drained
}

TEST(FleetSimTest, SloAutoscalerDrainsWhenWellUnderTheSlo)
{
    FleetConfig cfg;
    cfg.num_servers = 6; // over-provisioned: p99 far below target
    cfg.autoscaler.enabled = true;
    cfg.autoscaler.mode = AutoscalerConfig::Mode::SloLatency;
    cfg.autoscaler.min_servers = 1;
    cfg.autoscaler.max_servers = 6;
    cfg.autoscaler.check_interval = 0.25;
    cfg.autoscaler.slo_latency = 0.100; // generous 100 ms target
    auto r = FleetSimulator(cfg).run(constantLoad(200.0), 10000, 23);
    EXPECT_GT(r.scale_downs, 0);
    EXPECT_LT(r.final_servers, 6);
    EXPECT_EQ(r.completed, r.offered);
    EXPECT_LE(r.p99_latency, cfg.autoscaler.slo_latency);
}

TEST(FleetSimTest, SloAutoscalerValidatesItsConfig)
{
    FleetConfig cfg;
    cfg.autoscaler.enabled = true;
    cfg.autoscaler.mode = AutoscalerConfig::Mode::SloLatency;
    cfg.autoscaler.slo_latency = 0.0; // unset target
    EXPECT_THROW(FleetSimulator{cfg}, std::invalid_argument);
    cfg.autoscaler.slo_latency = 0.010;
    cfg.autoscaler.slo_down_fraction = 0.9; // >= up fraction
    EXPECT_THROW(FleetSimulator{cfg}, std::invalid_argument);
    cfg.autoscaler.slo_down_fraction = 0.35;
    cfg.autoscaler.slo_min_samples = 0;
    EXPECT_THROW(FleetSimulator{cfg}, std::invalid_argument);
    cfg.autoscaler.slo_min_samples = 20;
    EXPECT_NO_THROW(FleetSimulator{cfg});
}

TEST(FleetSimTest, MultiModelFleetServesBothStreams)
{
    stats::ArrivalConfig a1;
    a1.qps = 300.0;
    stats::ArrivalConfig a2;
    a2.kind = stats::ArrivalKind::Bursty;
    a2.qps = 200.0;
    std::vector<ModelLoad> models = {
        {resnetServing(), a1},
        {InferenceWorkload::fromTraining(workload::ModelZoo::bert()),
         a2}};
    FleetConfig cfg;
    cfg.num_servers = 4;
    cfg.record_requests = true;
    auto r = FleetSimulator(cfg).run(models, 10000, 29);
    int64_t m0 = 0, m1 = 0;
    for (const RequestRecord &rec : r.requests) {
        (rec.model == 0 ? m0 : m1) += 1;
        // A launch never mixes models, so batch <= max_batch holds
        // per model too (checked via the record bound).
        ASSERT_LE(rec.batch, cfg.max_batch);
    }
    EXPECT_GT(m0, 0);
    EXPECT_GT(m1, 0);
    EXPECT_EQ(m0 + m1, r.offered);
    // Stream rates ~ proportional to configured qps.
    EXPECT_GT(static_cast<double>(m0),
              1.1 * static_cast<double>(m1));
}

TEST(FleetSimTest, LatencyFlowsIntoObsHistogram)
{
    obs::Histogram &h =
        obs::histogram("inference.fleet.latency_us");
    uint64_t before = h.count();
    FleetSimulator sim{FleetConfig{}};
    auto r = sim.run(constantLoad(300.0), 2000, 31);
    EXPECT_EQ(h.count(), before + static_cast<uint64_t>(r.completed));
    // Microsecond scaling keeps sub-second latencies out of the
    // bucket-0 catch-all: the p50 bucket bound must be > 1.
    EXPECT_GT(h.quantile(0.5), 1.0);
}

TEST(FleetSimTest, CapacityBisectionFindsMinimalStableFleet)
{
    FleetConfig cfg;
    auto need = minServersForSlo(cfg, constantLoad(3000.0), 0.040,
                                 16, 15000, 20190701);
    ASSERT_TRUE(need.has_value());
    ASSERT_GT(*need, 1);

    // Minimality: the found size passes, one fewer does not.
    auto probe = [&](int n) {
        FleetConfig c = cfg;
        c.num_servers = n;
        auto r =
            FleetSimulator(c).run(constantLoad(3000.0), 15000,
                                  20190701);
        return r.verdict == OverloadVerdict::Stable &&
               r.p99_latency <= 0.040;
    };
    EXPECT_TRUE(probe(*need));
    EXPECT_FALSE(probe(*need - 1));
}

TEST(FleetSimTest, CapacityUnattainableReturnsNullopt)
{
    FleetConfig cfg;
    // Sub-solo-latency SLO: no fleet size can serve it.
    auto need = minServersForSlo(cfg, constantLoad(100.0), 1e-9, 8,
                                 5000, 7);
    EXPECT_FALSE(need.has_value());
}

TEST(FleetSimTest, InvalidConfigAndRunArgsThrow)
{
    FleetConfig bad;
    bad.num_servers = 0;
    EXPECT_THROW(FleetSimulator{bad}, std::invalid_argument);
    bad = FleetConfig{};
    bad.max_batch = 0;
    EXPECT_THROW(FleetSimulator{bad}, std::invalid_argument);
    bad = FleetConfig{};
    bad.admit_queue = -1;
    EXPECT_THROW(FleetSimulator{bad}, std::invalid_argument);
    bad = FleetConfig{};
    bad.autoscaler.enabled = true;
    bad.autoscaler.min_servers = 4;
    bad.autoscaler.max_servers = 2;
    EXPECT_THROW(FleetSimulator{bad}, std::invalid_argument);
    bad = FleetConfig{};
    bad.autoscaler.enabled = true;
    bad.autoscaler.check_interval = 0.0;
    EXPECT_THROW(FleetSimulator{bad}, std::invalid_argument);

    FleetSimulator sim{FleetConfig{}};
    EXPECT_THROW(sim.run({}, 100, 1), std::invalid_argument);
    EXPECT_THROW(sim.run(constantLoad(10.0), 0, 1),
                 std::invalid_argument);
    EXPECT_THROW(minServersForSlo(FleetConfig{}, constantLoad(10.0),
                                  -1.0, 8, 1000, 1),
                 std::invalid_argument);
    EXPECT_THROW(minServersForSlo(FleetConfig{}, constantLoad(10.0),
                                  0.1, 8, kMinSaturationSamples - 1,
                                  1),
                 std::invalid_argument);
}

TEST(FleetSimTest, RoutingAndBatchingSpellingsRoundTrip)
{
    for (Routing r : {Routing::RoundRobin, Routing::LeastQueue,
                      Routing::PowerOfTwo}) {
        auto parsed = routingFromString(toString(r));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, r);
    }
    for (Batching b : {Batching::Greedy, Batching::Continuous}) {
        auto parsed = batchingFromString(toString(b));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, b);
    }
    EXPECT_FALSE(routingFromString("random").has_value());
    EXPECT_FALSE(batchingFromString("static").has_value());
}

} // namespace
} // namespace paichar::inference
