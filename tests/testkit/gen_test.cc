/**
 * @file
 * Tests for the testkit generators and the shrinking property harness.
 */

#include <gtest/gtest.h>

#include <set>

#include "testkit/gen.h"
#include "testkit/property.h"

namespace paichar::testkit {
namespace {

using workload::ArchType;
using workload::TrainingJob;

TEST(GenTest, JobIsAPureFunctionOfTheSeed)
{
    JobGenerator gen;
    for (uint64_t seed : {0ull, 1ull, 42ull, 20181201ull}) {
        EXPECT_EQ(jobCsvRow(gen.job(seed)), jobCsvRow(gen.job(seed)));
    }
    EXPECT_NE(jobCsvRow(gen.job(7)), jobCsvRow(gen.job(8)));
}

TEST(GenTest, JobsSpanTheConfiguredRanges)
{
    JobGenerator gen;
    const GenRanges &r = gen.ranges();
    std::set<ArchType> seen;
    for (uint64_t seed = 0; seed < 400; ++seed) {
        TrainingJob j = gen.job(seed);
        seen.insert(j.arch);
        ASSERT_TRUE(j.features.valid()) << "seed " << seed;
        EXPECT_GE(j.features.flop_count, r.flop_count.lo);
        EXPECT_LE(j.features.flop_count, r.flop_count.hi);
        EXPECT_GE(j.features.comm_bytes, r.comm_bytes.lo);
        EXPECT_LE(j.features.comm_bytes, r.comm_bytes.hi);
        EXPECT_GE(j.features.input_bytes, r.input_bytes.lo);
        EXPECT_LE(j.features.input_bytes, r.input_bytes.hi);
        EXPECT_LE(j.features.embedding_comm_bytes,
                  j.features.comm_bytes);
        switch (j.arch) {
          case ArchType::OneWorkerOneGpu:
            EXPECT_EQ(j.num_cnodes, 1);
            break;
          case ArchType::OneWorkerMultiGpu:
            EXPECT_GE(j.num_cnodes, r.cnodes_1wng.lo);
            EXPECT_LE(j.num_cnodes, r.cnodes_1wng.hi);
            break;
          case ArchType::PsWorker:
            EXPECT_GE(j.num_cnodes, r.cnodes_ps.lo);
            EXPECT_LE(j.num_cnodes, r.cnodes_ps.hi);
            EXPECT_GE(j.num_ps, r.num_ps.lo);
            EXPECT_LE(j.num_ps, r.num_ps.hi);
            break;
          case ArchType::AllReduceLocal:
            EXPECT_LE(j.num_cnodes, r.cnodes_ar_local.hi);
            break;
          case ArchType::AllReduceCluster:
            EXPECT_LE(j.num_cnodes, r.cnodes_ar_cluster.hi);
            break;
          case ArchType::Pearl:
            EXPECT_LE(j.num_cnodes, r.cnodes_pearl.hi);
            break;
        }
        if (j.arch != ArchType::Pearl) {
            EXPECT_EQ(j.features.embedding_comm_bytes, 0.0);
            EXPECT_EQ(j.features.embedding_weight_bytes, 0.0);
        }
        if (j.arch != ArchType::PsWorker) {
            EXPECT_EQ(j.num_ps, 0);
        }
    }
    // 400 seeds over a uniform 6-way mix cover every architecture.
    EXPECT_EQ(seen.size(), gen.ranges().archs.size());
}

TEST(GenTest, PinnedArchJobKeepsTheArch)
{
    JobGenerator gen;
    for (uint64_t seed = 0; seed < 50; ++seed) {
        EXPECT_EQ(gen.job(seed, ArchType::Pearl).arch, ArchType::Pearl);
        EXPECT_EQ(gen.job(seed, ArchType::PsWorker).arch,
                  ArchType::PsWorker);
    }
}

TEST(GenTest, DifferentialRangesRestrictTheRegime)
{
    GenRanges r = GenRanges::differential();
    // PEARL is on the exception list, not in the 10% population.
    for (ArchType a : r.archs)
        EXPECT_NE(a, ArchType::Pearl);
    // AllReduce-Cluster is confined to two-server placements.
    EXPECT_GE(r.cnodes_ar_cluster.lo, 9);
    EXPECT_LE(r.cnodes_ar_cluster.hi, 16);
}

TEST(GenTest, GraphTotalsArePinnedToTheFeatures)
{
    JobGenerator gen;
    for (uint64_t seed = 0; seed < 100; ++seed) {
        TrainingJob j = gen.job(seed);
        auto g = JobGenerator::graphFor(j.features, seed);
        ASSERT_TRUE(g.validate());
        auto t = g.totals();
        EXPECT_NEAR(t.flops, j.features.flop_count,
                    1e-9 * j.features.flop_count);
        EXPECT_NEAR(t.mem_access_bytes, j.features.mem_access_bytes,
                    1e-9 * j.features.mem_access_bytes);
        EXPECT_NEAR(t.input_bytes, j.features.input_bytes,
                    1e-9 * j.features.input_bytes);
        EXPECT_GE(t.num_kernels, 2);
    }
}

TEST(GenTest, GeneratedClustersSpanTheTableIiiGrid)
{
    JobGenerator gen;
    const GenRanges &r = gen.ranges();
    for (uint64_t seed = 0; seed < 100; ++seed) {
        auto spec = gen.cluster(seed);
        EXPECT_GE(spec.ethernet_bandwidth,
                  hw::gbitPerSec(r.ethernet_gbps.lo));
        EXPECT_LE(spec.ethernet_bandwidth,
                  hw::gbitPerSec(r.ethernet_gbps.hi));
        EXPECT_GE(spec.server.pcie_bandwidth,
                  hw::gbPerSec(r.pcie_gbs.lo));
        EXPECT_LE(spec.server.pcie_bandwidth,
                  hw::gbPerSec(r.pcie_gbs.hi));
        EXPECT_GE(spec.server.gpu.peak_flops,
                  r.gpu_peak_tflops.lo * hw::kTFLOPs);
        EXPECT_LE(spec.server.gpu.peak_flops,
                  r.gpu_peak_tflops.hi * hw::kTFLOPs);
        EXPECT_GE(spec.num_servers, r.num_servers.lo);
        EXPECT_LE(spec.num_servers, r.num_servers.hi);
    }
    EXPECT_EQ(gen.cluster(3).name, gen.cluster(3).name);
    EXPECT_NE(gen.cluster(3).ethernet_bandwidth,
              gen.cluster(4).ethernet_bandwidth);
}

TEST(ShrinkTest, ShrinksToTheSingleRelevantField)
{
    JobGenerator gen;
    TrainingJob job = gen.job(11, ArchType::PsWorker);
    ASSERT_GT(job.features.comm_bytes, 0.0);

    // "Fails" whenever the job has any communication volume: the
    // minimal counterexample keeps comm_bytes and drops the rest.
    auto fails = [](const TrainingJob &j) {
        return j.features.comm_bytes > 0.0;
    };
    TrainingJob shrunk = shrinkJob(job, fails);
    EXPECT_TRUE(fails(shrunk));
    EXPECT_EQ(shrunk.num_cnodes, 1);
    EXPECT_EQ(shrunk.num_ps, 0);
    EXPECT_EQ(shrunk.features.flop_count, 0.0);
    EXPECT_EQ(shrunk.features.mem_access_bytes, 0.0);
    EXPECT_EQ(shrunk.features.input_bytes, 0.0);
    EXPECT_GT(shrunk.features.comm_bytes, 0.0);
    // Halving rounds shave the surviving field close to zero too.
    EXPECT_LT(shrunk.features.comm_bytes, job.features.comm_bytes);
}

TEST(ShrinkTest, PreservesFeatureInvariants)
{
    JobGenerator gen;
    TrainingJob job = gen.job(23, ArchType::Pearl);
    // Force a sparse split if this seed produced a dense job.
    if (job.features.embedding_comm_bytes == 0.0)
        job.features.embedding_comm_bytes = job.features.comm_bytes / 2;

    auto fails = [](const TrainingJob &j) {
        return j.features.embedding_comm_bytes > 0.0;
    };
    TrainingJob shrunk = shrinkJob(job, fails);
    EXPECT_LE(shrunk.features.embedding_comm_bytes,
              shrunk.features.comm_bytes);
    EXPECT_TRUE(shrunk.features.valid());
}

TEST(PropertyTest, PassingPropertyReturnsNoFailure)
{
    JobGenerator gen;
    auto ok = checkJobs(gen, 100, 50, [](const TrainingJob &) {
        return std::optional<std::string>{};
    });
    EXPECT_FALSE(ok.has_value());
}

TEST(PropertyTest, FailureCarriesSeedShrunkJobAndRepro)
{
    JobGenerator gen;
    auto fail = checkJobs(
        gen, 0, 200,
        [](const TrainingJob &j) -> std::optional<std::string> {
            if (j.arch == ArchType::PsWorker)
                return "PS/Worker jobs are rejected by this property";
            return std::nullopt;
        },
        "PAICHAR_TESTKIT_SEED={seed} ./tests/testkit_test");
    ASSERT_TRUE(fail.has_value());
    EXPECT_EQ(fail->job.arch, ArchType::PsWorker);
    EXPECT_EQ(fail->shrunk.arch, ArchType::PsWorker);
    // The seed reproduces the same generated job.
    EXPECT_EQ(jobCsvRow(gen.job(fail->seed)), jobCsvRow(fail->job));
    // The template's {seed} placeholder was substituted.
    EXPECT_NE(fail->repro.find("PAICHAR_TESTKIT_SEED=" +
                               std::to_string(fail->seed)),
              std::string::npos);
    std::string report = describe(*fail);
    EXPECT_NE(report.find("reproduce:"), std::string::npos);
    EXPECT_NE(report.find("shrunk:"), std::string::npos);
}

} // namespace
} // namespace paichar::testkit
