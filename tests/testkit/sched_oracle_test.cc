/**
 * @file
 * The scheduler differential-test harness (DESIGN.md Sec 13): fuzzed
 * seed-pure submission streams through every policy, checking the
 * policy-independent invariants (job/work/capacity conservation, no
 * negative queueing delay) and the FIFO differential, with shrinking
 * reproducers. Override the sweep with PAICHAR_SCHED_SEED=N to
 * replay one seed. `ctest -L sched`.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "clustersim/scheduler.h"
#include "testkit/sched_oracle.h"

namespace paichar::testkit {
namespace {

using clustersim::ClusterOutcome;
using clustersim::ClusterScheduler;
using clustersim::Policy;
using clustersim::SchedulerConfig;

SchedulerConfig
fuzzCluster()
{
    SchedulerConfig cfg;
    cfg.num_servers = 16;
    cfg.gpus_per_server = 8;
    cfg.nvlink_fraction = 0.5;
    cfg.record_job_log = false;
    return cfg;
}

const std::vector<Policy> &
allPolicies()
{
    static const std::vector<Policy> ps{
        Policy::Fifo, Policy::Backfill, Policy::Spf,
        Policy::SpfPreempt, Policy::Gang};
    return ps;
}

TEST(SchedOracle, GenRequestsAreSeedPureAndOrdered)
{
    JobGenerator gen;
    SchedStreamOptions opt;
    auto a = genRequests(gen, 99, opt, 16);
    auto b = genRequests(gen, 99, opt, 16);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].job.id, b[i].job.id);
        EXPECT_DOUBLE_EQ(a[i].submit_time, b[i].submit_time);
        EXPECT_EQ(a[i].num_steps, b[i].num_steps);
        EXPECT_LE(a[i].job.num_cnodes, 16);
        if (i > 0)
            EXPECT_GT(a[i].submit_time, a[i - 1].submit_time);
    }
    auto c = genRequests(gen, 100, opt, 16);
    bool differs = false;
    for (size_t i = 0; i < a.size() && !differs; ++i)
        differs = a[i].num_steps != c[i].num_steps;
    EXPECT_TRUE(differs) << "different seeds, identical stream";
}

TEST(SchedOracle, FuzzedStreamsHoldInvariantsUnderEveryPolicy)
{
    JobGenerator gen;
    SchedStreamOptions opt;
    opt.num_jobs = 50;
    opt.jobs_per_hour = 600.0; // saturating: queues actually form

    uint64_t base_seed = 7100;
    int count = 6;
    if (const char *env = std::getenv("PAICHAR_SCHED_SEED")) {
        base_seed = std::strtoull(env, nullptr, 10);
        count = 1;
    }
    auto failure = fuzzPolicies(
        gen, base_seed, count, allPolicies(), fuzzCluster(), opt,
        "PAICHAR_SCHED_SEED={seed} ./sched_oracle_test "
        "--gtest_filter='*FuzzedStreams*'");
    if (failure)
        FAIL() << describe(*failure);
}

TEST(SchedOracle, PreemptionHeavyStreamsConserveWork)
{
    // Skewed streams (long medians, high sigma) at a preempt-happy
    // ratio maximize preemption churn; the work-conservation and
    // capacity invariants must survive it.
    JobGenerator gen;
    SchedStreamOptions opt;
    opt.num_jobs = 40;
    opt.jobs_per_hour = 900.0;
    opt.steps_median = 500.0;
    opt.steps_sigma = 1.6;
    SchedulerConfig cfg = fuzzCluster();
    cfg.preempt_ratio = 1.5;
    cfg.max_preemptions = 8;
    auto failure =
        fuzzPolicies(gen, 8200, 4, {Policy::SpfPreempt}, cfg, opt,
                     "PAICHAR_SCHED_SEED={seed} ./sched_oracle_test "
                     "--gtest_filter='*PreemptionHeavy*'");
    if (failure)
        FAIL() << describe(*failure);
}

TEST(SchedOracle, DetectsLostAndDuplicatedJobs)
{
    JobGenerator gen;
    SchedStreamOptions opt;
    opt.num_jobs = 12;
    auto reqs = genRequests(gen, 5, opt, 16);
    SchedulerConfig cfg = fuzzCluster();
    core::AnalyticalModel model(hw::paiCluster());
    auto out = ClusterScheduler(cfg, model).run(reqs);
    ASSERT_FALSE(checkSchedInvariants(reqs, cfg, out).has_value());

    // Lose a job.
    ClusterOutcome lost = out;
    lost.jobs.pop_back();
    auto msg = checkSchedInvariants(reqs, cfg, lost);
    ASSERT_TRUE(msg.has_value());
    EXPECT_NE(msg->find("conservation"), std::string::npos) << *msg;

    // Duplicate a job (and keep counts consistent to get past the
    // conservation gate).
    ClusterOutcome dup = out;
    dup.jobs.back() = dup.jobs.front();
    msg = checkSchedInvariants(reqs, cfg, dup);
    ASSERT_TRUE(msg.has_value());
    EXPECT_NE(msg->find("twice"), std::string::npos) << *msg;
}

TEST(SchedOracle, DetectsCausalityAndCapacityViolations)
{
    JobGenerator gen;
    SchedStreamOptions opt;
    opt.num_jobs = 12;
    auto reqs = genRequests(gen, 6, opt, 16);
    SchedulerConfig cfg = fuzzCluster();
    core::AnalyticalModel model(hw::paiCluster());
    auto out = ClusterScheduler(cfg, model).run(reqs);
    ASSERT_FALSE(checkSchedInvariants(reqs, cfg, out).has_value());

    // Negative queueing delay.
    ClusterOutcome neg = out;
    neg.jobs.front().start_time =
        neg.jobs.front().submit_time - 1.0;
    auto msg = checkSchedInvariants(reqs, cfg, neg);
    ASSERT_TRUE(msg.has_value());
    EXPECT_NE(msg->find("queueing delay"), std::string::npos) << *msg;

    // Capacity overflow: one outcome claims more GPUs than exist.
    ClusterOutcome over = out;
    over.jobs.front().gpus =
        cfg.num_servers * cfg.gpus_per_server + 1;
    msg = checkSchedInvariants(reqs, cfg, over);
    ASSERT_TRUE(msg.has_value());
    EXPECT_NE(msg->find("capacity"), std::string::npos) << *msg;
}

TEST(SchedOracle, DetectsWorkLossAndFifoDivergence)
{
    JobGenerator gen;
    SchedStreamOptions opt;
    opt.num_jobs = 12;
    auto reqs = genRequests(gen, 7, opt, 16);
    SchedulerConfig cfg = fuzzCluster();
    core::AnalyticalModel model(hw::paiCluster());
    auto out = ClusterScheduler(cfg, model).run(reqs);

    // A job that finished early lost training steps.
    ClusterOutcome short_run = out;
    for (auto &jo : short_run.jobs) {
        if (std::isfinite(jo.finish_time) && jo.num_steps > 1) {
            jo.finish_time =
                jo.start_time + jo.step_s * (jo.num_steps / 2);
            break;
        }
    }
    auto msg = checkSchedInvariants(reqs, cfg, short_run);
    ASSERT_TRUE(msg.has_value());
    EXPECT_NE(msg->find("work lost"), std::string::npos) << *msg;

    // FIFO differential: a policy run that rewrote a step count.
    ClusterOutcome tampered = out;
    tampered.jobs.front().num_steps += 1;
    auto diff = checkAgainstFifo(tampered, out);
    ASSERT_TRUE(diff.has_value());
    EXPECT_NE(diff->find("diverge"), std::string::npos) << *diff;
    EXPECT_FALSE(checkAgainstFifo(out, out).has_value());
}

TEST(SchedOracle, DescribeRendersReproducer)
{
    SchedFuzzFailure f;
    f.seed = 42;
    f.policy = Policy::SpfPreempt;
    f.message = "capacity exceeded";
    f.stream_jobs = 50;
    JobGenerator gen;
    SchedStreamOptions opt;
    opt.num_jobs = 2;
    f.shrunk = genRequests(gen, 1, opt, 16);
    f.repro = "PAICHAR_SCHED_SEED=42 ./sched_oracle_test";
    std::string text = describe(f);
    EXPECT_NE(text.find("seed:    42"), std::string::npos);
    EXPECT_NE(text.find("spf-preempt"), std::string::npos);
    EXPECT_NE(text.find("capacity exceeded"), std::string::npos);
    EXPECT_NE(text.find("shrunk to 2"), std::string::npos);
    EXPECT_NE(text.find("PAICHAR_SCHED_SEED=42"), std::string::npos);
}

} // namespace
} // namespace paichar::testkit
