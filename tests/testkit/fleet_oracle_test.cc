/**
 * @file
 * Fleet-oracle tests (`ctest -L serve`): the byte-exact differential
 * between a one-server greedy fleet and the seed ServingSimulator,
 * direct invariant checks, oracle sensitivity (a corrupted result
 * must be caught), and the fuzzed sweep over fleet shapes.
 *
 * PAICHAR_FLEET_SEED replays the fuzz sweep from a specific seed (the
 * reproducer printed by describe()).
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "testkit/fleet_oracle.h"
#include "workload/model_zoo.h"

namespace paichar::testkit {
namespace {

using inference::FleetConfig;
using inference::FleetResult;
using inference::FleetSimulator;
using inference::InferenceWorkload;
using inference::ModelLoad;

InferenceWorkload
resnetServing()
{
    return InferenceWorkload::fromTraining(
        workload::ModelZoo::resnet50());
}

TEST(FleetOracleTest, SingleServerFleetMatchesSeedSimulatorExactly)
{
    // The headline differential: byte-for-byte, across loads from
    // comfortable to saturated and both batch bounds.
    auto w = resnetServing();
    for (double qps : {50.0, 400.0, 1200.0, 3000.0}) {
        for (int max_batch : {1, 8}) {
            auto msg = checkSingleServerEquivalence(w, qps, 4000,
                                                    77, max_batch);
            EXPECT_FALSE(msg.has_value())
                << "qps=" << qps << " max_batch=" << max_batch
                << ": " << *msg;
        }
    }
}

TEST(FleetOracleTest, InvariantsHoldOnAHealthyRun)
{
    FleetConfig cfg;
    cfg.num_servers = 3;
    cfg.record_requests = true;
    stats::ArrivalConfig a;
    a.qps = 800.0;
    std::vector<ModelLoad> models = {{resnetServing(), a}};
    auto r = FleetSimulator(cfg).run(models, 6000, 11);
    auto msg = checkFleetInvariants(cfg, models, r);
    EXPECT_FALSE(msg.has_value()) << *msg;
}

TEST(FleetOracleTest, RequiresTheRequestLog)
{
    FleetConfig cfg; // record_requests off
    stats::ArrivalConfig a;
    a.qps = 100.0;
    std::vector<ModelLoad> models = {{resnetServing(), a}};
    auto r = FleetSimulator(cfg).run(models, 500, 11);
    auto msg = checkFleetInvariants(cfg, models, r);
    ASSERT_TRUE(msg.has_value());
    EXPECT_NE(msg->find("record_requests"), std::string::npos);
}

TEST(FleetOracleTest, DetectsCorruptedResults)
{
    // Oracle sensitivity: break each invariant class in a recorded
    // result and require the matching complaint.
    FleetConfig cfg;
    cfg.num_servers = 2;
    cfg.record_requests = true;
    stats::ArrivalConfig a;
    a.qps = 500.0;
    std::vector<ModelLoad> models = {{resnetServing(), a}};
    FleetResult good = FleetSimulator(cfg).run(models, 2000, 13);
    ASSERT_FALSE(checkFleetInvariants(cfg, models, good));

    {
        FleetResult bad = good; // lose a completion
        bad.completed -= 1;
        auto msg = checkFleetInvariants(cfg, models, bad);
        ASSERT_TRUE(msg.has_value());
        EXPECT_NE(msg->find("conservation"), std::string::npos);
    }
    {
        FleetResult bad = good; // a request served before arriving
        bad.requests[5].start = bad.requests[5].arrival - 1.0;
        auto msg = checkFleetInvariants(cfg, models, bad);
        ASSERT_TRUE(msg.has_value());
        EXPECT_NE(msg->find("starts before"), std::string::npos);
    }
    {
        FleetResult bad = good; // an oversized launch
        bad.requests[7].batch = cfg.max_batch + 1;
        auto msg = checkFleetInvariants(cfg, models, bad);
        ASSERT_TRUE(msg.has_value());
        EXPECT_NE(msg->find("batch"), std::string::npos);
    }
    {
        FleetResult bad = good; // busy time beyond uptime
        bad.servers[0].busy = bad.servers[0].uptime + 1.0;
        auto msg = checkFleetInvariants(cfg, models, bad);
        ASSERT_TRUE(msg.has_value());
        EXPECT_NE(msg->find("capacity"), std::string::npos);
    }
    {
        FleetResult bad = good; // overlapping launches on one GPU
        bad.requests[3].server = bad.requests[4].server;
        bad.requests[3].start = bad.requests[4].start - 1e-4;
        bad.requests[3].completion = bad.requests[4].completion;
        auto msg = checkFleetInvariants(cfg, models, bad);
        ASSERT_TRUE(msg.has_value());
    }
    {
        FleetResult bad = good; // incoherent quantiles
        bad.p95_latency = bad.p99_latency * 2.0;
        auto msg = checkFleetInvariants(cfg, models, bad);
        ASSERT_TRUE(msg.has_value());
        EXPECT_NE(msg->find("quantiles"), std::string::npos);
    }
}

TEST(FleetOracleTest, FuzzedShapesUpholdEveryInvariant)
{
    uint64_t base_seed = 20190701;
    int count = 25;
    if (const char *env = std::getenv("PAICHAR_FLEET_SEED")) {
        base_seed = std::strtoull(env, nullptr, 10);
        count = 1;
    }
    auto failure = fuzzFleet(base_seed, count, 2000);
    EXPECT_FALSE(failure.has_value()) << describe(*failure);
}

} // namespace
} // namespace paichar::testkit
