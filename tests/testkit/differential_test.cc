/**
 * @file
 * Differential analytical-vs-simulator suite (Fig 12's <10% contract).
 *
 * The main population runs >= 500 generated jobs through both the
 * closed-form model and the event-driven simulator and requires
 * agreement within the default 10% tolerance; any violation prints a
 * shrunk single-seed reproducer. The documented exceptions (PEARL,
 * AllReduce-Cluster beyond two servers — see testkit/differential.h)
 * are asserted separately under explicit bounds so a regression in
 * either direction is caught.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "testkit/differential.h"
#include "workload/arch_type.h"

namespace paichar::testkit {
namespace {

using workload::ArchType;

constexpr uint64_t kBaseSeed = 20190601;
constexpr int kPopulation = 600; // acceptance floor is 500

TEST(DifferentialTest, PopulationAgreesWithinTenPercent)
{
    DifferentialOracle oracle;
    auto report = oracle.run(kBaseSeed, kPopulation);
    EXPECT_EQ(report.count, kPopulation);
    EXPECT_EQ(report.violations, 0) << oracle.explain(report.worst);
    EXPECT_LE(report.worst.rel_error, oracle.options().tolerance)
        << oracle.explain(report.worst);
    // The population mean should sit well inside the tolerance; a
    // creeping systematic bias shows up here before it breaks 10%.
    EXPECT_LT(report.mean_rel_error, 0.05);
}

TEST(DifferentialTest, ReportIsIdenticalAcrossThreadCounts)
{
    DifferentialOracle oracle;
    auto serial = oracle.run(kBaseSeed, 64, nullptr);
    runtime::ThreadPool pool(4);
    auto parallel = oracle.run(kBaseSeed, 64, &pool);
    EXPECT_EQ(serial.violations, parallel.violations);
    EXPECT_EQ(serial.worst.seed, parallel.worst.seed);
    EXPECT_EQ(serial.worst.rel_error, parallel.worst.rel_error);
    EXPECT_EQ(serial.mean_rel_error, parallel.mean_rel_error);
}

/**
 * The reproducer entry point printed by DifferentialOracle::explain():
 * PAICHAR_DIFF_SEED=<n> re-evaluates exactly that generated job and
 * prints both sides. Without the variable it exercises the base seed,
 * so the test always runs (golden/fuzz/differential tests never skip).
 */
TEST(DifferentialTest, SingleSeedReproducer)
{
    uint64_t seed = kBaseSeed;
    if (const char *env = std::getenv("PAICHAR_DIFF_SEED"))
        seed = std::strtoull(env, nullptr, 10);
    DifferentialOracle oracle;
    DiffCase c = oracle.evaluateSeed(seed);
    RecordProperty("seed", std::to_string(seed));
    EXPECT_LE(c.rel_error, oracle.options().tolerance)
        << oracle.explain(c);
}

TEST(DifferentialTest, EveryInRegimeArchitectureAgreesAlone)
{
    for (ArchType arch :
         {ArchType::OneWorkerOneGpu, ArchType::OneWorkerMultiGpu,
          ArchType::PsWorker, ArchType::AllReduceLocal,
          ArchType::AllReduceCluster}) {
        DiffOptions opts;
        opts.ranges = GenRanges::differential();
        opts.ranges.archs = {arch};
        DifferentialOracle oracle(opts);
        auto report = oracle.run(kBaseSeed, 50);
        EXPECT_EQ(report.violations, 0)
            << workload::toString(arch) << ":\n"
            << oracle.explain(report.worst);
    }
}

TEST(DifferentialTest, AgreementHoldsOffTheDefaultEfficiency)
{
    for (double eff : {1.0, 0.5}) {
        DiffOptions opts;
        opts.efficiency = eff;
        DifferentialOracle oracle(opts);
        auto report = oracle.run(kBaseSeed, 100);
        EXPECT_EQ(report.violations, 0)
            << "efficiency " << eff << ":\n"
            << oracle.explain(report.worst);
    }
}

/**
 * Documented exception 1: PEARL. The simulator spreads each GPU's
 * sparse share across the NVLink mesh links and rings the dense part,
 * while the model charges (dense + sparse/n) on a single link — a
 * deliberate fidelity gap. Assert it stays bounded (neither side ever
 * beyond 3x the other) so the divergence cannot silently grow.
 */
TEST(DifferentialTest, ExceptionPearlStaysWithinDocumentedBound)
{
    DiffOptions opts;
    opts.ranges = GenRanges{}; // full production ranges
    opts.ranges.archs = {ArchType::Pearl};
    opts.ranges.embedding_prob = 1.0;
    DifferentialOracle oracle(opts);
    double worst_ratio = 1.0;
    for (uint64_t seed = kBaseSeed; seed < kBaseSeed + 100; ++seed) {
        DiffCase c = oracle.evaluateSeed(seed);
        ASSERT_GT(c.simulated, 0.0);
        ASSERT_GT(c.analytical, 0.0);
        double ratio = c.analytical > c.simulated
                           ? c.analytical / c.simulated
                           : c.simulated / c.analytical;
        worst_ratio = std::max(worst_ratio, ratio);
        EXPECT_LE(ratio, 3.0) << oracle.explain(c);
    }
    RecordProperty("worst_pearl_ratio", std::to_string(worst_ratio));
}

/**
 * Documented exception 2: AllReduce-Cluster beyond two servers. The
 * simulator's hierarchical collective rings s NIC endpoints (charging
 * 2(s-1)/s buffers on Ethernet) while the model charges exactly one
 * buffer, so the simulator is systematically the slower side and the
 * gap approaches 2x on communication-bound jobs as s grows.
 */
TEST(DifferentialTest, ExceptionDeepClusterAllReduceIsBounded)
{
    DiffOptions opts;
    opts.ranges.archs = {ArchType::AllReduceCluster};
    opts.ranges.cnodes_ar_cluster = {25, 64}; // 4..8 servers
    DifferentialOracle oracle(opts);
    for (uint64_t seed = kBaseSeed; seed < kBaseSeed + 100; ++seed) {
        DiffCase c = oracle.evaluateSeed(seed);
        ASSERT_GT(c.analytical, 0.0);
        // One-sided: the NIC ring only ever adds traffic.
        EXPECT_GE(c.simulated, c.analytical * (1 - opts.tolerance))
            << oracle.explain(c);
        EXPECT_LE(c.simulated, c.analytical * 2.0)
            << oracle.explain(c);
    }
}

TEST(DifferentialTest, ExplainPrintsAShrunkReproducer)
{
    DiffOptions opts;
    opts.tolerance = 1e-6; // force violations to exercise reporting
    opts.ranges.archs = {ArchType::AllReduceCluster};
    DifferentialOracle oracle(opts);
    auto report = oracle.run(kBaseSeed, 50);
    ASSERT_GT(report.worst.rel_error, opts.tolerance);
    std::string text = oracle.explain(report.worst);
    EXPECT_NE(text.find("reproduce: PAICHAR_DIFF_SEED="),
              std::string::npos);
    EXPECT_NE(text.find("shrunk:"), std::string::npos);
    EXPECT_NE(text.find(std::to_string(report.worst.seed)),
              std::string::npos);
}

} // namespace
} // namespace paichar::testkit
