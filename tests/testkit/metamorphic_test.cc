/**
 * @file
 * Metamorphic properties of the analytical model (Sec II-B), checked
 * over generated job populations via the testkit property harness.
 *
 * Each property states a relation that must hold for *every* job —
 * raising a hardware capacity never increases the term it feeds,
 * component times add up to the step time, derating scales linearly —
 * rather than pinning specific numbers. Violations shrink to a
 * near-minimal counterexample with a one-seed reproducer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <string>

#include "core/analytical_model.h"
#include "core/projection.h"
#include "hw/hardware_config.h"
#include "testkit/gen.h"
#include "testkit/property.h"

namespace paichar::testkit {
namespace {

using core::AnalyticalModel;
using core::Component;
using core::EfficiencyAssumption;
using core::HwComponent;
using core::OverlapMode;
using core::TimeBreakdown;
using workload::ArchType;
using workload::TrainingJob;

constexpr int kJobsPerProperty = 300;
constexpr uint64_t kBaseSeed = 20190301;
constexpr const char *kRepro =
    "PAICHAR_TESTKIT_SEED={seed} ./tests/metamorphic_test";

/** EXPECT wrapper: render the shrunk counterexample on failure. */
void
expectHolds(const JobGenerator &gen, const JobProperty &prop)
{
    auto failure = checkJobs(gen, kBaseSeed, kJobsPerProperty, prop,
                             kRepro);
    EXPECT_FALSE(failure.has_value())
        << (failure ? describe(*failure) : "");
}

/** Relative closeness that tolerates both operands being zero. */
bool
near(double a, double b, double rel = 1e-9)
{
    return std::abs(a - b) <= rel * std::max({std::abs(a), std::abs(b),
                                              1e-300});
}

TEST(MetamorphicTest, ComponentTimesAddUpToTheStepTime)
{
    AnalyticalModel model(hw::paiCluster());
    expectHolds(JobGenerator{}, [&](const TrainingJob &j)
                    -> std::optional<std::string> {
        TimeBreakdown b = model.breakdown(j);
        double total = b.total(OverlapMode::NonOverlap);
        double sum = b.t_data + b.compute() + b.t_weight;
        if (!near(total, sum))
            return "Td + Tc + Tw != Ttotal";
        double legs =
            b.t_weight_ethernet + b.t_weight_pcie + b.t_weight_nvlink;
        if (!near(b.t_weight, legs))
            return "Tw legs do not sum to Tw";
        double comp_sum = 0.0;
        for (Component c : core::kAllComponents)
            comp_sum += b.time(c);
        if (!near(comp_sum, total))
            return "component times do not sum to Ttotal";
        double hw_sum = 0.0;
        for (HwComponent h : core::kAllHwComponents)
            hw_sum += b.hwTime(h);
        if (!near(hw_sum, total))
            return "hardware attribution does not sum to Ttotal";
        if (total > 0.0) {
            double frac_sum = 0.0;
            for (Component c : core::kAllComponents)
                frac_sum += b.fraction(c);
            if (!near(frac_sum, 1.0))
                return "component fractions do not sum to 1";
        }
        return std::nullopt;
    });
}

TEST(MetamorphicTest, RaisingACapacityNeverRaisesItsTermOrTheTotal)
{
    struct Case
    {
        hw::Resource resource;
        double upgraded_value; // Table III row units
        HwComponent term;
    };
    // Double each Table I capacity (25 Gbps Ethernet, 10 GB/s PCIe,
    // 11 TFLOPs GPUs, 1 TB/s HBM).
    const Case cases[] = {
        {hw::Resource::Ethernet, 50.0, HwComponent::Ethernet},
        {hw::Resource::Pcie, 20.0, HwComponent::Pcie},
        {hw::Resource::GpuFlops, 22.0, HwComponent::GpuFlops},
        {hw::Resource::GpuMemory, 2.0, HwComponent::GpuMemory},
    };
    const hw::ClusterSpec base = hw::paiCluster();
    for (const Case &c : cases) {
        AnalyticalModel before(base);
        AnalyticalModel after(
            hw::withResource(base, c.resource, c.upgraded_value));
        expectHolds(JobGenerator{}, [&](const TrainingJob &j)
                        -> std::optional<std::string> {
            TimeBreakdown b0 = before.breakdown(j);
            TimeBreakdown b1 = after.breakdown(j);
            const std::string what = hw::toString(c.resource);
            if (b1.hwTime(c.term) > b0.hwTime(c.term) * (1 + 1e-12))
                return "raising " + what + " increased its own term";
            if (b1.total() > b0.total() * (1 + 1e-12))
                return "raising " + what + " increased Ttotal";
            // Untargeted hardware terms must be untouched.
            for (HwComponent h : core::kAllHwComponents) {
                // PCIe feeds both data I/O and (1wng) weight legs, but
                // it is still a single hardware term; others are
                // independent of this resource.
                if (h == c.term)
                    continue;
                if (!near(b1.hwTime(h), b0.hwTime(h)))
                    return "raising " + what + " changed the " +
                           core::toString(h) + " term";
            }
            return std::nullopt;
        });
    }
}

TEST(MetamorphicTest, UniformDeratingScalesTimeExactlyLinearly)
{
    const hw::ClusterSpec spec = hw::paiCluster();
    AnalyticalModel ideal(spec, EfficiencyAssumption{1.0, 1.0});
    AnalyticalModel paper(spec, EfficiencyAssumption{0.7, 0.7});
    AnalyticalModel half(spec, EfficiencyAssumption{0.35, 0.35});
    expectHolds(JobGenerator{}, [&](const TrainingJob &j)
                    -> std::optional<std::string> {
        double t1 = ideal.stepTime(j);
        double t07 = paper.stepTime(j);
        double t035 = half.stepTime(j);
        if (!near(t07, t1 / 0.7))
            return "70% derate is not a 1/0.7 slowdown";
        if (!near(t035, 2.0 * t07))
            return "halving the efficiency did not double the time";
        if (t035 + 1e-300 < t07 || t07 + 1e-300 < t1)
            return "step time is not monotone in the derate";
        return std::nullopt;
    });
}

TEST(MetamorphicTest, OverlapModeBoundsTheStepTime)
{
    AnalyticalModel model(hw::paiCluster());
    expectHolds(JobGenerator{}, [&](const TrainingJob &j)
                    -> std::optional<std::string> {
        double overlap = model.stepTime(j, OverlapMode::IdealOverlap);
        double serial = model.stepTime(j, OverlapMode::NonOverlap);
        if (overlap > serial * (1 + 1e-12))
            return "ideal overlap is slower than non-overlap";
        if (serial > 3.0 * overlap * (1 + 1e-12))
            return "non-overlap exceeds 3x the ideal-overlap bound";
        return std::nullopt;
    });
}

TEST(MetamorphicTest, ThroughputFollowsEq2)
{
    AnalyticalModel model(hw::paiCluster());
    expectHolds(JobGenerator{}, [&](const TrainingJob &j)
                    -> std::optional<std::string> {
        double t = model.stepTime(j);
        if (t <= 0.0) // degenerate shrink artifacts have no throughput
            return std::nullopt;
        double expected = j.num_cnodes / t * j.features.batch_size;
        if (!near(model.throughput(j), expected))
            return "throughput != #cNode / Ttotal * batch_size";
        return std::nullopt;
    });
}

TEST(MetamorphicTest, ProjectionRemapPreservesDemandsAndClampsScale)
{
    AnalyticalModel model(hw::paiCluster());
    core::ArchitectureProjector projector(model);
    const int gpus = hw::paiCluster().server.gpus_per_server;
    expectHolds(JobGenerator{}, [&](const TrainingJob &j)
                    -> std::optional<std::string> {
        TrainingJob local = projector.remap(j, ArchType::AllReduceLocal);
        if (local.arch != ArchType::AllReduceLocal || local.num_ps != 0)
            return "remap to AllReduce-Local left stale meta info";
        if (local.num_cnodes != std::min(j.num_cnodes, gpus))
            return "AllReduce-Local remap did not clamp to one server";
        TrainingJob cluster =
            projector.remap(j, ArchType::AllReduceCluster);
        if (cluster.num_cnodes != j.num_cnodes)
            return "AllReduce-Cluster remap changed the cNode count";
        if (jobCsvRow(local) !=
            jobCsvRow([&] {
                TrainingJob expect = j;
                expect.arch = ArchType::AllReduceLocal;
                expect.num_ps = 0;
                expect.num_cnodes = std::min(j.num_cnodes, gpus);
                return expect;
            }()))
            return "remap altered the workload features";
        return std::nullopt;
    });
}

TEST(MetamorphicTest, ProjectionSpeedupsAreConsistent)
{
    AnalyticalModel model(hw::paiCluster());
    core::ArchitectureProjector projector(model);
    expectHolds(JobGenerator{}, [&](const TrainingJob &j)
                    -> std::optional<std::string> {
        for (ArchType target :
             {ArchType::AllReduceLocal, ArchType::AllReduceCluster}) {
            auto r = projector.project(j, target);
            if (r.new_step_time <= 0.0 || r.old_step_time <= 0.0)
                continue;
            if (!near(r.single_node_speedup,
                      r.old_step_time / r.new_step_time))
                return "single-node speedup != old/new step time";
            double scale = static_cast<double>(r.projected.num_cnodes) /
                           j.num_cnodes;
            if (!near(r.throughput_speedup,
                      r.single_node_speedup * scale))
                return "throughput speedup inconsistent with Eq 2";
            // Weight traffic moved off the old medium: a local
            // AllReduce job must not touch Ethernet.
            if (target == ArchType::AllReduceLocal &&
                model.breakdown(r.projected).t_weight_ethernet != 0.0)
                return "projected AllReduce-Local job still "
                       "charges Ethernet";
        }
        return std::nullopt;
    });
}

TEST(MetamorphicTest, PearlPartitionsOnlyTheSparseTraffic)
{
    AnalyticalModel model(hw::paiCluster());
    GenRanges pearl_only;
    pearl_only.archs = {ArchType::Pearl};
    pearl_only.embedding_prob = 1.0;
    expectHolds(JobGenerator{pearl_only}, [&](const TrainingJob &j)
                    -> std::optional<std::string> {
        if (j.features.comm_bytes <= 0.0)
            return std::nullopt;
        TrainingJob two = j, eight = j;
        two.num_cnodes = 2;
        eight.num_cnodes = 8;
        double w2 = model.breakdown(two).t_weight;
        double w8 = model.breakdown(eight).t_weight;
        if (w8 > w2 * (1 + 1e-12))
            return "more GPUs increased PEARL weight traffic";
        double dense = j.features.denseCommBytes();
        double emb = j.features.embedding_comm_bytes;
        // Tw ratio must follow (dense + emb/n)/NVLink exactly.
        double expected = (dense + emb / 8.0) / (dense + emb / 2.0);
        if (w2 > 0.0 && !near(w8 / w2, expected, 1e-9))
            return "PEARL Tw does not follow (dense + sparse/n)";
        return std::nullopt;
    });
}

TEST(MetamorphicTest, RingAwarenessAppliesTheRingFactor)
{
    const hw::ClusterSpec spec = hw::paiCluster();
    AnalyticalModel plain(spec);
    AnalyticalModel ring(spec);
    ring.setRingAware(true);
    GenRanges ar_only;
    ar_only.archs = {ArchType::AllReduceLocal};
    expectHolds(JobGenerator{ar_only}, [&](const TrainingJob &j)
                    -> std::optional<std::string> {
        if (j.arch != ArchType::AllReduceLocal || j.num_cnodes < 2)
            return std::nullopt;
        double w0 = plain.breakdown(j).t_weight;
        double w1 = ring.breakdown(j).t_weight;
        double n = j.num_cnodes;
        if (w0 > 0.0 && !near(w1 / w0, 2.0 * (n - 1) / n, 1e-9))
            return "ring-aware Tw is not 2(n-1)/n of the paper's Tw";
        return std::nullopt;
    });
}

TEST(MetamorphicTest, PcieContentionMultipliesByColocatedReplicas)
{
    const hw::ClusterSpec spec = hw::paiCluster();
    AnalyticalModel shared(spec);
    AnalyticalModel solo(spec);
    shared.setPcieContention(true);
    solo.setPcieContention(false);
    expectHolds(JobGenerator{}, [&](const TrainingJob &j)
                    -> std::optional<std::string> {
        double d0 = solo.breakdown(j).t_data;
        double d1 = shared.breakdown(j).t_data;
        int replicas = AnalyticalModel::colocatedReplicas(j, spec);
        if (replicas < 1)
            return "colocatedReplicas below 1";
        if (d0 > 0.0 && !near(d1 / d0, replicas, 1e-9))
            return "PCIe contention is not a per-replica slowdown";
        return std::nullopt;
    });
}

} // namespace
} // namespace paichar::testkit
