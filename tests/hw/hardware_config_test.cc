/**
 * @file
 * Tests for hardware presets (Table I), the Table III variation grid,
 * and resource substitution/normalization.
 */

#include <gtest/gtest.h>

#include "hw/hardware_config.h"
#include "hw/units.h"

namespace paichar::hw {
namespace {

TEST(UnitsTest, Conversions)
{
    EXPECT_DOUBLE_EQ(gbPerSec(10.0), 10e9);
    EXPECT_DOUBLE_EQ(gbitPerSec(25.0), 25e9 / 8.0);
    EXPECT_DOUBLE_EQ(kGB, 1e9);
    EXPECT_DOUBLE_EQ(kTFLOPs, 1e12);
}

TEST(PresetTest, PaiClusterMatchesTableI)
{
    ClusterSpec c = paiCluster();
    EXPECT_DOUBLE_EQ(c.server.gpu.peak_flops, 11e12);
    EXPECT_DOUBLE_EQ(c.server.gpu.mem_bandwidth, 1e12);
    EXPECT_DOUBLE_EQ(c.ethernet_bandwidth, 25e9 / 8.0);
    EXPECT_DOUBLE_EQ(c.server.pcie_bandwidth, 10e9);
    EXPECT_DOUBLE_EQ(c.server.nvlink_bandwidth, 50e9);
    EXPECT_DOUBLE_EQ(c.efficiency, 0.7);
    EXPECT_TRUE(c.server.has_nvlink);
    EXPECT_EQ(c.server.gpus_per_server, 8);
}

TEST(PresetTest, V100TestbedMatchesSecIV)
{
    ClusterSpec c = v100Testbed();
    EXPECT_DOUBLE_EQ(c.server.gpu.peak_flops, 15e12);
    EXPECT_DOUBLE_EQ(c.server.gpu.mem_bandwidth, 900e9);
    EXPECT_EQ(c.num_servers, 64);
    EXPECT_DOUBLE_EQ(c.server.gpu.tensorcore_ratio, 8.0);
}

TEST(VariationsTest, TableIiiCandidates)
{
    HardwareVariations v = tableIiiVariations();
    EXPECT_EQ(v.ethernet_gbps, (std::vector<double>{10, 25, 100}));
    EXPECT_EQ(v.pcie_gbs, (std::vector<double>{10, 50}));
    EXPECT_EQ(v.gpu_peak_tflops, (std::vector<double>{8, 16, 32, 64}));
    EXPECT_EQ(v.gpu_mem_tbs, (std::vector<double>{1, 2, 4}));
}

TEST(ResourceTest, WithResourceReplacesOnlyTarget)
{
    ClusterSpec base = paiCluster();

    ClusterSpec eth = withResource(base, Resource::Ethernet, 100.0);
    EXPECT_DOUBLE_EQ(eth.ethernet_bandwidth, 100e9 / 8.0);
    EXPECT_DOUBLE_EQ(eth.server.pcie_bandwidth,
                     base.server.pcie_bandwidth);

    ClusterSpec pcie = withResource(base, Resource::Pcie, 50.0);
    EXPECT_DOUBLE_EQ(pcie.server.pcie_bandwidth, 50e9);
    EXPECT_DOUBLE_EQ(pcie.ethernet_bandwidth, base.ethernet_bandwidth);

    ClusterSpec fl = withResource(base, Resource::GpuFlops, 64.0);
    EXPECT_DOUBLE_EQ(fl.server.gpu.peak_flops, 64e12);

    ClusterSpec mem = withResource(base, Resource::GpuMemory, 4.0);
    EXPECT_DOUBLE_EQ(mem.server.gpu.mem_bandwidth, 4e12);
}

TEST(ResourceTest, NormalizationAgainstBase)
{
    ClusterSpec base = paiCluster();
    EXPECT_DOUBLE_EQ(
        normalizedResource(base, Resource::Ethernet, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(normalizedResource(base, Resource::Pcie, 50.0),
                     5.0);
    EXPECT_NEAR(normalizedResource(base, Resource::GpuFlops, 64.0),
                64.0 / 11.0, 1e-12);
    EXPECT_DOUBLE_EQ(
        normalizedResource(base, Resource::GpuMemory, 2.0), 2.0);
}

TEST(ResourceTest, Names)
{
    EXPECT_EQ(toString(Resource::Ethernet), "Ethernet");
    EXPECT_EQ(toString(Resource::Pcie), "PCIe");
    EXPECT_EQ(toString(Resource::GpuFlops), "GPU_FLOPs");
    EXPECT_EQ(toString(Resource::GpuMemory), "GPU_memory");
}

} // namespace
} // namespace paichar::hw
