/**
 * @file
 * Tests for the bottleneck analyzer: hand-built profiles with known
 * verdicts, plus end-to-end diagnoses of the case-study models that
 * must match the paper's own remedies.
 */

#include <gtest/gtest.h>

#include "profiler/bottleneck_report.h"
#include "testbed/training_sim.h"

namespace paichar::profiler {
namespace {

using workload::ModelZoo;
using workload::OpType;

OpRecord
op(const std::string &name, OpType type, double start, double end)
{
    OpRecord r;
    r.name = name;
    r.type = type;
    r.start = start;
    r.end = end;
    return r;
}

TEST(BottleneckReportTest, ComputeBoundVerdict)
{
    RunMetadata md;
    md.ops.push_back(op("gemm", OpType::MatMul, 0.0, 0.9));
    md.ops.push_back(op("relu", OpType::ElementWise, 0.9, 1.0));
    BottleneckAnalyzer an(1e-6);
    auto r = an.analyze(md);
    EXPECT_EQ(r.bottleneck, Bottleneck::ComputeBound);
    EXPECT_NE(r.recommendation.find("mixed precision"),
              std::string::npos);
    EXPECT_NEAR(r.span, 1.0, 1e-12);
    ASSERT_EQ(r.by_type.size(), 2u);
    EXPECT_EQ(r.by_type[0].type, OpType::MatMul);
}

TEST(BottleneckReportTest, CommBoundVerdict)
{
    RunMetadata md;
    md.ops.push_back(op("gemm", OpType::MatMul, 0.0, 0.1));
    md.transfers.push_back({TransferKind::WeightSync,
                            Medium::Ethernet, 0, 1e9, 0.1, 2.0});
    BottleneckAnalyzer an;
    auto r = an.analyze(md);
    EXPECT_EQ(r.bottleneck, Bottleneck::CommBound);
    EXPECT_NE(r.recommendation.find("architecture"),
              std::string::npos);
}

TEST(BottleneckReportTest, DataBoundVerdict)
{
    RunMetadata md;
    md.transfers.push_back({TransferKind::InputData, Medium::Pcie, 0,
                            1e9, 0.0, 1.5});
    md.ops.push_back(op("gemm", OpType::MatMul, 1.5, 1.7));
    BottleneckAnalyzer an;
    auto r = an.analyze(md);
    EXPECT_EQ(r.bottleneck, Bottleneck::DataBound);
}

TEST(BottleneckReportTest, OverheadBoundVerdict)
{
    // Thousands of microscopic kernels with a large launch overhead.
    RunMetadata md;
    for (int i = 0; i < 5000; ++i) {
        double t = i * 1e-6;
        md.ops.push_back(op("tiny" + std::to_string(i),
                            OpType::ElementWise, t, t + 2e-7));
    }
    BottleneckAnalyzer an(/*launch_overhead=*/10e-6);
    auto r = an.analyze(md);
    EXPECT_EQ(r.bottleneck, Bottleneck::OverheadBound);
    EXPECT_NE(r.recommendation.find("fuse"), std::string::npos);
}

TEST(BottleneckReportTest, HotKernelsSortedAndCapped)
{
    RunMetadata md;
    md.ops.push_back(op("small", OpType::ElementWise, 0.0, 0.1));
    md.ops.push_back(op("big", OpType::MatMul, 0.1, 1.1));
    md.ops.push_back(op("mid", OpType::Conv, 1.1, 1.6));
    BottleneckAnalyzer an;
    auto r = an.analyze(md, 0, 2);
    ASSERT_EQ(r.hot_kernels.size(), 2u);
    EXPECT_EQ(r.hot_kernels[0].name, "big");
    EXPECT_EQ(r.hot_kernels[1].name, "mid");
}

TEST(BottleneckReportTest, DeviceFilterApplies)
{
    RunMetadata md;
    md.ops.push_back(op("dev0", OpType::MatMul, 0.0, 1.0));
    auto other = op("dev1", OpType::ElementWise, 0.0, 9.0);
    other.device = 1;
    md.ops.push_back(other);
    BottleneckAnalyzer an;
    auto r = an.analyze(md, 0);
    EXPECT_EQ(r.by_type.size(), 1u);
    EXPECT_NEAR(r.compute_seconds, 1.0, 1e-12);
}

TEST(BottleneckReportTest, EmptyMetadataIsSafe)
{
    BottleneckAnalyzer an;
    auto r = an.analyze(RunMetadata{});
    EXPECT_DOUBLE_EQ(r.span, 0.0);
    EXPECT_TRUE(r.by_type.empty());
    EXPECT_FALSE(r.render().empty());
}

TEST(BottleneckReportTest, CaseStudyDiagnosesMatchThePaper)
{
    // End to end: simulate, capture, diagnose. The verdicts must
    // match the remedies the paper applies per model (Sec IV-D).
    testbed::TrainingSimulator sim;
    BottleneckAnalyzer an(sim.options().kernel_launch_overhead);

    auto diagnose = [&](const workload::CaseStudyModel &m) {
        return an.analyze(sim.run(m).metadata).bottleneck;
    };
    // ResNet50: compute-dominated -> mixed precision (Fig 13a).
    EXPECT_EQ(diagnose(ModelZoo::resnet50()),
              Bottleneck::ComputeBound);
    // Speech: its 3.1% HBM efficiency inflates the element-wise time
    // to nearly the size of the compute time (0.73 s vs 0.87 s in
    // Fig 12); the verdict is on-device either way, and the memory
    // cost must be within 25% of the compute cost for the paper's
    // XLA remedy (Fig 13b) to pay off the way it does.
    {
        testbed::TrainingSimulator s2;
        auto r2 = s2.run(ModelZoo::speech());
        auto rep = an.analyze(r2.metadata);
        EXPECT_TRUE(rep.bottleneck == Bottleneck::ComputeBound ||
                    rep.bottleneck == Bottleneck::MemoryBound);
        EXPECT_GT(r2.compute_mem_time, 0.75 * r2.compute_flops_time);
    }
    // GCN forced onto PS/Worker: communication-bound (Fig 13d).
    auto gcn = ModelZoo::gcn();
    auto r = sim.run(gcn.graph, gcn.features,
                     workload::ArchType::PsWorker, gcn.num_cnodes,
                     gcn.measured_efficiency);
    EXPECT_EQ(an.analyze(r.metadata).bottleneck,
              Bottleneck::CommBound);
}

TEST(BottleneckReportTest, RenderContainsVerdict)
{
    RunMetadata md;
    md.ops.push_back(op("gemm", OpType::MatMul, 0.0, 1.0));
    BottleneckAnalyzer an;
    std::string text = an.analyze(md).render();
    EXPECT_NE(text.find("verdict: compute-bound"), std::string::npos);
    EXPECT_NE(text.find("MatMul"), std::string::npos);
}

} // namespace
} // namespace paichar::profiler
