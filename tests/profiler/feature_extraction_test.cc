/**
 * @file
 * Tests for the profiling layer: run-metadata reduction must recover
 * the workload features the simulator executed (the Fig 4 pipeline).
 */

#include <gtest/gtest.h>

#include "profiler/feature_extraction.h"
#include "testbed/training_sim.h"
#include "workload/model_zoo.h"

namespace paichar::profiler {
namespace {

using workload::ArchType;
using workload::ModelZoo;

TEST(FeatureExtractionTest, HandBuiltMetadata)
{
    RunMetadata md;
    md.meta = {ArchType::PsWorker, 16, 4, 256.0};
    md.ops.push_back({"mm", workload::OpType::MatMul, 0, 0.0, 1.0,
                      5e12, 1e9});
    md.ops.push_back({"ew", workload::OpType::ElementWise, 0, 1.0,
                      1.5, 0.0, 2e9});
    md.ops.push_back({"other_dev", workload::OpType::MatMul, 1, 0.0,
                      1.0, 9e12, 1e9});
    md.transfers.push_back({TransferKind::InputData, Medium::Pcie, 0,
                            3e8, 0.0, 0.1});
    md.transfers.push_back({TransferKind::WeightSync, Medium::Ethernet,
                            0, 5e8, 2.0, 2.5});
    md.transfers.push_back({TransferKind::WeightSync, Medium::Pcie, 0,
                            5e8, 2.5, 3.0});

    FeatureExtractor fx;
    auto job = fx.extract(md);
    EXPECT_EQ(job.arch, ArchType::PsWorker);
    EXPECT_EQ(job.num_cnodes, 16);
    EXPECT_EQ(job.num_ps, 4);
    EXPECT_DOUBLE_EQ(job.features.batch_size, 256.0);
    EXPECT_DOUBLE_EQ(job.features.flop_count, 5e12);
    EXPECT_DOUBLE_EQ(job.features.mem_access_bytes, 2e9);
    EXPECT_DOUBLE_EQ(job.features.input_bytes, 3e8);
    // Serial legs: the logical volume is the max per-medium sum.
    EXPECT_DOUBLE_EQ(job.features.comm_bytes, 5e8);

    EXPECT_DOUBLE_EQ(fx.kernelBusyTime(md, 0), 1.5);
    EXPECT_DOUBLE_EQ(fx.kernelBusyTime(md, 1), 1.0);
    EXPECT_DOUBLE_EQ(fx.span(md), 3.0);
}

TEST(FeatureExtractionTest, RoundTripThroughSimulatorPsWorker)
{
    // Simulate Multi-Interests (PS/Worker) and re-extract features
    // from the profile: compute/input/comm demands must round-trip.
    testbed::TrainingSimulator sim;
    auto m = ModelZoo::multiInterests();
    auto r = sim.run(m);

    FeatureExtractor fx;
    auto job = fx.extract(r.metadata);
    EXPECT_EQ(job.arch, m.arch);
    EXPECT_EQ(job.num_cnodes, m.num_cnodes);
    EXPECT_NEAR(job.features.flop_count / m.features.flop_count, 1.0,
                1e-9);
    EXPECT_NEAR(job.features.mem_access_bytes /
                    m.features.mem_access_bytes,
                1.0, 1e-9);
    EXPECT_NEAR(job.features.input_bytes / m.features.input_bytes,
                1.0, 1e-9);
    EXPECT_NEAR(job.features.comm_bytes / m.features.comm_bytes, 1.0,
                1e-9);
}

TEST(FeatureExtractionTest, RoundTripAllReduceWithinRingFactor)
{
    // For AllReduce the recorded traffic is the *moved* volume,
    // 2(n-1)/n of the logical buffer.
    testbed::TrainingSimulator sim;
    auto m = ModelZoo::resnet50();
    auto r = sim.run(m);
    FeatureExtractor fx;
    auto job = fx.extract(r.metadata);
    double n = m.num_cnodes;
    EXPECT_NEAR(job.features.comm_bytes,
                2.0 * (n - 1) / n * m.features.comm_bytes,
                1e-6 * m.features.comm_bytes);
}

TEST(FeatureExtractionTest, EmptyMetadata)
{
    FeatureExtractor fx;
    RunMetadata md;
    auto job = fx.extract(md);
    EXPECT_DOUBLE_EQ(job.features.flop_count, 0.0);
    EXPECT_DOUBLE_EQ(fx.span(md), 0.0);
    EXPECT_DOUBLE_EQ(fx.kernelBusyTime(md), 0.0);
}

} // namespace
} // namespace paichar::profiler
