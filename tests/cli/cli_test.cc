/**
 * @file
 * Tests for the paichar CLI (driven through the library entry point).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <sstream>

#include "cli/cli.h"

namespace paichar::cli {
namespace {

struct CliResult
{
    int code;
    std::string out;
    std::string err;
};

CliResult
runCli(std::vector<std::string> args)
{
    std::ostringstream out, err;
    int code = run(args, out, err);
    return {code, out.str(), err.str()};
}

TEST(CliTest, NoArgsPrintsUsageAndFails)
{
    auto r = runCli({});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.out.find("usage:"), std::string::npos);
}

TEST(CliTest, HelpSucceeds)
{
    auto r = runCli({"help"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("paichar"), std::string::npos);
}

TEST(CliTest, UnknownCommandFails)
{
    auto r = runCli({"frobnicate"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(CliTest, FlagWithoutValueFails)
{
    auto r = runCli({"generate", "--jobs"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("expects a value"), std::string::npos);
}

TEST(CliTest, NonNumericFlagValueFails)
{
    auto r = runCli({"generate", "--jobs", "abc"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("expects a number"), std::string::npos);
    EXPECT_NE(r.err.find("--jobs"), std::string::npos);
    EXPECT_NE(r.err.find("abc"), std::string::npos);
}

TEST(CliTest, TrailingGarbageInFlagValueFails)
{
    auto r = runCli({"generate", "--jobs", "10x"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("expects a number"), std::string::npos);
}

TEST(CliTest, ThreadsFlagRejectsNonPositiveValues)
{
    auto r = runCli({"generate", "--jobs", "10", "--threads", "0"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("--threads"), std::string::npos);

    auto bad = runCli({"generate", "--jobs", "10", "--threads", "x"});
    EXPECT_EQ(bad.code, 1);
}

TEST(CliTest, ThreadCountDoesNotChangeOutput)
{
    auto a = runCli({"generate", "--jobs", "200", "--seed", "11",
                     "--threads", "1"});
    auto b = runCli({"generate", "--jobs", "200", "--seed", "11",
                     "--threads", "4"});
    EXPECT_EQ(a.code, 0);
    EXPECT_EQ(b.code, 0);
    EXPECT_EQ(a.out, b.out);
}

TEST(CliTest, GenerateToStdout)
{
    auto r = runCli({"generate", "--jobs", "10", "--seed", "5"});
    EXPECT_EQ(r.code, 0);
    // Header + 10 rows.
    EXPECT_EQ(std::count(r.out.begin(), r.out.end(), '\n'), 11);
    EXPECT_NE(r.out.find("id,arch,num_cnodes"), std::string::npos);
}

TEST(CliTest, GenerateIsSeedDeterministic)
{
    auto a = runCli({"generate", "--jobs", "50", "--seed", "9"});
    auto b = runCli({"generate", "--jobs", "50", "--seed", "9"});
    auto c = runCli({"generate", "--jobs", "50", "--seed", "10"});
    EXPECT_EQ(a.out, b.out);
    EXPECT_NE(a.out, c.out);
}

class CliWithTraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Unique per process: ctest -j runs each test in its own
        // process, and a shared path would let one test's TearDown
        // delete the trace another test is reading.
        path_ = testing::TempDir() + "/paichar_cli_trace_" +
                std::to_string(::getpid()) + ".csv";
        auto r = runCli({"generate", "--jobs", "2000", "--seed",
                         "42", "--out", path_});
        ASSERT_EQ(r.code, 0) << r.err;
        ASSERT_NE(r.out.find("wrote 2000 jobs"), std::string::npos);
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

TEST_F(CliWithTraceTest, CharacterizeSummarizesTrace)
{
    auto r = runCli({"characterize", path_});
    EXPECT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("PS/Worker"), std::string::npos);
    EXPECT_NE(r.out.find("cNode-level breakdown"), std::string::npos);
}

TEST_F(CliWithTraceTest, ConvertRoundTripsThroughBinary)
{
    std::string bin_path = path_ + ".paib";
    std::string back_path = path_ + ".back.csv";

    // Output format is inferred from the .paib extension.
    auto to_bin = runCli({"convert", path_, bin_path});
    ASSERT_EQ(to_bin.code, 0) << to_bin.err;
    EXPECT_NE(to_bin.out.find("(bin)"), std::string::npos);

    auto to_csv = runCli(
        {"convert", bin_path, back_path, "--trace-format", "csv"});
    ASSERT_EQ(to_csv.code, 0) << to_csv.err;
    EXPECT_NE(to_csv.out.find("2000 jobs"), std::string::npos);

    // Binary traces feed every analysis command transparently.
    auto ch = runCli({"characterize", bin_path});
    EXPECT_EQ(ch.code, 0) << ch.err;
    auto ch_csv = runCli({"characterize", path_});
    EXPECT_EQ(ch.out, ch_csv.out);

    std::remove(bin_path.c_str());
    std::remove(back_path.c_str());
}

TEST_F(CliWithTraceTest, ConvertRejectsBadFormatAndMissingArgs)
{
    auto bad_fmt = runCli({"convert", path_, path_ + ".x",
                           "--trace-format", "parquet"});
    EXPECT_EQ(bad_fmt.code, 1);
    EXPECT_NE(bad_fmt.err.find("--trace-format"), std::string::npos);

    auto missing = runCli({"convert", path_});
    EXPECT_EQ(missing.code, 1);
    EXPECT_NE(missing.err.find("convert expects"), std::string::npos);

    auto nofile = runCli({"convert", "/nonexistent.csv", "/tmp/x"});
    EXPECT_EQ(nofile.code, 1);
    EXPECT_NE(nofile.err.find("cannot open"), std::string::npos);
}

TEST(CliTest, GenerateBinaryRequiresOut)
{
    auto r = runCli({"generate", "--jobs", "5", "--trace-format",
                     "bin"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("--out"), std::string::npos);
}

TEST(CliTest, GenerateBinaryWritesLoadableTrace)
{
    std::string path = testing::TempDir() + "/paichar_cli_bin_" +
                       std::to_string(::getpid()) + ".paib";
    auto w = runCli({"generate", "--jobs", "100", "--seed", "3",
                     "--trace-format", "bin", "--out", path});
    ASSERT_EQ(w.code, 0) << w.err;
    EXPECT_NE(w.out.find("bin"), std::string::npos);
    auto r = runCli({"characterize", path});
    EXPECT_EQ(r.code, 0) << r.err;
    std::remove(path.c_str());
}

TEST_F(CliWithTraceTest, ProjectReportsSpeedups)
{
    auto r = runCli({"project", path_});
    EXPECT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("AllReduce-Local"), std::string::npos);
    EXPECT_NE(r.out.find("mean speedup"), std::string::npos);

    auto rc = runCli(
        {"project", path_, "--target", "AllReduce-Cluster"});
    EXPECT_EQ(rc.code, 0);
    EXPECT_NE(rc.out.find("AllReduce-Cluster"), std::string::npos);
}

TEST_F(CliWithTraceTest, ProjectRejectsBadTarget)
{
    auto r = runCli({"project", path_, "--target", "warp"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("unknown architecture"), std::string::npos);
}

TEST_F(CliWithTraceTest, SweepPrintsTableIiiGrid)
{
    auto r = runCli({"sweep", path_});
    EXPECT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("Ethernet"), std::string::npos);
    EXPECT_NE(r.out.find("GPU_memory"), std::string::npos);
}

TEST_F(CliWithTraceTest, MissingTraceFileFails)
{
    auto r = runCli({"characterize", "/nonexistent.csv"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(CliTest, AdviseRecommendsPearlForEmbeddingModel)
{
    auto r = runCli({"advise", "--flops", "3.3e11", "--mem",
                     "2.6e10", "--input", "1.2e6", "--comm", "3e9",
                     "--dense-weights", "2e8", "--embedding-weights",
                     "5.4e10", "--cnodes", "8"});
    EXPECT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("recommendation: PEARL"), std::string::npos);
}

TEST(CliTest, AdviseRequiresDemands)
{
    auto r = runCli({"advise", "--flops", "1e12"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("requires"), std::string::npos);
}

TEST(CliTest, DiagnoseCaseStudyModel)
{
    auto r = runCli({"diagnose", "resnet50"});
    EXPECT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("verdict: compute-bound"),
              std::string::npos);
    EXPECT_NE(r.out.find("best measured plan:"), std::string::npos);
}

TEST(CliTest, DiagnoseUnknownModelFails)
{
    auto r = runCli({"diagnose", "alexnet"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("unknown model"), std::string::npos);
}

TEST(CliTest, DiagnoseWithoutModelFails)
{
    auto r = runCli({"diagnose"});
    EXPECT_EQ(r.code, 1);
}

TEST(CliTest, PlanRanksCandidatesAndPicksBest)
{
    auto r = runCli({"plan", "gcn", "--top", "4"});
    EXPECT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("=== plan: GCN"), std::string::npos);
    EXPECT_NE(r.out.find("default on PEARL"), std::string::npos);
    EXPECT_NE(r.out.find("simulated"), std::string::npos);
    EXPECT_NE(r.out.find("analytical"), std::string::npos);
    EXPECT_NE(r.out.find("best plan:"), std::string::npos);
}

TEST(CliTest, PlanJsonOutputIsWellFormed)
{
    auto r = runCli({"plan", "gcn", "--top", "2", "--format",
                     "json"});
    EXPECT_EQ(r.code, 0) << r.err;
    EXPECT_EQ(r.out.rfind("{\"model\":\"GCN\"", 0), 0u) << r.out;
    EXPECT_NE(r.out.find("\"evaluator\":\"simulated\""),
              std::string::npos);
    EXPECT_NE(r.out.find("\"best\":\""), std::string::npos);
}

TEST(CliTest, PlanRejectsNonNumericTop)
{
    // --top runs through Args::numFlag: exact existing error shape.
    auto r = runCli({"plan", "gcn", "--top", "many"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("error: flag --top expects a number, "
                         "got 'many'"),
              std::string::npos)
        << r.err;
}

TEST(CliTest, PlanRejectsNonNumericBeam)
{
    auto r = runCli({"plan", "gcn", "--search", "beam", "--beam",
                     "wide"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("error: flag --beam expects a number, "
                         "got 'wide'"),
              std::string::npos)
        << r.err;
}

TEST(CliTest, PlanValidatesFlagDomains)
{
    auto top = runCli({"plan", "gcn", "--top", "-1"});
    EXPECT_EQ(top.code, 1);
    EXPECT_NE(top.err.find("--top expects a non-negative integer"),
              std::string::npos);
    auto beam = runCli({"plan", "gcn", "--beam", "0"});
    EXPECT_EQ(beam.code, 1);
    EXPECT_NE(beam.err.find("--beam expects a positive integer"),
              std::string::npos);
    auto search = runCli({"plan", "gcn", "--search", "dfs"});
    EXPECT_EQ(search.code, 1);
    EXPECT_NE(search.err.find("--search expects exhaustive or beam"),
              std::string::npos);
    auto fmt = runCli({"plan", "gcn", "--format", "yaml"});
    EXPECT_EQ(fmt.code, 1);
    EXPECT_NE(fmt.err.find("--format expects table or json"),
              std::string::npos);
}

TEST(CliTest, PlanPassesFilterRestrictsDimensions)
{
    auto r = runCli({"plan", "gcn", "--passes", "mixed-precision"});
    EXPECT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("MP on PEARL"), std::string::npos);
    EXPECT_EQ(r.out.find("XLA"), std::string::npos) << r.out;
    EXPECT_EQ(r.out.find("acc4"), std::string::npos) << r.out;

    auto bad = runCli({"plan", "gcn", "--passes", "loop-unroll"});
    EXPECT_EQ(bad.code, 1);
    EXPECT_NE(bad.err.find("unknown pass 'loop-unroll'"),
              std::string::npos);
}

TEST(CliTest, PlanUnknownModelFails)
{
    auto r = runCli({"plan", "vgg"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("unknown model"), std::string::npos);
    auto none = runCli({"plan"});
    EXPECT_EQ(none.code, 1);
    EXPECT_NE(none.err.find("plan expects a model name"),
              std::string::npos);
}

TEST(CliTest, ServeReportsLatencyAndCapacity)
{
    auto r = runCli({"serve", "bert", "--qps", "30", "--max-batch",
                     "4"});
    EXPECT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("p99"), std::string::npos);
    EXPECT_NE(r.out.find("max QPS"), std::string::npos);
}

TEST(CliTest, ServeUnknownModelFails)
{
    auto r = runCli({"serve", "vgg"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("unknown model"), std::string::npos);
}

TEST(CliTest, ServeFleetFlagsAreHonored)
{
    auto r = runCli({"serve", "resnet50", "--servers", "3",
                     "--routing", "least-queue", "--batching",
                     "continuous", "--arrival", "bursty", "--admit",
                     "32", "--qps", "4000", "--requests", "5000"});
    EXPECT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("3 servers"), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("least-queue"), std::string::npos);
    EXPECT_NE(r.out.find("continuous"), std::string::npos);
    EXPECT_NE(r.out.find("bursty"), std::string::npos);
    EXPECT_NE(r.out.find("admitted"), std::string::npos);
    // Multi-server runs drop the single-server SLO search line.
    EXPECT_EQ(r.out.find("max QPS"), std::string::npos);
}

TEST(CliTest, ServeRejectsUnknownRouting)
{
    auto r = runCli({"serve", "resnet50", "--routing", "random"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("--routing"), std::string::npos) << r.err;
}

// Values the fleet layer itself rejects (by throwing) must come back
// as CLI errors, not an uncaught-exception abort.
TEST(CliTest, ServeAndCapacitySurfaceFleetValidationAsErrors)
{
    for (const auto &args : std::vector<std::vector<std::string>>{
             {"serve", "resnet50", "--qps", "0"},
             {"serve", "resnet50", "--max-batch", "0"},
             {"serve", "resnet50", "--requests", "0"},
             {"capacity", "resnet50", "--qps", "3000", "--requests",
              "50"}}) {
        auto r = runCli(args);
        EXPECT_EQ(r.code, 1) << args[0];
        EXPECT_NE(r.err.find("error: "), std::string::npos)
            << args[0] << ": " << r.err;
    }
}

TEST(CliTest, CapacityReportsServersNeeded)
{
    auto r = runCli({"capacity", "resnet50", "--qps", "3000",
                     "--slo-ms", "40", "--requests", "8000"});
    EXPECT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("servers needed:"), std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("p99"), std::string::npos);
}

TEST(CliTest, CapacityUnattainableSloSaysSo)
{
    auto r = runCli({"capacity", "resnet50", "--qps", "100",
                     "--slo-ms", "0.0001", "--max-servers", "4",
                     "--requests", "2000"});
    EXPECT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("not attainable"), std::string::npos)
        << r.out;
}

TEST(CliTest, CapacityExpectsModel)
{
    auto r = runCli({"capacity"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("capacity expects a model name"),
              std::string::npos);
}

TEST_F(CliWithTraceTest, ScheduleReportsQueueingMetrics)
{
    auto r = runCli({"schedule", path_, "--servers", "32",
                     "--nvlink-frac", "0.5", "--port", "1"});
    EXPECT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("scheduled 2000 jobs"), std::string::npos);
    EXPECT_NE(r.out.find("GPU utilization"), std::string::npos);
    EXPECT_NE(r.out.find("ported jobs"), std::string::npos);
    EXPECT_NE(r.out.find("policy: backfill"), std::string::npos);
}

TEST_F(CliWithTraceTest, ScheduleRejectsUnknownPolicyListingValidSet)
{
    auto r = runCli({"schedule", path_, "--policy", "lottery"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("--policy"), std::string::npos) << r.err;
    EXPECT_NE(r.err.find("lottery"), std::string::npos) << r.err;
    // The error enumerates every valid choice.
    for (const char *name :
         {"fifo", "backfill", "spf", "spf-preempt", "gang"})
        EXPECT_NE(r.err.find(name), std::string::npos)
            << "missing " << name << " in: " << r.err;
}

TEST_F(CliWithTraceTest, ScheduleRejectsUnknownPredictorAndPlacement)
{
    auto r = runCli({"schedule", path_, "--predictor", "oracle"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("--predictor"), std::string::npos) << r.err;
    for (const char *name : {"model", "quantile", "linear", "none"})
        EXPECT_NE(r.err.find(name), std::string::npos)
            << "missing " << name << " in: " << r.err;

    auto p = runCli({"schedule", path_, "--placement", "random"});
    EXPECT_EQ(p.code, 1);
    EXPECT_NE(p.err.find("--placement"), std::string::npos) << p.err;
    EXPECT_NE(p.err.find("best-fit"), std::string::npos) << p.err;
}

TEST_F(CliWithTraceTest, ScheduleRejectsPredictionDrivenWithoutPredictor)
{
    for (const char *policy : {"spf", "spf-preempt", "gang"}) {
        auto r = runCli({"schedule", path_, "--policy", policy,
                         "--predictor", "none"});
        EXPECT_EQ(r.code, 1) << policy;
        EXPECT_NE(r.err.find("prediction-driven"), std::string::npos)
            << policy << ": " << r.err;
    }
    // Plain backfill degrades gracefully to greedy skip-ahead.
    auto ok = runCli({"schedule", path_, "--policy", "backfill",
                      "--predictor", "none"});
    EXPECT_EQ(ok.code, 0) << ok.err;
}

TEST_F(CliWithTraceTest, ScheduleHistoryPredictorsRequireHistory)
{
    for (const char *pred : {"quantile", "linear"}) {
        auto r = runCli({"schedule", path_, "--predictor", pred});
        EXPECT_EQ(r.code, 1) << pred;
        EXPECT_NE(r.err.find("--history"), std::string::npos)
            << pred << ": " << r.err;
    }
    auto bad = runCli({"schedule", path_, "--predictor", "quantile",
                       "--history", "/nonexistent/h.jsonl"});
    EXPECT_EQ(bad.code, 1);
    auto q = runCli({"schedule", path_, "--quantile", "1.5"});
    EXPECT_EQ(q.code, 1);
    EXPECT_NE(q.err.find("--quantile"), std::string::npos) << q.err;
}

TEST_F(CliWithTraceTest, ScheduleCompareFifoReportsDelta)
{
    auto r = runCli({"schedule", path_, "--servers", "24", "--rate",
                     "400", "--policy", "spf", "--compare-fifo",
                     "1"});
    EXPECT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("vs fifo:"), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("policy: spf"), std::string::npos);
}

} // namespace
} // namespace paichar::cli
