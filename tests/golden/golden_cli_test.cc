/**
 * @file
 * Golden-snapshot tests for the CLI surface (`ctest -L golden`).
 *
 * Each test drives cli::run() in-process and byte-compares stdout
 * against a committed snapshot under tests/golden/goldens/. Every
 * invocation runs under --threads 1, 2 and 8 and must produce
 * identical bytes first (the runtime determinism contract), then
 * match the snapshot exactly.
 *
 * To (re-)record after an intentional output change:
 *   PAICHAR_UPDATE_GOLDENS=1 ctest -L golden
 * then review the snapshot diff like any other code change. A missing
 * snapshot is a hard failure, never a skip.
 *
 * The fixture chdirs into a scratch directory and uses fixed relative
 * file names, so paths echoed in CLI output are byte-stable across
 * machines.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "testkit/golden.h"

namespace paichar::testkit {
namespace {

namespace fs = std::filesystem;

class GoldenCliTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        previous_dir_ = fs::current_path();
        scratch_ = fs::temp_directory_path() /
                   ("paichar_golden_" + std::to_string(::getpid()));
        fs::create_directories(scratch_);
        fs::current_path(scratch_);

        // A fixed synthetic trace all snapshot commands consume.
        std::ostringstream out, err;
        int code = cli::run({"generate", "--jobs", "400", "--seed",
                             "20190601", "--out", "golden_trace.csv"},
                            out, err);
        ASSERT_EQ(code, 0) << err.str();
    }

    void
    TearDown() override
    {
        fs::current_path(previous_dir_);
        fs::remove_all(scratch_);
    }

    void
    expectGolden(const std::string &name,
                 const std::vector<std::string> &args,
                 std::vector<int> shard_counts = {1},
                 std::vector<std::string> artifact_files = {})
    {
        GoldenOptions opts;
        opts.dir = PAICHAR_GOLDEN_DIR;
        opts.shard_counts = std::move(shard_counts);
        opts.artifact_files = std::move(artifact_files);
        GoldenResult r = checkGolden(name, args, opts);
        EXPECT_TRUE(r.ok) << r.message;
        if (r.updated)
            std::cout << "[golden] " << r.message << "\n";
    }

  private:
    fs::path previous_dir_;
    fs::path scratch_;
};

TEST_F(GoldenCliTest, Generate)
{
    expectGolden("generate", {"generate", "--jobs", "50", "--seed", "7"});
}

TEST_F(GoldenCliTest, Characterize)
{
    expectGolden("characterize", {"characterize", "golden_trace.csv"},
                 {1, 2, 8});
}

// The scheduler drives the sharded event engine directly, so this
// snapshot crosses every --threads with every --shards count: the
// 3x3 matrix must be byte-identical before it may match the golden.
TEST_F(GoldenCliTest, Schedule)
{
    expectGolden("schedule",
                 {"schedule", "golden_trace.csv", "--servers", "48",
                  "--rate", "120"},
                 {1, 2, 8});
}

// Policy matrix: each scheduling policy snapshot runs under every
// --threads count crossed with --shards 1 and 4 and must stay
// byte-identical before it may match its golden — the policy layer
// (queue reordering, reservations, preemption, gang admission) may
// not leak scheduling nondeterminism into results.

TEST_F(GoldenCliTest, ScheduleFifo)
{
    expectGolden("schedule_fifo",
                 {"schedule", "golden_trace.csv", "--servers", "48",
                  "--rate", "120", "--policy", "fifo"},
                 {1, 4});
}

TEST_F(GoldenCliTest, ScheduleSpf)
{
    expectGolden("schedule_spf",
                 {"schedule", "golden_trace.csv", "--servers", "48",
                  "--rate", "120", "--policy", "spf",
                  "--compare-fifo", "1"},
                 {1, 4});
}

// spf-preempt exercises the generation-checked finish events and
// restart-from-last-step path; determinism here means preemption
// decisions are identical across shard layouts.
TEST_F(GoldenCliTest, ScheduleSpfPreempt)
{
    expectGolden("schedule_spf_preempt",
                 {"schedule", "golden_trace.csv", "--servers", "48",
                  "--rate", "120", "--policy", "spf-preempt"},
                 {1, 4});
}

TEST_F(GoldenCliTest, ScheduleGang)
{
    expectGolden("schedule_gang",
                 {"schedule", "golden_trace.csv", "--servers", "48",
                  "--rate", "120", "--policy", "gang", "--hetero",
                  "0.25", "--placement", "best-fit"},
                 {1, 4});
}

TEST_F(GoldenCliTest, Sweep)
{
    expectGolden("sweep", {"sweep", "golden_trace.csv"});
}

TEST_F(GoldenCliTest, Project)
{
    expectGolden("project", {"project", "golden_trace.csv"});
}

TEST_F(GoldenCliTest, Convert)
{
    expectGolden("convert", {"convert", "golden_trace.csv",
                             "golden_trace.paib", "--trace-format",
                             "bin"});
}

// Two case-study `plan` snapshots: a Conv-heavy model (channel/filter
// split dimension) and a transformer (sub-graph partition dimension).
// The planner fans candidate evaluation out over the thread pool, so
// these double as determinism checks on the search pipeline.

TEST_F(GoldenCliTest, PlanResnet50)
{
    expectGolden("plan_resnet50", {"plan", "resnet50", "--top", "6"});
}

TEST_F(GoldenCliTest, PlanBertJson)
{
    expectGolden("plan_bert_json",
                 {"plan", "bert", "--top", "6", "--format", "json"});
}

// Serving-fleet snapshots: the fleet is a single-threaded totally
// ordered event loop, so its output must be byte-identical across
// the full --threads x --shards matrix like every other subcommand.

TEST_F(GoldenCliTest, Serve)
{
    expectGolden("serve",
                 {"serve", "resnet50", "--qps", "400", "--requests",
                  "5000"},
                 {1, 2, 8});
}

TEST_F(GoldenCliTest, ServeFleet)
{
    expectGolden("serve_fleet",
                 {"serve", "resnet50", "--servers", "4", "--routing",
                  "p2c", "--batching", "continuous", "--arrival",
                  "diurnal", "--qps", "2500", "--admit", "48",
                  "--requests", "8000"},
                 {1, 2, 8});
}

// Long enough (60k requests at 1800 qps is ~33 s of arrivals) for
// scaled-up servers to clear the 10 s provisioning lag and serve.
TEST_F(GoldenCliTest, ServeAutoscale)
{
    expectGolden("serve_autoscale",
                 {"serve", "resnet50", "--autoscale", "1",
                  "--arrival", "bursty", "--qps", "1800",
                  "--requests", "60000"},
                 {1, 2, 8});
}

TEST_F(GoldenCliTest, Capacity)
{
    expectGolden("capacity",
                 {"capacity", "resnet50", "--qps", "3000",
                  "--slo-ms", "40", "--requests", "8000"},
                 {1, 2, 8});
}

// Timeline exports are held to the same determinism bar as stdout:
// the harness byte-compares the written CSV across the full
// --threads x --shards matrix and against its own snapshot.

TEST_F(GoldenCliTest, ScheduleTimeline)
{
    expectGolden("schedule_timeline",
                 {"schedule", "golden_trace.csv", "--servers", "48",
                  "--rate", "120", "--timeline", "schedule_tl.csv",
                  "--timeline-interval", "60"},
                 {1, 2, 8}, {"schedule_tl.csv"});
}

// The SLO-driven autoscaler under bursty load, with the fleet-size
// trajectory (inference.fleet.servers_up) recorded as a timeline
// series — the windowed-p99 feed closing ROADMAP item 2's loop.
TEST_F(GoldenCliTest, ServeSloTimeline)
{
    expectGolden("serve_slo_timeline",
                 {"serve", "resnet50", "--autoscale", "slo",
                  "--slo-ms", "10", "--arrival", "bursty", "--qps",
                  "1800", "--requests", "60000", "--timeline",
                  "serve_tl.csv", "--timeline-interval", "5"},
                 {1, 2, 8}, {"serve_tl.csv"});
}

} // namespace
} // namespace paichar::testkit
