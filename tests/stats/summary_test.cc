/**
 * @file
 * Tests for the numeric summary helpers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/summary.h"

namespace paichar::stats {
namespace {

TEST(SummaryTest, Mean)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
}

TEST(SummaryTest, WeightedMean)
{
    EXPECT_DOUBLE_EQ(weightedMean({1.0, 3.0}, {1.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(weightedMean({1.0, 3.0}, {3.0, 1.0}), 1.5);
    EXPECT_DOUBLE_EQ(weightedMean({1.0, 3.0}, {0.0, 2.0}), 3.0);
}

TEST(SummaryTest, Stddev)
{
    EXPECT_DOUBLE_EQ(stddev({2.0, 2.0, 2.0}), 0.0);
    EXPECT_NEAR(stddev({1.0, 3.0}), 1.0, 1e-12);
}

TEST(SummaryTest, GeoMean)
{
    EXPECT_NEAR(geoMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geoMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(SummaryTest, FracAbove)
{
    EXPECT_DOUBLE_EQ(fracAbove({1.0, 2.0, 3.0, 4.0}, 2.0), 0.5);
    EXPECT_DOUBLE_EQ(fracAbove({}, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(fracAbove({1.0}, 5.0), 0.0);
}

TEST(SummaryTest, RelDiff)
{
    EXPECT_DOUBLE_EQ(relDiff(11.0, 10.0), 0.1);
    EXPECT_DOUBLE_EQ(relDiff(9.0, 10.0), -0.1);
}

TEST(SummaryTest, Clamp)
{
    EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
}

} // namespace
} // namespace paichar::stats
