/**
 * @file
 * Tests for the weighted empirical CDF.
 */

#include <gtest/gtest.h>

#include "stats/cdf.h"
#include "stats/rng.h"

namespace paichar::stats {
namespace {

TEST(WeightedCdfTest, EmptyAndCounts)
{
    WeightedCdf cdf;
    EXPECT_TRUE(cdf.empty());
    EXPECT_EQ(cdf.size(), 0u);
    cdf.add(1.0);
    cdf.add(2.0, 3.0);
    EXPECT_FALSE(cdf.empty());
    EXPECT_EQ(cdf.size(), 2u);
    EXPECT_DOUBLE_EQ(cdf.totalWeight(), 4.0);
}

TEST(WeightedCdfTest, ProbAtOrBelowUnweighted)
{
    WeightedCdf cdf;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        cdf.add(v);
    EXPECT_DOUBLE_EQ(cdf.probAtOrBelow(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.probAtOrBelow(1.0), 0.25);
    EXPECT_DOUBLE_EQ(cdf.probAtOrBelow(2.5), 0.5);
    EXPECT_DOUBLE_EQ(cdf.probAtOrBelow(4.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.probAtOrBelow(100.0), 1.0);
}

TEST(WeightedCdfTest, ProbAtOrBelowWeighted)
{
    WeightedCdf cdf;
    cdf.add(1.0, 1.0);
    cdf.add(2.0, 9.0);
    EXPECT_DOUBLE_EQ(cdf.probAtOrBelow(1.5), 0.1);
    EXPECT_DOUBLE_EQ(cdf.probAtOrBelow(2.0), 1.0);
}

TEST(WeightedCdfTest, QuantilesAndMedian)
{
    WeightedCdf cdf;
    for (int i = 1; i <= 100; ++i)
        cdf.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 100.0);
    EXPECT_DOUBLE_EQ(cdf.median(), 50.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 25.0);
}

TEST(WeightedCdfTest, WeightedQuantile)
{
    WeightedCdf cdf;
    cdf.add(10.0, 1.0);
    cdf.add(20.0, 1.0);
    cdf.add(30.0, 8.0);
    EXPECT_DOUBLE_EQ(cdf.median(), 30.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.1), 10.0);
}

TEST(WeightedCdfTest, MinMaxMean)
{
    WeightedCdf cdf;
    cdf.add(5.0, 1.0);
    cdf.add(-1.0, 1.0);
    cdf.add(3.0, 2.0);
    EXPECT_DOUBLE_EQ(cdf.min(), -1.0);
    EXPECT_DOUBLE_EQ(cdf.max(), 5.0);
    EXPECT_DOUBLE_EQ(cdf.mean(), (5.0 - 1.0 + 6.0) / 4.0);
}

TEST(WeightedCdfTest, ZeroWeightSamplesDoNotMoveProbability)
{
    WeightedCdf cdf;
    cdf.add(1.0, 0.0);
    cdf.add(2.0, 1.0);
    EXPECT_DOUBLE_EQ(cdf.probAtOrBelow(1.0), 0.0);
    EXPECT_DOUBLE_EQ(cdf.probAtOrBelow(2.0), 1.0);
}

TEST(WeightedCdfTest, CurveEndpointsAndLength)
{
    WeightedCdf cdf;
    for (double v : {0.0, 1.0, 2.0, 3.0})
        cdf.add(v);
    auto curve = cdf.curve(11);
    ASSERT_EQ(curve.size(), 11u);
    EXPECT_DOUBLE_EQ(curve.front().first, 0.0);
    EXPECT_DOUBLE_EQ(curve.back().first, 3.0);
    EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(WeightedCdfTest, InsertAfterQueryReSorts)
{
    WeightedCdf cdf;
    cdf.add(2.0);
    EXPECT_DOUBLE_EQ(cdf.probAtOrBelow(2.0), 1.0);
    cdf.add(1.0);
    EXPECT_DOUBLE_EQ(cdf.probAtOrBelow(1.0), 0.5);
}

/** Property: CDF is monotone and quantile is a left inverse. */
class CdfProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(CdfProperty, MonotoneAndInverse)
{
    Rng rng(GetParam());
    WeightedCdf cdf;
    for (int i = 0; i < 500; ++i)
        cdf.add(rng.normal(0.0, 10.0), rng.uniform(0.0, 2.0));

    double prev = -1.0;
    for (double x = cdf.min(); x <= cdf.max(); x += 0.5) {
        double p = cdf.probAtOrBelow(x);
        ASSERT_GE(p, prev);
        ASSERT_GE(p, 0.0);
        ASSERT_LE(p, 1.0);
        prev = p;
    }
    for (double q : {0.0, 0.1, 0.5, 0.9, 1.0}) {
        double v = cdf.quantile(q);
        ASSERT_GE(cdf.probAtOrBelow(v), q - 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdfProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

} // namespace
} // namespace paichar::stats
