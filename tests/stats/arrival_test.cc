/**
 * @file
 * Tests for the open-loop arrival processes (stats/arrival.h): the
 * half-open exponential-sampler contract (the infinite-gap bugfix),
 * seed purity, rate calibration of all three generator shapes, and
 * config validation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/obs.h"
#include "stats/arrival.h"
#include "stats/rng.h"

namespace paichar::stats {
namespace {

// --- The exponential sampler contract (satellite bugfix) -----------

TEST(ExpSamplerTest, EveryGapIsFiniteAndPositiveOverManyDraws)
{
    // Property test of the documented contract: uniform() is
    // half-open, so -log1p(-u) is finite for every draw.
    Rng rng(20190701);
    for (int i = 0; i < 200000; ++i) {
        double gap = sampleExp(rng, 1000.0);
        ASSERT_TRUE(std::isfinite(gap)) << "draw " << i;
        ASSERT_GE(gap, 0.0) << "draw " << i;
    }
}

TEST(ExpSamplerTest, ClosedIntervalDrawIsClampedNotInfinite)
{
    // Regression: the pre-fix sampler computed -log(1.0 - u), which
    // returns +inf for u == 1.0. The fixed sampler clamps and counts.
    obs::Counter &clamped = obs::counter("stats.exp_clamped");
    uint64_t before = clamped.value();

    double gap = expFromUniform(1.0, 2.0);
    EXPECT_TRUE(std::isfinite(gap));
    EXPECT_GT(gap, 0.0);
    EXPECT_EQ(clamped.value(), before + 1);

    // Even past 1.0 (an outright contract violation) stays finite.
    double worse = expFromUniform(std::nextafter(1.0, 2.0), 2.0);
    EXPECT_TRUE(std::isfinite(worse));
    EXPECT_EQ(clamped.value(), before + 2);

    // In-contract draws never touch the counter.
    EXPECT_DOUBLE_EQ(expFromUniform(0.0, 2.0), 0.0);
    EXPECT_EQ(clamped.value(), before + 2);
}

TEST(ExpSamplerTest, MatchesInverseCdfInContract)
{
    // Inside the contract the sampler is the textbook inverse CDF.
    EXPECT_NEAR(expFromUniform(0.5, 1.0), std::log(2.0), 1e-15);
    EXPECT_NEAR(expFromUniform(0.5, 4.0), std::log(2.0) / 4.0,
                1e-15);
}

// --- Stream shapes -------------------------------------------------

TEST(ArrivalStreamTest, SeedPureAndStrictlyIncreasing)
{
    for (ArrivalKind kind : {ArrivalKind::Constant,
                             ArrivalKind::Diurnal,
                             ArrivalKind::Bursty}) {
        ArrivalConfig cfg;
        cfg.kind = kind;
        cfg.qps = 500.0;
        auto a = generateArrivals(cfg, 2000, 42);
        auto b = generateArrivals(cfg, 2000, 42);
        ASSERT_EQ(a, b) << toString(kind);
        for (size_t i = 1; i < a.size(); ++i)
            ASSERT_LT(a[i - 1], a[i]) << toString(kind) << " " << i;
        auto c = generateArrivals(cfg, 2000, 43);
        EXPECT_NE(a, c) << toString(kind);
    }
}

TEST(ArrivalStreamTest, LongRunRateMatchesConfiguredQps)
{
    // All three shapes are calibrated to the same long-run mean.
    for (ArrivalKind kind : {ArrivalKind::Constant,
                             ArrivalKind::Diurnal,
                             ArrivalKind::Bursty}) {
        ArrivalConfig cfg;
        cfg.kind = kind;
        cfg.qps = 200.0;
        // Short burst sojourns so the run spans hundreds of
        // burst/normal cycles: the realized burst-time share (and so
        // the realized rate) concentrates at its stationary value.
        // At the 5 s default a run this long covers only ~20 cycles
        // and the rate estimate wanders several percent.
        cfg.burst_mean_s = 0.5;
        // Whole diurnal periods / many burst sojourns.
        const int64_t n = 200000;
        auto a = generateArrivals(cfg, n, 7);
        double rate = static_cast<double>(n) / a.back();
        EXPECT_NEAR(rate, cfg.qps, 0.05 * cfg.qps) << toString(kind);
    }
}

TEST(ArrivalStreamTest, DiurnalPeakTroughContrast)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Diurnal;
    cfg.qps = 100.0;
    cfg.diurnal_amplitude = 0.8;
    cfg.diurnal_period = 100.0;
    auto a = generateArrivals(cfg, 100000, 11);

    // Count arrivals falling into trough vs peak quarters of the
    // cycle (trough at t=0, peak at period/2).
    int64_t trough = 0, peak = 0;
    for (double t : a) {
        double phase = std::fmod(t, cfg.diurnal_period) /
                       cfg.diurnal_period;
        if (phase < 0.25)
            ++trough;
        else if (phase >= 0.5 && phase < 0.75)
            ++peak;
    }
    // rate ratio across those quarters is (1-0.51a)/(1+0.51a) —
    // just require a clear separation.
    EXPECT_GT(static_cast<double>(peak),
              2.0 * static_cast<double>(trough));
}

TEST(ArrivalStreamTest, BurstyIsOverdispersedVsConstant)
{
    // MMPP-2 inter-arrival gaps have a higher coefficient of
    // variation than the Poisson baseline (CV = 1).
    auto cv = [](const std::vector<double> &times) {
        std::vector<double> gaps;
        for (size_t i = 1; i < times.size(); ++i)
            gaps.push_back(times[i] - times[i - 1]);
        double mean = 0.0;
        for (double g : gaps)
            mean += g;
        mean /= static_cast<double>(gaps.size());
        double var = 0.0;
        for (double g : gaps)
            var += (g - mean) * (g - mean);
        var /= static_cast<double>(gaps.size());
        return std::sqrt(var) / mean;
    };
    ArrivalConfig constant;
    constant.qps = 300.0;
    ArrivalConfig bursty;
    bursty.kind = ArrivalKind::Bursty;
    bursty.qps = 300.0;
    bursty.burst_multiplier = 10.0;
    bursty.burst_fraction = 0.1;
    bursty.burst_mean_s = 2.0;
    double cv_const = cv(generateArrivals(constant, 100000, 3));
    double cv_burst = cv(generateArrivals(bursty, 100000, 3));
    EXPECT_NEAR(cv_const, 1.0, 0.05);
    EXPECT_GT(cv_burst, 1.2 * cv_const);
}

TEST(ArrivalStreamTest, PeakQpsBySkind)
{
    ArrivalConfig cfg;
    cfg.qps = 100.0;
    EXPECT_DOUBLE_EQ(ArrivalStream(cfg, 1).peakQps(), 100.0);
    cfg.kind = ArrivalKind::Diurnal;
    cfg.diurnal_amplitude = 0.5;
    EXPECT_DOUBLE_EQ(ArrivalStream(cfg, 1).peakQps(), 150.0);
}

// --- Validation (real errors, release builds included) -------------

TEST(ArrivalStreamTest, InvalidConfigsThrow)
{
    ArrivalConfig cfg;
    cfg.qps = 0.0;
    EXPECT_THROW(ArrivalStream(cfg, 1), std::invalid_argument);
    cfg.qps = std::numeric_limits<double>::infinity();
    EXPECT_THROW(ArrivalStream(cfg, 1), std::invalid_argument);

    ArrivalConfig diurnal;
    diurnal.kind = ArrivalKind::Diurnal;
    diurnal.diurnal_amplitude = 1.0; // rate would hit zero
    EXPECT_THROW(ArrivalStream(diurnal, 1), std::invalid_argument);
    diurnal.diurnal_amplitude = 0.5;
    diurnal.diurnal_period = 0.0;
    EXPECT_THROW(ArrivalStream(diurnal, 1), std::invalid_argument);

    ArrivalConfig bursty;
    bursty.kind = ArrivalKind::Bursty;
    bursty.burst_multiplier = 0.5;
    EXPECT_THROW(ArrivalStream(bursty, 1), std::invalid_argument);
    bursty.burst_multiplier = 4.0;
    bursty.burst_fraction = 1.0;
    EXPECT_THROW(ArrivalStream(bursty, 1), std::invalid_argument);
    bursty.burst_fraction = 0.1;
    bursty.burst_mean_s = 0.0;
    EXPECT_THROW(ArrivalStream(bursty, 1), std::invalid_argument);
}

TEST(ArrivalStreamTest, KindSpellingsRoundTrip)
{
    for (ArrivalKind kind : {ArrivalKind::Constant,
                             ArrivalKind::Diurnal,
                             ArrivalKind::Bursty}) {
        auto parsed = arrivalKindFromString(toString(kind));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, kind);
    }
    EXPECT_FALSE(arrivalKindFromString("poisson").has_value());
}

} // namespace
} // namespace paichar::stats
