/**
 * @file
 * Unit and property tests for the deterministic RNG and its
 * distribution samplers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "stats/rng.h"

namespace paichar::stats {
namespace {

TEST(RngTest, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.nextU64() == b.nextU64();
    EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(RngTest, UniformIntCoversRangeInclusively)
{
    Rng rng(11);
    std::set<int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        int64_t v = rng.uniformInt(1, 6);
        ASSERT_GE(v, 1);
        ASSERT_LE(v, 6);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 6u);
}

TEST(RngTest, UniformIntDegenerateRange)
{
    Rng rng(11);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(5, 5), 5);
}

TEST(RngTest, NormalMoments)
{
    Rng rng(13);
    const int n = 50000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, NormalShiftScale)
{
    Rng rng(17);
    const int n = 50000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, LogNormalMedian)
{
    Rng rng(19);
    const int n = 20001;
    std::vector<double> xs(n);
    for (double &x : xs)
        x = rng.logNormal(std::log(3.0), 0.9);
    std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
    EXPECT_NEAR(xs[n / 2], 3.0, 0.15);
}

TEST(RngTest, ParetoRespectsScaleAndTail)
{
    Rng rng(23);
    const int n = 20000;
    int above = 0;
    for (int i = 0; i < n; ++i) {
        double x = rng.pareto(2.0, 1.5);
        ASSERT_GE(x, 2.0);
        above += x > 4.0;
    }
    // P(X > 4) = (2/4)^1.5 ~= 0.3536.
    EXPECT_NEAR(static_cast<double>(above) / n, 0.3536, 0.02);
}

TEST(RngTest, BernoulliFrequency)
{
    Rng rng(29);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, CategoricalFrequencies)
{
    Rng rng(31);
    std::vector<double> w{1.0, 3.0, 6.0};
    std::vector<int> counts(3, 0);
    const int n = 30000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.categorical(w)];
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
    EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, CategoricalSingleBucket)
{
    Rng rng(37);
    EXPECT_EQ(rng.categorical({5.0}), 0u);
}

TEST(RngTest, CategoricalZeroWeightNeverPicked)
{
    Rng rng(41);
    for (int i = 0; i < 1000; ++i)
        EXPECT_NE(rng.categorical({1.0, 0.0, 1.0}), 1u);
}

TEST(RngTest, GammaMeanMatchesShape)
{
    Rng rng(43);
    for (double shape : {0.5, 1.0, 2.5, 9.0}) {
        double sum = 0.0;
        const int n = 30000;
        for (int i = 0; i < n; ++i)
            sum += rng.gamma(shape);
        EXPECT_NEAR(sum / n, shape, 0.05 * std::max(1.0, shape))
            << "shape=" << shape;
    }
}

TEST(RngTest, SplitStreamsAreIndependent)
{
    Rng parent(47);
    Rng child = parent.split();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += parent.nextU64() == child.nextU64();
    EXPECT_LT(same, 3);
}

/** Property sweep: betaMean(mean, kappa) lands in (0,1) with the
 * requested mean, across a grid of parameters. */
class BetaMeanProperty
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(BetaMeanProperty, MeanAndSupport)
{
    auto [mean, kappa] = GetParam();
    Rng rng(53);
    double sum = 0.0;
    const int n = 30000;
    for (int i = 0; i < n; ++i) {
        double x = rng.betaMean(mean, kappa);
        ASSERT_GT(x, 0.0);
        ASSERT_LT(x, 1.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, mean, 0.015) << "kappa=" << kappa;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BetaMeanProperty,
    ::testing::Values(std::pair{0.05, 2.0}, std::pair{0.1, 5.0},
                      std::pair{0.3, 4.0}, std::pair{0.5, 1.0},
                      std::pair{0.7, 4.0}, std::pair{0.92, 8.0}));

} // namespace
} // namespace paichar::stats
