/**
 * @file
 * Tests for the ASCII CDF and bar-chart rendering.
 */

#include <gtest/gtest.h>

#include "stats/ascii_plot.h"

namespace paichar::stats {
namespace {

TEST(AsciiPlotTest, CdfPlotHasLegendAndAxis)
{
    WeightedCdf a, b;
    for (double v : {1.0, 2.0, 3.0})
        a.add(v);
    for (double v : {2.0, 4.0})
        b.add(v);
    std::string s = renderCdfPlot({{"alpha", &a}, {"beta", &b}}, 32, 8);
    EXPECT_NE(s.find("legend:"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("beta"), std::string::npos);
    EXPECT_NE(s.find("1.00 |"), std::string::npos);
}

TEST(AsciiPlotTest, CdfPlotLogScaleLabels)
{
    WeightedCdf a;
    a.add(0.001);
    a.add(1000.0);
    std::string s = renderCdfPlot({{"w", &a}}, 32, 8, /*log_x=*/true,
                                  "weight (GB)");
    EXPECT_NE(s.find("(log scale)"), std::string::npos);
    EXPECT_NE(s.find("weight (GB)"), std::string::npos);
}

TEST(AsciiPlotTest, StackedBarsNormalizedPercentages)
{
    std::vector<StackedBar> bars{
        {"jobA", {{"comm", 3.0}, {"comp", 1.0}}},
    };
    std::string s = renderStackedBars(bars, 40, /*normalize=*/true);
    EXPECT_NE(s.find("75%"), std::string::npos);
    EXPECT_NE(s.find("25%"), std::string::npos);
    EXPECT_NE(s.find("legend:"), std::string::npos);
}

TEST(AsciiPlotTest, StackedBarsAbsoluteShowsTotal)
{
    std::vector<StackedBar> bars{
        {"jobA", {{"x", 2.0}, {"y", 2.0}}},
        {"jobB", {{"x", 1.0}}},
    };
    std::string s = renderStackedBars(bars, 40, /*normalize=*/false);
    EXPECT_NE(s.find("4.000"), std::string::npos);
    EXPECT_NE(s.find("1.000"), std::string::npos);
}

TEST(AsciiPlotTest, PlainBarsScaleToMax)
{
    std::string s = renderBars({{"a", 2.0}, {"b", 1.0}}, 10, "x");
    // "a" gets 10 glyphs, "b" 5.
    EXPECT_NE(s.find("##########"), std::string::npos);
    EXPECT_NE(s.find("2.000 x"), std::string::npos);
}

TEST(AsciiPlotTest, ZeroValuesHandled)
{
    std::string s = renderBars({{"a", 0.0}}, 10);
    EXPECT_NE(s.find("0.000"), std::string::npos);
}

} // namespace
} // namespace paichar::stats
