/**
 * @file
 * Tests for ASCII table rendering and value formatting.
 */

#include <gtest/gtest.h>

#include "stats/table.h"

namespace paichar::stats {
namespace {

TEST(TableTest, RenderContainsHeadersAndCells)
{
    Table t({"model", "time"});
    t.addRow({"ResNet50", "0.25 s"});
    t.addRow({"BERT", "0.40 s"});
    std::string s = t.render();
    EXPECT_NE(s.find("model"), std::string::npos);
    EXPECT_NE(s.find("ResNet50"), std::string::npos);
    EXPECT_NE(s.find("0.40 s"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TableTest, SeparatorDoesNotCountAsRow)
{
    Table t({"a"});
    t.addRow({"x"});
    t.addSeparator();
    t.addRow({"y"});
    EXPECT_EQ(t.rowCount(), 2u);
    // top sep + header + sep + row + inner sep + row + bottom sep.
    std::string s = t.render();
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 7);
}

TEST(TableTest, ColumnsAlignToWidestCell)
{
    Table t({"h", "hh"});
    t.addRow({"looooong", "x"});
    std::string s = t.render();
    // Every line has identical length.
    size_t first_nl = s.find('\n');
    ASSERT_NE(first_nl, std::string::npos);
    size_t line_len = first_nl;
    for (size_t pos = 0; pos < s.size();) {
        size_t nl = s.find('\n', pos);
        ASSERT_NE(nl, std::string::npos);
        EXPECT_EQ(nl - pos, line_len);
        pos = nl + 1;
    }
}

TEST(FormatTest, Fmt)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(1.0, 0), "1");
}

TEST(FormatTest, FmtPct)
{
    EXPECT_EQ(fmtPct(0.618, 1), "61.8%");
    EXPECT_EQ(fmtPct(1.0, 0), "100%");
}

TEST(FormatTest, FmtBytes)
{
    EXPECT_EQ(fmtBytes(500.0), "500 B");
    EXPECT_EQ(fmtBytes(1.33e9), "1.33 GB");
    EXPECT_EQ(fmtBytes(2.5e12), "2.5 TB");
}

TEST(FormatTest, FmtSeconds)
{
    EXPECT_EQ(fmtSeconds(1.5), "1.500 s");
    EXPECT_EQ(fmtSeconds(0.0021), "2.100 ms");
    EXPECT_EQ(fmtSeconds(3.2e-6), "3.200 us");
}

} // namespace
} // namespace paichar::stats
