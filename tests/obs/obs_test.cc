/**
 * @file
 * Tests for the paichar::obs observability layer: metric registry
 * semantics, span capture and Chrome-trace export, and the CLI
 * --metrics/--profile integration -- including the contract that
 * observability never perturbs stdout, for any thread count.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "obs/obs.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"

namespace paichar::obs {
namespace {

/** Re-enables metric recording even when a test fails mid-way. */
struct EnabledGuard
{
    ~EnabledGuard() { setEnabled(true); }
};

TEST(ObsMetricsTest, CounterAccumulatesAndResets)
{
    Counter &c = counter("test.counter_basic");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetricsTest, LookupReturnsTheSameInstance)
{
    Counter &a = counter("test.counter_identity");
    Counter &b = counter("test.counter_identity");
    EXPECT_EQ(&a, &b);
    a.add(7);
    EXPECT_EQ(b.value(), 7u);
}

TEST(ObsMetricsTest, KindMismatchThrows)
{
    counter("test.kind_clash");
    EXPECT_THROW(gauge("test.kind_clash"), std::logic_error);
    EXPECT_THROW(histogram("test.kind_clash"), std::logic_error);
}

TEST(ObsMetricsTest, GaugeTracksLevelAndPeak)
{
    Gauge &g = gauge("test.gauge_basic");
    g.add(3);
    g.add(4);
    g.add(-5);
    EXPECT_EQ(g.value(), 2);
    EXPECT_EQ(g.peak(), 7);
    g.set(100);
    EXPECT_EQ(g.value(), 100);
    EXPECT_EQ(g.peak(), 100);
    g.reset();
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(g.peak(), 0);
}

TEST(ObsMetricsTest, HistogramStatsAreExactWhereDocumented)
{
    Histogram &h = histogram("test.hist_basic");
    for (double v : {1.0, 2.0, 3.0, 100.0})
        h.observe(v);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 106.0);
    EXPECT_DOUBLE_EQ(h.mean(), 26.5);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    // Quantiles are bucketed: the answer is the power-of-two upper
    // bound of the bucket holding the quantile, never below the true
    // value's bucket.
    EXPECT_GE(h.quantile(1.0), 100.0);
    EXPECT_LE(h.quantile(0.0), 1.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(ObsMetricsTest, GaugeSetRatchetsPeakButNeverLowersIt)
{
    // set() documents peak-ratchet semantics: the peak follows the
    // highest level ever set, and a later lower set() moves the
    // value without touching the peak.
    Gauge &g = gauge("test.gauge_set_ratchet");
    g.set(10);
    g.set(3);
    EXPECT_EQ(g.value(), 3);
    EXPECT_EQ(g.peak(), 10);
    g.set(12);
    EXPECT_EQ(g.value(), 12);
    EXPECT_EQ(g.peak(), 12);
    // A negative level never drags the peak below zero (peak starts
    // at 0 and only ratchets up).
    g.reset();
    g.set(-4);
    EXPECT_EQ(g.value(), -4);
    EXPECT_EQ(g.peak(), 0);
}

TEST(ObsMetricsTest, EmptyHistogramQuantileIsNaNAndEmptyIsTrue)
{
    Histogram &h = histogram("test.hist_empty_quantile");
    EXPECT_TRUE(h.empty());
    // NaN, not a silent 0.0: callers must check empty() first, and
    // the renderers print '-' for empty histograms.
    EXPECT_TRUE(std::isnan(h.quantile(0.5)));
    EXPECT_TRUE(std::isnan(h.quantile(0.99)));
    h.observe(4.0);
    EXPECT_FALSE(h.empty());
    EXPECT_FALSE(std::isnan(h.quantile(0.5)));
    h.reset();
    EXPECT_TRUE(h.empty());
    EXPECT_TRUE(std::isnan(h.quantile(0.5)));
}

TEST(ObsMetricsTest, SummaryRendersDashesForEmptyHistograms)
{
    histogram("test.hist_render_empty");
    std::string s = renderMetricsSummary();
    auto pos = s.find("test.hist_render_empty");
    ASSERT_NE(pos, std::string::npos);
    auto line_end = s.find('\n', pos);
    std::string line = s.substr(pos, line_end - pos);
    EXPECT_NE(line.find("count 0"), std::string::npos) << line;
    EXPECT_NE(line.find("mean - p50 - p95 - max -"),
              std::string::npos)
        << line;
}

TEST(ObsMetricsTest, HistogramMaxHandlesNegativeObservations)
{
    Histogram &h = histogram("test.hist_negative");
    h.observe(-5.0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.max(), -5.0);
    h.observe(-2.0);
    EXPECT_DOUBLE_EQ(h.max(), -2.0);
}

TEST(ObsMetricsTest, HistogramBucketZeroContract)
{
    // Pins the documented bucket contract: bucket i >= 1 covers
    // (2^(i-1), 2^i], bucket 0 is the catch-all for everything <= 1
    // -- including exact zero, negatives and NaN -- so counts always
    // reconcile with count().
    Histogram &h = histogram("test.hist_bucket_zero");
    h.observe(0.0);
    h.observe(0.5);
    h.observe(1.0); // boundary: 1.0 is *inside* bucket 0
    h.observe(-3.0);
    h.observe(std::nan(""));
    EXPECT_EQ(h.bucketCount(0), 5u);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);

    // Anything even slightly above 1 leaves bucket 0 for (1, 2].
    h.observe(1.0000001);
    EXPECT_EQ(h.bucketCount(0), 5u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 2.0);
    // Upper bucket edges are exact powers of two and inclusive.
    EXPECT_DOUBLE_EQ(Histogram::bucketUpperBound(0), 1.0);
    EXPECT_DOUBLE_EQ(Histogram::bucketUpperBound(1), 2.0);
    EXPECT_DOUBLE_EQ(Histogram::bucketUpperBound(10), 1024.0);
    h.observe(2.0);
    EXPECT_EQ(h.bucketCount(1), 2u);
}

TEST(ObsMetricsTest, OpenMetricsRenderFollowsTheFormat)
{
    resetMetrics();
    counter("test.om_counter").add(42);
    Gauge &g = gauge("test.om_gauge");
    g.add(5);
    g.add(-3);
    Histogram &h = histogram("test.om_hist");
    h.observe(0.5);
    h.observe(3.0);
    h.observe(3.5);
    std::string om = renderMetricsOpenMetrics();
    // Names sanitized to [a-zA-Z0-9_:]; counters end in _total.
    EXPECT_NE(om.find("# TYPE test_om_counter counter"),
              std::string::npos);
    EXPECT_NE(om.find("test_om_counter_total 42"), std::string::npos);
    // Gauges carry level and a _peak companion.
    EXPECT_NE(om.find("# TYPE test_om_gauge gauge"),
              std::string::npos);
    EXPECT_NE(om.find("test_om_gauge 2"), std::string::npos);
    EXPECT_NE(om.find("test_om_gauge_peak 5"), std::string::npos);
    // Histogram buckets are cumulative with an +Inf closing bucket.
    EXPECT_NE(om.find("# TYPE test_om_hist histogram"),
              std::string::npos);
    EXPECT_NE(om.find("test_om_hist_bucket{le=\"1\"} 1"),
              std::string::npos);
    EXPECT_NE(om.find("test_om_hist_bucket{le=\"4\"} 3"),
              std::string::npos);
    EXPECT_NE(om.find("test_om_hist_bucket{le=\"+Inf\"} 3"),
              std::string::npos);
    EXPECT_NE(om.find("test_om_hist_count 3"), std::string::npos);
    EXPECT_NE(om.find("test_om_hist_sum 7"), std::string::npos);
    // Exposition ends with the mandatory EOF marker.
    EXPECT_EQ(om.substr(om.size() - 6), "# EOF\n");
}

TEST(ObsSpanTest, ProfileJsonEscapesSpanNames)
{
    const char *name = internName(
        std::string("bad \"quoted\\name\"\twith ctrl\x02 caf\xc3\xa9"));
    startProfiling();
    { Span s(name); }
    stopProfiling();
    std::string json = profileToJson();
    // Golden escaped form of the hostile name, embedded verbatim.
    EXPECT_NE(json.find("\"name\":\"bad \\\"quoted\\\\name\\\"\\t"
                        "with ctrl\\u0002 caf\xc3\xa9\""),
              std::string::npos);
    // No raw control bytes or unescaped quotes survive into the JSON.
    EXPECT_EQ(json.find('\x02'), std::string::npos);
    EXPECT_EQ(json.find('\t'), std::string::npos);
}

TEST(ObsMetricsTest, DisabledRecordingDropsEverything)
{
    EnabledGuard guard;
    Counter &c = counter("test.disabled_counter");
    Gauge &g = gauge("test.disabled_gauge");
    Histogram &h = histogram("test.disabled_hist");
    setEnabled(false);
    EXPECT_FALSE(enabled());
    c.add(5);
    g.add(5);
    h.observe(5.0);
    setEnabled(true);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(h.count(), 0u);
}

TEST(ObsMetricsTest, ConcurrentCountsAreExact)
{
    Counter &c = counter("test.concurrent_counter");
    Histogram &h = histogram("test.concurrent_hist");
    runtime::ThreadPool pool(8);
    constexpr size_t kIters = 20000;
    runtime::parallelFor(&pool, kIters, [&](size_t i) {
        c.add();
        h.observe(static_cast<double>(i % 16));
    });
    EXPECT_EQ(c.value(), kIters);
    EXPECT_EQ(h.count(), kIters);
}

TEST(ObsMetricsTest, ResetMetricsZeroesTheRegistry)
{
    Counter &c = counter("test.reset_all");
    c.add(9);
    resetMetrics();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetricsTest, SummaryRendersSortedWithValues)
{
    counter("test.zz_summary").add(123);
    gauge("test.aa_summary").set(4);
    std::string s = renderMetricsSummary();
    EXPECT_NE(s.find("# paichar metrics"), std::string::npos);
    auto a = s.find("test.aa_summary");
    auto z = s.find("test.zz_summary");
    ASSERT_NE(a, std::string::npos);
    ASSERT_NE(z, std::string::npos);
    EXPECT_LT(a, z); // name-sorted
    EXPECT_NE(s.find("123"), std::string::npos);
}

TEST(ObsSpanTest, ProfileJsonIsChromeTraceShaped)
{
    startProfiling();
    {
        Span outer("test.span_outer", 42);
        Span inner("test.span_inner");
    }
    stopProfiling();
    std::string json = profileToJson();
    EXPECT_EQ(json.rfind("{\"displayTimeUnit\"", 0), 0u);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("test.span_outer"), std::string::npos);
    EXPECT_NE(json.find("test.span_inner"), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"value\":42}"),
              std::string::npos);
    // Deterministic merge order: outer opened first, so it sorts
    // first (earlier start, lower sequence number on ties).
    EXPECT_LT(json.find("test.span_outer"),
              json.find("test.span_inner"));
    EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
}

TEST(ObsSpanTest, SpansOutsideProfilingAreNotCaptured)
{
    startProfiling();
    stopProfiling();
    { Span s("test.span_after_stop"); }
    EXPECT_EQ(profileToJson().find("test.span_after_stop"),
              std::string::npos);
}

TEST(ObsSpanTest, StartProfilingClearsEarlierSessions)
{
    startProfiling();
    { Span s("test.span_session_one"); }
    stopProfiling();
    startProfiling();
    { Span s("test.span_session_two"); }
    stopProfiling();
    std::string json = profileToJson();
    EXPECT_EQ(json.find("test.span_session_one"), std::string::npos);
    EXPECT_NE(json.find("test.span_session_two"), std::string::npos);
}

TEST(ObsSpanTest, WorkerSpansCarryThreadMetadata)
{
    runtime::ThreadPool pool(2);
    startProfiling();
    runtime::parallelFor(&pool, 64, [](size_t) {
        Span s("test.span_worker");
    });
    stopProfiling();
    std::string json = profileToJson();
    EXPECT_NE(json.find("test.span_worker"), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(ObsSpanTest, InternNameIsStableAndDeduplicated)
{
    const char *a = internName(std::string("test.interned"));
    const char *b = internName(std::string("test.interned"));
    EXPECT_EQ(a, b);
    EXPECT_STREQ(a, "test.interned");
}

} // namespace
} // namespace paichar::obs

namespace paichar::cli {
namespace {

struct CliResult
{
    int code;
    std::string out;
    std::string err;
};

CliResult
runCli(std::vector<std::string> args)
{
    std::ostringstream out, err;
    int code = run(args, out, err);
    return {code, out.str(), err.str()};
}

std::string
readFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

/**
 * Value of a counter/gauge line in a rendered metrics summary, or
 * uint64_t(-1) if the metric is missing.
 */
uint64_t
metricValue(const std::string &summary, const std::string &name)
{
    std::istringstream lines(summary);
    std::string line;
    while (std::getline(lines, line)) {
        std::istringstream fields(line);
        std::string kind, metric;
        uint64_t value = 0;
        if (fields >> kind >> metric >> value && metric == name)
            return value;
    }
    return static_cast<uint64_t>(-1);
}

class ObsCliTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        std::string base = testing::TempDir() + "/paichar_obs_" +
                           std::to_string(::getpid());
        trace_ = base + ".csv";
        metrics_ = base + ".metrics";
        profile_ = base + ".trace.json";
        auto r = runCli({"generate", "--jobs", "5000", "--seed",
                         "42", "--out", trace_});
        ASSERT_EQ(r.code, 0) << r.err;
    }

    void
    TearDown() override
    {
        std::remove(trace_.c_str());
        std::remove(metrics_.c_str());
        std::remove(profile_.c_str());
    }

    std::string trace_, metrics_, profile_;
};

TEST_F(ObsCliTest, MetricsFileCountersMatchTheRun)
{
    obs::resetMetrics();
    auto r = runCli({"characterize", trace_,
                     "--metrics=" + metrics_});
    ASSERT_EQ(r.code, 0) << r.err;
    std::string summary = readFile(metrics_);
    // Every row the parser consumed is a job in the trace.
    EXPECT_EQ(metricValue(summary, "trace.rows_parsed"), 5000u);
    EXPECT_EQ(metricValue(summary, "core.jobs_evaluated"), 5000u);
    EXPECT_GT(metricValue(summary, "trace.bytes_parsed"), 0u);
}

TEST_F(ObsCliTest, BareMetricsFlagWritesSummaryToStderr)
{
    obs::resetMetrics();
    auto plain = runCli({"characterize", trace_});
    auto flagged = runCli({"characterize", trace_, "--metrics"});
    ASSERT_EQ(flagged.code, 0);
    EXPECT_EQ(plain.out, flagged.out);
    EXPECT_NE(flagged.err.find("# paichar metrics"),
              std::string::npos);
    EXPECT_NE(flagged.err.find("trace.rows_parsed"),
              std::string::npos);
}

TEST_F(ObsCliTest, ProfileEmitsChromeTraceWithExpectedSpans)
{
    auto r = runCli({"characterize", trace_, "--threads", "2",
                     "--profile", profile_});
    ASSERT_EQ(r.code, 0) << r.err;
    std::string json = readFile(profile_);
    EXPECT_EQ(json.rfind("{\"displayTimeUnit\"", 0), 0u);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    // The root command span, the parse phase, the model-evaluation
    // phase and the pool's task spans all show up.
    EXPECT_NE(json.find("cli.characterize"), std::string::npos);
    EXPECT_NE(json.find("trace.parse_csv"), std::string::npos);
    EXPECT_NE(json.find("core.model_breakdowns"),
              std::string::npos);
    EXPECT_NE(json.find("runtime.task"), std::string::npos);
}

TEST_F(ObsCliTest, StdoutIsByteIdenticalAcrossThreadsAndObsFlags)
{
    auto baseline = runCli({"characterize", trace_});
    ASSERT_EQ(baseline.code, 0) << baseline.err;
    for (const char *threads : {"1", "2", "8"}) {
        auto plain =
            runCli({"characterize", trace_, "--threads", threads});
        EXPECT_EQ(plain.code, 0);
        EXPECT_EQ(plain.out, baseline.out) << threads << " threads";

        auto observed = runCli({"characterize", trace_, "--threads",
                                threads, "--profile", profile_,
                                "--metrics=" + metrics_});
        EXPECT_EQ(observed.code, 0);
        EXPECT_EQ(observed.out, baseline.out)
            << threads << " threads with --profile/--metrics";
        EXPECT_EQ(observed.err, "");
    }
}

TEST_F(ObsCliTest, EqualsSyntaxAndPairSyntaxAgree)
{
    auto pair = runCli({"generate", "--jobs", "100", "--seed", "7"});
    auto eq = runCli({"generate", "--jobs=100", "--seed=7"});
    ASSERT_EQ(pair.code, 0);
    ASSERT_EQ(eq.code, 0);
    EXPECT_EQ(pair.out, eq.out);
}

TEST_F(ObsCliTest, EmptyProfilePathIsAUsageError)
{
    auto r = runCli({"characterize", trace_, "--profile="});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("--profile"), std::string::npos);
}

TEST_F(ObsCliTest, UnwritableMetricsPathFailsWithStrerror)
{
    // /dev/null is a file, so a path *under* it can never be created:
    // the failure must carry the OS reason, not just "cannot write".
    auto r = runCli({"characterize", trace_,
                     "--metrics=/dev/null/sub/m.txt"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("/dev/null/sub"), std::string::npos);
    EXPECT_NE(r.err.find("Not a directory"), std::string::npos)
        << r.err;
}

TEST_F(ObsCliTest, MetricsWriterCreatesMissingParentDirectories)
{
    std::string dir = testing::TempDir() + "/paichar_obs_mkdir_" +
                      std::to_string(::getpid());
    std::string path = dir + "/nested/deep/m.txt";
    auto r = runCli({"characterize", trace_, "--metrics=" + path});
    ASSERT_EQ(r.code, 0) << r.err;
    std::string summary = readFile(path);
    EXPECT_NE(summary.find("# paichar metrics"), std::string::npos);
    std::remove(path.c_str());
    std::filesystem::remove_all(dir);
}

TEST_F(ObsCliTest, OpenMetricsFormatIsSelectable)
{
    obs::resetMetrics();
    auto r = runCli({"characterize", trace_, "--metrics=" + metrics_,
                     "--metrics-format", "openmetrics"});
    ASSERT_EQ(r.code, 0) << r.err;
    std::string om = readFile(metrics_);
    EXPECT_NE(om.find("# TYPE trace_rows_parsed counter"),
              std::string::npos);
    EXPECT_NE(om.find("trace_rows_parsed_total 5000"),
              std::string::npos);
    EXPECT_EQ(om.substr(om.size() - 6), "# EOF\n");

    auto bad = runCli({"characterize", trace_,
                       "--metrics-format", "yaml"});
    EXPECT_EQ(bad.code, 1);
    EXPECT_NE(bad.err.find("--metrics-format"), std::string::npos);
}

/**
 * CLI fixture for the job-telemetry flags and the `obs` analysis
 * family, on a trace small enough to schedule quickly.
 */
class JobLogCliTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        base_ = testing::TempDir() + "/paichar_joblog_" +
                std::to_string(::getpid());
        trace_ = base_ + ".csv";
        auto r = runCli({"generate", "--jobs", "60", "--seed",
                         "20180801", "--out", trace_});
        ASSERT_EQ(r.code, 0) << r.err;
    }

    void
    TearDown() override
    {
        std::remove(trace_.c_str());
        for (const std::string &f : cleanup_)
            std::remove(f.c_str());
    }

    std::string
    path(const std::string &suffix)
    {
        std::string p = base_ + suffix;
        cleanup_.push_back(p);
        return p;
    }

    CliResult
    schedule(std::vector<std::string> extra)
    {
        std::vector<std::string> args{"schedule", trace_, "--servers",
                                      "16", "--rate", "400"};
        args.insert(args.end(), extra.begin(), extra.end());
        return runCli(args);
    }

    std::string base_, trace_;
    std::vector<std::string> cleanup_;
};

TEST_F(JobLogCliTest, JobLogEmitsOneSchemaRecordPerJob)
{
    std::string log = path(".jsonl");
    auto r = schedule({"--job-log", log});
    ASSERT_EQ(r.code, 0) << r.err;
    std::string text = readFile(log);
    size_t lines = 0, schemas = 0;
    for (size_t pos = 0;
         (pos = text.find('\n', pos)) != std::string::npos; ++pos)
        ++lines;
    for (size_t pos = 0;
         (pos = text.find("\"schema\":\"paichar.job.v1\"", pos)) !=
         std::string::npos;
         ++pos)
        ++schemas;
    EXPECT_EQ(lines, 60u);
    EXPECT_EQ(schemas, 60u);
    EXPECT_NE(text.find("\"source\":\"clustersim\""),
              std::string::npos);
    EXPECT_NE(text.find("\"pred_step_s\":"), std::string::npos);
    EXPECT_NE(text.find("\"sim_step_s\":"), std::string::npos);
}

TEST_F(JobLogCliTest, JobLogIsByteIdenticalAcrossThreadCounts)
{
    std::string log1 = path(".t1.jsonl");
    std::string log8 = path(".t8.jsonl");
    auto r1 = schedule({"--threads", "1", "--job-log", log1});
    auto r8 = schedule({"--threads", "8", "--job-log", log8});
    ASSERT_EQ(r1.code, 0) << r1.err;
    ASSERT_EQ(r8.code, 0) << r8.err;
    EXPECT_EQ(readFile(log1), readFile(log8));
}

TEST_F(JobLogCliTest, StdoutUnchangedByJobTelemetryFlags)
{
    auto plain = schedule({});
    ASSERT_EQ(plain.code, 0) << plain.err;
    auto flagged = schedule({"--job-log", path(".jsonl"),
                             "--job-trace", path(".trace.json")});
    ASSERT_EQ(flagged.code, 0) << flagged.err;
    EXPECT_EQ(flagged.out, plain.out);
    EXPECT_EQ(flagged.err, "");
}

TEST_F(JobLogCliTest, JobTraceIsChromeTraceShaped)
{
    std::string trace_json = path(".trace.json");
    auto r = schedule({"--job-trace", trace_json});
    ASSERT_EQ(r.code, 0) << r.err;
    std::string json = readFile(trace_json);
    EXPECT_EQ(json.rfind("{\"displayTimeUnit\"", 0), 0u);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("server-"), std::string::npos);
    EXPECT_NE(json.find("phase.Tc"), std::string::npos);
}

TEST_F(JobLogCliTest, ObsReportAndTopReadTheLogBack)
{
    std::string log = path(".jsonl");
    ASSERT_EQ(schedule({"--job-log", log}).code, 0);

    auto report = runCli({"obs", "report", log});
    ASSERT_EQ(report.code, 0) << report.err;
    EXPECT_NE(report.out.find("# paichar obs report (job log)"),
              std::string::npos);
    EXPECT_NE(report.out.find("jobs 60"), std::string::npos);
    EXPECT_NE(report.out.find("phase shares (mean):"),
              std::string::npos);

    auto top = runCli({"obs", "top", log, "--limit", "5"});
    ASSERT_EQ(top.code, 0) << top.err;
    EXPECT_NE(top.out.find("# paichar obs top (5 slowest jobs"),
              std::string::npos);
    EXPECT_NE(top.out.find("phase totals:"), std::string::npos);

    // top requires a job log, not a metrics dump.
    std::string metrics = path(".metrics");
    ASSERT_EQ(schedule({"--metrics=" + metrics}).code, 0);
    auto bad = runCli({"obs", "top", metrics});
    EXPECT_EQ(bad.code, 1);
}

TEST_F(JobLogCliTest, ObsDiffGatesOnToleranceWithExitTwo)
{
    std::string log_a = path(".a.jsonl");
    std::string log_b = path(".b.jsonl");
    ASSERT_EQ(schedule({"--job-log", log_a}).code, 0);
    ASSERT_EQ(schedule({"--job-log", log_b}).code, 0);

    // Identical runs diff clean at any tolerance.
    auto clean = runCli({"obs", "diff", log_a, log_b,
                         "--tolerance", "0.1"});
    EXPECT_EQ(clean.code, 0) << clean.out;
    EXPECT_NE(clean.out.find("within tolerance"), std::string::npos);

    // A run under observable congestion (fewer servers) moves the
    // queueing scalars far past a tight gate: exit 2, not 1.
    std::string log_c = path(".c.jsonl");
    auto r = runCli({"schedule", trace_, "--servers", "4", "--rate",
                     "400", "--job-log", log_c});
    ASSERT_EQ(r.code, 0) << r.err;
    auto gate = runCli({"obs", "diff", log_a, log_c,
                        "--tolerance", "0.5"});
    EXPECT_EQ(gate.code, 2) << gate.out;
    EXPECT_NE(gate.out.find("REGRESSION:"), std::string::npos);
    EXPECT_NE(gate.out.find("VIOLATION"), std::string::npos);

    // Usage errors stay exit 1, distinct from the regression signal.
    EXPECT_EQ(runCli({"obs", "diff", log_a}).code, 1);
    EXPECT_EQ(runCli({"obs", "diff", log_a, log_b, "--tolerance",
                      "-5"})
                  .code,
              1);
    EXPECT_EQ(runCli({"obs", "report", base_ + ".missing"}).code, 1);
}

TEST_F(JobLogCliTest, DiagnoseRecordsTestbedJobsWithSkew)
{
    std::string log = path(".diag.jsonl");
    auto r = runCli({"diagnose", "resnet50", "--job-log", log});
    ASSERT_EQ(r.code, 0) << r.err;
    std::string text = readFile(log);
    EXPECT_NE(text.find("\"source\":\"testbed\""), std::string::npos);
    EXPECT_NE(text.find("\"name\":\"ResNet50\""),
              std::string::npos);
    // The testbed measures, the model predicts: skew is a real
    // nonzero recorded quantity here.
    EXPECT_NE(text.find("\"skew_pct\":"), std::string::npos);
    EXPECT_EQ(text.find("\"skew_pct\":0,"), std::string::npos);
    EXPECT_EQ(text.find("\"skew_pct\":0\n"), std::string::npos);
}

} // namespace
} // namespace paichar::cli
