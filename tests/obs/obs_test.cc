/**
 * @file
 * Tests for the paichar::obs observability layer: metric registry
 * semantics, span capture and Chrome-trace export, and the CLI
 * --metrics/--profile integration -- including the contract that
 * observability never perturbs stdout, for any thread count.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "obs/obs.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"

namespace paichar::obs {
namespace {

/** Re-enables metric recording even when a test fails mid-way. */
struct EnabledGuard
{
    ~EnabledGuard() { setEnabled(true); }
};

TEST(ObsMetricsTest, CounterAccumulatesAndResets)
{
    Counter &c = counter("test.counter_basic");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetricsTest, LookupReturnsTheSameInstance)
{
    Counter &a = counter("test.counter_identity");
    Counter &b = counter("test.counter_identity");
    EXPECT_EQ(&a, &b);
    a.add(7);
    EXPECT_EQ(b.value(), 7u);
}

TEST(ObsMetricsTest, KindMismatchThrows)
{
    counter("test.kind_clash");
    EXPECT_THROW(gauge("test.kind_clash"), std::logic_error);
    EXPECT_THROW(histogram("test.kind_clash"), std::logic_error);
}

TEST(ObsMetricsTest, GaugeTracksLevelAndPeak)
{
    Gauge &g = gauge("test.gauge_basic");
    g.add(3);
    g.add(4);
    g.add(-5);
    EXPECT_EQ(g.value(), 2);
    EXPECT_EQ(g.peak(), 7);
    g.set(100);
    EXPECT_EQ(g.value(), 100);
    EXPECT_EQ(g.peak(), 100);
    g.reset();
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(g.peak(), 0);
}

TEST(ObsMetricsTest, HistogramStatsAreExactWhereDocumented)
{
    Histogram &h = histogram("test.hist_basic");
    for (double v : {1.0, 2.0, 3.0, 100.0})
        h.observe(v);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 106.0);
    EXPECT_DOUBLE_EQ(h.mean(), 26.5);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    // Quantiles are bucketed: the answer is the power-of-two upper
    // bound of the bucket holding the quantile, never below the true
    // value's bucket.
    EXPECT_GE(h.quantile(1.0), 100.0);
    EXPECT_LE(h.quantile(0.0), 1.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(ObsMetricsTest, HistogramMaxHandlesNegativeObservations)
{
    Histogram &h = histogram("test.hist_negative");
    h.observe(-5.0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.max(), -5.0);
    h.observe(-2.0);
    EXPECT_DOUBLE_EQ(h.max(), -2.0);
}

TEST(ObsMetricsTest, DisabledRecordingDropsEverything)
{
    EnabledGuard guard;
    Counter &c = counter("test.disabled_counter");
    Gauge &g = gauge("test.disabled_gauge");
    Histogram &h = histogram("test.disabled_hist");
    setEnabled(false);
    EXPECT_FALSE(enabled());
    c.add(5);
    g.add(5);
    h.observe(5.0);
    setEnabled(true);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(h.count(), 0u);
}

TEST(ObsMetricsTest, ConcurrentCountsAreExact)
{
    Counter &c = counter("test.concurrent_counter");
    Histogram &h = histogram("test.concurrent_hist");
    runtime::ThreadPool pool(8);
    constexpr size_t kIters = 20000;
    runtime::parallelFor(&pool, kIters, [&](size_t i) {
        c.add();
        h.observe(static_cast<double>(i % 16));
    });
    EXPECT_EQ(c.value(), kIters);
    EXPECT_EQ(h.count(), kIters);
}

TEST(ObsMetricsTest, ResetMetricsZeroesTheRegistry)
{
    Counter &c = counter("test.reset_all");
    c.add(9);
    resetMetrics();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetricsTest, SummaryRendersSortedWithValues)
{
    counter("test.zz_summary").add(123);
    gauge("test.aa_summary").set(4);
    std::string s = renderMetricsSummary();
    EXPECT_NE(s.find("# paichar metrics"), std::string::npos);
    auto a = s.find("test.aa_summary");
    auto z = s.find("test.zz_summary");
    ASSERT_NE(a, std::string::npos);
    ASSERT_NE(z, std::string::npos);
    EXPECT_LT(a, z); // name-sorted
    EXPECT_NE(s.find("123"), std::string::npos);
}

TEST(ObsSpanTest, ProfileJsonIsChromeTraceShaped)
{
    startProfiling();
    {
        Span outer("test.span_outer", 42);
        Span inner("test.span_inner");
    }
    stopProfiling();
    std::string json = profileToJson();
    EXPECT_EQ(json.rfind("{\"displayTimeUnit\"", 0), 0u);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("test.span_outer"), std::string::npos);
    EXPECT_NE(json.find("test.span_inner"), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"value\":42}"),
              std::string::npos);
    // Deterministic merge order: outer opened first, so it sorts
    // first (earlier start, lower sequence number on ties).
    EXPECT_LT(json.find("test.span_outer"),
              json.find("test.span_inner"));
    EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
}

TEST(ObsSpanTest, SpansOutsideProfilingAreNotCaptured)
{
    startProfiling();
    stopProfiling();
    { Span s("test.span_after_stop"); }
    EXPECT_EQ(profileToJson().find("test.span_after_stop"),
              std::string::npos);
}

TEST(ObsSpanTest, StartProfilingClearsEarlierSessions)
{
    startProfiling();
    { Span s("test.span_session_one"); }
    stopProfiling();
    startProfiling();
    { Span s("test.span_session_two"); }
    stopProfiling();
    std::string json = profileToJson();
    EXPECT_EQ(json.find("test.span_session_one"), std::string::npos);
    EXPECT_NE(json.find("test.span_session_two"), std::string::npos);
}

TEST(ObsSpanTest, WorkerSpansCarryThreadMetadata)
{
    runtime::ThreadPool pool(2);
    startProfiling();
    runtime::parallelFor(&pool, 64, [](size_t) {
        Span s("test.span_worker");
    });
    stopProfiling();
    std::string json = profileToJson();
    EXPECT_NE(json.find("test.span_worker"), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(ObsSpanTest, InternNameIsStableAndDeduplicated)
{
    const char *a = internName(std::string("test.interned"));
    const char *b = internName(std::string("test.interned"));
    EXPECT_EQ(a, b);
    EXPECT_STREQ(a, "test.interned");
}

} // namespace
} // namespace paichar::obs

namespace paichar::cli {
namespace {

struct CliResult
{
    int code;
    std::string out;
    std::string err;
};

CliResult
runCli(std::vector<std::string> args)
{
    std::ostringstream out, err;
    int code = run(args, out, err);
    return {code, out.str(), err.str()};
}

std::string
readFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

/**
 * Value of a counter/gauge line in a rendered metrics summary, or
 * uint64_t(-1) if the metric is missing.
 */
uint64_t
metricValue(const std::string &summary, const std::string &name)
{
    std::istringstream lines(summary);
    std::string line;
    while (std::getline(lines, line)) {
        std::istringstream fields(line);
        std::string kind, metric;
        uint64_t value = 0;
        if (fields >> kind >> metric >> value && metric == name)
            return value;
    }
    return static_cast<uint64_t>(-1);
}

class ObsCliTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        std::string base = testing::TempDir() + "/paichar_obs_" +
                           std::to_string(::getpid());
        trace_ = base + ".csv";
        metrics_ = base + ".metrics";
        profile_ = base + ".trace.json";
        auto r = runCli({"generate", "--jobs", "5000", "--seed",
                         "42", "--out", trace_});
        ASSERT_EQ(r.code, 0) << r.err;
    }

    void
    TearDown() override
    {
        std::remove(trace_.c_str());
        std::remove(metrics_.c_str());
        std::remove(profile_.c_str());
    }

    std::string trace_, metrics_, profile_;
};

TEST_F(ObsCliTest, MetricsFileCountersMatchTheRun)
{
    obs::resetMetrics();
    auto r = runCli({"characterize", trace_,
                     "--metrics=" + metrics_});
    ASSERT_EQ(r.code, 0) << r.err;
    std::string summary = readFile(metrics_);
    // Every row the parser consumed is a job in the trace.
    EXPECT_EQ(metricValue(summary, "trace.rows_parsed"), 5000u);
    EXPECT_EQ(metricValue(summary, "core.jobs_evaluated"), 5000u);
    EXPECT_GT(metricValue(summary, "trace.bytes_parsed"), 0u);
}

TEST_F(ObsCliTest, BareMetricsFlagWritesSummaryToStderr)
{
    obs::resetMetrics();
    auto plain = runCli({"characterize", trace_});
    auto flagged = runCli({"characterize", trace_, "--metrics"});
    ASSERT_EQ(flagged.code, 0);
    EXPECT_EQ(plain.out, flagged.out);
    EXPECT_NE(flagged.err.find("# paichar metrics"),
              std::string::npos);
    EXPECT_NE(flagged.err.find("trace.rows_parsed"),
              std::string::npos);
}

TEST_F(ObsCliTest, ProfileEmitsChromeTraceWithExpectedSpans)
{
    auto r = runCli({"characterize", trace_, "--threads", "2",
                     "--profile", profile_});
    ASSERT_EQ(r.code, 0) << r.err;
    std::string json = readFile(profile_);
    EXPECT_EQ(json.rfind("{\"displayTimeUnit\"", 0), 0u);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    // The root command span, the parse phase, the model-evaluation
    // phase and the pool's task spans all show up.
    EXPECT_NE(json.find("cli.characterize"), std::string::npos);
    EXPECT_NE(json.find("trace.parse_csv"), std::string::npos);
    EXPECT_NE(json.find("core.model_breakdowns"),
              std::string::npos);
    EXPECT_NE(json.find("runtime.task"), std::string::npos);
}

TEST_F(ObsCliTest, StdoutIsByteIdenticalAcrossThreadsAndObsFlags)
{
    auto baseline = runCli({"characterize", trace_});
    ASSERT_EQ(baseline.code, 0) << baseline.err;
    for (const char *threads : {"1", "2", "8"}) {
        auto plain =
            runCli({"characterize", trace_, "--threads", threads});
        EXPECT_EQ(plain.code, 0);
        EXPECT_EQ(plain.out, baseline.out) << threads << " threads";

        auto observed = runCli({"characterize", trace_, "--threads",
                                threads, "--profile", profile_,
                                "--metrics=" + metrics_});
        EXPECT_EQ(observed.code, 0);
        EXPECT_EQ(observed.out, baseline.out)
            << threads << " threads with --profile/--metrics";
        EXPECT_EQ(observed.err, "");
    }
}

TEST_F(ObsCliTest, EqualsSyntaxAndPairSyntaxAgree)
{
    auto pair = runCli({"generate", "--jobs", "100", "--seed", "7"});
    auto eq = runCli({"generate", "--jobs=100", "--seed=7"});
    ASSERT_EQ(pair.code, 0);
    ASSERT_EQ(eq.code, 0);
    EXPECT_EQ(pair.out, eq.out);
}

TEST_F(ObsCliTest, EmptyProfilePathIsAUsageError)
{
    auto r = runCli({"characterize", trace_, "--profile="});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("--profile"), std::string::npos);
}

TEST_F(ObsCliTest, UnwritableMetricsPathFailsTheRun)
{
    auto r = runCli({"characterize", trace_,
                     "--metrics=/nonexistent-dir/m.txt"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("cannot write"), std::string::npos);
}

} // namespace
} // namespace paichar::cli
