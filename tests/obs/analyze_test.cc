/**
 * @file
 * Tests for the run-analysis library (obs/analyze.h) behind the
 * `paichar obs` CLI family: format sniffing, scalar derivation from
 * job logs and metrics dumps, diff semantics (the CI perf gate) and
 * the report/top renderers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "obs/analyze.h"
#include "obs/job_log.h"

namespace paichar::obs {
namespace {

JobRecord
makeJob(int64_t id, double queue_s, double run_s, double step_s)
{
    JobRecord r;
    r.job_id = id;
    r.name = "job-" + std::to_string(id);
    r.source = "clustersim";
    r.arch = "PS/Worker";
    r.executed_arch = "PS/Worker";
    r.num_cnodes = 2;
    r.gpus = 2;
    r.server = 0;
    r.num_steps = 10;
    r.placement_attempts = 1;
    r.submit_s = 0.0;
    r.start_s = queue_s;
    r.finish_s = queue_s + run_s;
    r.pred_step_s = step_s;
    r.pred_td_s = step_s * 0.2;
    r.pred_tc_flops_s = step_s * 0.5;
    r.pred_tc_mem_s = step_s * 0.1;
    r.pred_tw_s = step_s * 0.3;
    r.sim_td_s = step_s * 0.2;
    r.sim_tc_s = step_s * 0.5;
    r.sim_tw_s = step_s * 0.3;
    r.sim_step_s = step_s;
    return r;
}

std::string
jobLogText()
{
    std::vector<JobRecord> records;
    for (int i = 0; i < 4; ++i)
        records.push_back(
            makeJob(i + 1, 1.0 + i, 10.0 * (i + 1), 0.5));
    JobRecord dropped = makeJob(5, 0.0, 0.0, 0.5);
    dropped.status = "dropped";
    records.push_back(dropped);
    return renderJobLogJsonl(records);
}

TEST(LoadRunDataTest, SniffsJobLogFromLeadingBrace)
{
    RunLoad load = loadRunData(jobLogText());
    ASSERT_TRUE(load.ok) << load.error;
    EXPECT_EQ(load.data.kind, RunData::Kind::JobLog);
    EXPECT_EQ(load.data.records.size(), 5u);
    EXPECT_DOUBLE_EQ(load.data.scalars.at("job.count"), 5.0);
    EXPECT_DOUBLE_EQ(load.data.scalars.at("job.completed"), 4.0);
    EXPECT_DOUBLE_EQ(load.data.scalars.at("job.dropped"), 1.0);
    // Distribution stats over the 4 completed jobs.
    EXPECT_DOUBLE_EQ(load.data.scalars.at("job.queue_s.mean"), 2.5);
    EXPECT_DOUBLE_EQ(load.data.scalars.at("job.queue_s.max"), 4.0);
    EXPECT_DOUBLE_EQ(load.data.scalars.at("job.run_s.max"), 40.0);
    // Nearest-rank p50 of {10,20,30,40} is the 2nd value.
    EXPECT_DOUBLE_EQ(load.data.scalars.at("job.run_s.p50"), 20.0);
    EXPECT_DOUBLE_EQ(load.data.scalars.at("job.run_s.p95"), 40.0);
    // Phase-share scalars are fractions of the constructed 20/50/30
    // split (reportText renders them as percentages).
    EXPECT_NEAR(load.data.scalars.at("job.phase_share.td"), 0.2,
                1e-9);
    EXPECT_NEAR(load.data.scalars.at("job.phase_share.tc"), 0.5,
                1e-9);
    EXPECT_NEAR(load.data.scalars.at("job.phase_share.tw"), 0.3,
                1e-9);
}

TEST(LoadRunDataTest, ParsesMetricsSummaryText)
{
    std::string text =
        "# paichar metrics (3 registered)\n"
        "counter   trace.rows_parsed                  5000\n"
        "gauge     runtime.queue_depth                0 peak 12\n"
        "histogram runtime.task_us                    count 96 "
        "mean 412.300 p50 512 p95 4096 max 3012.400\n";
    RunLoad load = loadRunData(text);
    ASSERT_TRUE(load.ok) << load.error;
    EXPECT_EQ(load.data.kind, RunData::Kind::Metrics);
    EXPECT_TRUE(load.data.records.empty());
    EXPECT_DOUBLE_EQ(load.data.scalars.at("trace.rows_parsed"),
                     5000.0);
    EXPECT_DOUBLE_EQ(load.data.scalars.at("runtime.queue_depth"),
                     0.0);
    EXPECT_DOUBLE_EQ(load.data.scalars.at("runtime.queue_depth.peak"),
                     12.0);
    EXPECT_DOUBLE_EQ(load.data.scalars.at("runtime.task_us.count"),
                     96.0);
    EXPECT_DOUBLE_EQ(load.data.scalars.at("runtime.task_us.mean"),
                     412.3);
    EXPECT_DOUBLE_EQ(load.data.scalars.at("runtime.task_us.p95"),
                     4096.0);
}

TEST(LoadRunDataTest, AcceptsDashFieldsFromEmptyHistograms)
{
    // renderMetricsSummary prints '-' for the statistics of an empty
    // histogram; the loader keeps the count and simply omits the
    // absent fields from the scalar view (absent, not 0 -- a zero
    // would read as a regression in obs diff).
    std::string text =
        "# paichar metrics (1 registered)\n"
        "histogram runtime.task_us                    count 0 "
        "mean - p50 - p95 - max -\n";
    RunLoad load = loadRunData(text);
    ASSERT_TRUE(load.ok) << load.error;
    EXPECT_EQ(load.data.kind, RunData::Kind::Metrics);
    EXPECT_DOUBLE_EQ(load.data.scalars.at("runtime.task_us.count"),
                     0.0);
    EXPECT_EQ(load.data.scalars.count("runtime.task_us.mean"), 0u);
    EXPECT_EQ(load.data.scalars.count("runtime.task_us.p50"), 0u);
    EXPECT_EQ(load.data.scalars.count("runtime.task_us.p95"), 0u);
    EXPECT_EQ(load.data.scalars.count("runtime.task_us.max"), 0u);
}

TEST(LoadRunDataTest, ParsesOpenMetricsText)
{
    std::string text =
        "# TYPE trace_rows_parsed counter\n"
        "trace_rows_parsed_total 5000\n"
        "# TYPE runtime_task_us histogram\n"
        "runtime_task_us_bucket{le=\"512\"} 48\n"
        "runtime_task_us_bucket{le=\"+Inf\"} 96\n"
        "runtime_task_us_count 96\n"
        "runtime_task_us_sum 39580.8\n"
        "# EOF\n";
    RunLoad load = loadRunData(text);
    ASSERT_TRUE(load.ok) << load.error;
    EXPECT_EQ(load.data.kind, RunData::Kind::Metrics);
    EXPECT_DOUBLE_EQ(load.data.scalars.at("trace_rows_parsed_total"),
                     5000.0);
    EXPECT_DOUBLE_EQ(load.data.scalars.at("runtime_task_us_count"),
                     96.0);
    EXPECT_DOUBLE_EQ(load.data.scalars.at("runtime_task_us_sum"),
                     39580.8);
    // Labeled bucket samples are skipped, not misparsed.
    EXPECT_EQ(load.data.scalars.count("runtime_task_us_bucket"), 0u);
}

TEST(LoadRunDataTest, RejectsUnrecognizedText)
{
    RunLoad load = loadRunData("job_id,arch\n1,PS/Worker\n");
    EXPECT_FALSE(load.ok);
    EXPECT_FALSE(load.error.empty());
    EXPECT_FALSE(loadRunData("").ok);
}

TEST(LoadRunDataTest, PropagatesJobLogParseErrors)
{
    RunLoad load = loadRunData("{\"schema\":\"paichar.job.v9\"}\n");
    EXPECT_FALSE(load.ok);
    EXPECT_NE(load.error.find("line 1"), std::string::npos);
}

TEST(DiffRunsTest, WithinToleranceIsClean)
{
    RunData a = loadRunData(jobLogText()).data;
    RunData b = a;
    b.scalars["job.run_s.mean"] *= 1.05; // +5% under a 10% gate
    DiffResult diff = diffRuns(a, b, 10.0);
    EXPECT_FALSE(diff.regression);
    for (const DiffEntry &e : diff.entries)
        EXPECT_FALSE(e.violation) << e.key;
    EXPECT_TRUE(diff.only_in_a.empty());
    EXPECT_TRUE(diff.only_in_b.empty());
}

TEST(DiffRunsTest, PastToleranceEitherDirectionViolates)
{
    RunData a = loadRunData(jobLogText()).data;
    RunData up = a, down = a;
    up.scalars["job.run_s.mean"] *= 1.25;
    down.scalars["job.run_s.mean"] *= 0.70;
    for (const RunData *b : {&up, &down}) {
        DiffResult diff = diffRuns(a, *b, 10.0);
        EXPECT_TRUE(diff.regression);
        size_t violations = 0;
        for (const DiffEntry &e : diff.entries) {
            if (e.violation) {
                ++violations;
                EXPECT_EQ(e.key, "job.run_s.mean");
            }
        }
        EXPECT_EQ(violations, 1u);
    }
}

TEST(DiffRunsTest, ZeroToNonzeroIsAlwaysAViolation)
{
    RunData a, b;
    a.scalars["x"] = 0.0;
    b.scalars["x"] = 0.001;
    DiffResult diff = diffRuns(a, b, 1e6); // any finite tolerance
    ASSERT_EQ(diff.entries.size(), 1u);
    EXPECT_TRUE(diff.entries[0].violation);
    EXPECT_TRUE(std::isinf(diff.entries[0].delta_pct));
    EXPECT_TRUE(diff.regression);
    // Zero to zero is no change.
    b.scalars["x"] = 0.0;
    EXPECT_FALSE(diffRuns(a, b, 10.0).regression);
}

TEST(DiffRunsTest, UnsharedKeysAreInformationalNotFatal)
{
    RunData a, b;
    a.scalars["shared"] = 1.0;
    a.scalars["old_metric"] = 5.0;
    b.scalars["shared"] = 1.0;
    b.scalars["new_metric"] = 7.0;
    DiffResult diff = diffRuns(a, b, 10.0);
    EXPECT_FALSE(diff.regression);
    ASSERT_EQ(diff.only_in_a.size(), 1u);
    EXPECT_EQ(diff.only_in_a[0], "old_metric");
    ASSERT_EQ(diff.only_in_b.size(), 1u);
    EXPECT_EQ(diff.only_in_b[0], "new_metric");
    std::string rendered = renderDiff(diff);
    EXPECT_NE(rendered.find("only in a: old_metric"),
              std::string::npos);
    EXPECT_NE(rendered.find("only in b: new_metric"),
              std::string::npos);
    EXPECT_NE(rendered.find("ok: 1 shared scalars within tolerance"),
              std::string::npos);
}

TEST(RenderDiffTest, MarksViolationsAndVerdictLine)
{
    RunData a, b;
    a.scalars["m"] = 100.0;
    b.scalars["m"] = 150.0;
    DiffResult diff = diffRuns(a, b, 10.0);
    std::string out = renderDiff(diff);
    EXPECT_EQ(out.rfind("# paichar obs diff (tolerance 10%)", 0), 0u);
    EXPECT_NE(out.find("+50.0"), std::string::npos);
    EXPECT_NE(out.find("VIOLATION"), std::string::npos);
    EXPECT_NE(out.find("REGRESSION: 1 of 1 shared scalars"),
              std::string::npos);
}

TEST(ReportTextTest, JobLogReportHasCountsTableAndShares)
{
    RunData run = loadRunData(jobLogText()).data;
    std::string out = reportText(run);
    EXPECT_EQ(out.rfind("# paichar obs report (job log)", 0), 0u);
    EXPECT_NE(out.find("jobs 5"), std::string::npos);
    EXPECT_NE(out.find("completed 4"), std::string::npos);
    EXPECT_NE(out.find("dropped 1"), std::string::npos);
    for (const char *row :
         {"queue_s", "run_s", "step_s", "skew_pct",
          "placement_attempts"})
        EXPECT_NE(out.find(row), std::string::npos) << row;
    EXPECT_NE(out.find("phase shares (mean): Td 20.0%"),
              std::string::npos);
}

TEST(ReportTextTest, MetricsReportListsScalarsSorted)
{
    RunData run;
    run.kind = RunData::Kind::Metrics;
    run.scalars["zz.metric"] = 2.0;
    run.scalars["aa.metric"] = 1.0;
    std::string out = reportText(run);
    EXPECT_NE(out.find("aa.metric"), std::string::npos);
    EXPECT_LT(out.find("aa.metric"), out.find("zz.metric"));
}

TEST(TopTextTest, OrdersBySlownessAndNamesDominantPhase)
{
    std::vector<JobRecord> records;
    records.push_back(makeJob(1, 0.5, 5.0, 0.5));
    records.push_back(makeJob(2, 0.5, 50.0, 0.5)); // slowest
    JobRecord comm_bound = makeJob(3, 0.5, 20.0, 0.5);
    comm_bound.sim_td_s = 0.05;
    comm_bound.sim_tc_s = 0.05;
    comm_bound.sim_tw_s = 0.40;
    records.push_back(comm_bound);
    RunData run = loadRunData(renderJobLogJsonl(records)).data;

    std::string out = topText(run, 2);
    EXPECT_EQ(out.rfind("# paichar obs top (2 slowest jobs", 0), 0u);
    // Only the top two appear, slowest first.
    size_t p2 = out.find("job-2");
    size_t p3 = out.find("job-3");
    ASSERT_NE(p2, std::string::npos);
    ASSERT_NE(p3, std::string::npos);
    EXPECT_LT(p2, p3);
    EXPECT_EQ(out.find("job-1\n"), std::string::npos);
    // Dominant phase column: job 3 is weight-update bound.
    EXPECT_NE(out.find("Tw"), std::string::npos);
    EXPECT_NE(out.find("phase totals:"), std::string::npos);
}

} // namespace
} // namespace paichar::obs
