/**
 * @file
 * Tests for the sim-time timeline telemetry layer: window semantics
 * (half-open, boundary events belong to the next window), the three
 * probe kinds, the process-wide lifecycle, CSV/JSON export and
 * round-trip, the `obs timeline` report/scalars, and the CLI
 * --timeline integration.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "obs/analyze.h"
#include "obs/timeline.h"

namespace paichar::obs {
namespace {

std::vector<TimelineRow>
rowsFor(const Timeline &tl, const std::string &series)
{
    std::vector<TimelineRow> out;
    for (const TimelineRow &r : tl.rows()) {
        if (r.series == series)
            out.push_back(r);
    }
    return out;
}

TEST(TimelineTest, IntervalMustBePositiveAndFinite)
{
    EXPECT_THROW(Timeline(0.0), std::invalid_argument);
    EXPECT_THROW(Timeline(-1.0), std::invalid_argument);
    EXPECT_THROW(Timeline(std::nan("")), std::invalid_argument);
    EXPECT_THROW(
        Timeline(std::numeric_limits<double>::infinity()),
        std::invalid_argument);
    EXPECT_NO_THROW(Timeline(0.25));
}

TEST(TimelineTest, KindMismatchThrowsLogicError)
{
    Timeline tl(1.0);
    tl.level("probe");
    EXPECT_THROW(tl.rate("probe"), std::logic_error);
    EXPECT_THROW(tl.quantile("probe"), std::logic_error);
    // Same-kind lookup returns the identical probe.
    EXPECT_EQ(&tl.level("probe"), &tl.level("probe"));
}

TEST(TimelineTest, EmptyRunEmitsNoRows)
{
    Timeline tl(10.0);
    tl.finalize();
    EXPECT_TRUE(tl.rows().empty());
    // Finalize is idempotent.
    tl.finalize();
    EXPECT_TRUE(tl.rows().empty());
}

TEST(TimelineTest, RateEmitsPerWindowDeltasIncludingZeros)
{
    Timeline tl(10.0);
    Timeline::Rate &r = tl.rate("events");
    tl.advanceTo(1.0);
    r.add(3.0);
    tl.advanceTo(12.0); // closes [0,10)
    r.add(2.0);
    tl.advanceTo(35.0); // closes [10,20) and [20,30)
    r.add(1.0);
    tl.finalize();

    auto rows = rowsFor(tl, "events");
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_DOUBLE_EQ(rows[0].end_s, 10.0);
    EXPECT_DOUBLE_EQ(rows[0].value, 3.0);
    EXPECT_DOUBLE_EQ(rows[1].end_s, 20.0);
    EXPECT_DOUBLE_EQ(rows[1].value, 2.0);
    // The empty middle window still emits (a zero rate is data).
    EXPECT_DOUBLE_EQ(rows[2].end_s, 30.0);
    EXPECT_DOUBLE_EQ(rows[2].value, 0.0);
    EXPECT_DOUBLE_EQ(rows[3].end_s, 40.0);
    EXPECT_DOUBLE_EQ(rows[3].value, 1.0);
}

TEST(TimelineTest, BoundaryEventBelongsToTheNextWindow)
{
    Timeline tl(10.0);
    Timeline::Rate &r = tl.rate("events");
    // An event at exactly t = 10 closes [0,10) first: the add lands
    // in [10,20).
    tl.advanceTo(10.0);
    r.add();
    tl.finalize();

    auto rows = rowsFor(tl, "events");
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_DOUBLE_EQ(rows[0].end_s, 10.0);
    EXPECT_DOUBLE_EQ(rows[0].value, 0.0);
    EXPECT_DOUBLE_EQ(rows[1].end_s, 20.0);
    EXPECT_DOUBLE_EQ(rows[1].value, 1.0);
}

TEST(TimelineTest, LevelIsLastSetWinsAndEmitsFromFirstSet)
{
    Timeline tl(10.0);
    Timeline::Level &l = tl.level("depth");
    // Window [0,10) never sees a set: no row for it.
    tl.advanceTo(12.0);
    l.set(4.0);
    l.set(7.0); // last set before the close wins
    tl.advanceTo(25.0);
    tl.finalize();

    auto rows = rowsFor(tl, "depth");
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_DOUBLE_EQ(rows[0].end_s, 20.0);
    EXPECT_DOUBLE_EQ(rows[0].value, 7.0);
    // Piecewise-constant: the level persists into later windows.
    EXPECT_DOUBLE_EQ(rows[1].end_s, 30.0);
    EXPECT_DOUBLE_EQ(rows[1].value, 7.0);
}

TEST(TimelineTest, QuantileEmitsCountAlwaysPercentilesWhenNonEmpty)
{
    Timeline tl(10.0);
    Timeline::Quantile &q = tl.quantile("lat");
    tl.advanceTo(1.0);
    for (int i = 1; i <= 100; ++i)
        q.observe(static_cast<double>(i));
    tl.advanceTo(25.0);
    tl.finalize();

    auto counts = rowsFor(tl, "lat.count");
    auto p50 = rowsFor(tl, "lat.p50");
    auto p99 = rowsFor(tl, "lat.p99");
    ASSERT_EQ(counts.size(), 3u);
    EXPECT_DOUBLE_EQ(counts[0].value, 100.0);
    EXPECT_DOUBLE_EQ(counts[1].value, 0.0);
    EXPECT_DOUBLE_EQ(counts[2].value, 0.0);
    // Percentile rows exist only for the window that saw samples --
    // an empty window has no quantile, and NaN never reaches the
    // export layer.
    ASSERT_EQ(p50.size(), 1u);
    EXPECT_DOUBLE_EQ(p50[0].value, 50.0);
    ASSERT_EQ(p99.size(), 1u);
    EXPECT_DOUBLE_EQ(p99[0].value, 99.0);
}

TEST(TimelineTest, FinalizeFlushesThePartialTrailingWindow)
{
    Timeline tl(10.0);
    Timeline::Rate &r = tl.rate("events");
    tl.advanceTo(3.0);
    r.add(5.0);
    tl.finalize(); // time never reached 10, but the add must land

    auto rows = rowsFor(tl, "events");
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_DOUBLE_EQ(rows[0].end_s, 10.0);
    EXPECT_DOUBLE_EQ(rows[0].value, 5.0);
}

TEST(TimelineTest, AdvanceToIsMonotone)
{
    Timeline tl(10.0);
    Timeline::Rate &r = tl.rate("events");
    tl.advanceTo(15.0);
    // Going backwards is ignored, not an error (shard rounds may
    // re-announce an already-passed horizon).
    tl.advanceTo(5.0);
    r.add();
    tl.finalize();
    auto rows = rowsFor(tl, "events");
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_DOUBLE_EQ(rows[1].end_s, 20.0);
    EXPECT_DOUBLE_EQ(rows[1].value, 1.0);
}

TEST(TimelineTest, NearestRankQuantile)
{
    EXPECT_TRUE(std::isnan(nearestRankQuantile({}, 0.5)));
    EXPECT_DOUBLE_EQ(nearestRankQuantile({7.0}, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(nearestRankQuantile({7.0}, 1.0), 7.0);
    // Unsorted input; nearest-rank on n=4: p50 -> rank 2.
    EXPECT_DOUBLE_EQ(
        nearestRankQuantile({4.0, 1.0, 3.0, 2.0}, 0.5), 2.0);
    EXPECT_DOUBLE_EQ(
        nearestRankQuantile({4.0, 1.0, 3.0, 2.0}, 1.0), 4.0);
    // q is clamped.
    EXPECT_DOUBLE_EQ(nearestRankQuantile({1.0, 2.0}, 2.0), 2.0);
    EXPECT_DOUBLE_EQ(nearestRankQuantile({1.0, 2.0}, -1.0), 1.0);
}

TEST(TimelineTest, CsvRoundTripsThroughLoadTimelineCsv)
{
    Timeline tl(5.0);
    Timeline::Rate &r = tl.rate("a.rate");
    Timeline::Level &l = tl.level("b.level");
    tl.advanceTo(1.0);
    r.add(2.5);
    l.set(3.0);
    tl.advanceTo(11.0);
    r.add(1.0);
    tl.finalize();

    std::string csv = tl.renderCsv();
    EXPECT_NE(csv.find("# paichar timeline v1 interval_s 5"),
              std::string::npos);
    TimelineData data = loadTimelineCsv(csv);
    ASSERT_TRUE(data.ok) << data.error;
    EXPECT_DOUBLE_EQ(data.interval_s, 5.0);
    ASSERT_EQ(data.series.count("a.rate"), 1u);
    ASSERT_EQ(data.series.count("b.level"), 1u);
    const auto &rate_pts = data.series.at("a.rate");
    ASSERT_EQ(rate_pts.size(), 3u);
    EXPECT_DOUBLE_EQ(rate_pts[0].first, 5.0);
    EXPECT_DOUBLE_EQ(rate_pts[0].second, 2.5);
    EXPECT_DOUBLE_EQ(rate_pts[2].first, 15.0);
    EXPECT_DOUBLE_EQ(rate_pts[2].second, 1.0);
}

TEST(TimelineTest, LoadTimelineCsvRejectsMalformedInput)
{
    EXPECT_FALSE(loadTimelineCsv("").ok);
    EXPECT_FALSE(loadTimelineCsv("not a timeline\n").ok);
    // Magic but no header.
    EXPECT_FALSE(
        loadTimelineCsv("# paichar timeline v1 interval_s 5\n").ok);
    // Bad value field, with a line number in the error.
    TimelineData bad = loadTimelineCsv(
        "# paichar timeline v1 interval_s 5\n"
        "end_s,series,value\n"
        "5,a,xyz\n");
    EXPECT_FALSE(bad.ok);
    EXPECT_NE(bad.error.find("line 3"), std::string::npos)
        << bad.error;
}

TEST(TimelineTest, JsonExportCarriesSchemaAndSeries)
{
    Timeline tl(5.0);
    tl.rate("x");
    tl.advanceTo(6.0);
    tl.rate("x").add(2.0);
    tl.finalize();
    std::string json = tl.renderJson();
    EXPECT_NE(json.find("\"schema\":\"paichar.timeline.v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"interval_s\":5"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"x\""), std::string::npos);
}

TEST(TimelineTest, ReportAndScalars)
{
    Timeline tl(5.0);
    Timeline::Rate &r = tl.rate("jobs");
    tl.advanceTo(1.0);
    r.add(4.0);
    tl.advanceTo(6.0);
    r.add(8.0);
    tl.finalize();

    TimelineData data = loadTimelineCsv(tl.renderCsv());
    ASSERT_TRUE(data.ok);
    std::string report = renderTimelineReport(data);
    EXPECT_NE(report.find("jobs"), std::string::npos);
    EXPECT_NE(report.find("spark"), std::string::npos);

    RunData scalars = timelineScalars(data);
    EXPECT_EQ(scalars.kind, RunData::Kind::Metrics);
    EXPECT_DOUBLE_EQ(scalars.scalars.at("jobs.mean"), 6.0);
    EXPECT_DOUBLE_EQ(scalars.scalars.at("jobs.max"), 8.0);
    EXPECT_DOUBLE_EQ(scalars.scalars.at("jobs.last"), 8.0);
    EXPECT_DOUBLE_EQ(scalars.scalars.at("jobs.rows"), 2.0);
}

TEST(TimelineLifecycleTest, StartStopAndSuspend)
{
    EXPECT_FALSE(timelineActive());
    uint64_t gen_before = timelineGeneration();
    startTimeline(10.0);
    EXPECT_TRUE(timelineActive());
    EXPECT_GT(timelineGeneration(), gen_before);
    ASSERT_NE(timeline(), nullptr);
    {
        TimelineSuspend suspend;
        EXPECT_FALSE(timelineActive());
        // Nested suspension restores to the suspended state.
        {
            TimelineSuspend inner;
            EXPECT_FALSE(timelineActive());
        }
        EXPECT_FALSE(timelineActive());
    }
    EXPECT_TRUE(timelineActive());

    timeline()->advanceTo(1.0);
    timeline()->rate("lifecycle.r").add();
    stopTimeline();
    EXPECT_FALSE(timelineActive());
    // The finalized timeline stays readable after stop.
    ASSERT_NE(timeline(), nullptr);
    EXPECT_FALSE(timeline()->rows().empty());
    EXPECT_FALSE(renderTimelineCsv().empty());
    EXPECT_FALSE(renderTimelineJson().empty());

    startTimeline(5.0); // a restart discards the old rows
    EXPECT_TRUE(timeline()->rows().empty());
    stopTimeline();
}

TEST(TimelineLifecycleTest, StartTimelineValidatesInterval)
{
    EXPECT_THROW(startTimeline(0.0), std::invalid_argument);
    EXPECT_THROW(startTimeline(-5.0), std::invalid_argument);
    // A failed start must not activate recording.
    EXPECT_FALSE(timelineActive());
}

// ---------------------------------------------------------------------------
// CLI integration
// ---------------------------------------------------------------------------

namespace fs = std::filesystem;

std::string
readAll(const fs::path &p)
{
    std::ifstream f(p, std::ios::binary);
    std::ostringstream buf;
    buf << f.rdbuf();
    return std::move(buf).str();
}

struct ScratchDir
{
    fs::path dir;
    ScratchDir()
    {
        dir = fs::temp_directory_path() /
              ("paichar_tl_test_" + std::to_string(::getpid()));
        fs::create_directories(dir);
    }
    ~ScratchDir() { fs::remove_all(dir); }
};

TEST(TimelineCliTest, ServeWritesTimelineAndObsTimelineReads)
{
    ScratchDir scratch;
    fs::path csv = scratch.dir / "tl.csv";

    std::ostringstream out, err;
    int code = cli::run({"serve", "resnet50", "--requests", "2000",
                         "--qps", "800", "--timeline", csv.string(),
                         "--timeline-interval", "1"},
                        out, err);
    ASSERT_EQ(code, 0) << err.str();
    std::string text = readAll(csv);
    EXPECT_NE(text.find("# paichar timeline v1 interval_s 1"),
              std::string::npos);
    EXPECT_NE(text.find("inference.fleet.latency_us.p99"),
              std::string::npos);

    // The report verb reads it back and renders stats + sparkline.
    std::ostringstream rout, rerr;
    code = cli::run({"obs", "timeline", csv.string()}, rout, rerr);
    EXPECT_EQ(code, 0) << rerr.str();
    EXPECT_NE(rout.str().find("inference.fleet.arrivals"),
              std::string::npos);

    // --plot renders a full-size series plot.
    std::ostringstream pout, perr;
    code = cli::run({"obs", "timeline", csv.string(), "--plot",
                     "inference.fleet.arrivals"},
                    pout, perr);
    EXPECT_EQ(code, 0) << perr.str();
    EXPECT_NE(pout.str().find("[window end, seconds]"),
              std::string::npos);

    // An unknown series is an error.
    std::ostringstream uout, uerr;
    code = cli::run({"obs", "timeline", csv.string(), "--plot",
                     "no.such.series"},
                    uout, uerr);
    EXPECT_EQ(code, 1);
}

TEST(TimelineCliTest, TimelineDiffExitsTwoOnRegression)
{
    ScratchDir scratch;
    fs::path a = scratch.dir / "a.csv";
    fs::path b = scratch.dir / "b.csv";
    std::ofstream(a) << "# paichar timeline v1 interval_s 5\n"
                        "end_s,series,value\n"
                        "5,s,10\n10,s,10\n";
    std::ofstream(b) << "# paichar timeline v1 interval_s 5\n"
                        "end_s,series,value\n"
                        "5,s,10\n10,s,20\n";

    std::ostringstream out1, err1;
    int same = cli::run(
        {"obs", "timeline", "diff", a.string(), a.string()}, out1,
        err1);
    EXPECT_EQ(same, 0) << err1.str();

    std::ostringstream out2, err2;
    int worse = cli::run({"obs", "timeline", "diff", a.string(),
                          b.string(), "--tolerance", "5"},
                         out2, err2);
    EXPECT_EQ(worse, 2) << out2.str();
}

TEST(TimelineCliTest, BadIntervalFlagFailsCleanly)
{
    ScratchDir scratch;
    fs::path csv = scratch.dir / "tl.csv";
    std::ostringstream out, err;
    int code = cli::run({"serve", "resnet50", "--requests", "100",
                         "--timeline", csv.string(),
                         "--timeline-interval", "0"},
                        out, err);
    EXPECT_EQ(code, 1);
    EXPECT_NE(err.str().find("interval"), std::string::npos)
        << err.str();
    EXPECT_FALSE(fs::exists(csv));
}

TEST(TimelineCliTest, JsonExtensionSelectsJsonFormat)
{
    ScratchDir scratch;
    fs::path json = scratch.dir / "tl.json";
    std::ostringstream out, err;
    int code = cli::run({"serve", "resnet50", "--requests", "500",
                         "--timeline", json.string()},
                        out, err);
    ASSERT_EQ(code, 0) << err.str();
    EXPECT_NE(readAll(json).find("\"schema\":\"paichar.timeline.v1\""),
              std::string::npos);
}

} // namespace
} // namespace paichar::obs
