/**
 * @file
 * Tests for the per-job telemetry sink (obs/job_log.h): recording
 * discipline and deterministic merge, schema-v1 JSONL render/parse
 * round-tripping, parser error reporting, and the job-level Chrome
 * trace export.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/job_log.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"

namespace paichar::obs {
namespace {

/** Stops job recording even when a test fails mid-way. */
struct JobLogGuard
{
    JobLogGuard() { startJobLog(); }
    ~JobLogGuard() { stopJobLog(); }
};

JobRecord
sampleRecord(int64_t id)
{
    JobRecord r;
    r.job_id = id;
    r.name = "job-" + std::to_string(id);
    r.source = "clustersim";
    r.arch = "PS/Worker";
    r.executed_arch = "AllReduce-Local";
    r.ported = true;
    r.num_cnodes = 4;
    r.gpus = 4;
    r.server = 2;
    r.num_steps = 100;
    r.placement_attempts = 3;
    r.submit_s = 1.5;
    r.start_s = 2.25;
    r.finish_s = 10.75;
    r.pred_td_s = 0.01;
    r.pred_tc_flops_s = 0.02;
    r.pred_tc_mem_s = 0.015;
    r.pred_tw_s = 0.03;
    r.pred_step_s = 0.06;
    r.sim_td_s = 0.012;
    r.sim_tc_s = 0.021;
    r.sim_tw_s = 0.031;
    r.sim_step_s = 0.064;
    return r;
}

TEST(JobLogTest, InactiveRecordingIsDropped)
{
    stopJobLog();
    recordJob(sampleRecord(99));
    startJobLog();
    stopJobLog();
    EXPECT_TRUE(collectJobLog().empty());
}

TEST(JobLogTest, StartClearsEarlierSessions)
{
    startJobLog();
    recordJob(sampleRecord(1));
    stopJobLog();
    startJobLog();
    recordJob(sampleRecord(2));
    stopJobLog();
    auto records = collectJobLog();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].job_id, 2);
}

TEST(JobLogTest, CollectSortsByJobIdThenSequence)
{
    JobLogGuard guard;
    recordJob(sampleRecord(30));
    recordJob(sampleRecord(10));
    JobRecord dup = sampleRecord(10);
    dup.name = "second-with-same-id";
    recordJob(dup);
    recordJob(sampleRecord(20));
    stopJobLog();
    auto records = collectJobLog();
    ASSERT_EQ(records.size(), 4u);
    EXPECT_EQ(records[0].job_id, 10);
    EXPECT_EQ(records[0].name, "job-10"); // recorded first, seq wins
    EXPECT_EQ(records[1].job_id, 10);
    EXPECT_EQ(records[1].name, "second-with-same-id");
    EXPECT_EQ(records[2].job_id, 20);
    EXPECT_EQ(records[3].job_id, 30);
}

TEST(JobLogTest, ConcurrentRecordingMergesDeterministically)
{
    constexpr size_t kJobs = 2000;
    std::string serial_render;
    {
        JobLogGuard guard;
        for (size_t i = 0; i < kJobs; ++i)
            recordJob(sampleRecord(static_cast<int64_t>(i)));
        stopJobLog();
        serial_render = renderJobLogJsonl(collectJobLog());
    }
    {
        JobLogGuard guard;
        runtime::ThreadPool pool(8);
        runtime::parallelFor(&pool, kJobs, [](size_t i) {
            recordJob(sampleRecord(static_cast<int64_t>(i)));
        });
        stopJobLog();
        auto records = collectJobLog();
        ASSERT_EQ(records.size(), kJobs);
        // Unique job ids: merge order is fully determined, and the
        // rendered log matches the serial one byte for byte.
        EXPECT_EQ(renderJobLogJsonl(records), serial_render);
    }
}

TEST(JobLogJsonlTest, RenderEmitsSchemaAndOneLinePerRecord)
{
    std::vector<JobRecord> records{sampleRecord(1), sampleRecord(2)};
    std::string text = renderJobLogJsonl(records);
    size_t lines = 0;
    for (char c : text)
        lines += c == '\n';
    EXPECT_EQ(lines, 2u);
    EXPECT_EQ(text.rfind("{\"schema\":\"paichar.job.v1\"", 0), 0u);
    // Derived quantities are materialized for human readers.
    EXPECT_NE(text.find("\"queue_s\":0.75"), std::string::npos);
    EXPECT_NE(text.find("\"run_s\":8.5"), std::string::npos);
    EXPECT_NE(text.find("\"skew_pct\":"), std::string::npos);
}

TEST(JobLogJsonlTest, RoundTripIsByteIdentical)
{
    std::vector<JobRecord> records;
    records.push_back(sampleRecord(1));
    JobRecord dropped = sampleRecord(2);
    dropped.status = "dropped";
    dropped.sim_td_s = dropped.sim_tc_s = 0.0;
    dropped.sim_tw_s = dropped.sim_step_s = 0.0;
    records.push_back(dropped);
    JobRecord odd = sampleRecord(3);
    odd.name = "weird \"name\" with \\ and \ttab";
    odd.pred_step_s = 0.1234567890123; // shortest-round-trip digits
    records.push_back(odd);

    std::string text = renderJobLogJsonl(records);
    JobLogParse parsed = parseJobLogJsonl(text);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    ASSERT_EQ(parsed.records.size(), records.size());
    EXPECT_EQ(parsed.records[1].status, "dropped");
    EXPECT_EQ(parsed.records[2].name, odd.name);
    EXPECT_DOUBLE_EQ(parsed.records[2].pred_step_s, odd.pred_step_s);
    // render . parse . render is the identity on rendered output.
    EXPECT_EQ(renderJobLogJsonl(parsed.records), text);
}

TEST(JobLogJsonlTest, DerivedFieldsAreRecomputedNotTrusted)
{
    JobRecord r = sampleRecord(7);
    std::string text = renderJobLogJsonl({r});
    // Corrupt the materialized queue_s; the parser must recompute it
    // from submit_s/start_s rather than believe the file.
    size_t pos = text.find("\"queue_s\":0.75");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, std::string("\"queue_s\":0.75").size(),
                 "\"queue_s\":999.0");
    JobLogParse parsed = parseJobLogJsonl(text);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    ASSERT_EQ(parsed.records.size(), 1u);
    EXPECT_DOUBLE_EQ(parsed.records[0].queueSeconds(), 0.75);
}

TEST(JobLogJsonlTest, BlankLinesAreSkipped)
{
    std::string text = renderJobLogJsonl({sampleRecord(1)});
    JobLogParse parsed = parseJobLogJsonl("\n" + text + "\n\n");
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.records.size(), 1u);
}

TEST(JobLogJsonlTest, UnknownKeysAreIgnoredForForwardCompat)
{
    JobLogParse parsed = parseJobLogJsonl(
        "{\"schema\":\"paichar.job.v1\",\"job_id\":5,"
        "\"future_field\":\"ignored\",\"status\":\"completed\"}\n");
    ASSERT_TRUE(parsed.ok) << parsed.error;
    ASSERT_EQ(parsed.records.size(), 1u);
    EXPECT_EQ(parsed.records[0].job_id, 5);
}

TEST(JobLogJsonlTest, ParserRejectsBadInputWithLineNumbers)
{
    struct Case
    {
        const char *text;
        const char *why;
    };
    for (const Case &c : std::vector<Case>{
             {"{\"job_id\":1}\n", "missing schema"},
             {"{\"schema\":\"paichar.job.v2\",\"job_id\":1}\n",
              "unknown schema version"},
             {"{\"schema\":\"paichar.job.v1\",\"job_id\":}\n",
              "malformed value"},
             {"not json at all\n", "not an object"},
             {"{\"schema\":\"paichar.job.v1\"\n", "unterminated"},
         }) {
        JobLogParse parsed = parseJobLogJsonl(c.text);
        EXPECT_FALSE(parsed.ok) << c.why;
        EXPECT_EQ(parsed.error.rfind("line 1:", 0), 0u)
            << c.why << ": " << parsed.error;
    }
    // Error on a later line carries that line's number.
    std::string good = renderJobLogJsonl({sampleRecord(1)});
    JobLogParse parsed = parseJobLogJsonl(good + "{\"job_id\":2}\n");
    EXPECT_FALSE(parsed.ok);
    EXPECT_EQ(parsed.error.rfind("line 2:", 0), 0u) << parsed.error;
}

TEST(JobLogJsonlTest, EscapedNamesSurviveTheRoundTrip)
{
    JobRecord r = sampleRecord(1);
    r.name = std::string("quote\" back\\slash ctrl\x01 nl\n") +
             "caf\xc3\xa9"; // UTF-8 passthrough
    std::string text = renderJobLogJsonl({r});
    // Raw control bytes must not appear inside the JSON string.
    EXPECT_EQ(text.find('\x01'), std::string::npos);
    EXPECT_NE(text.find("\\u0001"), std::string::npos);
    EXPECT_NE(text.find("\\\""), std::string::npos);
    EXPECT_NE(text.find("\\n"), std::string::npos);
    JobLogParse parsed = parseJobLogJsonl(text);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.records[0].name, r.name);
}

TEST(JobLogJsonlTest, ParserDecodesUnicodeEscapes)
{
    JobLogParse parsed = parseJobLogJsonl(
        "{\"schema\":\"paichar.job.v1\",\"job_id\":1,"
        "\"name\":\"caf\\u00e9 \\u0394t\"}\n");
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.records[0].name, "caf\xc3\xa9 \xce\x94t");
}

TEST(JobChromeTraceTest, CompletedJobsGetPerServerTracksAndPhases)
{
    std::vector<JobRecord> records;
    JobRecord a = sampleRecord(1);
    a.server = 0;
    records.push_back(a);
    JobRecord b = sampleRecord(2);
    b.server = 5;
    records.push_back(b);
    JobRecord dropped = sampleRecord(3);
    dropped.status = "dropped";
    records.push_back(dropped);

    std::string json = renderJobChromeTrace(records);
    EXPECT_EQ(json.rfind("{\"displayTimeUnit\"", 0), 0u);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    // Per-server thread-name metadata.
    EXPECT_NE(json.find("server-0"), std::string::npos);
    EXPECT_NE(json.find("server-5"), std::string::npos);
    // Job spans with nested phase slices.
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("phase.Td"), std::string::npos);
    EXPECT_NE(json.find("phase.Tc"), std::string::npos);
    EXPECT_NE(json.find("phase.Tw"), std::string::npos);
    // Skew and queueing ride along as args.
    EXPECT_NE(json.find("\"skew_pct\":"), std::string::npos);
    EXPECT_NE(json.find("\"queue_s\":"), std::string::npos);
    // The dropped job never ran, so it has no span.
    EXPECT_EQ(json.find("job-3"), std::string::npos);
    EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
}

TEST(JobChromeTraceTest, TestbedRecordsShareOneNamedTrack)
{
    JobRecord r = sampleRecord(1);
    r.source = "testbed";
    r.server = -1;
    std::string json = renderJobChromeTrace({r});
    EXPECT_NE(json.find("\"testbed\""), std::string::npos);
    EXPECT_EQ(json.find("server-"), std::string::npos);
}

} // namespace
} // namespace paichar::obs
