/**
 * @file
 * Tests for the discrete-event queue.
 */

#include <gtest/gtest.h>

#include "sim/event_queue.h"

namespace paichar::sim {
namespace {

TEST(EventQueueTest, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(2.0, [&] { order.push_back(2); });
    eq.schedule(1.0, [&] { order.push_back(1); });
    eq.schedule(3.0, [&] { order.push_back(3); });
    EXPECT_EQ(eq.pending(), 3u);
    EXPECT_DOUBLE_EQ(eq.run(), 3.0);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.executed(), 3u);
}

TEST(EventQueueTest, TiesBreakInSchedulingOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(1.0, [&, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, NowAdvancesDuringRun)
{
    EventQueue eq;
    double seen = -1.0;
    eq.schedule(5.0, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_DOUBLE_EQ(seen, 5.0);
    EXPECT_DOUBLE_EQ(eq.now(), 5.0);
}

TEST(EventQueueTest, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1.0, [&] {
        ++fired;
        eq.scheduleAfter(1.0, [&] { ++fired; });
    });
    EXPECT_DOUBLE_EQ(eq.run(), 2.0);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, RunUntilLeavesLaterEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1.0, [&] { ++fired; });
    eq.schedule(10.0, [&] { ++fired; });
    EXPECT_DOUBLE_EQ(eq.runUntil(5.0), 5.0);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, EmptyRunReturnsNow)
{
    EventQueue eq;
    EXPECT_DOUBLE_EQ(eq.run(), 0.0);
}

} // namespace
} // namespace paichar::sim
