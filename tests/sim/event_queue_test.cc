/**
 * @file
 * Tests for the discrete-event queue.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <random>
#include <stdexcept>
#include <vector>

#include "obs/obs.h"
#include "sim/event_queue.h"

namespace paichar::sim {
namespace {

TEST(EventQueueTest, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(2.0, [&] { order.push_back(2); });
    eq.schedule(1.0, [&] { order.push_back(1); });
    eq.schedule(3.0, [&] { order.push_back(3); });
    EXPECT_EQ(eq.pending(), 3u);
    EXPECT_DOUBLE_EQ(eq.run(), 3.0);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.executed(), 3u);
}

TEST(EventQueueTest, TiesBreakInSchedulingOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(1.0, [&, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, NowAdvancesDuringRun)
{
    EventQueue eq;
    double seen = -1.0;
    eq.schedule(5.0, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_DOUBLE_EQ(seen, 5.0);
    EXPECT_DOUBLE_EQ(eq.now(), 5.0);
}

TEST(EventQueueTest, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1.0, [&] {
        ++fired;
        eq.scheduleAfter(1.0, [&] { ++fired; });
    });
    EXPECT_DOUBLE_EQ(eq.run(), 2.0);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, RunUntilLeavesLaterEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1.0, [&] { ++fired; });
    eq.schedule(10.0, [&] { ++fired; });
    EXPECT_DOUBLE_EQ(eq.runUntil(5.0), 5.0);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, EmptyRunReturnsNow)
{
    EventQueue eq;
    EXPECT_DOUBLE_EQ(eq.run(), 0.0);
}

TEST(EventQueueTest, RunBeforeExcludesTheBound)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1.0, [&] { ++fired; });
    eq.schedule(2.0, [&] { ++fired; });
    EXPECT_DOUBLE_EQ(eq.runBefore(2.0), 2.0);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_DOUBLE_EQ(eq.nextEventTime(), 2.0);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, NextEventTimeAndAdvanceTo)
{
    EventQueue eq;
    EXPECT_EQ(eq.nextEventTime(),
              std::numeric_limits<double>::infinity());
    eq.schedule(3.0, [] {});
    EXPECT_DOUBLE_EQ(eq.nextEventTime(), 3.0);
    eq.advanceTo(1.5);
    EXPECT_DOUBLE_EQ(eq.now(), 1.5);
    eq.advanceTo(0.5); // never moves time backwards
    EXPECT_DOUBLE_EQ(eq.now(), 1.5);
    eq.run();
    EXPECT_DOUBLE_EQ(eq.now(), 3.0);
}

TEST(EventQueueTest, NonFiniteTimesThrow)
{
    EventQueue eq;
    double nan = std::numeric_limits<double>::quiet_NaN();
    double inf = std::numeric_limits<double>::infinity();
    EXPECT_THROW(eq.schedule(nan, [] {}), std::invalid_argument);
    EXPECT_THROW(eq.schedule(inf, [] {}), std::invalid_argument);
    EXPECT_THROW(eq.scheduleAfter(nan, [] {}),
                 std::invalid_argument);
    EXPECT_EQ(eq.pending(), 0u);
}

// Past-time schedules must clamp to now() and be counted — not
// rewrite history for already-ordered events (the seed engine's
// const_cast/pop hack made this path easy to get wrong).
TEST(EventQueueTest, PastEventsClampToNowAndAreCounted)
{
    obs::resetMetrics();
    EventQueue eq;
    std::vector<double> fired_at;
    eq.schedule(5.0, [&] {
        eq.schedule(1.0, [&] { fired_at.push_back(eq.now()); });
        eq.scheduleAfter(-2.0,
                         [&] { fired_at.push_back(eq.now()); });
    });
    eq.schedule(6.0, [&] { fired_at.push_back(eq.now()); });
    eq.run();
    ASSERT_EQ(fired_at.size(), 3u);
    EXPECT_DOUBLE_EQ(fired_at[0], 5.0); // clamped, fires "now"
    EXPECT_DOUBLE_EQ(fired_at[1], 5.0);
    EXPECT_DOUBLE_EQ(fired_at[2], 6.0);
    EXPECT_EQ(obs::counter("sim.past_events_clamped").value(), 2);
}

// The sim.time_us gauge: exact in range, saturating (not UB) when
// the simulated time in microseconds exceeds int64.
TEST(EventQueueTest, SimTimeGaugeIsExactAndSaturates)
{
    obs::resetMetrics();
    {
        EventQueue eq;
        eq.schedule(2.5, [] {});
        eq.run();
        EXPECT_EQ(obs::gauge("sim.time_us").value(), 2500000);
    }
    {
        EventQueue eq;
        eq.schedule(1e300, [] {});
        eq.run();
        EXPECT_EQ(obs::gauge("sim.time_us").value(),
                  std::numeric_limits<int64_t>::max());
    }
}

// Randomized battering ram: the arena + calendar-queue engine must
// agree event-for-event with a trivially correct reference (stable
// sort by time = (when, insertion order)), including under
// interleaved partial drains and re-scheduling from callbacks.
TEST(EventQueueTest, RandomizedOrderMatchesReferenceSort)
{
    for (uint64_t seed : {1u, 7u, 1234u}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        std::mt19937_64 rng(seed);
        std::uniform_real_distribution<double> dist(0.0, 1000.0);

        EventQueue eq;
        std::vector<std::pair<double, int>> expected;
        std::vector<int> got;
        int next_id = 0;
        for (int i = 0; i < 5000; ++i) {
            double when = dist(rng);
            int id = next_id++;
            expected.emplace_back(when, id);
            eq.schedule(when, [&, id] { got.push_back(id); });
        }
        // Partial drains at a few cut points, then events that
        // schedule follow-ups past the current time.
        eq.runUntil(250.0);
        eq.runBefore(500.0);
        for (int i = 0; i < 500; ++i) {
            double when = 500.0 + dist(rng) / 2.0;
            int id = next_id++;
            expected.emplace_back(when, id);
            eq.schedule(when, [&, id] {
                got.push_back(id);
                double child = eq.now() + 1.0;
                int cid = next_id++;
                expected.emplace_back(child, cid);
                eq.schedule(child,
                            [&, cid] { got.push_back(cid); });
            });
        }
        eq.run();

        std::stable_sort(expected.begin(), expected.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
        std::vector<int> want;
        want.reserve(expected.size());
        for (const auto &[when, id] : expected)
            want.push_back(id);
        ASSERT_EQ(got.size(), want.size());
        EXPECT_EQ(got, want);
        EXPECT_EQ(eq.executed(), want.size());
        EXPECT_EQ(eq.pending(), 0u);
    }
}

} // namespace
} // namespace paichar::sim
