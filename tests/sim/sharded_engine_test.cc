/**
 * @file
 * Tests for the conservative-lookahead sharded event engine
 * (`ctest -L sim`).
 *
 * The load-bearing property: for a fixed logical workload, the
 * flattened execution log is identical for every (shard count,
 * worker pool, lookahead) combination, and identical to a
 * single-queue serial run. Workloads are fuzzed from fixed seeds;
 * every event derives its children purely from its own key, so the
 * spawned event tree is independent of execution interleaving.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "obs/obs.h"
#include "runtime/thread_pool.h"
#include "sim/sharded_engine.h"
#include "testbed/training_sim.h"
#include "testkit/gen.h"

namespace paichar::sim {
namespace {

/** splitmix64: child keys are a pure function of the parent key. */
uint64_t
mix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

double
unitReal(uint64_t key)
{
    return static_cast<double>(key >> 11) * 0x1.0p-53;
}

struct LogEntry
{
    double when;
    int domain;
    uint64_t key;

    auto
    tie() const
    {
        return std::make_tuple(when, domain, key);
    }
    bool
    operator==(const LogEntry &o) const
    {
        return tie() == o.tie();
    }
    bool
    operator<(const LogEntry &o) const
    {
        return tie() < o.tie();
    }
};

/** Cross-domain children land this far ahead — a workload constant,
 *  so the spawned event tree is identical for every engine
 *  lookahead <= kPostGap. */
constexpr double kPostGap = 0.6;

/**
 * A self-similar workload over @p domains logical domains: every
 * event appends (when, domain, key) to its engine shard's log, then
 * spawns up to two children derived from its key — one local, one
 * cross-domain via post() at >= kPostGap ahead. Returns the
 * flatten-sorted log plus (executed, final now).
 */
struct WorkloadResult
{
    std::vector<LogEntry> log;
    uint64_t executed = 0;
    double end_time = 0.0;
    uint64_t rounds = 0;
};

WorkloadResult
runWorkload(uint64_t seed, int domains, int num_shards,
            double lookahead, runtime::ThreadPool *pool)
{
    ShardedEngine engine(num_shards, lookahead, pool);
    const int K = engine.numShards();
    std::vector<std::vector<LogEntry>> logs(
        static_cast<size_t>(K));

    // Recursive event body; shard-local state only, so parallel
    // rounds never race on the logs.
    struct Spawner
    {
        ShardedEngine &engine;
        std::vector<std::vector<LogEntry>> &logs;
        int domains;
        int K;

        void
        fire(int domain, double when, uint64_t key, int depth)
        {
            int shard = domain % K;
            logs[static_cast<size_t>(shard)].push_back(
                {when, domain, key});
            if (depth >= 4)
                return;
            uint64_t k1 = mix(key);
            if ((k1 & 3u) != 0) { // 75%: local child
                double child = when + 0.25 + unitReal(k1);
                engine.schedule(
                    shard, child, [this, domain, child, k1, depth] {
                        fire(domain, child, k1, depth + 1);
                    });
            }
            uint64_t k2 = mix(k1);
            if ((k2 & 1u) != 0) { // 50%: cross-domain child
                int dst = static_cast<int>(
                    k2 % static_cast<uint64_t>(domains));
                double child =
                    when + kPostGap + 0.125 + unitReal(mix(k2));
                engine.post(shard, dst % K, child,
                            [this, dst, child, k2, depth] {
                                fire(dst, child, k2, depth + 1);
                            });
            }
        }
    } spawner{engine, logs, domains, K};

    for (int d = 0; d < domains; ++d) {
        uint64_t key = mix(seed * 1000003ull +
                           static_cast<uint64_t>(d));
        double when = unitReal(key);
        engine.schedule(d % K, when, [&spawner, d, when, key] {
            spawner.fire(d, when, key, 0);
        });
    }

    WorkloadResult r;
    r.end_time = engine.run();
    r.executed = engine.executed();
    r.rounds = engine.rounds();
    for (int s = 0; s < K; ++s) {
        const auto &log = logs[static_cast<size_t>(s)];
        // Per-shard logs must be locally time-ordered regardless of
        // the global interleaving.
        EXPECT_TRUE(std::is_sorted(
            log.begin(), log.end(),
            [](const LogEntry &a, const LogEntry &b) {
                return a.when < b.when;
            }))
            << "shard " << s << " executed out of time order";
        r.log.insert(r.log.end(), log.begin(), log.end());
    }
    std::sort(r.log.begin(), r.log.end());
    return r;
}

TEST(ShardedEngineTest, SingleShardDelegatesToEventQueue)
{
    ShardedEngine engine(1);
    std::vector<int> order;
    engine.schedule(0, 2.0, [&] { order.push_back(2); });
    engine.schedule(0, 1.0, [&] { order.push_back(1); });
    EXPECT_EQ(engine.pending(), 2u);
    EXPECT_DOUBLE_EQ(engine.nextEventTime(), 1.0);
    EXPECT_DOUBLE_EQ(engine.run(), 2.0);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(engine.executed(), 2u);
    EXPECT_EQ(engine.pending(), 0u);
}

TEST(ShardedEngineTest, ShardCountIsClampedUpToOne)
{
    ShardedEngine engine(0);
    EXPECT_EQ(engine.numShards(), 1);
}

// The determinism contract: identical flattened logs across every
// shard count, worker pool, and lookahead, on fuzzed workloads.
TEST(ShardedEngineTest, ExecutionLogInvariantAcrossShardsAndPools)
{
    runtime::ThreadPool pool(4);
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        WorkloadResult serial =
            runWorkload(seed, /*domains=*/12, /*num_shards=*/1,
                        /*lookahead=*/0.0, nullptr);
        ASSERT_FALSE(serial.log.empty());
        for (int shards : {2, 3, 8}) {
            for (runtime::ThreadPool *p :
                 {static_cast<runtime::ThreadPool *>(nullptr),
                  &pool}) {
                SCOPED_TRACE("shards " + std::to_string(shards) +
                             (p ? " pooled" : " serial"));
                WorkloadResult got =
                    runWorkload(seed, 12, shards, 0.0, p);
                EXPECT_EQ(got.log, serial.log);
                EXPECT_EQ(got.executed, serial.executed);
                EXPECT_DOUBLE_EQ(got.end_time, serial.end_time);
            }
        }
    }
}

// Lookahead widens the synchronization window: far fewer rounds,
// same execution log (posts are always >= lookahead ahead here).
TEST(ShardedEngineTest, LookaheadReducesRoundsWithoutChangingOutput)
{
    WorkloadResult tight =
        runWorkload(42, 10, 4, /*lookahead=*/0.0, nullptr);
    WorkloadResult wide =
        runWorkload(42, 10, 4, /*lookahead=*/0.5, nullptr);
    EXPECT_EQ(wide.log, tight.log);
    EXPECT_EQ(wide.executed, tight.executed);
    EXPECT_LT(wide.rounds, tight.rounds);
}

TEST(ShardedEngineTest, RunUntilCommitsClocksAndKeepsLaterEvents)
{
    ShardedEngine engine(4);
    int fired = 0;
    engine.schedule(1, 1.0, [&] { ++fired; });
    engine.schedule(3, 10.0, [&] { ++fired; });
    EXPECT_DOUBLE_EQ(engine.runUntil(5.0), 5.0);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(engine.pending(), 1u);
    EXPECT_DOUBLE_EQ(engine.now(), 5.0);
    EXPECT_DOUBLE_EQ(engine.nextEventTime(), 10.0);
    engine.run();
    EXPECT_EQ(fired, 2);
}

TEST(ShardedEngineTest, CrossShardPostViolationClampsAndCounts)
{
    obs::resetMetrics();
    ShardedEngine engine(2, /*lookahead=*/1.0);
    std::vector<double> fired_at;
    engine.schedule(0, 5.0, [&] {
        // when < shard(0).now() + lookahead: must clamp to the
        // round-safe horizon instead of firing in shard 1's past.
        engine.post(0, 1, 5.2, [&] {
            fired_at.push_back(engine.shard(1).now());
        });
    });
    engine.schedule(1, 5.1, [] {});
    engine.run();
    ASSERT_EQ(fired_at.size(), 1u);
    EXPECT_GE(fired_at[0], 5.1);
    EXPECT_GE(obs::counter("sim.cross_shard_clamped").value(), 1);
}

TEST(ShardedEngineTest, EmptyRunReturnsNow)
{
    ShardedEngine engine(3);
    EXPECT_DOUBLE_EQ(engine.run(), 0.0);
    EXPECT_EQ(engine.nextEventTime(),
              std::numeric_limits<double>::infinity());
}

// Fuzzed-topology end-to-end property: a full simulated training
// step is bit-identical whether the simulated servers live on one
// event shard or many (TrainingSimulator wires its cluster topology
// through sim::TopologyConfig::num_shards).
TEST(ShardedEngineTest, TrainingStepShardInvariantOnFuzzedJobs)
{
    testkit::JobGenerator gen;
    for (uint64_t seed = 100; seed < 112; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        workload::TrainingJob job = gen.job(seed);
        auto graph =
            testkit::JobGenerator::graphFor(job.features, seed);
        workload::EfficiencyProfile eff;

        auto step = [&](int num_shards) {
            testbed::SimOptions so;
            so.num_shards = num_shards;
            testbed::TrainingSimulator sim(so);
            return sim.run(graph, job.features, job.arch,
                           job.num_cnodes, eff);
        };
        testbed::StepResult base = step(1);
        for (int shards : {2, 8}) {
            testbed::StepResult got = step(shards);
            EXPECT_EQ(got.total_time, base.total_time)
                << shards << " shards";
            EXPECT_EQ(got.data_time, base.data_time);
            EXPECT_EQ(got.compute_time, base.compute_time);
            EXPECT_EQ(got.comm_time, base.comm_time);
            EXPECT_EQ(got.num_kernels, base.num_kernels);
        }
    }
}

} // namespace
} // namespace paichar::sim
