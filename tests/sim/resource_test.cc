/**
 * @file
 * Tests for the FIFO rate-limited resource.
 */

#include <gtest/gtest.h>

#include "sim/resource.h"

namespace paichar::sim {
namespace {

TEST(ResourceTest, SingleRequestTiming)
{
    EventQueue eq;
    Resource link(eq, "link", 100.0); // 100 units/s
    double start = -1, end = -1;
    link.submit(50.0, [&](SimTime s, SimTime e) {
        start = s;
        end = e;
    });
    eq.run();
    EXPECT_DOUBLE_EQ(start, 0.0);
    EXPECT_DOUBLE_EQ(end, 0.5);
    EXPECT_DOUBLE_EQ(link.busyTime(), 0.5);
    EXPECT_DOUBLE_EQ(link.totalAmount(), 50.0);
    EXPECT_EQ(link.requests(), 1u);
}

TEST(ResourceTest, FifoSerialization)
{
    EventQueue eq;
    Resource link(eq, "link", 10.0);
    std::vector<double> ends;
    for (int i = 0; i < 3; ++i) {
        link.submit(10.0, [&](SimTime, SimTime e) {
            ends.push_back(e);
        });
    }
    eq.run();
    ASSERT_EQ(ends.size(), 3u);
    EXPECT_DOUBLE_EQ(ends[0], 1.0);
    EXPECT_DOUBLE_EQ(ends[1], 2.0);
    EXPECT_DOUBLE_EQ(ends[2], 3.0);
}

TEST(ResourceTest, OverheadChargedPerRequest)
{
    EventQueue eq;
    Resource gpu(eq, "gpu", 1.0, 0.25); // amounts are seconds
    double end = -1;
    gpu.submit(1.0);
    gpu.submit(1.0, [&](SimTime, SimTime e) { end = e; });
    eq.run();
    EXPECT_DOUBLE_EQ(end, 2.5); // 2 * (0.25 + 1.0)
    EXPECT_DOUBLE_EQ(gpu.busyTime(), 2.5);
    EXPECT_DOUBLE_EQ(gpu.totalAmount(), 2.0);
}

TEST(ResourceTest, LateSubmissionStartsAtNow)
{
    EventQueue eq;
    Resource link(eq, "link", 10.0);
    double start2 = -1;
    eq.schedule(5.0, [&] {
        link.submit(10.0, [&](SimTime s, SimTime) { start2 = s; });
    });
    link.submit(10.0); // busy until t=1
    eq.run();
    EXPECT_DOUBLE_EQ(start2, 5.0); // idle gap from 1 to 5
    EXPECT_DOUBLE_EQ(link.busyTime(), 2.0);
}

TEST(ResourceTest, ZeroAmountCompletesAfterOverheadOnly)
{
    EventQueue eq;
    Resource r(eq, "r", 1.0, 0.5);
    double end = -1;
    r.submit(0.0, [&](SimTime, SimTime e) { end = e; });
    eq.run();
    EXPECT_DOUBLE_EQ(end, 0.5);
}

TEST(ResourceTest, Utilization)
{
    EventQueue eq;
    Resource r(eq, "r", 10.0);
    r.submit(10.0);
    eq.run();
    EXPECT_DOUBLE_EQ(r.utilization(2.0), 0.5);
}

} // namespace
} // namespace paichar::sim
