/**
 * @file
 * Tests for the simulated cluster topology.
 */

#include <gtest/gtest.h>

#include "sim/topology.h"

namespace paichar::sim {
namespace {

TopologyConfig
testbedConfig(int servers)
{
    TopologyConfig tc;
    tc.cluster = hw::v100Testbed();
    tc.num_servers = servers;
    return tc;
}

TEST(TopologyTest, BuildsServersAndGpus)
{
    ClusterSim cluster(testbedConfig(2));
    EXPECT_EQ(cluster.servers().size(), 2u);
    EXPECT_EQ(cluster.numGpus(), 16);
    EXPECT_EQ(cluster.gpu(0).serverId(), 0);
    EXPECT_EQ(cluster.gpu(8).serverId(), 1);
    EXPECT_EQ(cluster.gpu(9).localId(), 1);
}

TEST(TopologyTest, NvlinkLinksPresentWhenEquipped)
{
    ClusterSim cluster(testbedConfig(1));
    Gpu &g = cluster.gpu(0);
    EXPECT_EQ(g.numNvlinkLinks(), 6);
    EXPECT_NE(g.nvlinkOut(), nullptr);
    // Rate = 50 GB/s * 0.7 default efficiency.
    EXPECT_DOUBLE_EQ(g.nvlinkOut()->rate(), 50e9 * 0.7);
}

TEST(TopologyTest, NoNvlinkWhenAbsent)
{
    TopologyConfig tc = testbedConfig(1);
    tc.cluster.server.has_nvlink = false;
    ClusterSim cluster(tc);
    EXPECT_EQ(cluster.gpu(0).numNvlinkLinks(), 0);
    EXPECT_EQ(cluster.gpu(0).nvlinkOut(), nullptr);
}

TEST(TopologyTest, DedicatedVsSharedPcie)
{
    {
        ClusterSim cluster(testbedConfig(1));
        EXPECT_NE(&cluster.gpu(0).hostLink(),
                  &cluster.gpu(1).hostLink());
    }
    {
        TopologyConfig tc = testbedConfig(1);
        tc.shared_pcie = true;
        ClusterSim cluster(tc);
        EXPECT_EQ(&cluster.gpu(0).hostLink(),
                  &cluster.gpu(1).hostLink());
    }
}

TEST(TopologyTest, EfficiencyDeratesRates)
{
    TopologyConfig tc = testbedConfig(1);
    tc.efficiency = {0.5, 0.5, 0.25, 0.1};
    ClusterSim cluster(tc);
    EXPECT_DOUBLE_EQ(cluster.gpu(0).hostLink().rate(), 10e9 * 0.25);
    EXPECT_DOUBLE_EQ(cluster.servers()[0]->nic().rate(),
                     25e9 / 8.0 * 0.1);
    EXPECT_DOUBLE_EQ(cluster.gpu(0).nvlinkOut()->rate(), 50e9 * 0.1);
}

TEST(TopologyTest, GpuGroups)
{
    ClusterSim cluster(testbedConfig(4));
    auto packed = cluster.gpuGroup(10);
    ASSERT_EQ(packed.size(), 10u);
    EXPECT_EQ(packed[9]->serverId(), 1);

    auto spread = cluster.gpuGroupOnePerServer(4);
    ASSERT_EQ(spread.size(), 4u);
    EXPECT_EQ(spread[3]->serverId(), 3);
    EXPECT_EQ(spread[3]->localId(), 0);
}

} // namespace
} // namespace paichar::sim
