/**
 * @file
 * Release-mode regression tests for the hardened edge cases: this
 * binary compiles the fixed sources directly with NDEBUG forced on
 * (the rest of the tree keeps assertions), so every check exercised
 * here is real error handling that survives a release build, not an
 * assert standing in front of undefined behavior.
 *
 * Covers the bugfix classes:
 *  - WeightedCdf rejects empty-CDF queries and out-of-domain
 *    arguments by throwing;
 *  - EventQueue clamps past-time events (counted in obs) and throws
 *    on non-finite times;
 *  - the stats formatters allocate to fit, so extreme magnitudes
 *    render completely instead of truncating at a fixed buffer;
 *  - the serving simulators (single-server and fleet) validate their
 *    configs and run arguments by throwing — the pre-fix asserts
 *    vanished under NDEBUG and let qps = 0 divide into NaN;
 *  - the exponential sampler clamps a closed-interval uniform draw
 *    instead of emitting an infinite inter-arrival gap.
 */

#include <gtest/gtest.h>

#ifndef NDEBUG
#error "ndebug_test must be compiled with NDEBUG"
#endif

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "inference/fleet_sim.h"
#include "inference/serving_sim.h"
#include "obs/obs.h"
#include "obs/timeline.h"
#include "sim/event_queue.h"
#include "stats/arrival.h"
#include "stats/ascii_plot.h"
#include "stats/cdf.h"
#include "stats/table.h"

namespace paichar {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
const double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(NdebugCdfTest, EmptyQueriesThrowLogicError)
{
    stats::WeightedCdf cdf;
    EXPECT_THROW(cdf.quantile(0.5), std::logic_error);
    EXPECT_THROW(cdf.median(), std::logic_error);
    EXPECT_THROW(cdf.mean(), std::logic_error);
    EXPECT_THROW(cdf.min(), std::logic_error);
    EXPECT_THROW(cdf.max(), std::logic_error);
    EXPECT_THROW(cdf.probAtOrBelow(0.0), std::logic_error);
    EXPECT_THROW(cdf.curve(10), std::logic_error);
}

TEST(NdebugCdfTest, AddRejectsNonFiniteValuesAndBadWeights)
{
    stats::WeightedCdf cdf;
    EXPECT_THROW(cdf.add(kNan), std::invalid_argument);
    EXPECT_THROW(cdf.add(kInf), std::invalid_argument);
    EXPECT_THROW(cdf.add(-kInf, 1.0), std::invalid_argument);
    EXPECT_THROW(cdf.add(1.0, -1.0), std::invalid_argument);
    EXPECT_THROW(cdf.add(1.0, kNan), std::invalid_argument);
    EXPECT_THROW(cdf.add(1.0, kInf), std::invalid_argument);
    // Rejected samples must not corrupt the CDF.
    EXPECT_TRUE(cdf.empty());
    EXPECT_DOUBLE_EQ(cdf.totalWeight(), 0.0);
    cdf.add(2.0, 0.0); // zero weight is legal
    cdf.add(3.0);
    EXPECT_EQ(cdf.size(), 2u);
}

TEST(NdebugCdfTest, QuantileRejectsOutOfRangeQ)
{
    stats::WeightedCdf cdf;
    cdf.add(1.0);
    EXPECT_THROW(cdf.quantile(-0.01), std::invalid_argument);
    EXPECT_THROW(cdf.quantile(1.01), std::invalid_argument);
    EXPECT_THROW(cdf.quantile(kNan), std::invalid_argument);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 1.0);
}

TEST(NdebugCdfTest, CurveRejectsDegenerateGrids)
{
    stats::WeightedCdf cdf;
    cdf.add(1.0);
    EXPECT_THROW(cdf.curve(0), std::invalid_argument);
    EXPECT_THROW(cdf.curve(1), std::invalid_argument);
    EXPECT_EQ(cdf.curve(2).size(), 2u);
}

TEST(NdebugEventQueueTest, PastTimesClampToNowAndAreCounted)
{
    obs::Counter &clamped =
        obs::counter("sim.past_events_clamped");
    uint64_t before = clamped.value();

    sim::EventQueue eq;
    std::vector<int> order;
    eq.schedule(5.0, [&] {
        order.push_back(1);
        // now() is 5.0 here; an event "scheduled" at 1.0 must fire
        // at 5.0, after same-time events already in the queue.
        eq.schedule(1.0, [&] { order.push_back(3); });
    });
    eq.schedule(5.0, [&] { order.push_back(2); });
    EXPECT_DOUBLE_EQ(eq.run(), 5.0);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(clamped.value(), before + 1);
}

TEST(NdebugEventQueueTest, NegativeDelaysClampViaScheduleAfter)
{
    obs::Counter &clamped =
        obs::counter("sim.past_events_clamped");
    uint64_t before = clamped.value();

    sim::EventQueue eq;
    double fired_at = -1.0;
    eq.schedule(2.0, [&] {
        eq.scheduleAfter(-10.0, [&] { fired_at = eq.now(); });
    });
    eq.run();
    EXPECT_DOUBLE_EQ(fired_at, 2.0);
    EXPECT_EQ(clamped.value(), before + 1);
}

TEST(NdebugEventQueueTest, NonFiniteTimesThrow)
{
    sim::EventQueue eq;
    EXPECT_THROW(eq.schedule(kNan, [] {}), std::invalid_argument);
    EXPECT_THROW(eq.schedule(kInf, [] {}), std::invalid_argument);
    EXPECT_THROW(eq.scheduleAfter(kNan, [] {}),
                 std::invalid_argument);
    EXPECT_THROW(eq.scheduleAfter(kInf, [] {}),
                 std::invalid_argument);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(NdebugFormatTest, ExtremeMagnitudesRenderCompletely)
{
    // %f of 1e300 is a 301-digit integer part; the old fixed 64-byte
    // buffers truncated it.
    std::string s = stats::fmt(1e300, 0);
    EXPECT_EQ(s.size(), 301u);
    EXPECT_EQ(s.front(), '1');
    EXPECT_EQ(s.find('.'), std::string::npos);

    // sign + 301 digits + '.' + 3 decimals
    std::string neg = stats::fmt(-1e300, 3);
    EXPECT_EQ(neg.size(), 306u);
}

TEST(NdebugFormatTest, PctSecondsAndBytesSurviveExtremes)
{
    std::string pct = stats::fmtPct(1e300, 0);
    EXPECT_EQ(pct.size(), 303u + 1u); // 1e302 digits + '%'
    EXPECT_EQ(pct.back(), '%');

    std::string sec = stats::fmtSeconds(1e300);
    EXPECT_GT(sec.size(), 300u);
    EXPECT_EQ(sec.substr(sec.size() - 2), " s");

    // fmtBytes divides down and uses %g, so it stays short but must
    // still be complete.
    std::string bytes = stats::fmtBytes(1e300);
    EXPECT_NE(bytes.find("TB"), std::string::npos);

    EXPECT_EQ(stats::fmtG(std::numeric_limits<double>::max(), 17),
              "1.7976931348623157e+308");
}

TEST(NdebugFormatTest, CdfPlotAxisLabelsSurviveExtremeRanges)
{
    stats::WeightedCdf cdf;
    cdf.add(1.0);
    cdf.add(1e300);
    std::string plot = stats::renderCdfPlot(
        {{"extreme", &cdf}}, 40, 8, /*log_x=*/true, "bytes");
    EXPECT_NE(plot.find("e+300"), std::string::npos);
    EXPECT_EQ(plot.back(), '\n');
}

/** A served model built by hand (no ModelZoo link in this binary). */
inference::InferenceWorkload
toyWorkload()
{
    inference::InferenceWorkload w;
    w.name = "toy";
    w.flops_per_item = 1e9;
    w.act_bytes_per_item = 1e6;
    w.input_bytes_per_item = 1e4;
    w.weight_bytes = 1e8;
    return w;
}

TEST(NdebugServingTest, ConfigValidationThrowsUnderNdebug)
{
    // Regression: these were assert()s. With NDEBUG they vanished,
    // so max_batch = 0 marched into the batch loop and qps = 0
    // divided into NaN arrival gaps. Real throws must survive here.
    inference::ServingConfig bad;
    bad.max_batch = 0;
    EXPECT_THROW(inference::ServingSimulator{bad},
                 std::invalid_argument);
    bad = inference::ServingConfig{};
    bad.launch_overhead = kNan;
    EXPECT_THROW(inference::ServingSimulator{bad},
                 std::invalid_argument);

    inference::ServingSimulator sim;
    auto w = toyWorkload();
    EXPECT_THROW(sim.run(w, 0.0, 100, 1), std::invalid_argument);
    EXPECT_THROW(sim.run(w, kInf, 100, 1), std::invalid_argument);
    EXPECT_THROW(sim.run(w, 100.0, 0, 1), std::invalid_argument);
    EXPECT_THROW(sim.maxQpsUnderSlo(w, -1.0, 100.0, 1),
                 std::invalid_argument);
    EXPECT_THROW(
        sim.maxQpsUnderSlo(w, 0.01, 100.0, 1,
                           inference::kMinSaturationSamples - 1),
        std::invalid_argument);
}

TEST(NdebugServingTest, ShortRunsStayUndersampledUnderNdebug)
{
    // The saturation-detector floor is data-dependent logic, not an
    // assert; it must behave identically in release builds.
    inference::ServingSimulator sim;
    auto r = sim.run(toyWorkload(), 100000.0,
                     inference::kMinSaturationSamples - 1, 7);
    EXPECT_EQ(r.verdict, inference::OverloadVerdict::Undersampled);
    EXPECT_FALSE(r.saturated);
}

TEST(NdebugFleetTest, FleetValidationThrowsUnderNdebug)
{
    inference::FleetConfig bad;
    bad.num_servers = 0;
    EXPECT_THROW(inference::FleetSimulator{bad},
                 std::invalid_argument);
    bad = inference::FleetConfig{};
    bad.autoscaler.enabled = true;
    bad.autoscaler.check_interval = 0.0;
    EXPECT_THROW(inference::FleetSimulator{bad},
                 std::invalid_argument);

    inference::FleetSimulator sim{inference::FleetConfig{}};
    EXPECT_THROW(sim.run({}, 100, 1), std::invalid_argument);
    stats::ArrivalConfig arrival;
    arrival.qps = 0.0; // invalid stream surfaces from run()
    EXPECT_THROW(sim.run({{toyWorkload(), arrival}}, 100, 1),
                 std::invalid_argument);
}

TEST(NdebugArrivalTest, ExpSamplerClampsClosedIntervalDraws)
{
    obs::Counter &clamped = obs::counter("stats.exp_clamped");
    uint64_t before = clamped.value();
    double gap = stats::expFromUniform(1.0, 10.0);
    EXPECT_TRUE(std::isfinite(gap));
    EXPECT_GT(gap, 0.0);
    EXPECT_EQ(clamped.value(), before + 1);
}

TEST(NdebugArrivalTest, StreamValidationThrowsUnderNdebug)
{
    stats::ArrivalConfig cfg;
    cfg.qps = -1.0;
    EXPECT_THROW(stats::ArrivalStream(cfg, 1),
                 std::invalid_argument);
    cfg = stats::ArrivalConfig{};
    cfg.kind = stats::ArrivalKind::Diurnal;
    cfg.diurnal_amplitude = 1.5;
    EXPECT_THROW(stats::ArrivalStream(cfg, 1),
                 std::invalid_argument);
}

TEST(NdebugTimelineTest, IntervalValidationThrowsUnderNdebug)
{
    // The interval comes straight from --timeline-interval, so a
    // non-positive or non-finite value must be a real exception in
    // release builds, not an assert that NDEBUG strips.
    EXPECT_THROW(obs::Timeline{0.0}, std::invalid_argument);
    EXPECT_THROW(obs::Timeline{-10.0}, std::invalid_argument);
    EXPECT_THROW(obs::Timeline{kNan}, std::invalid_argument);
    EXPECT_THROW(obs::Timeline{kInf}, std::invalid_argument);
    EXPECT_THROW(obs::startTimeline(0.0), std::invalid_argument);
    EXPECT_FALSE(obs::timelineActive());
    EXPECT_NO_THROW(obs::Timeline{1.0});
}

TEST(NdebugTimelineTest, SloAutoscalerValidationThrowsUnderNdebug)
{
    inference::FleetConfig bad;
    bad.autoscaler.enabled = true;
    bad.autoscaler.mode =
        inference::AutoscalerConfig::Mode::SloLatency;
    bad.autoscaler.slo_latency = 0.0;
    EXPECT_THROW(inference::FleetSimulator{bad},
                 std::invalid_argument);
    bad.autoscaler.slo_latency = kNan;
    EXPECT_THROW(inference::FleetSimulator{bad},
                 std::invalid_argument);
}

} // namespace
} // namespace paichar
