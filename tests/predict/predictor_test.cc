/**
 * @file
 * Property tests for the history-trained predictors (DESIGN.md
 * Sec 13): quantile monotonicity, bucket-specificity of the lookup
 * chain, fit determinism regardless of the thread count, linear
 * recalibration recovery, and the cold-start fallback contract
 * (analytical prediction + counted predict.cold_start metric).
 */

#include <gtest/gtest.h>

#include <vector>

#include "obs/obs.h"
#include "predict/predictor.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"
#include "workload/training_job.h"

namespace paichar::predict {
namespace {

using workload::ArchType;
using workload::TrainingJob;

obs::JobRecord
record(const std::string &arch, int cnodes, int64_t steps,
       double run_s, double pred_step_s = 0.0, int gpus = 1,
       double queue_s = 0.0)
{
    obs::JobRecord r;
    r.status = "completed";
    r.arch = arch;
    r.executed_arch = arch;
    r.num_cnodes = cnodes;
    r.gpus = gpus;
    r.num_steps = steps;
    r.submit_s = 0.0;
    r.start_s = queue_s;
    r.finish_s = queue_s + run_s;
    r.pred_step_s = pred_step_s;
    return r;
}

TrainingJob
job(ArchType arch, int cnodes)
{
    TrainingJob j;
    j.arch = arch;
    j.num_cnodes = cnodes;
    return j;
}

TEST(SortedQuantile, EndpointsAndMonotonicity)
{
    std::vector<double> v{1.0, 2.0, 5.0, 9.0};
    EXPECT_DOUBLE_EQ(sortedQuantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(sortedQuantile(v, 1.0), 9.0);
    double prev = sortedQuantile(v, 0.0);
    for (double q = 0.05; q <= 1.0; q += 0.05) {
        double cur = sortedQuantile(v, q);
        EXPECT_GE(cur, prev) << "q=" << q;
        prev = cur;
    }
    EXPECT_THROW(sortedQuantile(v, -0.1), std::invalid_argument);
    EXPECT_THROW(sortedQuantile(v, 1.1), std::invalid_argument);
}

TEST(QuantileDurationModel, PredictionMonotoneInQuantile)
{
    std::vector<obs::JobRecord> history;
    for (int i = 1; i <= 20; ++i)
        history.push_back(record("PS/Worker", 4, 100, 10.0 * i));
    TrainingJob j = job(ArchType::PsWorker, 4);
    double prev = -1.0;
    for (double q = 0.0; q <= 1.0; q += 0.1) {
        QuantileDurationModel m(history, q);
        double p = m.predictRunSeconds(j, 100, 1.0);
        EXPECT_GE(p, prev) << "q=" << q;
        prev = p;
    }
    EXPECT_THROW(QuantileDurationModel(history, 1.5),
                 std::invalid_argument);
}

TEST(QuantileDurationModel, LookupPrefersMostSpecificBucket)
{
    // PS/Worker at 4 cNodes: 2 s/step. PS/Worker at 64: 8 s/step.
    // 1w1g: 0.5 s/step.
    std::vector<obs::JobRecord> history;
    for (int i = 0; i < 10; ++i) {
        history.push_back(record("PS/Worker", 4, 100, 200.0));
        history.push_back(record("PS/Worker", 64, 100, 800.0));
        history.push_back(record("1w1g", 1, 100, 50.0));
    }
    QuantileDurationModel m(history, 0.5);
    EXPECT_EQ(m.sampleCount(), 30u);
    // Exact (arch, log2 scale) bucket.
    EXPECT_DOUBLE_EQ(
        m.predictRunSeconds(job(ArchType::PsWorker, 4), 10, 1.0),
        2.0 * 10);
    EXPECT_DOUBLE_EQ(
        m.predictRunSeconds(job(ArchType::PsWorker, 64), 10, 1.0),
        8.0 * 10);
    // Unseen scale -> any-scale architecture bucket (median of the
    // mixed 2 s and 8 s populations).
    double arch_fallback =
        m.predictRunSeconds(job(ArchType::PsWorker, 16), 10, 1.0);
    EXPECT_GE(arch_fallback, 2.0 * 10);
    EXPECT_LE(arch_fallback, 8.0 * 10);
    // Unseen architecture -> global bucket, never the analytical
    // fallback (so no cold start).
    uint64_t before = obs::counter("predict.cold_start").value();
    double global_fallback = m.predictRunSeconds(
        job(ArchType::AllReduceCluster, 16), 10, 123.0);
    EXPECT_EQ(obs::counter("predict.cold_start").value(), before);
    EXPECT_NE(global_fallback, 123.0);
}

TEST(QuantileDurationModel, FitIsDeterministicAndThreadIndependent)
{
    std::vector<obs::JobRecord> history;
    for (int i = 1; i <= 50; ++i) {
        history.push_back(
            record("PS/Worker", 1 << (i % 5), 100 + i, 3.0 * i));
        history.push_back(record("1wng", 2 + i % 7, 50, 7.0 * i));
    }
    QuantileDurationModel a(history, 0.9);
    QuantileDurationModel b(history, 0.9);
    std::vector<TrainingJob> probes;
    for (int c = 1; c <= 64; c *= 2) {
        probes.push_back(job(ArchType::PsWorker, c));
        probes.push_back(job(ArchType::OneWorkerMultiGpu, c));
    }
    // Two fits on the same history agree exactly, and predictions
    // evaluated on the global pool (however many threads it has)
    // match the serial evaluation bit-for-bit.
    std::vector<double> serial;
    for (const TrainingJob &p : probes)
        serial.push_back(a.predictRunSeconds(p, 77, 1.0));
    std::vector<double> pooled = runtime::parallelMap<double>(
        runtime::globalPool(), probes.size(), [&](size_t i) {
            return b.predictRunSeconds(probes[i], 77, 1.0);
        });
    ASSERT_EQ(serial.size(), pooled.size());
    for (size_t i = 0; i < serial.size(); ++i)
        EXPECT_DOUBLE_EQ(serial[i], pooled[i]) << "probe " << i;
}

TEST(QuantileDurationModel, ColdStartFallsBackAndCounts)
{
    QuantileDurationModel empty({}, 0.5);
    EXPECT_EQ(empty.sampleCount(), 0u);
    uint64_t before = obs::counter("predict.cold_start").value();
    EXPECT_DOUBLE_EQ(
        empty.predictRunSeconds(job(ArchType::PsWorker, 4), 10, 42.0),
        42.0);
    EXPECT_EQ(obs::counter("predict.cold_start").value(), before + 1);

    // Dropped records never train: a history of failures is as cold
    // as no history.
    std::vector<obs::JobRecord> dropped;
    dropped.push_back(record("PS/Worker", 4, 100, 100.0));
    dropped.back().status = "dropped";
    QuantileDurationModel m(dropped, 0.5);
    EXPECT_EQ(m.sampleCount(), 0u);
    EXPECT_DOUBLE_EQ(
        m.predictRunSeconds(job(ArchType::PsWorker, 4), 10, 7.0),
        7.0);
}

TEST(LinearDurationModel, RecoversAffineRecalibration)
{
    // run = 3 + 2 * (pred_step * steps), exactly.
    std::vector<obs::JobRecord> history;
    for (int i = 1; i <= 10; ++i) {
        double pred_step = 0.5 * i;
        int64_t steps = 100;
        double x = pred_step * static_cast<double>(steps);
        history.push_back(
            record("1w1g", 1, steps, 3.0 + 2.0 * x, pred_step));
    }
    LinearDurationModel m(history);
    EXPECT_EQ(m.sampleCount(), 10u);
    EXPECT_NEAR(m.slope(), 2.0, 1e-9);
    EXPECT_NEAR(m.intercept(), 3.0, 1e-6);
    EXPECT_NEAR(
        m.predictRunSeconds(job(ArchType::OneWorkerOneGpu, 1), 100,
                            200.0),
        3.0 + 2.0 * 200.0, 1e-6);
    // Clamped non-negative even when the fit extrapolates below 0.
    EXPECT_GE(m.predictRunSeconds(job(ArchType::OneWorkerOneGpu, 1),
                                  100, -1e9),
              0.0);
}

TEST(LinearDurationModel, DegenerateFitKeepsIdentity)
{
    // One sample (or identical x values) cannot determine a slope:
    // the model must stay the analytical identity.
    std::vector<obs::JobRecord> one{
        record("1w1g", 1, 100, 500.0, 2.0)};
    LinearDurationModel m(one);
    EXPECT_DOUBLE_EQ(m.slope(), 1.0);
    EXPECT_DOUBLE_EQ(m.intercept(), 0.0);

    LinearDurationModel empty((std::vector<obs::JobRecord>{}));
    uint64_t before = obs::counter("predict.cold_start").value();
    EXPECT_DOUBLE_EQ(
        empty.predictRunSeconds(job(ArchType::OneWorkerOneGpu, 1),
                                10, 11.0),
        11.0);
    EXPECT_EQ(obs::counter("predict.cold_start").value(), before + 1);
}

TEST(QueueDelayModel, BucketsByGpuDemandAndMonotoneInQ)
{
    std::vector<obs::JobRecord> history;
    for (int i = 1; i <= 10; ++i) {
        history.push_back(
            record("1w1g", 1, 10, 5.0, 0.0, /*gpus=*/1,
                   /*queue_s=*/1.0 * i));
        history.push_back(
            record("1wng", 8, 10, 5.0, 0.0, /*gpus=*/8,
                   /*queue_s=*/100.0 * i));
    }
    QueueDelayModel m(history, 0.5);
    EXPECT_EQ(m.sampleCount(), 20u);
    double small = m.predictQueueSeconds(1);
    double large = m.predictQueueSeconds(8);
    EXPECT_LT(small, large);
    double prev = -1.0;
    for (double q = 0.0; q <= 1.0; q += 0.25) {
        QueueDelayModel qm(history, q);
        double cur = qm.predictQueueSeconds(8);
        EXPECT_GE(cur, prev);
        prev = cur;
    }
    // Cold start: no history at all -> 0 s, counted.
    QueueDelayModel empty({}, 0.5);
    uint64_t before = obs::counter("predict.cold_start").value();
    EXPECT_DOUBLE_EQ(empty.predictQueueSeconds(4), 0.0);
    EXPECT_EQ(obs::counter("predict.cold_start").value(), before + 1);
}

} // namespace
} // namespace paichar::predict
