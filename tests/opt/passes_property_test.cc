/**
 * @file
 * Property tests for the optimization passes over generated graphs
 * (testkit::JobGenerator): fusion idempotence, mixed-precision
 * monotonicity and partition conservation. Each property runs over a
 * seed sweep so a failure prints a one-number reproducer.
 */

#include <gtest/gtest.h>

#include "opt/cost_model.h"
#include "opt/passes.h"
#include "stats/rng.h"
#include "testkit/gen.h"

namespace paichar::opt {
namespace {

using testkit::JobGenerator;
using workload::Op;
using workload::OpGraph;

OpGraph
graphForSeed(uint64_t seed)
{
    JobGenerator gen;
    stats::Rng rng(seed);
    auto f = gen.features(rng);
    return JobGenerator::graphFor(f, seed);
}

void
expectSameGraph(const OpGraph &a, const OpGraph &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        const Op &x = a.ops()[i];
        const Op &y = b.ops()[i];
        EXPECT_EQ(x.type, y.type);
        EXPECT_EQ(x.inputs, y.inputs);
        EXPECT_DOUBLE_EQ(x.flops, y.flops);
        EXPECT_DOUBLE_EQ(x.mem_bytes, y.mem_bytes);
        EXPECT_DOUBLE_EQ(x.output_bytes, y.output_bytes);
    }
}

TEST(PassPropertyTest, XlaFusionIsIdempotent)
{
    // A second fusion run must be a no-op: fused chains collapse to
    // single Fused ops whose consumers are never unique-fusable
    // chains again with the same members.
    XlaFusionPass xla;
    for (uint64_t seed = 1; seed <= 40; ++seed) {
        OpGraph g = graphForSeed(seed);
        OpGraph once = xla.run(g);
        OpGraph twice = xla.run(once);
        SCOPED_TRACE("seed " + std::to_string(seed));
        expectSameGraph(once, twice);
    }
}

TEST(PassPropertyTest, MixedPrecisionStepTimeMonotone)
{
    // A larger achieved speedup can only shrink the analytically
    // estimated step time (compute shrinks, everything else fixed).
    auto model = workload::ModelZoo::resnet50();
    const double speedups[] = {1.0, 1.5, 2.8, 4.0, 8.0};
    double prev = 0.0;
    AnalyticalCostModel cost;
    for (size_t i = 0; i < std::size(speedups); ++i) {
        MixedPrecisionPass mp(speedups[i]);
        PreparedPlan plan;
        plan.spec.arch = model.arch;
        plan.spec.num_cnodes = model.num_cnodes;
        plan.graph = mp.run(model.graph);
        plan.features = model.features;
        plan.efficiency = model.measured_efficiency;
        double step = cost.estimate(plan).step_time;
        if (i > 0)
            EXPECT_LE(step, prev + 1e-12)
                << "speedup " << speedups[i];
        prev = step;
    }
}

TEST(PassPropertyTest, SubGraphPartitionConservesDemands)
{
    // ways x per-GPU shard == whole graph, op by op (DataLoad stays
    // per-GPU by design).
    for (uint64_t seed = 1; seed <= 40; ++seed) {
        OpGraph g = graphForSeed(seed);
        for (int ways : {2, 4, 8}) {
            SubGraphPartitionPass pass(ways);
            OpGraph shard = pass.run(g);
            SCOPED_TRACE("seed " + std::to_string(seed) + " ways " +
                         std::to_string(ways));
            ASSERT_EQ(shard.size(), g.size());
            for (size_t i = 0; i < g.size(); ++i) {
                const Op &orig = g.ops()[i];
                const Op &s = shard.ops()[i];
                if (orig.type == workload::OpType::DataLoad) {
                    EXPECT_DOUBLE_EQ(s.mem_bytes, orig.mem_bytes);
                    continue;
                }
                EXPECT_NEAR(s.flops * ways, orig.flops,
                            1e-9 * orig.flops + 1e-9);
                EXPECT_NEAR(s.mem_bytes * ways, orig.mem_bytes,
                            1e-9 * orig.mem_bytes + 1e-9);
                EXPECT_NEAR(s.output_bytes * ways, orig.output_bytes,
                            1e-9 * orig.output_bytes + 1e-9);
            }
        }
    }
}

TEST(PassPropertyTest, ChannelSplitConservesConvDemands)
{
    // Channel splitting divides only the conv-riding ops; recombining
    // the shards reproduces the original totals exactly.
    auto model = workload::ModelZoo::resnet50();
    const OpGraph &g = model.graph;
    for (int ways : {2, 4, 8}) {
        ChannelFilterSplitPass pass(ways);
        OpGraph shard = pass.run(g);
        ASSERT_EQ(shard.size(), g.size());
        double orig_flops = g.totals().flops;
        double split_flops = 0.0, kept_flops = 0.0;
        for (size_t i = 0; i < g.size(); ++i) {
            const Op &orig = g.ops()[i];
            const Op &s = shard.ops()[i];
            if (s.flops != orig.flops)
                split_flops += s.flops * ways;
            else
                kept_flops += s.flops;
        }
        EXPECT_NEAR(split_flops + kept_flops, orig_flops,
                    1e-9 * orig_flops);
    }
}

TEST(PassPropertyTest, PartitionExchangeScalesDownWithWays)
{
    // Per-GPU exchange traffic shrinks as the shard gets thinner:
    // (w-1)/w grows slower than the 1/w share shrinks.
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        OpGraph g = graphForSeed(seed);
        double prev = -1.0;
        for (int ways : {2, 4, 8}) {
            SubGraphPartitionPass pass(ways);
            double x = pass.exchangeBytes(g);
            EXPECT_GE(x, 0.0);
            if (prev >= 0.0)
                EXPECT_LE(x, prev + 1e-9);
            prev = x;
        }
    }
}

} // namespace
} // namespace paichar::opt
