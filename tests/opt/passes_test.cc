/**
 * @file
 * Tests for the optimization passes (Fig 13's MP and XLA).
 */

#include <gtest/gtest.h>

#include "opt/passes.h"
#include "workload/model_zoo.h"

namespace paichar::opt {
namespace {

using workload::Op;
using workload::OpGraph;
using workload::OpId;
using workload::OpType;

Op
makeOp(OpType type, double flops, double mem, double out,
       std::vector<OpId> inputs = {})
{
    Op op;
    op.type = type;
    op.flops = flops;
    op.mem_bytes = mem;
    op.output_bytes = out;
    op.inputs = std::move(inputs);
    return op;
}

TEST(MixedPrecisionTest, ScalesOnlyComputeBoundOps)
{
    OpGraph g;
    g.addOp(makeOp(OpType::MatMul, 280.0, 10, 10));
    g.addOp(makeOp(OpType::Conv, 28.0, 10, 10, {0}));
    g.addOp(makeOp(OpType::ElementWise, 0.0, 40, 20, {1}));

    MixedPrecisionPass mp(2.8);
    OpGraph out = mp.run(g);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_DOUBLE_EQ(out.op(0).flops, 100.0);
    EXPECT_DOUBLE_EQ(out.op(1).flops, 10.0);
    EXPECT_DOUBLE_EQ(out.op(2).mem_bytes, 40.0);
    EXPECT_TRUE(out.validate());
}

TEST(XlaFusionTest, FusesLinearChain)
{
    // matmul -> ew -> ew -> ew -> matmul
    OpGraph g;
    OpId mm = g.addOp(makeOp(OpType::MatMul, 100, 10, 10));
    OpId a = g.addOp(makeOp(OpType::ElementWise, 0, 20, 10, {mm}));
    OpId b = g.addOp(makeOp(OpType::ElementWise, 0, 20, 10, {a}));
    OpId c = g.addOp(makeOp(OpType::ElementWise, 0, 20, 10, {b}));
    g.addOp(makeOp(OpType::MatMul, 100, 10, 10, {c}));

    XlaFusionPass xla;
    OpGraph out = xla.run(g);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out.op(1).type, OpType::Fused);
    // Traffic: one external input (matmul out, 10) + final write (10),
    // versus 60 unfused.
    EXPECT_DOUBLE_EQ(out.op(1).mem_bytes, 20.0);
    EXPECT_DOUBLE_EQ(out.op(1).output_bytes, 10.0);
    // The tail matmul now consumes the fused op.
    EXPECT_EQ(out.op(2).inputs, std::vector<OpId>{1});
    EXPECT_TRUE(out.validate());
}

TEST(XlaFusionTest, StopsAtMultiConsumerOps)
{
    // ew0 feeds two consumers: must not be pulled into either chain.
    OpGraph g;
    OpId e0 = g.addOp(makeOp(OpType::ElementWise, 0, 20, 10));
    g.addOp(makeOp(OpType::ElementWise, 0, 20, 10, {e0}));
    g.addOp(makeOp(OpType::ElementWise, 0, 20, 10, {e0}));
    XlaFusionPass xla;
    OpGraph out = xla.run(g);
    EXPECT_EQ(out.size(), 3u);
    for (const auto &op : out.ops())
        EXPECT_NE(op.type, OpType::Fused);
}

TEST(XlaFusionTest, SideInputProducedAfterHeadIsHandled)
{
    // Chain a->b where b also reads x, and x is emitted between a and
    // b in topological order (the tail-emission case).
    OpGraph g;
    OpId a = g.addOp(makeOp(OpType::ElementWise, 0, 20, 10));
    OpId x = g.addOp(makeOp(OpType::MatMul, 50, 8, 8));
    OpId b = g.addOp(makeOp(OpType::ElementWise, 0, 30, 10, {a, x}));
    g.addOp(makeOp(OpType::MatMul, 50, 8, 8, {b}));

    XlaFusionPass xla;
    OpGraph out = xla.run(g);
    ASSERT_TRUE(out.validate());
    // a+b fused; externals: x (and nothing else).
    bool found_fused = false;
    for (const auto &op : out.ops()) {
        if (op.type == OpType::Fused) {
            found_fused = true;
            // Traffic = x's output (8) + final output (10).
            EXPECT_DOUBLE_EQ(op.mem_bytes, 18.0);
        }
    }
    EXPECT_TRUE(found_fused);
}

TEST(XlaFusionTest, RespectsMaxChain)
{
    OpGraph g;
    OpId prev = g.addOp(makeOp(OpType::ElementWise, 0, 20, 10));
    for (int i = 0; i < 9; ++i)
        prev = g.addOp(makeOp(OpType::ElementWise, 0, 20, 10, {prev}));

    XlaFusionPass xla(5); // 10 ops -> two fusions of 5
    OpGraph out = xla.run(g);
    EXPECT_EQ(out.size(), 2u);
    EXPECT_EQ(out.op(0).type, OpType::Fused);
    EXPECT_EQ(out.op(1).type, OpType::Fused);
}

TEST(XlaFusionTest, ReducesKernelsAndTrafficOnSpeech)
{
    // Fig 13(b): XLA shrinks Speech's element-wise time by ~3.4x.
    auto m = workload::ModelZoo::speech();
    auto before = m.graph.totals();
    XlaFusionPass xla;
    OpGraph fused = xla.run(m.graph);
    auto after = fused.totals();

    EXPECT_LT(after.num_kernels, before.num_kernels / 2);
    double ew_reduction =
        before.mem_access_bytes / after.mem_access_bytes;
    EXPECT_GT(ew_reduction, 2.5);
    EXPECT_LT(ew_reduction, 6.0);
    // Compute-bound work untouched.
    EXPECT_NEAR(after.flops / before.flops, 1.0, 1e-9);
    EXPECT_NEAR(after.input_bytes / before.input_bytes, 1.0, 1e-9);
}

TEST(PassManagerTest, RunsPassesInOrder)
{
    OpGraph g;
    OpId mm = g.addOp(makeOp(OpType::MatMul, 280, 10, 10));
    OpId a = g.addOp(makeOp(OpType::ElementWise, 0, 20, 10, {mm}));
    g.addOp(makeOp(OpType::ElementWise, 0, 20, 10, {a}));

    PassManager pm;
    pm.add(std::make_unique<MixedPrecisionPass>(2.8))
        .add(std::make_unique<XlaFusionPass>());
    OpGraph out = pm.run(g);
    EXPECT_EQ(pm.names(),
              (std::vector<std::string>{"mixed-precision",
                                        "xla-fusion"}));
    EXPECT_EQ(out.size(), 2u);
    EXPECT_DOUBLE_EQ(out.op(0).flops, 100.0);
    EXPECT_EQ(out.op(1).type, OpType::Fused);
}

TEST(PassManagerTest, EmptyManagerIsIdentity)
{
    OpGraph g;
    g.addOp(makeOp(OpType::MatMul, 100, 10, 10));
    PassManager pm;
    OpGraph out = pm.run(g);
    EXPECT_EQ(out.size(), 1u);
    EXPECT_DOUBLE_EQ(out.op(0).flops, 100.0);
}

} // namespace
} // namespace paichar::opt
