/**
 * @file
 * Tests for the optimization planner (Sec IV-D / VI operationalized).
 */

#include <gtest/gtest.h>

#include "opt/optimization_planner.h"

namespace paichar::opt {
namespace {

using workload::ArchType;
using workload::ModelZoo;

TEST(OptimizationPlannerTest, BaselineFirstAndSpeedupsConsistent)
{
    OptimizationPlanner planner;
    auto plans = planner.evaluate(ModelZoo::resnet50());
    ASSERT_GE(plans.size(), 4u);
    const Plan &base = plans[0];
    EXPECT_EQ(base.arch, ArchType::AllReduceLocal);
    EXPECT_FALSE(base.mixed_precision);
    EXPECT_FALSE(base.xla_fusion);
    EXPECT_DOUBLE_EQ(base.speedup, 1.0);
    for (size_t i = 2; i < plans.size(); ++i)
        EXPECT_GE(plans[i - 1].speedup + 1e-12, plans[i].speedup);
    for (const Plan &p : plans) {
        // Speedups are Eq 2 throughput ratios against the baseline.
        EXPECT_NEAR(p.speedup * base.throughput, p.throughput,
                    1e-9 * p.throughput);
        EXPECT_NEAR(p.throughput,
                    p.num_cnodes / p.result.total_time * 64.0,
                    1e-6 * p.throughput); // ResNet50 batch = 64
    }
}

TEST(OptimizationPlannerTest, ComputeBoundModelWantsMixedPrecision)
{
    // ResNet50's bottleneck is compute: the best plan enables MP.
    OptimizationPlanner planner;
    Plan best = planner.best(ModelZoo::resnet50());
    EXPECT_TRUE(best.mixed_precision);
    EXPECT_GT(best.speedup, 1.3);
}

TEST(OptimizationPlannerTest, ElementWiseBoundModelWantsXla)
{
    // Speech spends most of its time in memory-bound element-wise
    // kernels (Fig 13b): the best plan enables XLA fusion.
    OptimizationPlanner planner;
    Plan best = planner.best(ModelZoo::speech());
    EXPECT_TRUE(best.xla_fusion);
    EXPECT_GT(best.speedup, 1.3);
}

TEST(OptimizationPlannerTest, CommBoundModelWantsArchitectureChange)
{
    // GCN on PS/Worker is 98% communication; the planner should move
    // it to PEARL (the paper's own fix, Sec IV-C).
    auto gcn = ModelZoo::gcn();
    gcn.arch = ArchType::PsWorker; // pretend it still runs on PS
    OptimizationPlanner planner;
    Plan best = planner.best(gcn);
    EXPECT_EQ(best.arch, ArchType::Pearl);
    EXPECT_GT(best.speedup, 5.0);
}

TEST(OptimizationPlannerTest, InfeasibleArchitecturesExcluded)
{
    // Multi-Interests (239 GB embeddings) cannot replicate; no plan
    // may use the AllReduce family.
    OptimizationPlanner planner;
    auto plans = planner.evaluate(ModelZoo::multiInterests());
    for (const Plan &p : plans) {
        EXPECT_NE(p.arch, ArchType::AllReduceLocal) << p.label();
        EXPECT_NE(p.arch, ArchType::AllReduceCluster) << p.label();
        EXPECT_NE(p.arch, ArchType::OneWorkerOneGpu) << p.label();
    }
}

TEST(OptimizationPlannerTest, ArchExplorationCanBeDisabled)
{
    PlannerConfig cfg;
    cfg.explore_architectures = false;
    OptimizationPlanner planner(cfg);
    auto plans = planner.evaluate(ModelZoo::bert());
    EXPECT_EQ(plans.size(), 4u); // {MP} x {XLA} on the original arch
    for (const Plan &p : plans)
        EXPECT_EQ(p.arch, ArchType::AllReduceLocal);
}

TEST(OptimizationPlannerTest, LabelsAreReadable)
{
    Plan p;
    p.mixed_precision = true;
    p.xla_fusion = true;
    p.arch = ArchType::AllReduceLocal;
    EXPECT_EQ(p.label(), "MP+XLA on AllReduce-Local");
    Plan q;
    q.arch = ArchType::PsWorker;
    EXPECT_EQ(q.label(), "default on PS/Worker");
}

} // namespace
} // namespace paichar::opt
