/**
 * @file
 * Tests for the optimization planner (Sec IV-D / VI operationalized,
 * widened to the hybrid-parallelism strategy search).
 */

#include <gtest/gtest.h>

#include "opt/optimization_planner.h"

namespace paichar::opt {
namespace {

using workload::ArchType;
using workload::ModelZoo;

TEST(OptimizationPlannerTest, BaselineFirstAndSpeedupsConsistent)
{
    OptimizationPlanner planner;
    auto model = ModelZoo::resnet50();
    auto plans = planner.evaluate(model);
    ASSERT_GE(plans.size(), 4u);
    const Plan &base = plans[0];
    EXPECT_EQ(base.spec.arch, ArchType::AllReduceLocal);
    EXPECT_TRUE(base.spec.isDefault());
    EXPECT_TRUE(base.simulated);
    EXPECT_DOUBLE_EQ(base.speedup, 1.0);
    // Measured plans precede pruned ones; each segment is sorted by
    // decreasing speedup.
    for (size_t i = 2; i < plans.size(); ++i) {
        EXPECT_GE(plans[i - 1].simulated, plans[i].simulated);
        if (plans[i - 1].simulated == plans[i].simulated)
            EXPECT_GE(plans[i - 1].speedup + 1e-12, plans[i].speedup);
    }
    for (const Plan &p : plans) {
        // Speedups are Eq 2 throughput ratios against the baseline,
        // measured-vs-measured for simulated plans and estimated-vs-
        // estimated for pruned ones.
        double base_tp = p.simulated ? base.measured.throughput
                                     : base.analytical.throughput;
        EXPECT_NEAR(p.speedup * base_tp, p.throughput,
                    1e-9 * p.throughput);
        const CostEstimate &est =
            p.simulated ? p.measured : p.analytical;
        // Throughput = dp x batch x micro_batches / step time
        // (ResNet50 batch = 64).
        EXPECT_NEAR(p.throughput,
                    samplesPerStep(p.spec, 64.0) / est.step_time,
                    1e-6 * p.throughput);
        if (p.simulated) {
            EXPECT_NEAR(est.step_time, p.result.total_time,
                        1e-12 * est.step_time);
        }
    }
}

TEST(OptimizationPlannerTest, ComputeBoundModelWantsMixedPrecision)
{
    // ResNet50's bottleneck is compute: the best plan enables MP.
    OptimizationPlanner planner;
    Plan best = planner.best(ModelZoo::resnet50());
    EXPECT_TRUE(best.spec.mixed_precision);
    EXPECT_TRUE(best.simulated);
    EXPECT_GT(best.speedup, 1.3);
}

TEST(OptimizationPlannerTest, ElementWiseBoundModelWantsXla)
{
    // Speech spends most of its time in memory-bound element-wise
    // kernels (Fig 13b): the best plan enables XLA fusion.
    OptimizationPlanner planner;
    Plan best = planner.best(ModelZoo::speech());
    EXPECT_TRUE(best.spec.xla_fusion);
    EXPECT_GT(best.speedup, 1.3);
}

TEST(OptimizationPlannerTest, CommBoundModelWantsArchitectureChange)
{
    // GCN on PS/Worker is 98% communication; the planner should move
    // it to PEARL (the paper's own fix, Sec IV-C).
    auto gcn = ModelZoo::gcn();
    gcn.arch = ArchType::PsWorker; // pretend it still runs on PS
    OptimizationPlanner planner;
    Plan best = planner.best(gcn);
    EXPECT_EQ(best.spec.arch, ArchType::Pearl);
    EXPECT_GT(best.speedup, 5.0);
}

TEST(OptimizationPlannerTest, InfeasibleArchitecturesExcluded)
{
    // Multi-Interests (239 GB embeddings) cannot replicate: without
    // model partitioning, no plan may use a replica architecture.
    // (Partitioned plans may reach them -- that is the point of the
    // hybrid-parallelism search.)
    OptimizationPlanner planner;
    auto plans = planner.evaluate(ModelZoo::multiInterests());
    for (const Plan &p : plans) {
        if (p.spec.splitWays() > 1)
            continue;
        EXPECT_NE(p.spec.arch, ArchType::AllReduceLocal)
            << p.label();
        EXPECT_NE(p.spec.arch, ArchType::AllReduceCluster)
            << p.label();
        EXPECT_NE(p.spec.arch, ArchType::OneWorkerOneGpu)
            << p.label();
    }
}

TEST(OptimizationPlannerTest, OneWorkerOneGpuCannotPartition)
{
    // Single-GPU and PS placements cannot host model shards; the
    // enumeration must never pair them with a partition degree.
    OptimizationPlanner planner;
    for (const auto &model : ModelZoo::all()) {
        for (const PlanSpec &s : planner.enumerate(model)) {
            if (s.splitWays() > 1) {
                EXPECT_NE(s.arch, ArchType::OneWorkerOneGpu)
                    << s.label();
                EXPECT_NE(s.arch, ArchType::PsWorker) << s.label();
            }
        }
    }
}

TEST(OptimizationPlannerTest, ArchExplorationCanBeDisabled)
{
    PlannerConfig cfg;
    cfg.explore_architectures = false;
    cfg.enable_subgraph_partition = false;
    cfg.enable_channel_split = false;
    cfg.enable_micro_batching = false;
    OptimizationPlanner planner(cfg);
    auto plans = planner.evaluate(ModelZoo::bert());
    EXPECT_EQ(plans.size(), 4u); // {MP} x {XLA} on the original arch
    for (const Plan &p : plans)
        EXPECT_EQ(p.spec.arch, ArchType::AllReduceLocal);
}

TEST(OptimizationPlannerTest, TopKBoundsSimulationCount)
{
    PlannerConfig cfg;
    cfg.top_k = 2;
    OptimizationPlanner planner(cfg);
    auto plans = planner.evaluate(ModelZoo::bert());
    size_t simulated = 0;
    for (const Plan &p : plans)
        simulated += p.simulated ? 1 : 0;
    // Baseline + at most top_k candidates.
    EXPECT_GE(simulated, 2u);
    EXPECT_LE(simulated, 3u);
    EXPECT_TRUE(plans[0].simulated);
    EXPECT_GT(plans.size(), simulated); // the rest stays analytical
}

TEST(OptimizationPlannerTest, LabelsAreReadable)
{
    PlanSpec p;
    p.mixed_precision = true;
    p.xla_fusion = true;
    p.arch = ArchType::AllReduceLocal;
    EXPECT_EQ(p.label(), "MP+XLA on AllReduce-Local");
    PlanSpec q;
    q.arch = ArchType::PsWorker;
    EXPECT_EQ(q.label(), "default on PS/Worker");
    PlanSpec r;
    r.arch = ArchType::AllReduceLocal;
    r.partition_ways = 4;
    r.micro_batches = 2;
    EXPECT_EQ(r.label(), "part4+acc2 on AllReduce-Local");
    PlanSpec c;
    c.arch = ArchType::Pearl;
    c.mixed_precision = true;
    c.channel_split_ways = 8;
    EXPECT_EQ(c.label(), "MP+ch8 on PEARL");
}

} // namespace
} // namespace paichar::opt
