/**
 * @file
 * Search-quality tests for the planner (`ctest -L opt`): the
 * analytical-prune + simulate-top-K pipeline must agree with
 * exhaustive simulation on every case-study model, the advisor and
 * planner must share one statement of feasibility, and beam search
 * must land on the exhaustive winner for the calibrated zoo.
 */

#include <gtest/gtest.h>

#include "core/arch_feasibility.h"
#include "core/arch_selection.h"
#include "opt/optimization_planner.h"

namespace paichar::opt {
namespace {

using workload::ArchType;
using workload::ModelZoo;

TEST(PlannerSearchTest, TopKPruningMatchesExhaustiveSimulation)
{
    // The oracle: for every zoo model, the default prune (top_k
    // candidates simulated) must select the same best plan as
    // simulating every feasible candidate.
    for (const auto &model : ModelZoo::all()) {
        OptimizationPlanner pruned; // default top_k
        PlannerConfig full_cfg;
        full_cfg.top_k = 0; // simulate everything
        OptimizationPlanner full(full_cfg);
        Plan a = pruned.best(model);
        Plan b = full.best(model);
        EXPECT_EQ(a.label(), b.label()) << model.name;
        EXPECT_NEAR(a.speedup, b.speedup, 1e-9 * b.speedup)
            << model.name;
    }
}

TEST(PlannerSearchTest, BeamSearchFindsExhaustiveWinner)
{
    for (const auto &model : ModelZoo::all()) {
        PlannerConfig beam_cfg;
        beam_cfg.search = SearchMode::Beam;
        OptimizationPlanner beam(beam_cfg);
        OptimizationPlanner exhaustive;
        EXPECT_EQ(beam.best(model).label(),
                  exhaustive.best(model).label())
            << model.name;
    }
}

TEST(PlannerSearchTest, AdvisorAndPlannerShareFeasibility)
{
    // Satellite of the refactor: both layers now delegate to
    // core::resolvePlacement, so their verdicts must be identical
    // architecture by architecture, model by model.
    const double gpu_mem = 32e9;
    core::AnalyticalModel analytical(hw::v100Testbed());
    core::ArchitectureAdvisor advisor(analytical, gpu_mem);
    PlannerConfig cfg;
    cfg.gpu_memory_bytes = gpu_mem;
    OptimizationPlanner planner(cfg);

    for (const auto &model : ModelZoo::all()) {
        workload::TrainingJob job;
        job.arch = model.arch;
        job.num_cnodes = model.num_cnodes;
        job.features = model.features;

        auto specs = planner.enumerate(model);
        for (const auto &option : advisor.evaluate(job)) {
            core::Placement p = core::resolvePlacement(
                model.features, option.arch, model.num_cnodes,
                analytical.spec().server, gpu_mem);
            EXPECT_EQ(option.feasible, p.feasible)
                << model.name << " "
                << workload::toString(option.arch);
            EXPECT_EQ(option.num_cnodes, p.num_cnodes)
                << model.name << " "
                << workload::toString(option.arch);
            EXPECT_EQ(option.reason, p.reason)
                << model.name << " "
                << workload::toString(option.arch);

            // The planner enumerates un-partitioned plans on an
            // architecture exactly when the advisor deems it
            // feasible.
            bool planner_has = false;
            for (const PlanSpec &s : specs) {
                if (s.arch == option.arch && s.splitWays() == 1) {
                    planner_has = true;
                    EXPECT_EQ(s.num_cnodes, p.num_cnodes)
                        << model.name << " " << s.label();
                }
            }
            EXPECT_EQ(planner_has, option.feasible)
                << model.name << " "
                << workload::toString(option.arch);
        }
    }
}

TEST(PlannerSearchTest, PartitioningUnlocksReplicaArchitectures)
{
    // Multi-Interests' 239 GB of embeddings cannot replicate on a
    // 32 GB GPU, but an 8-way shard fits: the hybrid search must
    // surface AllReduce plans the pure data-parallel advisor cannot.
    OptimizationPlanner planner;
    auto specs = planner.enumerate(ModelZoo::multiInterests());
    bool partitioned_replica = false;
    for (const PlanSpec &s : specs) {
        EXPECT_TRUE(s.arch != ArchType::AllReduceLocal ||
                    s.splitWays() > 1)
            << s.label();
        if (s.arch == ArchType::AllReduceLocal && s.splitWays() == 8)
            partitioned_replica = true;
    }
    EXPECT_TRUE(partitioned_replica);
}

} // namespace
} // namespace paichar::opt
