/**
 * @file
 * Tests for the planner's shared cost-model layer: plan preparation,
 * the analytical/simulated evaluator pair and the per-medium traffic
 * accounting.
 */

#include <gtest/gtest.h>

#include "opt/cost_model.h"

namespace paichar::opt {
namespace {

using workload::ArchType;
using workload::ModelZoo;

TEST(CostModelTest, PreparePlanRunsRequestedPasses)
{
    auto model = ModelZoo::bert();
    PlanSpec spec;
    spec.arch = model.arch;
    spec.num_cnodes = model.num_cnodes;
    spec.mixed_precision = true;
    spec.xla_fusion = true;
    spec.partition_ways = 2;
    auto plan = preparePlan(model, spec);
    ASSERT_EQ(plan.diagnostics.size(), 3u);
    EXPECT_EQ(plan.diagnostics[0].pass, "mixed-precision");
    EXPECT_EQ(plan.diagnostics[1].pass, "xla-fusion");
    EXPECT_EQ(plan.diagnostics[2].pass, "subgraph-partition");
    // MP shrinks FLOPs, fusion shrinks kernels, the partition adds
    // NVLink exchange traffic.
    EXPECT_LT(plan.diagnostics[0].flops_after,
              plan.diagnostics[0].flops_before);
    EXPECT_LT(plan.diagnostics[1].kernels_after,
              plan.diagnostics[1].kernels_before);
    EXPECT_GT(plan.diagnostics[2].exchange_nvlink_bytes, 0.0);
    EXPECT_DOUBLE_EQ(plan.exchange_nvlink_bytes,
                     plan.diagnostics[2].exchange_nvlink_bytes);
    // Features keep the ORIGINAL per-cNode demands; sharding is the
    // strategy layer's job.
    EXPECT_DOUBLE_EQ(plan.features.comm_bytes,
                     model.features.comm_bytes);
}

TEST(CostModelTest, EstimatesDecomposeAndAgreeOnThroughput)
{
    auto model = ModelZoo::resnet50();
    PlanSpec spec;
    spec.arch = model.arch;
    spec.num_cnodes = model.num_cnodes;
    auto plan = preparePlan(model, spec);

    AnalyticalCostModel ana;
    SimulatedCostModel sim;
    for (const CostModel *m :
         {static_cast<const CostModel *>(&ana),
          static_cast<const CostModel *>(&sim)}) {
        CostEstimate e = m->estimate(plan);
        EXPECT_GT(e.step_time, 0.0) << m->name();
        EXPECT_NEAR(e.step_time,
                    e.data_time + e.compute_time + e.exchange_time +
                        e.comm_time,
                    1e-9 * e.step_time)
            << m->name();
        EXPECT_NEAR(e.throughput,
                    samplesPerStep(spec,
                                   model.features.batch_size) /
                        e.step_time,
                    1e-9 * e.throughput)
            << m->name();
        EXPECT_DOUBLE_EQ(e.exchange_time, 0.0) << m->name();
    }
}

TEST(CostModelTest, SimulatedMatchesPlainTrainingSimOnDefaults)
{
    // The default plan must price exactly like the raw testbed run
    // the rest of the repo uses -- same graph, same physics.
    for (const auto &model : ModelZoo::all()) {
        PlanSpec spec;
        spec.arch = model.arch;
        spec.num_cnodes = model.num_cnodes;
        auto plan = preparePlan(model, spec);
        SimulatedCostModel cost;
        auto r = cost.simulate(plan);
        testbed::TrainingSimulator sim;
        auto expected = sim.run(model);
        EXPECT_DOUBLE_EQ(r.total_time, expected.total_time)
            << model.name;
        EXPECT_DOUBLE_EQ(r.comm_time, expected.comm_time)
            << model.name;
    }
}

TEST(CostModelTest, ShardedPlanDividesSyncTraffic)
{
    auto model = ModelZoo::bert(); // AllReduce-Local: NVLink sync
    PlanSpec base;
    base.arch = ArchType::AllReduceLocal;
    base.num_cnodes = 8;
    auto base_plan = preparePlan(model, base);
    auto base_traffic = planTraffic(base_plan);
    ASSERT_GT(base_traffic.nvlink_bytes, 0.0);
    EXPECT_DOUBLE_EQ(base_traffic.ethernet_bytes, 0.0);

    PlanSpec part = base;
    part.partition_ways = 2;
    auto part_plan = preparePlan(model, part);
    auto part_traffic = planTraffic(part_plan);
    // Gradient sync halves (each GPU owns half the parameters);
    // the activation exchange rides on top.
    EXPECT_GT(part_plan.exchange_nvlink_bytes, 0.0);
    EXPECT_NEAR(part_traffic.nvlink_bytes,
                base_traffic.nvlink_bytes / 2.0 +
                    part_plan.exchange_nvlink_bytes,
                1e-6 * part_traffic.nvlink_bytes);
}

TEST(CostModelTest, MicroBatchingAmortizesWeightSync)
{
    // Gradient accumulation: k micro-batches pay compute k times but
    // sync weights once, so samples/s improves on comm-heavy jobs
    // under both evaluators.
    auto model = ModelZoo::gcn();
    PlanSpec base;
    base.arch = model.arch;
    base.num_cnodes = model.num_cnodes;
    PlanSpec acc = base;
    acc.micro_batches = 4;
    auto base_plan = preparePlan(model, base);
    auto acc_plan = preparePlan(model, acc);
    AnalyticalCostModel ana;
    SimulatedCostModel sim;
    EXPECT_GT(ana.estimate(acc_plan).throughput,
              ana.estimate(base_plan).throughput);
    EXPECT_GT(sim.estimate(acc_plan).throughput,
              sim.estimate(base_plan).throughput);
}

TEST(CostModelTest, AnalyticalTracksSimulatedOnDefaults)
{
    // The pruning model need not be exact, but it must stay within a
    // small factor of the testbed on the six calibrated models --
    // otherwise prune-then-simulate would be meaningless.
    for (const auto &model : ModelZoo::all()) {
        PlanSpec spec;
        spec.arch = model.arch;
        spec.num_cnodes = model.num_cnodes;
        auto plan = preparePlan(model, spec);
        double ana = AnalyticalCostModel().estimate(plan).step_time;
        double sim = SimulatedCostModel().estimate(plan).step_time;
        EXPECT_GT(ana, 0.4 * sim) << model.name;
        EXPECT_LT(ana, 2.5 * sim) << model.name;
    }
}

} // namespace
} // namespace paichar::opt
