/**
 * @file
 * Tests for CSV trace serialization: round trips, header validation,
 * and malformed-input rejection with useful errors.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>

#include "stats/rng.h"
#include "trace/synthetic_cluster.h"
#include "trace/trace_io.h"

namespace paichar::trace {
namespace {

using workload::TrainingJob;

TEST(TraceIoTest, RoundTripPreservesEverything)
{
    SyntheticClusterGenerator gen(99);
    auto jobs = gen.generate(500);
    ParseResult r = fromCsv(toCsv(jobs));
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_EQ(r.jobs.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        const auto &a = jobs[i], &b = r.jobs[i];
        EXPECT_EQ(a.id, b.id);
        EXPECT_EQ(a.arch, b.arch);
        EXPECT_EQ(a.num_cnodes, b.num_cnodes);
        EXPECT_EQ(a.num_ps, b.num_ps);
        EXPECT_DOUBLE_EQ(a.features.batch_size, b.features.batch_size);
        EXPECT_DOUBLE_EQ(a.features.flop_count, b.features.flop_count);
        EXPECT_DOUBLE_EQ(a.features.mem_access_bytes,
                         b.features.mem_access_bytes);
        EXPECT_DOUBLE_EQ(a.features.input_bytes,
                         b.features.input_bytes);
        EXPECT_DOUBLE_EQ(a.features.comm_bytes, b.features.comm_bytes);
        EXPECT_DOUBLE_EQ(a.features.embedding_comm_bytes,
                         b.features.embedding_comm_bytes);
        EXPECT_DOUBLE_EQ(a.features.dense_weight_bytes,
                         b.features.dense_weight_bytes);
        EXPECT_DOUBLE_EQ(a.features.embedding_weight_bytes,
                         b.features.embedding_weight_bytes);
    }
}

TEST(TraceIoTest, EmptyTraceRoundTrips)
{
    ParseResult r = fromCsv(toCsv({}));
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(r.jobs.empty());
}

TEST(TraceIoTest, RejectsEmptyInput)
{
    ParseResult r = fromCsv("");
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("empty"), std::string::npos);
}

TEST(TraceIoTest, RejectsWrongHeader)
{
    ParseResult r = fromCsv("id,foo,bar\n");
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("header"), std::string::npos);
}

TEST(TraceIoTest, RejectsWrongFieldCount)
{
    std::string csv = toCsv({});
    csv += "1,1w1g,1\n";
    ParseResult r = fromCsv(csv);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("line 2"), std::string::npos);
    EXPECT_NE(r.error.find("fields"), std::string::npos);
}

TEST(TraceIoTest, RejectsUnknownArchitecture)
{
    std::string csv = toCsv({});
    csv += "1,warp-drive,1,0,32,1,1,1,0,0,10,0\n";
    ParseResult r = fromCsv(csv);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("warp-drive"), std::string::npos);
}

TEST(TraceIoTest, RejectsBadNumbers)
{
    std::string csv = toCsv({});
    csv += "1,1w1g,1,0,32,not_a_number,1,1,0,0,10,0\n";
    ParseResult r = fromCsv(csv);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("not_a_number"), std::string::npos);
}

TEST(TraceIoTest, RejectsInvalidFeatures)
{
    std::string csv = toCsv({});
    // embedding_comm_bytes > comm_bytes violates the invariant.
    csv += "1,PS/Worker,4,1,32,1,1,1,5,10,10,0\n";
    ParseResult r = fromCsv(csv);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("validation"), std::string::npos);
}

TEST(TraceIoTest, RejectsNonPositiveCnodes)
{
    std::string csv = toCsv({});
    csv += "1,1w1g,0,0,32,1,1,1,0,0,10,0\n";
    ParseResult r = fromCsv(csv);
    EXPECT_FALSE(r.ok);
}

TEST(TraceIoTest, SkipsBlankLinesAndHandlesCrLf)
{
    SyntheticClusterGenerator gen(7);
    auto jobs = gen.generate(3);
    std::string csv = toCsv(jobs);
    // Convert to CRLF and add a trailing blank line.
    std::string crlf;
    for (char c : csv) {
        if (c == '\n')
            crlf += "\r\n";
        else
            crlf += c;
    }
    crlf += "\r\n";
    ParseResult r = fromCsv(crlf);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.jobs.size(), 3u);
}

TEST(TraceIoTest, FileRoundTrip)
{
    SyntheticClusterGenerator gen(11);
    auto jobs = gen.generate(50);
    std::string path = testing::TempDir() + "/paichar_trace_test.csv";
    ASSERT_TRUE(writeCsvFile(path, jobs));
    ParseResult r = readCsvFile(path);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.jobs.size(), 50u);
    std::remove(path.c_str());
}

TEST(TraceIoTest, MissingFileReportsError)
{
    ParseResult r = readCsvFile("/nonexistent/paichar.csv");
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("cannot open"), std::string::npos);
}

TEST(TraceIoTest, FuzzedMutationsNeverCrash)
{
    // Randomly corrupt a valid trace: the parser must either accept
    // (if the mutation is benign) or fail with a line-numbered error;
    // it must never crash or return half-parsed junk silently.
    SyntheticClusterGenerator gen(21);
    std::string base = toCsv(gen.generate(20));
    stats::Rng rng(22);
    const std::string garbage = ",;x@#\n-e+.\t";
    for (int trial = 0; trial < 500; ++trial) {
        std::string mutated = base;
        int edits = static_cast<int>(rng.uniformInt(1, 5));
        for (int e = 0; e < edits; ++e) {
            auto pos = static_cast<size_t>(
                rng.uniformInt(0, static_cast<int64_t>(
                                      mutated.size() - 1)));
            mutated[pos] = garbage[static_cast<size_t>(rng.uniformInt(
                0, static_cast<int64_t>(garbage.size() - 1)))];
        }
        ParseResult r = fromCsv(mutated);
        if (!r.ok) {
            EXPECT_FALSE(r.error.empty());
        } else {
            // Accepted traces must be fully valid.
            for (const auto &j : r.jobs)
                EXPECT_TRUE(j.features.valid());
        }
    }
}

TEST(TraceIoTest, ExtremeRowsRenderUntruncated)
{
    // Regression for the old snprintf-into-512-bytes writer, which
    // silently truncated any row that outgrew its stack buffer. The
    // worst-case row — extreme id/counts and max-magnitude doubles —
    // must survive a full round trip bit for bit.
    TrainingJob j;
    j.id = std::numeric_limits<int64_t>::min();
    j.arch = workload::ArchType::Pearl;
    j.num_cnodes = std::numeric_limits<int>::max();
    j.num_ps = std::numeric_limits<int>::max();
    j.features.batch_size = std::numeric_limits<double>::max();
    j.features.flop_count = std::numeric_limits<double>::max();
    j.features.mem_access_bytes = std::numeric_limits<double>::max();
    j.features.input_bytes = std::numeric_limits<double>::max();
    j.features.comm_bytes = std::numeric_limits<double>::max();
    j.features.embedding_comm_bytes =
        std::numeric_limits<double>::max();
    j.features.dense_weight_bytes =
        std::numeric_limits<double>::denorm_min();
    j.features.embedding_weight_bytes =
        std::numeric_limits<double>::max();
    ASSERT_TRUE(j.features.valid());

    std::string csv = toCsv({j});
    // Every row must end in a newline: a truncated render would lose
    // trailing fields or the terminator.
    ASSERT_FALSE(csv.empty());
    EXPECT_EQ(csv.back(), '\n');

    ParseResult r = fromCsv(csv);
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_EQ(r.jobs.size(), 1u);
    EXPECT_EQ(r.jobs[0].id, j.id);
    EXPECT_EQ(r.jobs[0].num_cnodes, j.num_cnodes);
    EXPECT_EQ(r.jobs[0].num_ps, j.num_ps);
    EXPECT_EQ(r.jobs[0].features.comm_bytes, j.features.comm_bytes);
    EXPECT_EQ(r.jobs[0].features.dense_weight_bytes,
              j.features.dense_weight_bytes);
    EXPECT_EQ(csv, toCsv(r.jobs));
}

TEST(TraceIoTest, ShortestFormattingRoundTripsExactDoubles)
{
    // The writer emits the shortest decimal that parses back to the
    // same bits; spot-check classic troublemakers.
    for (double v : {0.1, 1.0 / 3.0, 2.2250738585072011e-308,
                     9007199254740993.0, 1e22, 1.7e308}) {
        TrainingJob j;
        j.num_cnodes = 1;
        j.features.batch_size = 1.0;
        j.features.flop_count = v;
        ASSERT_TRUE(j.features.valid());
        ParseResult r = fromCsv(toCsv({j}));
        ASSERT_TRUE(r.ok) << r.error;
        ASSERT_EQ(r.jobs.size(), 1u);
        EXPECT_EQ(r.jobs[0].features.flop_count, v);
    }
}

TEST(ArchFromStringTest, RoundTripsAllNames)
{
    for (workload::ArchType a : workload::kAllArchTypes) {
        auto back = workload::archFromString(workload::toString(a));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, a);
    }
    EXPECT_FALSE(workload::archFromString("nope").has_value());
}

} // namespace
} // namespace paichar::trace
