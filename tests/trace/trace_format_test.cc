/**
 * @file
 * The trace-format contract, exercised property-style: CSV and paib
 * binary round trips are byte-identical across seeds, sizes, every
 * architecture and extreme feature magnitudes; parallel CSV parsing
 * is indistinguishable from serial (jobs and error line numbers
 * alike); malformed binary payloads fail with clean errors.
 *
 * Runs under `ctest -L trace`.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "runtime/thread_pool.h"
#include "trace/binary_trace.h"
#include "trace/synthetic_cluster.h"
#include "trace/trace_io.h"

namespace paichar::trace {
namespace {

using workload::ArchType;
using workload::TrainingJob;

void
expectSameJobs(const std::vector<TrainingJob> &a,
               const std::vector<TrainingJob> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id) << "job " << i;
        EXPECT_EQ(a[i].arch, b[i].arch) << "job " << i;
        EXPECT_EQ(a[i].num_cnodes, b[i].num_cnodes) << "job " << i;
        EXPECT_EQ(a[i].num_ps, b[i].num_ps) << "job " << i;
        const auto &fa = a[i].features, &fb = b[i].features;
        EXPECT_EQ(fa.batch_size, fb.batch_size) << "job " << i;
        EXPECT_EQ(fa.flop_count, fb.flop_count) << "job " << i;
        EXPECT_EQ(fa.mem_access_bytes, fb.mem_access_bytes)
            << "job " << i;
        EXPECT_EQ(fa.input_bytes, fb.input_bytes) << "job " << i;
        EXPECT_EQ(fa.comm_bytes, fb.comm_bytes) << "job " << i;
        EXPECT_EQ(fa.embedding_comm_bytes, fb.embedding_comm_bytes)
            << "job " << i;
        EXPECT_EQ(fa.dense_weight_bytes, fb.dense_weight_bytes)
            << "job " << i;
        EXPECT_EQ(fa.embedding_weight_bytes,
                  fb.embedding_weight_bytes)
            << "job " << i;
    }
}

/** One job per architecture, pushing every numeric field to an edge. */
std::vector<TrainingJob>
extremeJobs()
{
    std::vector<TrainingJob> jobs;
    constexpr double kEdges[] = {
        0.0,
        std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::min(),
        0.1,
        1.0 / 3.0,
        6.02214076e23,
        std::numeric_limits<double>::max(),
    };
    int64_t id = std::numeric_limits<int64_t>::max();
    size_t e = 0;
    auto next = [&] { return kEdges[e++ % std::size(kEdges)]; };
    for (ArchType arch : workload::kAllArchTypes) {
        TrainingJob j;
        j.id = id--;
        j.arch = arch;
        j.num_cnodes = std::numeric_limits<int32_t>::max();
        j.num_ps = std::numeric_limits<int32_t>::max();
        j.features.batch_size =
            std::max(next(), std::numeric_limits<double>::min());
        j.features.flop_count = next();
        j.features.mem_access_bytes = next();
        j.features.input_bytes = next();
        // Invariant: embedding_comm_bytes <= comm_bytes.
        j.features.comm_bytes = std::numeric_limits<double>::max();
        j.features.embedding_comm_bytes = next();
        j.features.dense_weight_bytes = next();
        j.features.embedding_weight_bytes = next();
        EXPECT_TRUE(j.features.valid());
        jobs.push_back(j);
    }
    return jobs;
}

TEST(TraceFormatTest, CsvRoundTripIsByteIdenticalAcrossSeedsAndSizes)
{
    for (uint64_t seed : {1u, 2u, 99u}) {
        for (size_t n : {size_t{0}, size_t{1}, size_t{17},
                         size_t{500}}) {
            SyntheticClusterGenerator gen(seed);
            auto jobs = gen.generate(n, nullptr);
            std::string csv = toCsv(jobs);
            ParseResult r = fromCsv(csv);
            ASSERT_TRUE(r.ok) << r.error;
            expectSameJobs(jobs, r.jobs);
            EXPECT_EQ(csv, toCsv(r.jobs))
                << "seed " << seed << " n " << n;
        }
    }
}

TEST(TraceFormatTest, BinaryRoundTripIsByteIdenticalAcrossSeedsAndSizes)
{
    for (uint64_t seed : {1u, 2u, 99u}) {
        for (size_t n : {size_t{0}, size_t{1}, size_t{17},
                         size_t{500}}) {
            SyntheticClusterGenerator gen(seed);
            auto jobs = gen.generate(n, nullptr);
            std::string bin = toBinary(jobs);
            ParseResult r = fromBinary(bin);
            ASSERT_TRUE(r.ok) << r.error;
            expectSameJobs(jobs, r.jobs);
            EXPECT_EQ(bin, toBinary(r.jobs))
                << "seed " << seed << " n " << n;
        }
    }
}

TEST(TraceFormatTest, AllArchesAndExtremeMagnitudesRoundTripExactly)
{
    auto jobs = extremeJobs();

    std::string csv = toCsv(jobs);
    ParseResult rc = fromCsv(csv);
    ASSERT_TRUE(rc.ok) << rc.error;
    expectSameJobs(jobs, rc.jobs);
    EXPECT_EQ(csv, toCsv(rc.jobs));

    std::string bin = toBinary(jobs);
    ParseResult rb = fromBinary(bin);
    ASSERT_TRUE(rb.ok) << rb.error;
    expectSameJobs(jobs, rb.jobs);
    EXPECT_EQ(bin, toBinary(rb.jobs));
}

TEST(TraceFormatTest, CsvNumberSpellingIsShortestToCharsForm)
{
    TrainingJob j;
    j.id = 42;
    j.arch = ArchType::PsWorker;
    j.num_cnodes = 4;
    j.num_ps = 2;
    j.features.batch_size = 0.1;
    j.features.flop_count = 1.0 / 3.0;
    j.features.mem_access_bytes = std::numeric_limits<double>::max();
    j.features.input_bytes =
        std::numeric_limits<double>::denorm_min();
    j.features.comm_bytes = 1024.0;
    j.features.embedding_comm_bytes = 0.0;
    j.features.dense_weight_bytes = 1e100;
    j.features.embedding_weight_bytes = 2.5;
    ASSERT_TRUE(j.features.valid());

    // Golden spelling: every double is the shortest to_chars form
    // that round-trips exactly. A %.17g fallback used to respell
    // some of these (e.g. "0.10000000000000001").
    std::string csv = toCsv({j});
    std::string row = csv.substr(csv.find('\n') + 1);
    EXPECT_EQ(row,
              "42,PS/Worker,4,2,0.1,0.3333333333333333,"
              "1.7976931348623157e+308,5e-324,1024,0,1e+100,2.5\n");

    // The spelling is a fixed point: toCsv(fromCsv(x)) == x, byte
    // for byte.
    ParseResult r = fromCsv(csv);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(toCsv(r.jobs), csv);
}

TEST(TraceFormatTest, CsvAndBinaryAgree)
{
    SyntheticClusterGenerator gen(7);
    auto jobs = gen.generate(200, nullptr);
    ParseResult via_csv = fromCsv(toCsv(jobs));
    ParseResult via_bin = fromBinary(toBinary(jobs));
    ASSERT_TRUE(via_csv.ok) << via_csv.error;
    ASSERT_TRUE(via_bin.ok) << via_bin.error;
    expectSameJobs(via_csv.jobs, via_bin.jobs);
}

TEST(TraceFormatTest, ParallelCsvParseMatchesSerial)
{
    SyntheticClusterGenerator gen(20181201);
    auto jobs = gen.generate(20000, nullptr);
    std::string csv = toCsv(jobs);

    ParseResult serial = fromCsv(csv, nullptr);
    ASSERT_TRUE(serial.ok) << serial.error;
    expectSameJobs(jobs, serial.jobs);

    runtime::ThreadPool p2(2), p8(8);
    for (runtime::ThreadPool *pool :
         {static_cast<runtime::ThreadPool *>(&p2), &p8}) {
        ParseResult parallel = fromCsv(csv, pool);
        ASSERT_TRUE(parallel.ok) << parallel.error;
        expectSameJobs(serial.jobs, parallel.jobs);
        EXPECT_EQ(toCsv(serial.jobs), toCsv(parallel.jobs));
    }
}

TEST(TraceFormatTest, ParallelCsvErrorsMatchSerialByteForByte)
{
    SyntheticClusterGenerator gen(3);
    auto jobs = gen.generate(20000, nullptr);
    std::string base = toCsv(jobs);

    // Corrupt one row early, one in the middle and one at the end;
    // every pool size must report the identical first error.
    for (double frac : {0.001, 0.5, 0.999}) {
        std::string csv = base;
        size_t pos = csv.find('\n', static_cast<size_t>(
                                        frac * (csv.size() - 2)));
        ASSERT_NE(pos, std::string::npos);
        csv[pos + 1] = 'x'; // clobber the next row's id digit
        ParseResult serial = fromCsv(csv, nullptr);
        ASSERT_FALSE(serial.ok);
        EXPECT_NE(serial.error.find("line "), std::string::npos);

        runtime::ThreadPool p2(2), p8(8);
        for (runtime::ThreadPool *pool :
             {static_cast<runtime::ThreadPool *>(&p2), &p8}) {
            ParseResult parallel = fromCsv(csv, pool);
            ASSERT_FALSE(parallel.ok);
            EXPECT_EQ(serial.error, parallel.error)
                << "at frac " << frac;
        }
    }
}

TEST(TraceFormatTest, LooksBinaryDetectsMagic)
{
    EXPECT_TRUE(looksBinary(toBinary({})));
    EXPECT_FALSE(looksBinary(""));
    EXPECT_FALSE(looksBinary("PAI"));
    EXPECT_FALSE(looksBinary(toCsv({})));
}

TEST(TraceFormatTest, BinaryRejectsBadMagic)
{
    SyntheticClusterGenerator gen(5);
    std::string bin = toBinary(gen.generate(10, nullptr));
    bin[0] = 'X';
    ParseResult r = fromBinary(bin);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("magic"), std::string::npos);
}

TEST(TraceFormatTest, BinaryRejectsWrongVersion)
{
    SyntheticClusterGenerator gen(5);
    std::string bin = toBinary(gen.generate(10, nullptr));
    bin[4] = 42; // version little-endian low byte
    ParseResult r = fromBinary(bin);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("version"), std::string::npos);
    EXPECT_NE(r.error.find("42"), std::string::npos);
}

TEST(TraceFormatTest, BinaryRejectsTruncatedColumns)
{
    SyntheticClusterGenerator gen(5);
    std::string bin = toBinary(gen.generate(10, nullptr));
    ParseResult r = fromBinary(bin.substr(0, bin.size() - 16));
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("truncated"), std::string::npos);

    // Header-only truncation.
    ParseResult rh = fromBinary(bin.substr(0, 10));
    EXPECT_FALSE(rh.ok);
    EXPECT_NE(rh.error.find("truncated"), std::string::npos);

    // Trailing garbage is a size mismatch, not a silent accept.
    ParseResult rt = fromBinary(bin + "junk");
    EXPECT_FALSE(rt.ok);
    EXPECT_NE(rt.error.find("mismatch"), std::string::npos);
}

TEST(TraceFormatTest, BinaryRejectsChecksumMismatch)
{
    SyntheticClusterGenerator gen(5);
    std::string bin = toBinary(gen.generate(10, nullptr));
    bin[bin.size() / 2] ^= 0x40; // flip a bit inside a column
    ParseResult r = fromBinary(bin);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("checksum"), std::string::npos);
}

/** Mirror of the paib word-folded FNV-1a-64, to forge payloads. */
uint64_t
refChecksum(const std::string &data)
{
    constexpr uint64_t kPrime = 1099511628211ull;
    uint64_t h = 14695981039346656037ull;
    size_t words = data.size() / 8;
    for (size_t i = 0; i < words; ++i) {
        uint64_t w;
        std::memcpy(&w, data.data() + i * 8, 8);
        h = (h ^ w) * kPrime;
    }
    for (size_t i = words * 8; i < data.size(); ++i)
        h = (h ^ static_cast<unsigned char>(data[i])) * kPrime;
    return h;
}

/** Patch @p body at @p pos with @p byte and append a valid checksum. */
std::string
forge(std::string bin, size_t pos, char byte)
{
    bin[pos] = byte;
    std::string body = bin.substr(0, bin.size() - 8);
    uint64_t sum = refChecksum(body);
    body.append(reinterpret_cast<const char *>(&sum), sizeof sum);
    return body;
}

TEST(TraceFormatTest, BinaryRejectsInvalidJobValues)
{
    // Forged payloads (checksum fixed up) with out-of-range values
    // must fail the per-job validation, never crash.
    SyntheticClusterGenerator gen(5);
    auto jobs = gen.generate(3, nullptr);
    std::string bin = toBinary(jobs);
    size_t arch_col = 16 + jobs.size() * 8; // after the id column

    ParseResult r = fromBinary(forge(bin, arch_col + 1, 17));
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("job 1"), std::string::npos);
    EXPECT_NE(r.error.find("architecture"), std::string::npos);

    size_t cnode_col = arch_col + jobs.size();
    ParseResult rc = fromBinary(forge(bin, cnode_col, 0));
    EXPECT_FALSE(rc.ok);
    EXPECT_NE(rc.error.find("num_cnodes"), std::string::npos);
}

TEST(TraceFormatTest, TraceFormatNamesRoundTrip)
{
    EXPECT_EQ(toString(TraceFormat::Csv), "csv");
    EXPECT_EQ(toString(TraceFormat::Binary), "bin");
    EXPECT_EQ(traceFormatFromString("csv"), TraceFormat::Csv);
    EXPECT_EQ(traceFormatFromString("bin"), TraceFormat::Binary);
    EXPECT_FALSE(traceFormatFromString("json").has_value());
}

TEST(TraceFormatTest, ReadTraceFileAutoDetectsBothFormats)
{
    SyntheticClusterGenerator gen(13);
    auto jobs = gen.generate(64, nullptr);
    std::string csv_path =
        testing::TempDir() + "/paichar_fmt_test.csv";
    std::string bin_path =
        testing::TempDir() + "/paichar_fmt_test.paib";

    ASSERT_TRUE(writeTraceFile(csv_path, jobs, TraceFormat::Csv));
    ASSERT_TRUE(writeTraceFile(bin_path, jobs, TraceFormat::Binary));

    ParseResult rc = readTraceFile(csv_path);
    ASSERT_TRUE(rc.ok) << rc.error;
    expectSameJobs(jobs, rc.jobs);

    ParseResult rb = readTraceFile(bin_path);
    ASSERT_TRUE(rb.ok) << rb.error;
    expectSameJobs(jobs, rb.jobs);

    std::remove(csv_path.c_str());
    std::remove(bin_path.c_str());
}

TEST(TraceFormatTest, ReadTraceFileReportsMissingFile)
{
    ParseResult r = readTraceFile("/nonexistent/paichar.paib");
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("cannot open"), std::string::npos);
}

// ---------------------------------------------------------------
// readTraceStore: the zero-copy mmap path. Contract: accepts and
// rejects *exactly* what readTraceFile does, with byte-identical
// error text, while keeping paib traces columnar.

/** Write @p bytes to a fresh temp file and return its path. */
std::string
writeTemp(const std::string &name, const std::string &bytes)
{
    std::string path = testing::TempDir() + "/" + name;
    std::FILE *f = std::fopen(path.c_str(), "wb");
    EXPECT_NE(f, nullptr);
    if (!bytes.empty())
        EXPECT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                  bytes.size());
    std::fclose(f);
    return path;
}

/** Both readers on one file; errors must agree byte for byte. */
void
expectStoreParity(const std::string &path)
{
    ParseResult file = readTraceFile(path);
    StoreResult store = readTraceStore(path);
    EXPECT_EQ(file.ok, store.ok) << path;
    EXPECT_EQ(file.error, store.error) << path;
    if (file.ok)
        expectSameJobs(file.jobs, store.store.materialize());
}

TEST(TraceFormatTest, StoreMatchesFileReaderOnValidInputs)
{
    SyntheticClusterGenerator gen(21);
    // 17 jobs: not a multiple of 8, so every column after the arch
    // bytes is misaligned — the store must still decode exactly.
    for (size_t n : {size_t{0}, size_t{17}, size_t{256}}) {
        auto jobs = gen.generate(n, nullptr);
        expectStoreParity(writeTemp("store_ok.paib", toBinary(jobs)));
        expectStoreParity(writeTemp("store_ok.csv", toCsv(jobs)));
    }
}

TEST(TraceFormatTest, StoreKeepsPaibColumnarAndCsvOwned)
{
    SyntheticClusterGenerator gen(22);
    auto jobs = gen.generate(33, nullptr);
    std::string bin_path = writeTemp("store_col.paib", toBinary(jobs));
    std::string csv_path = writeTemp("store_col.csv", toCsv(jobs));

    StoreResult bin = readTraceStore(bin_path);
    ASSERT_TRUE(bin.ok) << bin.error;
#if defined(__unix__) || defined(__APPLE__)
    EXPECT_TRUE(bin.store.columnar());
#endif
    expectSameJobs(jobs, bin.store.materialize());

    StoreResult csv = readTraceStore(csv_path);
    ASSERT_TRUE(csv.ok) << csv.error;
    EXPECT_FALSE(csv.store.columnar());

    std::remove(bin_path.c_str());
    std::remove(csv_path.c_str());
}

TEST(TraceFormatTest, StoreRejectionsMatchFileReaderByteForByte)
{
    SyntheticClusterGenerator gen(23);
    auto jobs = gen.generate(24, nullptr);
    std::string bin = toBinary(jobs);

    // Every malformed-paib class the buffered reader rejects.
    expectStoreParity(
        writeTemp("store_trunc.paib", bin.substr(0, bin.size() - 16)));
    expectStoreParity(
        writeTemp("store_hdr.paib", bin.substr(0, 10)));
    expectStoreParity(writeTemp("store_junk.paib", bin + "junk"));
    {
        std::string bad = bin;
        bad[bad.size() / 2] ^= 0x40;
        expectStoreParity(writeTemp("store_sum.paib", bad));
    }
    {
        std::string bad = bin;
        bad[4] = 42; // unsupported version
        expectStoreParity(writeTemp("store_ver.paib", bad));
    }
    // Valid envelope, invalid row values (checksum forged back).
    size_t arch_col = 16 + jobs.size() * 8;
    expectStoreParity(
        writeTemp("store_row.paib", forge(bin, arch_col + 2, 17)));
    // Malformed CSV goes through the same fallback parser.
    expectStoreParity(
        writeTemp("store_bad.csv", "id,arch\nnot,a,trace\n"));

    StoreResult missing = readTraceStore("/nonexistent/paichar.paib");
    ParseResult missing_file =
        readTraceFile("/nonexistent/paichar.paib");
    EXPECT_FALSE(missing.ok);
    EXPECT_EQ(missing.error, missing_file.error);
}

TEST(TraceFormatTest, StoreParallelRowValidationMatchesSerial)
{
    SyntheticClusterGenerator gen(24);
    auto jobs = gen.generate(5000, nullptr);
    std::string bin = toBinary(jobs);

    // Invalid rows early, middle and late: the parallel validator
    // must report the *first* bad row, same text as serial.
    size_t cnode_col = 16 + jobs.size() * 9;
    for (size_t row : {size_t{3}, jobs.size() / 2,
                       jobs.size() - 1}) {
        std::string path = writeTemp(
            "store_par.paib",
            forge(bin, cnode_col + row * 4 + 3, /*byte=*/0x80));
        StoreResult serial = readTraceStore(path, nullptr);
        ASSERT_FALSE(serial.ok);
        EXPECT_NE(serial.error.find("job " + std::to_string(row)),
                  std::string::npos)
            << serial.error;
        runtime::ThreadPool p2(2), p8(8);
        for (runtime::ThreadPool *pool :
             {static_cast<runtime::ThreadPool *>(&p2), &p8}) {
            StoreResult parallel = readTraceStore(path, pool);
            ASSERT_FALSE(parallel.ok);
            EXPECT_EQ(serial.error, parallel.error);
        }
        std::remove(path.c_str());
    }
}

} // namespace
} // namespace paichar::trace
