/**
 * @file
 * Multi-seed calibration stability: the headline aggregates must hold
 * for *any* seed, not just the one the benches print. Uses wider
 * bands than calibration_test.cc (smaller populations per seed).
 */

#include <gtest/gtest.h>

#include "core/characterization.h"
#include "core/projection.h"
#include "hw/units.h"
#include "trace/synthetic_cluster.h"

namespace paichar::trace {
namespace {

using core::AnalyticalModel;
using core::ClusterCharacterizer;
using core::Level;
using workload::ArchType;

class MultiSeedCalibration : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(MultiSeedCalibration, HeadlineAggregatesAreSeedStable)
{
    AnalyticalModel model(hw::paiCluster());
    SyntheticClusterGenerator gen(GetParam());
    ClusterCharacterizer ch(model, gen.generate(8000));

    // Fig 5: PS/Worker resource dominance.
    auto c = ch.constitution();
    EXPECT_NEAR(c.cnodeShare(ArchType::PsWorker), 0.81, 0.08);
    EXPECT_NEAR(c.jobShare(ArchType::PsWorker), 0.29, 0.03);

    // Fig 7: comm shares at both levels.
    auto cl = ch.avgBreakdown(std::nullopt, Level::CNode);
    auto jl = ch.avgBreakdown(std::nullopt, Level::Job);
    EXPECT_NEAR(cl[1], 0.62, 0.07);
    EXPECT_NEAR(jl[1], 0.21, 0.05);

    // Fig 6b: model-size distribution.
    auto w = ch.weightSizeCdf(std::nullopt);
    EXPECT_NEAR(w.probAtOrBelow(10 * hw::kGB), 0.93, 0.06);

    // Fig 9a: projection loser fraction.
    core::ArchitectureProjector proj(model);
    int n = 0, losers = 0;
    for (const auto &job : ch.jobs()) {
        if (job.arch != ArchType::PsWorker)
            continue;
        ++n;
        losers += proj.project(job, ArchType::AllReduceLocal)
                      .single_node_speedup <= 1.0;
    }
    EXPECT_NEAR(static_cast<double>(losers) / n, 0.226, 0.09);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiSeedCalibration,
                         ::testing::Values(1ull, 424242ull,
                                           20190101ull,
                                           0xdeadbeefull));

} // namespace
} // namespace paichar::trace
