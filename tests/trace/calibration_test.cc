/**
 * @file
 * Calibration tests: the synthetic trace must reproduce the paper's
 * published aggregate statistics (Sec III). Each expectation cites the
 * paper number it targets; bands reflect that we match a population
 * statistic, not an exact value.
 */

#include <gtest/gtest.h>

#include "core/characterization.h"
#include "core/projection.h"
#include "core/sweep.h"
#include "hw/units.h"
#include "trace/synthetic_cluster.h"

namespace paichar::trace {
namespace {

using core::AnalyticalModel;
using core::ArchitectureProjector;
using core::ClusterCharacterizer;
using core::Component;
using core::Level;
using workload::ArchType;
using workload::TrainingJob;

class CalibrationTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        spec_ = new hw::ClusterSpec(hw::paiCluster());
        model_ = new AnalyticalModel(*spec_);
        SyntheticClusterGenerator gen(20181201);
        characterizer_ =
            new ClusterCharacterizer(*model_, gen.generate(20000));
    }

    static void
    TearDownTestSuite()
    {
        delete characterizer_;
        delete model_;
        delete spec_;
        characterizer_ = nullptr;
        model_ = nullptr;
        spec_ = nullptr;
    }

    static hw::ClusterSpec *spec_;
    static AnalyticalModel *model_;
    static ClusterCharacterizer *characterizer_;
};

hw::ClusterSpec *CalibrationTest::spec_ = nullptr;
AnalyticalModel *CalibrationTest::model_ = nullptr;
ClusterCharacterizer *CalibrationTest::characterizer_ = nullptr;

TEST_F(CalibrationTest, PsWorkerHolds81PercentOfCnodes)
{
    // Fig 5(b): "PS/Worker jobs consume the largest portion of
    // resources, up to 81%".
    auto c = characterizer_->constitution();
    EXPECT_NEAR(c.cnodeShare(ArchType::PsWorker), 0.81, 0.05);
}

TEST_F(CalibrationTest, HalfOfPsJobsExceedEightCnodes)
{
    // Fig 6(a): "about half of PS/Worker workloads are placed on more
    // than 8 cNodes".
    auto cdf = characterizer_->cnodeCountCdf(ArchType::PsWorker);
    EXPECT_NEAR(cdf.probAtOrBelow(8.0), 0.5, 0.08);
}

TEST_F(CalibrationTest, LargeJobsRareButResourceHungry)
{
    // Sec III-A: "only 0.7% of all workloads have more than 128
    // cNodes; however, they consume more than 16% computation
    // resource".
    const auto &jobs = characterizer_->jobs();
    int64_t big_jobs = 0, big_cnodes = 0, all_cnodes = 0;
    for (const auto &j : jobs) {
        all_cnodes += j.num_cnodes;
        if (j.num_cnodes > 128) {
            ++big_jobs;
            big_cnodes += j.num_cnodes;
        }
    }
    double job_frac =
        static_cast<double>(big_jobs) / static_cast<double>(jobs.size());
    double res_frac = static_cast<double>(big_cnodes) /
                      static_cast<double>(all_cnodes);
    EXPECT_NEAR(job_frac, 0.007, 0.004);
    EXPECT_GT(res_frac, 0.16);
}

TEST_F(CalibrationTest, NinetyPercentOfModelsUnder10Gb)
{
    // Sec III-D: "90% jobs train small-scale models, i.e., model size
    // less than 10GB", with a 100-300 GB tail.
    auto cdf = characterizer_->weightSizeCdf(std::nullopt);
    EXPECT_NEAR(cdf.probAtOrBelow(10.0 * hw::kGB), 0.90, 0.06);
    EXPECT_GT(cdf.max(), 100.0 * hw::kGB);
}

TEST_F(CalibrationTest, CnodeLevelCommShareIsAbout62Percent)
{
    // Abstract / Sec III-D: "weight/gradient communication ... takes
    // almost 62% of the total execution time among all our workloads
    // on average" (cNode level).
    auto avg = characterizer_->avgBreakdown(std::nullopt, Level::CNode);
    EXPECT_NEAR(avg[1], 0.62, 0.05); // kAllComponents[1] = weights
}

TEST_F(CalibrationTest, JobLevelCommShareIsAbout22Percent)
{
    // Sec III-B: "On average, weight/gradient communication
    // contributes approximately 22% to the total execution time."
    auto avg = characterizer_->avgBreakdown(std::nullopt, Level::Job);
    EXPECT_NEAR(avg[1], 0.22, 0.05);
}

TEST_F(CalibrationTest, ComputationSharesMatchSecIIID)
{
    // Sec III-D: computation ~35% of cNode-level time; compute-bound
    // ~13%, memory-bound ~22% (memory-bound exceeds compute-bound).
    auto avg = characterizer_->avgBreakdown(std::nullopt, Level::CNode);
    double compute_bound = avg[2], memory_bound = avg[3];
    EXPECT_NEAR(compute_bound + memory_bound, 0.35, 0.06);
    EXPECT_GT(memory_bound, compute_bound);
}

TEST_F(CalibrationTest, FortyPercentOfPsJobsSpendOver80PercentInComm)
{
    // Sec III-B: "more than 40% PS/Worker jobs spend more than 80%
    // time in communication".
    auto cdf = characterizer_->componentCdf(
        Component::WeightTraffic, ArchType::PsWorker, Level::Job);
    double frac_above = 1.0 - cdf.probAtOrBelow(0.8);
    EXPECT_GT(frac_above, 0.35);
    EXPECT_LT(frac_above, 0.60);
}

TEST_F(CalibrationTest, DataIoSharesMatchSecIIIB)
{
    // Sec III-B: data I/O ~3% for distributed workloads (cNode
    // level), ~10% for 1w1g, and ~5% of 1w1g jobs spend > 50% on
    // input movement.
    auto ps = characterizer_->avgBreakdown(ArchType::PsWorker,
                                           Level::CNode);
    EXPECT_NEAR(ps[0], 0.03, 0.025);
    auto w1 = characterizer_->avgBreakdown(ArchType::OneWorkerOneGpu,
                                           Level::Job);
    EXPECT_NEAR(w1[0], 0.10, 0.04);
    auto cdf = characterizer_->componentCdf(
        Component::DataIo, ArchType::OneWorkerOneGpu, Level::Job);
    EXPECT_NEAR(1.0 - cdf.probAtOrBelow(0.5), 0.05, 0.03);
}

TEST_F(CalibrationTest, AllReduceLocalProjectionMatchesFig9a)
{
    // Fig 9(a): ~22.6% of PS jobs see no single-cNode speedup; ~40.2%
    // see no overall-throughput gain (i.e. ~60% improve).
    ArchitectureProjector proj(*model_);
    int n = 0, no_single = 0, no_tp = 0;
    for (const auto &j : characterizer_->jobs()) {
        if (j.arch != ArchType::PsWorker)
            continue;
        ++n;
        auto r = proj.project(j, ArchType::AllReduceLocal);
        no_single += r.single_node_speedup <= 1.0;
        no_tp += r.throughput_speedup <= 1.0;
    }
    ASSERT_GT(n, 1000);
    EXPECT_NEAR(static_cast<double>(no_single) / n, 0.226, 0.08);
    EXPECT_NEAR(static_cast<double>(no_tp) / n, 0.402, 0.08);
}

TEST_F(CalibrationTest, AllReduceClusterProjectionMatchesFig9b)
{
    // Fig 9(b): ~67.9% of PS jobs gain from AllReduce-Cluster; among
    // jobs NOT sped up by AllReduce-Local, ~37.8% gain.
    ArchitectureProjector proj(*model_);
    int n = 0, sped = 0, local_losers = 0, rescued = 0;
    for (const auto &j : characterizer_->jobs()) {
        if (j.arch != ArchType::PsWorker)
            continue;
        ++n;
        auto rc = proj.project(j, ArchType::AllReduceCluster);
        auto rl = proj.project(j, ArchType::AllReduceLocal);
        sped += rc.throughput_speedup > 1.0;
        if (rl.throughput_speedup <= 1.0) {
            ++local_losers;
            rescued += rc.throughput_speedup > 1.0;
        }
    }
    ASSERT_GT(local_losers, 100);
    EXPECT_NEAR(static_cast<double>(sped) / n, 0.679, 0.10);
    EXPECT_NEAR(static_cast<double>(rescued) / local_losers, 0.378,
                0.15);
}

TEST_F(CalibrationTest, EthernetUpgradeYields1Point7xOnPsJobs)
{
    // Abstract: "on average 1.7X speedup can be achieved when Ethernet
    // bandwidth is upgraded from 25 Gbps to 100 Gbps".
    std::vector<TrainingJob> ps;
    for (const auto &j : characterizer_->jobs()) {
        if (j.arch == ArchType::PsWorker)
            ps.push_back(j);
    }
    core::HardwareSweep sweep(*spec_);
    double s = sweep.avgSpeedup(ps, hw::Resource::Ethernet, 100.0);
    EXPECT_NEAR(s, 1.7, 0.15);
}

TEST_F(CalibrationTest, BottleneckShiftAfterProjection)
{
    // Fig 10: after mapping PS jobs to AllReduce-Local, the data-I/O
    // (PCIe) share grows the most and comm shrinks drastically.
    ArchitectureProjector proj(*model_);
    double comm_before = 0, comm_after = 0, data_before = 0,
           data_after = 0;
    int n = 0;
    for (const auto &j : characterizer_->jobs()) {
        if (j.arch != ArchType::PsWorker)
            continue;
        ++n;
        auto b0 = model_->breakdown(j);
        auto b1 = model_->breakdown(
            proj.remap(j, ArchType::AllReduceLocal));
        comm_before += b0.fraction(Component::WeightTraffic);
        comm_after += b1.fraction(Component::WeightTraffic);
        data_before += b0.fraction(Component::DataIo);
        data_after += b1.fraction(Component::DataIo);
    }
    EXPECT_LT(comm_after / n, 0.35 * (comm_before / n));
    EXPECT_GT(data_after / n, 2.0 * (data_before / n));
}

} // namespace
} // namespace paichar::trace
