/**
 * @file
 * Structural tests for the synthetic trace generator: determinism,
 * per-architecture invariants, and feature validity.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "hw/units.h"
#include "trace/synthetic_cluster.h"

namespace paichar::trace {
namespace {

using workload::ArchType;
using workload::TrainingJob;

TEST(SyntheticClusterTest, DeterministicForEqualSeeds)
{
    SyntheticClusterGenerator a(123), b(123);
    auto ja = a.generate(200);
    auto jb = b.generate(200);
    ASSERT_EQ(ja.size(), jb.size());
    for (size_t i = 0; i < ja.size(); ++i) {
        EXPECT_EQ(ja[i].arch, jb[i].arch);
        EXPECT_EQ(ja[i].num_cnodes, jb[i].num_cnodes);
        EXPECT_DOUBLE_EQ(ja[i].features.flop_count,
                         jb[i].features.flop_count);
        EXPECT_DOUBLE_EQ(ja[i].features.comm_bytes,
                         jb[i].features.comm_bytes);
    }
}

TEST(SyntheticClusterTest, DifferentSeedsDiffer)
{
    SyntheticClusterGenerator a(1), b(2);
    auto ja = a.generate(100);
    auto jb = b.generate(100);
    int same = 0;
    for (size_t i = 0; i < ja.size(); ++i)
        same += ja[i].features.flop_count == jb[i].features.flop_count;
    EXPECT_LT(same, 5);
}

TEST(SyntheticClusterTest, IdsAreSequential)
{
    SyntheticClusterGenerator gen(5);
    auto jobs = gen.generate(50);
    for (size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(jobs[i].id, static_cast<int64_t>(i));
}

TEST(SyntheticClusterTest, PerArchitectureInvariants)
{
    SyntheticClusterGenerator gen(7);
    auto jobs = gen.generate(5000);
    const auto &p = gen.profile();
    for (const TrainingJob &job : jobs) {
        ASSERT_TRUE(job.features.valid());
        switch (job.arch) {
          case ArchType::OneWorkerOneGpu:
            EXPECT_EQ(job.num_cnodes, 1);
            EXPECT_EQ(job.num_ps, 0);
            EXPECT_DOUBLE_EQ(job.features.comm_bytes, 0.0);
            EXPECT_DOUBLE_EQ(job.features.embedding_weight_bytes, 0.0);
            break;
          case ArchType::OneWorkerMultiGpu:
            EXPECT_TRUE(job.num_cnodes == 2 || job.num_cnodes == 4 ||
                        job.num_cnodes == 8);
            EXPECT_GT(job.features.comm_bytes, 0.0);
            break;
          case ArchType::PsWorker:
            EXPECT_GE(job.num_cnodes, 1);
            EXPECT_LE(job.num_cnodes, p.ps_cnodes_max);
            EXPECT_GE(job.num_ps, 1);
            EXPECT_GT(job.features.comm_bytes, 0.0);
            break;
          default:
            FAIL() << "unexpected architecture "
                   << toString(job.arch);
        }
        EXPECT_GE(job.features.dense_weight_bytes,
                  p.weight_floor_bytes);
        EXPECT_LE(job.features.embedding_weight_bytes,
                  p.emb_weight_cap_gb * 1e9);
        EXPECT_GE(job.features.batch_size,
                  std::pow(2.0, p.batch_log2_lo) - 1);
        EXPECT_LE(job.features.batch_size,
                  std::pow(2.0, p.batch_log2_hi) + 1);
    }
}

TEST(SyntheticClusterTest, ArchitectureMixMatchesProfile)
{
    SyntheticClusterGenerator gen(11);
    const size_t n = 20000;
    auto jobs = gen.generate(n);
    size_t c1 = 0, cn = 0, cps = 0;
    for (const auto &j : jobs) {
        c1 += j.arch == ArchType::OneWorkerOneGpu;
        cn += j.arch == ArchType::OneWorkerMultiGpu;
        cps += j.arch == ArchType::PsWorker;
    }
    const auto &p = gen.profile();
    EXPECT_NEAR(static_cast<double>(c1) / n, p.frac_1w1g, 0.015);
    EXPECT_NEAR(static_cast<double>(cn) / n, p.frac_1wng, 0.01);
    EXPECT_NEAR(static_cast<double>(cps) / n, p.frac_ps_worker, 0.015);
}

TEST(SyntheticClusterTest, SparsePsJobsHaveLargeEmbeddings)
{
    SyntheticClusterGenerator gen(13);
    auto jobs = gen.generate(20000);
    int sparse = 0, ps = 0;
    for (const auto &j : jobs) {
        if (j.arch != ArchType::PsWorker)
            continue;
        ++ps;
        if (j.features.embedding_weight_bytes > 0.0) {
            ++sparse;
            // Embedding tables dwarf per-step traffic.
            EXPECT_GT(j.features.embedding_weight_bytes,
                      j.features.comm_bytes);
        }
    }
    ASSERT_GT(ps, 0);
    EXPECT_NEAR(static_cast<double>(sparse) / ps,
                gen.profile().ps_sparse_prob, 0.03);
}

} // namespace
} // namespace paichar::trace
