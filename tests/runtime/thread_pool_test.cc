/**
 * @file
 * Unit tests for the runtime layer: task completion, futures and
 * exception propagation, graceful shutdown under load, nested-loop
 * safety, and the deterministic parallel helpers.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/parallel.h"
#include "runtime/thread_pool.h"

namespace paichar::runtime {
namespace {

TEST(ThreadPoolTest, CompletesEveryPostedTask)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(4);
        for (int i = 0; i < 500; ++i)
            pool.post([&] { ++counter; });
        // Destructor drains the queue before joining.
    }
    EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPoolTest, SubmitDeliversResults)
{
    ThreadPool pool(2);
    auto f1 = pool.submit([] { return 42; });
    auto f2 = pool.submit([] { return std::string("pai"); });
    EXPECT_EQ(f1.get(), 42);
    EXPECT_EQ(f2.get(), "pai");
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions)
{
    ThreadPool pool(2);
    auto f = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
    // The pool stays usable after a failed task.
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ShutdownUnderLoadCompletesQueuedTasks)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i) {
            pool.post([&] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
                ++done;
            });
        }
    }
    EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, SizeIsClampedToAtLeastOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1);
    EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, OnWorkerThreadIsVisibleInsideTasks)
{
    EXPECT_FALSE(ThreadPool::onWorkerThread());
    ThreadPool pool(1);
    EXPECT_TRUE(
        pool.submit([] { return ThreadPool::onWorkerThread(); })
            .get());
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<int> hits(10000, 0);
    parallelFor(&pool, hits.size(), [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ParallelForTest, SerialPathsMatchPooledPath)
{
    std::vector<int> serial(777, 0), pooled(777, 0);
    parallelFor(nullptr, serial.size(),
                [&](size_t i) { serial[i] = static_cast<int>(i) * 3; });
    ThreadPool pool(8);
    parallelFor(&pool, pooled.size(),
                [&](size_t i) { pooled[i] = static_cast<int>(i) * 3; });
    EXPECT_EQ(serial, pooled);
}

TEST(ParallelForTest, PropagatesBodyExceptions)
{
    ThreadPool pool(4);
    EXPECT_THROW(parallelFor(&pool, 5000,
                             [&](size_t i) {
                                 if (i == 1234)
                                     throw std::invalid_argument(
                                         "bad index");
                             }),
                 std::invalid_argument);
    // The pool survives for later loops.
    std::atomic<int> n{0};
    parallelFor(&pool, 100, [&](size_t) { ++n; });
    EXPECT_EQ(n.load(), 100);
}

TEST(ParallelForTest, NestedLoopsRunInlineWithoutDeadlock)
{
    ThreadPool pool(2);
    std::atomic<int> inner{0};
    auto f = pool.submit([&] {
        parallelFor(&pool, 256, [&](size_t) { ++inner; });
    });
    f.get();
    EXPECT_EQ(inner.load(), 256);
}

TEST(ParallelMapTest, MapsByIndexInOrder)
{
    ThreadPool pool(4);
    auto out = parallelMap<int>(&pool, 1000, [](size_t i) {
        return static_cast<int>(i * i % 97);
    });
    ASSERT_EQ(out.size(), 1000u);
    for (size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i], static_cast<int>(i * i % 97));
}

TEST(ParallelReduceTest, BitIdenticalAcrossThreadCounts)
{
    // Floating-point accumulation with awkward magnitudes: the fixed
    // chunking must make every thread count agree to the last bit.
    std::vector<double> values(50000);
    for (size_t i = 0; i < values.size(); ++i)
        values[i] = 1e-7 + 1e3 * static_cast<double>(i % 13) +
                    (i % 2 ? 1e-9 : -1e-9);

    auto sum = [&](ThreadPool *pool) {
        return parallelReduce(
            pool, values.size(), 0.0,
            [&](size_t lo, size_t hi) {
                double s = 0.0;
                for (size_t i = lo; i < hi; ++i)
                    s += values[i];
                return s;
            },
            [](double a, double b) { return a + b; });
    };

    double serial = sum(nullptr);
    ThreadPool p2(2), p8(8);
    EXPECT_EQ(serial, sum(&p2));
    EXPECT_EQ(serial, sum(&p8));
}

TEST(ParallelReduceTest, EmptyRangeReturnsInit)
{
    ThreadPool pool(2);
    double r = parallelReduce(
        &pool, 0, 3.5, [](size_t, size_t) { return 1.0; },
        [](double a, double b) { return a + b; });
    EXPECT_EQ(r, 3.5);
}

TEST(ThreadCountTest, SetThreadCountOverridesResolution)
{
    setThreadCount(3);
    EXPECT_EQ(threadCount(), 3);
    ThreadPool *pool = globalPool();
    ASSERT_NE(pool, nullptr);
    EXPECT_EQ(pool->size(), 3);

    setThreadCount(1);
    EXPECT_EQ(threadCount(), 1);
    EXPECT_EQ(globalPool(), nullptr);

    setThreadCount(0); // back to env / hardware resolution
    EXPECT_GE(threadCount(), 1);
}

TEST(ThreadCountTest, EnvOverrideIsHonored)
{
    ASSERT_EQ(setenv("PAICHAR_THREADS", "5", 1), 0);
    setThreadCount(0); // drop cache so the env var is re-read
    EXPECT_EQ(threadCount(), 5);
    ASSERT_EQ(unsetenv("PAICHAR_THREADS"), 0);
    setThreadCount(0);
    EXPECT_GE(threadCount(), 1);
}

} // namespace
} // namespace paichar::runtime
