/**
 * @file
 * The runtime layer's headline guarantee: every analysis result is
 * bit-identical regardless of thread count. Runs trace generation,
 * the full ClusterCharacterizer query surface, and the Table III
 * hardware sweep on a 10k-job synthetic trace with the serial path,
 * a 2-thread pool, and an (oversubscribed) 8-thread pool, and asserts
 * exact equality on every double produced.
 */

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/arch_selection.h"
#include "core/characterization.h"
#include "core/projection.h"
#include "core/sweep.h"
#include "hw/hardware_config.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"
#include "trace/synthetic_cluster.h"
#include "trace/trace_io.h"

namespace paichar {
namespace {

using workload::ArchType;
using workload::TrainingJob;

constexpr uint64_t kSeed = 20181201;
constexpr size_t kJobs = 10000;

void
expectSameCdf(const stats::WeightedCdf &a, const stats::WeightedCdf &b,
              const char *what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    ASSERT_EQ(a.empty(), b.empty()) << what;
    EXPECT_EQ(a.totalWeight(), b.totalWeight()) << what;
    if (a.empty())
        return;
    EXPECT_EQ(a.min(), b.min()) << what;
    EXPECT_EQ(a.max(), b.max()) << what;
    EXPECT_EQ(a.mean(), b.mean()) << what;
    for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99})
        EXPECT_EQ(a.quantile(q), b.quantile(q)) << what << " q" << q;
}

void
expectSameJobs(const std::vector<TrainingJob> &a,
               const std::vector<TrainingJob> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id) << "job " << i;
        EXPECT_EQ(a[i].arch, b[i].arch) << "job " << i;
        EXPECT_EQ(a[i].num_cnodes, b[i].num_cnodes) << "job " << i;
        EXPECT_EQ(a[i].num_ps, b[i].num_ps) << "job " << i;
        EXPECT_EQ(a[i].features.batch_size, b[i].features.batch_size)
            << "job " << i;
        EXPECT_EQ(a[i].features.flop_count, b[i].features.flop_count)
            << "job " << i;
        EXPECT_EQ(a[i].features.mem_access_bytes,
                  b[i].features.mem_access_bytes)
            << "job " << i;
        EXPECT_EQ(a[i].features.input_bytes, b[i].features.input_bytes)
            << "job " << i;
        EXPECT_EQ(a[i].features.comm_bytes, b[i].features.comm_bytes)
            << "job " << i;
        EXPECT_EQ(a[i].features.embedding_comm_bytes,
                  b[i].features.embedding_comm_bytes)
            << "job " << i;
    }
}

TEST(DeterminismTest, TraceGenerationMatchesAcrossThreadCounts)
{
    trace::SyntheticClusterGenerator gen(kSeed);
    auto serial = gen.generate(kJobs, nullptr);

    runtime::ThreadPool p2(2), p8(8);
    expectSameJobs(serial, gen.generate(kJobs, &p2));
    expectSameJobs(serial, gen.generate(kJobs, &p8));
}

TEST(DeterminismTest, CharacterizerMatchesAcrossThreadCounts)
{
    auto spec = hw::paiCluster();
    core::AnalyticalModel model(spec);
    trace::SyntheticClusterGenerator gen(kSeed);
    auto jobs = gen.generate(kJobs, nullptr);

    runtime::ThreadPool p2(2), p8(8);
    core::ClusterCharacterizer serial(model, jobs, nullptr);
    core::ClusterCharacterizer two(model, jobs, &p2);
    core::ClusterCharacterizer eight(model, jobs, &p8);

    for (size_t i = 0; i < jobs.size(); i += 997) {
        const auto &b0 = serial.breakdownOf(i);
        for (const auto *other : {&two, &eight}) {
            const auto &b = other->breakdownOf(i);
            EXPECT_EQ(b0.t_data, b.t_data) << "job " << i;
            EXPECT_EQ(b0.t_comp_flops, b.t_comp_flops) << "job " << i;
            EXPECT_EQ(b0.t_comp_mem, b.t_comp_mem) << "job " << i;
            EXPECT_EQ(b0.t_weight, b.t_weight) << "job " << i;
            EXPECT_EQ(b0.t_weight_ethernet, b.t_weight_ethernet)
                << "job " << i;
        }
    }

    std::vector<std::optional<ArchType>> arches = {
        std::nullopt, ArchType::OneWorkerOneGpu,
        ArchType::OneWorkerMultiGpu, ArchType::PsWorker};
    for (const auto *other : {&two, &eight}) {
        for (auto arch : arches) {
            for (auto level : {core::Level::Job, core::Level::CNode}) {
                auto a0 = serial.avgBreakdown(arch, level);
                auto a1 = other->avgBreakdown(arch, level);
                for (size_t k = 0; k < a0.size(); ++k)
                    EXPECT_EQ(a0[k], a1[k]) << "avgBreakdown[" << k
                                            << "]";
                for (auto c : core::kAllComponents) {
                    expectSameCdf(serial.componentCdf(c, arch, level),
                                  other->componentCdf(c, arch, level),
                                  "componentCdf");
                }
            }
        }
        for (auto level : {core::Level::Job, core::Level::CNode}) {
            for (auto h : core::kAllHwComponents) {
                expectSameCdf(serial.hwComponentCdf(h, level),
                              other->hwComponentCdf(h, level),
                              "hwComponentCdf");
            }
        }
        expectSameCdf(serial.cnodeCountCdf(ArchType::PsWorker),
                      other->cnodeCountCdf(ArchType::PsWorker),
                      "cnodeCountCdf");
        expectSameCdf(serial.weightSizeCdf(std::nullopt),
                      other->weightSizeCdf(std::nullopt),
                      "weightSizeCdf");

        auto c0 = serial.constitution();
        auto c1 = other->constitution();
        EXPECT_EQ(c0.total_jobs, c1.total_jobs);
        EXPECT_EQ(c0.total_cnodes, c1.total_cnodes);
        EXPECT_EQ(c0.job_counts, c1.job_counts);
        EXPECT_EQ(c0.cnode_counts, c1.cnode_counts);
    }
}

TEST(DeterminismTest, HardwareSweepMatchesAcrossThreadCounts)
{
    auto spec = hw::paiCluster();
    trace::SyntheticClusterGenerator gen(kSeed);
    auto all = gen.generate(kJobs, nullptr);
    std::vector<TrainingJob> jobs;
    for (const auto &j : all) {
        if (j.arch == ArchType::PsWorker)
            jobs.push_back(j);
    }
    ASSERT_FALSE(jobs.empty());

    runtime::ThreadPool p2(2), p8(8);
    core::HardwareSweep serial(spec, nullptr);
    core::HardwareSweep two(spec, &p2);
    core::HardwareSweep eight(spec, &p8);

    auto s0 = serial.run(jobs);
    for (const auto *other : {&two, &eight}) {
        auto s1 = other->run(jobs);
        ASSERT_EQ(s0.size(), s1.size());
        for (size_t i = 0; i < s0.size(); ++i) {
            EXPECT_EQ(s0[i].resource, s1[i].resource);
            ASSERT_EQ(s0[i].points.size(), s1[i].points.size());
            for (size_t k = 0; k < s0[i].points.size(); ++k) {
                EXPECT_EQ(s0[i].points[k].resource,
                          s1[i].points[k].resource);
                EXPECT_EQ(s0[i].points[k].value, s1[i].points[k].value);
                EXPECT_EQ(s0[i].points[k].normalized,
                          s1[i].points[k].normalized);
                EXPECT_EQ(s0[i].points[k].avg_speedup,
                          s1[i].points[k].avg_speedup);
            }
        }
        EXPECT_EQ(
            serial.avgSpeedup(jobs, hw::Resource::Ethernet, 100.0),
            other->avgSpeedup(jobs, hw::Resource::Ethernet, 100.0));
    }
}

TEST(DeterminismTest, BatchProjectionMatchesAcrossThreadCounts)
{
    auto spec = hw::paiCluster();
    core::AnalyticalModel model(spec);
    trace::SyntheticClusterGenerator gen(kSeed);
    auto all = gen.generate(kJobs, nullptr);
    std::vector<TrainingJob> jobs;
    for (const auto &j : all) {
        if (j.arch == ArchType::PsWorker)
            jobs.push_back(j);
    }
    ASSERT_FALSE(jobs.empty());

    core::ArchitectureProjector proj(model);
    runtime::ThreadPool p8(8);
    auto r0 = proj.projectAll(jobs, ArchType::AllReduceLocal,
                              core::OverlapMode::NonOverlap, nullptr);
    auto r1 = proj.projectAll(jobs, ArchType::AllReduceLocal,
                              core::OverlapMode::NonOverlap, &p8);
    ASSERT_EQ(r0.size(), r1.size());
    for (size_t i = 0; i < r0.size(); ++i) {
        EXPECT_EQ(r0[i].old_step_time, r1[i].old_step_time)
            << "job " << i;
        EXPECT_EQ(r0[i].new_step_time, r1[i].new_step_time)
            << "job " << i;
        EXPECT_EQ(r0[i].single_node_speedup, r1[i].single_node_speedup)
            << "job " << i;
        EXPECT_EQ(r0[i].throughput_speedup, r1[i].throughput_speedup)
            << "job " << i;
        EXPECT_EQ(r0[i].projected.arch, r1[i].projected.arch)
            << "job " << i;
        EXPECT_EQ(r0[i].projected.num_cnodes, r1[i].projected.num_cnodes)
            << "job " << i;
    }

    core::ArchitectureAdvisor advisor(model, 32.0 * (1ull << 30));
    auto a0 = advisor.recommendAll(jobs, core::OverlapMode::NonOverlap,
                                   nullptr);
    auto a1 = advisor.recommendAll(jobs, core::OverlapMode::NonOverlap,
                                   &p8);
    ASSERT_EQ(a0.size(), a1.size());
    for (size_t i = 0; i < a0.size(); ++i) {
        EXPECT_EQ(a0[i].arch, a1[i].arch) << "job " << i;
        EXPECT_EQ(a0[i].step_time, a1[i].step_time) << "job " << i;
        EXPECT_EQ(a0[i].throughput, a1[i].throughput) << "job " << i;
    }
}

TEST(DeterminismTest, CsvParseMatchesAcrossThreadCounts)
{
    trace::SyntheticClusterGenerator gen(kSeed);
    auto jobs = gen.generate(kJobs, nullptr);
    std::string csv = trace::toCsv(jobs);

    auto serial = trace::fromCsv(csv, nullptr);
    ASSERT_TRUE(serial.ok) << serial.error;
    expectSameJobs(jobs, serial.jobs);

    runtime::ThreadPool p2(2), p8(8);
    for (runtime::ThreadPool *pool :
         {static_cast<runtime::ThreadPool *>(&p2), &p8}) {
        auto parallel = trace::fromCsv(csv, pool);
        ASSERT_TRUE(parallel.ok) << parallel.error;
        expectSameJobs(serial.jobs, parallel.jobs);
    }

    // Errors carry the same line number for every thread count.
    std::string bad = csv;
    size_t pos = bad.find('\n', bad.size() / 2);
    ASSERT_NE(pos, std::string::npos);
    bad[pos + 1] = '!';
    auto e0 = trace::fromCsv(bad, nullptr);
    ASSERT_FALSE(e0.ok);
    for (runtime::ThreadPool *pool :
         {static_cast<runtime::ThreadPool *>(&p2), &p8}) {
        auto e1 = trace::fromCsv(bad, pool);
        ASSERT_FALSE(e1.ok);
        EXPECT_EQ(e0.error, e1.error);
    }
}

TEST(AlignedChunksTest, CoversRangeWithSnappedBoundaries)
{
    // Records of length 10; snap moves a tentative boundary forward
    // to the next multiple of 10.
    auto snap = [](size_t pos) { return ((pos + 9) / 10) * 10; };
    for (size_t n : {size_t{0}, size_t{1}, size_t{10}, size_t{95},
                     size_t{1000}}) {
        for (size_t max_chunks : {size_t{1}, size_t{3}, size_t{7},
                                  size_t{64}}) {
            auto chunks = runtime::alignedChunks(n, max_chunks, snap);
            if (n == 0) {
                EXPECT_TRUE(chunks.empty());
                continue;
            }
            ASSERT_FALSE(chunks.empty());
            EXPECT_LE(chunks.size(), max_chunks);
            EXPECT_EQ(chunks.front().first, 0u);
            EXPECT_EQ(chunks.back().second, n);
            for (size_t i = 0; i < chunks.size(); ++i) {
                EXPECT_LT(chunks[i].first, chunks[i].second);
                if (i > 0) {
                    EXPECT_EQ(chunks[i - 1].second, chunks[i].first);
                }
                // Interior boundaries sit on record starts.
                if (chunks[i].second != n) {
                    EXPECT_EQ(chunks[i].second % 10, 0u);
                }
            }
        }
    }
}

} // namespace
} // namespace paichar
