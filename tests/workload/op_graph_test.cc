/**
 * @file
 * Tests for the operation dataflow graph.
 */

#include <gtest/gtest.h>

#include "workload/op_graph.h"

namespace paichar::workload {
namespace {

Op
makeOp(OpType type, double flops, double mem, double out,
       std::vector<OpId> inputs = {})
{
    Op op;
    op.type = type;
    op.flops = flops;
    op.mem_bytes = mem;
    op.output_bytes = out;
    op.inputs = std::move(inputs);
    return op;
}

TEST(OpTypeTest, Classification)
{
    EXPECT_TRUE(isComputeBound(OpType::MatMul));
    EXPECT_TRUE(isComputeBound(OpType::Conv));
    EXPECT_FALSE(isComputeBound(OpType::ElementWise));
    EXPECT_FALSE(isComputeBound(OpType::EmbeddingLookup));
    EXPECT_FALSE(isComputeBound(OpType::DataLoad));

    EXPECT_TRUE(isFusable(OpType::ElementWise));
    EXPECT_TRUE(isFusable(OpType::Normalization));
    EXPECT_TRUE(isFusable(OpType::Reduction));
    EXPECT_FALSE(isFusable(OpType::MatMul));
    EXPECT_FALSE(isFusable(OpType::DataLoad));
    EXPECT_FALSE(isFusable(OpType::EmbeddingLookup));
}

TEST(OpGraphTest, AddAssignsSequentialIds)
{
    OpGraph g;
    OpId a = g.addOp(makeOp(OpType::DataLoad, 0, 100, 100));
    OpId b = g.addOp(makeOp(OpType::MatMul, 50, 10, 10, {a}));
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 1);
    EXPECT_EQ(g.size(), 2u);
    EXPECT_EQ(g.op(b).inputs, std::vector<OpId>{a});
    EXPECT_TRUE(g.validate());
}

TEST(OpGraphTest, TotalsClassifyPerSecIIB)
{
    OpGraph g;
    g.addOp(makeOp(OpType::DataLoad, 0, 1000, 1000));
    g.addOp(makeOp(OpType::MatMul, 500, 20, 20));
    g.addOp(makeOp(OpType::Conv, 300, 10, 10));
    g.addOp(makeOp(OpType::ElementWise, 0, 40, 20));
    g.addOp(makeOp(OpType::Normalization, 0, 60, 20));
    GraphTotals t = g.totals();
    EXPECT_DOUBLE_EQ(t.flops, 800.0);
    EXPECT_DOUBLE_EQ(t.mem_access_bytes, 100.0);
    EXPECT_DOUBLE_EQ(t.input_bytes, 1000.0);
    EXPECT_EQ(t.num_kernels, 4); // DataLoad is not a kernel
}

TEST(OpGraphTest, ScaleToTargetsHitsTotalsExactly)
{
    OpGraph g;
    g.addOp(makeOp(OpType::DataLoad, 0, 10, 10));
    g.addOp(makeOp(OpType::Conv, 100, 5, 5));
    g.addOp(makeOp(OpType::ElementWise, 0, 30, 15));
    g.addOp(makeOp(OpType::ElementWise, 0, 10, 5));
    g.scaleToTargets(1e12, 2e9, 3e6);
    GraphTotals t = g.totals();
    EXPECT_NEAR(t.flops, 1e12, 1e-3);
    EXPECT_NEAR(t.mem_access_bytes, 2e9, 1e-6);
    EXPECT_NEAR(t.input_bytes, 3e6, 1e-9);
    EXPECT_TRUE(g.validate());
}

TEST(OpGraphTest, ScaleToTargetsPreservesRatios)
{
    OpGraph g;
    g.addOp(makeOp(OpType::ElementWise, 0, 30, 15));
    g.addOp(makeOp(OpType::ElementWise, 0, 10, 5));
    g.scaleToTargets(0, 80, 0);
    EXPECT_DOUBLE_EQ(g.op(0).mem_bytes, 60.0);
    EXPECT_DOUBLE_EQ(g.op(1).mem_bytes, 20.0);
}

TEST(OpGraphTest, ScaleWithZeroTargetsIsNoopOnEmptyClasses)
{
    OpGraph g;
    g.addOp(makeOp(OpType::ElementWise, 0, 10, 5));
    g.scaleToTargets(0.0, 20.0, 0.0); // no compute ops, no data ops
    EXPECT_DOUBLE_EQ(g.totals().mem_access_bytes, 20.0);
}

TEST(OpGraphTest, ValidateCatchesForwardReference)
{
    // Construct an invalid graph by hand through the public API is
    // impossible (addOp asserts), so check validate() on a copy with
    // an out-of-order id instead.
    OpGraph g;
    g.addOp(makeOp(OpType::ElementWise, 0, 1, 1));
    EXPECT_TRUE(g.validate());
}

TEST(OpGraphTest, EmptyGraphTotalsAreZero)
{
    OpGraph g;
    GraphTotals t = g.totals();
    EXPECT_DOUBLE_EQ(t.flops, 0.0);
    EXPECT_DOUBLE_EQ(t.mem_access_bytes, 0.0);
    EXPECT_DOUBLE_EQ(t.input_bytes, 0.0);
    EXPECT_EQ(t.num_kernels, 0);
    EXPECT_TRUE(g.empty());
    EXPECT_TRUE(g.validate());
}

} // namespace
} // namespace paichar::workload
