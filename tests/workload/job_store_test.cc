/**
 * @file
 * Tests for the SoA job store: owned vs borrowed-columnar modes must
 * be indistinguishable through the whole accessor surface, and the
 * view must keep its backing memory alive.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "workload/job_store.h"

namespace paichar::workload {
namespace {

std::vector<TrainingJob>
samplePopulation(size_t n)
{
    std::vector<TrainingJob> jobs;
    for (size_t i = 0; i < n; ++i) {
        TrainingJob j;
        j.id = static_cast<int64_t>(i) * 7 + 1;
        j.arch = i % 2 == 0 ? ArchType::OneWorkerOneGpu
                            : ArchType::PsWorker;
        j.num_cnodes = static_cast<int>(i % 5) + 1;
        j.num_ps = j.arch == ArchType::PsWorker ? 2 : 0;
        j.features.batch_size = 32.0 + static_cast<double>(i);
        j.features.flop_count = 1e12 + static_cast<double>(i);
        j.features.mem_access_bytes = 1e9;
        j.features.input_bytes = 1e6 * static_cast<double>(i + 1);
        j.features.comm_bytes = 5e8;
        j.features.embedding_comm_bytes = 1e8;
        j.features.dense_weight_bytes = 2e8;
        j.features.embedding_weight_bytes = 3e8;
        jobs.push_back(j);
    }
    return jobs;
}

/**
 * Serialize @p jobs into a packed column blob (paib body layout,
 * deliberately unaligned when n % 8 != 0) and point columns into it.
 */
std::shared_ptr<std::string>
packColumns(const std::vector<TrainingJob> &jobs, JobColumns *cols)
{
    size_t n = jobs.size();
    auto blob = std::make_shared<std::string>();
    std::string &b = *blob;
    b.append("x"); // 1-byte prefix forces misalignment of every column
    size_t ids_off = b.size();
    for (const auto &j : jobs)
        b.append(reinterpret_cast<const char *>(&j.id), 8);
    size_t archs_off = b.size();
    for (const auto &j : jobs)
        b.push_back(static_cast<char>(j.arch));
    size_t cnodes_off = b.size();
    for (const auto &j : jobs) {
        int32_t v = j.num_cnodes;
        b.append(reinterpret_cast<const char *>(&v), 4);
    }
    size_t ps_off = b.size();
    for (const auto &j : jobs) {
        int32_t v = j.num_ps;
        b.append(reinterpret_cast<const char *>(&v), 4);
    }
    size_t feat_off[kNumFeatureColumns];
    for (size_t k = 0; k < kNumFeatureColumns; ++k) {
        feat_off[k] = b.size();
        for (const auto &j : jobs) {
            double v = j.features.*kFeatureColumnOrder[k];
            b.append(reinterpret_cast<const char *>(&v), 8);
        }
    }
    cols->ids = b.data() + ids_off;
    cols->archs = b.data() + archs_off;
    cols->cnodes = b.data() + cnodes_off;
    cols->ps = b.data() + ps_off;
    for (size_t k = 0; k < kNumFeatureColumns; ++k)
        cols->features[k] = b.data() + feat_off[k];
    (void)n;
    return blob;
}

void
expectJobEq(const TrainingJob &a, const TrainingJob &b, size_t i)
{
    EXPECT_EQ(a.id, b.id) << "job " << i;
    EXPECT_EQ(a.arch, b.arch) << "job " << i;
    EXPECT_EQ(a.num_cnodes, b.num_cnodes) << "job " << i;
    EXPECT_EQ(a.num_ps, b.num_ps) << "job " << i;
    for (size_t k = 0; k < kNumFeatureColumns; ++k) {
        EXPECT_EQ(a.features.*kFeatureColumnOrder[k],
                  b.features.*kFeatureColumnOrder[k])
            << "job " << i << " feature " << k;
    }
}

TEST(JobStoreTest, OwnedModeWrapsTheVector)
{
    auto jobs = samplePopulation(9);
    JobStore store(jobs);
    EXPECT_EQ(store.size(), 9u);
    EXPECT_FALSE(store.empty());
    EXPECT_FALSE(store.columnar());
    for (size_t i = 0; i < jobs.size(); ++i)
        expectJobEq(jobs[i], store.job(i), i);
    auto out = store.materialize();
    ASSERT_EQ(out.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i)
        expectJobEq(jobs[i], out[i], i);
}

TEST(JobStoreTest, DefaultStoreIsEmpty)
{
    JobStore store;
    EXPECT_EQ(store.size(), 0u);
    EXPECT_TRUE(store.empty());
    EXPECT_FALSE(store.begin() != store.end());
    EXPECT_TRUE(store.materialize().empty());
}

TEST(JobStoreTest, ColumnarViewDecodesMisalignedColumns)
{
    // 13 jobs: 13 % 8 != 0, plus a 1-byte prefix, so every column is
    // misaligned — job() must still decode exactly (memcpy loads).
    auto jobs = samplePopulation(13);
    JobColumns cols;
    auto blob = packColumns(jobs, &cols);
    JobStore store = JobStore::fromColumns(jobs.size(), cols, blob);
    EXPECT_TRUE(store.columnar());
    EXPECT_EQ(store.size(), 13u);
    for (size_t i = 0; i < jobs.size(); ++i)
        expectJobEq(jobs[i], store.job(i), i);
    auto out = store.materialize();
    ASSERT_EQ(out.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i)
        expectJobEq(jobs[i], out[i], i);
}

TEST(JobStoreTest, ViewKeepsBackingAlive)
{
    auto jobs = samplePopulation(5);
    JobColumns cols;
    auto blob = packColumns(jobs, &cols);
    JobStore store = JobStore::fromColumns(jobs.size(), cols, blob);
    // The store now holds the only reference to the blob.
    std::weak_ptr<std::string> watch = blob;
    blob.reset();
    EXPECT_FALSE(watch.expired());
    expectJobEq(jobs[4], store.job(4), 4);

    // Copies share the backing; the last one keeps it alive.
    JobStore copy = store;
    store = JobStore();
    EXPECT_FALSE(watch.expired());
    expectJobEq(jobs[0], copy.job(0), 0);
    copy = JobStore();
    EXPECT_TRUE(watch.expired());
}

TEST(JobStoreTest, IteratorVisitsEveryJobInOrder)
{
    auto jobs = samplePopulation(7);
    JobColumns cols;
    auto blob = packColumns(jobs, &cols);
    for (const JobStore &store :
         {JobStore(jobs),
          JobStore::fromColumns(jobs.size(), cols, blob)}) {
        size_t i = 0;
        for (const TrainingJob &j : store) {
            ASSERT_LT(i, jobs.size());
            expectJobEq(jobs[i], j, i);
            ++i;
        }
        EXPECT_EQ(i, jobs.size());
    }
}

} // namespace
} // namespace paichar::workload
