/**
 * @file
 * Tests pinning the model zoo to the paper's Tables IV, V and VI.
 */

#include <gtest/gtest.h>

#include "hw/units.h"
#include "workload/model_zoo.h"

namespace paichar::workload {
namespace {

using hw::kGB;
using hw::kKB;
using hw::kMB;
using hw::kTFLOPs;
using hw::kGFLOPs;

/** Relative-equality helper for large magnitudes. */
void
expectRel(double actual, double expected, double tol = 1e-9)
{
    ASSERT_NE(expected, 0.0);
    EXPECT_NEAR(actual / expected, 1.0, tol);
}

TEST(ModelZooTest, AllReturnsSixModelsInTableIvOrder)
{
    auto models = ModelZoo::all();
    ASSERT_EQ(models.size(), 6u);
    EXPECT_EQ(models[0].name, "ResNet50");
    EXPECT_EQ(models[1].name, "NMT");
    EXPECT_EQ(models[2].name, "BERT");
    EXPECT_EQ(models[3].name, "Speech");
    EXPECT_EQ(models[4].name, "Multi-Interests");
    EXPECT_EQ(models[5].name, "GCN");
}

TEST(ModelZooTest, ArchitecturesMatchTableIv)
{
    auto models = ModelZoo::all();
    EXPECT_EQ(models[0].arch, ArchType::AllReduceLocal);
    EXPECT_EQ(models[1].arch, ArchType::AllReduceLocal);
    EXPECT_EQ(models[2].arch, ArchType::AllReduceLocal);
    EXPECT_EQ(models[3].arch, ArchType::OneWorkerOneGpu);
    EXPECT_EQ(models[4].arch, ArchType::PsWorker);
    EXPECT_EQ(models[5].arch, ArchType::Pearl);
}

TEST(ModelZooTest, WeightsMatchTableIv)
{
    auto m = ModelZoo::resnet50();
    expectRel(m.features.dense_weight_bytes, 204 * kMB);
    EXPECT_DOUBLE_EQ(m.features.embedding_weight_bytes, 0.0);

    m = ModelZoo::nmt();
    expectRel(m.features.dense_weight_bytes, 706 * kMB);
    expectRel(m.features.embedding_weight_bytes, 819 * kMB);

    m = ModelZoo::bert();
    expectRel(m.features.dense_weight_bytes, 1.0 * kGB);
    expectRel(m.features.embedding_weight_bytes, 284 * kMB);

    m = ModelZoo::speech();
    expectRel(m.features.dense_weight_bytes, 416 * kMB);

    m = ModelZoo::multiInterests();
    expectRel(m.features.dense_weight_bytes, 1.19 * kMB);
    expectRel(m.features.embedding_weight_bytes, 239.45 * kGB);

    m = ModelZoo::gcn();
    expectRel(m.features.dense_weight_bytes, 207 * kMB);
    expectRel(m.features.embedding_weight_bytes, 54 * kGB);
}

/** Table V rows: batch, FLOPs, memory access, memcpy, network. */
struct TableVRow
{
    const char *name;
    double batch, flops, mem, memcpy_bytes, network;
};

class TableVProperty : public ::testing::TestWithParam<TableVRow>
{
};

TEST_P(TableVProperty, FeaturesAndGraphTotalsMatch)
{
    const TableVRow &row = GetParam();
    CaseStudyModel m = [&] {
        std::string n = row.name;
        if (n == "ResNet50")
            return ModelZoo::resnet50();
        if (n == "NMT")
            return ModelZoo::nmt();
        if (n == "BERT")
            return ModelZoo::bert();
        if (n == "Speech")
            return ModelZoo::speech();
        if (n == "Multi-Interests")
            return ModelZoo::multiInterests();
        return ModelZoo::gcn();
    }();

    EXPECT_DOUBLE_EQ(m.features.batch_size, row.batch);
    expectRel(m.features.flop_count, row.flops, 1e-6);
    expectRel(m.features.mem_access_bytes, row.mem, 1e-6);
    expectRel(m.features.input_bytes, row.memcpy_bytes, 1e-6);
    expectRel(m.features.comm_bytes, row.network, 1e-6);

    // The op graph's aggregate demands are pinned to the same row.
    ASSERT_TRUE(m.graph.validate());
    GraphTotals t = m.graph.totals();
    expectRel(t.flops, row.flops, 1e-6);
    expectRel(t.mem_access_bytes, row.mem, 1e-6);
    expectRel(t.input_bytes, row.memcpy_bytes, 1e-6);
    EXPECT_GT(t.num_kernels, 10);
}

INSTANTIATE_TEST_SUITE_P(
    TableV, TableVProperty,
    ::testing::Values(
        TableVRow{"Multi-Interests", 2048, 105.8 * kGFLOPs, 100.4 * kGB,
                  261 * kMB, 122 * kMB},
        TableVRow{"ResNet50", 64, 1.56 * kTFLOPs, 31.9 * kGB, 38 * kMB,
                  357 * kMB},
        TableVRow{"NMT", 6144, 2.5 * kTFLOPs, 101.6 * kGB, 22 * kKB,
                  1.33 * kGB},
        TableVRow{"BERT", 12, 2.1 * kTFLOPs, 107.3 * kGB, 46 * kKB,
                  1.5 * kGB},
        TableVRow{"Speech", 32, 7.9 * kTFLOPs, 20.4 * kGB, 804 * kMB,
                  728 * kMB},
        TableVRow{"GCN", 512, 330.7 * kGFLOPs, 25.79 * kGB, 1.2 * kMB,
                  3.0 * kGB}),
    [](const auto &info) { return std::string(info.param.name) ==
                                   "Multi-Interests"
                               ? std::string("MultiInterests")
                               : std::string(info.param.name); });

TEST(ModelZooTest, EfficienciesMatchTableVi)
{
    auto m = ModelZoo::speech();
    EXPECT_DOUBLE_EQ(m.measured_efficiency.gpu_flops, 0.6086);
    EXPECT_DOUBLE_EQ(m.measured_efficiency.gpu_memory, 0.031);
    EXPECT_DOUBLE_EQ(m.measured_efficiency.pcie, 0.7773);
    EXPECT_DOUBLE_EQ(m.measured_efficiency.network, 0.405);

    m = ModelZoo::gcn();
    EXPECT_DOUBLE_EQ(m.measured_efficiency.gpu_flops, 0.882);
}

TEST(ModelZooTest, CommSplitSumsToTotal)
{
    for (const auto &m : ModelZoo::all()) {
        const auto &f = m.features;
        EXPECT_NEAR(f.denseCommBytes() + f.embedding_comm_bytes,
                    f.comm_bytes, 1e-6 * f.comm_bytes)
            << m.name;
        EXPECT_GE(f.denseCommBytes(), 0.0);
        EXPECT_GE(f.embedding_comm_bytes, 0.0);
    }
}

TEST(ModelZooTest, GcnCommIsMostlyEmbedding)
{
    auto m = ModelZoo::gcn();
    EXPECT_GT(m.features.embedding_comm_bytes,
              10.0 * m.features.denseCommBytes());
}

TEST(ModelZooTest, SpeechGraphIsElementWiseKernelHeavy)
{
    auto m = ModelZoo::speech();
    int ew = 0, total = 0;
    for (const auto &op : m.graph.ops()) {
        if (op.type == OpType::DataLoad)
            continue;
        ++total;
        ew += isFusable(op.type);
    }
    // Fig 13(b)'s premise: the op mix is dominated by fine-grained
    // element-wise kernels that XLA can fuse.
    EXPECT_GT(static_cast<double>(ew) / total, 0.6);
}

TEST(ModelZooTest, MultiInterestsConfigScalesDemands)
{
    auto base = ModelZoo::multiInterests();
    auto big = ModelZoo::multiInterests({4096, 2});
    auto deep = ModelZoo::multiInterests({2048, 8});

    EXPECT_NEAR(big.features.flop_count / base.features.flop_count,
                2.0, 1e-9);
    EXPECT_GT(deep.features.flop_count, base.features.flop_count);
    // Comm grows sublinearly with batch: doubling batch far less than
    // doubles traffic.
    EXPECT_LT(big.features.comm_bytes / base.features.comm_bytes, 1.5);
    EXPECT_GT(big.features.comm_bytes, base.features.comm_bytes);
    // Graph totals track features for every configuration.
    auto t = deep.graph.totals();
    EXPECT_NEAR(t.flops / deep.features.flop_count, 1.0, 1e-6);
}

TEST(ModelZooTest, ModelsValidAndFeatureChecked)
{
    for (const auto &m : ModelZoo::all()) {
        EXPECT_TRUE(m.features.valid()) << m.name;
        EXPECT_TRUE(m.graph.validate()) << m.name;
        EXPECT_GE(m.num_cnodes, 1) << m.name;
    }
}

} // namespace
} // namespace paichar::workload
