/**
 * @file
 * Tests for architecture classification (Table II).
 */

#include <gtest/gtest.h>

#include "workload/arch_type.h"

namespace paichar::workload {
namespace {

TEST(ArchTypeTest, Names)
{
    EXPECT_EQ(toString(ArchType::OneWorkerOneGpu), "1w1g");
    EXPECT_EQ(toString(ArchType::OneWorkerMultiGpu), "1wng");
    EXPECT_EQ(toString(ArchType::PsWorker), "PS/Worker");
    EXPECT_EQ(toString(ArchType::AllReduceLocal), "AllReduce-Local");
    EXPECT_EQ(toString(ArchType::AllReduceCluster),
              "AllReduce-Cluster");
    EXPECT_EQ(toString(ArchType::Pearl), "PEARL");
}

TEST(ArchTypeTest, CentralizedPerTableII)
{
    EXPECT_FALSE(isCentralized(ArchType::OneWorkerOneGpu));
    EXPECT_TRUE(isCentralized(ArchType::OneWorkerMultiGpu));
    EXPECT_TRUE(isCentralized(ArchType::PsWorker));
    EXPECT_FALSE(isCentralized(ArchType::AllReduceLocal));
    EXPECT_FALSE(isCentralized(ArchType::AllReduceCluster));
    EXPECT_FALSE(isCentralized(ArchType::Pearl));
}

TEST(ArchTypeTest, ClusterPerTableII)
{
    EXPECT_FALSE(isCluster(ArchType::OneWorkerOneGpu));
    EXPECT_FALSE(isCluster(ArchType::OneWorkerMultiGpu));
    EXPECT_TRUE(isCluster(ArchType::PsWorker));
    EXPECT_FALSE(isCluster(ArchType::AllReduceLocal));
    EXPECT_TRUE(isCluster(ArchType::AllReduceCluster));
}

TEST(ArchTypeTest, WeightMovementMediumPerTableII)
{
    EXPECT_EQ(weightMovementMedium(ArchType::OneWorkerOneGpu), "-");
    EXPECT_EQ(weightMovementMedium(ArchType::OneWorkerMultiGpu),
              "PCIe");
    EXPECT_EQ(weightMovementMedium(ArchType::PsWorker),
              "Ethernet & PCIe");
    EXPECT_EQ(weightMovementMedium(ArchType::AllReduceLocal),
              "NVLink");
    EXPECT_EQ(weightMovementMedium(ArchType::AllReduceCluster),
              "Ethernet & NVLink");
    EXPECT_EQ(weightMovementMedium(ArchType::Pearl), "NVLink");
}

TEST(ArchTypeTest, AllArchTypesEnumerationIsComplete)
{
    EXPECT_EQ(std::size(kAllArchTypes), 6u);
}

} // namespace
} // namespace paichar::workload
