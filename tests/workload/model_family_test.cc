/**
 * @file
 * Tests for the parameterized model families (depth/width sweeps).
 */

#include <gtest/gtest.h>

#include "hw/units.h"
#include "workload/model_zoo.h"

namespace paichar::workload {
namespace {

using hw::kGB;
using hw::kMB;
using hw::kTFLOPs;

TEST(ModelFamilyTest, DefaultResnetConfigIsResnet50)
{
    auto a = ModelZoo::resnet50();
    auto b = ModelZoo::resnet(ResNetConfig{});
    EXPECT_EQ(a.name, "ResNet50");
    EXPECT_EQ(b.name, "ResNet50");
    EXPECT_DOUBLE_EQ(a.features.flop_count, b.features.flop_count);
    EXPECT_DOUBLE_EQ(a.features.dense_weight_bytes,
                     b.features.dense_weight_bytes);
    EXPECT_EQ(a.graph.size(), b.graph.size());
}

TEST(ModelFamilyTest, DefaultTransformerConfigIsBert)
{
    auto a = ModelZoo::bert();
    auto b = ModelZoo::transformer(TransformerConfig{});
    EXPECT_EQ(a.name, "BERT");
    EXPECT_EQ(b.name, "BERT");
    EXPECT_DOUBLE_EQ(a.features.flop_count, b.features.flop_count);
    EXPECT_NEAR(a.features.comm_bytes, 1.5 * kGB, 1.0);
}

class ResNetDepthProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(ResNetDepthProperty, DemandsScaleWithPublishedRatios)
{
    int depth = GetParam();
    auto m = ModelZoo::resnet(ResNetConfig{depth, 64});
    EXPECT_EQ(m.name, "ResNet" + std::to_string(depth));
    ASSERT_TRUE(m.graph.validate());
    ASSERT_TRUE(m.features.valid());
    // Graph totals pinned to the scaled targets.
    auto t = m.graph.totals();
    EXPECT_NEAR(t.flops / m.features.flop_count, 1.0, 1e-6);
    EXPECT_NEAR(t.mem_access_bytes / m.features.mem_access_bytes,
                1.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Depths, ResNetDepthProperty,
                         ::testing::Values(18, 34, 50, 101, 152));

TEST(ModelFamilyTest, DeeperResnetsCostMore)
{
    double prev_flops = 0.0, prev_weights = 0.0;
    int prev_kernels = 0;
    for (int depth : {18, 34, 50, 101, 152}) {
        auto m = ModelZoo::resnet(ResNetConfig{depth, 64});
        EXPECT_GT(m.features.flop_count, prev_flops) << depth;
        EXPECT_GT(m.features.dense_weight_bytes, prev_weights)
            << depth;
        int kernels = m.graph.totals().num_kernels;
        EXPECT_GE(kernels, prev_kernels) << depth;
        prev_flops = m.features.flop_count;
        prev_weights = m.features.dense_weight_bytes;
        prev_kernels = kernels;
    }
}

TEST(ModelFamilyTest, ResnetBatchScalesComputeNotWeights)
{
    auto small = ModelZoo::resnet(ResNetConfig{50, 32});
    auto big = ModelZoo::resnet(ResNetConfig{50, 128});
    EXPECT_NEAR(big.features.flop_count / small.features.flop_count,
                4.0, 1e-9);
    EXPECT_DOUBLE_EQ(big.features.dense_weight_bytes,
                     small.features.dense_weight_bytes);
    EXPECT_DOUBLE_EQ(big.features.comm_bytes,
                     small.features.comm_bytes);
}

TEST(ModelFamilyTest, TransformerLayerAndWidthScaling)
{
    auto base = ModelZoo::transformer(TransformerConfig{});
    auto deep = ModelZoo::transformer({48, 1.0, 12});
    auto wide = ModelZoo::transformer({24, 2.0, 12});

    EXPECT_NEAR(deep.features.flop_count / base.features.flop_count,
                2.0, 0.01);
    EXPECT_NEAR(deep.features.dense_weight_bytes /
                    base.features.dense_weight_bytes,
                2.0, 1e-9);
    // Width scales compute and weights quadratically.
    EXPECT_NEAR(wide.features.flop_count / base.features.flop_count,
                4.0, 1e-9);
    EXPECT_NEAR(wide.features.dense_weight_bytes /
                    base.features.dense_weight_bytes,
                4.0, 1e-9);
    // Deeper graphs have more kernels; wider ones the same count.
    EXPECT_GT(deep.graph.size(), base.graph.size());
    EXPECT_EQ(wide.graph.size(), base.graph.size());
    EXPECT_NE(deep.name, "BERT");
}

} // namespace
} // namespace paichar::workload
