/**
 * @file
 * Tests for the cluster-level job scheduler simulation.
 */

#include <gtest/gtest.h>

#include "clustersim/scheduler.h"
#include "hw/units.h"
#include "trace/synthetic_cluster.h"

namespace paichar::clustersim {
namespace {

using workload::ArchType;
using workload::TrainingJob;

TrainingJob
makeJob(int64_t id, ArchType arch, int cnodes, double flops = 1e12)
{
    TrainingJob j;
    j.id = id;
    j.arch = arch;
    j.num_cnodes = cnodes;
    j.features.batch_size = 32;
    j.features.flop_count = flops; // 7.7e12 -> 1 s steps on Table I HW
    j.features.comm_bytes = arch == ArchType::OneWorkerOneGpu
                                ? 0.0
                                : 100 * hw::kMB;
    j.features.dense_weight_bytes = 100 * hw::kMB;
    return j;
}

JobRequest
request(TrainingJob job, double submit, int64_t steps)
{
    return JobRequest{std::move(job), submit, steps};
}

SchedulerConfig
smallCluster(int servers = 4, double nvl = 0.5)
{
    SchedulerConfig cfg;
    cfg.num_servers = servers;
    cfg.gpus_per_server = 8;
    cfg.nvlink_fraction = nvl;
    return cfg;
}

class SchedulerTest : public ::testing::Test
{
  protected:
    SchedulerTest() : model_(hw::paiCluster()) {}
    core::AnalyticalModel model_;
};

TEST_F(SchedulerTest, SingleJobRunsImmediately)
{
    ClusterScheduler sched(smallCluster(), model_);
    auto job = makeJob(1, ArchType::OneWorkerOneGpu, 1, 7.7e12);
    auto out = sched.run({request(job, 10.0, 100)});
    ASSERT_EQ(out.jobs.size(), 1u);
    EXPECT_DOUBLE_EQ(out.jobs[0].start_time, 10.0);
    // 100 steps x ~1 s.
    EXPECT_NEAR(out.jobs[0].runtime(),
                100.0 * model_.stepTime(job), 1e-9);
    EXPECT_DOUBLE_EQ(out.jobs[0].wait(), 0.0);
    EXPECT_EQ(out.jobs[0].gpus, 1);
    EXPECT_FALSE(out.jobs[0].ported);
}

TEST_F(SchedulerTest, CapacityForcesQueueing)
{
    // One server of 8 GPUs; two 8-GPU jobs must serialize.
    ClusterScheduler sched(smallCluster(1, 1.0), model_);
    auto j1 = makeJob(1, ArchType::AllReduceLocal, 8, 7.7e12);
    auto j2 = makeJob(2, ArchType::AllReduceLocal, 8, 7.7e12);
    auto out = sched.run(
        {request(j1, 0.0, 100), request(j2, 0.0, 100)});
    ASSERT_EQ(out.jobs.size(), 2u);
    EXPECT_DOUBLE_EQ(out.jobs[0].start_time, 0.0);
    EXPECT_NEAR(out.jobs[1].start_time, out.jobs[0].finish_time,
                1e-9);
    EXPECT_GT(out.jobs[1].wait(), 0.0);
    EXPECT_GT(out.gpu_utilization, 0.95);
}

TEST_F(SchedulerTest, PsJobSpreadsAcrossServers)
{
    ClusterScheduler sched(smallCluster(4, 0.0), model_);
    auto job = makeJob(1, ArchType::PsWorker, 4);
    auto out = sched.run({request(job, 0.0, 10)});
    ASSERT_EQ(out.jobs.size(), 1u);
    EXPECT_EQ(out.jobs[0].gpus, 4);
}

TEST_F(SchedulerTest, AllReduceRequiresNvlinkServer)
{
    auto job = makeJob(1, ArchType::AllReduceLocal, 8);
    ClusterScheduler without(smallCluster(4, 0.0), model_);
    EXPECT_FALSE(without.placeable(job));
    ClusterScheduler with(smallCluster(4, 0.25), model_);
    EXPECT_TRUE(with.placeable(job));
}

TEST_F(SchedulerTest, FcfsHeadOfLineBlocks)
{
    // Head job needs 8 GPUs (unavailable); a 1-GPU job behind it
    // could run but strict FCFS blocks it until the head starts.
    SchedulerConfig cfg = smallCluster(1, 1.0);
    cfg.policy = Policy::Fifo;
    ClusterScheduler sched(cfg, model_);
    auto big1 = makeJob(1, ArchType::AllReduceLocal, 8, 7.7e12);
    auto big2 = makeJob(2, ArchType::AllReduceLocal, 8, 7.7e12);
    auto small = makeJob(3, ArchType::OneWorkerOneGpu, 1, 7.7e12);
    auto out = sched.run({request(big1, 0.0, 100),
                          request(big2, 1.0, 100),
                          request(small, 2.0, 10)});
    // Strict FCFS: small starts only when big2 has started.
    const JobOutcome *small_out = nullptr, *big2_out = nullptr;
    for (const auto &jo : out.jobs) {
        if (jo.job_id == 3)
            small_out = &jo;
        if (jo.job_id == 2)
            big2_out = &jo;
    }
    ASSERT_TRUE(small_out && big2_out);
    EXPECT_GE(small_out->start_time, big2_out->start_time);
}

TEST_F(SchedulerTest, BackfillLetsSmallJobsThrough)
{
    SchedulerConfig cfg = smallCluster(1, 1.0);
    cfg.policy = Policy::Backfill;
    ClusterScheduler sched(cfg, model_);
    auto big1 = makeJob(1, ArchType::AllReduceLocal, 8, 7.7e12);
    auto big2 = makeJob(2, ArchType::AllReduceLocal, 6, 7.7e12);
    auto small = makeJob(3, ArchType::OneWorkerOneGpu, 1, 7.7e12);
    // big1 takes all 8; big2 (6 GPUs) cannot start; small (1 GPU)...
    // also cannot: the server is full. Free 2 GPUs by shrinking big1.
    big1.num_cnodes = 7;
    auto out = sched.run({request(big1, 0.0, 100),
                          request(big2, 1.0, 100),
                          request(small, 2.0, 10)});
    const JobOutcome *small_out = nullptr, *big2_out = nullptr;
    for (const auto &jo : out.jobs) {
        if (jo.job_id == 3)
            small_out = &jo;
        if (jo.job_id == 2)
            big2_out = &jo;
    }
    ASSERT_TRUE(small_out && big2_out);
    // Backfill: the 1-GPU job slips past the blocked 6-GPU job.
    EXPECT_LT(small_out->start_time, big2_out->start_time);
    EXPECT_DOUBLE_EQ(small_out->start_time, 2.0);
}

TEST_F(SchedulerTest, PortingUsesNvlinkAndSpeedsUp)
{
    SchedulerConfig cfg = smallCluster(16, 0.5);
    cfg.port_ps_to_allreduce = true;
    ClusterScheduler sched(cfg, model_);
    // A comm-heavy dense PS job: ports to AllReduce-Local.
    auto job = makeJob(1, ArchType::PsWorker, 16, 1e12);
    job.features.comm_bytes = 1 * hw::kGB;
    job.features.dense_weight_bytes = 1 * hw::kGB;
    auto out = sched.run({request(job, 0.0, 100)});
    ASSERT_EQ(out.jobs.size(), 1u);
    EXPECT_TRUE(out.jobs[0].ported);
    EXPECT_EQ(out.jobs[0].executed_arch, ArchType::AllReduceLocal);
    EXPECT_EQ(out.jobs[0].gpus, 8); // clamped from 16
    EXPECT_EQ(out.ported_jobs, 1);

    // The ported runtime is the AllReduce-Local step time.
    workload::TrainingJob ported = job;
    ported.arch = ArchType::AllReduceLocal;
    ported.num_cnodes = 8;
    EXPECT_NEAR(out.jobs[0].runtime(),
                100.0 * model_.stepTime(ported), 1e-9);
}

TEST_F(SchedulerTest, HugeEmbeddingJobsAreNotPorted)
{
    SchedulerConfig cfg = smallCluster(16, 0.5);
    cfg.port_ps_to_allreduce = true;
    ClusterScheduler sched(cfg, model_);
    auto job = makeJob(1, ArchType::PsWorker, 8);
    job.features.embedding_weight_bytes = 100 * hw::kGB;
    auto out = sched.run({request(job, 0.0, 10)});
    EXPECT_FALSE(out.jobs[0].ported);
    EXPECT_EQ(out.jobs[0].executed_arch, ArchType::PsWorker);
}

TEST_F(SchedulerTest, DeterministicOnSyntheticTrace)
{
    trace::SyntheticClusterGenerator gen(5);
    std::vector<workload::TrainingJob> jobs;
    for (auto &j : gen.generate(300)) {
        // Keep jobs placeable on the small test cluster.
        j.num_cnodes = std::min(j.num_cnodes, 32);
        jobs.push_back(j);
    }
    auto reqs = poissonRequests(jobs, 600.0, 200.0, 1.0, 77);
    SchedulerConfig cfg = smallCluster(32, 0.5);
    ClusterScheduler sched(cfg, model_);
    auto a = sched.run(reqs);
    auto b = sched.run(reqs);
    ASSERT_EQ(a.jobs.size(), 300u);
    EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
    EXPECT_DOUBLE_EQ(a.mean_wait, b.mean_wait);
    EXPECT_GT(a.gpu_utilization, 0.0);
    EXPECT_LE(a.gpu_utilization, 1.0);
}

TEST_F(SchedulerTest, PoissonRequestsRespectOrderAndLengths)
{
    trace::SyntheticClusterGenerator gen(5);
    auto jobs = gen.generate(100);
    auto reqs = poissonRequests(jobs, 100.0, 500.0, 0.8, 3);
    ASSERT_EQ(reqs.size(), 100u);
    for (size_t i = 1; i < reqs.size(); ++i)
        EXPECT_GT(reqs[i].submit_time, reqs[i - 1].submit_time);
    for (const auto &r : reqs)
        EXPECT_GE(r.num_steps, 1);
}

TEST_F(SchedulerTest, EmptyRequestStream)
{
    ClusterScheduler sched(smallCluster(), model_);
    auto out = sched.run({});
    EXPECT_TRUE(out.jobs.empty());
    EXPECT_DOUBLE_EQ(out.makespan, 0.0);
    EXPECT_DOUBLE_EQ(out.gpu_utilization, 0.0);
}

} // namespace
} // namespace paichar::clustersim
