/**
 * @file
 * Per-policy behavior of the prediction-driven scheduler layer
 * (DESIGN.md Sec 13): SPF ordering, EASY reservations, gang
 * restrictions, preemption/restart work conservation, heterogeneous
 * generations and fragmentation-aware placement. The cross-policy
 * invariants live in the sched_oracle fuzz suite; these tests pin
 * the *distinguishing* behavior of each policy on hand-built
 * streams. `ctest -L sched`.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "clustersim/scheduler.h"
#include "hw/units.h"
#include "trace/synthetic_cluster.h"

namespace paichar::clustersim {
namespace {

using workload::ArchType;
using workload::TrainingJob;

TrainingJob
makeJob(int64_t id, ArchType arch, int cnodes, double flops = 7.7e12)
{
    TrainingJob j;
    j.id = id;
    j.arch = arch;
    j.num_cnodes = cnodes;
    j.features.batch_size = 32;
    j.features.flop_count = flops; // 7.7e12 -> ~1 s steps on Table I
    j.features.comm_bytes = arch == ArchType::OneWorkerOneGpu
                                ? 0.0
                                : 100 * hw::kMB;
    j.features.dense_weight_bytes = 100 * hw::kMB;
    return j;
}

JobRequest
request(TrainingJob job, double submit, int64_t steps)
{
    return JobRequest{std::move(job), submit, steps};
}

SchedulerConfig
oneServer()
{
    SchedulerConfig cfg;
    cfg.num_servers = 1;
    cfg.gpus_per_server = 8;
    cfg.nvlink_fraction = 1.0;
    return cfg;
}

const JobOutcome &
byId(const ClusterOutcome &out, int64_t id)
{
    auto it = std::find_if(
        out.jobs.begin(), out.jobs.end(),
        [&](const JobOutcome &jo) { return jo.job_id == id; });
    EXPECT_NE(it, out.jobs.end()) << "job " << id << " missing";
    return *it;
}

class PolicyTest : public ::testing::Test
{
  protected:
    PolicyTest() : model_(hw::paiCluster()) {}
    core::AnalyticalModel model_;
};

TEST_F(PolicyTest, SpfStartsShortestPredictedFirst)
{
    // Cluster busy until ~100 s; a long and a short 8-GPU job queue
    // behind it. FIFO starts the earlier (long) one first; SPF
    // starts the predicted-shorter one first.
    auto occupant = makeJob(1, ArchType::AllReduceLocal, 8);
    auto long_job = makeJob(2, ArchType::AllReduceLocal, 8);
    auto short_job = makeJob(3, ArchType::AllReduceLocal, 8);
    std::vector<JobRequest> reqs{request(occupant, 0.0, 100),
                                 request(long_job, 1.0, 1000),
                                 request(short_job, 2.0, 10)};

    SchedulerConfig fifo_cfg = oneServer();
    fifo_cfg.policy = Policy::Fifo;
    auto fifo = ClusterScheduler(fifo_cfg, model_).run(reqs);
    EXPECT_LT(byId(fifo, 2).start_time, byId(fifo, 3).start_time);

    SchedulerConfig spf_cfg = oneServer();
    spf_cfg.policy = Policy::Spf;
    auto spf = ClusterScheduler(spf_cfg, model_).run(reqs);
    EXPECT_LT(byId(spf, 3).start_time, byId(spf, 2).start_time);
    // And the reordering pays: mean wait strictly improves.
    EXPECT_LT(spf.mean_wait, fifo.mean_wait);
}

TEST_F(PolicyTest, EasyBackfillRespectsHeadReservation)
{
    // occupant holds 7/8 GPUs until ~100 s; the 8-GPU head must wait
    // for it. A 1-GPU job predicted to run ~1000 s would delay the
    // head's reserved start: greedy backfill admits it, EASY must
    // not. A 1-GPU job predicted to run ~10 s fits the window.
    auto occupant = makeJob(1, ArchType::AllReduceLocal, 7);
    auto head = makeJob(2, ArchType::AllReduceLocal, 8);
    auto big_small = makeJob(3, ArchType::OneWorkerOneGpu, 1);
    auto tiny = makeJob(4, ArchType::OneWorkerOneGpu, 1);
    std::vector<JobRequest> reqs{request(occupant, 0.0, 100),
                                 request(head, 1.0, 100),
                                 request(big_small, 2.0, 1000),
                                 request(tiny, 3.0, 10)};

    SchedulerConfig greedy_cfg = oneServer();
    greedy_cfg.policy = Policy::Backfill; // no predictor: greedy
    auto greedy = ClusterScheduler(greedy_cfg, model_).run(reqs);
    EXPECT_DOUBLE_EQ(byId(greedy, 3).start_time, 2.0);

    SchedulerConfig easy_cfg = oneServer();
    easy_cfg.policy = Policy::Backfill;
    easy_cfg.predictor = [](const TrainingJob &, int64_t,
                            double model_run_s) {
        return model_run_s;
    };
    auto easy = ClusterScheduler(easy_cfg, model_).run(reqs);
    // The 1000-step job would overrun the head's reservation: it
    // must now wait for the head.
    EXPECT_GE(byId(easy, 3).start_time, byId(easy, 2).start_time);
    // The 10-step job finishes inside the reservation: unchanged.
    EXPECT_DOUBLE_EQ(byId(easy, 4).start_time, 3.0);
    // EASY never delays the head past its greedy start.
    EXPECT_LE(byId(easy, 2).start_time,
              byId(greedy, 2).start_time + 1e-9);
}

TEST_F(PolicyTest, GangOnlyBackfillsSingleGpuJobs)
{
    // occupant holds 6/8 GPUs; the head needs all 8. Both a 2-GPU
    // job and a 1-GPU job would fit the free GPUs and finish well
    // inside the reservation -- but gang scheduling keeps distributed
    // jobs in arrival order, so only the 1-GPU job may backfill.
    auto occupant = makeJob(1, ArchType::AllReduceLocal, 6);
    auto head = makeJob(2, ArchType::AllReduceLocal, 8);
    auto multi = makeJob(3, ArchType::OneWorkerMultiGpu, 2);
    auto single = makeJob(4, ArchType::OneWorkerOneGpu, 1);
    std::vector<JobRequest> reqs{request(occupant, 0.0, 100),
                                 request(head, 1.0, 100),
                                 request(multi, 2.0, 5),
                                 request(single, 3.0, 5)};

    SchedulerConfig gang_cfg = oneServer();
    gang_cfg.policy = Policy::Gang;
    auto gang = ClusterScheduler(gang_cfg, model_).run(reqs);
    EXPECT_GE(byId(gang, 3).start_time, byId(gang, 2).start_time);
    EXPECT_DOUBLE_EQ(byId(gang, 4).start_time, 3.0);

    // Control: EASY backfill without the gang restriction admits the
    // 2-GPU job immediately.
    SchedulerConfig easy_cfg = oneServer();
    easy_cfg.policy = Policy::Backfill;
    easy_cfg.predictor = [](const TrainingJob &, int64_t,
                            double model_run_s) {
        return model_run_s;
    };
    auto easy = ClusterScheduler(easy_cfg, model_).run(reqs);
    EXPECT_DOUBLE_EQ(byId(easy, 3).start_time, 2.0);
}

TEST_F(PolicyTest, PreemptionRestartsFromLastCompletedStep)
{
    // A 1000-step job occupies the server; a 10-step job arrives at
    // t=5. Its predicted remaining (995 steps) is far beyond
    // preempt_ratio x 10, so the short job preempts, runs, and the
    // victim restarts from its last completed step.
    auto long_job = makeJob(1, ArchType::AllReduceLocal, 8);
    auto short_job = makeJob(2, ArchType::AllReduceLocal, 8);
    double step = model_.stepTime(long_job);
    std::vector<JobRequest> reqs{request(long_job, 0.0, 1000),
                                 request(short_job, 5.0 * step, 10)};

    SchedulerConfig cfg = oneServer();
    cfg.policy = Policy::SpfPreempt;
    auto out = ClusterScheduler(cfg, model_).run(reqs);
    const JobOutcome &victim = byId(out, 1);
    const JobOutcome &winner = byId(out, 2);

    EXPECT_EQ(out.preemptions, 1);
    EXPECT_EQ(victim.preemptions, 1);
    ASSERT_EQ(victim.segments.size(), 2u);
    // The short job starts at its submit time (the preemption is
    // immediate) and runs uninterrupted.
    EXPECT_NEAR(winner.start_time, 5.0 * step, 1e-9);
    EXPECT_EQ(winner.preemptions, 0);
    // Work conservation: the victim's occupied seconds cover all
    // 1000 steps and lose at most the one step in flight.
    double run = victim.runSeconds();
    EXPECT_GE(run, 1000.0 * step - 1e-6);
    EXPECT_LE(run, 1001.0 * step + 1e-6);
    // The victim resumes after the winner finishes, not from zero:
    // its finish is within (1000 + short + lost step) of its start.
    EXPECT_LE(victim.finish_time,
              victim.start_time + (1000.0 + 10.0 + 1.0) * step + 1e-6);
}

TEST_F(PolicyTest, PreemptionCountIsCapped)
{
    // Six short jobs arrive in sequence, each individually eligible
    // to preempt the long victim; after max_preemptions the victim
    // becomes unpreemptable and later shorts must queue.
    auto long_job = makeJob(1, ArchType::AllReduceLocal, 8);
    double step = model_.stepTime(long_job);
    std::vector<JobRequest> reqs{request(long_job, 0.0, 2000)};
    for (int i = 0; i < 6; ++i) {
        reqs.push_back(request(
            makeJob(2 + i, ArchType::AllReduceLocal, 8),
            (5.0 + 40.0 * i) * step, 10));
    }
    SchedulerConfig cfg = oneServer();
    cfg.max_preemptions = 3;
    cfg.policy = Policy::SpfPreempt;
    auto out = ClusterScheduler(cfg, model_).run(reqs);
    EXPECT_EQ(byId(out, 1).preemptions, 3);
    EXPECT_EQ(out.preemptions, 3);
}

TEST_F(PolicyTest, SpfNeverRegressesFifoOnHeavyTailTrace)
{
    // The headline claim (Hu et al.): ordering by predicted duration
    // recovers queueing time on a heavy-tailed stream. Generate a
    // saturating lognormal stream and require SPF (and EASY
    // backfill) to beat strict FIFO on mean queueing delay.
    trace::SyntheticClusterGenerator gen(11);
    std::vector<workload::TrainingJob> jobs;
    for (auto &j : gen.generate(250)) {
        j.num_cnodes = std::min(j.num_cnodes, 16);
        jobs.push_back(j);
    }
    auto reqs = poissonRequests(jobs, 900.0, 400.0, 1.4, 4242);
    SchedulerConfig cfg;
    cfg.num_servers = 16;
    cfg.gpus_per_server = 8;
    cfg.nvlink_fraction = 0.5;

    auto runWith = [&](Policy p) {
        SchedulerConfig c = cfg;
        c.policy = p;
        if (p != Policy::Fifo) {
            c.predictor = [](const TrainingJob &, int64_t,
                             double model_run_s) {
                return model_run_s;
            };
        }
        return ClusterScheduler(c, model_).run(reqs);
    };
    auto fifo = runWith(Policy::Fifo);
    auto spf = runWith(Policy::Spf);
    auto easy = runWith(Policy::Backfill);
    ASSERT_GT(fifo.mean_wait, 0.0) << "stream must actually queue";
    EXPECT_LE(spf.mean_wait, fifo.mean_wait);
    EXPECT_LE(easy.mean_wait, fifo.mean_wait + 1e-9);
    // All three complete the same population.
    EXPECT_EQ(spf.jobs.size(), fifo.jobs.size());
    EXPECT_EQ(easy.jobs.size(), fifo.jobs.size());
}

TEST_F(PolicyTest, HeterogeneousGenerationsStretchStepTimes)
{
    // With half the fleet on older generations, the non-NVLink
    // preference lands a 1wng job on the slowest (gen-old, 0.4x)
    // server: its steps stretch by 1/0.4.
    SchedulerConfig cfg;
    cfg.num_servers = 4;
    cfg.gpus_per_server = 8;
    cfg.nvlink_fraction = 0.5;
    cfg.old_gen_fraction = 0.5;
    auto job = makeJob(1, ArchType::OneWorkerMultiGpu, 8);
    auto out = ClusterScheduler(cfg, model_)
                   .run({request(job, 0.0, 100)});
    ASSERT_EQ(out.jobs.size(), 1u);
    double base = model_.stepTime(job);
    EXPECT_NEAR(out.jobs[0].runtime(), 100.0 * base / 0.4, 1e-6);
    EXPECT_NEAR(out.jobs[0].step_s, base / 0.4, 1e-9);

    // Homogeneous control: the same job runs at full speed.
    cfg.old_gen_fraction = 0.0;
    auto flat = ClusterScheduler(cfg, model_)
                    .run({request(job, 0.0, 100)});
    EXPECT_NEAR(flat.jobs[0].runtime(), 100.0 * base, 1e-9);
}

TEST_F(PolicyTest, BestFitPreservesLargeBlocks)
{
    // Two non-NVLink servers. After a 3-GPU and a 6-GPU placement
    // the free GPUs are (5, 2). A 2-GPU job: first-fit fragments the
    // 5-block, best-fit exactly fills the 2-block -- so a later
    // 5-GPU job starts immediately only under best-fit.
    SchedulerConfig cfg;
    cfg.num_servers = 2;
    cfg.gpus_per_server = 8;
    cfg.nvlink_fraction = 0.0;
    std::vector<JobRequest> reqs{
        request(makeJob(1, ArchType::OneWorkerMultiGpu, 3), 0.0, 100),
        request(makeJob(2, ArchType::OneWorkerMultiGpu, 6), 0.0, 100),
        request(makeJob(3, ArchType::OneWorkerMultiGpu, 2), 1.0, 100),
        request(makeJob(4, ArchType::OneWorkerMultiGpu, 5), 2.0, 10)};

    auto first = ClusterScheduler(cfg, model_).run(reqs);
    EXPECT_GT(byId(first, 4).wait(), 0.0);

    cfg.placement = PlacementStrategy::BestFit;
    auto best = ClusterScheduler(cfg, model_).run(reqs);
    EXPECT_DOUBLE_EQ(byId(best, 4).wait(), 0.0);
}

TEST_F(PolicyTest, PolicyNamesRoundTrip)
{
    for (const std::string &name : policyNames()) {
        auto p = policyFromString(name);
        ASSERT_TRUE(p.has_value()) << name;
        EXPECT_EQ(toString(*p), name);
    }
    EXPECT_FALSE(policyFromString("sjf").has_value());
    EXPECT_FALSE(policyFromString("").has_value());
    EXPECT_EQ(policyNames().size(), 5u);
}

} // namespace
} // namespace paichar::clustersim
