/**
 * @file
 * Shared entry point for the trace-parser fuzz target and the corpus
 * replay test: one input buffer in, parsed through the same
 * auto-detection path the CLI uses (`paib` magic -> binary decoder,
 * anything else -> CSV parser), with round-trip cross-checks on
 * accepted inputs.
 *
 * The harness must never crash, assert, or hang on arbitrary bytes —
 * that is the contract being fuzzed (trace/binary_trace.h promises a
 * clean ParseResult error for malformed input).
 */

#ifndef PAICHAR_TESTS_FUZZ_FUZZ_HARNESS_H
#define PAICHAR_TESTS_FUZZ_FUZZ_HARNESS_H

#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "trace/binary_trace.h"
#include "trace/trace_io.h"

namespace paichar::testkit_fuzz {

/** Parse @p data the way readTraceFile() would (by magic). */
inline trace::ParseResult
fuzzParse(std::string_view data)
{
    if (trace::looksBinary(data))
        return trace::fromBinary(data);
    return trace::fromCsv(data);
}

/**
 * One fuzz iteration. Accepted inputs are additionally round-tripped
 * through both encoders: a value the parser accepted must serialize
 * and re-parse to the same jobs, in both CSV and `paib`. A round-trip
 * mismatch aborts, which libFuzzer reports as a crash with the
 * offending input preserved.
 */
inline void
fuzzOne(std::string_view data)
{
    trace::ParseResult r = fuzzParse(data);
    if (!r.ok) {
        // Errors must be described; a silent failure is a bug.
        if (r.error.empty()) {
            std::fprintf(stderr, "rejected input with empty error\n");
            std::abort();
        }
        return;
    }
    const std::string csv = trace::toCsv(r.jobs);
    trace::ParseResult rt_csv = trace::fromCsv(csv);
    const std::string bin = trace::toBinary(r.jobs);
    trace::ParseResult rt_bin = trace::fromBinary(bin);
    if (!rt_csv.ok || !rt_bin.ok ||
        rt_csv.jobs.size() != r.jobs.size() ||
        rt_bin.jobs.size() != r.jobs.size() ||
        trace::toCsv(rt_csv.jobs) != csv ||
        trace::toCsv(rt_bin.jobs) != csv) {
        std::fprintf(stderr, "round-trip mismatch on accepted input\n");
        std::abort();
    }
}

} // namespace paichar::testkit_fuzz

#endif // PAICHAR_TESTS_FUZZ_FUZZ_HARNESS_H
