/**
 * @file
 * Corpus replay for the trace-parser fuzz harness (`ctest -L fuzz`).
 *
 * Every committed corpus file runs through the exact fuzz entry point
 * (tests/fuzz/fuzz_harness.h). Naming convention enforced here:
 *   ok_*   must parse successfully,
 *   bad_*  must be rejected with a clean, non-empty error.
 * Either way the harness's round-trip/abort checks apply, so a crash
 * or hang regression in the parsers fails this suite without needing
 * a fuzzing engine in CI.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz_harness.h"

namespace paichar::testkit_fuzz {
namespace {

namespace fs = std::filesystem;

std::string
slurp(const fs::path &p)
{
    std::ifstream f(p, std::ios::binary);
    EXPECT_TRUE(f) << "cannot read " << p;
    std::ostringstream buf;
    buf << f.rdbuf();
    return buf.str();
}

std::vector<fs::path>
corpusFiles()
{
    std::vector<fs::path> files;
    for (const auto &e : fs::directory_iterator(PAICHAR_FUZZ_CORPUS_DIR))
        if (e.is_regular_file())
            files.push_back(e.path());
    std::sort(files.begin(), files.end());
    return files;
}

TEST(FuzzReplayTest, CorpusIsPresentAndCoversBothOutcomes)
{
    int ok = 0, bad = 0;
    for (const auto &p : corpusFiles()) {
        std::string name = p.filename().string();
        if (name.rfind("ok_", 0) == 0)
            ++ok;
        else if (name.rfind("bad_", 0) == 0)
            ++bad;
        else
            ADD_FAILURE() << "corpus file '" << name
                          << "' must be named ok_* or bad_*";
    }
    // A missing/empty corpus must fail loudly, never skip.
    EXPECT_GE(ok, 2) << "need accepted-input seeds in the corpus";
    EXPECT_GE(bad, 5) << "need malformed-input seeds in the corpus";
}

TEST(FuzzReplayTest, EveryCorpusFileReplaysCleanly)
{
    auto files = corpusFiles();
    ASSERT_FALSE(files.empty())
        << "empty corpus at " << PAICHAR_FUZZ_CORPUS_DIR;
    for (const auto &p : files) {
        SCOPED_TRACE(p.filename().string());
        const std::string data = slurp(p);
        // The harness aborts on round-trip or error-hygiene bugs.
        fuzzOne(data);
        trace::ParseResult r = fuzzParse(data);
        if (p.filename().string().rfind("ok_", 0) == 0) {
            EXPECT_TRUE(r.ok) << r.error;
            EXPECT_FALSE(r.jobs.empty());
        } else {
            EXPECT_FALSE(r.ok);
            EXPECT_FALSE(r.error.empty());
        }
    }
}

// The zero-copy mmap reader is a second consumer of the same wire
// format: every corpus file must be accepted/rejected exactly like
// the buffered parser, with byte-identical error text.
TEST(FuzzReplayTest, StoreReaderAgreesWithParserOnWholeCorpus)
{
    for (const auto &p : corpusFiles()) {
        SCOPED_TRACE(p.filename().string());
        const std::string data = slurp(p);
        trace::ParseResult parsed = fuzzParse(data);
        trace::StoreResult store =
            trace::readTraceStore(p.string());
        EXPECT_EQ(store.ok, parsed.ok);
        EXPECT_EQ(store.error, parsed.error);
        if (parsed.ok) {
            ASSERT_EQ(store.store.size(), parsed.jobs.size());
            EXPECT_EQ(trace::toCsv(store.store.materialize()),
                      trace::toCsv(parsed.jobs));
        }
    }
}

} // namespace
} // namespace paichar::testkit_fuzz
