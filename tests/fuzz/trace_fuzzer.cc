/**
 * @file
 * Fuzz target for the trace parsers (build with -DPAICHAR_FUZZ=ON).
 *
 * Under clang this links against libFuzzer (+ASan) and explores
 * inputs coverage-guided:
 *   ./tests/trace_fuzzer tests/fuzz/corpus -max_total_time=60
 * Under gcc (no libFuzzer) the same translation unit is built with
 * PAICHAR_FUZZ_STANDALONE, giving a file-replay driver over the same
 * entry point:
 *   ./tests/trace_fuzzer tests/fuzz/corpus/<file>...
 */

#include <cstdint>

#include "fuzz_harness.h"

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    paichar::testkit_fuzz::fuzzOne(
        {reinterpret_cast<const char *>(data), size});
    return 0;
}

#ifdef PAICHAR_FUZZ_STANDALONE

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: trace_fuzzer <input file>...\n";
        return 2;
    }
    for (int i = 1; i < argc; ++i) {
        std::ifstream f(argv[i], std::ios::binary);
        if (!f) {
            std::cerr << "cannot read " << argv[i] << "\n";
            return 2;
        }
        std::ostringstream buf;
        buf << f.rdbuf();
        const std::string data = buf.str();
        LLVMFuzzerTestOneInput(
            reinterpret_cast<const uint8_t *>(data.data()), data.size());
        std::cout << argv[i] << ": ok (" << data.size() << " bytes)\n";
    }
    return 0;
}

#endif // PAICHAR_FUZZ_STANDALONE
