/**
 * @file
 * Tests for the simulated testbed (Sec IV's measurement substrate).
 */

#include <gtest/gtest.h>

#include "core/analytical_model.h"
#include "hw/units.h"
#include "testbed/training_sim.h"

namespace paichar::testbed {
namespace {

using hw::kGB;
using hw::kMB;
using hw::kTFLOPs;
using workload::ArchType;
using workload::CaseStudyModel;
using workload::ModelZoo;

TEST(TrainingSimTest, PhasesSumToTotal)
{
    TrainingSimulator sim;
    for (const auto &m : ModelZoo::all()) {
        StepResult r = sim.run(m);
        EXPECT_NEAR(r.data_time + r.compute_time + r.comm_time,
                    r.total_time, 1e-9)
            << m.name;
        EXPECT_GT(r.total_time, 0.0) << m.name;
        EXPECT_GT(r.num_kernels, 10) << m.name;
    }
}

TEST(TrainingSimTest, KernelAccountingMatchesGraph)
{
    TrainingSimulator sim;
    auto m = ModelZoo::resnet50();
    StepResult r = sim.run(m);

    // Kernel service seconds follow demand / (capacity * measured
    // efficiency).
    double flops_rate = 15e12 * m.measured_efficiency.gpu_flops;
    double mem_rate = 900e9 * m.measured_efficiency.gpu_memory;
    EXPECT_NEAR(r.compute_flops_time,
                m.features.flop_count / flops_rate,
                1e-9 * r.compute_flops_time);
    EXPECT_NEAR(r.compute_mem_time,
                m.features.mem_access_bytes / mem_rate,
                1e-9 * r.compute_mem_time);
    // The compute phase is serial on one GPU: service + overhead.
    EXPECT_NEAR(r.compute_time,
                r.compute_flops_time + r.compute_mem_time +
                    r.overhead_time,
                1e-9);
    EXPECT_NEAR(r.overhead_time,
                r.num_kernels * sim.options().kernel_launch_overhead,
                1e-12);
}

TEST(TrainingSimTest, DataPhaseUsesMeasuredPcieEfficiency)
{
    TrainingSimulator sim;
    auto m = ModelZoo::speech();
    StepResult r = sim.run(m);
    double pcie_rate = 10e9 * m.measured_efficiency.pcie;
    EXPECT_NEAR(r.data_time, m.features.input_bytes / pcie_rate,
                1e-9);
}

TEST(TrainingSimTest, PreprocessingDelaysDataPhase)
{
    SimOptions opts;
    opts.preprocessing_rate = 1e9;
    TrainingSimulator sim(opts);
    auto m = ModelZoo::speech();
    StepResult r = sim.run(m);
    double pcie_rate = 10e9 * m.measured_efficiency.pcie;
    EXPECT_NEAR(r.data_time,
                m.features.input_bytes / 1e9 +
                    m.features.input_bytes / pcie_rate,
                1e-9);
}

TEST(TrainingSimTest, OneWorkerOneGpuHasNoCommPhase)
{
    TrainingSimulator sim;
    StepResult r = sim.run(ModelZoo::speech());
    EXPECT_DOUBLE_EQ(r.comm_time, 0.0);
}

TEST(TrainingSimTest, PsWorkerCommMatchesSerialLegs)
{
    TrainingSimulator sim;
    auto m = ModelZoo::multiInterests();
    StepResult r = sim.run(m);
    double nic = 25e9 / 8.0 * m.measured_efficiency.network;
    double pcie = 10e9 * m.measured_efficiency.pcie;
    EXPECT_NEAR(r.comm_time,
                m.features.comm_bytes / nic +
                    m.features.comm_bytes / pcie,
                1e-6);
}

TEST(TrainingSimTest, MetadataCoversStep)
{
    TrainingSimulator sim;
    auto m = ModelZoo::bert();
    StepResult r = sim.run(m);
    EXPECT_EQ(static_cast<int>(r.metadata.ops.size()),
              r.num_kernels);
    // Input + at least one weight-sync record.
    EXPECT_GE(r.metadata.transfers.size(), 2u);
    EXPECT_EQ(r.metadata.meta.arch, ArchType::AllReduceLocal);
    EXPECT_EQ(r.metadata.meta.num_cnodes, 8);
    for (const auto &op : r.metadata.ops) {
        EXPECT_LE(op.start, op.end);
        EXPECT_GE(op.start, r.data_time - 1e-12);
    }
}

TEST(TrainingSimTest, DeterministicAcrossRuns)
{
    TrainingSimulator sim;
    auto m = ModelZoo::gcn();
    StepResult a = sim.run(m);
    StepResult b = sim.run(m);
    EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
    EXPECT_DOUBLE_EQ(a.comm_time, b.comm_time);
}

TEST(TrainingSimTest, PearlCommFarBelowPsWorkerForGcn)
{
    // Fig 13(d): training GCN with PEARL cuts the communication share
    // from ~95% (PS/Worker estimate) to a small fraction.
    TrainingSimulator sim;
    auto m = ModelZoo::gcn();
    StepResult pearl = sim.run(m);
    StepResult ps = sim.run(m.graph, m.features, ArchType::PsWorker,
                            m.num_cnodes, m.measured_efficiency);
    double pearl_share = pearl.comm_time / pearl.total_time;
    double ps_share = ps.comm_time / ps.total_time;
    EXPECT_GT(ps_share, 0.90);
    EXPECT_LT(pearl_share, 0.45);
}

TEST(TrainingSimTest, SharedPcieSerializes1wngReplicas)
{
    TrainingSimulator sim;
    auto m = ModelZoo::resnet50();
    StepResult spread = sim.run(m.graph, m.features,
                                ArchType::AllReduceLocal, 4,
                                m.measured_efficiency);
    StepResult shared = sim.run(m.graph, m.features,
                                ArchType::OneWorkerMultiGpu, 4,
                                m.measured_efficiency);
    // 4 replicas loading through one PCIe root take ~4x as long.
    EXPECT_NEAR(shared.data_time / spread.data_time, 4.0, 1e-6);
}

TEST(TrainingSimTest, ValidationDeltasMatchFig12Shape)
{
    // Fig 12: the 70%-assumption analytical estimate lands within
    // ~20% of the simulated measurement for five models; Speech is a
    // large-negative outlier because of its 3.1% HBM efficiency.
    TrainingSimulator sim;
    core::AnalyticalModel model(hw::v100Testbed());
    model.setPcieContention(false);

    for (const auto &m : ModelZoo::all()) {
        workload::TrainingJob job;
        job.arch = m.arch;
        job.num_cnodes = m.num_cnodes;
        job.features = m.features;
        double predicted = model.stepTime(job);
        double actual = sim.run(m).total_time;
        double diff = (predicted - actual) / actual;
        if (m.name == "Speech") {
            EXPECT_LT(diff, -0.30) << m.name;
        } else {
            EXPECT_LT(std::abs(diff), 0.25) << m.name << " " << diff;
        }
    }
}

} // namespace
} // namespace paichar::testbed
