/**
 * @file
 * Coverage for the multi-server paths: AllReduce-Cluster training in
 * the testbed, cross-server placement in the scheduler, and analyses
 * over populations containing every architecture.
 */

#include <gtest/gtest.h>

#include "clustersim/scheduler.h"
#include "core/characterization.h"
#include "core/sweep.h"
#include "hw/units.h"
#include "testbed/training_sim.h"

namespace paichar {
namespace {

using workload::ArchType;
using workload::ModelZoo;
using workload::TrainingJob;

TEST(ClusterArchTest, TestbedRunsAllReduceClusterAcrossServers)
{
    testbed::TrainingSimulator sim;
    auto m = ModelZoo::bert();
    // 16 replicas -> two full NVLink servers, hierarchical AllReduce.
    auto r16 = sim.run(m.graph, m.features, ArchType::AllReduceCluster,
                       16, m.measured_efficiency);
    auto r8 = sim.run(m.graph, m.features, ArchType::AllReduceLocal,
                      8, m.measured_efficiency);
    EXPECT_GT(r16.comm_time, r8.comm_time); // Ethernet leg added
    EXPECT_GT(r16.total_time, 0.0);
    EXPECT_NEAR(r16.compute_time, r8.compute_time, 1e-9);
    EXPECT_EQ(r16.metadata.meta.num_cnodes, 16);
}

TEST(ClusterArchTest, ClusterAllReduceCommGrowsWithServerCount)
{
    testbed::TrainingSimulator sim;
    auto m = ModelZoo::bert();
    double prev = 0.0;
    for (int n : {16, 32, 64}) {
        auto r = sim.run(m.graph, m.features,
                         ArchType::AllReduceCluster, n,
                         m.measured_efficiency);
        // More servers -> more NIC ring phases -> longer sync.
        EXPECT_GT(r.comm_time, prev) << n;
        prev = r.comm_time;
    }
}

TEST(ClusterArchTest, SchedulerPlacesAllReduceClusterOnWholeServers)
{
    core::AnalyticalModel model(hw::paiCluster());
    clustersim::SchedulerConfig cfg;
    cfg.num_servers = 4;
    cfg.gpus_per_server = 8;
    cfg.nvlink_fraction = 1.0;
    clustersim::ClusterScheduler sched(cfg, model);

    TrainingJob job;
    job.id = 1;
    job.arch = ArchType::AllReduceCluster;
    job.num_cnodes = 24; // three full servers
    job.features.batch_size = 64;
    job.features.flop_count = 1e12;
    job.features.comm_bytes = 1e9;
    job.features.dense_weight_bytes = 1e9;
    ASSERT_TRUE(sched.placeable(job));

    auto out = sched.run({clustersim::JobRequest{job, 0.0, 10}});
    ASSERT_EQ(out.jobs.size(), 1u);
    EXPECT_EQ(out.jobs[0].gpus, 24);

    // Without NVLink servers it cannot be placed at all.
    cfg.nvlink_fraction = 0.0;
    clustersim::ClusterScheduler no_nvl(cfg, model);
    EXPECT_FALSE(no_nvl.placeable(job));
}

TEST(ClusterArchTest, CharacterizerHandlesEveryArchitecture)
{
    core::AnalyticalModel model(hw::paiCluster());
    std::vector<TrainingJob> jobs;
    int64_t id = 0;
    for (ArchType arch : workload::kAllArchTypes) {
        TrainingJob j;
        j.id = id++;
        j.arch = arch;
        j.num_cnodes = arch == ArchType::OneWorkerOneGpu ? 1 : 8;
        j.features.batch_size = 32;
        j.features.flop_count = 1e12;
        j.features.mem_access_bytes = 1e10;
        j.features.input_bytes = 1e7;
        j.features.comm_bytes =
            arch == ArchType::OneWorkerOneGpu ? 0.0 : 5e8;
        j.features.embedding_comm_bytes =
            arch == ArchType::Pearl ? 4e8 : 0.0;
        j.features.dense_weight_bytes = 5e8;
        jobs.push_back(j);
    }
    core::ClusterCharacterizer ch(model, jobs);
    auto c = ch.constitution();
    EXPECT_EQ(c.total_jobs, 6);
    for (core::Level level : {core::Level::Job, core::Level::CNode}) {
        auto avg = ch.avgBreakdown(std::nullopt, level);
        EXPECT_NEAR(avg[0] + avg[1] + avg[2] + avg[3], 1.0, 1e-12);
    }
    // PEARL's partitioned comm is cheaper than AllReduce-Local's
    // replicated comm at the same volume.
    size_t arl = 0, pearl = 0;
    for (size_t i = 0; i < jobs.size(); ++i) {
        if (jobs[i].arch == ArchType::AllReduceLocal)
            arl = i;
        if (jobs[i].arch == ArchType::Pearl)
            pearl = i;
    }
    EXPECT_LT(ch.breakdownOf(pearl).t_weight,
              ch.breakdownOf(arl).t_weight);
}

TEST(ClusterArchTest, SweepUnderIdealOverlap)
{
    // Under ideal overlap, only the bottleneck resource matters: a
    // comm-bound PS job gains nothing from GPU upgrades but the full
    // factor from Ethernet until compute becomes the bottleneck.
    core::HardwareSweep sweep(hw::paiCluster());
    TrainingJob job;
    job.arch = ArchType::PsWorker;
    job.num_cnodes = 8;
    job.features.batch_size = 32;
    job.features.flop_count = 0.1e12;
    job.features.mem_access_bytes = 1e9;
    job.features.input_bytes = 1e6;
    job.features.comm_bytes = 2e9;
    job.features.dense_weight_bytes = 2e9;
    std::vector<TrainingJob> jobs{job};

    double gpu = sweep.avgSpeedup(jobs, hw::Resource::GpuFlops, 64.0,
                                  core::OverlapMode::IdealOverlap);
    double eth = sweep.avgSpeedup(jobs, hw::Resource::Ethernet, 100.0,
                                  core::OverlapMode::IdealOverlap);
    EXPECT_NEAR(gpu, 1.0, 1e-12);
    EXPECT_GT(eth, 1.5);
}

} // namespace
} // namespace paichar
