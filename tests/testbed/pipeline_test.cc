/**
 * @file
 * Tests for pipelined multi-step simulation (Sec V-B overlap) and
 * PS-tier contention modeling.
 */

#include <gtest/gtest.h>

#include "testbed/training_sim.h"

namespace paichar::testbed {
namespace {

using workload::ModelZoo;

TEST(PipelineTest, SteadyStateApproachesMaxOfPhases)
{
    // For a comm-heavy model, the overlapped steady-state period
    // should approach max{Td, Tc, Tw}, well below the sequential sum.
    TrainingSimulator sim;
    auto m = ModelZoo::bert();
    auto seq = sim.run(m);
    auto pipe = sim.runPipelined(m, 12);

    double max_phase = std::max(
        {seq.data_time, seq.compute_time, seq.comm_time});
    EXPECT_NEAR(pipe.nonoverlap_step_time, seq.total_time, 1e-9);
    EXPECT_LT(pipe.steady_step_time, seq.total_time);
    // Within 15% of the ideal-overlap bound (pipeline fill effects
    // and phase latencies keep it slightly above).
    EXPECT_GT(pipe.steady_step_time, 0.95 * max_phase);
    EXPECT_LT(pipe.steady_step_time, 1.15 * max_phase);
    EXPECT_GT(pipe.hiddenFraction(), 0.0);
}

TEST(PipelineTest, SingleStepMatchesSequentialRoughly)
{
    TrainingSimulator sim;
    auto m = ModelZoo::resnet50();
    auto pipe = sim.runPipelined(m, 1);
    EXPECT_EQ(pipe.steps, 1);
    // One step has nothing to overlap with.
    EXPECT_NEAR(pipe.total_time, pipe.nonoverlap_step_time,
                0.05 * pipe.nonoverlap_step_time);
}

TEST(PipelineTest, GatingOnCommSlowsTheSteadyState)
{
    TrainingSimulator sim;
    auto m = ModelZoo::bert();
    auto free_run = sim.runPipelined(m, 12, /*gate_on_comm=*/false);
    auto gated = sim.runPipelined(m, 12, /*gate_on_comm=*/true);
    EXPECT_GE(gated.steady_step_time,
              free_run.steady_step_time - 1e-12);
    // Gated steady state ~ max{Td, Tc + Tw}.
    auto seq = sim.run(m);
    double bound =
        std::max(seq.data_time, seq.compute_time + seq.comm_time);
    EXPECT_NEAR(gated.steady_step_time, bound, 0.15 * bound);
}

TEST(PipelineTest, OneWorkerOneGpuOverlapsDataOnly)
{
    TrainingSimulator sim;
    auto m = ModelZoo::speech(); // 1w1g, heavy data phase
    auto seq = sim.run(m);
    auto pipe = sim.runPipelined(m, 8);
    // Data I/O hides under compute: steady ~ max{Td, Tc}.
    double bound = std::max(seq.data_time, seq.compute_time);
    EXPECT_NEAR(pipe.steady_step_time, bound, 0.1 * bound);
}

TEST(PipelineTest, ThroughputScalesWithSteps)
{
    TrainingSimulator sim;
    auto m = ModelZoo::nmt();
    auto p4 = sim.runPipelined(m, 4);
    auto p16 = sim.runPipelined(m, 16);
    // Total time grows ~linearly in steps at the steady period.
    EXPECT_NEAR(p16.total_time - p4.total_time,
                12 * p16.steady_step_time,
                0.15 * 12 * p16.steady_step_time);
}

TEST(PsContentionTest, UnderProvisionedPsTierBottlenecks)
{
    auto m = ModelZoo::multiInterests(); // 32 workers
    SimOptions few, many;
    few.num_ps = 1;
    few.model_ps_contention = true;
    many.num_ps = 32;
    many.model_ps_contention = true;

    auto r_few = TrainingSimulator(few).run(m);
    auto r_many = TrainingSimulator(many).run(m);
    auto r_off = TrainingSimulator().run(m);

    // One PS NIC carries all 32 workers' traffic: far slower.
    EXPECT_GT(r_few.comm_time, 8.0 * r_many.comm_time);
    // A well-provisioned tier adds only the extra serial leg.
    EXPECT_LT(r_many.comm_time, 2.5 * r_off.comm_time);
    // Compute/data phases are unaffected by the PS tier.
    EXPECT_NEAR(r_few.compute_time, r_off.compute_time, 1e-9);
    EXPECT_NEAR(r_few.data_time, r_off.data_time, 1e-9);
}

TEST(PsContentionTest, MorePsNodesMonotonicallyHelps)
{
    auto m = ModelZoo::multiInterests();
    double prev = 0.0;
    for (int ps : {1, 2, 4, 8, 16}) {
        SimOptions o;
        o.num_ps = ps;
        o.model_ps_contention = true;
        double t = TrainingSimulator(o).run(m).comm_time;
        if (prev > 0.0) {
            EXPECT_LE(t, prev + 1e-9) << "num_ps=" << ps;
        }
        prev = t;
    }
}

} // namespace
} // namespace paichar::testbed
