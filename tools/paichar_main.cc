/**
 * @file
 * Entry point for the `paichar` command-line tool; all logic lives in
 * the testable pai_cli library.
 */

#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return paichar::cli::run(args, std::cout, std::cerr);
}
