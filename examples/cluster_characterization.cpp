/**
 * @file
 * End-to-end cluster characterization: synthesize a PAI-like job
 * population, run the Sec III collective-behavior analysis, and print
 * the paper's "Summary of Key Observations" (Sec III-D) as computed
 * from this trace.
 *
 * Usage: cluster_characterization [num_jobs] [seed]
 */

#include <cstdio>
#include <cstdlib>

#include "core/characterization.h"
#include "core/projection.h"
#include "core/sweep.h"
#include "hw/units.h"
#include "stats/table.h"
#include "trace/synthetic_cluster.h"

using namespace paichar;
using core::Component;
using core::Level;
using workload::ArchType;

int
main(int argc, char **argv)
{
    size_t num_jobs = argc > 1 ? std::strtoul(argv[1], nullptr, 10)
                               : 20000;
    uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                             : 20181201;

    std::printf("Synthesizing %zu jobs (seed %llu)...\n\n", num_jobs,
                static_cast<unsigned long long>(seed));
    hw::ClusterSpec spec = hw::paiCluster();
    core::AnalyticalModel model(spec);
    trace::SyntheticClusterGenerator gen(seed);
    core::ClusterCharacterizer ch(model, gen.generate(num_jobs));

    std::printf("Summary of key observations (Sec III-D), as measured "
                "on this trace:\n\n");

    auto c = ch.constitution();
    std::printf(". Distributed training dominates resource "
                "consumption: PS/Worker jobs are %s of\n  jobs but "
                "hold %s of all cNodes.\n\n",
                stats::fmtPct(c.jobShare(ArchType::PsWorker)).c_str(),
                stats::fmtPct(c.cnodeShare(ArchType::PsWorker))
                    .c_str());

    auto wcdf = ch.weightSizeCdf(std::nullopt);
    std::printf(". %s of jobs train models smaller than 10 GB; the "
                "largest synthetic model is %s\n  (trained in "
                "large-scale distributed mode).\n\n",
                stats::fmtPct(wcdf.probAtOrBelow(10 * hw::kGB)).c_str(),
                stats::fmtBytes(wcdf.max()).c_str());

    auto cl = ch.avgBreakdown(std::nullopt, Level::CNode);
    auto ps = ch.componentCdf(Component::WeightTraffic,
                              ArchType::PsWorker, Level::Job);
    std::printf(". Weight/gradient communication takes %s of total "
                "execution time (cNode level);\n  computation "
                "contributes %s (compute-bound %s, memory-bound %s). "
                "%s of PS/Worker\n  jobs spend more than 80%% of "
                "their time communicating.\n\n",
                stats::fmtPct(cl[1]).c_str(),
                stats::fmtPct(cl[2] + cl[3]).c_str(),
                stats::fmtPct(cl[2]).c_str(),
                stats::fmtPct(cl[3]).c_str(),
                stats::fmtPct(1.0 - ps.probAtOrBelow(0.8)).c_str());

    core::ArchitectureProjector proj(model);
    int n = 0, tput_up = 0;
    for (const auto &job : ch.jobs()) {
        if (job.arch != ArchType::PsWorker)
            continue;
        ++n;
        tput_up += proj.project(job, ArchType::AllReduceLocal)
                       .throughput_speedup > 1.0;
    }
    std::printf(". Throughput of %s of PS/Worker workloads improves "
                "when ported to AllReduce-Local\n  over NVLink.\n\n",
                stats::fmtPct(static_cast<double>(tput_up) / n)
                    .c_str());

    core::HardwareSweep sweep(spec);
    std::vector<workload::TrainingJob> ps_jobs;
    for (const auto &job : ch.jobs()) {
        if (job.arch == ArchType::PsWorker)
            ps_jobs.push_back(job);
    }
    std::printf(". PS/Worker workloads are most sensitive to Ethernet "
                "bandwidth: upgrading 25 -> 100\n  Gbps buys %.2fx on "
                "average; the bottleneck shifts to PCIe/GPU memory "
                "after projection.\n",
                sweep.avgSpeedup(ps_jobs, hw::Resource::Ethernet,
                                 100.0));
    return 0;
}
