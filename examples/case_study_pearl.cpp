/**
 * @file
 * Case study (Sec IV-C/IV-D): train the GCN recommendation model --
 * 54 GB of embeddings, 207 MB of dense weights -- on the simulated
 * V100 testbed under three strategies, and show why PEARL exists.
 *
 * Also demonstrates the profiling pipeline of Fig 4: the simulator
 * emits run metadata, the feature extractor reduces it back to the
 * workload schema.
 */

#include <cstdio>

#include "profiler/feature_extraction.h"
#include "stats/table.h"
#include "testbed/training_sim.h"

using namespace paichar;

int
main()
{
    workload::CaseStudyModel gcn = workload::ModelZoo::gcn();
    testbed::TrainingSimulator sim;

    std::printf("GCN: %s dense + %s embedding weights, %s traffic "
                "per step per cNode\n\n",
                stats::fmtBytes(gcn.features.dense_weight_bytes)
                    .c_str(),
                stats::fmtBytes(gcn.features.embedding_weight_bytes)
                    .c_str(),
                stats::fmtBytes(gcn.features.comm_bytes).c_str());

    stats::Table t({"strategy", "step time", "comm time",
                    "comm share", "note"});
    struct Variant
    {
        workload::ArchType arch;
        const char *note;
    };
    for (auto [arch, note] :
         {Variant{workload::ArchType::PsWorker,
                  "Ethernet+PCIe strangles it"},
          Variant{workload::ArchType::AllReduceLocal,
                  "replicates 54 GB: infeasible on a real GPU"},
          Variant{workload::ArchType::Pearl,
                  "partitioned embeddings over the NVLink mesh"}}) {
        auto r = sim.run(gcn.graph, gcn.features, arch,
                         gcn.num_cnodes, gcn.measured_efficiency);
        t.addRow({workload::toString(arch),
                  stats::fmtSeconds(r.total_time),
                  stats::fmtSeconds(r.comm_time),
                  stats::fmtPct(r.comm_time / r.total_time), note});
    }
    std::printf("%s\n", t.render().c_str());

    // The Fig 4 pipeline: raw profile -> workload features.
    auto result = sim.run(gcn);
    profiler::FeatureExtractor fx;
    auto extracted = fx.extract(result.metadata);
    std::printf("Profiling round trip (run metadata -> features):\n");
    std::printf("  kernels recorded: %zu, device busy: %s\n",
                result.metadata.ops.size(),
                stats::fmtSeconds(fx.kernelBusyTime(result.metadata))
                    .c_str());
    std::printf("  FLOPs  %s (model: %s)\n",
                stats::fmt(extracted.features.flop_count / 1e9, 1)
                        .c_str(),
                stats::fmt(gcn.features.flop_count / 1e9, 1).c_str());
    std::printf("  mem    %s (model: %s)\n",
                stats::fmtBytes(extracted.features.mem_access_bytes)
                    .c_str(),
                stats::fmtBytes(gcn.features.mem_access_bytes)
                    .c_str());
    std::printf("  moved  %s per GPU under PEARL (logical traffic "
                "%s: embeddings travel once,\n         partitioned "
                "across %d GPUs)\n",
                stats::fmtBytes(extracted.features.comm_bytes).c_str(),
                stats::fmtBytes(gcn.features.comm_bytes).c_str(),
                gcn.num_cnodes);
    return 0;
}
