/**
 * @file
 * Quickstart: describe a training workload by its fundamental
 * demands, predict its step-time breakdown with the paper's
 * analytical model, and ask what porting it to AllReduce would buy.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/analytical_model.h"
#include "core/projection.h"
#include "hw/units.h"
#include "stats/table.h"

using namespace paichar;

int
main()
{
    // 1. The hardware: the paper's production cluster (Table I).
    hw::ClusterSpec cluster = hw::paiCluster();
    core::AnalyticalModel model(cluster);

    // 2. A workload: a 16-worker PS/Worker recommendation job.
    workload::TrainingJob job;
    job.arch = workload::ArchType::PsWorker;
    job.num_cnodes = 16;
    job.num_ps = 4;
    job.features.batch_size = 512;
    job.features.flop_count = 0.8 * hw::kTFLOPs; // per step per GPU
    job.features.mem_access_bytes = 60 * hw::kGB;
    job.features.input_bytes = 90 * hw::kMB;  // samples over PCIe
    job.features.comm_bytes = 900 * hw::kMB;  // weights/grads per step
    job.features.dense_weight_bytes = 900 * hw::kMB;

    // 3. Where does the time go? (Eq 1, Sec II-B)
    core::TimeBreakdown b = model.breakdown(job);
    stats::Table t({"component", "time", "share"});
    for (core::Component c : core::kAllComponents) {
        t.addRow({core::toString(c), stats::fmtSeconds(b.time(c)),
                  stats::fmtPct(b.fraction(c))});
    }
    std::printf("Step-time breakdown on %s:\n%s", cluster.name.c_str(),
                t.render().c_str());
    std::printf("step time: %s | throughput (Eq 2): %.0f samples/s\n\n",
                stats::fmtSeconds(b.total()).c_str(),
                model.throughput(job));

    // 4. What if we port it to AllReduce-Local on an NVLink server?
    core::ArchitectureProjector proj(model);
    auto r = proj.project(job, workload::ArchType::AllReduceLocal);
    std::printf("Ported to AllReduce-Local (cNodes %d -> %d):\n",
                job.num_cnodes, r.projected.num_cnodes);
    std::printf("  single-cNode speedup: %.2fx\n",
                r.single_node_speedup);
    std::printf("  overall-throughput speedup: %.2fx\n",
                r.throughput_speedup);
    std::printf("  (comm-bound jobs approach the Eq 3 limit of "
                "21x)\n");
    return 0;
}
