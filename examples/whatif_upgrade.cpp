/**
 * @file
 * "What should we buy?" -- the Sec VI capacity-planning exercise: for
 * a given workload, rank architecture choices and hardware upgrades
 * by the end-to-end speedup the analytical model predicts.
 *
 * Usage: whatif_upgrade [model]
 *   model in {resnet50, nmt, bert, speech, multi-interests, gcn};
 *   default multi-interests.
 */

#include <cstdio>
#include <cstring>

#include "core/projection.h"
#include "core/sweep.h"
#include "stats/table.h"
#include "workload/model_zoo.h"

using namespace paichar;

int
main(int argc, char **argv)
{
    const char *name = argc > 1 ? argv[1] : "multi-interests";
    workload::CaseStudyModel m = [&] {
        if (!std::strcmp(name, "resnet50"))
            return workload::ModelZoo::resnet50();
        if (!std::strcmp(name, "nmt"))
            return workload::ModelZoo::nmt();
        if (!std::strcmp(name, "bert"))
            return workload::ModelZoo::bert();
        if (!std::strcmp(name, "speech"))
            return workload::ModelZoo::speech();
        if (!std::strcmp(name, "gcn"))
            return workload::ModelZoo::gcn();
        return workload::ModelZoo::multiInterests();
    }();

    hw::ClusterSpec base = hw::v100Testbed();
    core::AnalyticalModel model(base);

    workload::TrainingJob job;
    job.arch = m.arch;
    job.num_cnodes = m.num_cnodes;
    job.features = m.features;

    std::printf("Workload: %s (%s, %d cNodes, %s weights)\n\n",
                m.name.c_str(), workload::toString(m.arch).c_str(),
                m.num_cnodes,
                stats::fmtBytes(m.features.weightBytes()).c_str());

    // --- architecture alternatives ---
    core::ArchitectureProjector proj(model);
    stats::Table ta({"architecture", "throughput speedup", "feasible?"});
    double gpu_mem_budget = 32e9; // V100-32GB per-GPU memory
    for (workload::ArchType target :
         {workload::ArchType::AllReduceLocal,
          workload::ArchType::AllReduceCluster,
          workload::ArchType::Pearl}) {
        if (target == job.arch)
            continue;
        auto r = proj.project(job, target);
        // Replicated AllReduce requires the full model per GPU;
        // PEARL only a shard of the embeddings plus the dense part.
        double per_gpu =
            target == workload::ArchType::Pearl
                ? m.features.dense_weight_bytes +
                      m.features.embedding_weight_bytes /
                          r.projected.num_cnodes
                : m.features.weightBytes();
        bool fits = per_gpu < gpu_mem_budget;
        ta.addRow({workload::toString(target),
                   stats::fmt(r.throughput_speedup, 2) + "x",
                   fits ? "yes"
                        : "NO (weights exceed GPU memory: " +
                              stats::fmtBytes(per_gpu) + ")"});
    }
    std::printf("Architecture alternatives:\n%s\n", ta.render().c_str());

    // --- hardware upgrades on the current architecture ---
    core::HardwareSweep sweep(base);
    std::vector<workload::TrainingJob> jobs{job};
    stats::Table tb({"upgrade", "speedup"});
    auto add = [&](const std::string &label, hw::Resource r,
                   double v) {
        tb.addRow({label,
                   stats::fmt(sweep.avgSpeedup(jobs, r, v), 2) + "x"});
    };
    add("Ethernet 25 -> 100 Gbps", hw::Resource::Ethernet, 100.0);
    add("PCIe 10 -> 50 GB/s", hw::Resource::Pcie, 50.0);
    add("GPU 15 -> 64 TFLOPs", hw::Resource::GpuFlops, 64.0);
    add("HBM 0.9 -> 4 TB/s", hw::Resource::GpuMemory, 4.0);
    std::printf("Hardware upgrades (keeping %s):\n%s",
                workload::toString(job.arch).c_str(),
                tb.render().c_str());
    return 0;
}
