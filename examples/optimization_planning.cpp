/**
 * @file
 * The full optimization loop the paper motivates (Sec IV-D / VI):
 * profile a workload on the simulated testbed, diagnose its
 * bottleneck from the captured run metadata, then let the planner
 * measure every combination of mixed precision, XLA fusion and
 * feasible architecture, and report the ranked plans.
 *
 * Usage: optimization_planning [model]   (default: speech)
 */

#include <cstdio>
#include <cstring>

#include "opt/optimization_planner.h"
#include "profiler/bottleneck_report.h"
#include "stats/table.h"

using namespace paichar;

int
main(int argc, char **argv)
{
    const char *name = argc > 1 ? argv[1] : "speech";
    workload::CaseStudyModel m = [&] {
        if (!std::strcmp(name, "resnet50"))
            return workload::ModelZoo::resnet50();
        if (!std::strcmp(name, "nmt"))
            return workload::ModelZoo::nmt();
        if (!std::strcmp(name, "bert"))
            return workload::ModelZoo::bert();
        if (!std::strcmp(name, "multi-interests"))
            return workload::ModelZoo::multiInterests();
        if (!std::strcmp(name, "gcn"))
            return workload::ModelZoo::gcn();
        return workload::ModelZoo::speech();
    }();

    // 1. Profile one training step and diagnose it.
    testbed::TrainingSimulator sim;
    auto step = sim.run(m);
    profiler::BottleneckAnalyzer analyzer(
        sim.options().kernel_launch_overhead);
    std::printf("== step profile: %s ==\n%s\n", m.name.c_str(),
                analyzer.analyze(step.metadata).render().c_str());

    // 2. Search the plan space (analytical prune + simulate top-K).
    opt::OptimizationPlanner planner;
    auto plans = planner.evaluate(m);
    stats::Table t({"plan", "cNodes", "step time", "throughput",
                    "speedup", "evaluator"});
    for (const auto &p : plans) {
        const auto &est = p.simulated ? p.measured : p.analytical;
        t.addRow({p.label(), std::to_string(p.spec.num_cnodes),
                  stats::fmtSeconds(est.step_time),
                  stats::fmt(p.throughput, 0) + "/s",
                  stats::fmt(p.speedup, 2) + "x",
                  p.simulated ? "simulated" : "analytical"});
    }
    std::printf("== ranked plans (baseline first) ==\n%s",
                t.render().c_str());

    auto best = planner.best(m);
    std::printf("\npick: %s -> %s per step (%.2fx)\n",
                best.label().c_str(),
                stats::fmtSeconds(best.result.total_time).c_str(),
                best.speedup);
    return 0;
}
