/**
 * @file
 * Inference serving what-if (the paper's Sec VIII future work):
 * derive a served version of a case-study model, find the largest
 * load it sustains under a p99 latency SLO, and show the batching
 * trade-off.
 *
 * Usage: inference_serving [model] [slo_ms]   (default: bert 50)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "inference/serving_sim.h"
#include "stats/table.h"

using namespace paichar;

int
main(int argc, char **argv)
{
    const char *name = argc > 1 ? argv[1] : "bert";
    double slo = (argc > 2 ? std::atof(argv[2]) : 50.0) * 1e-3;

    workload::CaseStudyModel m = [&] {
        if (!std::strcmp(name, "resnet50"))
            return workload::ModelZoo::resnet50();
        if (!std::strcmp(name, "multi-interests"))
            return workload::ModelZoo::multiInterests();
        return workload::ModelZoo::bert();
    }();
    auto w = inference::InferenceWorkload::fromTraining(m);

    inference::ServingSimulator sim;
    double solo = w.serviceTime(1, sim.config().server.gpu,
                                sim.config().launch_overhead) +
                  w.inputTime(1, sim.config().server.pcie_bandwidth);
    std::printf("%s inference: solo service %s, SLO p99 <= %s\n\n",
                w.name.c_str(), stats::fmtSeconds(solo).c_str(),
                stats::fmtSeconds(slo).c_str());
    if (slo <= solo) {
        std::printf("SLO below the single-request service time; no "
                    "load is servable.\n");
        return 0;
    }

    stats::Table t({"max batch", "max QPS under SLO",
                    "p99 at that load", "GPU util"});
    for (int mb : {1, 2, 4, 8, 16}) {
        inference::ServingConfig cfg;
        cfg.max_batch = mb;
        inference::ServingSimulator s(cfg);
        double qps = s.maxQpsUnderSlo(w, slo, 50.0 / solo, 1);
        auto at = s.run(w, std::max(qps, 1.0), 20000, 1);
        t.addRow({std::to_string(mb), stats::fmt(qps, 0),
                  stats::fmtSeconds(at.p99_latency),
                  stats::fmtPct(at.gpu_utilization)});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}
