/**
 * @file
 * Regenerates Fig 12: analytical-model estimates (uniform 70%
 * efficiency) versus simulated-testbed measurements (Table VI
 * achieved efficiencies) for the six case-study models, with the
 * relative difference (Tpredict - Tactual) / Tactual. Paper anchors:
 * the difference is below ~10% for most models; Speech is a large
 * outlier because its achieved HBM efficiency is only 3.1%.
 */

#include <cstdio>

#include "common.h"
#include "stats/ascii_plot.h"
#include "stats/table.h"
#include "testbed/training_sim.h"

using namespace paichar;

int
main()
{
    bench::printHeader("Fig 12",
                       "time-breakdown comparison: estimate vs "
                       "simulated measurement");

    core::AnalyticalModel model(hw::v100Testbed());
    model.setPcieContention(false); // per-replica view (Sec IV)
    testbed::TrainingSimulator sim;

    stats::Table t({"Model", "measured", "estimated", "difference",
                    "paper"});
    std::vector<stats::StackedBar> bars;
    for (const auto &m : workload::ModelZoo::all()) {
        workload::TrainingJob job;
        job.arch = m.arch;
        job.num_cnodes = m.num_cnodes;
        job.features = m.features;

        auto est = model.breakdown(job);
        auto meas = sim.run(m);
        double diff =
            (est.total() - meas.total_time) / meas.total_time;
        t.addRow({m.name, stats::fmtSeconds(meas.total_time),
                  stats::fmtSeconds(est.total()),
                  stats::fmtPct(diff),
                  m.name == std::string("Speech")
                      ? "large outlier (3.1% HBM eff)"
                      : "<10% in most cases"});

        bars.push_back(
            {m.name + " (meas)",
             {{"data", meas.data_time},
              {"comp(flops)", meas.compute_flops_time},
              {"comp(mem)", meas.compute_mem_time},
              {"overhead", meas.overhead_time},
              {"comm", meas.comm_time}}});
        bars.push_back(
            {m.name + " (est) ",
             {{"data", est.t_data},
              {"comp(flops)", est.t_comp_flops},
              {"comp(mem)", est.t_comp_mem},
              {"overhead", 0.0},
              {"comm", est.t_weight}}});
    }

    std::printf("%s\n", t.render().c_str());
    std::printf("Per-model time composition (left: simulated "
                "measurement, right: 70%%-assumption estimate)\n%s",
                stats::renderStackedBars(bars, 50).c_str());
    return 0;
}
