/**
 * @file
 * Ablation (Sec V-B): how much of the step time can
 * computation/communication/input overlap hide? For each case-study
 * model, compares the sequential (non-overlap) step against the
 * pipelined steady state, for both free layer-wise overlap and strict
 * synchronous gating, next to the analytical sum vs max bounds.
 */

#include <cstdio>

#include "common.h"
#include "stats/table.h"
#include "testbed/training_sim.h"

using namespace paichar;

int
main()
{
    bench::printHeader("Ablation: overlap",
                       "sequential vs pipelined training steps "
                       "(extends Sec V-B with measured overlap)");

    testbed::TrainingSimulator sim;
    core::AnalyticalModel model(hw::v100Testbed());
    model.setPcieContention(false);

    stats::Table t({"Model", "sequential", "pipelined", "gated",
                    "hidden", "analytical sum", "analytical max"});
    const int kSteps = 12;
    for (const auto &m : workload::ModelZoo::all()) {
        auto pipe = sim.runPipelined(m, kSteps, false);
        auto gated = sim.runPipelined(m, kSteps, true);

        workload::TrainingJob job;
        job.arch = m.arch;
        job.num_cnodes = m.num_cnodes;
        job.features = m.features;
        auto b = model.breakdown(job);

        t.addRow({m.name,
                  stats::fmtSeconds(pipe.nonoverlap_step_time),
                  stats::fmtSeconds(pipe.steady_step_time),
                  stats::fmtSeconds(gated.steady_step_time),
                  stats::fmtPct(pipe.hiddenFraction()),
                  stats::fmtSeconds(
                      b.total(core::OverlapMode::NonOverlap)),
                  stats::fmtSeconds(
                      b.total(core::OverlapMode::IdealOverlap))});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf(
        "Reading: 'pipelined' is the measured steady-state step "
        "period with input prefetch and\nlayer-wise comm overlap; "
        "'gated' forbids compute/comm overlap (strict sync SGD).\n"
        "The measured pipelined period tracks the analytical "
        "max{Td,Tc,Tw} bound, confirming the\npaper's claim that the "
        "overlap assumption moves ratios but not the bottleneck.\n");
    return 0;
}
