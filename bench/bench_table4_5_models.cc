/**
 * @file
 * Regenerates Table IV (model scale) and Table V (basic workload
 * features) from the model zoo, plus the op-graph composition of each
 * case-study model.
 */

#include <cstdio>

#include "common.h"
#include "stats/table.h"
#include "workload/model_zoo.h"

using namespace paichar;

int
main()
{
    bench::printHeader("Table IV & Table V",
                       "case-study model scale and workload features");

    auto models = workload::ModelZoo::all();

    {
        stats::Table t({"Model", "Domain", "Dense weights",
                        "Embedding weights", "System Architecture"});
        for (const auto &m : models) {
            t.addRow({m.name, m.domain,
                      stats::fmtBytes(m.features.dense_weight_bytes),
                      stats::fmtBytes(
                          m.features.embedding_weight_bytes),
                      workload::toString(m.arch)});
        }
        std::printf("Table IV: MODEL SCALE\n%s\n", t.render().c_str());
    }

    {
        stats::Table t({"Model", "Batch", "FLOP count", "Mem access",
                        "MemCopy(PCIe)", "Network traffic"});
        for (const auto &m : models) {
            t.addRow({m.name, stats::fmt(m.features.batch_size, 0),
                      stats::fmt(m.features.flop_count / 1e9, 1) + " G",
                      stats::fmtBytes(m.features.mem_access_bytes),
                      stats::fmtBytes(m.features.input_bytes),
                      stats::fmtBytes(m.features.comm_bytes)});
        }
        std::printf("Table V: BASIC WORKLOAD FEATURES\n%s\n",
                    t.render().c_str());
    }

    {
        stats::Table t({"Model", "ops", "kernels", "compute-bound",
                        "fusable (element-wise)", "embedding"});
        for (const auto &m : models) {
            int compute = 0, fusable = 0, embed = 0, kernels = 0;
            for (const auto &op : m.graph.ops()) {
                if (op.type == workload::OpType::DataLoad)
                    continue;
                ++kernels;
                compute += workload::isComputeBound(op.type);
                fusable += workload::isFusable(op.type);
                embed +=
                    op.type == workload::OpType::EmbeddingLookup;
            }
            t.addRow({m.name, std::to_string(m.graph.size()),
                      std::to_string(kernels),
                      std::to_string(compute),
                      std::to_string(fusable),
                      std::to_string(embed)});
        }
        std::printf("Op-graph composition (our substrate for the "
                    "Sec IV experiments)\n%s",
                    t.render().c_str());
    }
    return 0;
}
