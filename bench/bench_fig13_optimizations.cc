/**
 * @file
 * Regenerates Fig 13: effectiveness of optimization techniques on the
 * case studies.
 *
 * (a) ResNet50 / NMT / BERT under mixed precision (TensorCore) and
 *     XLA fusion. Paper anchors: ~2.8x on MatMul and ~1.44x
 *     end-to-end from MP; up to ~2x with MP+XLA.
 * (b) Speech under XLA. Paper anchors: ~3.43x on element-wise ops,
 *     ~1.83x end-to-end.
 * (c) Multi-Interests under three (batch, attention-layers)
 *     configurations: the bottleneck shifts with configuration.
 * (d) GCN under PEARL vs the PS/Worker estimate. Paper anchors:
 *     NVLink comm ~25% of step time under PEARL vs ~95% under
 *     PS/Worker.
 */

#include <cstdio>

#include "common.h"
#include "opt/passes.h"
#include "stats/ascii_plot.h"
#include "stats/table.h"
#include "testbed/training_sim.h"

using namespace paichar;
using workload::CaseStudyModel;

namespace {

testbed::StepResult
runVariant(const testbed::TrainingSimulator &sim,
           const CaseStudyModel &m, bool mp, bool xla)
{
    opt::PassManager pm;
    if (mp)
        pm.add(std::make_unique<opt::MixedPrecisionPass>());
    if (xla)
        pm.add(std::make_unique<opt::XlaFusionPass>());
    workload::OpGraph g = pm.run(m.graph);
    return sim.run(g, m.features, m.arch, m.num_cnodes,
                   m.measured_efficiency);
}

stats::StackedBar
bar(const std::string &label, const testbed::StepResult &r)
{
    return {label,
            {{"data", r.data_time},
             {"comp(flops)", r.compute_flops_time},
             {"comp(mem)", r.compute_mem_time},
             {"overhead", r.overhead_time},
             {"comm", r.comm_time}}};
}

} // namespace

int
main()
{
    bench::printHeader("Fig 13",
                       "performance with optimization techniques");
    testbed::TrainingSimulator sim;

    // ---- (a) ResNet50 / NMT / BERT: MP and XLA ----
    std::printf("(a) ResNet50 / NMT / BERT with mixed precision and "
                "XLA\n");
    {
        stats::Table t({"Model", "default", "MP", "XLA", "MP+XLA",
                        "MP e2e", "MatMul speedup", "MP+XLA e2e"});
        std::vector<stats::StackedBar> bars;
        for (auto maker :
             {workload::ModelZoo::resnet50, workload::ModelZoo::nmt,
              workload::ModelZoo::bert}) {
            CaseStudyModel m = maker();
            auto base = runVariant(sim, m, false, false);
            auto mp = runVariant(sim, m, true, false);
            auto xla = runVariant(sim, m, false, true);
            auto both = runVariant(sim, m, true, true);
            t.addRow({m.name, stats::fmtSeconds(base.total_time),
                      stats::fmtSeconds(mp.total_time),
                      stats::fmtSeconds(xla.total_time),
                      stats::fmtSeconds(both.total_time),
                      stats::fmt(base.total_time / mp.total_time, 2) +
                          "x",
                      stats::fmt(base.compute_flops_time /
                                     mp.compute_flops_time,
                                 2) +
                          "x",
                      stats::fmt(base.total_time / both.total_time,
                                 2) +
                          "x"});
            bars.push_back(bar(m.name + " default", base));
            bars.push_back(bar(m.name + " MP     ", mp));
            bars.push_back(bar(m.name + " MP+XLA ", both));
        }
        std::printf("%s\n", t.render().c_str());
        std::printf("%s\n",
                    stats::renderStackedBars(bars, 48, false).c_str());
        std::printf("Paper anchors: 2.8x MatMul / 1.44x e2e with MP; "
                    "~2x with MP+XLA (1.76x XLA-only on its "
                    "workload).\n\n");
    }

    // ---- (b) Speech with XLA ----
    std::printf("(b) Speech with XLA operation fusion\n");
    {
        CaseStudyModel m = workload::ModelZoo::speech();
        auto base = runVariant(sim, m, false, false);
        auto xla = runVariant(sim, m, false, true);
        stats::Table t({"variant", "total", "element-wise time",
                        "kernels"});
        t.addRow({"default", stats::fmtSeconds(base.total_time),
                  stats::fmtSeconds(base.compute_mem_time),
                  std::to_string(base.num_kernels)});
        t.addRow({"XLA", stats::fmtSeconds(xla.total_time),
                  stats::fmtSeconds(xla.compute_mem_time),
                  std::to_string(xla.num_kernels)});
        std::printf("%s", t.render().c_str());
        std::printf("element-wise speedup: %.2fx (paper: 3.43x), "
                    "end-to-end: %.2fx (paper: 1.83x)\n\n",
                    base.compute_mem_time / xla.compute_mem_time,
                    base.total_time / xla.total_time);
    }

    // ---- (c) Multi-Interests configurations ----
    std::printf("(c) Multi-Interests under three configurations\n");
    {
        std::vector<std::pair<std::string,
                              workload::MultiInterestsConfig>>
            cfgs{{"batch 4096, 4 attn layers", {4096, 4}},
                 {"batch 2048, 2 attn layers", {2048, 2}},
                 {"batch 256,  1 attn layer ", {256, 1}}};
        std::vector<stats::StackedBar> bars;
        stats::Table t({"configuration", "total", "comm share",
                        "element-wise share"});
        for (const auto &[label, cfg] : cfgs) {
            CaseStudyModel m = workload::ModelZoo::multiInterests(cfg);
            auto r = sim.run(m);
            bars.push_back(bar(label, r));
            t.addRow({label, stats::fmtSeconds(r.total_time),
                      stats::fmtPct(r.comm_time / r.total_time),
                      stats::fmtPct(r.compute_mem_time /
                                    r.total_time)});
        }
        std::printf("%s\n%s", t.render().c_str(),
                    stats::renderStackedBars(bars, 48).c_str());
        std::printf("Paper anchor: large batches are element-wise "
                    "bound; at the small configuration the\n"
                    "bottleneck shifts to communication.\n\n");
    }

    // ---- (d) GCN: PEARL vs PS/Worker ----
    std::printf("(d) GCN with PEARL vs PS/Worker\n");
    {
        CaseStudyModel m = workload::ModelZoo::gcn();
        auto pearl = sim.run(m);
        auto ps = sim.run(m.graph, m.features,
                          workload::ArchType::PsWorker, m.num_cnodes,
                          m.measured_efficiency);
        std::vector<stats::StackedBar> bars{
            bar("PEARL (NVLink)         ", pearl),
            bar("PS/Worker (Eth & PCIe) ", ps)};
        std::printf("%s", stats::renderStackedBars(bars, 48).c_str());
        std::printf("comm share: PEARL %s (paper: ~25%%), PS/Worker "
                    "%s (paper: ~95%%)\n",
                    stats::fmtPct(pearl.comm_time / pearl.total_time)
                        .c_str(),
                    stats::fmtPct(ps.comm_time / ps.total_time)
                        .c_str());
    }
    return 0;
}
