/**
 * @file
 * Regenerates Fig 8: CDFs of each execution-time component's share,
 * for all workloads (by hardware component, Fig 8a) and per type
 * (Fig 8b-d), each at job level (top) and cNode level (bottom).
 * Paper anchor: >40% of PS/Worker jobs spend >80% of time in
 * communication; ~5% of 1w1g jobs spend >50% on input data.
 */

#include <cstdio>
#include <optional>

#include "common.h"
#include "stats/ascii_plot.h"
#include "stats/table.h"

using namespace paichar;
using core::Component;
using core::HwComponent;
using core::Level;
using workload::ArchType;

int
main()
{
    bench::printHeader("Fig 8",
                       "CDFs of execution-time component shares");
    bench::printTraceInfo();

    auto a = bench::makeClusterAnalysis();

    for (Level level : {Level::Job, Level::CNode}) {
        const char *lvl =
            level == Level::Job ? "job-level" : "cNode-level";

        std::printf("(a) all workloads, by hardware component (%s)\n",
                    lvl);
        std::vector<stats::WeightedCdf> hw_cdfs;
        hw_cdfs.reserve(4);
        std::vector<stats::CdfSeries> hw_series;
        for (HwComponent h :
             {HwComponent::GpuFlops, HwComponent::GpuMemory,
              HwComponent::Pcie, HwComponent::Ethernet}) {
            hw_cdfs.push_back(
                a.characterizer->hwComponentCdf(h, level));
        }
        hw_series = {{"GPU_FLOPs", &hw_cdfs[0]},
                     {"GPU_memory", &hw_cdfs[1]},
                     {"PCIe", &hw_cdfs[2]},
                     {"Ethernet", &hw_cdfs[3]}};
        std::printf("%s\n",
                    stats::renderCdfPlot(hw_series, 64, 12, false,
                                         "component share")
                        .c_str());

        for (ArchType arch :
             {ArchType::OneWorkerOneGpu, ArchType::OneWorkerMultiGpu,
              ArchType::PsWorker}) {
            std::printf("(%s) %s (%s)\n",
                        arch == ArchType::OneWorkerOneGpu  ? "b"
                        : arch == ArchType::OneWorkerMultiGpu ? "c"
                                                               : "d",
                        workload::toString(arch).c_str(), lvl);
            std::vector<stats::WeightedCdf> cdfs;
            cdfs.reserve(4);
            for (Component c : core::kAllComponents)
                cdfs.push_back(
                    a.characterizer->componentCdf(c, arch, level));
            std::vector<stats::CdfSeries> series{
                {"Data I/O", &cdfs[0]},
                {"Weights traffic", &cdfs[1]},
                {"Comp.(compute-bound)", &cdfs[2]},
                {"Comp.(memory-bound)", &cdfs[3]}};
            std::printf("%s\n",
                        stats::renderCdfPlot(series, 64, 12, false,
                                             "component share")
                            .c_str());
        }
    }

    auto ps_w = a.characterizer->componentCdf(Component::WeightTraffic,
                                              ArchType::PsWorker,
                                              Level::Job);
    auto w1_d = a.characterizer->componentCdf(
        Component::DataIo, ArchType::OneWorkerOneGpu, Level::Job);
    stats::Table t({"statistic", "measured", "paper"});
    t.addRow({"PS/Worker jobs with >80% comm time",
              stats::fmtPct(1.0 - ps_w.probAtOrBelow(0.8)), ">40%"});
    t.addRow({"1w1g jobs with >50% data-I/O time",
              stats::fmtPct(1.0 - w1_d.probAtOrBelow(0.5)), "~5%"});
    std::printf("%s", t.render().c_str());
    return 0;
}
