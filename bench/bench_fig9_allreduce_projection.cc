/**
 * @file
 * Regenerates Fig 9: speedups from mapping PS/Worker workloads onto
 * the AllReduce architectures.
 *
 * (a) -> AllReduce-Local (cNodes clamped to 8): paper anchors 22.6%
 *     of jobs see no single-cNode speedup and 40.2% no throughput
 *     gain (i.e. ~60% improve).
 * (b) -> AllReduce-Cluster: ~67.9% improve overall; of the jobs
 *     AllReduce-Local could not speed up, ~37.8% improve.
 */

#include <cstdio>

#include "common.h"
#include "core/projection.h"
#include "stats/ascii_plot.h"
#include "stats/table.h"

using namespace paichar;
using workload::ArchType;

int
main()
{
    bench::printHeader("Fig 9",
                       "improvement from mapping PS jobs to AllReduce");
    bench::printTraceInfo();

    auto a = bench::makeClusterAnalysis();
    core::ArchitectureProjector proj(*a.model);

    stats::WeightedCdf single, tput, cluster_all, cluster_rescue;
    int n = 0, no_single = 0, no_tput = 0, c_sped = 0;
    int local_losers = 0, rescued = 0;
    for (const auto &job : a.jobs()) {
        if (job.arch != ArchType::PsWorker)
            continue;
        ++n;
        auto rl = proj.project(job, ArchType::AllReduceLocal);
        auto rc = proj.project(job, ArchType::AllReduceCluster);
        single.add(rl.single_node_speedup);
        tput.add(rl.throughput_speedup);
        cluster_all.add(rc.throughput_speedup);
        no_single += rl.single_node_speedup <= 1.0;
        no_tput += rl.throughput_speedup <= 1.0;
        c_sped += rc.throughput_speedup > 1.0;
        if (rl.throughput_speedup <= 1.0) {
            ++local_losers;
            cluster_rescue.add(rc.throughput_speedup);
            rescued += rc.throughput_speedup > 1.0;
        }
    }

    std::printf("(a) PS/Worker -> AllReduce-Local (%d jobs)\n", n);
    std::printf("%s\n",
                stats::renderCdfPlot({{"single cNode speedup", &single},
                                      {"throughput speedup", &tput}},
                                     64, 14, /*log_x=*/true, "speed-up")
                    .c_str());

    std::printf("(b) PS/Worker -> AllReduce-Cluster\n");
    std::printf(
        "%s\n",
        stats::renderCdfPlot(
            {{"all workloads", &cluster_all},
             {"workloads not sped-up by AllReduce-Local",
              &cluster_rescue}},
            64, 14, /*log_x=*/false, "speed-up")
            .c_str());

    stats::Table t({"statistic", "measured", "paper"});
    auto pct = [&](int k, int d) {
        return stats::fmtPct(static_cast<double>(k) / d);
    };
    t.addRow({"no single-cNode speedup (AR-Local)",
              pct(no_single, n), "22.6%"});
    t.addRow({"no throughput speedup (AR-Local)", pct(no_tput, n),
              "40.2%"});
    t.addRow({"sped up by AR-Cluster", pct(c_sped, n), "67.9%"});
    t.addRow({"AR-Local losers rescued by AR-Cluster",
              pct(rescued, std::max(1, local_losers)), "37.8%"});
    t.addRow({"max comm-bound speedup (Eq 3)",
              stats::fmt(single.max(), 1) + "x", "21x"});
    std::printf("%s", t.render().c_str());
    return 0;
}
