/**
 * @file
 * Regenerates Table I (base system settings) and Table III (hardware
 * configuration variations) from the hardware presets.
 */

#include <cstdio>

#include "common.h"
#include "hw/units.h"
#include "stats/table.h"

using namespace paichar;

int
main()
{
    bench::printHeader("Table I & Table III",
                       "system settings and variation grid");

    hw::ClusterSpec c = hw::paiCluster();
    {
        stats::Table t({"Component", "Setting", "Value"});
        t.addRow({"GPU", "FLOPs",
                  stats::fmt(c.server.gpu.peak_flops / hw::kTFLOPs, 0) +
                      " TFLOPs"});
        t.addRow({"GPU", "Memory",
                  stats::fmt(c.server.gpu.mem_bandwidth / hw::kTB, 0) +
                      " TB / second"});
        t.addRow({"Bandwidth", "Ethernet",
                  stats::fmt(c.ethernet_bandwidth * 8.0 / 1e9, 0) +
                      " Gb / second"});
        t.addRow({"Bandwidth", "PCI",
                  stats::fmt(c.server.pcie_bandwidth / hw::kGB, 0) +
                      " GB / second"});
        t.addRow({"Bandwidth", "NVLink",
                  stats::fmt(c.server.nvlink_bandwidth / hw::kGB, 0) +
                      " GB / second"});
        std::printf("Table I: SYSTEM SETTINGS (paper values: 11 "
                    "TFLOPs, 1 TB/s, 25 Gbps, 10 GB/s, 50 GB/s)\n%s\n",
                    t.render().c_str());
    }

    {
        hw::HardwareVariations v = hw::tableIiiVariations();
        auto join = [](const std::vector<double> &xs) {
            std::string s = "{";
            for (size_t i = 0; i < xs.size(); ++i) {
                if (i)
                    s += ", ";
                s += stats::fmt(xs[i], 0);
            }
            return s + "}";
        };
        stats::Table t({"Resource", "Candidates"});
        t.addRow({"Ethernet/Gbps", join(v.ethernet_gbps)});
        t.addRow({"PCI/GB", join(v.pcie_gbs)});
        t.addRow({"GPU peak FLOPs/T", join(v.gpu_peak_tflops)});
        t.addRow({"GPU memory/TB", join(v.gpu_mem_tbs)});
        std::printf("Table III: HARDWARE CONFIGURATION VARIATIONS\n%s\n",
                    t.render().c_str());
    }

    std::printf("Efficiency assumption: %.0f%% of every capacity "
                "(Sec II-B).\n",
                c.efficiency * 100.0);
    return 0;
}
