/**
 * @file
 * Ablation: calibration robustness. Our synthetic trace substitutes
 * for the proprietary PAI trace; its knobs are tuned to the paper's
 * published aggregates. This bench perturbs the most influential
 * knobs by +-20% and checks that the paper's *conclusions* (not the
 * exact percentages) survive:
 *   - weight/gradient traffic dominates cNode-level time;
 *   - a clear majority of PS jobs gain throughput on AllReduce-Local
 *     while a meaningful minority does not;
 *   - PS jobs are most sensitive to Ethernet bandwidth.
 */

#include <cstdio>

#include "common.h"
#include "core/projection.h"
#include "core/sweep.h"
#include "stats/table.h"

using namespace paichar;
using core::Level;
using workload::ArchType;

namespace {

struct Verdicts
{
    double cnode_comm_share = 0.0;
    double ps_port_winner_frac = 0.0;
    double eth_speedup = 0.0;
    bool conclusions_hold = false;
};

Verdicts
evaluate(const trace::CalibrationProfile &profile)
{
    hw::ClusterSpec spec = hw::paiCluster();
    core::AnalyticalModel model(spec);
    trace::SyntheticClusterGenerator gen(profile, spec, 7777);
    core::ClusterCharacterizer ch(model, gen.generate(8000));

    Verdicts v;
    v.cnode_comm_share =
        ch.avgBreakdown(std::nullopt, Level::CNode)[1];

    core::ArchitectureProjector proj(model);
    int n = 0, winners = 0;
    std::vector<workload::TrainingJob> ps_jobs;
    for (const auto &job : ch.jobs()) {
        if (job.arch != ArchType::PsWorker)
            continue;
        ++n;
        ps_jobs.push_back(job);
        winners += proj.project(job, ArchType::AllReduceLocal)
                       .throughput_speedup > 1.0;
    }
    v.ps_port_winner_frac = static_cast<double>(winners) / n;

    core::HardwareSweep sweep(spec);
    v.eth_speedup =
        sweep.avgSpeedup(ps_jobs, hw::Resource::Ethernet, 100.0);
    double pcie =
        sweep.avgSpeedup(ps_jobs, hw::Resource::Pcie, 50.0);
    double mem =
        sweep.avgSpeedup(ps_jobs, hw::Resource::GpuMemory, 4.0);

    v.conclusions_hold = v.cnode_comm_share > 0.5 &&
                         v.ps_port_winner_frac > 0.5 &&
                         v.ps_port_winner_frac < 0.9 &&
                         v.eth_speedup > pcie &&
                         v.eth_speedup > mem;
    return v;
}

} // namespace

int
main()
{
    bench::printHeader("Ablation: calibration robustness",
                       "do the paper's conclusions survive +-20% "
                       "knob perturbations?");

    using Mut = void (*)(trace::CalibrationProfile &, double);
    struct Knob
    {
        const char *name;
        Mut apply;
    };
    std::vector<Knob> knobs{
        {"ps_weight_mean_base",
         [](trace::CalibrationProfile &p, double k) {
             p.ps_weight_mean_base *= k;
         }},
        {"ps_cnodes_median",
         [](trace::CalibrationProfile &p, double k) {
             p.ps_cnodes_median *= k;
         }},
        {"ps_data_heavy_prob",
         [](trace::CalibrationProfile &p, double k) {
             p.ps_data_heavy_prob *= k;
         }},
        {"step_time_median",
         [](trace::CalibrationProfile &p, double k) {
             p.step_time_median *= k;
         }},
        {"ps_cnodes_tail_prob",
         [](trace::CalibrationProfile &p, double k) {
             p.ps_cnodes_tail_prob *= k;
         }},
    };

    stats::Table t({"perturbation", "cNode comm share",
                    "PS port winners", "Eth 100G speedup",
                    "conclusions hold"});
    auto addRow = [&](const std::string &label,
                      const trace::CalibrationProfile &p) {
        Verdicts v = evaluate(p);
        t.addRow({label, stats::fmtPct(v.cnode_comm_share),
                  stats::fmtPct(v.ps_port_winner_frac),
                  stats::fmt(v.eth_speedup, 2) + "x",
                  v.conclusions_hold ? "yes" : "NO"});
    };

    addRow("(tuned profile)", trace::CalibrationProfile::paiDec2018());
    for (const Knob &knob : knobs) {
        for (double k : {0.8, 1.2}) {
            auto p = trace::CalibrationProfile::paiDec2018();
            knob.apply(p, k);
            addRow(std::string(knob.name) + (k < 1 ? " x0.8" : " x1.2"),
                   p);
        }
    }
    std::printf("%s\n", t.render().c_str());
    std::printf(
        "Conclusions tested: comm > 50%% of cNode-level time; 50-90%% "
        "of PS jobs gain from\nAllReduce-Local; Ethernet is the most "
        "valuable upgrade for PS jobs. Exact\npercentages move with "
        "the knobs (as they would across trace windows); the\n"
        "qualitative story should not.\n");
    return 0;
}
