/**
 * @file
 * Regenerates Fig 11: average speedup under the Table III hardware
 * variations, for 1w1g / 1wng / PS-Worker populations and for the
 * PS jobs projected to AllReduce-Local. Paper anchors: 1w1g is most
 * sensitive to GPU memory bandwidth, 1wng to PCIe, PS/Worker to
 * Ethernet (1.7x mean at 100 Gbps); after projection to
 * AllReduce-Local, GPU memory bandwidth matters most.
 */

#include <cstdio>

#include "common.h"
#include "core/projection.h"
#include "core/sweep.h"
#include "stats/table.h"

using namespace paichar;
using workload::ArchType;
using workload::TrainingJob;

namespace {

void
printPanel(const std::string &title,
           const std::vector<core::SweepSeries> &series)
{
    std::printf("--- %s ---\n", title.c_str());
    stats::Table t({"resource", "value", "normalized",
                    "avg speedup"});
    for (const auto &s : series) {
        for (const auto &p : s.points) {
            t.addRow({hw::toString(p.resource),
                      stats::fmt(p.value, 0),
                      stats::fmt(p.normalized, 2) + "x",
                      stats::fmt(p.avg_speedup, 3) + "x"});
        }
        t.addSeparator();
    }
    std::printf("%s\n", t.render().c_str());
}

} // namespace

int
main()
{
    bench::printHeader("Fig 11",
                       "speedup with different hardware configurations");
    bench::printTraceInfo();

    auto a = bench::makeClusterAnalysis();
    core::HardwareSweep sweep(a.spec);

    auto panels = {
        std::pair{ArchType::OneWorkerOneGpu, "(a) 1w1g"},
        std::pair{ArchType::OneWorkerMultiGpu, "(b) 1wng"},
        std::pair{ArchType::PsWorker, "(c) PS/Worker"},
    };
    for (auto [arch, title] : panels)
        printPanel(title, sweep.run(a.jobsOf(arch)));

    // Panel (d): the PS jobs projected onto AllReduce-Local.
    core::ArchitectureProjector proj(*a.model);
    std::vector<TrainingJob> projected;
    for (const auto &job : a.jobsOf(ArchType::PsWorker))
        projected.push_back(proj.remap(job, ArchType::AllReduceLocal));
    printPanel("(d) PS/Worker projected to AllReduce-Local",
               sweep.run(projected));

    // Headline sensitivities.
    stats::Table t({"population", "most sensitive to", "paper"});
    auto winner = [&](const std::vector<TrainingJob> &jobs) {
        double best = 0.0;
        hw::Resource arg = hw::Resource::Ethernet;
        for (auto [r, v] :
             {std::pair{hw::Resource::Ethernet, 100.0},
              std::pair{hw::Resource::Pcie, 50.0},
              std::pair{hw::Resource::GpuFlops, 64.0},
              std::pair{hw::Resource::GpuMemory, 4.0}}) {
            double s = sweep.avgSpeedup(jobs, r, v);
            if (s > best) {
                best = s;
                arg = r;
            }
        }
        return hw::toString(arg);
    };
    t.addRow({"1w1g", winner(a.jobsOf(ArchType::OneWorkerOneGpu)),
              "GPU_memory"});
    t.addRow({"1wng", winner(a.jobsOf(ArchType::OneWorkerMultiGpu)),
              "PCIe"});
    t.addRow({"PS/Worker", winner(a.jobsOf(ArchType::PsWorker)),
              "Ethernet"});
    t.addRow({"-> AllReduce-Local", winner(projected), "GPU_memory"});
    std::printf("%s\n", t.render().c_str());

    double s_eth = sweep.avgSpeedup(a.jobsOf(ArchType::PsWorker),
                                    hw::Resource::Ethernet, 100.0);
    std::printf("PS/Worker mean speedup at 100 Gbps Ethernet: %.2fx "
                "(paper: ~1.7x)\n",
                s_eth);

    auto ps_jobs = a.jobsOf(ArchType::PsWorker);
    bench::reportSerialVsParallel(
        "Table III sweep over PS/Worker jobs",
        [&](runtime::ThreadPool *pool) {
            core::HardwareSweep timed_sweep(a.spec, pool);
            auto series = timed_sweep.run(ps_jobs);
            std::size_t points = 0;
            for (const auto &s : series)
                points += s.points.size();
            (void)points;
        });
    return 0;
}
