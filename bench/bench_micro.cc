/**
 * @file
 * google-benchmark microbenchmarks for the library's hot paths: the
 * analytical model, trace synthesis, cluster characterization, the
 * DES engine, collectives, the fusion pass, and a full simulated
 * training step.
 *
 * Before the google-benchmark suite runs, four JSON sections seed
 * the perf trajectory across PRs: a trace-I/O section comparing the
 * legacy serial CSV parser against the zero-copy serial/parallel
 * parsers and the paib binary codec on a 1M-job trace (recorded in
 * BENCH_trace_io.json), a thread-scaling section timing the 10k-job
 * characterization pipeline at 1/2/4/N threads, an obs-overhead
 * section proving the observability layer stays inside its <2%
 * budget on the 1M-job parse (recorded in BENCH_obs_overhead.json),
 * and a planner section recording candidate-evaluation throughput
 * for the analytical and simulated cost models over the enumerated
 * plan space of two case-study models (BENCH_opt_planner.json) --
 * the ratio between the two evaluators is what makes the planner's
 * analytical-prune-then-simulate-top-K search pay off. A fifth
 * sim-engine section compares the seed priority_queue event engine
 * against the arena/ladder EventQueue and the sharded engine on an
 * 8M-event drain (recorded in BENCH_sim_engine.json). A sixth
 * serving section records simulated-requests-per-second of the seed
 * single-server simulator against the fleet event loop
 * (BENCH_serving.json).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <sstream>
#include <string>
#include <vector>

#include "clustersim/scheduler.h"
#include "collectives/collective_ops.h"
#include "core/characterization.h"
#include "core/projection.h"
#include "inference/fleet_sim.h"
#include "inference/inference_workload.h"
#include "inference/serving_sim.h"
#include "obs/job_log.h"
#include "obs/obs.h"
#include "obs/timeline.h"
#include "workload/model_zoo.h"
#include "opt/cost_model.h"
#include "opt/optimization_planner.h"
#include "opt/passes.h"
#include "runtime/parallel.h"
#include "sim/event_queue.h"
#include "sim/sharded_engine.h"
#include "testbed/training_sim.h"
#include "trace/binary_trace.h"
#include "trace/synthetic_cluster.h"
#include "trace/trace_io.h"

using namespace paichar;

namespace {

workload::TrainingJob
sampleJob()
{
    trace::SyntheticClusterGenerator gen(7);
    return gen.generateJob(0);
}

void
BM_AnalyticalBreakdown(benchmark::State &state)
{
    core::AnalyticalModel model(hw::paiCluster());
    auto job = sampleJob();
    for (auto _ : state)
        benchmark::DoNotOptimize(model.breakdown(job));
}
BENCHMARK(BM_AnalyticalBreakdown);

void
BM_Projection(benchmark::State &state)
{
    core::AnalyticalModel model(hw::paiCluster());
    core::ArchitectureProjector proj(model);
    trace::SyntheticClusterGenerator gen(7);
    // Scan ids until we hit a PS/Worker job (generateJob is a pure
    // function of (seed, id), so retrying one id would never change).
    workload::TrainingJob job;
    int64_t id = 0;
    do {
        job = gen.generateJob(id++);
    } while (job.arch != workload::ArchType::PsWorker);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            proj.project(job, workload::ArchType::AllReduceLocal));
    }
}
BENCHMARK(BM_Projection);

void
BM_TraceGeneration(benchmark::State &state)
{
    for (auto _ : state) {
        trace::SyntheticClusterGenerator gen(7);
        auto jobs = gen.generate(static_cast<size_t>(state.range(0)));
        benchmark::DoNotOptimize(jobs.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceGeneration)->Arg(1000)->Arg(10000);

void
BM_Characterization(benchmark::State &state)
{
    core::AnalyticalModel model(hw::paiCluster());
    trace::SyntheticClusterGenerator gen(7);
    auto jobs = gen.generate(static_cast<size_t>(state.range(0)));
    for (auto _ : state) {
        core::ClusterCharacterizer ch(model, jobs);
        benchmark::DoNotOptimize(
            ch.avgBreakdown(std::nullopt, core::Level::CNode));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Characterization)->Arg(1000)->Arg(10000);

void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        int64_t fired = 0;
        for (int i = 0; i < state.range(0); ++i)
            eq.schedule(static_cast<double>(i % 97), [&] { ++fired; });
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueue)->Arg(10000);

void
BM_RingAllReduce(benchmark::State &state)
{
    for (auto _ : state) {
        sim::TopologyConfig tc;
        tc.cluster = hw::v100Testbed();
        sim::ClusterSim cluster(tc);
        collectives::CollectiveOps ops(cluster.eventQueue());
        double end = 0.0;
        ops.ringAllReduce(
            cluster.gpuGroup(static_cast<int>(state.range(0))), 1e9,
            [&](sim::SimTime t) { end = t; });
        cluster.eventQueue().run();
        benchmark::DoNotOptimize(end);
    }
}
BENCHMARK(BM_RingAllReduce)->Arg(2)->Arg(8);

void
BM_XlaFusion(benchmark::State &state)
{
    auto m = workload::ModelZoo::speech();
    opt::XlaFusionPass pass;
    for (auto _ : state) {
        auto g = pass.run(m.graph);
        benchmark::DoNotOptimize(g.size());
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<int64_t>(m.graph.size()));
}
BENCHMARK(BM_XlaFusion);

void
BM_TrainingStep(benchmark::State &state)
{
    testbed::TrainingSimulator sim;
    auto m = workload::ModelZoo::resnet50();
    for (auto _ : state) {
        auto r = sim.run(m);
        benchmark::DoNotOptimize(r.total_time);
    }
}
BENCHMARK(BM_TrainingStep);

/**
 * The pre-PR-2 serial CSV parser, kept verbatim as the trace-I/O
 * baseline: per-character splitting into freshly allocated
 * std::string fields, strtod/strtoll conversion, istringstream line
 * iteration. The JSON rows below report every other path's speedup
 * against this.
 */
namespace legacy {

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : line) {
        if (c == ',') {
            out.push_back(cur);
            cur.clear();
        } else if (c != '\r') {
            cur += c;
        }
    }
    out.push_back(cur);
    return out;
}

bool
parseDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    out = std::strtod(s.c_str(), &end);
    return errno == 0 && end == s.c_str() + s.size() &&
           std::isfinite(out);
}

bool
parseInt(const std::string &s, int64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    out = std::strtoll(s.c_str(), &end, 10);
    return errno == 0 && end == s.c_str() + s.size();
}

trace::ParseResult
fromCsv(const std::string &text)
{
    constexpr size_t kFields = 12;
    std::istringstream is(text);
    std::string line;

    trace::ParseResult bad;
    bad.ok = false;
    if (!std::getline(is, line))
        return bad;

    trace::ParseResult r;
    r.ok = true;
    while (std::getline(is, line)) {
        if (line.empty() || line == "\r")
            continue;
        auto fields = splitCsvLine(line);
        if (fields.size() != kFields)
            return bad;
        workload::TrainingJob j;
        int64_t iv;
        if (!parseInt(fields[0], iv))
            return bad;
        j.id = iv;
        auto arch = workload::archFromString(fields[1]);
        if (!arch)
            return bad;
        j.arch = *arch;
        if (!parseInt(fields[2], iv) || iv < 1)
            return bad;
        j.num_cnodes = static_cast<int>(iv);
        if (!parseInt(fields[3], iv) || iv < 0)
            return bad;
        j.num_ps = static_cast<int>(iv);
        double *slots[] = {&j.features.batch_size,
                           &j.features.flop_count,
                           &j.features.mem_access_bytes,
                           &j.features.input_bytes,
                           &j.features.comm_bytes,
                           &j.features.embedding_comm_bytes,
                           &j.features.dense_weight_bytes,
                           &j.features.embedding_weight_bytes};
        for (size_t s = 0; s < 8; ++s) {
            if (!parseDouble(fields[4 + s], *slots[s]))
                return bad;
        }
        if (!j.features.valid())
            return bad;
        r.jobs.push_back(j);
    }
    return r;
}

} // namespace legacy

/**
 * Trace-I/O section: serial legacy CSV, the new serial and parallel
 * CSV parsers, and the paib binary codec over the same synthetic
 * trace, reported as jobs/s and MB/s JSON rows (the contents of
 * BENCH_trace_io.json). Job count defaults to 1M; override with
 * PAICHAR_TRACE_BENCH_JOBS for quick runs.
 */
void
runTraceIoSection()
{
    size_t jobs_n = 1000000;
    if (const char *env = std::getenv("PAICHAR_TRACE_BENCH_JOBS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            jobs_n = static_cast<size_t>(v);
    }
    constexpr int kReps = 3;

    trace::SyntheticClusterGenerator gen(7);
    auto jobs = gen.generate(jobs_n, runtime::globalPool());
    std::string csv = trace::toCsv(jobs);
    std::string bin = trace::toBinary(jobs);
    int threads = runtime::threadCount();

    std::printf("# trace-io: %zu jobs, csv %.1f MB, bin %.1f MB, "
                "best of %d reps, %d threads\n",
                jobs_n, static_cast<double>(csv.size()) / 1e6,
                static_cast<double>(bin.size()) / 1e6, kReps,
                threads);

    struct Row
    {
        const char *op;
        const char *format;
        size_t bytes;
        std::function<void()> body;
    };
    std::vector<Row> rows = {
        {"parse", "csv_serial_legacy", csv.size(),
         [&] {
             auto r = legacy::fromCsv(csv);
             benchmark::DoNotOptimize(r.jobs.size());
         }},
        {"parse", "csv_serial", csv.size(),
         [&] {
             auto r = trace::fromCsv(csv, nullptr);
             benchmark::DoNotOptimize(r.jobs.size());
         }},
        {"parse", "csv_parallel", csv.size(),
         [&] {
             auto r = trace::fromCsv(csv, runtime::globalPool());
             benchmark::DoNotOptimize(r.jobs.size());
         }},
        {"parse", "bin", bin.size(),
         [&] {
             auto r = trace::fromBinary(bin);
             benchmark::DoNotOptimize(r.jobs.size());
         }},
        {"write", "csv", csv.size(),
         [&] {
             auto s = trace::toCsv(jobs);
             benchmark::DoNotOptimize(s.size());
         }},
        {"write", "bin", bin.size(),
         [&] {
             auto s = trace::toBinary(jobs);
             benchmark::DoNotOptimize(s.size());
         }},
    };

    double legacy_parse_seconds = 0.0;
    for (const Row &row : rows) {
        double best = 0.0;
        for (int rep = 0; rep < kReps; ++rep) {
            auto t0 = std::chrono::steady_clock::now();
            row.body();
            auto t1 = std::chrono::steady_clock::now();
            double sec =
                std::chrono::duration<double>(t1 - t0).count();
            if (rep == 0 || sec < best)
                best = sec;
        }
        if (row.format == std::string("csv_serial_legacy"))
            legacy_parse_seconds = best;
        double speedup =
            (std::string(row.op) == "parse" &&
             legacy_parse_seconds > 0.0)
                ? legacy_parse_seconds / best
                : 0.0;
        std::printf(
            "{\"bench\":\"trace_io\",\"op\":\"%s\",\"format\":"
            "\"%s\",\"jobs\":%zu,\"bytes\":%zu,\"threads\":%d,"
            "\"seconds\":%.6f,\"jobs_per_s\":%.0f,\"mb_per_s\":"
            "%.1f,\"speedup_vs_legacy_parse\":%.2f}\n",
            row.op, row.format, jobs_n, row.bytes, threads, best,
            static_cast<double>(jobs_n) / best,
            static_cast<double>(row.bytes) / 1e6 / best, speedup);
    }
    std::printf("\n");
}

/**
 * Thread-scaling section: the full characterization pipeline
 * (generate + ClusterCharacterizer + cluster aggregates) at each
 * thread count, printed as JSON rows.
 */
void
runThreadScalingSection()
{
    constexpr size_t kJobs = 10000;
    constexpr int kReps = 3;

    std::vector<int> counts = {1, 2, 4};
    int configured = runtime::threadCount();
    if (std::find(counts.begin(), counts.end(), configured) ==
        counts.end())
        counts.push_back(configured);

    core::AnalyticalModel model(hw::paiCluster());
    trace::SyntheticClusterGenerator gen(7);

    std::printf("# thread-scaling: characterization pipeline, %zu "
                "jobs, best of %d reps\n",
                kJobs, kReps);
    double serial_seconds = 0.0;
    for (int t : counts) {
        std::unique_ptr<runtime::ThreadPool> owned;
        runtime::ThreadPool *pool = nullptr;
        if (t > 1) {
            owned = std::make_unique<runtime::ThreadPool>(t);
            pool = owned.get();
        }
        double best = 0.0;
        for (int rep = 0; rep < kReps; ++rep) {
            auto t0 = std::chrono::steady_clock::now();
            auto jobs = gen.generate(kJobs, pool);
            core::ClusterCharacterizer ch(model, std::move(jobs),
                                          pool);
            auto avg =
                ch.avgBreakdown(std::nullopt, core::Level::CNode);
            benchmark::DoNotOptimize(avg);
            auto cdf = ch.componentCdf(core::Component::WeightTraffic,
                                       std::nullopt,
                                       core::Level::CNode);
            benchmark::DoNotOptimize(cdf.totalWeight());
            auto t1 = std::chrono::steady_clock::now();
            double sec =
                std::chrono::duration<double>(t1 - t0).count();
            if (rep == 0 || sec < best)
                best = sec;
        }
        if (t == 1)
            serial_seconds = best;
        std::printf("{\"bench\":\"thread_scaling\",\"pipeline\":"
                    "\"generate+characterize\",\"jobs\":%zu,"
                    "\"threads\":%d,\"seconds\":%.6f,"
                    "\"speedup_vs_1\":%.3f}\n",
                    kJobs, t, best,
                    serial_seconds > 0.0 ? serial_seconds / best
                                         : 1.0);
    }
    std::printf("\n");
}

/**
 * Observability-overhead section: the parallel CSV parse of a 1M-job
 * trace with obs fully disabled, with metrics recording on (the
 * shipping default), and with span profiling active on top. Each row
 * reports the percent overhead over the disabled baseline; DESIGN.md
 * Sec 10 budgets <2% for the metrics and profiling modes, and CI
 * greps this section to prove it still exists. Job count honors
 * PAICHAR_TRACE_BENCH_JOBS like the trace-I/O section.
 */
void
runObsOverheadSection()
{
    size_t jobs_n = 1000000;
    if (const char *env = std::getenv("PAICHAR_TRACE_BENCH_JOBS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            jobs_n = static_cast<size_t>(v);
    }
    constexpr int kReps = 5;

    trace::SyntheticClusterGenerator gen(7);
    auto jobs = gen.generate(jobs_n, runtime::globalPool());
    std::string csv = trace::toCsv(jobs);
    int threads = runtime::threadCount();

    std::printf("# obs-overhead: parallel csv parse, %zu jobs, "
                "best of %d reps, %d threads\n",
                jobs_n, kReps, threads);

    struct Mode
    {
        const char *name;
        bool metrics;
        bool profiling;
    };
    const Mode modes[] = {
        {"disabled", false, false},
        {"metrics", true, false},
        {"metrics+profile", true, true},
    };

    double baseline = 0.0;
    for (const Mode &mode : modes) {
        obs::setEnabled(mode.metrics);
        double best = 0.0;
        for (int rep = 0; rep < kReps; ++rep) {
            if (mode.profiling)
                obs::startProfiling();
            auto t0 = std::chrono::steady_clock::now();
            auto r = trace::fromCsv(csv, runtime::globalPool());
            benchmark::DoNotOptimize(r.jobs.size());
            auto t1 = std::chrono::steady_clock::now();
            if (mode.profiling)
                obs::stopProfiling();
            double sec =
                std::chrono::duration<double>(t1 - t0).count();
            if (rep == 0 || sec < best)
                best = sec;
        }
        if (!mode.metrics)
            baseline = best;
        double overhead_pct =
            baseline > 0.0 ? (best / baseline - 1.0) * 100.0 : 0.0;
        std::printf(
            "{\"bench\":\"obs_overhead\",\"mode\":\"%s\","
            "\"jobs\":%zu,\"threads\":%d,\"seconds\":%.6f,"
            "\"jobs_per_s\":%.0f,\"overhead_pct\":%.2f}\n",
            mode.name, jobs_n, threads, best,
            static_cast<double>(jobs_n) / best, overhead_pct);
    }
    obs::setEnabled(true);
    std::printf("\n");
}

/**
 * Overhead of the newly instrumented hot paths (inference serving,
 * PR 5) and of the job-log sink on the cluster scheduler: same
 * best-of-reps protocol and <2% budget as the parse section above;
 * rows extend BENCH_obs_overhead.json.
 */
void
runObsInstrumentationOverheadSection()
{
    constexpr int kReps = 5;
    int threads = runtime::threadCount();

    // --- serving-sim: span + counters added in src/inference ---
    {
        int64_t requests_n = 200000;
        if (const char *env =
                std::getenv("PAICHAR_TRACE_BENCH_JOBS")) {
            char *end = nullptr;
            long v = std::strtol(env, &end, 10);
            if (end != env && *end == '\0' && v > 0)
                requests_n = std::max<long>(v, 100);
        }
        auto model = workload::ModelZoo::all().front();
        auto w = inference::InferenceWorkload::fromTraining(model);
        inference::ServingSimulator sim(
            inference::ServingConfig{});
        double qps = 5000.0;

        std::printf("# obs-overhead: serving sim, %lld requests, "
                    "best of %d reps\n",
                    static_cast<long long>(requests_n), kReps);
        struct Mode
        {
            const char *name;
            bool metrics;
            bool profiling;
        };
        const Mode modes[] = {
            {"disabled", false, false},
            {"metrics", true, false},
            {"metrics+profile", true, true},
        };
        double baseline = 0.0;
        for (const Mode &mode : modes) {
            obs::setEnabled(mode.metrics);
            double best = 0.0;
            for (int rep = 0; rep < kReps; ++rep) {
                if (mode.profiling)
                    obs::startProfiling();
                auto t0 = std::chrono::steady_clock::now();
                auto r = sim.run(w, qps, requests_n, 42);
                benchmark::DoNotOptimize(r.throughput);
                auto t1 = std::chrono::steady_clock::now();
                if (mode.profiling)
                    obs::stopProfiling();
                double sec =
                    std::chrono::duration<double>(t1 - t0).count();
                if (rep == 0 || sec < best)
                    best = sec;
            }
            if (!mode.metrics)
                baseline = best;
            double overhead_pct =
                baseline > 0.0 ? (best / baseline - 1.0) * 100.0
                               : 0.0;
            std::printf(
                "{\"bench\":\"obs_overhead_serving\","
                "\"mode\":\"%s\",\"requests\":%lld,"
                "\"threads\":%d,\"seconds\":%.6f,"
                "\"overhead_pct\":%.2f}\n",
                mode.name, static_cast<long long>(requests_n),
                threads, best, overhead_pct);
        }
        obs::setEnabled(true);
    }

    // --- cluster scheduler: the per-job JobRecord sink ---
    {
        size_t jobs_n = 10000;
        if (const char *env =
                std::getenv("PAICHAR_TRACE_BENCH_JOBS")) {
            char *end = nullptr;
            long v = std::strtol(env, &end, 10);
            if (end != env && *end == '\0' && v > 0)
                jobs_n = std::max<size_t>(
                    static_cast<size_t>(v) / 10, 100);
        }
        trace::SyntheticClusterGenerator gen(7);
        auto jobs = gen.generate(jobs_n, runtime::globalPool());
        clustersim::SchedulerConfig cfg;
        cfg.num_servers = 64;
        for (auto &j : jobs)
            j.num_cnodes = std::min(j.num_cnodes, cfg.num_servers);
        auto requests = clustersim::poissonRequests(jobs, 1000.0,
                                                    2000.0, 1.2, 7);
        core::AnalyticalModel model(hw::paiCluster());
        clustersim::ClusterScheduler sched(cfg, model);

        std::printf("# obs-overhead: cluster schedule, %zu jobs, "
                    "best of %d reps\n",
                    jobs_n, kReps);
        double baseline = 0.0;
        for (bool joblog : {false, true}) {
            double best = 0.0;
            for (int rep = 0; rep < kReps; ++rep) {
                if (joblog)
                    obs::startJobLog();
                auto t0 = std::chrono::steady_clock::now();
                auto r = sched.run(requests);
                benchmark::DoNotOptimize(r.makespan);
                auto t1 = std::chrono::steady_clock::now();
                if (joblog)
                    obs::stopJobLog();
                double sec =
                    std::chrono::duration<double>(t1 - t0).count();
                if (rep == 0 || sec < best)
                    best = sec;
            }
            if (!joblog)
                baseline = best;
            double overhead_pct =
                baseline > 0.0 ? (best / baseline - 1.0) * 100.0
                               : 0.0;
            std::printf("{\"bench\":\"obs_overhead_joblog\","
                        "\"mode\":\"%s\",\"jobs\":%zu,"
                        "\"threads\":%d,\"seconds\":%.6f,"
                        "\"overhead_pct\":%.2f}\n",
                        joblog ? "joblog" : "off", jobs_n, threads,
                        best, overhead_pct);
        }

        // --- timeline probes on the same scheduler run (--timeline):
        // the off baseline is the joblog section's off row. ---
        double tl_best = 0.0;
        for (int rep = 0; rep < kReps; ++rep) {
            obs::startTimeline(10.0);
            auto t0 = std::chrono::steady_clock::now();
            auto r = sched.run(requests);
            benchmark::DoNotOptimize(r.makespan);
            auto t1 = std::chrono::steady_clock::now();
            obs::stopTimeline();
            double sec =
                std::chrono::duration<double>(t1 - t0).count();
            if (rep == 0 || sec < tl_best)
                tl_best = sec;
        }
        for (bool timeline : {false, true}) {
            double sec = timeline ? tl_best : baseline;
            double overhead_pct =
                baseline > 0.0 && timeline
                    ? (sec / baseline - 1.0) * 100.0
                    : 0.0;
            std::printf("{\"bench\":\"obs_overhead_timeline\","
                        "\"mode\":\"%s\",\"jobs\":%zu,"
                        "\"threads\":%d,\"seconds\":%.6f,"
                        "\"overhead_pct\":%.2f}\n",
                        timeline ? "timeline" : "off", jobs_n,
                        threads, sec, overhead_pct);
        }
    }
    std::printf("\n");
}

/**
 * Planner section: candidate-evaluation throughput of the two
 * opt::CostModel evaluators over the full enumerated plan space of a
 * Conv-heavy model (ResNet50, channel-split dimension) and a
 * transformer (BERT, sub-graph-partition dimension), reported as
 * candidates/s JSON rows (the contents of BENCH_opt_planner.json).
 * Each candidate is priced end to end -- preparePlan (the pass
 * pipeline) plus the evaluator's estimate() -- fanned out over the
 * global pool exactly like OptimizationPlanner::evaluate. The gap
 * between the analytical and simulated rows is the economics of the
 * analytical-prune-then-simulate-top-K search; CI greps this section
 * to prove it still exists.
 */
void
runPlannerSection()
{
    constexpr int kReps = 3;
    int threads = runtime::threadCount();

    struct Case
    {
        const char *key;
        workload::CaseStudyModel model;
    };
    std::vector<Case> cases = {
        {"resnet50", workload::ModelZoo::resnet50()},
        {"bert", workload::ModelZoo::bert()},
    };

    std::printf("# opt-planner: full enumerated plan space per "
                "model, best of %d reps, %d threads\n",
                kReps, threads);

    opt::AnalyticalCostModel analytical;
    opt::SimulatedCostModel simulated;
    opt::PlannerConfig planner_cfg;
    opt::OptimizationPlanner planner(planner_cfg);
    for (const Case &c : cases) {
        auto specs = planner.enumerate(c.model);

        double analytical_best = 0.0;
        for (const opt::CostModel *evaluator :
             {static_cast<const opt::CostModel *>(&analytical),
              static_cast<const opt::CostModel *>(&simulated)}) {
            double best = 0.0;
            for (int rep = 0; rep < kReps; ++rep) {
                auto t0 = std::chrono::steady_clock::now();
                auto tp = runtime::parallelMap<double>(
                    runtime::globalPool(), specs.size(),
                    [&](size_t i) {
                        auto prep =
                            opt::preparePlan(c.model, specs[i]);
                        return evaluator->estimate(prep).throughput;
                    });
                benchmark::DoNotOptimize(tp.size());
                auto t1 = std::chrono::steady_clock::now();
                double sec =
                    std::chrono::duration<double>(t1 - t0).count();
                if (rep == 0 || sec < best)
                    best = sec;
            }
            if (evaluator == &analytical)
                analytical_best = best;
            double cost_ratio = analytical_best > 0.0
                                    ? best / analytical_best
                                    : 1.0;
            std::printf(
                "{\"bench\":\"opt_planner\",\"model\":\"%s\","
                "\"evaluator\":\"%s\",\"candidates\":%zu,"
                "\"threads\":%d,\"seconds\":%.6f,"
                "\"candidates_per_s\":%.0f,"
                "\"cost_vs_analytical\":%.1f}\n",
                c.key, evaluator->name().c_str(), specs.size(),
                threads,
                best, static_cast<double>(specs.size()) / best,
                cost_ratio);
        }
    }
    std::printf("\n");
}

/**
 * The seed repo's event engine, kept verbatim as the sim_engine
 * baseline (mirroring the legacy CSV parser above): a
 * std::priority_queue of std::function events with the
 * const_cast-move pop. Everything the ladder/sharded engines are
 * measured against.
 */
namespace seed_sim {

class EventQueue
{
  public:
    void
    schedule(double when, std::function<void()> fn)
    {
        if (when < now_)
            when = now_;
        heap_.push(Event{when, next_seq_++, std::move(fn)});
    }

    double
    run()
    {
        while (!heap_.empty()) {
            Event ev =
                std::move(const_cast<Event &>(heap_.top()));
            heap_.pop();
            now_ = ev.when;
            ++executed_;
            ev.fn();
        }
        return now_;
    }

    uint64_t executed() const { return executed_; }

  private:
    struct Event
    {
        double when;
        uint64_t seq;
        std::function<void()> fn;
        bool
        operator>(const Event &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };
    std::priority_queue<Event, std::vector<Event>,
                        std::greater<Event>>
        heap_;
    double now_ = 0.0;
    uint64_t next_seq_ = 0;
    uint64_t executed_ = 0;
};

} // namespace seed_sim

/** splitmix64 for reproducible event times without <random>. */
uint64_t
simBenchMix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Event-engine section: bulk-schedule-then-drain throughput of the
 * seed priority_queue engine, the arena/ladder EventQueue, and the
 * sharded engine at 2 and 8 shards on the global pool, over the same
 * splitmix64-timed event population (the contents of
 * BENCH_sim_engine.json). Event count defaults to 8M; override with
 * PAICHAR_SIM_BENCH_EVENTS for quick runs. CI greps the
 * speedup_vs_seed column.
 */
void
runSimEngineSection()
{
    size_t events_n = 8000000;
    if (const char *env =
            std::getenv("PAICHAR_SIM_BENCH_EVENTS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            events_n = static_cast<size_t>(v);
    }
    constexpr int kReps = 3;
    constexpr double kHorizon = 1000.0;
    int threads = runtime::threadCount();

    // Event times are a pure function of the index so every engine
    // drains the identical population.
    auto whenAt = [&](size_t i) {
        return kHorizon *
               static_cast<double>(simBenchMix(i) >> 11) *
               0x1.0p-53;
    };

    std::printf("# sim-engine: %zu events over %.0f simulated "
                "seconds, best of %d reps, %d threads\n",
                events_n, kHorizon, kReps, threads);

    // Each rep schedules the population (the one-time trace-load
    // cost, timed separately) and then times the drain — the phase a
    // simulation spends its life in, and where the seed's 8M-entry
    // binary heap of 48-byte events pays ~log2(n) cache misses per
    // pop.
    struct Timing
    {
        double schedule_sec;
        double drain_sec;
        uint64_t executed;
    };
    struct Row
    {
        const char *engine;
        int shards;
        std::function<Timing()> body;
    };
    auto timeDrain = [](auto &engine, auto &&scheduleAll) {
        auto t0 = std::chrono::steady_clock::now();
        scheduleAll();
        auto t1 = std::chrono::steady_clock::now();
        engine.run();
        auto t2 = std::chrono::steady_clock::now();
        return Timing{
            std::chrono::duration<double>(t1 - t0).count(),
            std::chrono::duration<double>(t2 - t1).count(),
            engine.executed()};
    };
    std::vector<Row> rows = {
        {"serial_seed", 1,
         [&] {
             seed_sim::EventQueue eq;
             uint64_t acc = 0;
             Timing t = timeDrain(eq, [&] {
                 for (size_t i = 0; i < events_n; ++i)
                     eq.schedule(whenAt(i), [&acc] { ++acc; });
             });
             benchmark::DoNotOptimize(acc);
             return t;
         }},
        {"ladder", 1,
         [&] {
             sim::EventQueue eq;
             uint64_t acc = 0;
             Timing t = timeDrain(eq, [&] {
                 for (size_t i = 0; i < events_n; ++i)
                     eq.schedule(whenAt(i), [&acc] { ++acc; });
             });
             benchmark::DoNotOptimize(acc);
             return t;
         }},
    };
    for (int shards : {2, 8}) {
        rows.push_back(
            {"sharded", shards, [&, shards]() -> Timing {
                 sim::ShardedEngine engine(shards, /*lookahead=*/0.1,
                                           runtime::globalPool());
                 // One cache line per shard accumulator so parallel
                 // drains do not false-share.
                 std::vector<uint64_t> acc(
                     static_cast<size_t>(shards) * 8, 0);
                 Timing t = timeDrain(engine, [&] {
                     for (size_t i = 0; i < events_n; ++i) {
                         int s = static_cast<int>(
                             i % static_cast<size_t>(shards));
                         engine.schedule(
                             s, whenAt(i), [&acc, s] {
                                 ++acc[static_cast<size_t>(s) * 8];
                             });
                     }
                 });
                 benchmark::DoNotOptimize(acc.data());
                 return t;
             }});
    }

    double seed_drain = 0.0;
    for (const Row &row : rows) {
        Timing best{0.0, 0.0, 0};
        for (int rep = 0; rep < kReps; ++rep) {
            Timing t = row.body();
            if (t.executed != events_n) {
                std::fprintf(stderr,
                             "sim_engine %s: executed %llu of %zu "
                             "events\n",
                             row.engine,
                             static_cast<unsigned long long>(
                                 t.executed),
                             events_n);
                std::exit(1);
            }
            if (rep == 0 || t.drain_sec < best.drain_sec)
                best = t;
        }
        if (row.engine == std::string("serial_seed"))
            seed_drain = best.drain_sec;
        std::printf(
            "{\"bench\":\"sim_engine\",\"engine\":\"%s\","
            "\"shards\":%d,\"events\":%zu,\"threads\":%d,"
            "\"schedule_seconds\":%.6f,\"seconds\":%.6f,"
            "\"events_per_s\":%.0f,\"speedup_vs_seed\":%.2f}\n",
            row.engine, row.shards, events_n, threads,
            best.schedule_sec, best.drain_sec,
            static_cast<double>(events_n) / best.drain_sec,
            seed_drain > 0.0 ? seed_drain / best.drain_sec : 0.0);
    }
    std::printf("\n");
}

/**
 * Serving section: simulated-requests-per-wall-second of the seed
 * single-server simulator against the fleet event loop at 1 and 4
 * servers and both batching disciplines, over the same ResNet50
 * stream (the contents of BENCH_serving.json). The fleet1_greedy row
 * doubles as the overhead budget of the generalized loop (routing,
 * records, obs histogram) against the seed's array walk. Request
 * count defaults to 200k; override with
 * PAICHAR_SERVE_BENCH_REQUESTS for quick runs.
 */
void
runServingSection()
{
    int64_t requests = 200000;
    if (const char *env =
            std::getenv("PAICHAR_SERVE_BENCH_REQUESTS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            requests = v;
    }
    constexpr int kReps = 3;
    auto w = inference::InferenceWorkload::fromTraining(
        workload::ModelZoo::resnet50());

    std::printf("# serving: %lld requests, best of %d reps\n",
                static_cast<long long>(requests), kReps);

    struct Row
    {
        const char *sim;
        std::function<int64_t()> body; // returns completions
    };
    std::vector<Row> rows = {
        {"seed_single",
         [&] {
             inference::ServingSimulator sim;
             return sim.run(w, 800.0, requests, 7).requests;
         }},
        {"fleet1_greedy",
         [&] {
             inference::FleetConfig cfg;
             stats::ArrivalConfig a;
             a.qps = 800.0;
             return inference::FleetSimulator(cfg)
                 .run({{w, a}}, requests, 7)
                 .completed;
         }},
        {"fleet4_greedy",
         [&] {
             inference::FleetConfig cfg;
             cfg.num_servers = 4;
             cfg.routing = inference::Routing::PowerOfTwo;
             stats::ArrivalConfig a;
             a.qps = 3200.0;
             return inference::FleetSimulator(cfg)
                 .run({{w, a}}, requests, 7)
                 .completed;
         }},
        {"fleet4_continuous",
         [&] {
             inference::FleetConfig cfg;
             cfg.num_servers = 4;
             cfg.routing = inference::Routing::PowerOfTwo;
             cfg.batching = inference::Batching::Continuous;
             stats::ArrivalConfig a;
             a.qps = 3200.0;
             return inference::FleetSimulator(cfg)
                 .run({{w, a}}, requests, 7)
                 .completed;
         }},
    };

    double seed_rate = 0.0;
    for (const Row &row : rows) {
        double best = 0.0;
        for (int rep = 0; rep < kReps; ++rep) {
            auto t0 = std::chrono::steady_clock::now();
            int64_t done = row.body();
            auto t1 = std::chrono::steady_clock::now();
            if (done != requests) {
                std::fprintf(stderr,
                             "serving %s: completed %lld of %lld\n",
                             row.sim,
                             static_cast<long long>(done),
                             static_cast<long long>(requests));
                std::exit(1);
            }
            double sec =
                std::chrono::duration<double>(t1 - t0).count();
            double rate = static_cast<double>(requests) / sec;
            best = std::max(best, rate);
        }
        if (row.sim == std::string("seed_single"))
            seed_rate = best;
        std::printf(
            "{\"bench\":\"serving\",\"sim\":\"%s\","
            "\"requests\":%lld,\"requests_per_s\":%.0f,"
            "\"relative_to_seed\":%.2f}\n",
            row.sim, static_cast<long long>(requests), best,
            seed_rate > 0.0 ? best / seed_rate : 0.0);
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    runTraceIoSection();
    runThreadScalingSection();
    runObsOverheadSection();
    runObsInstrumentationOverheadSection();
    runPlannerSection();
    runSimEngineSection();
    runServingSection();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
