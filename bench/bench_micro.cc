/**
 * @file
 * google-benchmark microbenchmarks for the library's hot paths: the
 * analytical model, trace synthesis, cluster characterization, the
 * DES engine, collectives, the fusion pass, and a full simulated
 * training step.
 *
 * Before the google-benchmark suite runs, a thread-scaling section
 * times the 10k-job characterization pipeline (generate + per-job
 * breakdowns + cluster aggregates) at 1/2/4/N threads and emits one
 * JSON row per point, seeding the perf trajectory across PRs.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "collectives/collective_ops.h"
#include "core/characterization.h"
#include "core/projection.h"
#include "opt/passes.h"
#include "runtime/parallel.h"
#include "testbed/training_sim.h"
#include "trace/synthetic_cluster.h"

using namespace paichar;

namespace {

workload::TrainingJob
sampleJob()
{
    trace::SyntheticClusterGenerator gen(7);
    return gen.generateJob(0);
}

void
BM_AnalyticalBreakdown(benchmark::State &state)
{
    core::AnalyticalModel model(hw::paiCluster());
    auto job = sampleJob();
    for (auto _ : state)
        benchmark::DoNotOptimize(model.breakdown(job));
}
BENCHMARK(BM_AnalyticalBreakdown);

void
BM_Projection(benchmark::State &state)
{
    core::AnalyticalModel model(hw::paiCluster());
    core::ArchitectureProjector proj(model);
    trace::SyntheticClusterGenerator gen(7);
    // Scan ids until we hit a PS/Worker job (generateJob is a pure
    // function of (seed, id), so retrying one id would never change).
    workload::TrainingJob job;
    int64_t id = 0;
    do {
        job = gen.generateJob(id++);
    } while (job.arch != workload::ArchType::PsWorker);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            proj.project(job, workload::ArchType::AllReduceLocal));
    }
}
BENCHMARK(BM_Projection);

void
BM_TraceGeneration(benchmark::State &state)
{
    for (auto _ : state) {
        trace::SyntheticClusterGenerator gen(7);
        auto jobs = gen.generate(static_cast<size_t>(state.range(0)));
        benchmark::DoNotOptimize(jobs.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceGeneration)->Arg(1000)->Arg(10000);

void
BM_Characterization(benchmark::State &state)
{
    core::AnalyticalModel model(hw::paiCluster());
    trace::SyntheticClusterGenerator gen(7);
    auto jobs = gen.generate(static_cast<size_t>(state.range(0)));
    for (auto _ : state) {
        core::ClusterCharacterizer ch(model, jobs);
        benchmark::DoNotOptimize(
            ch.avgBreakdown(std::nullopt, core::Level::CNode));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Characterization)->Arg(1000)->Arg(10000);

void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        int64_t fired = 0;
        for (int i = 0; i < state.range(0); ++i)
            eq.schedule(static_cast<double>(i % 97), [&] { ++fired; });
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueue)->Arg(10000);

void
BM_RingAllReduce(benchmark::State &state)
{
    for (auto _ : state) {
        sim::TopologyConfig tc;
        tc.cluster = hw::v100Testbed();
        sim::ClusterSim cluster(tc);
        collectives::CollectiveOps ops(cluster.eventQueue());
        double end = 0.0;
        ops.ringAllReduce(
            cluster.gpuGroup(static_cast<int>(state.range(0))), 1e9,
            [&](sim::SimTime t) { end = t; });
        cluster.eventQueue().run();
        benchmark::DoNotOptimize(end);
    }
}
BENCHMARK(BM_RingAllReduce)->Arg(2)->Arg(8);

void
BM_XlaFusion(benchmark::State &state)
{
    auto m = workload::ModelZoo::speech();
    opt::XlaFusionPass pass;
    for (auto _ : state) {
        auto g = pass.run(m.graph);
        benchmark::DoNotOptimize(g.size());
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<int64_t>(m.graph.size()));
}
BENCHMARK(BM_XlaFusion);

void
BM_TrainingStep(benchmark::State &state)
{
    testbed::TrainingSimulator sim;
    auto m = workload::ModelZoo::resnet50();
    for (auto _ : state) {
        auto r = sim.run(m);
        benchmark::DoNotOptimize(r.total_time);
    }
}
BENCHMARK(BM_TrainingStep);

/**
 * Thread-scaling section: the full characterization pipeline
 * (generate + ClusterCharacterizer + cluster aggregates) at each
 * thread count, printed as JSON rows.
 */
void
runThreadScalingSection()
{
    constexpr size_t kJobs = 10000;
    constexpr int kReps = 3;

    std::vector<int> counts = {1, 2, 4};
    int configured = runtime::threadCount();
    if (std::find(counts.begin(), counts.end(), configured) ==
        counts.end())
        counts.push_back(configured);

    core::AnalyticalModel model(hw::paiCluster());
    trace::SyntheticClusterGenerator gen(7);

    std::printf("# thread-scaling: characterization pipeline, %zu "
                "jobs, best of %d reps\n",
                kJobs, kReps);
    double serial_seconds = 0.0;
    for (int t : counts) {
        std::unique_ptr<runtime::ThreadPool> owned;
        runtime::ThreadPool *pool = nullptr;
        if (t > 1) {
            owned = std::make_unique<runtime::ThreadPool>(t);
            pool = owned.get();
        }
        double best = 0.0;
        for (int rep = 0; rep < kReps; ++rep) {
            auto t0 = std::chrono::steady_clock::now();
            auto jobs = gen.generate(kJobs, pool);
            core::ClusterCharacterizer ch(model, std::move(jobs),
                                          pool);
            auto avg =
                ch.avgBreakdown(std::nullopt, core::Level::CNode);
            benchmark::DoNotOptimize(avg);
            auto cdf = ch.componentCdf(core::Component::WeightTraffic,
                                       std::nullopt,
                                       core::Level::CNode);
            benchmark::DoNotOptimize(cdf.totalWeight());
            auto t1 = std::chrono::steady_clock::now();
            double sec =
                std::chrono::duration<double>(t1 - t0).count();
            if (rep == 0 || sec < best)
                best = sec;
        }
        if (t == 1)
            serial_seconds = best;
        std::printf("{\"bench\":\"thread_scaling\",\"pipeline\":"
                    "\"generate+characterize\",\"jobs\":%zu,"
                    "\"threads\":%d,\"seconds\":%.6f,"
                    "\"speedup_vs_1\":%.3f}\n",
                    kJobs, t, best,
                    serial_seconds > 0.0 ? serial_seconds / best
                                         : 1.0);
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    runThreadScalingSection();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
