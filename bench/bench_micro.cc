/**
 * @file
 * google-benchmark microbenchmarks for the library's hot paths: the
 * analytical model, trace synthesis, cluster characterization, the
 * DES engine, collectives, the fusion pass, and a full simulated
 * training step.
 */

#include <benchmark/benchmark.h>

#include "collectives/collective_ops.h"
#include "core/characterization.h"
#include "core/projection.h"
#include "opt/passes.h"
#include "testbed/training_sim.h"
#include "trace/synthetic_cluster.h"

using namespace paichar;

namespace {

workload::TrainingJob
sampleJob()
{
    trace::SyntheticClusterGenerator gen(7);
    return gen.generateJob(0);
}

void
BM_AnalyticalBreakdown(benchmark::State &state)
{
    core::AnalyticalModel model(hw::paiCluster());
    auto job = sampleJob();
    for (auto _ : state)
        benchmark::DoNotOptimize(model.breakdown(job));
}
BENCHMARK(BM_AnalyticalBreakdown);

void
BM_Projection(benchmark::State &state)
{
    core::AnalyticalModel model(hw::paiCluster());
    core::ArchitectureProjector proj(model);
    trace::SyntheticClusterGenerator gen(7);
    workload::TrainingJob job;
    do {
        job = gen.generateJob(0);
    } while (job.arch != workload::ArchType::PsWorker);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            proj.project(job, workload::ArchType::AllReduceLocal));
    }
}
BENCHMARK(BM_Projection);

void
BM_TraceGeneration(benchmark::State &state)
{
    for (auto _ : state) {
        trace::SyntheticClusterGenerator gen(7);
        auto jobs = gen.generate(static_cast<size_t>(state.range(0)));
        benchmark::DoNotOptimize(jobs.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceGeneration)->Arg(1000)->Arg(10000);

void
BM_Characterization(benchmark::State &state)
{
    core::AnalyticalModel model(hw::paiCluster());
    trace::SyntheticClusterGenerator gen(7);
    auto jobs = gen.generate(static_cast<size_t>(state.range(0)));
    for (auto _ : state) {
        core::ClusterCharacterizer ch(model, jobs);
        benchmark::DoNotOptimize(
            ch.avgBreakdown(std::nullopt, core::Level::CNode));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Characterization)->Arg(1000)->Arg(10000);

void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        int64_t fired = 0;
        for (int i = 0; i < state.range(0); ++i)
            eq.schedule(static_cast<double>(i % 97), [&] { ++fired; });
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueue)->Arg(10000);

void
BM_RingAllReduce(benchmark::State &state)
{
    for (auto _ : state) {
        sim::TopologyConfig tc;
        tc.cluster = hw::v100Testbed();
        sim::ClusterSim cluster(tc);
        collectives::CollectiveOps ops(cluster.eventQueue());
        double end = 0.0;
        ops.ringAllReduce(
            cluster.gpuGroup(static_cast<int>(state.range(0))), 1e9,
            [&](sim::SimTime t) { end = t; });
        cluster.eventQueue().run();
        benchmark::DoNotOptimize(end);
    }
}
BENCHMARK(BM_RingAllReduce)->Arg(2)->Arg(8);

void
BM_XlaFusion(benchmark::State &state)
{
    auto m = workload::ModelZoo::speech();
    opt::XlaFusionPass pass;
    for (auto _ : state) {
        auto g = pass.run(m.graph);
        benchmark::DoNotOptimize(g.size());
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<int64_t>(m.graph.size()));
}
BENCHMARK(BM_XlaFusion);

void
BM_TrainingStep(benchmark::State &state)
{
    testbed::TrainingSimulator sim;
    auto m = workload::ModelZoo::resnet50();
    for (auto _ : state) {
        auto r = sim.run(m);
        benchmark::DoNotOptimize(r.total_time);
    }
}
BENCHMARK(BM_TrainingStep);

} // namespace

BENCHMARK_MAIN();
