/**
 * @file
 * Regenerates Fig 7: average percentage of each execution-time
 * component per workload type, at job level and cNode level. Paper
 * anchors: weight/gradient communication ~22% job level, ~62% cNode
 * level; computation ~35% cNode level (13% compute-bound + 22%
 * memory-bound); memory-bound >= compute-bound everywhere.
 */

#include <cstdio>
#include <optional>

#include "common.h"
#include "stats/ascii_plot.h"
#include "stats/table.h"

using namespace paichar;
using core::Component;
using core::Level;
using workload::ArchType;

namespace {

stats::StackedBar
makeBar(const std::string &label, const std::array<double, 4> &avg)
{
    // kAllComponents order: DataIo, WeightTraffic, ComputeFlops,
    // ComputeMemory.
    return {label,
            {{"data I/O", avg[0]},
             {"weights", avg[1]},
             {"comp(flops)", avg[2]},
             {"comp(mem)", avg[3]}}};
}

} // namespace

int
main()
{
    bench::printHeader("Fig 7",
                       "average execution-time breakdown per type");
    bench::printTraceInfo();

    auto a = bench::makeClusterAnalysis();

    for (Level level : {Level::Job, Level::CNode}) {
        std::printf("%s\n", level == Level::Job
                                ? "Left column: job-level"
                                : "Right column: cNode-level");
        std::vector<stats::StackedBar> bars;
        bars.push_back(makeBar(
            "all", a.characterizer->avgBreakdown(std::nullopt, level)));
        for (ArchType arch :
             {ArchType::OneWorkerOneGpu, ArchType::OneWorkerMultiGpu,
              ArchType::PsWorker}) {
            bars.push_back(makeBar(
                workload::toString(arch),
                a.characterizer->avgBreakdown(arch, level)));
        }
        std::printf("%s\n", stats::renderStackedBars(bars, 56).c_str());
    }

    auto jl = a.characterizer->avgBreakdown(std::nullopt, Level::Job);
    auto cl = a.characterizer->avgBreakdown(std::nullopt, Level::CNode);
    stats::Table t({"statistic", "measured", "paper"});
    t.addRow({"weights traffic share (job level)", stats::fmtPct(jl[1]),
              "~22%"});
    t.addRow({"weights traffic share (cNode level)",
              stats::fmtPct(cl[1]), "~62%"});
    t.addRow({"compute-bound share (cNode level)", stats::fmtPct(cl[2]),
              "~13%"});
    t.addRow({"memory-bound share (cNode level)", stats::fmtPct(cl[3]),
              "~22%"});
    std::printf("%s", t.render().c_str());
    return 0;
}
