/**
 * @file
 * Ablation: analytical-model fidelity. The paper's Tw charges
 * AllReduce jobs a plain Sw / B_NVLink; a ring actually moves
 * 2(n-1)/n * Sw per link. This bench compares, per case-study model:
 * the paper-style estimate, the ring-aware estimate, and the
 * event-driven testbed measurement -- quantifying how much of Fig 12's
 * residual error is protocol modeling vs efficiency assumption.
 */

#include <cstdio>

#include "common.h"
#include "stats/table.h"
#include "testbed/training_sim.h"

using namespace paichar;

int
main()
{
    bench::printHeader("Ablation: analytical-model fidelity",
                       "paper-style vs ring-aware estimates vs "
                       "simulated measurement");

    core::AnalyticalModel paper_style(hw::v100Testbed());
    paper_style.setPcieContention(false);
    core::AnalyticalModel ring_aware(hw::v100Testbed());
    ring_aware.setPcieContention(false);
    ring_aware.setRingAware(true);
    testbed::TrainingSimulator sim;

    stats::Table t({"Model", "measured", "paper-style est", "err",
                    "ring-aware est", "err"});
    for (const auto &m : workload::ModelZoo::all()) {
        workload::TrainingJob job;
        job.arch = m.arch;
        job.num_cnodes = m.num_cnodes;
        job.features = m.features;

        double actual = sim.run(m).total_time;
        double plain = paper_style.stepTime(job);
        double ring = ring_aware.stepTime(job);
        t.addRow({m.name, stats::fmtSeconds(actual),
                  stats::fmtSeconds(plain),
                  stats::fmtPct((plain - actual) / actual),
                  stats::fmtSeconds(ring),
                  stats::fmtPct((ring - actual) / actual)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf(
        "Reading: for the AllReduce-Local models the ring-aware "
        "estimate absorbs part of the\nerror the uniform-70%% "
        "assumption leaves (the remainder is the gap between 70%% "
        "and\nthe Table VI achieved efficiencies). The paper-style "
        "model stays the default: its\nsimplicity is the point, and "
        "Eq 3's 21x anchor depends on it.\n");
    return 0;
}
