/**
 * @file
 * PEARL scalability (Sec IV-C): "PEARL ... achieves good scalability
 * in terms of training throughput with the increase of computation
 * resources, on both dense and sparse models." Sweeps the GPU count
 * for the sparse GCN and the dense ResNet50 under PEARL, against
 * PS/Worker and plain AllReduce baselines.
 */

#include <cstdio>

#include "common.h"
#include "stats/table.h"
#include "testbed/training_sim.h"

using namespace paichar;
using workload::ArchType;

namespace {

double
throughputOf(const workload::CaseStudyModel &m, ArchType arch, int n)
{
    testbed::SimOptions opts;
    if (arch == ArchType::PsWorker) {
        // Scale workers against a fixed, contended two-host PS tier
        // (the realistic deployment the paper's Sec VI-A1 discusses).
        opts.num_ps = 2;
        opts.model_ps_contention = true;
    }
    testbed::TrainingSimulator sim(opts);
    auto r = sim.run(m.graph, m.features, arch, n,
                     m.measured_efficiency);
    return n / r.total_time * m.features.batch_size;
}

void
sweep(const workload::CaseStudyModel &m,
      const std::vector<ArchType> &archs)
{
    std::printf("--- %s (dense %s, embedding %s) ---\n",
                m.name.c_str(),
                stats::fmtBytes(m.features.dense_weight_bytes).c_str(),
                stats::fmtBytes(m.features.embedding_weight_bytes)
                    .c_str());
    std::vector<std::string> headers{"GPUs"};
    for (ArchType a : archs) {
        headers.push_back(workload::toString(a) + " samples/s");
        headers.push_back("scaling");
    }
    stats::Table t(headers);
    std::vector<double> base(archs.size(), 0.0);
    for (int n : {1, 2, 4, 8}) {
        std::vector<std::string> row{std::to_string(n)};
        for (size_t a = 0; a < archs.size(); ++a) {
            double tput = throughputOf(m, archs[a], n);
            if (n == 1)
                base[a] = tput;
            row.push_back(stats::fmt(tput, 0));
            row.push_back(stats::fmt(tput / base[a], 2) + "x");
        }
        t.addRow(std::move(row));
    }
    std::printf("%s\n", t.render().c_str());
}

} // namespace

int
main()
{
    bench::printHeader("PEARL scalability (Sec IV-C claim)",
                       "throughput vs computation resources, dense "
                       "and sparse models");

    // Sparse: GCN, where PS/Worker is the feasible baseline.
    sweep(workload::ModelZoo::gcn(),
          {ArchType::Pearl, ArchType::PsWorker});

    // Dense: ResNet50, where replicated AllReduce is the baseline.
    sweep(workload::ModelZoo::resnet50(),
          {ArchType::Pearl, ArchType::AllReduceLocal});

    std::printf(
        "Reading: on the sparse model PEARL delivers tens of times "
        "the absolute throughput and\nkeeps scaling (the embedding "
        "exchange is partitioned across the NVLink mesh), while\n"
        "PS/Worker -- scaled against a fixed two-host PS tier -- "
        "saturates on the PS NICs.\nOn the dense model PEARL "
        "degenerates to AllReduce and matches it exactly.\n");
    return 0;
}
