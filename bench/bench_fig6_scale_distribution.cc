/**
 * @file
 * Regenerates Fig 6: (a) CDF of the cNode count per workload type,
 * (b) CDF of the model weight size. Paper anchors: half of PS jobs
 * exceed 8 cNodes; 0.7% of all jobs exceed 128 cNodes yet hold >16%
 * of resources; 90% of models are <10 GB with a 100-300 GB tail.
 */

#include <cstdio>

#include "common.h"
#include "hw/units.h"
#include "stats/ascii_plot.h"
#include "stats/table.h"

using namespace paichar;
using workload::ArchType;

int
main()
{
    bench::printHeader("Fig 6", "workload scale distribution");
    bench::printTraceInfo();

    auto a = bench::makeClusterAnalysis();

    std::printf("(a) CDF of the number of cNodes\n");
    auto cdf_1wng =
        a.characterizer->cnodeCountCdf(ArchType::OneWorkerMultiGpu);
    auto cdf_ps = a.characterizer->cnodeCountCdf(ArchType::PsWorker);
    std::printf("%s\n",
                stats::renderCdfPlot({{"1wng", &cdf_1wng},
                                      {"PS/Worker", &cdf_ps}},
                                     64, 14, /*log_x=*/true,
                                     "number of cNodes")
                    .c_str());

    stats::Table ta({"statistic", "measured", "paper"});
    ta.addRow({"P(cNodes <= 8 | PS/Worker)",
               stats::fmtPct(cdf_ps.probAtOrBelow(8.0)), "~50%"});
    int64_t big = 0, big_cnodes = 0, all_cnodes = 0;
    for (const auto &j : a.jobs()) {
        all_cnodes += j.num_cnodes;
        if (j.num_cnodes > 128) {
            ++big;
            big_cnodes += j.num_cnodes;
        }
    }
    ta.addRow({"jobs with > 128 cNodes",
               stats::fmtPct(static_cast<double>(big) /
                             static_cast<double>(a.jobs().size())),
               "0.7%"});
    ta.addRow({"resources they hold",
               stats::fmtPct(static_cast<double>(big_cnodes) /
                             static_cast<double>(all_cnodes)),
               ">16%"});
    std::printf("%s\n", ta.render().c_str());

    std::printf("(b) CDF of the weight size (GB, log scale)\n");
    auto w_all = a.characterizer->weightSizeCdf(std::nullopt);
    auto w_1w1g =
        a.characterizer->weightSizeCdf(ArchType::OneWorkerOneGpu);
    auto w_1wng =
        a.characterizer->weightSizeCdf(ArchType::OneWorkerMultiGpu);
    auto w_ps = a.characterizer->weightSizeCdf(ArchType::PsWorker);
    std::printf("%s\n",
                stats::renderCdfPlot({{"1w1g", &w_1w1g},
                                      {"1wng", &w_1wng},
                                      {"PS/Worker", &w_ps}},
                                     64, 14, /*log_x=*/true,
                                     "weight size (bytes)")
                    .c_str());

    stats::Table tb({"statistic", "measured", "paper"});
    tb.addRow({"P(weights < 10 GB)",
               stats::fmtPct(w_all.probAtOrBelow(10.0 * hw::kGB)),
               "~90%"});
    tb.addRow({"largest model", stats::fmtBytes(w_all.max()),
               "100-300 GB scale"});
    std::printf("%s", tb.render().c_str());
    return 0;
}
