/**
 * @file
 * Extension (the paper's Sec VIII future work): characterize
 * *inference* workloads with the same methodology. For served
 * versions of the case-study models: latency percentiles vs offered
 * load, the dynamic-batching ablation, and attainable QPS under a
 * p99 latency SLO.
 */

#include <cstdio>

#include "common.h"
#include "inference/serving_sim.h"
#include "stats/table.h"

using namespace paichar;
using inference::InferenceWorkload;
using inference::ServingConfig;
using inference::ServingSimulator;

int
main()
{
    bench::printHeader("Extension: inference characterization",
                       "the Sec VIII future work, built on the same "
                       "substrate");

    const uint64_t seed = 20190701;
    const int64_t reqs = 20000;

    for (auto maker :
         {workload::ModelZoo::resnet50, workload::ModelZoo::bert,
          workload::ModelZoo::multiInterests}) {
        auto w = InferenceWorkload::fromTraining(maker());
        ServingSimulator sim;
        double solo =
            w.serviceTime(1, sim.config().server.gpu,
                          sim.config().launch_overhead) +
            w.inputTime(1, sim.config().server.pcie_bandwidth);
        std::printf("--- %s (solo service %s) ---\n", w.name.c_str(),
                    stats::fmtSeconds(solo).c_str());

        stats::Table t({"offered load", "p50", "p95", "p99",
                        "GPU util", "avg batch", "state"});
        for (double frac : {0.2, 0.5, 0.8, 1.1, 1.5}) {
            double qps = frac / solo;
            auto r = sim.run(w, qps, reqs, seed);
            t.addRow({stats::fmt(qps, 0) + " qps",
                      stats::fmtSeconds(r.p50_latency),
                      stats::fmtSeconds(r.p95_latency),
                      stats::fmtSeconds(r.p99_latency),
                      stats::fmtPct(r.gpu_utilization),
                      stats::fmt(r.avg_batch, 2),
                      r.saturated ? "OVERLOAD" : "stable"});
        }
        std::printf("%s", t.render().c_str());

        double slo = 5.0 * solo;
        stats::Table bt({"max batch", "max QPS under p99 <= " +
                                          stats::fmtSeconds(slo)});
        for (int mb : {1, 4, 8, 16}) {
            ServingConfig cfg;
            cfg.max_batch = mb;
            double q = ServingSimulator(cfg).maxQpsUnderSlo(
                w, slo, 20.0 / solo, seed);
            bt.addRow({std::to_string(mb), stats::fmt(q, 0)});
        }
        std::printf("%s\n", bt.render().c_str());
    }

    std::printf(
        "Reading: per-item-bound models (ResNet50/BERT) gain little "
        "from batching; the\nembedding-dominated recommender gains "
        "headroom because its per-launch cost is\nmostly fixed. Data "
        "I/O -- negligible for training at the cluster level -- "
        "returns\nas a first-class cost for inference, echoing the "
        "paper's bottleneck-shift theme.\n");
    return 0;
}
