/**
 * @file
 * Regenerates Table VI: achieved hardware efficiency per case-study
 * workload. The simulated testbed runs each model with its measured
 * profile; the bench then *recovers* the efficiencies from the
 * profiling records (demand / (capacity x busy time)), validating the
 * measurement pipeline end to end.
 */

#include <cstdio>

#include "common.h"
#include "profiler/feature_extraction.h"
#include "stats/table.h"
#include "testbed/training_sim.h"

using namespace paichar;

int
main()
{
    bench::printHeader("Table VI",
                       "resource efficiency for each workload");

    testbed::TrainingSimulator sim;
    const auto spec = hw::v100Testbed();

    stats::Table t({"Model", "GPU TOPS", "GDDR", "PCIe",
                    "Network", "(columns: recovered | Table VI)"});
    for (const auto &m : workload::ModelZoo::all()) {
        auto r = sim.run(m);

        // Recover efficiencies from the run: demand over capacity x
        // the time the component was actually busy.
        double eff_flops =
            r.compute_flops_time > 0.0
                ? m.features.flop_count /
                      (spec.server.gpu.peak_flops *
                       r.compute_flops_time)
                : 0.0;
        double eff_mem =
            r.compute_mem_time > 0.0
                ? m.features.mem_access_bytes /
                      (spec.server.gpu.mem_bandwidth *
                       r.compute_mem_time)
                : 0.0;
        double eff_pcie =
            r.data_time > 0.0
                ? m.features.input_bytes /
                      (spec.server.pcie_bandwidth * r.data_time)
                : 0.0;
        // Network: whichever medium carried the sync traffic.
        double net_capacity =
            m.arch == workload::ArchType::PsWorker
                ? spec.ethernet_bandwidth
                : spec.server.nvlink_bandwidth;
        double moved = 0.0;
        for (const auto &tr : r.metadata.transfers) {
            if (tr.kind == profiler::TransferKind::WeightSync &&
                tr.medium != profiler::Medium::Pcie) {
                moved += tr.bytes;
            }
        }
        double eff_net =
            r.comm_time > 0.0 && moved > 0.0
                ? moved / (net_capacity * r.comm_time)
                : 0.0;

        auto cell = [](double recovered, double table) {
            return stats::fmtPct(recovered, 1) + " | " +
                   stats::fmtPct(table, 1);
        };
        const auto &e = m.measured_efficiency;
        t.addRow({m.name, cell(eff_flops, e.gpu_flops),
                  cell(eff_mem, e.gpu_memory),
                  cell(eff_pcie, e.pcie), cell(eff_net, e.network),
                  ""});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf(
        "Recovered GPU/GDDR/PCIe values equal the injected Table VI "
        "profile by construction;\nnetwork values differ where the "
        "protocol moves more or less than the logical buffer\n(ring "
        "factor 2(n-1)/n, serial legs, PEARL partitioning) -- the "
        "same effect that\nmakes 'measured network efficiency' "
        "protocol-dependent on the real testbed.\n");
    return 0;
}
