/**
 * @file
 * Shared plumbing for the experiment harnesses: every bench prints a
 * header naming the paper artifact it regenerates and the trace seed,
 * then reproduces the table/figure on stdout.
 */

#ifndef PAICHAR_BENCH_COMMON_H
#define PAICHAR_BENCH_COMMON_H

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/analytical_model.h"
#include "core/characterization.h"
#include "hw/hardware_config.h"
#include "runtime/parallel.h"
#include "trace/synthetic_cluster.h"

namespace paichar::bench {

/** Seed and size used by all cluster-level reproductions. */
inline constexpr uint64_t kTraceSeed = 20181201; // Dec 1st, 2018
inline constexpr size_t kTraceJobs = 20000;

/** Print the standard harness banner. */
inline void
printHeader(const std::string &artifact, const std::string &caption)
{
    std::printf("======================================================"
                "==========\n");
    std::printf("Reproduction of %s -- %s\n", artifact.c_str(),
                caption.c_str());
    std::printf("Paper: Characterizing Deep Learning Training "
                "Workloads on Alibaba-PAI (IISWC'19)\n");
    std::printf("======================================================"
                "==========\n\n");
}

/** Print the synthetic-trace provenance line. */
inline void
printTraceInfo()
{
    std::printf("Synthetic trace: %zu jobs, seed %llu (calibrated to "
                "the paper's published aggregates; see DESIGN.md)\n",
                kTraceJobs,
                static_cast<unsigned long long>(kTraceSeed));
    std::printf("Execution runtime: %d thread(s) (--threads / "
                "PAICHAR_THREADS; results are thread-count "
                "invariant)\n\n",
                runtime::threadCount());
}

/** Wall-clock one invocation of @p body, in seconds. */
template <typename Body>
inline double
timedSeconds(Body &&body)
{
    auto t0 = std::chrono::steady_clock::now();
    body();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/**
 * Runtime hook for every bench: time @p body once serially
 * (body(nullptr)) and once on the configured global pool, and print
 * the comparison. No-ops the parallel leg when the runtime is serial.
 */
template <typename Body>
inline void
reportSerialVsParallel(const char *label, Body &&body)
{
    double t1 = timedSeconds(
        [&] { body(static_cast<runtime::ThreadPool *>(nullptr)); });
    runtime::ThreadPool *pool = runtime::globalPool();
    if (!pool) {
        std::printf("[runtime] %s: %.3fs serial (1 thread)\n", label,
                    t1);
        return;
    }
    double tn = timedSeconds([&] { body(pool); });
    std::printf("[runtime] %s: %.3fs serial vs %.3fs on %d threads "
                "(%.2fx)\n",
                label, t1, tn, pool->size(), t1 / tn);
}

/** Bundle of everything a cluster-level bench needs. */
struct ClusterAnalysis
{
    hw::ClusterSpec spec;
    std::unique_ptr<core::AnalyticalModel> model;
    std::unique_ptr<core::ClusterCharacterizer> characterizer;

    const workload::JobStore &
    jobs() const
    {
        return characterizer->jobs();
    }

    /** Jobs of one architecture. */
    std::vector<workload::TrainingJob>
    jobsOf(workload::ArchType arch) const
    {
        std::vector<workload::TrainingJob> out;
        for (const auto &j : jobs()) {
            if (j.arch == arch)
                out.push_back(j);
        }
        return out;
    }
};

/** Generate the standard synthetic cluster and wrap it for analysis. */
inline ClusterAnalysis
makeClusterAnalysis(uint64_t seed = kTraceSeed,
                    size_t jobs = kTraceJobs)
{
    ClusterAnalysis a;
    a.spec = hw::paiCluster();
    a.model = std::make_unique<core::AnalyticalModel>(a.spec);
    trace::SyntheticClusterGenerator gen(seed);
    a.characterizer = std::make_unique<core::ClusterCharacterizer>(
        *a.model, gen.generate(jobs));
    return a;
}

} // namespace paichar::bench

#endif // PAICHAR_BENCH_COMMON_H
