/**
 * @file
 * Regenerates Table II: the five workload types, their system
 * architecture / configuration, and the weight-movement medium.
 */

#include <cstdio>

#include "common.h"
#include "stats/table.h"
#include "workload/arch_type.h"

using namespace paichar;
using workload::ArchType;

int
main()
{
    bench::printHeader("Table II",
                       "summary of five types of workloads");

    stats::Table t({"Type", "System Architecture",
                    "System Configuration", "Weight Movement"});
    for (ArchType a :
         {ArchType::OneWorkerOneGpu, ArchType::OneWorkerMultiGpu,
          ArchType::PsWorker, ArchType::AllReduceLocal,
          ArchType::AllReduceCluster}) {
        std::string arch_col =
            a == ArchType::OneWorkerOneGpu
                ? "-"
                : (workload::isCentralized(a) ? "Centralized"
                                              : "Decentralized");
        t.addRow({workload::toString(a), arch_col,
                  workload::isCluster(a) ? "Cluster" : "Local",
                  workload::weightMovementMedium(a)});
    }
    t.addSeparator();
    // Our extension row: the PEARL strategy introduced in Sec IV-C.
    t.addRow({workload::toString(ArchType::Pearl), "Decentralized",
              "Local", workload::weightMovementMedium(ArchType::Pearl)});
    std::printf("%s\n", t.render().c_str());
    std::printf("(Last row: PEARL, the paper's Sec IV-C hybrid "
                "strategy, shown for completeness.)\n");
    return 0;
}
