/**
 * @file
 * Extension: model-scaling what-if using the parameterized families.
 * As models deepen/widen, where does the Sec II-B breakdown move, and
 * when does the AllReduce-Local communication share start to matter
 * again? (The designer-facing converse of the paper's hardware
 * sweeps.)
 */

#include <cstdio>

#include "common.h"
#include "stats/table.h"
#include "testbed/training_sim.h"

using namespace paichar;

namespace {

void
report(const workload::CaseStudyModel &m, stats::Table &t)
{
    testbed::TrainingSimulator sim;
    auto r = sim.run(m);
    t.addRow({m.name, stats::fmt(m.features.batch_size, 0),
              stats::fmtBytes(m.features.dense_weight_bytes +
                              m.features.embedding_weight_bytes),
              stats::fmtSeconds(r.total_time),
              stats::fmtPct(r.compute_flops_time / r.total_time),
              stats::fmtPct(r.compute_mem_time / r.total_time),
              stats::fmtPct(r.comm_time / r.total_time)});
}

} // namespace

int
main()
{
    bench::printHeader("Extension: model-scaling sweeps",
                       "breakdown vs depth/width on the simulated "
                       "testbed (AllReduce-Local, 8 GPUs)");

    {
        stats::Table t({"model", "batch", "weights", "step",
                        "compute", "memory", "comm"});
        for (int depth : {18, 34, 50, 101, 152})
            report(workload::ModelZoo::resnet(
                       workload::ResNetConfig{depth, 64}),
                   t);
        std::printf("Residual CNN depth sweep\n%s\n",
                    t.render().c_str());
    }
    {
        stats::Table t({"model", "batch", "weights", "step",
                        "compute", "memory", "comm"});
        for (int layers : {6, 12, 24, 48})
            report(workload::ModelZoo::transformer(
                       workload::TransformerConfig{layers, 1.0, 12}),
                   t);
        std::printf("Transformer depth sweep\n%s\n",
                    t.render().c_str());
    }
    {
        stats::Table t({"model", "batch", "weights", "step",
                        "compute", "memory", "comm"});
        for (double w : {0.5, 1.0, 2.0})
            report(workload::ModelZoo::transformer(
                       workload::TransformerConfig{24, w, 12}),
                   t);
        std::printf("Transformer width sweep\n%s\n",
                    t.render().c_str());
    }
    std::printf(
        "Reading: within a family the breakdown is nearly "
        "scale-invariant when compute and\nweights grow together "
        "(depth); widening shifts time toward compute (FLOPs grow\n"
        "quadratically, activations linearly), so wider models "
        "tolerate slower interconnects.\n");
    return 0;
}
