/**
 * @file
 * Ablation (Sec VI-A1): parameter-server tier provisioning. The paper
 * notes large models must "partition the variables among multiple PS
 * nodes"; this bench measures Multi-Interests (32 workers) while
 * sweeping the number of PS hosts, with the PS-side NIC modeled as a
 * real contended resource.
 */

#include <cstdio>

#include "common.h"
#include "stats/ascii_plot.h"
#include "stats/table.h"
#include "testbed/training_sim.h"

using namespace paichar;

int
main()
{
    bench::printHeader("Ablation: PS-tier provisioning",
                       "Multi-Interests step time vs number of "
                       "parameter servers");

    auto m = workload::ModelZoo::multiInterests();
    std::printf("Workload: %s, %d workers, %s traffic per worker per "
                "step\n\n",
                m.name.c_str(), m.num_cnodes,
                stats::fmtBytes(m.features.comm_bytes).c_str());

    stats::Table t({"PS hosts", "comm time", "step time",
                    "vs worker-side-only model"});
    testbed::StepResult base = testbed::TrainingSimulator().run(m);
    std::vector<std::pair<std::string, double>> bars;
    for (int ps : {1, 2, 4, 8, 16, 32}) {
        testbed::SimOptions o;
        o.num_ps = ps;
        o.model_ps_contention = true;
        auto r = testbed::TrainingSimulator(o).run(m);
        t.addRow({std::to_string(ps),
                  stats::fmtSeconds(r.comm_time),
                  stats::fmtSeconds(r.total_time),
                  stats::fmt(r.total_time / base.total_time, 2) +
                      "x"});
        bars.emplace_back("ps=" + std::to_string(ps), r.total_time);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("%s\n", stats::renderBars(bars, 48, "s").c_str());
    std::printf(
        "Reading: with one PS host, 32 workers' pulls and pushes "
        "funnel through a single\n25 Gbps NIC and the job becomes "
        "PS-bound; at >= workers/4 hosts, the extra serial\nleg costs "
        "little and the paper's worker-side model (%s) is a good "
        "approximation.\n",
        stats::fmtSeconds(base.total_time).c_str());
    return 0;
}
