/**
 * @file
 * Regenerates Fig 10: execution-time breakdown of PS/Worker workloads
 * after being mapped to AllReduce-Local. Paper anchor: the
 * weight/gradient part shrinks drastically while the PCIe data-I/O
 * share grows the most -- the bottleneck-shift effect.
 */

#include <cstdio>

#include "common.h"
#include "core/projection.h"
#include "stats/ascii_plot.h"
#include "stats/table.h"

using namespace paichar;
using core::Component;
using workload::ArchType;

int
main()
{
    bench::printHeader(
        "Fig 10",
        "PS/Worker breakdown after projection to AllReduce-Local");
    bench::printTraceInfo();

    auto a = bench::makeClusterAnalysis();
    core::ArchitectureProjector proj(*a.model);

    // Per-component CDFs and averages over the projected jobs.
    stats::WeightedCdf cdfs[4];
    double before_avg[4] = {0, 0, 0, 0}, after_avg[4] = {0, 0, 0, 0};
    int n = 0;
    for (const auto &job : a.jobs()) {
        if (job.arch != ArchType::PsWorker)
            continue;
        ++n;
        auto b0 = a.model->breakdown(job);
        auto b1 = a.model->breakdown(
            proj.remap(job, ArchType::AllReduceLocal));
        for (int c = 0; c < 4; ++c) {
            double f = b1.fraction(core::kAllComponents[c]);
            cdfs[c].add(f);
            before_avg[c] += b0.fraction(core::kAllComponents[c]);
            after_avg[c] += f;
        }
    }
    for (int c = 0; c < 4; ++c) {
        before_avg[c] /= n;
        after_avg[c] /= n;
    }

    std::printf("(a) CDF of component shares after projection\n");
    std::vector<stats::CdfSeries> series{
        {"Data I/O(PCIe)", &cdfs[0]},
        {"Weights traffic (NVLink)", &cdfs[1]},
        {"Computation(GPU FLOPs)", &cdfs[2]},
        {"Computation(GPU memory)", &cdfs[3]}};
    std::printf("%s\n",
                stats::renderCdfPlot(series, 64, 14, false,
                                     "component share")
                    .c_str());

    std::printf("(b) average breakdown, before vs after projection\n");
    std::vector<stats::StackedBar> bars{
        {"PS/Worker",
         {{"data I/O", before_avg[0]},
          {"weights", before_avg[1]},
          {"comp(flops)", before_avg[2]},
          {"comp(mem)", before_avg[3]}}},
        {"-> AR-Local",
         {{"data I/O", after_avg[0]},
          {"weights", after_avg[1]},
          {"comp(flops)", after_avg[2]},
          {"comp(mem)", after_avg[3]}}}};
    std::printf("%s\n", stats::renderStackedBars(bars, 56).c_str());

    stats::Table t({"component", "share before", "share after",
                    "paper anchor"});
    const char *names[4] = {"data I/O (PCIe)", "weights traffic",
                            "comp (flops)", "comp (memory)"};
    const char *anchor[4] = {"grows the most", "vastly reduced", "-",
                             "-"};
    for (int c = 0; c < 4; ++c) {
        t.addRow({names[c], stats::fmtPct(before_avg[c]),
                  stats::fmtPct(after_avg[c]), anchor[c]});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}
