/**
 * @file
 * Regenerates Fig 16: sensitivity to the computation/communication
 * overlap assumption. Left: the weight-traffic share of PS/Worker
 * jobs under no overlap vs ideal overlap (ideal overlap exposes
 * weight traffic as the bottleneck). Right: the AllReduce-Local
 * projection speedup CDF under both assumptions. Paper anchors: the
 * not-sped-up fraction stays similar (22.6% vs 20.2%), and ~23.4% of
 * jobs hit the full Eq 3 ratio of 21x under ideal overlap.
 */

#include <cstdio>

#include "common.h"
#include "core/projection.h"
#include "stats/ascii_plot.h"
#include "stats/table.h"

using namespace paichar;
using core::Component;
using core::OverlapMode;
using workload::ArchType;

int
main()
{
    bench::printHeader("Fig 16",
                       "shift effect under different overlap states");
    bench::printTraceInfo();

    auto a = bench::makeClusterAnalysis();
    core::ArchitectureProjector proj(*a.model);

    stats::WeightedCdf share_no, share_io, speed_no, speed_io;
    int n = 0, no_speed_no = 0, no_speed_io = 0, at21 = 0;
    for (const auto &job : a.jobs()) {
        if (job.arch != ArchType::PsWorker)
            continue;
        ++n;
        auto b = a.model->breakdown(job);
        share_no.add(b.fraction(Component::WeightTraffic));
        share_io.add(b.t_weight /
                     b.total(OverlapMode::IdealOverlap));

        auto r_no =
            proj.project(job, ArchType::AllReduceLocal,
                         OverlapMode::NonOverlap);
        auto r_io =
            proj.project(job, ArchType::AllReduceLocal,
                         OverlapMode::IdealOverlap);
        speed_no.add(r_no.single_node_speedup);
        speed_io.add(r_io.single_node_speedup);
        // Under ideal overlap, compute-bound jobs land at exactly
        // 1.0x (the hidden communication improves but the bottleneck
        // does not); "not sped up" counts strictly-slowed jobs.
        no_speed_no += r_no.single_node_speedup < 1.0 - 1e-9;
        no_speed_io += r_io.single_node_speedup < 1.0 - 1e-9;
        at21 += r_io.single_node_speedup > 20.5;
    }

    std::printf("Left: weight-traffic share of PS/Worker jobs\n");
    std::printf("%s\n",
                stats::renderCdfPlot({{"non-overlap", &share_no},
                                      {"ideal overlap", &share_io}},
                                     64, 14, false,
                                     "weight-traffic share")
                    .c_str());

    std::printf("Right: speedup when mapping to AllReduce-Local\n");
    std::printf("%s\n",
                stats::renderCdfPlot({{"non-overlap", &speed_no},
                                      {"ideal overlap", &speed_io}},
                                     64, 14, /*log_x=*/true,
                                     "single-cNode speed-up")
                    .c_str());

    stats::Table t({"statistic", "measured", "paper"});
    auto pct = [&](int k) {
        return stats::fmtPct(static_cast<double>(k) / n);
    };
    t.addRow({"not sped up (non-overlap)", pct(no_speed_no),
              "22.6%"});
    t.addRow({"not sped up (ideal overlap)", pct(no_speed_io),
              "20.2%"});
    t.addRow({"jobs at ~21x under ideal overlap", pct(at21),
              "23.4%"});
    t.addRow({"max speedup (Eq 3)",
              stats::fmt(speed_io.max(), 1) + "x", "21x"});
    std::printf("%s\n", t.render().c_str());
    std::printf("The overlap assumption changes detailed ratios but "
                "not the fundamental bottleneck\n(Sec V-B).\n");
    return 0;
}
