/**
 * @file
 * Extension: cluster-scale what-if on NVLink provisioning. The paper
 * notes only some sub-clusters are NVLink-equipped "due to cost
 * issue" (Sec II-A1) and that porting PS jobs to AllReduce-Local
 * "saves system resources significantly" (Sec III-C1). This bench
 * schedules a synthetic day of submissions onto a finite cluster and
 * sweeps (a) the NVLink server fraction and (b) the porting policy,
 * reporting queueing delay, utilization and makespan.
 */

#include <cstdio>

#include "clustersim/scheduler.h"
#include "common.h"
#include "stats/table.h"
#include "trace/synthetic_cluster.h"

using namespace paichar;

int
main()
{
    bench::printHeader("Extension: NVLink provisioning at cluster "
                       "scale",
                       "scheduling a day of synthetic submissions");

    // A busy window: 1500 jobs at ~150 submissions/hour onto a
    // 64-server cluster (~90% offered GPU load).
    const uint64_t seed = 20181201;
    trace::SyntheticClusterGenerator gen(seed);
    std::vector<workload::TrainingJob> jobs;
    for (auto &j : gen.generate(1500)) {
        j.num_cnodes = std::min(j.num_cnodes, 64); // cluster bound
        jobs.push_back(j);
    }
    auto requests =
        clustersim::poissonRequests(jobs, 150.0, 2000.0, 1.2, seed);
    std::printf("1500 jobs, ~150 submissions/hour, 64 servers x 8 "
                "GPUs, seed %llu\n\n",
                static_cast<unsigned long long>(seed));

    core::AnalyticalModel model(hw::paiCluster());
    stats::Table t({"NVLink servers", "porting", "mean wait",
                    "max wait", "GPU-hours", "GPU util", "makespan",
                    "ported"});
    for (double frac : {0.0, 0.25, 0.5, 1.0}) {
        for (bool port : {false, true}) {
            if (port && frac == 0.0)
                continue; // nothing to port onto
            clustersim::SchedulerConfig cfg;
            cfg.num_servers = 64;
            cfg.gpus_per_server = 8;
            cfg.nvlink_fraction = frac;
            cfg.port_ps_to_allreduce = port;
            clustersim::ClusterScheduler sched(cfg, model);
            auto out = sched.run(requests);
            double max_wait = 0.0;
            for (const auto &jo : out.jobs)
                max_wait = std::max(max_wait, jo.wait());
            double gpu_hours = out.gpu_utilization * out.makespan *
                               64 * 8 / 3600.0;
            t.addRow({stats::fmtPct(frac, 0),
                      port ? "on" : "off",
                      stats::fmtSeconds(out.mean_wait),
                      stats::fmtSeconds(max_wait),
                      stats::fmt(gpu_hours, 0),
                      stats::fmtPct(out.gpu_utilization),
                      stats::fmtSeconds(out.makespan),
                      std::to_string(out.ported_jobs)});
        }
    }
    std::printf("%s\n", t.render().c_str());
    std::printf(
        "Reading: with porting enabled, small/medium PS jobs collapse "
        "onto <= 8 NVLink GPUs\ninstead of spreading one GPU per "
        "server: queueing delay falls by orders of magnitude\nand "
        "the same submissions consume ~40%% fewer GPU-hours -- the "
        "cluster-scale form of\nthe paper's Fig 9 result and its "
        "'saving system resources significantly' claim.\nWith "
        "porting off, the NVLink fraction is irrelevant because this "
        "trace window\n(like the paper's) contains <1%% native "
        "AllReduce jobs.\n");
    return 0;
}
