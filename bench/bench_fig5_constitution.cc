/**
 * @file
 * Regenerates Fig 5: constitution of workloads at job level and
 * cNode level. Paper anchors: 1w1g dominates job counts; PS/Worker
 * holds ~81% of cNodes despite being ~29% of jobs.
 */

#include <cstdio>

#include "common.h"
#include "stats/table.h"

using namespace paichar;
using workload::ArchType;

int
main()
{
    bench::printHeader("Fig 5", "constitution of workloads");
    bench::printTraceInfo();

    auto a = bench::makeClusterAnalysis();
    core::Constitution c = a.characterizer->constitution();

    stats::Table t({"Type", "jobs", "job share", "cNodes",
                    "cNode share", "paper anchor"});
    auto row = [&](ArchType arch, const std::string &anchor) {
        t.addRow({workload::toString(arch),
                  std::to_string(c.job_counts[arch]),
                  stats::fmtPct(c.jobShare(arch)),
                  std::to_string(c.cnode_counts[arch]),
                  stats::fmtPct(c.cnodeShare(arch)), anchor});
    };
    row(ArchType::OneWorkerOneGpu, "dominates job count");
    row(ArchType::OneWorkerMultiGpu, "-");
    row(ArchType::PsWorker, "29% of jobs, 81% of cNodes");
    std::printf("%s\n", t.render().c_str());

    std::printf("Totals: %lld jobs, %lld cNodes.\n",
                static_cast<long long>(c.total_jobs),
                static_cast<long long>(c.total_cnodes));
    std::printf("(AllReduce jobs were <1%% in the trace window and "
                "are excluded, as in Sec III.)\n");
    return 0;
}
