/**
 * @file
 * Regenerates Fig 15: how the weight-traffic share of PS/Worker
 * workloads shifts when the 70% hardware-efficiency assumption is
 * violated. Paper anchor: even at 25% computation efficiency, PS
 * workloads still spend more time on weight traffic on average.
 */

#include <cstdio>

#include "common.h"
#include "stats/ascii_plot.h"
#include "stats/table.h"

using namespace paichar;
using core::Component;
using workload::ArchType;

int
main()
{
    bench::printHeader("Fig 15",
                       "weight-traffic share under shifted hardware-"
                       "efficiency assumptions");
    bench::printTraceInfo();

    auto a = bench::makeClusterAnalysis();

    struct Variant
    {
        const char *label;
        core::EfficiencyAssumption eff;
    };
    std::vector<Variant> variants{
        {"All eff. 70%", {0.70, 0.70}},
        {"Communication eff. 50%", {0.70, 0.50}},
        {"Computation eff. 50%", {0.50, 0.70}},
        {"Computation eff. 25%", {0.25, 0.70}},
    };

    // cNode-weighted, like the headline 62% statistic the assumption
    // check defends.
    std::vector<stats::WeightedCdf> cdfs(variants.size());
    std::vector<double> means(variants.size(), 0.0);
    std::vector<double> comp_means(variants.size(), 0.0);
    for (size_t v = 0; v < variants.size(); ++v) {
        core::AnalyticalModel model(a.spec, variants[v].eff);
        double weight_sum = 0.0;
        for (const auto &job : a.jobs()) {
            if (job.arch != ArchType::PsWorker)
                continue;
            auto b = model.breakdown(job);
            double f = b.fraction(Component::WeightTraffic);
            double w = job.num_cnodes;
            cdfs[v].add(f, w);
            means[v] += w * f;
            comp_means[v] +=
                w * (b.fraction(Component::ComputeFlops) +
                     b.fraction(Component::ComputeMemory));
            weight_sum += w;
        }
        means[v] /= weight_sum;
        comp_means[v] /= weight_sum;
    }

    std::vector<stats::CdfSeries> series;
    for (size_t v = 0; v < variants.size(); ++v)
        series.push_back({variants[v].label, &cdfs[v]});
    std::printf("%s\n",
                stats::renderCdfPlot(series, 64, 14, false,
                                     "weight-traffic share")
                    .c_str());

    stats::Table t({"assumption", "mean weight share",
                    "mean computation share", "median weight share"});
    for (size_t v = 0; v < variants.size(); ++v) {
        t.addRow({variants[v].label, stats::fmtPct(means[v]),
                  stats::fmtPct(comp_means[v]),
                  stats::fmtPct(cdfs[v].median())});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper anchor: even with computation efficiency at "
                "25%%, PS/Worker workloads still\nspend more time on "
                "weight traffic than on computation on average: %s\n",
                means.back() > comp_means.back() ? "reproduced"
                                                 : "NOT reproduced");
    return 0;
}
