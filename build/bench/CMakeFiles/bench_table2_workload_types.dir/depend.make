# Empty dependencies file for bench_table2_workload_types.
# This may be replaced when dependencies are built.
