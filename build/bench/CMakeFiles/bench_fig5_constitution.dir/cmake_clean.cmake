file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_constitution.dir/bench_fig5_constitution.cc.o"
  "CMakeFiles/bench_fig5_constitution.dir/bench_fig5_constitution.cc.o.d"
  "bench_fig5_constitution"
  "bench_fig5_constitution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_constitution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
