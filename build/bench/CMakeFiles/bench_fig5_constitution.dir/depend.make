# Empty dependencies file for bench_fig5_constitution.
# This may be replaced when dependencies are built.
