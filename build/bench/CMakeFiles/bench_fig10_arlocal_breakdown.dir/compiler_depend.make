# Empty compiler generated dependencies file for bench_fig10_arlocal_breakdown.
# This may be replaced when dependencies are built.
