file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_cluster_provisioning.dir/bench_ext_cluster_provisioning.cc.o"
  "CMakeFiles/bench_ext_cluster_provisioning.dir/bench_ext_cluster_provisioning.cc.o.d"
  "bench_ext_cluster_provisioning"
  "bench_ext_cluster_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_cluster_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
