# Empty compiler generated dependencies file for bench_fig16_overlap.
# This may be replaced when dependencies are built.
