file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ps_nodes.dir/bench_ablation_ps_nodes.cc.o"
  "CMakeFiles/bench_ablation_ps_nodes.dir/bench_ablation_ps_nodes.cc.o.d"
  "bench_ablation_ps_nodes"
  "bench_ablation_ps_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ps_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
