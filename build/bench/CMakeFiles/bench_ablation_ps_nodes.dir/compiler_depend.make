# Empty compiler generated dependencies file for bench_ablation_ps_nodes.
# This may be replaced when dependencies are built.
