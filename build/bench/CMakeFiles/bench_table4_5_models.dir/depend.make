# Empty dependencies file for bench_table4_5_models.
# This may be replaced when dependencies are built.
