file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_3_settings.dir/bench_table1_3_settings.cc.o"
  "CMakeFiles/bench_table1_3_settings.dir/bench_table1_3_settings.cc.o.d"
  "bench_table1_3_settings"
  "bench_table1_3_settings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_3_settings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
