# Empty dependencies file for bench_table1_3_settings.
# This may be replaced when dependencies are built.
