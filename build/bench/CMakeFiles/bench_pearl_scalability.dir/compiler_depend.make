# Empty compiler generated dependencies file for bench_pearl_scalability.
# This may be replaced when dependencies are built.
