file(REMOVE_RECURSE
  "CMakeFiles/bench_pearl_scalability.dir/bench_pearl_scalability.cc.o"
  "CMakeFiles/bench_pearl_scalability.dir/bench_pearl_scalability.cc.o.d"
  "bench_pearl_scalability"
  "bench_pearl_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pearl_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
