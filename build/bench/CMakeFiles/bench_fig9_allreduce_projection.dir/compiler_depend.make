# Empty compiler generated dependencies file for bench_fig9_allreduce_projection.
# This may be replaced when dependencies are built.
