file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_allreduce_projection.dir/bench_fig9_allreduce_projection.cc.o"
  "CMakeFiles/bench_fig9_allreduce_projection.dir/bench_fig9_allreduce_projection.cc.o.d"
  "bench_fig9_allreduce_projection"
  "bench_fig9_allreduce_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_allreduce_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
