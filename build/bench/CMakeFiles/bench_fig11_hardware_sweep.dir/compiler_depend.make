# Empty compiler generated dependencies file for bench_fig11_hardware_sweep.
# This may be replaced when dependencies are built.
