file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_inference.dir/bench_ext_inference.cc.o"
  "CMakeFiles/bench_ext_inference.dir/bench_ext_inference.cc.o.d"
  "bench_ext_inference"
  "bench_ext_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
