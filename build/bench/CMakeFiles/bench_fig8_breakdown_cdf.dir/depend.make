# Empty dependencies file for bench_fig8_breakdown_cdf.
# This may be replaced when dependencies are built.
