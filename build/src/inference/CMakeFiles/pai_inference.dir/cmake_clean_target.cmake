file(REMOVE_RECURSE
  "libpai_inference.a"
)
