
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/inference/inference_workload.cc" "src/inference/CMakeFiles/pai_inference.dir/inference_workload.cc.o" "gcc" "src/inference/CMakeFiles/pai_inference.dir/inference_workload.cc.o.d"
  "/root/repo/src/inference/serving_sim.cc" "src/inference/CMakeFiles/pai_inference.dir/serving_sim.cc.o" "gcc" "src/inference/CMakeFiles/pai_inference.dir/serving_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/pai_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/pai_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pai_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
