# Empty compiler generated dependencies file for pai_inference.
# This may be replaced when dependencies are built.
