file(REMOVE_RECURSE
  "CMakeFiles/pai_inference.dir/inference_workload.cc.o"
  "CMakeFiles/pai_inference.dir/inference_workload.cc.o.d"
  "CMakeFiles/pai_inference.dir/serving_sim.cc.o"
  "CMakeFiles/pai_inference.dir/serving_sim.cc.o.d"
  "libpai_inference.a"
  "libpai_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pai_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
