file(REMOVE_RECURSE
  "libpai_opt.a"
)
