file(REMOVE_RECURSE
  "CMakeFiles/pai_opt.dir/optimization_planner.cc.o"
  "CMakeFiles/pai_opt.dir/optimization_planner.cc.o.d"
  "CMakeFiles/pai_opt.dir/passes.cc.o"
  "CMakeFiles/pai_opt.dir/passes.cc.o.d"
  "libpai_opt.a"
  "libpai_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pai_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
