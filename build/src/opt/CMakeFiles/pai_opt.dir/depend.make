# Empty dependencies file for pai_opt.
# This may be replaced when dependencies are built.
