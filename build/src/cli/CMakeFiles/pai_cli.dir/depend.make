# Empty dependencies file for pai_cli.
# This may be replaced when dependencies are built.
