file(REMOVE_RECURSE
  "CMakeFiles/pai_cli.dir/cli.cc.o"
  "CMakeFiles/pai_cli.dir/cli.cc.o.d"
  "libpai_cli.a"
  "libpai_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pai_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
