file(REMOVE_RECURSE
  "libpai_cli.a"
)
