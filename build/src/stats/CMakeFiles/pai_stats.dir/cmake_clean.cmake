file(REMOVE_RECURSE
  "CMakeFiles/pai_stats.dir/ascii_plot.cc.o"
  "CMakeFiles/pai_stats.dir/ascii_plot.cc.o.d"
  "CMakeFiles/pai_stats.dir/cdf.cc.o"
  "CMakeFiles/pai_stats.dir/cdf.cc.o.d"
  "CMakeFiles/pai_stats.dir/rng.cc.o"
  "CMakeFiles/pai_stats.dir/rng.cc.o.d"
  "CMakeFiles/pai_stats.dir/summary.cc.o"
  "CMakeFiles/pai_stats.dir/summary.cc.o.d"
  "CMakeFiles/pai_stats.dir/table.cc.o"
  "CMakeFiles/pai_stats.dir/table.cc.o.d"
  "libpai_stats.a"
  "libpai_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pai_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
