# Empty dependencies file for pai_stats.
# This may be replaced when dependencies are built.
