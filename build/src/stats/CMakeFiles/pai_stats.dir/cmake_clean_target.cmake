file(REMOVE_RECURSE
  "libpai_stats.a"
)
