file(REMOVE_RECURSE
  "CMakeFiles/pai_profiler.dir/bottleneck_report.cc.o"
  "CMakeFiles/pai_profiler.dir/bottleneck_report.cc.o.d"
  "CMakeFiles/pai_profiler.dir/feature_extraction.cc.o"
  "CMakeFiles/pai_profiler.dir/feature_extraction.cc.o.d"
  "libpai_profiler.a"
  "libpai_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pai_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
