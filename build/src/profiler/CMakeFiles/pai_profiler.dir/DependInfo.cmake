
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiler/bottleneck_report.cc" "src/profiler/CMakeFiles/pai_profiler.dir/bottleneck_report.cc.o" "gcc" "src/profiler/CMakeFiles/pai_profiler.dir/bottleneck_report.cc.o.d"
  "/root/repo/src/profiler/feature_extraction.cc" "src/profiler/CMakeFiles/pai_profiler.dir/feature_extraction.cc.o" "gcc" "src/profiler/CMakeFiles/pai_profiler.dir/feature_extraction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/pai_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pai_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/pai_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
