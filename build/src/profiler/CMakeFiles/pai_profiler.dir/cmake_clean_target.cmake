file(REMOVE_RECURSE
  "libpai_profiler.a"
)
