# Empty dependencies file for pai_profiler.
# This may be replaced when dependencies are built.
