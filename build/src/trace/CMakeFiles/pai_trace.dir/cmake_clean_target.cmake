file(REMOVE_RECURSE
  "libpai_trace.a"
)
