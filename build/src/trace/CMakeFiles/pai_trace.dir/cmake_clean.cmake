file(REMOVE_RECURSE
  "CMakeFiles/pai_trace.dir/synthetic_cluster.cc.o"
  "CMakeFiles/pai_trace.dir/synthetic_cluster.cc.o.d"
  "CMakeFiles/pai_trace.dir/trace_io.cc.o"
  "CMakeFiles/pai_trace.dir/trace_io.cc.o.d"
  "libpai_trace.a"
  "libpai_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pai_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
