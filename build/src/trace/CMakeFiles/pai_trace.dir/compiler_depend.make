# Empty compiler generated dependencies file for pai_trace.
# This may be replaced when dependencies are built.
