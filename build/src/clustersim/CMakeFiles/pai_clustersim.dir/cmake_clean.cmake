file(REMOVE_RECURSE
  "CMakeFiles/pai_clustersim.dir/scheduler.cc.o"
  "CMakeFiles/pai_clustersim.dir/scheduler.cc.o.d"
  "libpai_clustersim.a"
  "libpai_clustersim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pai_clustersim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
