# Empty dependencies file for pai_clustersim.
# This may be replaced when dependencies are built.
