file(REMOVE_RECURSE
  "libpai_clustersim.a"
)
