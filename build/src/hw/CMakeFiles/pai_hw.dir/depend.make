# Empty dependencies file for pai_hw.
# This may be replaced when dependencies are built.
