file(REMOVE_RECURSE
  "CMakeFiles/pai_hw.dir/hardware_config.cc.o"
  "CMakeFiles/pai_hw.dir/hardware_config.cc.o.d"
  "libpai_hw.a"
  "libpai_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pai_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
