file(REMOVE_RECURSE
  "libpai_hw.a"
)
