
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/arch_type.cc" "src/workload/CMakeFiles/pai_workload.dir/arch_type.cc.o" "gcc" "src/workload/CMakeFiles/pai_workload.dir/arch_type.cc.o.d"
  "/root/repo/src/workload/model_zoo.cc" "src/workload/CMakeFiles/pai_workload.dir/model_zoo.cc.o" "gcc" "src/workload/CMakeFiles/pai_workload.dir/model_zoo.cc.o.d"
  "/root/repo/src/workload/op_graph.cc" "src/workload/CMakeFiles/pai_workload.dir/op_graph.cc.o" "gcc" "src/workload/CMakeFiles/pai_workload.dir/op_graph.cc.o.d"
  "/root/repo/src/workload/workload_features.cc" "src/workload/CMakeFiles/pai_workload.dir/workload_features.cc.o" "gcc" "src/workload/CMakeFiles/pai_workload.dir/workload_features.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/pai_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
