file(REMOVE_RECURSE
  "CMakeFiles/pai_workload.dir/arch_type.cc.o"
  "CMakeFiles/pai_workload.dir/arch_type.cc.o.d"
  "CMakeFiles/pai_workload.dir/model_zoo.cc.o"
  "CMakeFiles/pai_workload.dir/model_zoo.cc.o.d"
  "CMakeFiles/pai_workload.dir/op_graph.cc.o"
  "CMakeFiles/pai_workload.dir/op_graph.cc.o.d"
  "CMakeFiles/pai_workload.dir/workload_features.cc.o"
  "CMakeFiles/pai_workload.dir/workload_features.cc.o.d"
  "libpai_workload.a"
  "libpai_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pai_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
