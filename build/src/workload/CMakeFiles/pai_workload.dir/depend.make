# Empty dependencies file for pai_workload.
# This may be replaced when dependencies are built.
