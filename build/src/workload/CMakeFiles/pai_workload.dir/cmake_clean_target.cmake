file(REMOVE_RECURSE
  "libpai_workload.a"
)
