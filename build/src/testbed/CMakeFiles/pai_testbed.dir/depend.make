# Empty dependencies file for pai_testbed.
# This may be replaced when dependencies are built.
