file(REMOVE_RECURSE
  "CMakeFiles/pai_testbed.dir/training_sim.cc.o"
  "CMakeFiles/pai_testbed.dir/training_sim.cc.o.d"
  "libpai_testbed.a"
  "libpai_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pai_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
