file(REMOVE_RECURSE
  "libpai_testbed.a"
)
