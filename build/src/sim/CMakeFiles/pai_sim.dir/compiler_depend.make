# Empty compiler generated dependencies file for pai_sim.
# This may be replaced when dependencies are built.
