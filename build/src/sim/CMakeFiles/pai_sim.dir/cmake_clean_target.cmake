file(REMOVE_RECURSE
  "libpai_sim.a"
)
