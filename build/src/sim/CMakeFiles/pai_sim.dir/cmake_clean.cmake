file(REMOVE_RECURSE
  "CMakeFiles/pai_sim.dir/event_queue.cc.o"
  "CMakeFiles/pai_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/pai_sim.dir/resource.cc.o"
  "CMakeFiles/pai_sim.dir/resource.cc.o.d"
  "CMakeFiles/pai_sim.dir/topology.cc.o"
  "CMakeFiles/pai_sim.dir/topology.cc.o.d"
  "libpai_sim.a"
  "libpai_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pai_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
