file(REMOVE_RECURSE
  "CMakeFiles/pai_core.dir/analytical_model.cc.o"
  "CMakeFiles/pai_core.dir/analytical_model.cc.o.d"
  "CMakeFiles/pai_core.dir/arch_selection.cc.o"
  "CMakeFiles/pai_core.dir/arch_selection.cc.o.d"
  "CMakeFiles/pai_core.dir/characterization.cc.o"
  "CMakeFiles/pai_core.dir/characterization.cc.o.d"
  "CMakeFiles/pai_core.dir/projection.cc.o"
  "CMakeFiles/pai_core.dir/projection.cc.o.d"
  "CMakeFiles/pai_core.dir/sweep.cc.o"
  "CMakeFiles/pai_core.dir/sweep.cc.o.d"
  "libpai_core.a"
  "libpai_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pai_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
