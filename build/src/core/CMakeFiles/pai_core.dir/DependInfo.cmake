
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analytical_model.cc" "src/core/CMakeFiles/pai_core.dir/analytical_model.cc.o" "gcc" "src/core/CMakeFiles/pai_core.dir/analytical_model.cc.o.d"
  "/root/repo/src/core/arch_selection.cc" "src/core/CMakeFiles/pai_core.dir/arch_selection.cc.o" "gcc" "src/core/CMakeFiles/pai_core.dir/arch_selection.cc.o.d"
  "/root/repo/src/core/characterization.cc" "src/core/CMakeFiles/pai_core.dir/characterization.cc.o" "gcc" "src/core/CMakeFiles/pai_core.dir/characterization.cc.o.d"
  "/root/repo/src/core/projection.cc" "src/core/CMakeFiles/pai_core.dir/projection.cc.o" "gcc" "src/core/CMakeFiles/pai_core.dir/projection.cc.o.d"
  "/root/repo/src/core/sweep.cc" "src/core/CMakeFiles/pai_core.dir/sweep.cc.o" "gcc" "src/core/CMakeFiles/pai_core.dir/sweep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/pai_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pai_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pai_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
