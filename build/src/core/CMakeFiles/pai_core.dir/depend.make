# Empty dependencies file for pai_core.
# This may be replaced when dependencies are built.
