file(REMOVE_RECURSE
  "libpai_core.a"
)
