
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/collectives/collective_ops.cc" "src/collectives/CMakeFiles/pai_collectives.dir/collective_ops.cc.o" "gcc" "src/collectives/CMakeFiles/pai_collectives.dir/collective_ops.cc.o.d"
  "/root/repo/src/collectives/strategy.cc" "src/collectives/CMakeFiles/pai_collectives.dir/strategy.cc.o" "gcc" "src/collectives/CMakeFiles/pai_collectives.dir/strategy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pai_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pai_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/pai_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
