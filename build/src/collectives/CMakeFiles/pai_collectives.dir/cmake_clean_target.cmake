file(REMOVE_RECURSE
  "libpai_collectives.a"
)
