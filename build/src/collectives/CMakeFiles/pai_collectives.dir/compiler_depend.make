# Empty compiler generated dependencies file for pai_collectives.
# This may be replaced when dependencies are built.
