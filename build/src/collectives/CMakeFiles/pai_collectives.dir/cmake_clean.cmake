file(REMOVE_RECURSE
  "CMakeFiles/pai_collectives.dir/collective_ops.cc.o"
  "CMakeFiles/pai_collectives.dir/collective_ops.cc.o.d"
  "CMakeFiles/pai_collectives.dir/strategy.cc.o"
  "CMakeFiles/pai_collectives.dir/strategy.cc.o.d"
  "libpai_collectives.a"
  "libpai_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pai_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
