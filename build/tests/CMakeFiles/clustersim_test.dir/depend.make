# Empty dependencies file for clustersim_test.
# This may be replaced when dependencies are built.
