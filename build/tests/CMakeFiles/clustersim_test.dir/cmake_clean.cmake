file(REMOVE_RECURSE
  "CMakeFiles/clustersim_test.dir/clustersim/scheduler_test.cc.o"
  "CMakeFiles/clustersim_test.dir/clustersim/scheduler_test.cc.o.d"
  "clustersim_test"
  "clustersim_test.pdb"
  "clustersim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustersim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
