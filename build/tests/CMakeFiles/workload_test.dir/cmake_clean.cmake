file(REMOVE_RECURSE
  "CMakeFiles/workload_test.dir/workload/arch_type_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/arch_type_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/model_family_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/model_family_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/model_zoo_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/model_zoo_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/op_graph_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/op_graph_test.cc.o.d"
  "workload_test"
  "workload_test.pdb"
  "workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
