file(REMOVE_RECURSE
  "CMakeFiles/testbed_test.dir/testbed/cluster_arch_test.cc.o"
  "CMakeFiles/testbed_test.dir/testbed/cluster_arch_test.cc.o.d"
  "CMakeFiles/testbed_test.dir/testbed/pipeline_test.cc.o"
  "CMakeFiles/testbed_test.dir/testbed/pipeline_test.cc.o.d"
  "CMakeFiles/testbed_test.dir/testbed/training_sim_test.cc.o"
  "CMakeFiles/testbed_test.dir/testbed/training_sim_test.cc.o.d"
  "testbed_test"
  "testbed_test.pdb"
  "testbed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testbed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
