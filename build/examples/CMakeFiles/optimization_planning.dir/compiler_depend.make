# Empty compiler generated dependencies file for optimization_planning.
# This may be replaced when dependencies are built.
