file(REMOVE_RECURSE
  "CMakeFiles/optimization_planning.dir/optimization_planning.cpp.o"
  "CMakeFiles/optimization_planning.dir/optimization_planning.cpp.o.d"
  "optimization_planning"
  "optimization_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimization_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
