# Empty dependencies file for case_study_pearl.
# This may be replaced when dependencies are built.
