
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/case_study_pearl.cpp" "examples/CMakeFiles/case_study_pearl.dir/case_study_pearl.cpp.o" "gcc" "examples/CMakeFiles/case_study_pearl.dir/case_study_pearl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pai_core.dir/DependInfo.cmake"
  "/root/repo/build/src/clustersim/CMakeFiles/pai_clustersim.dir/DependInfo.cmake"
  "/root/repo/build/src/inference/CMakeFiles/pai_inference.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pai_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/testbed/CMakeFiles/pai_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/pai_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pai_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/pai_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/pai_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pai_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/pai_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pai_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
