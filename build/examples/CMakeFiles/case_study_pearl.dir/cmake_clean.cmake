file(REMOVE_RECURSE
  "CMakeFiles/case_study_pearl.dir/case_study_pearl.cpp.o"
  "CMakeFiles/case_study_pearl.dir/case_study_pearl.cpp.o.d"
  "case_study_pearl"
  "case_study_pearl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_study_pearl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
