file(REMOVE_RECURSE
  "CMakeFiles/whatif_upgrade.dir/whatif_upgrade.cpp.o"
  "CMakeFiles/whatif_upgrade.dir/whatif_upgrade.cpp.o.d"
  "whatif_upgrade"
  "whatif_upgrade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_upgrade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
