# Empty compiler generated dependencies file for paichar.
# This may be replaced when dependencies are built.
