file(REMOVE_RECURSE
  "CMakeFiles/paichar.dir/paichar_main.cc.o"
  "CMakeFiles/paichar.dir/paichar_main.cc.o.d"
  "paichar"
  "paichar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paichar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
