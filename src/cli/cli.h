/**
 * @file
 * The `paichar` command-line interface, as a library so tests can
 * drive it. Subcommands cover the production workflow end to end:
 *
 *   paichar generate   --jobs N --seed S --out trace.csv
 *                      [--trace-format csv|bin]
 *   paichar convert    in.csv out.paib [--trace-format csv|bin]
 *   paichar characterize trace.csv
 *   paichar project    trace.csv [--target <arch>]
 *   paichar sweep      trace.csv [--arch <arch>]
 *   paichar advise     --flops F --mem M --input I --comm C
 *                      [--dense-weights D] [--embedding-weights E]
 *                      [--cnodes N] [--gpu-mem BYTES]
 *   paichar diagnose   MODEL        (resnet50|nmt|bert|speech|
 *                                    multi-interests|gcn)
 *   paichar schedule   trace.csv [--servers N] [--nvlink-frac F]
 *                      [--port 0|1] [--rate JOBS_PER_HOUR]
 *   paichar obs        report RUN | diff A B [--tolerance PCT] |
 *                      top JOBLOG [--limit N]
 *
 * All quantities are base units (FLOPs, bytes); architectures use the
 * paper names ("PS/Worker", "AllReduce-Local", ...).
 *
 * Trace files may be CSV or the `paib` binary columnar format; every
 * command that reads a trace auto-detects the format by magic.
 * `generate` and `convert` pick the output encoding via
 * `--trace-format csv|bin` (convert falls back to the output
 * extension: .paib/.bin means binary).
 *
 * Every command accepts a global `--threads N` flag controlling the
 * paichar::runtime worker pool (default: the PAICHAR_THREADS
 * environment variable, else hardware concurrency; 1 runs the exact
 * serial path). Command outputs are byte-identical for every N.
 *
 * Observability flags (`--metrics[=FILE]`,
 * `--metrics-format text|openmetrics`, `--profile FILE`,
 * `--job-log FILE`, `--job-trace FILE`) write to files or err only;
 * stdout stays byte-identical with and without them. `obs` analyzes
 * the artifacts: `report` summarizes a run, `top` lists the slowest
 * jobs/phases of a job log, and `diff` compares two runs, exiting 2
 * when any shared scalar moves past `--tolerance` percent (the CI
 * perf gate; see DESIGN.md Sec 10).
 */

#ifndef PAICHAR_CLI_CLI_H
#define PAICHAR_CLI_CLI_H

#include <ostream>
#include <string>
#include <vector>

namespace paichar::cli {

/**
 * Run the CLI.
 *
 * @param args Arguments excluding the program name.
 * @param out  Normal output stream.
 * @param err  Error/diagnostic stream.
 * @return Process exit code (0 on success, 1 on user error).
 */
int run(const std::vector<std::string> &args, std::ostream &out,
        std::ostream &err);

} // namespace paichar::cli

#endif // PAICHAR_CLI_CLI_H
