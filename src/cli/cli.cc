#include "cli.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "clustersim/scheduler.h"
#include "obs/analyze.h"
#include "obs/job_log.h"
#include "obs/json_util.h"
#include "obs/obs.h"
#include "obs/timeline.h"
#include "stats/ascii_plot.h"
#include "trace/binary_trace.h"
#include "core/arch_selection.h"
#include "core/characterization.h"
#include "core/projection.h"
#include "core/sweep.h"
#include "hw/units.h"
#include "inference/fleet_sim.h"
#include "inference/serving_sim.h"
#include "opt/optimization_planner.h"
#include "predict/predictor.h"
#include "profiler/bottleneck_report.h"
#include "runtime/parallel.h"
#include "sim/sharded_engine.h"
#include "stats/table.h"
#include "testbed/training_sim.h"
#include "trace/synthetic_cluster.h"
#include "trace/trace_io.h"

namespace paichar::cli {

namespace {

using workload::ArchType;
using workload::TrainingJob;

/** A malformed flag value; caught in run() and reported on err. */
struct UsageError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** Parsed --flag value pairs plus positional arguments. */
struct Args
{
    std::vector<std::string> positional;
    std::map<std::string, std::string> flags;

    std::optional<std::string>
    flag(const std::string &name) const
    {
        auto it = flags.find(name);
        if (it == flags.end())
            return std::nullopt;
        return it->second;
    }

    double
    numFlag(const std::string &name, double fallback) const
    {
        auto v = flag(name);
        if (!v)
            return fallback;
        const char *s = v->c_str();
        char *end = nullptr;
        double parsed = std::strtod(s, &end);
        while (end && *end != '\0' &&
               std::isspace(static_cast<unsigned char>(*end)))
            ++end;
        if (end == s || *end != '\0') {
            throw UsageError("error: flag --" + name +
                             " expects a number, got '" + *v + "'");
        }
        return parsed;
    }

    /**
     * A flag restricted to an enumerated value set. Unknown values
     * are a UsageError listing every valid spelling, so typos fail
     * loudly instead of silently falling back.
     */
    std::string
    choiceFlag(const std::string &name, const std::string &fallback,
               const std::vector<std::string> &valid) const
    {
        auto v = flag(name);
        std::string value = v ? *v : fallback;
        if (std::find(valid.begin(), valid.end(), value) ==
            valid.end()) {
            std::string list;
            for (const std::string &s : valid) {
                if (!list.empty())
                    list += ", ";
                list += s;
            }
            throw UsageError("error: flag --" + name +
                             " expects one of " + list + ", got '" +
                             value + "'");
        }
        return value;
    }
};

/** Flags that may appear bare, without a value. */
bool
isValuelessFlag(const std::string &name)
{
    // Bare --metrics sends the summary to stderr; --metrics=FILE
    // redirects it.
    return name == "metrics";
}

/**
 * Split args into flags and positionals. Flags take their value
 * either as the next argument (--name value) or inline
 * (--name=value); valueless flags record an empty value.
 */
std::optional<Args>
parseArgs(const std::vector<std::string> &raw, std::ostream &err)
{
    Args a;
    for (size_t i = 0; i < raw.size(); ++i) {
        if (raw[i].rfind("--", 0) == 0) {
            std::string body = raw[i].substr(2);
            auto eq = body.find('=');
            if (eq != std::string::npos) {
                a.flags[body.substr(0, eq)] = body.substr(eq + 1);
            } else if (isValuelessFlag(body)) {
                a.flags.emplace(body, "");
            } else if (i + 1 >= raw.size()) {
                err << "error: flag " << raw[i]
                    << " expects a value\n";
                return std::nullopt;
            } else {
                a.flags[body] = raw[i + 1];
                ++i;
            }
        } else {
            a.positional.push_back(raw[i]);
        }
    }
    return a;
}

void
printUsage(std::ostream &out)
{
    out << "paichar -- Alibaba-PAI training-workload characterization "
           "(IISWC'19 reproduction)\n"
           "\n"
           "usage:\n"
           "  paichar generate --jobs N [--seed S] [--out FILE]\n"
           "                   [--trace-format csv|bin]\n"
           "  paichar convert IN OUT [--trace-format csv|bin]\n"
           "  paichar characterize TRACE\n"
           "  paichar project TRACE [--target ARCH]\n"
           "  paichar sweep TRACE [--arch ARCH]\n"
           "  paichar advise --flops F --mem M --input I --comm C\n"
           "                 [--dense-weights D] "
           "[--embedding-weights E]\n"
           "                 [--cnodes N] [--gpu-mem BYTES]\n"
           "  paichar diagnose MODEL\n"
           "  paichar plan MODEL [--search exhaustive|beam] "
           "[--top K] [--beam W]\n"
           "               [--passes LIST] [--gpu-mem BYTES] "
           "[--format table|json]\n"
           "  paichar serve MODEL [--qps Q] [--max-batch B] "
           "[--slo-ms MS]\n"
           "                [--servers N] [--routing round-robin|"
           "least-queue|p2c]\n"
           "                [--batching greedy|continuous]\n"
           "                [--arrival constant|diurnal|bursty]\n"
           "                [--admit DEPTH] [--autoscale "
           "0|1|queue|slo] [--requests N]\n"
           "  paichar capacity MODEL --qps Q [--slo-ms MS] "
           "[--max-servers N]\n"
           "                   [--max-batch B] [--routing R] "
           "[--batching B] [--arrival K]\n"
           "  paichar schedule TRACE [--servers N] "
           "[--nvlink-frac F] [--port 0|1] [--rate R]\n"
           "                   [--policy fifo|backfill|spf|"
           "spf-preempt|gang]\n"
           "                   [--predictor model|quantile|linear|"
           "none] [--history JOBLOG]\n"
           "                   [--quantile Q] [--placement "
           "first-fit|best-fit]\n"
           "                   [--hetero F] [--compare-fifo 0|1]\n"
           "  paichar obs report RUN\n"
           "  paichar obs diff A B [--tolerance PCT]\n"
           "  paichar obs top JOBLOG [--limit N]\n"
           "  paichar obs timeline TIMELINE [--plot SERIES]\n"
           "  paichar obs timeline diff A B [--tolerance PCT]\n"
           "\n"
           "Quantities are base units (FLOPs, bytes); ARCH uses the "
           "paper names\n(\"PS/Worker\", \"AllReduce-Local\", "
           "\"AllReduce-Cluster\", \"PEARL\", ...).\n"
           "\n"
           "plan searches the optimization space (mixed precision, "
           "XLA fusion,\narchitecture, sub-graph / channel "
           "partitioning, micro-batching):\nevery feasible candidate "
           "is priced analytically, the best --top K are\nmeasured "
           "on the testbed. --passes restricts the dimensions "
           "(comma list\nof mixed-precision, xla-fusion, "
           "subgraph-partition, channel-split,\nmicro-batch, "
           "arch).\n"
           "\n"
           "schedule replays TRACE through a finite cluster under a "
           "queueing policy.\nPrediction-driven policies (spf, "
           "spf-preempt, gang, and backfill's EASY\nreservations) "
           "order the queue by predicted run time: the analytical\n"
           "model's own (--predictor model) or a predictor fit on a "
           "recorded job\nlog (--predictor quantile|linear --history "
           "LOG). --hetero F populates a\nfraction of servers with "
           "older, slower GPU generations; --compare-fifo 1\nre-runs "
           "the identical submissions under FIFO and prints the "
           "deltas.\n"
           "\n"
           "serve simulates an inference fleet (open-loop arrivals, "
           "pluggable\nrouting, greedy or continuous batching, "
           "optional admission control and\na reactive autoscaler); "
           "capacity bisects the smallest fleet that holds\na p99 "
           "SLO at the offered load. Both are byte-identical for "
           "every\n--threads/--shards setting. --autoscale slo "
           "scales on the trailing\nwindow's p99 latency against "
           "--slo-ms instead of queue depth.\n"
           "\n"
           "TRACE files may be CSV or paib binary; the format is "
           "auto-detected.\ngenerate and convert infer the output "
           "format from the --out extension\n(.paib/.bin = binary) "
           "unless --trace-format is given.\n"
           "\n"
           "Every command accepts --threads N (default: "
           "$PAICHAR_THREADS, else all\nhardware threads; 1 = serial) "
           "and --shards K (default: $PAICHAR_SHARDS,\nelse 1) to "
           "shard the discrete-event engine by server domain.\n"
           "Outputs are identical for every N and K.\n"
           "\n"
           "Observability (never touches stdout):\n"
           "  --metrics[=FILE]  write the metric summary to FILE "
           "(default: stderr)\n"
           "  --metrics-format text|openmetrics\n"
           "                    metric summary format (default: "
           "text)\n"
           "  --profile FILE    write Chrome trace-event JSON of the "
           "run to FILE\n                    (load in Perfetto or "
           "chrome://tracing)\n"
           "  --job-log FILE    write one schema-v1 JSONL record per "
           "simulated job\n                    (schedule, diagnose; "
           "feed to paichar obs)\n"
           "  --job-trace FILE  write a per-worker Chrome trace of "
           "the job timeline\n"
           "  --timeline FILE   write sim-time series probes "
           "(queue depth, fleet size,\n                    arrival/"
           "preemption rates, windowed latency p50/p99)\n"
           "                    sampled every --timeline-interval "
           "simulated seconds\n                    (default 10; "
           "format csv, or json by --timeline-format /\n"
           "                    a .json extension)\n"
           "\n"
           "obs RUN files are --job-log JSONL or --metrics dumps; "
           "obs diff exits 2\nwhen a shared scalar moves past "
           "--tolerance (default 10%). obs timeline\nreads "
           "--timeline CSV: per-series stats plus a sparkline, "
           "--plot SERIES\ndraws one series full-size, and obs "
           "timeline diff gates per-series\nmean/max/last scalars "
           "like obs diff.\n"
           "\n"
           "Flags may be written --flag VALUE or --flag=VALUE.\n";
}

std::optional<std::vector<TrainingJob>>
loadTrace(const Args &args, std::ostream &err)
{
    if (args.positional.size() < 2) {
        err << "error: expected a trace file\n";
        return std::nullopt;
    }
    // Format (CSV or paib binary) is auto-detected by magic; CSV
    // bodies parse in parallel on the global pool.
    auto r = trace::readTraceFile(args.positional[1],
                                  runtime::globalPool());
    if (!r.ok) {
        err << "error: " << r.error << "\n";
        return std::nullopt;
    }
    return std::move(r.jobs);
}

/**
 * Like loadTrace, but keeps `paib` traces in their mmap'd columnar
 * form: jobs decode on access instead of being materialized up
 * front. Rejects exactly the inputs loadTrace rejects, with the
 * same error text.
 */
std::optional<workload::JobStore>
loadTraceStore(const Args &args, std::ostream &err)
{
    if (args.positional.size() < 2) {
        err << "error: expected a trace file\n";
        return std::nullopt;
    }
    auto r = trace::readTraceStore(args.positional[1],
                                   runtime::globalPool());
    if (!r.ok) {
        err << "error: " << r.error << "\n";
        return std::nullopt;
    }
    return std::move(r.store);
}

/**
 * The --trace-format flag ("csv" | "bin"). @p fallback covers the
 * unset case: cmdGenerate defaults to CSV, cmdConvert infers from
 * the output file extension.
 */
std::optional<trace::TraceFormat>
traceFormatFlag(const Args &args, trace::TraceFormat fallback,
                std::ostream &err)
{
    auto v = args.flag("trace-format");
    if (!v)
        return fallback;
    auto f = trace::traceFormatFromString(*v);
    if (!f) {
        err << "error: --trace-format expects csv or bin, got '"
            << *v << "'\n";
        return std::nullopt;
    }
    return f;
}

/** bin for .paib/.bin output paths, csv otherwise. */
trace::TraceFormat
formatFromExtension(const std::string &path)
{
    auto dot = path.rfind('.');
    std::string ext = dot == std::string::npos ? ""
                                               : path.substr(dot);
    return (ext == ".paib" || ext == ".bin")
               ? trace::TraceFormat::Binary
               : trace::TraceFormat::Csv;
}

int
cmdGenerate(const Args &args, std::ostream &out, std::ostream &err)
{
    auto jobs_n = static_cast<size_t>(args.numFlag("jobs", 20000));
    auto seed = static_cast<uint64_t>(args.numFlag("seed", 20181201));
    auto out_file = args.flag("out");
    // Like convert: the --out extension picks the format (.paib/.bin
    // = binary), --trace-format overrides.
    auto format = traceFormatFlag(
        args,
        out_file ? formatFromExtension(*out_file)
                 : trace::TraceFormat::Csv,
        err);
    if (!format)
        return 1;
    trace::SyntheticClusterGenerator gen(seed);
    auto jobs = gen.generate(jobs_n, runtime::globalPool());
    if (out_file) {
        if (!trace::writeTraceFile(*out_file, jobs, *format)) {
            err << "error: cannot write '" << *out_file << "'\n";
            return 1;
        }
        out << "wrote " << jobs.size() << " jobs (seed " << seed
            << ", " << trace::toString(*format) << ") to "
            << *out_file << "\n";
    } else if (*format == trace::TraceFormat::Binary) {
        err << "error: --trace-format bin requires --out FILE\n";
        return 1;
    } else {
        out << trace::toCsv(jobs);
    }
    return 0;
}

int
cmdConvert(const Args &args, std::ostream &out, std::ostream &err)
{
    if (args.positional.size() < 3) {
        err << "error: convert expects an input and an output trace "
               "file\n";
        return 1;
    }
    const std::string &in_path = args.positional[1];
    const std::string &out_path = args.positional[2];
    auto format =
        traceFormatFlag(args, formatFromExtension(out_path), err);
    if (!format)
        return 1;

    auto r = trace::readTraceFile(in_path, runtime::globalPool());
    if (!r.ok) {
        err << "error: " << r.error << "\n";
        return 1;
    }
    if (!trace::writeTraceFile(out_path, r.jobs, *format)) {
        err << "error: cannot write '" << out_path << "'\n";
        return 1;
    }
    out << "converted " << r.jobs.size() << " jobs: " << in_path
        << " -> " << out_path << " ("
        << trace::toString(*format) << ")\n";
    return 0;
}

int
cmdCharacterize(const Args &args, std::ostream &out, std::ostream &err)
{
    auto jobs = loadTraceStore(args, err);
    if (!jobs)
        return 1;
    core::AnalyticalModel model(hw::paiCluster());
    core::ClusterCharacterizer ch(model, std::move(*jobs));

    auto c = ch.constitution();
    stats::Table t({"type", "jobs", "job share", "cNode share",
                    "avg comm share (job)", "avg comm share (cNode)"});
    for (ArchType arch : workload::kAllArchTypes) {
        if (c.job_counts.find(arch) == c.job_counts.end())
            continue;
        auto jl = ch.avgBreakdown(arch, core::Level::Job);
        auto cl = ch.avgBreakdown(arch, core::Level::CNode);
        t.addRow({workload::toString(arch),
                  std::to_string(c.job_counts[arch]),
                  stats::fmtPct(c.jobShare(arch)),
                  stats::fmtPct(c.cnodeShare(arch)),
                  stats::fmtPct(jl[1]), stats::fmtPct(cl[1])});
    }
    out << t.render();

    auto cl = ch.avgBreakdown(std::nullopt, core::Level::CNode);
    out << "cluster cNode-level breakdown: data "
        << stats::fmtPct(cl[0]) << ", weights " << stats::fmtPct(cl[1])
        << ", compute-bound " << stats::fmtPct(cl[2])
        << ", memory-bound " << stats::fmtPct(cl[3]) << "\n";
    return 0;
}

int
cmdProject(const Args &args, std::ostream &out, std::ostream &err)
{
    auto jobs = loadTrace(args, err);
    if (!jobs)
        return 1;
    std::string target_name =
        args.flag("target").value_or("AllReduce-Local");
    auto target = workload::archFromString(target_name);
    if (!target) {
        err << "error: unknown architecture '" << target_name << "'\n";
        return 1;
    }
    core::AnalyticalModel model(hw::paiCluster());
    core::ArchitectureProjector proj(model);
    std::vector<TrainingJob> ps;
    for (const auto &job : *jobs) {
        if (job.arch == ArchType::PsWorker)
            ps.push_back(job);
    }
    if (ps.empty()) {
        err << "error: trace has no PS/Worker jobs to project\n";
        return 1;
    }
    auto results = proj.projectAll(ps, *target);
    int n = static_cast<int>(results.size()), sped = 0;
    double sum = 0.0;
    for (const auto &r : results) {
        sped += r.throughput_speedup > 1.0;
        sum += r.throughput_speedup;
    }
    out << "projected " << n << " PS/Worker jobs to " << target_name
        << ": "
        << stats::fmtPct(static_cast<double>(sped) / n)
        << " gain throughput, mean speedup "
        << stats::fmt(sum / n, 2) << "x\n";
    return 0;
}

int
cmdSweep(const Args &args, std::ostream &out, std::ostream &err)
{
    auto jobs = loadTrace(args, err);
    if (!jobs)
        return 1;
    std::string arch_name = args.flag("arch").value_or("PS/Worker");
    auto arch = workload::archFromString(arch_name);
    if (!arch) {
        err << "error: unknown architecture '" << arch_name << "'\n";
        return 1;
    }
    std::vector<TrainingJob> filtered;
    for (const auto &job : *jobs) {
        if (job.arch == *arch)
            filtered.push_back(job);
    }
    if (filtered.empty()) {
        err << "error: trace has no " << arch_name << " jobs\n";
        return 1;
    }
    core::HardwareSweep sweep(hw::paiCluster());
    stats::Table t({"resource", "value", "normalized", "avg speedup"});
    for (const auto &series : sweep.run(filtered)) {
        for (const auto &p : series.points) {
            t.addRow({hw::toString(p.resource),
                      stats::fmt(p.value, 0),
                      stats::fmt(p.normalized, 2) + "x",
                      stats::fmt(p.avg_speedup, 3) + "x"});
        }
        t.addSeparator();
    }
    out << arch_name << " jobs: " << filtered.size() << "\n"
        << t.render();
    return 0;
}

int
cmdAdvise(const Args &args, std::ostream &out, std::ostream &err)
{
    TrainingJob job;
    job.arch = ArchType::PsWorker;
    job.num_cnodes = static_cast<int>(args.numFlag("cnodes", 8));
    job.features.batch_size = args.numFlag("batch", 256);
    job.features.flop_count = args.numFlag("flops", -1);
    job.features.mem_access_bytes = args.numFlag("mem", -1);
    job.features.input_bytes = args.numFlag("input", -1);
    job.features.comm_bytes = args.numFlag("comm", -1);
    job.features.dense_weight_bytes =
        args.numFlag("dense-weights", job.features.comm_bytes);
    job.features.embedding_weight_bytes =
        args.numFlag("embedding-weights", 0.0);
    if (job.features.embedding_weight_bytes > 0.0) {
        // Traffic split mirrors the weight split by default.
        job.features.embedding_comm_bytes =
            job.features.comm_bytes *
            job.features.embedding_weight_bytes /
            job.features.weightBytes();
    }
    if (!job.features.valid() || job.features.flop_count < 0 ||
        job.features.mem_access_bytes < 0 ||
        job.features.input_bytes < 0 || job.features.comm_bytes < 0) {
        err << "error: advise requires non-negative --flops --mem "
               "--input --comm\n";
        return 1;
    }

    double gpu_mem = args.numFlag("gpu-mem", 32e9);
    core::AnalyticalModel model(hw::v100Testbed());
    core::ArchitectureAdvisor advisor(model, gpu_mem);
    stats::Table t({"architecture", "cNodes", "per-GPU weights",
                    "step time", "throughput", "feasible"});
    for (const auto &opt : advisor.evaluate(job)) {
        t.addRow({workload::toString(opt.arch),
                  std::to_string(opt.num_cnodes),
                  stats::fmtBytes(opt.per_gpu_weight_bytes),
                  opt.feasible ? stats::fmtSeconds(opt.step_time)
                               : "-",
                  opt.feasible ? stats::fmt(opt.throughput, 0) +
                                     " samples/s"
                               : "-",
                  opt.feasible ? "yes" : "no: " + opt.reason});
    }
    out << t.render();
    auto best = advisor.recommend(job);
    out << "recommendation: " << workload::toString(best.arch)
        << " with " << best.num_cnodes << " cNodes\n";
    return 0;
}

/** Case-study model by lowercase name, or nullopt + err report. */
std::optional<workload::CaseStudyModel>
findModel(const std::string &name, std::ostream &err)
{
    for (const auto &m : workload::ModelZoo::all()) {
        std::string lower;
        for (char c : m.name)
            lower += static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        if (lower == name)
            return m;
    }
    err << "error: unknown model '" << name
        << "' (try resnet50, nmt, bert, speech, "
           "multi-interests, gcn)\n";
    return std::nullopt;
}

int
cmdDiagnose(const Args &args, std::ostream &out, std::ostream &err)
{
    if (args.positional.size() < 2) {
        err << "error: diagnose expects a model name\n";
        return 1;
    }
    auto model = findModel(args.positional[1], err);
    if (!model)
        return 1;

    testbed::TrainingSimulator sim;
    auto result = sim.run(*model);
    profiler::BottleneckAnalyzer analyzer(
        sim.options().kernel_launch_overhead);
    out << "=== " << model->name << " on the simulated testbed ("
        << workload::toString(model->arch) << ", "
        << model->num_cnodes << " cNodes) ===\n"
        << analyzer.analyze(result.metadata).render();

    opt::OptimizationPlanner planner;
    auto best = planner.best(*model);
    out << "best measured plan: " << best.label() << " ("
        << stats::fmt(best.speedup, 2) << "x over the baseline)\n";
    return 0;
}

/** One --passes token applied onto the planner config. */
bool
applyPassToken(const std::string &token, opt::PlannerConfig &cfg)
{
    if (token == "mixed-precision")
        cfg.enable_mixed_precision = true;
    else if (token == "xla-fusion")
        cfg.enable_xla_fusion = true;
    else if (token == "subgraph-partition")
        cfg.enable_subgraph_partition = true;
    else if (token == "channel-split")
        cfg.enable_channel_split = true;
    else if (token == "micro-batch")
        cfg.enable_micro_batching = true;
    else if (token == "arch")
        cfg.explore_architectures = true;
    else
        return false;
    return true;
}

/** JSON spelling of one evaluated plan. */
void
appendPlanJson(std::string &j, const opt::Plan &p)
{
    const opt::CostEstimate &est =
        p.simulated ? p.measured : p.analytical;
    j += "{\"plan\":\"";
    obs::appendJsonEscaped(j, p.label());
    j += "\",\"arch\":\"";
    obs::appendJsonEscaped(j, workload::toString(p.spec.arch));
    j += "\",\"cnodes\":";
    obs::appendJsonNumber(j, int64_t{p.spec.num_cnodes});
    j += ",\"data_parallel\":";
    obs::appendJsonNumber(j, int64_t{p.spec.dataParallel()});
    j += ",\"split_ways\":";
    obs::appendJsonNumber(j, int64_t{p.spec.splitWays()});
    j += ",\"micro_batches\":";
    obs::appendJsonNumber(j, int64_t{p.spec.micro_batches});
    j += ",\"evaluator\":\"";
    j += p.simulated ? "simulated" : "analytical";
    j += "\",\"step_time\":";
    obs::appendJsonNumber(j, est.step_time);
    j += ",\"throughput\":";
    obs::appendJsonNumber(j, est.throughput);
    j += ",\"speedup\":";
    obs::appendJsonNumber(j, p.speedup);
    j += ",\"traffic\":{\"pcie_bytes\":";
    obs::appendJsonNumber(j, est.traffic.pcie_bytes);
    j += ",\"ethernet_bytes\":";
    obs::appendJsonNumber(j, est.traffic.ethernet_bytes);
    j += ",\"nvlink_bytes\":";
    obs::appendJsonNumber(j, est.traffic.nvlink_bytes);
    j += "}}";
}

int
cmdPlan(const Args &args, std::ostream &out, std::ostream &err)
{
    if (args.positional.size() < 2) {
        err << "error: plan expects a model name\n";
        return 1;
    }
    auto model = findModel(args.positional[1], err);
    if (!model)
        return 1;

    opt::PlannerConfig cfg;
    std::string search =
        args.flag("search").value_or("exhaustive");
    if (search == "beam") {
        cfg.search = opt::SearchMode::Beam;
    } else if (search != "exhaustive") {
        err << "error: --search expects exhaustive or beam, got '"
            << search << "'\n";
        return 1;
    }
    double top = args.numFlag("top", cfg.top_k);
    if (top < 0 || top != std::floor(top)) {
        err << "error: --top expects a non-negative integer\n";
        return 1;
    }
    cfg.top_k = static_cast<int>(top);
    double beam = args.numFlag("beam", cfg.beam_width);
    if (beam < 1 || beam != std::floor(beam)) {
        err << "error: --beam expects a positive integer\n";
        return 1;
    }
    cfg.beam_width = static_cast<int>(beam);
    cfg.gpu_memory_bytes =
        args.numFlag("gpu-mem", cfg.gpu_memory_bytes);
    if (cfg.gpu_memory_bytes <= 0.0) {
        err << "error: --gpu-mem expects a positive byte count\n";
        return 1;
    }
    if (auto passes = args.flag("passes")) {
        cfg.enable_mixed_precision = false;
        cfg.enable_xla_fusion = false;
        cfg.enable_subgraph_partition = false;
        cfg.enable_channel_split = false;
        cfg.enable_micro_batching = false;
        cfg.explore_architectures = false;
        std::stringstream ss(*passes);
        std::string token;
        while (std::getline(ss, token, ',')) {
            if (!applyPassToken(token, cfg)) {
                err << "error: --passes: unknown pass '" << token
                    << "' (mixed-precision, xla-fusion, "
                       "subgraph-partition, channel-split, "
                       "micro-batch, arch)\n";
                return 1;
            }
        }
    }
    std::string format = args.flag("format").value_or("table");
    if (format != "table" && format != "json") {
        err << "error: --format expects table or json, got '"
            << format << "'\n";
        return 1;
    }

    opt::OptimizationPlanner planner(cfg);
    auto plans = planner.evaluate(*model);
    // Same pick rule as OptimizationPlanner::best, without paying
    // for a second search.
    const opt::Plan &best =
        plans.size() > 1 && plans[1].simulated &&
                plans[1].speedup >= 1.0
            ? plans[1]
            : plans[0];

    if (format == "json") {
        std::string j = "{\"model\":\"";
        obs::appendJsonEscaped(j, model->name);
        j += "\",\"search\":\"";
        j += search;
        j += "\",\"plans\":[";
        for (size_t i = 0; i < plans.size(); ++i) {
            if (i)
                j += ",";
            appendPlanJson(j, plans[i]);
        }
        j += "],\"best\":\"";
        obs::appendJsonEscaped(j, best.label());
        j += "\"}";
        out << j << "\n";
        return 0;
    }

    out << "=== plan: " << model->name << " ("
        << workload::toString(model->arch) << ", "
        << model->num_cnodes << " cNodes, batch "
        << stats::fmt(model->features.batch_size, 0) << ", "
        << search << " search) ===\n";
    stats::Table t({"plan", "cNodes", "dp x ways x acc", "step time",
                    "throughput", "speedup", "evaluator"});
    for (const auto &p : plans) {
        const opt::CostEstimate &est =
            p.simulated ? p.measured : p.analytical;
        t.addRow({p.label(), std::to_string(p.spec.num_cnodes),
                  std::to_string(p.spec.dataParallel()) + " x " +
                      std::to_string(p.spec.splitWays()) + " x " +
                      std::to_string(p.spec.micro_batches),
                  stats::fmtSeconds(est.step_time),
                  stats::fmt(est.throughput, 0) + "/s",
                  stats::fmt(p.speedup, 2) + "x",
                  p.simulated ? "simulated" : "analytical"});
    }
    out << t.render();

    if (!best.diagnostics.empty()) {
        out << "pass diagnostics (" << best.label() << "):\n";
        for (const auto &d : best.diagnostics) {
            out << "  " << d.pass << ": ops " << d.ops_before
                << " -> " << d.ops_after << ", kernels "
                << d.kernels_before << " -> " << d.kernels_after
                << ", " << stats::fmtG(d.flops_before) << " -> "
                << stats::fmtG(d.flops_after) << " FLOPs, "
                << stats::fmtBytes(d.mem_bytes_before) << " -> "
                << stats::fmtBytes(d.mem_bytes_after) << " mem";
            if (d.exchange_nvlink_bytes > 0.0) {
                out << ", +"
                    << stats::fmtBytes(d.exchange_nvlink_bytes)
                    << "/GPU NVLink exchange";
            }
            out << "\n";
        }
    }
    out << "best plan: " << best.label() << " ("
        << stats::fmt(best.speedup, 2) << "x over the baseline)\n";
    return 0;
}

/** Fleet shape shared by `serve` and `capacity`. */
struct FleetArgs
{
    inference::FleetConfig cfg;
    stats::ArrivalConfig arrival;
    int64_t requests = 20000;
    double slo = 0.0;
    /** Per-request cost at batch 1 (sets the default qps/slo). */
    double solo = 0.0;
};

/**
 * Parse the fleet flags (--servers, --routing, --batching,
 * --arrival, --admit, --autoscale, --max-batch, --qps, --slo-ms,
 * --requests) for @p w. Throws UsageError on malformed values.
 */
FleetArgs
parseFleetArgs(const Args &args, const inference::InferenceWorkload &w)
{
    FleetArgs f;
    f.cfg.num_servers = static_cast<int>(args.numFlag("servers", 1));
    f.cfg.max_batch = static_cast<int>(args.numFlag("max-batch", 8));
    f.cfg.routing = *inference::routingFromString(args.choiceFlag(
        "routing", "round-robin",
        {"round-robin", "least-queue", "p2c"}));
    f.cfg.batching = *inference::batchingFromString(
        args.choiceFlag("batching", "greedy",
                        {"greedy", "continuous"}));
    f.cfg.admit_queue = static_cast<int>(args.numFlag("admit", 0));
    // "1" and "queue" are the original depth-driven controller;
    // "slo" reacts to the trailing-window p99 instead (the latency
    // target is fixed up below, once --slo-ms is known).
    std::string autoscale = args.choiceFlag(
        "autoscale", "0", {"0", "1", "queue", "slo"});
    if (autoscale != "0") {
        f.cfg.autoscaler.enabled = true;
        f.cfg.autoscaler.max_servers = std::max(
            f.cfg.num_servers,
            static_cast<int>(args.numFlag("max-servers", 64)));
        if (autoscale == "slo") {
            f.cfg.autoscaler.mode =
                inference::AutoscalerConfig::Mode::SloLatency;
        }
    }
    f.arrival.kind = *stats::arrivalKindFromString(args.choiceFlag(
        "arrival", "constant", {"constant", "diurnal", "bursty"}));

    f.solo = w.serviceTime(1, f.cfg.server.gpu,
                           f.cfg.launch_overhead) +
             w.inputTime(1, f.cfg.server.pcie_bandwidth);
    f.arrival.qps =
        args.numFlag("qps", 0.5 * f.cfg.num_servers / f.solo);
    f.slo = args.numFlag("slo-ms", 5.0 * f.solo * 1e3) * 1e-3;
    f.cfg.autoscaler.slo_latency = f.slo;
    f.requests =
        static_cast<int64_t>(args.numFlag("requests", 20000));
    return f;
}

int
cmdServe(const Args &args, std::ostream &out, std::ostream &err)
{
    if (args.positional.size() < 2) {
        err << "error: serve expects a model name\n";
        return 1;
    }
    auto model = findModel(args.positional[1], err);
    if (!model)
        return 1;
    auto w = inference::InferenceWorkload::fromTraining(*model);
    FleetArgs f = parseFleetArgs(args, w);

    inference::FleetSimulator fleet(f.cfg);
    auto r = fleet.run({{w, f.arrival}}, f.requests, 20190701);

    out << w.name << " inference @ " << stats::fmt(f.arrival.qps, 0)
        << " qps (" << stats::toString(f.arrival.kind)
        << " arrivals, " << f.cfg.num_servers << " server"
        << (f.cfg.num_servers == 1 ? "" : "s") << ", "
        << inference::toString(f.cfg.routing) << " routing, "
        << inference::toString(f.cfg.batching)
        << " batching, max batch " << f.cfg.max_batch << "):\n"
        << "  p50 " << stats::fmtSeconds(r.p50_latency) << ", p95 "
        << stats::fmtSeconds(r.p95_latency) << ", p99 "
        << stats::fmtSeconds(r.p99_latency) << ", p999 "
        << stats::fmtSeconds(r.p999_latency) << ", GPU util "
        << stats::fmtPct(r.gpu_utilization) << ", avg batch "
        << stats::fmt(r.avg_batch, 2) << ", verdict "
        << inference::toString(r.verdict)
        << (r.saturated ? "  [OVERLOAD]" : "") << "\n";
    if (f.cfg.admit_queue > 0) {
        out << "  admitted " << r.admitted << "/" << r.offered
            << " (" << r.rejected << " rejected at queue depth "
            << f.cfg.admit_queue << ")\n";
    }
    if (f.cfg.autoscaler.enabled) {
        out << "  autoscaler: " << r.scale_ups << " up / "
            << r.scale_downs << " down, peak " << r.peak_servers
            << " servers, final " << r.final_servers << "\n";
        if (f.cfg.autoscaler.mode ==
            inference::AutoscalerConfig::Mode::SloLatency) {
            out << "  slo mode: target p99 <= "
                << stats::fmtSeconds(f.cfg.autoscaler.slo_latency)
                << ", achieved p99 "
                << stats::fmtSeconds(r.p99_latency)
                << (r.p99_latency <= f.cfg.autoscaler.slo_latency
                        ? " [met]"
                        : " [missed]")
                << "\n";
        }
    }
    // The single-server SLO search (the seed simulator's headline
    // number) still anchors the default invocation.
    if (f.cfg.num_servers == 1 && !f.cfg.autoscaler.enabled &&
        f.cfg.batching == inference::Batching::Greedy &&
        f.arrival.kind == stats::ArrivalKind::Constant &&
        f.cfg.admit_queue == 0) {
        inference::ServingConfig scfg;
        scfg.max_batch = f.cfg.max_batch;
        inference::ServingSimulator sim(scfg);
        double cap = sim.maxQpsUnderSlo(w, f.slo, 50.0 / f.solo,
                                        20190701);
        out << "  max QPS under p99 <= " << stats::fmtSeconds(f.slo)
            << ": " << stats::fmt(cap, 0) << "\n";
    }
    return 0;
}

int
cmdCapacity(const Args &args, std::ostream &out, std::ostream &err)
{
    if (args.positional.size() < 2) {
        err << "error: capacity expects a model name\n";
        return 1;
    }
    auto model = findModel(args.positional[1], err);
    if (!model)
        return 1;
    auto w = inference::InferenceWorkload::fromTraining(*model);
    FleetArgs f = parseFleetArgs(args, w);
    int max_servers =
        static_cast<int>(args.numFlag("max-servers", 64));

    out << "capacity: " << w.name << " @ "
        << stats::fmt(f.arrival.qps, 0) << " qps ("
        << stats::toString(f.arrival.kind) << " arrivals, "
        << inference::toString(f.cfg.routing) << " routing, "
        << inference::toString(f.cfg.batching)
        << " batching, max batch " << f.cfg.max_batch
        << "), SLO p99 <= " << stats::fmtSeconds(f.slo) << "\n";
    auto n = inference::minServersForSlo(
        f.cfg, {{w, f.arrival}}, f.slo, max_servers, f.requests,
        20190701);
    if (!n) {
        out << "  not attainable within " << max_servers
            << " servers\n";
        return 0;
    }
    inference::FleetConfig at = f.cfg;
    at.num_servers = *n;
    at.autoscaler.enabled = false;
    auto r = inference::FleetSimulator(at).run({{w, f.arrival}},
                                               f.requests, 20190701);
    out << "  servers needed: " << *n << "\n"
        << "  at " << *n << " servers: p99 "
        << stats::fmtSeconds(r.p99_latency) << ", GPU util "
        << stats::fmtPct(r.gpu_utilization) << ", avg batch "
        << stats::fmt(r.avg_batch, 2) << ", verdict "
        << inference::toString(r.verdict) << "\n";
    return 0;
}

std::optional<std::string> readTextFile(const std::string &path,
                                        std::ostream &err);

int
cmdSchedule(const Args &args, std::ostream &out, std::ostream &err)
{
    auto store = loadTraceStore(args, err);
    if (!store)
        return 1;
    auto jobs = std::move(*store).materialize();
    clustersim::SchedulerConfig cfg;
    cfg.num_servers =
        static_cast<int>(args.numFlag("servers", 64));
    cfg.nvlink_fraction = args.numFlag("nvlink-frac", 0.5);
    cfg.port_ps_to_allreduce = args.numFlag("port", 0) != 0;
    double rate = args.numFlag("rate", 150.0);

    std::string policy_name = args.choiceFlag(
        "policy", "backfill", clustersim::policyNames());
    cfg.policy = *clustersim::policyFromString(policy_name);
    std::string predictor_name = args.choiceFlag(
        "predictor", "model", {"model", "quantile", "linear", "none"});
    std::string placement_name = args.choiceFlag(
        "placement", "first-fit", {"first-fit", "best-fit"});
    cfg.placement = placement_name == "best-fit"
                        ? clustersim::PlacementStrategy::BestFit
                        : clustersim::PlacementStrategy::FirstFit;
    double quantile = args.numFlag("quantile", 0.5);
    if (quantile < 0.0 || quantile > 1.0)
        throw UsageError("error: flag --quantile expects a value "
                         "in [0, 1]");
    cfg.old_gen_fraction = args.numFlag("hetero", 0.0);
    if (cfg.old_gen_fraction < 0.0 || cfg.old_gen_fraction > 1.0)
        throw UsageError("error: flag --hetero expects a fraction "
                         "in [0, 1]");
    bool compare_fifo = args.numFlag("compare-fifo", 0) != 0;

    // Prediction-driven policies have nothing to order the queue by
    // when predictions are turned off entirely.
    bool prediction_driven = cfg.policy == clustersim::Policy::Spf ||
                             cfg.policy ==
                                 clustersim::Policy::SpfPreempt ||
                             cfg.policy == clustersim::Policy::Gang;
    if (predictor_name == "none" && prediction_driven) {
        throw UsageError("error: --policy " + policy_name +
                         " is prediction-driven and cannot run with "
                         "--predictor none (use model, quantile or "
                         "linear)");
    }

    // History-trained predictors fit on a recorded --job-log stream.
    std::vector<obs::JobRecord> history;
    if (predictor_name == "quantile" || predictor_name == "linear") {
        auto path = args.flag("history");
        if (!path) {
            throw UsageError("error: --predictor " + predictor_name +
                             " requires --history JOBLOG (a recorded "
                             "--job-log file to fit on)");
        }
        auto text = readTextFile(*path, err);
        if (!text)
            return 1;
        auto r = obs::loadRunData(*text);
        if (!r.ok) {
            err << "error: " << *path << ": " << r.error << "\n";
            return 1;
        }
        if (r.data.kind != obs::RunData::Kind::JobLog) {
            err << "error: --history requires a job log "
                   "(--job-log output)\n";
            return 1;
        }
        history = std::move(r.data.records);
    }
    std::unique_ptr<predict::DurationModel> duration_model;
    if (predictor_name == "quantile") {
        duration_model = std::make_unique<predict::QuantileDurationModel>(
            history, quantile);
    } else if (predictor_name == "linear") {
        duration_model =
            std::make_unique<predict::LinearDurationModel>(history);
    }
    if (duration_model) {
        cfg.predictor = [&m = *duration_model](
                            const TrainingJob &job, int64_t steps,
                            double model_run_s) {
            return m.predictRunSeconds(job, steps, model_run_s);
        };
    } else if (predictor_name == "model") {
        // The analytical model's own prediction. Distinct from
        // "none": Policy::Backfill upgrades from greedy skip-ahead
        // to EASY reservations when any predictor is present.
        cfg.predictor = [](const TrainingJob &, int64_t,
                           double model_run_s) {
            return model_run_s;
        };
    }

    // Clamp jobs to the cluster and build a submission stream.
    for (auto &j : jobs)
        j.num_cnodes = std::min(j.num_cnodes, cfg.num_servers);
    auto requests = clustersim::poissonRequests(
        jobs, rate, 2000.0, 1.2, 20181201);

    core::AnalyticalModel model(hw::paiCluster());
    clustersim::ClusterScheduler sched(cfg, model);
    auto result = sched.run(requests);
    out << "scheduled " << result.jobs.size() << " jobs on "
        << cfg.num_servers << " servers ("
        << stats::fmtPct(cfg.nvlink_fraction, 0)
        << " NVLink, porting "
        << (cfg.port_ps_to_allreduce ? "on" : "off") << ")\n"
        << "  policy: " << policy_name << ", predictor: "
        << predictor_name << ", placement: " << placement_name
        << "\n"
        << "  mean wait: " << stats::fmtSeconds(result.mean_wait)
        << ", p95 wait: " << stats::fmtSeconds(result.p95_wait)
        << "\n  GPU utilization: "
        << stats::fmtPct(result.gpu_utilization)
        << ", makespan: " << stats::fmtSeconds(result.makespan)
        << ", ported jobs: " << result.ported_jobs
        << ", preempted: " << result.preemptions << "\n";

    // Submit-time queueing-delay estimate from the same history, the
    // "how long will a job like this wait" answer of DESIGN.md Sec 13.
    if (!history.empty()) {
        predict::QueueDelayModel delay(history, quantile);
        out << "  history-predicted wait (8-GPU job, q="
            << stats::fmt(quantile, 2)
            << "): " << stats::fmtSeconds(delay.predictQueueSeconds(8))
            << "\n";
    }

    // A second run of the identical submission stream under plain
    // FIFO quantifies what the chosen policy buys. The comparison
    // run never writes telemetry: the exported job log must keep
    // exactly one record per job.
    if (compare_fifo && cfg.policy != clustersim::Policy::Fifo) {
        clustersim::SchedulerConfig base = cfg;
        base.policy = clustersim::Policy::Fifo;
        base.record_job_log = false;
        base.record_timeline = false;
        clustersim::ClusterScheduler fifo(base, model);
        auto fifo_result = fifo.run(std::move(requests));
        double dm = fifo_result.mean_wait > 0.0
                        ? (fifo_result.mean_wait - result.mean_wait) /
                              fifo_result.mean_wait
                        : 0.0;
        out << "  vs fifo: mean wait "
            << stats::fmtSeconds(fifo_result.mean_wait) << " -> "
            << stats::fmtSeconds(result.mean_wait) << " ("
            << stats::fmtPct(dm) << " lower), p95 "
            << stats::fmtSeconds(fifo_result.p95_wait) << " -> "
            << stats::fmtSeconds(result.p95_wait)
            << ", utilization "
            << stats::fmtPct(fifo_result.gpu_utilization) << " -> "
            << stats::fmtPct(result.gpu_utilization) << "\n";
    }
    return 0;
}

int
cmdObs(const Args &args, std::ostream &out, std::ostream &err)
{
    if (args.positional.size() < 2) {
        err << "error: obs expects a verb: report | diff | top | "
               "timeline\n";
        return 1;
    }
    const std::string &verb = args.positional[1];

    auto load =
        [&](const std::string &path) -> std::optional<obs::RunData> {
        auto text = readTextFile(path, err);
        if (!text)
            return std::nullopt;
        auto r = obs::loadRunData(*text);
        if (!r.ok) {
            err << "error: " << path << ": " << r.error << "\n";
            return std::nullopt;
        }
        return std::move(r.data);
    };

    if (verb == "report") {
        if (args.positional.size() < 3) {
            err << "error: obs report expects a run file\n";
            return 1;
        }
        auto run = load(args.positional[2]);
        if (!run)
            return 1;
        out << obs::reportText(*run);
        return 0;
    }
    if (verb == "top") {
        if (args.positional.size() < 3) {
            err << "error: obs top expects a job-log file\n";
            return 1;
        }
        auto run = load(args.positional[2]);
        if (!run)
            return 1;
        if (run->kind != obs::RunData::Kind::JobLog) {
            err << "error: obs top requires a job log "
                   "(--job-log output)\n";
            return 1;
        }
        double limit = args.numFlag("limit", 10);
        if (limit < 1 || limit != std::floor(limit)) {
            err << "error: --limit expects a positive integer\n";
            return 1;
        }
        out << obs::topText(*run, static_cast<size_t>(limit));
        return 0;
    }
    if (verb == "diff") {
        if (args.positional.size() < 4) {
            err << "error: obs diff expects two run files\n";
            return 1;
        }
        auto a = load(args.positional[2]);
        if (!a)
            return 1;
        auto b = load(args.positional[3]);
        if (!b)
            return 1;
        double tolerance = args.numFlag("tolerance", 10.0);
        if (tolerance < 0.0) {
            err << "error: --tolerance expects a percentage >= 0\n";
            return 1;
        }
        auto diff = obs::diffRuns(*a, *b, tolerance);
        out << obs::renderDiff(diff);
        // Exit 2 on regression so scripts can tell "worse than the
        // baseline" from "could not run" (exit 1).
        return diff.regression ? 2 : 0;
    }
    if (verb == "timeline") {
        auto loadTl = [&](const std::string &path)
            -> std::optional<obs::TimelineData> {
            auto text = readTextFile(path, err);
            if (!text)
                return std::nullopt;
            auto d = obs::loadTimelineCsv(*text);
            if (!d.ok) {
                err << "error: " << path << ": " << d.error << "\n";
                return std::nullopt;
            }
            return std::move(d);
        };

        // `obs timeline diff A B` compares per-series scalars with
        // the same regression semantics (and exit code 2) as
        // `obs diff` -- the CI perf gate reuses it unchanged.
        if (args.positional.size() >= 3 &&
            args.positional[2] == "diff") {
            if (args.positional.size() < 5) {
                err << "error: obs timeline diff expects two "
                       "timeline CSV files\n";
                return 1;
            }
            auto a = loadTl(args.positional[3]);
            if (!a)
                return 1;
            auto b = loadTl(args.positional[4]);
            if (!b)
                return 1;
            double tolerance = args.numFlag("tolerance", 10.0);
            if (tolerance < 0.0) {
                err << "error: --tolerance expects a percentage >= "
                       "0\n";
                return 1;
            }
            auto diff =
                obs::diffRuns(obs::timelineScalars(*a),
                              obs::timelineScalars(*b), tolerance);
            out << obs::renderDiff(diff);
            return diff.regression ? 2 : 0;
        }

        if (args.positional.size() < 3) {
            err << "error: obs timeline expects a timeline CSV "
                   "file\n";
            return 1;
        }
        auto data = loadTl(args.positional[2]);
        if (!data)
            return 1;
        out << obs::renderTimelineReport(*data);
        if (auto plot = args.flag("plot")) {
            auto it = data->series.find(*plot);
            if (it == data->series.end()) {
                err << "error: no series '" << *plot
                    << "' in the timeline (see the report above "
                       "for series names)\n";
                return 1;
            }
            out << "\n" << *plot << ":\n"
                << stats::renderSeriesPlot(it->second, 64, 16,
                                           "window end, seconds");
        }
        return 0;
    }
    err << "error: unknown obs verb '" << verb
        << "' (report | diff | top | timeline)\n";
    return 1;
}

/** Dispatch to the subcommand; nullopt for an unknown command. */
std::optional<int>
dispatch(const std::string &cmd, const Args &args, std::ostream &out,
         std::ostream &err)
{
    if (cmd == "generate")
        return cmdGenerate(args, out, err);
    if (cmd == "convert")
        return cmdConvert(args, out, err);
    if (cmd == "characterize")
        return cmdCharacterize(args, out, err);
    if (cmd == "project")
        return cmdProject(args, out, err);
    if (cmd == "sweep")
        return cmdSweep(args, out, err);
    if (cmd == "advise")
        return cmdAdvise(args, out, err);
    if (cmd == "diagnose")
        return cmdDiagnose(args, out, err);
    if (cmd == "plan")
        return cmdPlan(args, out, err);
    if (cmd == "serve" || cmd == "capacity") {
        // The fleet layer validates by throwing invalid_argument,
        // and its bad values (qps, requests, max-batch, ...) come
        // straight from the flags: report them as CLI errors
        // instead of letting the exception abort the process.
        try {
            return cmd == "serve" ? cmdServe(args, out, err)
                                  : cmdCapacity(args, out, err);
        } catch (const std::invalid_argument &e) {
            err << "error: " << e.what() << "\n";
            return 1;
        }
    }
    if (cmd == "schedule")
        return cmdSchedule(args, out, err);
    if (cmd == "obs")
        return cmdObs(args, out, err);
    return std::nullopt;
}

/**
 * Write @p text to @p path, creating missing parent directories and
 * reporting failure (with the OS reason) on @p err.
 */
bool
writeTextFile(const std::string &path, const std::string &text,
              std::ostream &err)
{
    std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
        if (ec) {
            err << "error: cannot create directory '"
                << parent.string() << "': " << ec.message() << "\n";
            return false;
        }
    }
    errno = 0;
    std::ofstream f(path, std::ios::binary);
    f << text;
    f.flush();
    if (!f) {
        err << "error: cannot write '" << path << "'";
        if (errno != 0)
            err << ": " << std::strerror(errno);
        err << "\n";
        return false;
    }
    return true;
}

/** Read @p path whole, reporting failure on @p err. */
std::optional<std::string>
readTextFile(const std::string &path, std::ostream &err)
{
    errno = 0;
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        err << "error: cannot read '" << path << "'";
        if (errno != 0)
            err << ": " << std::strerror(errno);
        err << "\n";
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    if (f.bad()) {
        err << "error: cannot read '" << path << "'\n";
        return std::nullopt;
    }
    return std::move(buf).str();
}

} // namespace

int
run(const std::vector<std::string> &args, std::ostream &out,
    std::ostream &err)
{
    if (args.empty() || args[0] == "help" || args[0] == "--help") {
        printUsage(out);
        return args.empty() ? 1 : 0;
    }
    auto parsed = parseArgs(args, err);
    if (!parsed)
        return 1;

    const std::string &cmd = args[0];
    try {
        if (parsed->flag("threads")) {
            double t = parsed->numFlag("threads", 0);
            if (t < 1 || t != std::floor(t)) {
                err << "error: --threads expects a positive "
                       "integer\n";
                return 1;
            }
            runtime::setThreadCount(static_cast<int>(t));
        }
        if (parsed->flag("shards")) {
            double k = parsed->numFlag("shards", 0);
            if (k < 1 || k != std::floor(k)) {
                err << "error: --shards expects a positive "
                       "integer\n";
                return 1;
            }
            sim::setShardCount(static_cast<int>(k));
        }

        auto metrics_dest = parsed->flag("metrics");
        auto profile_path = parsed->flag("profile");
        if (profile_path && profile_path->empty()) {
            err << "error: --profile expects an output file\n";
            return 1;
        }
        std::string metrics_format =
            parsed->flag("metrics-format").value_or("text");
        if (metrics_format != "text" &&
            metrics_format != "openmetrics") {
            err << "error: --metrics-format expects text or "
                   "openmetrics, got '"
                << metrics_format << "'\n";
            return 1;
        }
        auto job_log_path = parsed->flag("job-log");
        auto job_trace_path = parsed->flag("job-trace");
        if ((job_log_path && job_log_path->empty()) ||
            (job_trace_path && job_trace_path->empty())) {
            err << "error: --job-log/--job-trace expect an output "
                   "file\n";
            return 1;
        }
        auto timeline_path = parsed->flag("timeline");
        if (timeline_path && timeline_path->empty()) {
            err << "error: --timeline expects an output file\n";
            return 1;
        }
        std::string timeline_format;
        if (timeline_path) {
            // Default format follows the extension, like generate's
            // --out (.json = JSON, anything else = CSV).
            bool json_ext =
                timeline_path->size() >= 5 &&
                timeline_path->compare(timeline_path->size() - 5, 5,
                                       ".json") == 0;
            timeline_format =
                parsed->flag("timeline-format")
                    .value_or(json_ext ? "json" : "csv");
            if (timeline_format != "csv" &&
                timeline_format != "json") {
                err << "error: --timeline-format expects csv or "
                       "json, got '"
                    << timeline_format << "'\n";
                return 1;
            }
        }
        if (profile_path)
            obs::startProfiling();
        if (job_log_path || job_trace_path)
            obs::startJobLog();
        if (timeline_path) {
            // Timeline validates by throwing: a bad
            // --timeline-interval must fail identically in NDEBUG
            // builds.
            try {
                obs::startTimeline(
                    parsed->numFlag("timeline-interval", 10.0));
            } catch (const std::invalid_argument &e) {
                err << "error: " << e.what() << "\n";
                return 1;
            }
        }

        std::optional<int> rc;
        {
            // The root span: everything a subcommand does nests
            // under cli.<cmd> in the exported trace.
            obs::Span span(obs::internName("cli." + cmd));
            rc = dispatch(cmd, *parsed, out, err);
        }

        // Exporters write to files or err only -- stdout stays
        // byte-identical with and without observability flags.
        if (profile_path) {
            obs::stopProfiling();
            if (rc &&
                !writeTextFile(*profile_path, obs::profileToJson(),
                               err) &&
                rc == 0) {
                rc = 1;
            }
        }
        if (timeline_path) {
            obs::stopTimeline();
            if (rc) {
                std::string text = timeline_format == "json"
                                       ? obs::renderTimelineJson()
                                       : obs::renderTimelineCsv();
                if (!writeTextFile(*timeline_path, text, err) &&
                    rc == 0) {
                    rc = 1;
                }
            }
        }
        if (job_log_path || job_trace_path) {
            obs::stopJobLog();
            if (rc) {
                auto records = obs::collectJobLog();
                if (job_log_path &&
                    !writeTextFile(*job_log_path,
                                   obs::renderJobLogJsonl(records),
                                   err) &&
                    rc == 0) {
                    rc = 1;
                }
                if (job_trace_path &&
                    !writeTextFile(
                        *job_trace_path,
                        obs::renderJobChromeTrace(records), err) &&
                    rc == 0) {
                    rc = 1;
                }
            }
        }
        if (metrics_dest && rc) {
            std::string text =
                metrics_format == "openmetrics"
                    ? obs::renderMetricsOpenMetrics()
                    : obs::renderMetricsSummary();
            if (metrics_dest->empty()) {
                err << text;
            } else if (!writeTextFile(*metrics_dest, text, err) &&
                       rc == 0) {
                rc = 1;
            }
        }
        if (rc)
            return *rc;
    } catch (const UsageError &e) {
        err << e.what() << "\n";
        return 1;
    }

    err << "error: unknown command '" << cmd << "'\n";
    printUsage(err);
    return 1;
}

} // namespace paichar::cli
