/**
 * @file
 * Hardware descriptions: GPU, server, cluster, and the paper's presets.
 *
 * Two presets matter:
 *  - paiCluster(): the production-cluster setting of Table I (11 TFLOPs
 *    GPUs, 1 TB/s HBM, 25 Gbps Ethernet, 10 GB/s PCIe, 50 GB/s NVLink),
 *    used for all collective-behavior analyses (Sec III).
 *  - v100Testbed(): the 64-server case-study testbed of Sec IV (eight
 *    Tesla V100 per server, 15 TFLOPs FP32, 900 GB/s HBM2).
 *
 * hardwareVariations() exposes the Table III what-if grid.
 */

#ifndef PAICHAR_HW_HARDWARE_CONFIG_H
#define PAICHAR_HW_HARDWARE_CONFIG_H

#include <string>
#include <vector>

#include "hw/units.h"

namespace paichar::hw {

/** A GPU's fundamental capacities. */
struct GpuSpec
{
    /** Peak dense compute throughput, FLOPs per second. */
    double peak_flops = 11.0 * kTFLOPs;
    /** Peak device-memory (HBM) bandwidth, bytes per second. */
    double mem_bandwidth = 1.0 * kTB;
    /**
     * TensorCore peak relative to FP32 peak (Volta: up to 8x). Only
     * consumed by the mixed-precision optimization pass.
     */
    double tensorcore_ratio = 8.0;
};

/** A multi-GPU server. */
struct ServerSpec
{
    GpuSpec gpu;
    /** GPUs per server (8 in both PAI settings). */
    int gpus_per_server = 8;
    /** Host-to-GPU PCIe bandwidth, bytes per second (per transfer). */
    double pcie_bandwidth = gbPerSec(10.0);
    /** Whether the hybrid-mesh NVLink fabric is present (Fig 1b). */
    bool has_nvlink = true;
    /** Per-GPU NVLink bandwidth, bytes per second. */
    double nvlink_bandwidth = gbPerSec(50.0);
};

/** The cluster: homogeneous servers plus the network between them. */
struct ClusterSpec
{
    std::string name = "unnamed";
    ServerSpec server;
    /** Per-server Ethernet NIC bandwidth, bytes per second. */
    double ethernet_bandwidth = gbitPerSec(25.0);
    /** Number of servers (only the simulator bounds placements by it). */
    int num_servers = 64;
    /**
     * The paper's hardware-efficiency assumption: fraction of each peak
     * capacity assumed attainable (Sec II-B uses 0.7 everywhere).
     */
    double efficiency = 0.7;
};

/** Table I: the production sub-cluster the traces were collected on. */
ClusterSpec paiCluster();

/** Sec IV: the 64-server V100 testbed used for the case studies. */
ClusterSpec v100Testbed();

/** The hardware-variation grid of Table III. */
struct HardwareVariations
{
    std::vector<double> ethernet_gbps{10.0, 25.0, 100.0};
    std::vector<double> pcie_gbs{10.0, 50.0};
    std::vector<double> gpu_peak_tflops{8.0, 16.0, 32.0, 64.0};
    std::vector<double> gpu_mem_tbs{1.0, 2.0, 4.0};
};

/** The candidate values of Table III. */
HardwareVariations tableIiiVariations();

/**
 * One GPU generation of a heterogeneous cluster. The PAI sub-cluster
 * mixes hardware vintages -- only part of the fleet carries the
 * hybrid-mesh NVLink fabric "due to cost issue" (Sec II-A1) -- and
 * the cluster scheduler models that as per-server generations: a
 * speed factor applied to every per-step time and an NVLink flag.
 */
struct GpuGeneration
{
    std::string name;
    /**
     * Step-time speed relative to the Table I reference GPU (1.0 =
     * reference; 0.5 = every step takes twice as long).
     */
    double speed = 1.0;
    bool has_nvlink = true;
};

/**
 * The generation ladder used by heterogeneous scheduling scenarios:
 * index 0 is the Table I reference generation (NVLink), later entries
 * are progressively older, slower, NVLink-less vintages.
 */
std::vector<GpuGeneration> paiGenerations();

/** Which hardware component a resource variation targets (Fig 11). */
enum class Resource
{
    Ethernet,
    Pcie,
    GpuFlops,
    GpuMemory,
};

/** Short printable name ("Ethernet", "PCIe", ...). */
std::string toString(Resource r);

/**
 * Return a copy of @p base with one resource re-pointed to @p value
 * (value uses the same unit as the Table III row: Gbps for Ethernet,
 * GB/s for PCIe, TFLOPs for GPU compute, TB/s for GPU memory).
 */
ClusterSpec withResource(const ClusterSpec &base, Resource r, double value);

/**
 * Normalized resource value relative to @p base (the x axis of
 * Fig 11), e.g. Ethernet 100 Gbps on a 25 Gbps base -> 4.0.
 */
double normalizedResource(const ClusterSpec &base, Resource r,
                          double value);

} // namespace paichar::hw

#endif // PAICHAR_HW_HARDWARE_CONFIG_H
