/**
 * @file
 * Unit helper constants. All quantities in the project are carried in
 * base SI units: bytes, FLOPs, seconds, bytes-per-second.
 *
 * NOTE on conventions: the paper mixes Gb (bits, for Ethernet) and GB
 * (bytes, for PCIe/NVLink/memory). We normalize everything to bytes per
 * second at construction time and keep the decimal (1e9) convention the
 * paper uses.
 */

#ifndef PAICHAR_HW_UNITS_H
#define PAICHAR_HW_UNITS_H

namespace paichar::hw {

// --- sizes (decimal, matching the paper's GB/MB figures) ---
inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;
inline constexpr double kTB = 1e12;

// --- compute ---
inline constexpr double kGFLOPs = 1e9;
inline constexpr double kTFLOPs = 1e12;

// --- bandwidth ---
/** Bytes per second from a GB/s figure. */
inline constexpr double
gbPerSec(double gb)
{
    return gb * kGB;
}

/** Bytes per second from a Gbit/s figure (Ethernet convention). */
inline constexpr double
gbitPerSec(double gbit)
{
    return gbit * 1e9 / 8.0;
}

// --- time ---
inline constexpr double kUs = 1e-6;
inline constexpr double kMs = 1e-3;

} // namespace paichar::hw

#endif // PAICHAR_HW_UNITS_H
