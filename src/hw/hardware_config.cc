#include "hardware_config.h"

#include <cassert>

namespace paichar::hw {

ClusterSpec
paiCluster()
{
    ClusterSpec c;
    c.name = "PAI production sub-cluster (Table I)";
    c.server.gpu.peak_flops = 11.0 * kTFLOPs;
    c.server.gpu.mem_bandwidth = 1.0 * kTB;
    c.server.gpus_per_server = 8;
    c.server.pcie_bandwidth = gbPerSec(10.0);
    c.server.has_nvlink = true;
    c.server.nvlink_bandwidth = gbPerSec(50.0);
    c.ethernet_bandwidth = gbitPerSec(25.0);
    c.num_servers = 1024;
    c.efficiency = 0.7;
    return c;
}

ClusterSpec
v100Testbed()
{
    ClusterSpec c;
    c.name = "64-server Tesla V100 testbed (Sec IV)";
    c.server.gpu.peak_flops = 15.0 * kTFLOPs;   // V100 FP32 peak
    c.server.gpu.mem_bandwidth = 900.0 * kGB;   // HBM2
    c.server.gpu.tensorcore_ratio = 8.0;
    c.server.gpus_per_server = 8;
    c.server.pcie_bandwidth = gbPerSec(10.0);
    c.server.has_nvlink = true;
    c.server.nvlink_bandwidth = gbPerSec(50.0);
    c.ethernet_bandwidth = gbitPerSec(25.0);
    c.num_servers = 64;
    c.efficiency = 0.7;
    return c;
}

HardwareVariations
tableIiiVariations()
{
    return HardwareVariations{};
}

std::vector<GpuGeneration>
paiGenerations()
{
    // Speed factors follow the FP32 peak ratios of the vintages the
    // platform accumulated (Table I GPU = 11 TFLOPs reference).
    return {
        {"gen-current", 1.0, true},   // Table I reference, NVLink
        {"gen-prev", 0.85, false},    // P100-class, PCIe only
        {"gen-old", 0.4, false},      // K80-class, PCIe only
    };
}

std::string
toString(Resource r)
{
    switch (r) {
      case Resource::Ethernet:
        return "Ethernet";
      case Resource::Pcie:
        return "PCIe";
      case Resource::GpuFlops:
        return "GPU_FLOPs";
      case Resource::GpuMemory:
        return "GPU_memory";
    }
    return "unknown";
}

ClusterSpec
withResource(const ClusterSpec &base, Resource r, double value)
{
    assert(value > 0.0);
    ClusterSpec c = base;
    switch (r) {
      case Resource::Ethernet:
        c.ethernet_bandwidth = gbitPerSec(value);
        break;
      case Resource::Pcie:
        c.server.pcie_bandwidth = gbPerSec(value);
        break;
      case Resource::GpuFlops:
        c.server.gpu.peak_flops = value * kTFLOPs;
        break;
      case Resource::GpuMemory:
        c.server.gpu.mem_bandwidth = value * kTB;
        break;
    }
    return c;
}

double
normalizedResource(const ClusterSpec &base, Resource r, double value)
{
    switch (r) {
      case Resource::Ethernet:
        return gbitPerSec(value) / base.ethernet_bandwidth;
      case Resource::Pcie:
        return gbPerSec(value) / base.server.pcie_bandwidth;
      case Resource::GpuFlops:
        return value * kTFLOPs / base.server.gpu.peak_flops;
      case Resource::GpuMemory:
        return value * kTB / base.server.gpu.mem_bandwidth;
    }
    return 1.0;
}

} // namespace paichar::hw
