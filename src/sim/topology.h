/**
 * @file
 * Simulated cluster topology: servers holding GPUs, host-GPU PCIe
 * links, an NVLink fabric inside NVLink-equipped servers, and an
 * Ethernet NIC per server (Fig 1).
 *
 * Achieved-efficiency knobs derate every raw capacity; the testbed
 * simulation plugs in the paper's measured Table VI profiles so the
 * simulated "hardware" behaves like the real one, independent of the
 * analytical model's uniform 70% assumption.
 */

#ifndef PAICHAR_SIM_TOPOLOGY_H
#define PAICHAR_SIM_TOPOLOGY_H

#include <memory>
#include <vector>

#include "hw/hardware_config.h"
#include "sim/event_queue.h"
#include "sim/resource.h"
#include "sim/sharded_engine.h"
#include "workload/model_zoo.h"

namespace paichar::sim {

/** Construction parameters for a simulated cluster. */
struct TopologyConfig
{
    /** Raw hardware capacities. */
    hw::ClusterSpec cluster = hw::v100Testbed();
    /** Achieved efficiencies (Table VI style); derate each capacity. */
    workload::EfficiencyProfile efficiency;
    /** Fixed host-side cost charged per GPU kernel. */
    double kernel_launch_overhead = 8e-6;
    /**
     * NVLink links per GPU (the Fig 1b hybrid mesh; 6 on Volta).
     * Ring collectives use one link; the sparse embedding exchange
     * spreads across all of them.
     */
    int nvlink_links_per_gpu = 6;
    /**
     * If true, all GPUs of a server contend on one PCIe root complex;
     * if false each GPU gets a dedicated host link (contention then
     * being folded into the PCIe efficiency, as in the testbed
     * measurements of Sec IV).
     */
    bool shared_pcie = false;
    /** Servers to instantiate. */
    int num_servers = 1;
    /**
     * Event-engine shards the servers are partitioned over (server s
     * lives on shard s % num_shards; clamped to num_servers). The
     * default of 1 is the degenerate single-queue engine with the
     * classic serial semantics; see ClusterSim::engine().
     */
    int num_shards = 1;
};

/** One simulated GPU. */
class Gpu
{
  public:
    /**
     * @param eq        Event queue.
     * @param server_id Owning server.
     * @param local_id  Index within the server.
     * @param cfg       Topology configuration.
     * @param host_link Host-PCIe link this GPU uses (owned by server).
     */
    Gpu(EventQueue &eq, int server_id, int local_id,
        const TopologyConfig &cfg, Resource *host_link);

    /** Kernel-execution resource (amounts are seconds). */
    Resource &exec() { return *exec_; }

    /** Number of NVLink links (0 if the server lacks NVLink). */
    int numNvlinkLinks() const
    {
        return static_cast<int>(nvlink_links_.size());
    }

    /** NVLink egress link @p i of this GPU. */
    Resource &nvlinkLink(int i);

    /**
     * Primary NVLink egress (link 0; ring collectives use only this
     * one). Null if the server lacks NVLink.
     */
    Resource *nvlinkOut();

    /** Host-PCIe link carrying this GPU's input data and D2H/H2D. */
    Resource &hostLink() { return *host_link_; }

    int serverId() const { return server_id_; }
    int localId() const { return local_id_; }

  private:
    int server_id_;
    int local_id_;
    std::unique_ptr<Resource> exec_;
    std::vector<std::unique_ptr<Resource>> nvlink_links_;
    Resource *host_link_;
};

/** One simulated server (Fig 1a/1b). */
class Server
{
  public:
    Server(EventQueue &eq, int id, const TopologyConfig &cfg);

    /** The server's GPUs. */
    std::vector<std::unique_ptr<Gpu>> &gpus() { return gpus_; }

    /** Ethernet NIC. */
    Resource &nic() { return *nic_; }

    int id() const { return id_; }

  private:
    int id_;
    std::vector<std::unique_ptr<Resource>> host_links_;
    std::unique_ptr<Resource> nic_;
    std::vector<std::unique_ptr<Gpu>> gpus_;
};

/** A simulated cluster: sharded event engine + servers. */
class ClusterSim
{
  public:
    explicit ClusterSim(const TopologyConfig &cfg);

    /**
     * Shard 0's queue. With the default num_shards == 1 this is the
     * whole simulation (the classic serial engine); with more shards
     * it is only the first domain -- drive the simulation with
     * drain() so every shard advances.
     */
    EventQueue &eventQueue() { return engine_.shard(0); }

    /** The sharded engine driving the cluster. */
    ShardedEngine &engine() { return engine_; }

    /** Shard hosting server @p server_id's resources. */
    int shardOf(int server_id) const
    {
        return server_id % num_shards_;
    }

    /**
     * Run the simulation to completion across all shards; returns
     * the final simulated time.
     */
    SimTime drain() { return engine_.run(); }

    const TopologyConfig &config() const { return cfg_; }

    std::vector<std::unique_ptr<Server>> &servers() { return servers_; }

    /** GPU by flat index (server-major order). */
    Gpu &gpu(int flat_index);

    /** Total GPUs in the cluster. */
    int numGpus() const;

    /**
     * The first @p n GPUs in server-major order -- the device group a
     * training job is placed on.
     */
    std::vector<Gpu *> gpuGroup(int n);

    /**
     * GPU 0 of each of the first @p n servers -- the PS/Worker
     * placement, one worker per server (Sec II-A2).
     */
    std::vector<Gpu *> gpuGroupOnePerServer(int n);

  private:
    TopologyConfig cfg_;
    int num_shards_;
    /**
     * Rounds drain serially (no worker pool): resource task chains
     * schedule continuations directly across server domains, which is
     * safe when at most one shard drains at a time. Parallel rounds
     * are for workloads that keep scheduling shard-local (e.g. the
     * clustersim completion engine).
     */
    ShardedEngine engine_;
    std::vector<std::unique_ptr<Server>> servers_;
};

} // namespace paichar::sim

#endif // PAICHAR_SIM_TOPOLOGY_H
