/**
 * @file
 * Sharded parallel discrete-event engine with conservative-lookahead
 * synchronization (Chandy-Misra-Bryant style).
 *
 * The simulation is partitioned into shards (one per server/topology
 * domain); each shard owns a private EventQueue. Shards advance in
 * synchronized rounds:
 *
 *   1. The engine takes the minimum next event time `m` across all
 *      shards. With lookahead L > 0 the safe window is [m, m + L)
 *      (no cross-shard message sent at or after `m` can arrive
 *      before m + L); with L == 0 the window degenerates to the
 *      single time point `m`.
 *   2. Every shard with work inside the window drains it in parallel
 *      on `paichar::runtime` workers. Shard-local state is touched
 *      only by the shard's own drain, so no locks are needed.
 *   3. Barrier. Cross-shard messages buffered by post() during the
 *      round are merged deterministically — sorted by
 *      (when, source shard, source order) — and delivered to their
 *      destination queues before the next round.
 *
 * Because every shard drains a window whose boundaries depend only on
 * event times (never on the worker count), and the merge order is a
 * pure function of the messages, the executed event sequence — and
 * therefore every simulation output — is byte-identical for any
 * shard count x thread count combination, including the shards=1
 * degenerate case which delegates straight to the single EventQueue.
 *
 * Cross-shard messages must respect the lookahead: post() requires
 * when >= sender now + lookahead. A violating message is clamped to
 * the current round's safe horizon (deterministically) and counted
 * in `sim.cross_shard_clamped`, mirroring EventQueue's past-time
 * clamp policy.
 */

#ifndef PAICHAR_SIM_SHARDED_ENGINE_H
#define PAICHAR_SIM_SHARDED_ENGINE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.h"

namespace paichar::runtime {
class ThreadPool;
}

namespace paichar::obs {
class Counter;
}

namespace paichar::sim {

/**
 * Process-wide default shard count for simulation engines, set by
 * the CLI --shards flag (mirroring runtime::threadCount for
 * --threads). Defaults to $PAICHAR_SHARDS, else 1.
 */
int shardCount();

/** Set the default shard count; n <= 0 restores the environment
    default. */
void setShardCount(int n);

/** A parallel discrete-event engine over sharded event queues. */
class ShardedEngine
{
  public:
    /**
     * @param num_shards Shards (>= 1; clamped up to 1).
     * @param lookahead  Cross-shard latency lower bound in seconds
     *                   (>= 0). 0 = lockstep rounds, one distinct
     *                   timestamp per round.
     * @param pool       Workers for parallel rounds (nullptr =
     *                   serial; still shard-deterministic).
     */
    explicit ShardedEngine(int num_shards, SimTime lookahead = 0.0,
                           runtime::ThreadPool *pool = nullptr);

    ShardedEngine(const ShardedEngine &) = delete;
    ShardedEngine &operator=(const ShardedEngine &) = delete;

    int numShards() const
    {
        return static_cast<int>(shards_.size());
    }

    /** Committed global time: every shard has advanced at least this
        far. */
    SimTime now() const { return now_; }

    /** Direct access to shard @p s's queue (e.g. to bind topology
        resources). Outside a parallel round only — or from shard
        @p s's own callbacks. */
    EventQueue &shard(int s) { return *shards_[static_cast<size_t>(s)]; }

    /**
     * Schedule a shard-local event. Callbacks running on shard
     * @p s may schedule onto their own shard freely; scheduling onto
     * a *different* shard from inside a round must go through post().
     */
    void schedule(int s, SimTime when, std::function<void()> fn);

    /**
     * Send a cross-shard event from @p src to @p dst, firing at
     * @p when. Inside a round this buffers the message for the
     * post-barrier merge; @p when must be >= shard(src).now() +
     * lookahead() (violations clamp, see file comment). Outside a
     * round it schedules directly.
     */
    void post(int src, int dst, SimTime when,
              std::function<void()> fn);

    SimTime lookahead() const { return lookahead_; }

    /** Total pending events across all shards. */
    size_t pending() const;

    /** Earliest pending event time across shards; +inf when empty. */
    SimTime nextEventTime();

    /** Total events executed across all shards. */
    uint64_t executed() const;

    /** Synchronization rounds run so far. */
    uint64_t rounds() const { return rounds_; }

    /** Drain every shard; returns the committed time. */
    SimTime run();

    /**
     * Run events with time <= @p until on every shard, then commit
     * all clocks to @p until. Pending later events remain.
     */
    SimTime runUntil(SimTime until);

  private:
    struct Message
    {
        SimTime when;
        int src;
        uint64_t order; ///< per-source send order within the round
        int dst;
        std::function<void()> fn;
    };

    /** One synchronized round ending at the window for @p m; @p cap
        bounds inclusive execution (runUntil). */
    void round(SimTime m, SimTime cap);
    void deliverMessages();

    /** The shards==1 drive loop while a timeline is recording: one
        runUntil() per distinct timestamp so window attribution
        matches the sharded round path byte-for-byte. */
    SimTime drainSingleShard(SimTime until);

    std::vector<std::unique_ptr<EventQueue>> shards_;
    /** Per-source outboxes; source s's drain thread is the only
        writer of outbox_[s] during a round. */
    std::vector<std::vector<Message>> outbox_;
    /** Per-shard events-executed counters, resolved at construction
        so worker threads never touch the registry. */
    std::vector<obs::Counter *> shard_counters_;
    /** Scratch: shards with work inside the current window. */
    std::vector<size_t> active_;
    runtime::ThreadPool *pool_;
    SimTime lookahead_;
    SimTime now_ = 0.0;
    /** Safe horizon of the in-flight round (clamp target). */
    SimTime round_safe_ = 0.0;
    bool in_round_ = false;
    uint64_t rounds_ = 0;
};

} // namespace paichar::sim

#endif // PAICHAR_SIM_SHARDED_ENGINE_H
