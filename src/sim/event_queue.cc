#include "event_queue.h"

#include <cmath>
#include <stdexcept>

#include "obs/obs.h"

namespace paichar::sim {

namespace {

/**
 * Past-time schedules clamped to now(). A non-zero value in a run's
 * metrics summary flags a model emitting causally-suspect events.
 */
obs::Counter &
clampedCounter()
{
    static obs::Counter &c =
        obs::counter("sim.past_events_clamped");
    return c;
}

obs::Counter &
executedCounter()
{
    static obs::Counter &c = obs::counter("sim.events_executed");
    return c;
}

/** Last simulated time reached by a drain, in microseconds. */
obs::Gauge &
simTimeGauge()
{
    static obs::Gauge &g = obs::gauge("sim.time_us");
    return g;
}

} // namespace

void
EventQueue::schedule(SimTime when, std::function<void()> fn)
{
    // A NaN/inf time would poison the heap order (every comparison
    // against NaN is false, so events leapfrog arbitrarily) -- this
    // must hold in release builds, not only under assert.
    if (!std::isfinite(when)) {
        throw std::invalid_argument(
            "EventQueue::schedule: non-finite time");
    }
    if (when < now_) {
        // Enforce the documented @pre in every build: a past-time
        // event fires "now" instead of silently rewriting history
        // for later-scheduled events, and the clamp is counted so
        // runs can assert it never happens.
        when = now_;
        clampedCounter().add();
    }
    heap_.push(Event{when, next_seq_++, std::move(fn)});
}

void
EventQueue::scheduleAfter(SimTime delay, std::function<void()> fn)
{
    if (!std::isfinite(delay)) {
        throw std::invalid_argument(
            "EventQueue::scheduleAfter: non-finite delay");
    }
    // Negative delays land in the past and take the clamp path.
    schedule(now_ + delay, std::move(fn));
}

SimTime
EventQueue::run()
{
    obs::Span span("sim.run");
    uint64_t before = executed_;
    while (!heap_.empty()) {
        // Moving out of a priority_queue top requires a const_cast;
        // the element is popped immediately after, so this is safe.
        Event ev = std::move(const_cast<Event &>(heap_.top()));
        heap_.pop();
        now_ = ev.when;
        ++executed_;
        ev.fn();
    }
    finishDrain(span, executed_ - before);
    return now_;
}

SimTime
EventQueue::runUntil(SimTime until)
{
    obs::Span span("sim.run_until");
    uint64_t before = executed_;
    while (!heap_.empty() && heap_.top().when <= until) {
        Event ev = std::move(const_cast<Event &>(heap_.top()));
        heap_.pop();
        now_ = ev.when;
        ++executed_;
        ev.fn();
    }
    if (now_ < until)
        now_ = until;
    finishDrain(span, executed_ - before);
    return now_;
}

void
EventQueue::finishDrain(obs::Span &span, uint64_t executed_delta)
{
    executedCounter().add(executed_delta);
    simTimeGauge().set(static_cast<int64_t>(now_ * 1e6));
    span.setArg(static_cast<int64_t>(executed_delta));
}

} // namespace paichar::sim
