#include "event_queue.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "obs/obs.h"

namespace paichar::sim {

namespace {

constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();

/**
 * Past-time schedules clamped to now(). A non-zero value in a run's
 * metrics summary flags a model emitting causally-suspect events.
 */
obs::Counter &
clampedCounter()
{
    static obs::Counter &c =
        obs::counter("sim.past_events_clamped");
    return c;
}

obs::Counter &
executedCounter()
{
    static obs::Counter &c = obs::counter("sim.events_executed");
    return c;
}

/** Last simulated time reached by a drain, in microseconds. */
obs::Gauge &
simTimeGauge()
{
    static obs::Gauge &g = obs::gauge("sim.time_us");
    return g;
}

/** Heap ordering: the earliest (when, seq) pair at the top. */
struct FrontLater
{
    bool
    operator()(const auto &a, const auto &b) const
    {
        if (a.when != b.when)
            return a.when > b.when;
        return a.seq > b.seq;
    }
};

/**
 * Rung sizing: aim for a handful of handles per bucket so spilling a
 * bucket into the front heap keeps the heap (and its log factor)
 * small regardless of the total pending count.
 */
constexpr size_t kTargetPerBucket = 16;
constexpr size_t kMaxBuckets = size_t{1} << 20;

/** Below this, dump the yard straight into the front heap. */
constexpr size_t kDirectToFront = 2048;

} // namespace

uint32_t
EventQueue::allocSlot(std::function<void()> fn)
{
    uint32_t slot;
    if (!free_slots_.empty()) {
        slot = free_slots_.back();
        free_slots_.pop_back();
    } else {
        // With an empty free list every slot ever allocated is live,
        // so the next fresh index is exactly the pending count.
        assert(size_ < std::numeric_limits<uint32_t>::max());
        slot = static_cast<uint32_t>(size_);
        if ((slot >> kBlockShift) >= blocks_.size()) {
            blocks_.push_back(
                std::make_unique<std::function<void()>[]>(
                    kBlockSize));
        }
    }
    blocks_[slot >> kBlockShift][slot & (kBlockSize - 1)] =
        std::move(fn);
    return slot;
}

std::function<void()>
EventQueue::takeSlot(uint32_t slot)
{
    std::function<void()> &cell =
        blocks_[slot >> kBlockShift][slot & (kBlockSize - 1)];
    std::function<void()> fn = std::move(cell);
    cell = nullptr;
    free_slots_.push_back(slot);
    return fn;
}

size_t
EventQueue::bucketIndex(SimTime when) const
{
    size_t nb = buckets_.size();
    double off = (when - bucket_start_) / bucket_width_;
    size_t idx = off <= 0.0 ? 0
                            : std::min(static_cast<size_t>(off),
                                       nb - 1);
    // Guard against floating-point rounding at bucket edges: the
    // invariant spillBucket() relies on is that bucket b only holds
    // handles with when < start + (b+1)*width (the last bucket's
    // bound is bucket_end_, which exceeds every rung time).
    while (idx + 1 < nb &&
           when >= bucket_start_ +
                       static_cast<double>(idx + 1) * bucket_width_) {
        ++idx;
    }
    while (idx > cur_bucket_ &&
           when < bucket_start_ +
                      static_cast<double>(idx) * bucket_width_) {
        --idx;
    }
    return std::max(idx, cur_bucket_);
}

void
EventQueue::insertHandle(Handle h)
{
    if (h.when < front_bound_) {
        front_.push_back(h);
        std::push_heap(front_.begin(), front_.end(), FrontLater{});
    } else if (bucket_width_ > 0.0 && h.when < bucket_end_) {
        buckets_[bucketIndex(h.when)].push_back(h);
        ++in_buckets_;
    } else {
        if (yard_.empty()) {
            yard_min_ = h.when;
            yard_max_ = h.when;
        } else {
            yard_min_ = std::min(yard_min_, h.when);
            yard_max_ = std::max(yard_max_, h.when);
        }
        yard_.push_back(h);
    }
}

void
EventQueue::spillBucket(size_t b)
{
    assert(front_.empty());
    std::vector<Handle> &bucket = buckets_[b];
    front_.swap(bucket);
    std::make_heap(front_.begin(), front_.end(), FrontLater{});
    // Everything in this bucket executes within the next
    // ~kTargetPerBucket events; warming the arena slots now converts
    // a guaranteed cache miss per executeTop() into a hit. A binary
    // heap cannot do this -- it learns the execution order one pop
    // at a time.
    for (const Handle &h : front_) {
        __builtin_prefetch(
            &blocks_[h.slot >> kBlockShift][h.slot &
                                            (kBlockSize - 1)]);
    }
    in_buckets_ -= front_.size();
    cur_bucket_ = b + 1;
    if (b + 1 == buckets_.size()) {
        // The rung is exhausted; retire it so new inserts inside its
        // old span route to the front heap (covered by front_bound_)
        // or the yard instead of an out-of-range bucket.
        front_bound_ = bucket_end_;
        bucket_width_ = 0.0;
    } else {
        front_bound_ = bucket_start_ +
                       static_cast<double>(b + 1) * bucket_width_;
    }
    bucket.clear();
}

void
EventQueue::rebuildRung()
{
    assert(front_.empty() && in_buckets_ == 0 && !yard_.empty());
    if (yard_.size() <= kDirectToFront || yard_max_ == yard_min_) {
        // Too few events (or a single timestamp) to be worth a rung:
        // the yard becomes the front heap outright. nextafter keeps
        // the front-membership rule strict-less-than while covering
        // the maximum yard time itself.
        front_.swap(yard_);
        std::make_heap(front_.begin(), front_.end(), FrontLater{});
        front_bound_ = std::nextafter(yard_max_, kInf);
        bucket_width_ = 0.0;
        return;
    }
    size_t nb = 1;
    while (nb < yard_.size() / kTargetPerBucket && nb < kMaxBuckets)
        nb <<= 1;
    // Exact size: bucketIndex() derives membership from
    // buckets_.size(), so the vector must match the rung geometry.
    if (buckets_.size() != nb)
        buckets_.resize(nb);
    bucket_start_ = yard_min_;
    bucket_width_ = (yard_max_ - yard_min_) / static_cast<double>(nb);
    bucket_end_ = std::nextafter(yard_max_, kInf);
    cur_bucket_ = 0;
    if (bucket_width_ <= 0.0 ||
        !std::isfinite(bucket_start_ + bucket_width_)) {
        // Degenerate span (denormal width underflow): fall back to
        // one heap rather than risk a zero-width rung.
        bucket_width_ = 0.0;
        front_.swap(yard_);
        std::make_heap(front_.begin(), front_.end(), FrontLater{});
        front_bound_ = bucket_end_;
        return;
    }
    // Two-pass scatter: bucketing millions of yard handles into
    // push_back-grown vectors pays ~5 reallocations per bucket;
    // counting first and reserving exactly pays none. The index is
    // memoized per handle so bucketIndex()'s edge guards run once.
    scatter_idx_.resize(yard_.size());
    scatter_counts_.assign(nb, 0);
    for (size_t i = 0; i < yard_.size(); ++i) {
        size_t idx = bucketIndex(yard_[i].when);
        scatter_idx_[i] = static_cast<uint32_t>(idx);
        ++scatter_counts_[idx];
    }
    for (size_t b = 0; b < nb; ++b) {
        if (scatter_counts_[b] > 0)
            buckets_[b].reserve(scatter_counts_[b]);
    }
    for (size_t i = 0; i < yard_.size(); ++i)
        buckets_[scatter_idx_[i]].push_back(yard_[i]);
    in_buckets_ = yard_.size();
    yard_.clear();
    front_bound_ = bucket_start_; // nothing spilled into front yet
}

bool
EventQueue::refillFront()
{
    while (front_.empty()) {
        if (in_buckets_ > 0) {
            size_t b = cur_bucket_;
            while (buckets_[b].empty())
                ++b;
            spillBucket(b);
            continue;
        }
        bucket_width_ = 0.0;
        if (yard_.empty())
            return false;
        rebuildRung();
    }
    return true;
}

void
EventQueue::schedule(SimTime when, std::function<void()> fn)
{
    // A NaN/inf time would poison the queue order (every comparison
    // against NaN is false, so events leapfrog arbitrarily) -- this
    // must hold in release builds, not only under assert.
    if (!std::isfinite(when)) {
        throw std::invalid_argument(
            "EventQueue::schedule: non-finite time");
    }
    if (when < now_) {
        // Enforce the documented @pre in every build: a past-time
        // event fires "now" instead of silently rewriting history
        // for later-scheduled events, and the clamp is counted so
        // runs can assert it never happens.
        when = now_;
        clampedCounter().add();
    }
    uint32_t slot = allocSlot(std::move(fn));
    insertHandle(Handle{when, next_seq_++, slot});
    ++size_;
}

void
EventQueue::scheduleAfter(SimTime delay, std::function<void()> fn)
{
    if (!std::isfinite(delay)) {
        throw std::invalid_argument(
            "EventQueue::scheduleAfter: non-finite delay");
    }
    // Negative delays land in the past and take the clamp path.
    schedule(now_ + delay, std::move(fn));
}

SimTime
EventQueue::nextEventTime()
{
    if (!refillFront())
        return kInf;
    return front_.front().when;
}

void
EventQueue::advanceTo(SimTime t)
{
    if (t > now_)
        now_ = t;
}

void
EventQueue::executeTop()
{
    std::pop_heap(front_.begin(), front_.end(), FrontLater{});
    Handle h = front_.back();
    front_.pop_back();
    std::function<void()> fn = takeSlot(h.slot);
    --size_;
    now_ = h.when;
    ++executed_;
    fn();
}

SimTime
EventQueue::run()
{
    obs::Span span("sim.run");
    uint64_t before = executed_;
    while (refillFront())
        executeTop();
    finishDrain(span, executed_ - before);
    return now_;
}

SimTime
EventQueue::runUntil(SimTime until)
{
    obs::Span span("sim.run_until");
    uint64_t before = executed_;
    while (refillFront() && front_.front().when <= until)
        executeTop();
    if (now_ < until)
        now_ = until;
    finishDrain(span, executed_ - before);
    return now_;
}

SimTime
EventQueue::runBefore(SimTime bound)
{
    obs::Span span("sim.run_before");
    uint64_t before = executed_;
    while (refillFront() && front_.front().when < bound)
        executeTop();
    if (now_ < bound)
        now_ = bound;
    finishDrain(span, executed_ - before);
    return now_;
}

void
EventQueue::finishDrain(obs::Span &span, uint64_t executed_delta)
{
    executedCounter().add(executed_delta);
    // Saturate rather than cast: now_ * 1e6 overflows int64 for
    // simulated times beyond ~292k years, and an out-of-range
    // float-to-int conversion is undefined behavior, not merely
    // wrong.
    constexpr double kMaxUs =
        static_cast<double>(std::numeric_limits<int64_t>::max());
    double us = now_ * 1e6;
    simTimeGauge().set(us >= kMaxUs
                           ? std::numeric_limits<int64_t>::max()
                           : static_cast<int64_t>(us));
    span.setArg(static_cast<int64_t>(executed_delta));
}

} // namespace paichar::sim
