#include "event_queue.h"

#include <cassert>

namespace paichar::sim {

void
EventQueue::schedule(SimTime when, std::function<void()> fn)
{
    assert(when >= now_ && "cannot schedule into the past");
    heap_.push(Event{when, next_seq_++, std::move(fn)});
}

void
EventQueue::scheduleAfter(SimTime delay, std::function<void()> fn)
{
    assert(delay >= 0.0);
    schedule(now_ + delay, std::move(fn));
}

SimTime
EventQueue::run()
{
    while (!heap_.empty()) {
        // Moving out of a priority_queue top requires a const_cast;
        // the element is popped immediately after, so this is safe.
        Event ev = std::move(const_cast<Event &>(heap_.top()));
        heap_.pop();
        now_ = ev.when;
        ++executed_;
        ev.fn();
    }
    return now_;
}

SimTime
EventQueue::runUntil(SimTime until)
{
    while (!heap_.empty() && heap_.top().when <= until) {
        Event ev = std::move(const_cast<Event &>(heap_.top()));
        heap_.pop();
        now_ = ev.when;
        ++executed_;
        ev.fn();
    }
    if (now_ < until)
        now_ = until;
    return now_;
}

} // namespace paichar::sim
