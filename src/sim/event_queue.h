/**
 * @file
 * Discrete-event simulation core: a time-ordered event queue.
 *
 * Events scheduled at equal times fire in scheduling order (a
 * monotonically increasing sequence number breaks ties), which keeps
 * every simulation run bit-deterministic.
 */

#ifndef PAICHAR_SIM_EVENT_QUEUE_H
#define PAICHAR_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace paichar::obs {
class Span;
}

namespace paichar::sim {

/** Simulated time in seconds. */
using SimTime = double;

/** The event queue driving a simulation. */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @pre when >= now(). Enforced in every build type: a past time
     * is clamped to now() (the event fires at the current time, never
     * before already-scheduled same-time events) and counted in the
     * `sim.past_events_clamped` obs counter so runs can assert it
     * never happened. A non-finite @p when throws
     * std::invalid_argument -- a NaN would corrupt the heap order.
     */
    void schedule(SimTime when, std::function<void()> fn);

    /**
     * Schedule @p fn to run @p delay seconds from now. Negative
     * delays clamp to now() (counted, see schedule()); non-finite
     * delays throw std::invalid_argument.
     */
    void scheduleAfter(SimTime delay, std::function<void()> fn);

    /** Number of pending events. */
    size_t pending() const { return heap_.size(); }

    /**
     * Run events until the queue drains; returns the time of the last
     * event (or now() if none ran).
     */
    SimTime run();

    /** Run events with time <= @p until; pending later events remain. */
    SimTime runUntil(SimTime until);

    /** Total events executed since construction. */
    uint64_t executed() const { return executed_; }

  private:
    /** Record per-drain obs metrics and close the drain span. */
    void finishDrain(obs::Span &span, uint64_t executed_delta);

    struct Event
    {
        SimTime when;
        uint64_t seq;
        std::function<void()> fn;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    SimTime now_ = 0.0;
    uint64_t next_seq_ = 0;
    uint64_t executed_ = 0;
};

} // namespace paichar::sim

#endif // PAICHAR_SIM_EVENT_QUEUE_H
