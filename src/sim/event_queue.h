/**
 * @file
 * Discrete-event simulation core: a time-ordered event queue.
 *
 * Events scheduled at equal times fire in scheduling order (a
 * monotonically increasing sequence number breaks ties), which keeps
 * every simulation run bit-deterministic.
 *
 * Storage is a two-level calendar/ladder structure over an
 * arena-allocated event store:
 *
 *   - Handlers (std::function) live in fixed slots of a chunked arena
 *     and are addressed by a 32-bit index; the ordering structures
 *     move only 24-byte (when, seq, slot) handles, never the
 *     handlers themselves. This also removes the old
 *     const_cast-move-out-of-priority_queue hack -- the queue owns
 *     its storage directly.
 *   - A small binary heap (the "front") holds the earliest events; a
 *     rung of calendar buckets and an unsorted overflow "yard" hold
 *     everything later. Inserts and pops are O(1) amortized: each
 *     handle is touched at most three times (yard -> bucket -> front)
 *     on its way to execution, and the front heap stays near the
 *     bucket occupancy rather than the total pending count.
 *
 * The exact (when, seq) execution order of the classic single-heap
 * implementation is preserved; see tests/sim/event_queue_test.cc.
 */

#ifndef PAICHAR_SIM_EVENT_QUEUE_H
#define PAICHAR_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

namespace paichar::obs {
class Span;
}

namespace paichar::sim {

/** Simulated time in seconds. */
using SimTime = double;

/** The event queue driving a simulation. */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @pre when >= now(). Enforced in every build type: a past time
     * is clamped to now() (the event fires at the current time, never
     * before already-scheduled same-time events) and counted in the
     * `sim.past_events_clamped` obs counter so runs can assert it
     * never happened. A non-finite @p when throws
     * std::invalid_argument -- a NaN would corrupt the queue order.
     */
    void schedule(SimTime when, std::function<void()> fn);

    /**
     * Schedule @p fn to run @p delay seconds from now. Negative
     * delays land in the past and take the clamp path (counted, see
     * schedule()); non-finite delays throw std::invalid_argument.
     */
    void scheduleAfter(SimTime delay, std::function<void()> fn);

    /** Number of pending events. */
    size_t pending() const { return size_; }

    /**
     * Run events until the queue drains; returns the time of the last
     * event (or now() if none ran).
     */
    SimTime run();

    /** Run events with time <= @p until; pending later events remain. */
    SimTime runUntil(SimTime until);

    /**
     * Run events with time strictly < @p bound; now() advances to
     * @p bound afterwards (if beyond it already, it stays put). This
     * is the conservative-window drain primitive of the sharded
     * engine: the caller guarantees no event earlier than @p bound
     * can still be delivered to this queue.
     */
    SimTime runBefore(SimTime bound);

    /**
     * Earliest pending event time; +infinity when empty. Amortized
     * O(1) (may migrate handles between internal levels, hence
     * non-const).
     */
    SimTime nextEventTime();

    /**
     * Advance now() to @p t without executing events (no-op when
     * t <= now()). The sharded engine commits synchronized round
     * boundaries with this so every shard agrees on the clock even
     * when a round executed nothing locally.
     */
    void advanceTo(SimTime t);

    /** Total events executed since construction. */
    uint64_t executed() const { return executed_; }

  private:
    /** A pending event's position in time plus its arena slot. */
    struct Handle
    {
        SimTime when;
        uint64_t seq;
        uint32_t slot;
    };

    uint32_t allocSlot(std::function<void()> fn);
    std::function<void()> takeSlot(uint32_t slot);

    void insertHandle(Handle h);
    /** Refill the front heap; false when the queue is empty. */
    bool refillFront();
    void spillBucket(size_t b);
    void rebuildRung();
    size_t bucketIndex(SimTime when) const;

    /** Pop and execute the earliest event (front must be non-empty). */
    void executeTop();

    /** Record per-drain obs metrics and close the drain span. */
    void finishDrain(obs::Span &span, uint64_t executed_delta);

    // -- Arena: handler slots, addressed by 32-bit index. ----------
    static constexpr uint32_t kBlockShift = 10;
    static constexpr uint32_t kBlockSize = 1u << kBlockShift;
    std::vector<std::unique_ptr<std::function<void()>[]>> blocks_;
    std::vector<uint32_t> free_slots_;

    // -- Ladder: front heap + one rung of buckets + overflow yard. --
    std::vector<Handle> front_;   ///< min-heap on (when, seq)
    /** Every pending event with when < front_bound_ is in front_. */
    SimTime front_bound_ = -std::numeric_limits<SimTime>::infinity();
    std::vector<std::vector<Handle>> buckets_;
    size_t cur_bucket_ = 0;       ///< buckets before this are spilled
    size_t in_buckets_ = 0;       ///< handles currently in buckets_
    SimTime bucket_start_ = 0.0;
    SimTime bucket_end_ = 0.0;    ///< exclusive upper bound of the rung
    SimTime bucket_width_ = 0.0;  ///< 0 = no rung built
    std::vector<Handle> yard_;    ///< unsorted, beyond the rung
    SimTime yard_min_ = 0.0;
    SimTime yard_max_ = 0.0;
    /** rebuildRung() scratch, kept to recycle the allocations. */
    std::vector<uint32_t> scatter_idx_;
    std::vector<uint32_t> scatter_counts_;

    size_t size_ = 0;
    SimTime now_ = 0.0;
    uint64_t next_seq_ = 0;
    uint64_t executed_ = 0;
};

} // namespace paichar::sim

#endif // PAICHAR_SIM_EVENT_QUEUE_H
