/**
 * @file
 * A rate-limited, FIFO-serialized simulated resource.
 *
 * Models every hardware component the testbed simulation needs: a GPU
 * (work measured in seconds directly), a PCIe/NVLink/Ethernet link
 * (work measured in bytes against a byte/s rate), or a host runtime
 * (per-operation overhead). Requests submitted while the resource is
 * busy queue in submission order; for homogeneous concurrent requests
 * FIFO serialization is time-equivalent to fair sharing, and it keeps
 * the simulation deterministic.
 */

#ifndef PAICHAR_SIM_RESOURCE_H
#define PAICHAR_SIM_RESOURCE_H

#include <functional>
#include <string>

#include "sim/event_queue.h"

namespace paichar::sim {

/** Completion callback: (service start time, completion time). */
using Completion = std::function<void(SimTime start, SimTime end)>;

/** A FIFO resource with a fixed service rate. */
class Resource
{
  public:
    /**
     * @param eq       Owning event queue (must outlive the resource).
     * @param name     Diagnostic name ("gpu0", "pcie/server3", ...).
     * @param rate     Service rate in units/second (e.g. bytes/s). A
     *                 rate of 1.0 means submitted amounts are seconds.
     * @param overhead Fixed extra service time charged per request
     *                 (e.g. kernel-launch latency).
     */
    Resource(EventQueue &eq, std::string name, double rate,
             double overhead = 0.0);

    Resource(const Resource &) = delete;
    Resource &operator=(const Resource &) = delete;

    /**
     * Submit @p amount units of work at the current simulated time;
     * the work starts when all previously queued work finishes.
     *
     * @param amount Work in rate units; must be >= 0.
     * @param done   Invoked (via the event queue) at completion.
     */
    void submit(double amount, Completion done);

    /** Submit work that completes silently. */
    void submit(double amount) { submit(amount, Completion()); }

    /** Diagnostic name. */
    const std::string &name() const { return name_; }

    /** Service rate in units/second. */
    double rate() const { return rate_; }

    /** Earliest time newly submitted work could start. */
    SimTime nextFree() const { return next_free_; }

    /** Total busy seconds accumulated (includes per-op overhead). */
    double busyTime() const { return busy_time_; }

    /** Total work units served (excludes overhead). */
    double totalAmount() const { return total_amount_; }

    /** Number of requests served. */
    uint64_t requests() const { return requests_; }

    /**
     * Achieved utilization over [0, horizon]: busyTime() / horizon.
     * @pre horizon > 0.
     */
    double utilization(SimTime horizon) const;

  private:
    EventQueue &eq_;
    std::string name_;
    double rate_;
    double overhead_;
    SimTime next_free_ = 0.0;
    double busy_time_ = 0.0;
    double total_amount_ = 0.0;
    uint64_t requests_ = 0;
};

} // namespace paichar::sim

#endif // PAICHAR_SIM_RESOURCE_H
