#include "sharded_engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "obs/obs.h"
#include "obs/timeline.h"
#include "runtime/parallel.h"

namespace paichar::sim {

namespace {

constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();

/** Per-shard executed counters, capped so the registry stays small. */
constexpr int kMaxShardCounters = 16;

obs::Counter &
shardCounter(int s)
{
    int idx = std::min(s, kMaxShardCounters);
    std::string name =
        idx == kMaxShardCounters
            ? std::string("sim.shard_rest.events_executed")
            : "sim.shard" + std::to_string(idx) +
                  ".events_executed";
    return obs::counter(obs::internName(name));
}

obs::Counter &
crossShardCounter()
{
    static obs::Counter &c = obs::counter("sim.cross_shard_events");
    return c;
}

obs::Counter &
crossShardClampedCounter()
{
    static obs::Counter &c =
        obs::counter("sim.cross_shard_clamped");
    return c;
}

obs::Counter &
syncRoundsCounter()
{
    static obs::Counter &c = obs::counter("sim.sync_rounds");
    return c;
}

/** Events executed per synchronization round: the parallel grain. */
obs::Histogram &
roundEventsHistogram()
{
    static obs::Histogram &h =
        obs::histogram("sim.sync_round_events");
    return h;
}

/**
 * Timeline probes for the engine, resolved once per timeline
 * generation. Only the coordinating thread (round boundaries, the
 * single-shard drive loop) touches the timeline, so a plain static
 * is safe; drain workers never call this.
 *
 * The engine only samples at lookahead 0, where a round is exactly
 * one distinct timestamp in both the sharded and the single-queue
 * paths — that is what makes `sim.events` byte-identical across
 * every --shards count. A lookahead > 0 round spans a time window
 * with no single attribution point, so those engines emit no
 * timeline series at all (absent on every shard count alike).
 */
struct TimelineHook
{
    uint64_t gen = 0;
    obs::Timeline *tl = nullptr;
    obs::Timeline::Rate *events = nullptr;
    obs::Timeline::Rate *clamped = nullptr;
};

TimelineHook &
timelineHook()
{
    static TimelineHook h;
    uint64_t gen = obs::timelineGeneration();
    if (h.gen != gen) {
        h.gen = gen;
        h.tl = obs::timeline();
        h.events = h.tl ? &h.tl->rate("sim.events") : nullptr;
        h.clamped =
            h.tl ? &h.tl->rate("sim.cross_shard_clamped") : nullptr;
    }
    return h;
}

int g_shard_count = 0; // 0 = unset, fall back to the environment

int
envShardCount()
{
    const char *v = std::getenv("PAICHAR_SHARDS");
    if (v != nullptr) {
        int n = std::atoi(v);
        if (n >= 1)
            return n;
    }
    return 1;
}

} // namespace

int
shardCount()
{
    return g_shard_count >= 1 ? g_shard_count : envShardCount();
}

void
setShardCount(int n)
{
    g_shard_count = n >= 1 ? n : 0;
}

ShardedEngine::ShardedEngine(int num_shards, SimTime lookahead,
                             runtime::ThreadPool *pool)
    : pool_(pool), lookahead_(lookahead)
{
    if (!(lookahead_ >= 0.0) || !std::isfinite(lookahead_)) {
        throw std::invalid_argument(
            "ShardedEngine: lookahead must be finite and >= 0");
    }
    int n = std::max(num_shards, 1);
    shards_.reserve(static_cast<size_t>(n));
    for (int s = 0; s < n; ++s) {
        shards_.push_back(std::make_unique<EventQueue>());
        shard_counters_.push_back(&shardCounter(s));
    }
    outbox_.resize(static_cast<size_t>(n));
}

void
ShardedEngine::schedule(int s, SimTime when,
                        std::function<void()> fn)
{
    shards_[static_cast<size_t>(s)]->schedule(when, std::move(fn));
}

void
ShardedEngine::post(int src, int dst, SimTime when,
                    std::function<void()> fn)
{
    if (!std::isfinite(when)) {
        throw std::invalid_argument(
            "ShardedEngine::post: non-finite time");
    }
    crossShardCounter().add();
    if (!in_round_ || src == dst) {
        shards_[static_cast<size_t>(dst)]->schedule(when,
                                                    std::move(fn));
        return;
    }
    SimTime floor =
        shards_[static_cast<size_t>(src)]->now() + lookahead_;
    if (when < floor) {
        // A message below the conservative bound would land inside a
        // window another shard may already have drained. Clamping to
        // the round's safe horizon keeps delivery deterministic (the
        // horizon depends only on event times); the count lets runs
        // assert the protocol was never violated.
        when = std::max(round_safe_, when);
        crossShardClampedCounter().add();
    }
    std::vector<Message> &box = outbox_[static_cast<size_t>(src)];
    box.push_back(Message{when, src,
                          static_cast<uint64_t>(box.size()), dst,
                          std::move(fn)});
}

size_t
ShardedEngine::pending() const
{
    size_t n = 0;
    for (const auto &q : shards_)
        n += q->pending();
    return n;
}

SimTime
ShardedEngine::nextEventTime()
{
    SimTime m = kInf;
    for (const auto &q : shards_)
        m = std::min(m, q->nextEventTime());
    return m;
}

uint64_t
ShardedEngine::executed() const
{
    uint64_t n = 0;
    for (const auto &q : shards_)
        n += q->executed();
    return n;
}

void
ShardedEngine::deliverMessages()
{
    // Deterministic merge: delivery order — and therefore the
    // destination queue's tie-breaking sequence numbers — is a pure
    // function of (when, source shard, source send order).
    std::vector<Message *> msgs;
    for (auto &box : outbox_)
        for (Message &m : box)
            msgs.push_back(&m);
    if (msgs.empty())
        return;
    std::sort(msgs.begin(), msgs.end(),
              [](const Message *a, const Message *b) {
                  if (a->when != b->when)
                      return a->when < b->when;
                  if (a->src != b->src)
                      return a->src < b->src;
                  return a->order < b->order;
              });
    for (Message *m : msgs) {
        shards_[static_cast<size_t>(m->dst)]->schedule(
            m->when, std::move(m->fn));
    }
    for (auto &box : outbox_)
        box.clear();
}

void
ShardedEngine::round(SimTime m, SimTime cap)
{
    // Window: [m, m + L) for L > 0, the single point m for L == 0
    // (or when m + L rounds back to m). Inclusive execution is capped
    // at `cap` so runUntil() semantics ("time <= until") hold at the
    // boundary.
    SimTime bound = lookahead_ > 0.0 ? m + lookahead_ : m;
    bool strict = lookahead_ > 0.0 && bound > m && bound <= cap;
    ++rounds_;
    syncRoundsCounter().add();
    in_round_ = true;
    round_safe_ = strict ? bound : std::min(std::max(m, bound), cap);
    uint64_t before = executed();

    // At lookahead 0 a round is exactly the timestamp m: close any
    // timeline windows ending at or before m, then attribute this
    // round's events (and clamp count) to m's window afterwards.
    TimelineHook *tlh = nullptr;
    uint64_t clamps_before = 0;
    if (lookahead_ == 0.0 && obs::timelineActive()) {
        tlh = &timelineHook();
        tlh->tl->advanceTo(m);
        clamps_before = crossShardClampedCounter().value();
    }

    // Only shards with work inside the window take part; a
    // single-shard round stays on the calling thread (the common
    // clustersim case: one completion per timestamp).
    size_t n = shards_.size();
    active_.clear();
    for (size_t s = 0; s < n; ++s) {
        SimTime next = shards_[s]->nextEventTime();
        bool has = strict ? next < bound
                          : next <= std::min(bound, cap);
        if (has)
            active_.push_back(s);
    }
    auto drain = [&](size_t idx) {
        size_t s = active_[idx];
        uint64_t shard_before = shards_[s]->executed();
        if (strict)
            shards_[s]->runBefore(bound);
        else
            shards_[s]->runUntil(std::min(bound, cap));
        shard_counters_[s]->add(shards_[s]->executed() -
                                shard_before);
    };
    if (active_.size() == 1)
        drain(0);
    else
        runtime::parallelFor(pool_, active_.size(), drain);

    in_round_ = false;
    roundEventsHistogram().observe(
        static_cast<double>(executed() - before));
    if (tlh) {
        tlh->events->add(static_cast<double>(executed() - before));
        tlh->clamped->add(static_cast<double>(
            crossShardClampedCounter().value() - clamps_before));
    }
    deliverMessages();
    now_ = std::max(now_, std::min(round_safe_, cap));
}

SimTime
ShardedEngine::run()
{
    if (shards_.size() == 1 && outbox_[0].empty()) {
        if (lookahead_ == 0.0 && obs::timelineActive())
            return now_ = drainSingleShard(kInf);
        return now_ = shards_[0]->run();
    }
    obs::Span span("sim.sharded_run");
    uint64_t before = executed();
    while (true) {
        SimTime m = nextEventTime();
        if (m == kInf)
            break;
        round(m, kInf);
    }
    span.setArg(static_cast<int64_t>(executed() - before));
    return now_;
}

SimTime
ShardedEngine::runUntil(SimTime until)
{
    if (shards_.size() == 1 && outbox_[0].empty()) {
        if (lookahead_ == 0.0 && obs::timelineActive())
            return now_ = drainSingleShard(until);
        return now_ = shards_[0]->runUntil(until);
    }
    obs::Span span("sim.sharded_run_until");
    uint64_t before = executed();
    while (true) {
        SimTime m = nextEventTime();
        if (m > until)
            break;
        round(m, until);
    }
    for (auto &q : shards_)
        q->advanceTo(until);
    if (lookahead_ == 0.0 && obs::timelineActive())
        timelineHook().tl->advanceTo(until);
    now_ = std::max(now_, until);
    span.setArg(static_cast<int64_t>(executed() - before));
    return now_;
}

SimTime
ShardedEngine::drainSingleShard(SimTime until)
{
    // The single-queue delegate, slowed to one runUntil() per
    // distinct timestamp so timeline window attribution matches the
    // sharded round path exactly (byte-identical rows for every
    // --shards count). Only taken while a timeline is recording; the
    // zero-cost delegate stays on the fast path otherwise.
    EventQueue &q = *shards_[0];
    TimelineHook &tlh = timelineHook();
    while (true) {
        SimTime t = q.nextEventTime();
        if (t > until)
            break;
        tlh.tl->advanceTo(t);
        uint64_t before = q.executed();
        q.runUntil(t);
        tlh.events->add(static_cast<double>(q.executed() - before));
        tlh.clamped->add(0.0);
    }
    if (std::isfinite(until)) {
        q.advanceTo(until);
        tlh.tl->advanceTo(until);
        return std::max(now_, until);
    }
    return std::max(now_, q.now());
}

} // namespace paichar::sim
