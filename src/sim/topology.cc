#include "topology.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace paichar::sim {

Gpu::Gpu(EventQueue &eq, int server_id, int local_id,
         const TopologyConfig &cfg, Resource *host_link)
    : server_id_(server_id), local_id_(local_id), host_link_(host_link)
{
    std::string tag = "s" + std::to_string(server_id) + "/g" +
                      std::to_string(local_id);
    exec_ = std::make_unique<Resource>(eq, "gpu/" + tag, 1.0,
                                       cfg.kernel_launch_overhead);
    if (cfg.cluster.server.has_nvlink) {
        assert(cfg.nvlink_links_per_gpu >= 1);
        double rate = cfg.cluster.server.nvlink_bandwidth *
                      cfg.efficiency.network;
        for (int l = 0; l < cfg.nvlink_links_per_gpu; ++l) {
            nvlink_links_.push_back(std::make_unique<Resource>(
                eq, "nvlink/" + tag + "/l" + std::to_string(l),
                rate));
        }
    }
}

Resource &
Gpu::nvlinkLink(int i)
{
    assert(i >= 0 && i < numNvlinkLinks());
    return *nvlink_links_[static_cast<size_t>(i)];
}

Resource *
Gpu::nvlinkOut()
{
    return nvlink_links_.empty() ? nullptr : nvlink_links_[0].get();
}

Server::Server(EventQueue &eq, int id, const TopologyConfig &cfg)
    : id_(id)
{
    const auto &srv = cfg.cluster.server;
    double pcie_rate = srv.pcie_bandwidth * cfg.efficiency.pcie;
    nic_ = std::make_unique<Resource>(
        eq, "nic/s" + std::to_string(id),
        cfg.cluster.ethernet_bandwidth * cfg.efficiency.network);

    if (cfg.shared_pcie) {
        host_links_.push_back(std::make_unique<Resource>(
            eq, "pcie/s" + std::to_string(id), pcie_rate));
    }
    for (int g = 0; g < srv.gpus_per_server; ++g) {
        Resource *link;
        if (cfg.shared_pcie) {
            link = host_links_.front().get();
        } else {
            host_links_.push_back(std::make_unique<Resource>(
                eq,
                "pcie/s" + std::to_string(id) + "/g" +
                    std::to_string(g),
                pcie_rate));
            link = host_links_.back().get();
        }
        gpus_.push_back(
            std::make_unique<Gpu>(eq, id, g, cfg, link));
    }
}

ClusterSim::ClusterSim(const TopologyConfig &cfg)
    : cfg_(cfg),
      num_shards_(std::clamp(cfg.num_shards, 1, cfg.num_servers)),
      engine_(num_shards_)
{
    assert(cfg.num_servers >= 1);
    for (int s = 0; s < cfg.num_servers; ++s) {
        servers_.push_back(std::make_unique<Server>(
            engine_.shard(shardOf(s)), s, cfg_));
    }
}

Gpu &
ClusterSim::gpu(int flat_index)
{
    int per = cfg_.cluster.server.gpus_per_server;
    assert(flat_index >= 0 && flat_index < numGpus());
    return *servers_[static_cast<size_t>(flat_index / per)]
                ->gpus()[static_cast<size_t>(flat_index % per)];
}

int
ClusterSim::numGpus() const
{
    return cfg_.num_servers * cfg_.cluster.server.gpus_per_server;
}

std::vector<Gpu *>
ClusterSim::gpuGroup(int n)
{
    assert(n >= 1 && n <= numGpus());
    std::vector<Gpu *> group;
    group.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        group.push_back(&gpu(i));
    return group;
}

std::vector<Gpu *>
ClusterSim::gpuGroupOnePerServer(int n)
{
    assert(n >= 1 && n <= static_cast<int>(servers_.size()));
    std::vector<Gpu *> group;
    group.reserve(static_cast<size_t>(n));
    for (int s = 0; s < n; ++s)
        group.push_back(servers_[static_cast<size_t>(s)]->gpus()[0].get());
    return group;
}

} // namespace paichar::sim
