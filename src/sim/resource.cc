#include "resource.h"

#include <algorithm>
#include <cassert>

namespace paichar::sim {

Resource::Resource(EventQueue &eq, std::string name, double rate,
                   double overhead)
    : eq_(eq), name_(std::move(name)), rate_(rate), overhead_(overhead)
{
    assert(rate_ > 0.0);
    assert(overhead_ >= 0.0);
}

void
Resource::submit(double amount, Completion done)
{
    assert(amount >= 0.0);
    SimTime start = std::max(eq_.now(), next_free_);
    SimTime end = start + overhead_ + amount / rate_;
    next_free_ = end;
    busy_time_ += end - start;
    total_amount_ += amount;
    ++requests_;
    if (done) {
        eq_.schedule(end, [done = std::move(done), start, end] {
            done(start, end);
        });
    }
}

double
Resource::utilization(SimTime horizon) const
{
    assert(horizon > 0.0);
    return busy_time_ / horizon;
}

} // namespace paichar::sim
