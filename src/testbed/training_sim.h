/**
 * @file
 * The simulated testbed: executes one training step of a case-study
 * model on the discrete-event cluster and measures it, playing the
 * role of the paper's 64-server V100 testbed (Sec IV).
 *
 * The measurement path is independent of the analytical model: kernels
 * serialize on each GPU with a per-launch overhead, transfers queue on
 * links, collectives run their phased schedules, and all capacities
 * are derated by the *measured* per-workload efficiencies (Table VI)
 * rather than the uniform 70% assumption. Comparing the two paths
 * reproduces the model-validation experiment (Fig 12).
 */

#ifndef PAICHAR_TESTBED_TRAINING_SIM_H
#define PAICHAR_TESTBED_TRAINING_SIM_H

#include "hw/hardware_config.h"
#include "profiler/run_metadata.h"
#include "workload/model_zoo.h"

namespace paichar::testbed {

/** Simulation options. */
struct SimOptions
{
    /** Raw hardware (defaults to the Sec IV V100 testbed). */
    hw::ClusterSpec cluster = hw::v100Testbed();
    /** Host-side cost per kernel launch (framework overhead). */
    double kernel_launch_overhead = 8e-6;
    /** Software+wire latency per collective phase. */
    double phase_latency = 5e-6;
    /**
     * Host preprocessing throughput in bytes/s applied to the input
     * before the H2D copy; 0 disables it (the testbed case studies
     * pipeline preprocessing away, Sec IV).
     */
    double preprocessing_rate = 0.0;
    /** NVLink mesh links per GPU. */
    int nvlink_links_per_gpu = 6;
    /**
     * PS/Worker jobs: instantiate this many parameter-server hosts
     * and route every worker's Ethernet leg through its shard's PS
     * NIC (Sec VI-A1's partitioning question). 0 keeps the paper's
     * worker-side-only model.
     */
    int num_ps = 0;
    bool model_ps_contention = false;
    /**
     * Event-engine shards the simulated servers are partitioned over
     * (clamped to the server count). 1 keeps the classic serial
     * engine; see sim::TopologyConfig::num_shards.
     */
    int num_shards = 1;
};

/**
 * Per-step execution shape beyond pure data parallelism (the
 * planner's hybrid-parallelism dimensions).
 */
struct StepOptions
{
    /**
     * Gradient-accumulation micro-batches per step: input load and
     * graph execution repeat this many times before one weight sync.
     */
    int micro_batches = 1;
    /**
     * Model-partition degree (sub-graph or channel/filter split).
     * The weight sync then moves 1/ways of the gradient volume (each
     * GPU owns a parameter shard); the caller passes the already
     * partitioned per-GPU graph.
     */
    int partition_ways = 1;
    /**
     * Per-GPU boundary-activation bytes exchanged over NVLink per
     * step (all micro-batches included); 0 disables the phase.
     */
    double exchange_nvlink_bytes = 0.0;
};

/** Measured decomposition of one simulated training step. */
struct StepResult
{
    /** End-to-end step time (phases are not overlapped, as in the
     * paper's framework). */
    double total_time = 0.0;
    /** Input load phase duration (preprocessing + H2D copy). */
    double data_time = 0.0;
    /** Graph-execution phase duration. */
    double compute_time = 0.0;
    /** Activation-exchange phase duration (partitioned plans). */
    double exchange_time = 0.0;
    /** Weight-synchronization phase duration. */
    double comm_time = 0.0;

    /** Within compute: service seconds of compute-bound kernels. */
    double compute_flops_time = 0.0;
    /** Within compute: service seconds of memory-bound kernels. */
    double compute_mem_time = 0.0;
    /** Within compute: accumulated kernel-launch overhead. */
    double overhead_time = 0.0;

    /** Kernels launched per replica. */
    int num_kernels = 0;
    /** Profiling records for cNode 0 (the Fig 4 raw data). */
    profiler::RunMetadata metadata;
};

/** Drives single-step training simulations. */
class TrainingSimulator
{
  public:
    explicit TrainingSimulator(SimOptions opts = SimOptions{});

    /**
     * Run one step of @p model under its Table IV architecture with
     * its Table VI measured efficiencies.
     */
    StepResult run(const workload::CaseStudyModel &model) const;

    /**
     * Run one step with explicit architecture/scale/efficiencies.
     *
     * @param graph  Step dataflow (executed kernel by kernel).
     * @param f      Per-step demands (input/comm volumes).
     * @param arch   System architecture; decides placement and the
     *               sync strategy.
     * @param num_cnodes Number of replicas.
     * @param eff    Achieved hardware efficiencies.
     */
    StepResult run(const workload::OpGraph &graph,
                   const workload::WorkloadFeatures &f,
                   workload::ArchType arch, int num_cnodes,
                   const workload::EfficiencyProfile &eff) const;

    /**
     * As above, with an explicit execution shape: @p so adds
     * gradient-accumulation micro-batching, a model-partition degree
     * (scaling the weight sync to the per-shard gradient volume) and
     * a per-step NVLink activation-exchange phase. The default
     * StepOptions reproduce the 5-argument overload exactly.
     */
    StepResult run(const workload::OpGraph &graph,
                   const workload::WorkloadFeatures &f,
                   workload::ArchType arch, int num_cnodes,
                   const workload::EfficiencyProfile &eff,
                   const StepOptions &so) const;

    /** The options in use. */
    const SimOptions &options() const { return opts_; }

    /** Multi-step pipelined execution measurement. */
    struct PipelineResult
    {
        /** Steps simulated. */
        int steps = 0;
        /** End-to-end time for all steps. */
        double total_time = 0.0;
        /**
         * Steady-state step period: the interval between consecutive
         * step completions once the pipeline is full. With prefetch
         * and compute/communication overlap this approaches
         * max{Td, Tc, Tw} (the Sec V-B ideal-overlap model) instead
         * of the sum.
         */
        double steady_step_time = 0.0;
        /** The same model's non-overlapped single-step time. */
        double nonoverlap_step_time = 0.0;

        /** Fraction of the sequential step hidden by overlap. */
        double
        hiddenFraction() const
        {
            return nonoverlap_step_time > 0.0
                       ? 1.0 - steady_step_time / nonoverlap_step_time
                       : 0.0;
        }
    };

    /**
     * Simulate @p steps training steps with software pipelining
     * (Sec V-B): input loads prefetch ahead, each replica's compute
     * starts as soon as its data and its previous step's compute are
     * done, and weight sync overlaps with the next step's compute
     * (TicTac/Poseidon-style scheduling). FIFO contention on the
     * host links, GPUs and interconnects yields a steady-state period
     * of ~max{Td, Tc, Tw}.
     *
     * @param gate_on_comm If true, a step's compute additionally
     *        waits for the *previous* step's weight sync (strict
     *        synchronous SGD without layer-wise overlap); the steady
     *        period then approaches max{Td, Tc + Tw}.
     */
    PipelineResult runPipelined(const workload::CaseStudyModel &model,
                                int steps,
                                bool gate_on_comm = false) const;

  private:
    SimOptions opts_;
};

} // namespace paichar::testbed

#endif // PAICHAR_TESTBED_TRAINING_SIM_H
