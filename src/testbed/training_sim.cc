#include "training_sim.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "collectives/strategy.h"
#include "core/analytical_model.h"
#include "obs/job_log.h"
#include "obs/timeline.h"
#include "sim/topology.h"

namespace paichar::testbed {

using workload::ArchType;
using workload::OpGraph;
using workload::WorkloadFeatures;

TrainingSimulator::TrainingSimulator(SimOptions opts)
    : opts_(std::move(opts))
{
    assert(opts_.kernel_launch_overhead >= 0.0);
    assert(opts_.preprocessing_rate >= 0.0);
}

StepResult
TrainingSimulator::run(const workload::CaseStudyModel &model) const
{
    StepResult result =
        run(model.graph, model.features, model.arch,
            model.num_cnodes, model.measured_efficiency);

    if (obs::jobLogActive()) {
        // One job-log record per measured step: the event-driven
        // measurement as sim_*, the analytical prediction under the
        // paper's uniform assumption as pred_* -- attribution only,
        // the measurement path above stays model-independent.
        obs::JobRecord rec;
        rec.name = model.name;
        rec.source = "testbed";
        rec.arch = workload::toString(model.arch);
        rec.executed_arch = rec.arch;
        rec.num_cnodes = model.num_cnodes;
        rec.gpus = model.num_cnodes;
        rec.num_steps = 1;
        rec.finish_s = result.total_time;
        rec.sim_td_s = result.data_time;
        rec.sim_tc_s = result.compute_time;
        rec.sim_tw_s = result.comm_time;
        rec.sim_step_s = result.total_time;

        workload::TrainingJob job;
        job.arch = model.arch;
        job.num_cnodes = model.num_cnodes;
        job.num_ps =
            model.arch == ArchType::PsWorker
                ? (opts_.num_ps > 0
                       ? opts_.num_ps
                       : std::max(1, model.num_cnodes / 4))
                : 0;
        job.features = model.features;
        core::AnalyticalModel analytical(opts_.cluster);
        // Per-replica case-study estimates fold PCIe contention into
        // the measured efficiencies (Fig 12); keep the paths aligned.
        analytical.setPcieContention(false);
        core::TimeBreakdown pred = analytical.breakdown(job);
        rec.pred_td_s = pred.t_data;
        rec.pred_tc_flops_s = pred.t_comp_flops;
        rec.pred_tc_mem_s = pred.t_comp_mem;
        rec.pred_tw_s = pred.t_weight;
        rec.pred_step_s = pred.total();
        obs::recordJob(std::move(rec));
    }
    return result;
}

StepResult
TrainingSimulator::run(const OpGraph &graph, const WorkloadFeatures &f,
                       ArchType arch, int num_cnodes,
                       const workload::EfficiencyProfile &eff) const
{
    return run(graph, f, arch, num_cnodes, eff, StepOptions{});
}

StepResult
TrainingSimulator::run(const OpGraph &graph, const WorkloadFeatures &f,
                       ArchType arch, int num_cnodes,
                       const workload::EfficiencyProfile &eff,
                       const StepOptions &so) const
{
    assert(num_cnodes >= 1);
    assert(f.valid());
    assert(so.micro_batches >= 1);
    assert(so.partition_ways >= 1);
    assert(so.exchange_nvlink_bytes >= 0.0);
    const int micro = so.micro_batches;

    // --- build the topology for this job's placement ---
    sim::TopologyConfig tc;
    tc.cluster = opts_.cluster;
    tc.efficiency = eff;
    tc.kernel_launch_overhead = opts_.kernel_launch_overhead;
    tc.nvlink_links_per_gpu = opts_.nvlink_links_per_gpu;
    tc.num_shards = opts_.num_shards;
    // Centralized local training shares the host PCIe root; other
    // placements use dedicated links (contention is folded into the
    // measured PCIe efficiency, Sec IV).
    tc.shared_pcie = arch == ArchType::OneWorkerMultiGpu;

    const int gps = tc.cluster.server.gpus_per_server;
    bool one_per_server = arch == ArchType::PsWorker;
    bool ps_tier = one_per_server && opts_.model_ps_contention &&
                   opts_.num_ps > 0;
    tc.num_servers = one_per_server
                         ? num_cnodes + (ps_tier ? opts_.num_ps : 0)
                         : (num_cnodes + gps - 1) / gps;

    sim::ClusterSim cluster(tc);
    auto group = one_per_server
                     ? cluster.gpuGroupOnePerServer(num_cnodes)
                     : cluster.gpuGroup(num_cnodes);
    sim::EventQueue &eq = cluster.eventQueue();

    StepResult result;
    result.metadata.meta.arch = arch;
    result.metadata.meta.num_cnodes = num_cnodes;
    result.metadata.meta.num_ps =
        arch == ArchType::PsWorker
            ? (opts_.num_ps > 0 ? opts_.num_ps
                                : std::max(1, num_cnodes / 4))
            : 0;
    result.metadata.meta.batch_size = f.batch_size;

    // --- phase 1: input preprocessing + host->GPU copy ---
    // Micro-batches queue FIFO behind each other on the host links;
    // host preprocessing pipelines one micro-batch ahead.
    sim::SimTime data_end = 0.0;
    {
        double prep = opts_.preprocessing_rate > 0.0
                          ? f.input_bytes / opts_.preprocessing_rate
                          : 0.0;
        size_t waiting = group.size() * static_cast<size_t>(micro);
        for (int m = 0; m < micro; ++m) {
            bool meta = m == 0;
            for (sim::Gpu *gpu : group) {
                eq.scheduleAfter(prep * (m + 1), [&, gpu, meta] {
                    gpu->hostLink().submit(
                        f.input_bytes,
                        [&, gpu, meta](sim::SimTime start,
                                       sim::SimTime end) {
                            if (meta && gpu == group[0]) {
                                result.metadata.transfers.push_back(
                                    {profiler::TransferKind::InputData,
                                     profiler::Medium::Pcie, 0,
                                     f.input_bytes, start, end});
                            }
                            data_end = std::max(data_end, end);
                            --waiting;
                        });
                });
            }
        }
        cluster.drain();
        assert(waiting == 0);
        (void)waiting;
    }
    result.data_time = data_end;

    // --- phase 2: graph execution on every replica ---
    const auto &gpu_spec = tc.cluster.server.gpu;
    const double flops_rate = gpu_spec.peak_flops * eff.gpu_flops;
    const double mem_rate = gpu_spec.mem_bandwidth * eff.gpu_memory;
    sim::SimTime comp_end = data_end;
    for (int m = 0; m < micro; ++m) {
        for (size_t r = 0; r < group.size(); ++r) {
            sim::Gpu *gpu = group[r];
            bool record = r == 0;
            bool meta = record && m == 0;
            for (const workload::Op &op : graph.ops()) {
                if (op.type == workload::OpType::DataLoad)
                    continue; // covered by phase 1
                double seconds;
                if (workload::isComputeBound(op.type)) {
                    seconds = op.flops / flops_rate;
                    if (record)
                        result.compute_flops_time += seconds;
                } else {
                    seconds = op.mem_bytes / mem_rate;
                    if (record)
                        result.compute_mem_time += seconds;
                }
                if (record) {
                    result.overhead_time +=
                        opts_.kernel_launch_overhead;
                    ++result.num_kernels;
                }
                gpu->exec().submit(
                    seconds,
                    meta
                        ? sim::Completion(
                              [&result, &comp_end, &op](
                                  sim::SimTime start,
                                  sim::SimTime end) {
                                  result.metadata.ops.push_back(
                                      {op.name, op.type, 0, start,
                                       end, op.flops, op.mem_bytes});
                                  comp_end = std::max(comp_end, end);
                              })
                        : sim::Completion(
                              [&comp_end](sim::SimTime,
                                          sim::SimTime end) {
                                  comp_end =
                                      std::max(comp_end, end);
                              }));
            }
        }
    }
    cluster.drain();
    result.compute_time = comp_end - data_end;

    // --- phase 2.5: model-parallel activation exchange ---
    sim::SimTime exch_end = comp_end;
    if (so.exchange_nvlink_bytes > 0.0 && group.size() > 1) {
        auto exchange = collectives::makeActivationExchange(
            so.exchange_nvlink_bytes);
        bool exch_done = false;
        exchange->sync(cluster, group, f, [&](sim::SimTime end) {
            exch_end = std::max(exch_end, end);
            exch_done = true;
        });
        cluster.drain();
        assert(exch_done);
        (void)exch_done;
        result.metadata.transfers.push_back(
            {profiler::TransferKind::ActivationExchange,
             profiler::Medium::NvLink, 0, so.exchange_nvlink_bytes,
             comp_end, exch_end});
    }
    result.exchange_time = exch_end - comp_end;

    // --- phase 3: weight/gradient synchronization ---
    collectives::StrategyOptions sopts;
    sopts.num_ps = opts_.num_ps;
    sopts.model_ps_contention = ps_tier;
    auto strategy = collectives::makeStrategy(arch, sopts);
    assert(strategy);
    if (so.partition_ways > 1) {
        strategy = collectives::makeShardedStrategy(
            std::move(strategy), so.partition_ways);
    }
    sim::SimTime sync_end = exch_end;
    bool sync_done = false;
    strategy->sync(cluster, group, f, [&](sim::SimTime end) {
        sync_end = std::max(sync_end, end);
        sync_done = true;
    });
    cluster.drain();
    assert(sync_done);
    (void)sync_done;
    result.comm_time = sync_end - exch_end;
    result.total_time = sync_end;

    // Record the sync traffic for cNode 0 by medium.
    auto traffic =
        strategy->traffic(f, static_cast<int>(group.size()));
    auto addSync = [&](profiler::Medium m, double bytes) {
        if (bytes > 0.0) {
            result.metadata.transfers.push_back(
                {profiler::TransferKind::WeightSync, m, 0, bytes,
                 exch_end, sync_end});
        }
    };
    addSync(profiler::Medium::Pcie, traffic.pcie_bytes);
    addSync(profiler::Medium::Ethernet, traffic.ethernet_bytes);
    addSync(profiler::Medium::NvLink, traffic.nvlink_bytes);

    return result;
}

TrainingSimulator::PipelineResult
TrainingSimulator::runPipelined(const workload::CaseStudyModel &model,
                                int steps, bool gate_on_comm) const
{
    assert(steps >= 1);
    const auto &f = model.features;
    const auto arch = model.arch;
    const int n = model.num_cnodes;
    const auto &eff = model.measured_efficiency;

    sim::TopologyConfig tc;
    tc.cluster = opts_.cluster;
    tc.efficiency = eff;
    tc.kernel_launch_overhead = opts_.kernel_launch_overhead;
    tc.nvlink_links_per_gpu = opts_.nvlink_links_per_gpu;
    tc.num_shards = opts_.num_shards;
    tc.shared_pcie = arch == ArchType::OneWorkerMultiGpu;
    const int gps = tc.cluster.server.gpus_per_server;
    bool one_per_server = arch == ArchType::PsWorker;
    tc.num_servers =
        one_per_server ? n : (n + gps - 1) / gps;

    sim::ClusterSim cluster(tc);
    auto group = one_per_server ? cluster.gpuGroupOnePerServer(n)
                                : cluster.gpuGroup(n);
    sim::EventQueue &eq = cluster.eventQueue();
    auto strategy = collectives::makeStrategy(arch);

    // Precompute per-kernel service times once.
    const auto &gpu_spec = tc.cluster.server.gpu;
    const double flops_rate = gpu_spec.peak_flops * eff.gpu_flops;
    const double mem_rate = gpu_spec.mem_bandwidth * eff.gpu_memory;
    std::vector<double> kernel_seconds;
    for (const workload::Op &op : model.graph.ops()) {
        if (op.type == workload::OpType::DataLoad)
            continue;
        kernel_seconds.push_back(
            workload::isComputeBound(op.type)
                ? op.flops / flops_rate
                : op.mem_bytes / mem_rate);
    }

    // Shared pipeline state; closures keep it alive until the drain
    // finishes (all events drain inside this function).
    struct State
    {
        int steps;
        int n;
        bool gate_on_comm;
        std::vector<int> compute_remaining; // per step: replicas left
        std::vector<bool> data_done;        // per (step, replica)
        std::vector<bool> compute_submitted;
        std::vector<bool> comm_done; // per step
        std::vector<double> step_finish;
    };
    auto st = std::make_shared<State>();
    st->steps = steps;
    st->n = n;
    st->gate_on_comm = gate_on_comm;
    st->compute_remaining.assign(static_cast<size_t>(steps), n);
    st->data_done.assign(static_cast<size_t>(steps) * n, false);
    st->compute_submitted.assign(static_cast<size_t>(steps) * n,
                                 false);
    st->comm_done.assign(static_cast<size_t>(steps), false);
    st->step_finish.assign(static_cast<size_t>(steps), 0.0);

    // Forward declarations via shared function objects.
    auto submitCompute =
        std::make_shared<std::function<void(int, int)>>();
    auto onComputeDone =
        std::make_shared<std::function<void(int, double)>>();

    *submitCompute = [&, st, submitCompute, onComputeDone](int s,
                                                           int r) {
        size_t idx = static_cast<size_t>(s) * st->n +
                     static_cast<size_t>(r);
        if (st->compute_submitted[idx] || !st->data_done[idx])
            return;
        if (st->gate_on_comm && s > 0 && !st->comm_done[s - 1])
            return;
        st->compute_submitted[idx] = true;
        sim::Gpu *gpu = group[static_cast<size_t>(r)];
        for (size_t k = 0; k < kernel_seconds.size(); ++k) {
            bool last = k + 1 == kernel_seconds.size();
            gpu->exec().submit(
                kernel_seconds[k],
                last ? sim::Completion(
                           [st, onComputeDone, s](sim::SimTime,
                                                  sim::SimTime end) {
                               (*onComputeDone)(s, end);
                           })
                     : sim::Completion());
        }
    };

    *onComputeDone = [&, st, submitCompute](int s, double) {
        if (--st->compute_remaining[static_cast<size_t>(s)] > 0)
            return;
        // All replicas finished step s: launch the weight sync; its
        // link submissions naturally serialize behind step s-1's.
        strategy->sync(
            cluster, group, f, [&, st, submitCompute, s](double end) {
                st->comm_done[static_cast<size_t>(s)] = true;
                st->step_finish[static_cast<size_t>(s)] = end;
                if (st->gate_on_comm && s + 1 < st->steps) {
                    for (int r = 0; r < st->n; ++r)
                        (*submitCompute)(s + 1, r);
                }
            });
    };

    // Prefetch every step's input; FIFO host links pace the loads.
    for (int s = 0; s < steps; ++s) {
        for (int r = 0; r < n; ++r) {
            group[static_cast<size_t>(r)]->hostLink().submit(
                f.input_bytes,
                [&, st, submitCompute, s, r](sim::SimTime,
                                             sim::SimTime) {
                    st->data_done[static_cast<size_t>(s) * st->n +
                                  static_cast<size_t>(r)] = true;
                    (*submitCompute)(s, r);
                });
        }
    }
    cluster.drain();

    // Timeline: replay step completions in step order. The drain's
    // internal event order depends on queue internals, but
    // step_finish is a pure function of the inputs, so replaying it
    // afterwards gives thread/shard-independent rows.
    if (obs::timelineActive()) {
        obs::Timeline *tl = obs::timeline();
        obs::Timeline::Rate &steps_rate =
            tl->rate("testbed.steps");
        for (double finish : st->step_finish) {
            tl->advanceTo(finish);
            steps_rate.add();
        }
    }

    PipelineResult result;
    result.steps = steps;
    result.total_time = st->step_finish.back();
    result.nonoverlap_step_time = run(model).total_time;
    result.steady_step_time =
        steps > 1 ? (st->step_finish.back() - st->step_finish.front()) /
                        (steps - 1)
                  : result.total_time;
    return result;
}

} // namespace paichar::testbed
