#include "fleet_sim.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <optional>
#include <stdexcept>

#include "obs/obs.h"
#include "obs/timeline.h"
#include "stats/cdf.h"
#include "stats/rng.h"

namespace paichar::inference {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

[[noreturn]] void
badConfig(const std::string &what)
{
    throw std::invalid_argument("FleetSimulator: " + what);
}

/** One server of the fleet. */
struct Server
{
    enum class State
    {
        Up,
        Provisioning,
        Draining,
        Down,
    };

    State state = State::Up;
    std::deque<int64_t> queue; // waiting request ids
    bool busy = false;
    double completion = kInf;      // valid while busy
    double launch_start = 0.0;     // valid while busy
    std::vector<int64_t> in_flight; // ids of the running launch
    // Continuous batching: items left in the current amortization
    // window and the model the window was opened for.
    int window_left = 0;
    int window_model = -1;
    double busy_time = 0.0;
    double up_since = 0.0;
    double uptime = 0.0; // accumulated when retired / at end
    int64_t batches = 0;
    int64_t items = 0;
};

/** Event ordering: (time, kind, server). Arrivals precede the
 *  completions they may join (matching the seed simulator's
 *  `arrivals[next] <= start` inclusion), provisions precede
 *  arrivals so fresh capacity is routable at its ready instant. */
enum EventKind
{
    kProvision = 0,
    kArrival = 1,
    kCompletion = 2,
    kTick = 3,
};

} // namespace

const char *
toString(Routing r)
{
    switch (r) {
    case Routing::RoundRobin:
        return "round-robin";
    case Routing::LeastQueue:
        return "least-queue";
    case Routing::PowerOfTwo:
        return "p2c";
    }
    return "?";
}

const char *
toString(Batching b)
{
    switch (b) {
    case Batching::Greedy:
        return "greedy";
    case Batching::Continuous:
        return "continuous";
    }
    return "?";
}

std::optional<Routing>
routingFromString(const std::string &s)
{
    if (s == "round-robin")
        return Routing::RoundRobin;
    if (s == "least-queue")
        return Routing::LeastQueue;
    if (s == "p2c")
        return Routing::PowerOfTwo;
    return std::nullopt;
}

std::optional<Batching>
batchingFromString(const std::string &s)
{
    if (s == "greedy")
        return Batching::Greedy;
    if (s == "continuous")
        return Batching::Continuous;
    return std::nullopt;
}

FleetSimulator::FleetSimulator(FleetConfig cfg) : cfg_(std::move(cfg))
{
    if (cfg_.num_servers < 1)
        badConfig("num_servers must be >= 1, got " +
                  std::to_string(cfg_.num_servers));
    if (cfg_.max_batch < 1)
        badConfig("max_batch must be >= 1, got " +
                  std::to_string(cfg_.max_batch));
    if (!(cfg_.launch_overhead >= 0.0) ||
        !std::isfinite(cfg_.launch_overhead))
        badConfig("launch_overhead must be finite and >= 0");
    if (cfg_.admit_queue < 0)
        badConfig("admit_queue must be >= 0, got " +
                  std::to_string(cfg_.admit_queue));
    const AutoscalerConfig &as = cfg_.autoscaler;
    if (as.enabled) {
        if (as.min_servers < 1 || as.max_servers < as.min_servers)
            badConfig("autoscaler bounds must satisfy 1 <= "
                      "min_servers <= max_servers");
        if (!(as.check_interval > 0.0) ||
            !std::isfinite(as.check_interval))
            badConfig("autoscaler check_interval must be positive "
                      "and finite");
        if (!(as.provision_lag >= 0.0) ||
            !std::isfinite(as.provision_lag))
            badConfig("autoscaler provision_lag must be finite and "
                      ">= 0");
        if (as.mode == AutoscalerConfig::Mode::QueueDepth) {
            if (!(as.scale_down_depth >= 0.0) ||
                !(as.scale_up_depth > as.scale_down_depth))
                badConfig("autoscaler depths must satisfy 0 <= "
                          "scale_down_depth < scale_up_depth");
        } else {
            if (!(as.slo_latency > 0.0) ||
                !std::isfinite(as.slo_latency))
                badConfig("slo autoscaler needs a positive finite "
                          "slo_latency");
            if (!(as.slo_down_fraction >= 0.0) ||
                !(as.slo_up_fraction > as.slo_down_fraction) ||
                !std::isfinite(as.slo_up_fraction))
                badConfig("slo autoscaler fractions must satisfy 0 "
                          "<= slo_down_fraction < slo_up_fraction");
            if (as.slo_min_samples < 1)
                badConfig("slo autoscaler slo_min_samples must be "
                          ">= 1, got " +
                          std::to_string(as.slo_min_samples));
        }
    }
}

FleetResult
FleetSimulator::run(const std::vector<ModelLoad> &models,
                    int64_t num_requests, uint64_t seed) const
{
    if (models.empty())
        badConfig("run: at least one model load is required");
    if (num_requests < 1)
        badConfig("run: num_requests must be >= 1, got " +
                  std::to_string(num_requests));

    obs::Span run_span("inference.fleet.run", num_requests);
    static obs::Counter &requests_ctr =
        obs::counter("inference.fleet.requests");
    static obs::Counter &rejected_ctr =
        obs::counter("inference.fleet.rejected");
    static obs::Counter &batches_ctr =
        obs::counter("inference.fleet.batches");
    static obs::Counter &scale_ctr =
        obs::counter("inference.fleet.scale_events");
    static obs::Histogram &latency_hist =
        obs::histogram("inference.fleet.latency_us");

    // Merge the per-model streams into one time-ordered arrival
    // sequence. Stream 0 uses `seed` verbatim (the single-server
    // replay contract); stream i derives an independent SplitMix64
    // orbit from (seed, i). Ties break toward the lower stream.
    struct Arrival
    {
        double time;
        int model;
    };
    std::vector<Arrival> arrivals;
    arrivals.reserve(static_cast<size_t>(num_requests));
    {
        std::vector<stats::ArrivalStream> streams;
        streams.reserve(models.size());
        for (size_t i = 0; i < models.size(); ++i) {
            uint64_t stream_seed =
                seed + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(i);
            streams.emplace_back(models[i].arrival, stream_seed);
        }
        std::vector<double> heads(streams.size());
        for (size_t i = 0; i < streams.size(); ++i)
            heads[i] = streams[i].next();
        for (int64_t n = 0; n < num_requests; ++n) {
            size_t best = 0;
            for (size_t i = 1; i < streams.size(); ++i) {
                if (heads[i] < heads[best])
                    best = i;
            }
            arrivals.push_back(
                {heads[best], static_cast<int>(best)});
            heads[best] = streams[best].next();
        }
    }

    const AutoscalerConfig &as = cfg_.autoscaler;
    int initial = cfg_.num_servers;
    if (as.enabled)
        initial = std::clamp(initial, as.min_servers,
                             as.max_servers);

    std::vector<Server> servers(static_cast<size_t>(initial));
    std::deque<std::pair<double, size_t>> provisions; // (ready, idx)
    stats::Rng route_rng(seed ^ 0x70327463726f7574ULL);

    FleetResult result;
    result.offered = num_requests;
    result.peak_servers = initial;

    stats::WeightedCdf latencies;
    std::vector<double> latency_seq;
    latency_seq.reserve(arrivals.size());
    if (cfg_.record_requests)
        result.requests.resize(arrivals.size());

    // Timeline probes: the loop advances the timeline to each event
    // time before processing it, so every sample lands in the window
    // containing its event. record_timeline=false runs (capacity
    // bisection probes) suspend the timeline entirely.
    std::optional<obs::TimelineSuspend> tl_suspend;
    if (!cfg_.record_timeline)
        tl_suspend.emplace();
    obs::Timeline *tl =
        obs::timelineActive() ? obs::timeline() : nullptr;
    obs::Timeline::Level *tl_up_lvl =
        tl ? &tl->level("inference.fleet.servers_up") : nullptr;
    obs::Timeline::Level *tl_queued_lvl =
        tl ? &tl->level("inference.fleet.queued") : nullptr;
    obs::Timeline::Rate *tl_arrivals =
        tl ? &tl->rate("inference.fleet.arrivals") : nullptr;
    obs::Timeline::Rate *tl_rejected =
        tl ? &tl->rate("inference.fleet.rejected") : nullptr;
    obs::Timeline::Rate *tl_completions =
        tl ? &tl->rate("inference.fleet.completions") : nullptr;
    obs::Timeline::Rate *tl_scale =
        tl ? &tl->rate("inference.fleet.scale_events") : nullptr;
    obs::Timeline::Quantile *tl_latency =
        tl ? &tl->quantile("inference.fleet.latency_us") : nullptr;

    // The SLO controller's trailing window: completions since the
    // last control decision. Kept by the simulator itself so
    // --autoscale=slo needs no timeline attached.
    std::vector<double> slo_window;
    const bool slo_mode =
        as.enabled && as.mode == AutoscalerConfig::Mode::SloLatency;

    double last_end = 0.0;
    size_t next_arrival = 0;
    uint64_t rr_counter = 0;
    double next_tick = as.enabled ? as.check_interval : kInf;

    auto upServers = [&](std::vector<size_t> &out) {
        out.clear();
        for (size_t i = 0; i < servers.size(); ++i) {
            if (servers[i].state == Server::State::Up)
                out.push_back(i);
        }
    };
    std::vector<size_t> up; // scratch, reused per routing decision

    auto load = [&](const Server &s) {
        return s.queue.size() + s.in_flight.size();
    };

    const hw::GpuSpec &gpu = cfg_.server.gpu;
    double pcie = cfg_.server.pcie_bandwidth;

    // Launch the next unit of work on an idle server whose queue is
    // non-empty. Greedy: one multi-request launch of the front
    // request's model. Continuous: one item, charging the fixed cost
    // only at window boundaries.
    auto startWork = [&](size_t si, double t) {
        Server &s = servers[si];
        int m = arrivals[static_cast<size_t>(s.queue.front())].model;
        const InferenceWorkload &w = models[static_cast<size_t>(m)]
                                         .workload;
        double svc = 0.0;
        if (cfg_.batching == Batching::Greedy) {
            // Collect up to max_batch queued requests of model m in
            // FIFO order; other models keep their relative order.
            for (auto it = s.queue.begin();
                 it != s.queue.end() &&
                 s.in_flight.size() <
                     static_cast<size_t>(cfg_.max_batch);) {
                if (arrivals[static_cast<size_t>(*it)].model == m) {
                    s.in_flight.push_back(*it);
                    it = s.queue.erase(it);
                } else {
                    ++it;
                }
            }
            int batch = static_cast<int>(s.in_flight.size());
            svc = w.inputTime(batch, pcie) +
                  w.serviceTime(batch, gpu, cfg_.launch_overhead);
            ++s.batches;
        } else {
            s.in_flight.push_back(s.queue.front());
            s.queue.pop_front();
            if (s.window_left == 0 || s.window_model != m) {
                svc += w.fixedTime(gpu, cfg_.launch_overhead);
                s.window_left = cfg_.max_batch;
                s.window_model = m;
                ++s.batches;
            }
            --s.window_left;
            svc += w.itemTime(gpu) + w.inputTime(1, pcie);
        }
        s.busy = true;
        s.launch_start = t;
        s.completion = t + svc;
        s.busy_time += svc;
    };

    auto finishWork = [&](size_t si) {
        Server &s = servers[si];
        double t = s.completion;
        int batch = static_cast<int>(s.in_flight.size());
        for (int64_t id : s.in_flight) {
            double lat =
                t - arrivals[static_cast<size_t>(id)].time;
            latencies.add(lat);
            latency_seq.push_back(lat);
            latency_hist.observe(lat * 1e6);
            if (tl_latency)
                tl_latency->observe(lat * 1e6);
            if (slo_mode)
                slo_window.push_back(lat);
            if (cfg_.record_requests) {
                RequestRecord &rec =
                    result.requests[static_cast<size_t>(id)];
                rec.arrival = arrivals[static_cast<size_t>(id)].time;
                rec.start = s.launch_start;
                rec.completion = t;
                rec.server = static_cast<int>(si);
                rec.model = arrivals[static_cast<size_t>(id)].model;
                rec.batch = batch;
            }
        }
        s.items += batch;
        result.completed += batch;
        if (tl_completions)
            tl_completions->add(static_cast<double>(batch));
        s.in_flight.clear();
        s.busy = false;
        s.completion = kInf;
        last_end = t;
        if (!s.queue.empty()) {
            startWork(si, t);
        } else if (s.state == Server::State::Draining) {
            s.state = Server::State::Down;
            s.uptime += t - s.up_since;
        }
    };

    auto anyBusy = [&] {
        for (const Server &s : servers) {
            if (s.busy)
                return true;
        }
        return false;
    };

    // Post-event level sampling: last-set-wins within a window, so
    // each closed window reports the fleet state as of its final
    // event — piecewise-constant sampling of size and backlog.
    auto sampleFleetLevels = [&] {
        if (!tl)
            return;
        double up_now = 0.0, queued = 0.0;
        for (const Server &s : servers) {
            if (s.state == Server::State::Up)
                up_now += 1.0;
            queued += static_cast<double>(s.queue.size());
        }
        tl_up_lvl->set(up_now);
        tl_queued_lvl->set(queued);
    };

    while (next_arrival < arrivals.size() || anyBusy()) {
        // Select the next event by (time, kind, server).
        double ev_time = kInf;
        int ev_kind = kTick;
        size_t ev_server = 0;
        if (!provisions.empty()) {
            ev_time = provisions.front().first;
            ev_kind = kProvision;
            ev_server = provisions.front().second;
        }
        if (next_arrival < arrivals.size()) {
            double t = arrivals[next_arrival].time;
            if (t < ev_time ||
                (t == ev_time && kArrival < ev_kind)) {
                ev_time = t;
                ev_kind = kArrival;
            }
        }
        for (size_t i = 0; i < servers.size(); ++i) {
            if (!servers[i].busy)
                continue;
            double t = servers[i].completion;
            if (t < ev_time ||
                (t == ev_time && kCompletion < ev_kind)) {
                ev_time = t;
                ev_kind = kCompletion;
                ev_server = i;
            }
        }
        if (as.enabled && next_tick < ev_time) {
            ev_time = next_tick;
            ev_kind = kTick;
        }

        // Close windows ending at or before this event, so whatever
        // it records lands in the window containing it.
        if (tl)
            tl->advanceTo(ev_time);

        switch (ev_kind) {
        case kProvision: {
            provisions.pop_front();
            Server &s = servers[ev_server];
            s.state = Server::State::Up;
            s.up_since = ev_time;
            int up_now = 0;
            for (const Server &sv : servers)
                up_now += sv.state == Server::State::Up;
            result.peak_servers =
                std::max(result.peak_servers, up_now);
            break;
        }

        case kArrival: {
            int64_t id = static_cast<int64_t>(next_arrival);
            ++next_arrival;
            if (tl_arrivals)
                tl_arrivals->add();
            upServers(up);
            size_t chosen = up.front();
            switch (cfg_.routing) {
            case Routing::RoundRobin:
                chosen = up[static_cast<size_t>(
                    rr_counter % up.size())];
                ++rr_counter;
                break;
            case Routing::LeastQueue:
                for (size_t c : up) {
                    if (load(servers[c]) < load(servers[chosen]))
                        chosen = c;
                }
                break;
            case Routing::PowerOfTwo: {
                if (up.size() > 1) {
                    auto n = static_cast<int64_t>(up.size());
                    auto a = static_cast<size_t>(
                        route_rng.uniformInt(0, n - 1));
                    auto b = static_cast<size_t>(
                        route_rng.uniformInt(0, n - 2));
                    if (b >= a)
                        ++b;
                    // Less loaded wins; ties go to the lower index.
                    size_t lo = std::min(a, b), hi = std::max(a, b);
                    chosen = load(servers[up[hi]]) <
                                     load(servers[up[lo]])
                                 ? up[hi]
                                 : up[lo];
                } else {
                    chosen = up.front();
                }
                break;
            }
            }
            Server &s = servers[chosen];
            if (cfg_.admit_queue > 0 &&
                s.queue.size() >=
                    static_cast<size_t>(cfg_.admit_queue)) {
                ++result.rejected;
                if (tl_rejected)
                    tl_rejected->add();
                if (cfg_.record_requests) {
                    RequestRecord &rec =
                        result.requests[static_cast<size_t>(id)];
                    rec.arrival = ev_time;
                    rec.model =
                        arrivals[static_cast<size_t>(id)].model;
                    rec.server = static_cast<int>(chosen);
                    rec.rejected = true;
                }
                break;
            }
            s.queue.push_back(id);
            if (!s.busy)
                startWork(chosen, ev_time);
            break;
        }

        case kCompletion:
            finishWork(ev_server);
            break;

        case kTick: {
            next_tick += as.check_interval;
            int up_now = 0;
            size_t queued = 0;
            size_t drain_candidate = 0;
            bool have_candidate = false;
            for (size_t i = 0; i < servers.size(); ++i) {
                if (servers[i].state != Server::State::Up)
                    continue;
                ++up_now;
                queued += servers[i].queue.size();
                drain_candidate = i; // highest Up index wins
                have_candidate = true;
            }
            if (up_now == 0)
                break;
            bool scale_up = false, scale_down = false;
            if (slo_mode) {
                // React to the trailing window's p99 vs the SLO.
                // Fewer than slo_min_samples completions is noise:
                // hold, exactly like the saturation detector's
                // sample floor.
                if (slo_window.size() >=
                    static_cast<size_t>(as.slo_min_samples)) {
                    double p99 = obs::nearestRankQuantile(
                        slo_window, 0.99);
                    scale_up =
                        p99 > as.slo_latency * as.slo_up_fraction;
                    scale_down =
                        p99 < as.slo_latency * as.slo_down_fraction;
                }
                slo_window.clear();
            } else {
                double depth =
                    static_cast<double>(queued) / up_now;
                scale_up = depth > as.scale_up_depth;
                scale_down = depth < as.scale_down_depth;
            }
            if (scale_up &&
                up_now + static_cast<int>(provisions.size()) <
                    as.max_servers) {
                servers.emplace_back();
                servers.back().state = Server::State::Provisioning;
                servers.back().busy = false;
                servers.back().completion = kInf;
                provisions.emplace_back(
                    ev_time + as.provision_lag,
                    servers.size() - 1);
                ++result.scale_ups;
                if (tl_scale)
                    tl_scale->add();
            } else if (scale_down &&
                       up_now > std::max(as.min_servers, 1) &&
                       have_candidate) {
                Server &s = servers[drain_candidate];
                if (!s.busy && s.queue.empty()) {
                    s.state = Server::State::Down;
                    s.uptime += ev_time - s.up_since;
                } else {
                    s.state = Server::State::Draining;
                }
                ++result.scale_downs;
                if (tl_scale)
                    tl_scale->add();
            }
            break;
        }
        }

        sampleFleetLevels();
    }

    if (tl)
        tl->advanceTo(last_end);

    result.duration = last_end;
    result.admitted = result.offered - result.rejected;
    result.throughput =
        last_end > 0.0
            ? static_cast<double>(result.completed) / last_end
            : 0.0;
    if (!latencies.empty()) {
        result.mean_latency = latencies.mean();
        result.p50_latency = latencies.quantile(0.50);
        result.p95_latency = latencies.quantile(0.95);
        result.p99_latency = latencies.quantile(0.99);
        result.p999_latency = latencies.quantile(0.999);
        result.max_latency = latencies.max();
    }

    int64_t total_batches = 0;
    double busy_total = 0.0, uptime_total = 0.0;
    result.servers.reserve(servers.size());
    int final_up = 0;
    for (Server &s : servers) {
        if (s.state == Server::State::Up ||
            s.state == Server::State::Draining) {
            s.uptime += last_end - s.up_since;
            final_up += s.state == Server::State::Up;
        }
        ServerStats stats;
        stats.busy = s.busy_time;
        stats.uptime = s.uptime;
        stats.batches = s.batches;
        stats.items = s.items;
        result.servers.push_back(stats);
        total_batches += s.batches;
        busy_total += s.busy_time;
        uptime_total += s.uptime;
    }
    result.final_servers = final_up;
    result.batches = total_batches;
    result.gpu_utilization =
        uptime_total > 0.0 ? busy_total / uptime_total : 0.0;
    result.avg_batch =
        total_batches > 0
            ? static_cast<double>(result.completed) /
                  static_cast<double>(total_batches)
            : 0.0;

    // Same detector and sample floor as the single-server simulator
    // (serving_sim.cc): explicit Undersampled below the floor.
    size_t n = latency_seq.size();
    if (n < static_cast<size_t>(kMinSaturationSamples)) {
        result.verdict = OverloadVerdict::Undersampled;
    } else {
        auto mean_range = [&](size_t lo, size_t hi) {
            double acc = 0.0;
            for (size_t j = lo; j < hi; ++j)
                acc += latency_seq[j];
            return acc / static_cast<double>(hi - lo);
        };
        double mid = mean_range(2 * n / 5, 3 * n / 5);
        double tail = mean_range(4 * n / 5, n);
        result.verdict = tail > 1.45 * mid
                             ? OverloadVerdict::Saturated
                             : OverloadVerdict::Stable;
    }
    result.saturated =
        result.verdict == OverloadVerdict::Saturated;

    requests_ctr.add(static_cast<uint64_t>(result.offered));
    rejected_ctr.add(static_cast<uint64_t>(result.rejected));
    batches_ctr.add(static_cast<uint64_t>(total_batches));
    scale_ctr.add(static_cast<uint64_t>(result.scale_ups +
                                        result.scale_downs));
    return result;
}

std::optional<int>
minServersForSlo(const FleetConfig &cfg,
                 const std::vector<ModelLoad> &models, double slo,
                 int max_servers, int64_t num_requests,
                 uint64_t seed)
{
    if (!(slo > 0.0) || !std::isfinite(slo))
        throw std::invalid_argument(
            "minServersForSlo: slo must be positive and finite");
    if (max_servers < 1)
        throw std::invalid_argument(
            "minServersForSlo: max_servers must be >= 1, got " +
            std::to_string(max_servers));
    if (num_requests < kMinSaturationSamples)
        throw std::invalid_argument(
            "minServersForSlo: num_requests must be >= " +
            std::to_string(kMinSaturationSamples) +
            " (the saturation-detector sample floor), got " +
            std::to_string(num_requests));

    obs::Span span("inference.fleet.capacity_search");
    static obs::Counter &probes_ctr =
        obs::counter("inference.fleet.capacity_probes");

    auto ok = [&](int n) {
        probes_ctr.add();
        FleetConfig probe = cfg;
        probe.num_servers = n;
        probe.autoscaler.enabled = false;
        probe.record_requests = false;
        probe.record_timeline = false;
        FleetResult r =
            FleetSimulator(probe).run(models, num_requests, seed);
        return r.verdict == OverloadVerdict::Stable &&
               r.rejected == 0 && r.p99_latency <= slo;
    };

    if (ok(1))
        return 1;
    if (max_servers == 1 || !ok(max_servers))
        return std::nullopt;
    // Queueing delay falls monotonically as per-server load drops,
    // so the pass/fail boundary is a single point to bisect.
    int lo = 1, hi = max_servers;
    while (hi - lo > 1) {
        int mid = lo + (hi - lo) / 2;
        if (ok(mid))
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

} // namespace paichar::inference
