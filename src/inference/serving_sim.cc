#include "serving_sim.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>
#include <string>

#include "obs/obs.h"
#include "stats/arrival.h"
#include "stats/rng.h"

namespace paichar::inference {

const char *
toString(OverloadVerdict v)
{
    switch (v) {
    case OverloadVerdict::Stable:
        return "stable";
    case OverloadVerdict::Saturated:
        return "saturated";
    case OverloadVerdict::Undersampled:
        return "undersampled";
    }
    return "?";
}

ServingSimulator::ServingSimulator(ServingConfig cfg)
    : cfg_(std::move(cfg))
{
    // Real errors, not asserts: a bad config must fail loudly in
    // NDEBUG builds too (pinned by tests/ndebug).
    if (cfg_.max_batch < 1) {
        throw std::invalid_argument(
            "ServingSimulator: max_batch must be >= 1, got " +
            std::to_string(cfg_.max_batch));
    }
    if (!(cfg_.launch_overhead >= 0.0) ||
        !std::isfinite(cfg_.launch_overhead)) {
        throw std::invalid_argument(
            "ServingSimulator: launch_overhead must be finite and "
            ">= 0");
    }
}

ServingResult
ServingSimulator::run(const InferenceWorkload &workload, double qps,
                      int64_t num_requests, uint64_t seed) const
{
    if (!(qps > 0.0) || !std::isfinite(qps)) {
        throw std::invalid_argument(
            "ServingSimulator::run: qps must be positive and "
            "finite");
    }
    if (num_requests < 1) {
        throw std::invalid_argument(
            "ServingSimulator::run: num_requests must be >= 1, "
            "got " +
            std::to_string(num_requests));
    }

    // Run-grained instrumentation (one span + counter update per
    // call, never per request or batch -- the <2% budget applies).
    obs::Span run_span("inference.run", num_requests);
    static obs::Counter &requests_ctr =
        obs::counter("inference.requests");
    static obs::Counter &batches_ctr =
        obs::counter("inference.batches");
    static obs::Counter &saturated_ctr =
        obs::counter("inference.saturated_runs");

    // Poisson arrivals: exponential inter-arrival times drawn
    // through the clamping sampler (stats/arrival.h documents the
    // half-open uniform() contract it relies on).
    stats::Rng rng(seed);
    std::vector<double> arrivals(static_cast<size_t>(num_requests));
    double t = 0.0;
    for (double &a : arrivals) {
        t += stats::sampleExp(rng, qps);
        a = t;
    }

    // Greedy batching on one GPU: whenever the device becomes free,
    // everything queued (up to max_batch) leaves as one launch.
    std::deque<double> queue; // arrival times of waiting requests
    size_t next = 0;
    double gpu_free = 0.0, busy = 0.0, last_end = 0.0;
    int64_t batches = 0;
    stats::WeightedCdf latencies;
    std::vector<double> latency_seq;
    latency_seq.reserve(arrivals.size());

    while (next < arrivals.size() || !queue.empty()) {
        if (queue.empty()) {
            queue.push_back(arrivals[next]);
            ++next;
        }
        double start = std::max(gpu_free, queue.front());
        // Requests arriving while the GPU is still busy join the
        // batch formed at `start`.
        while (next < arrivals.size() && arrivals[next] <= start) {
            queue.push_back(arrivals[next]);
            ++next;
        }
        int batch = static_cast<int>(std::min<size_t>(
            queue.size(), static_cast<size_t>(cfg_.max_batch)));
        double svc =
            workload.inputTime(batch, cfg_.server.pcie_bandwidth) +
            workload.serviceTime(batch, cfg_.server.gpu,
                                 cfg_.launch_overhead);
        double end = start + svc;
        for (int b = 0; b < batch; ++b) {
            double lat = end - queue.front();
            latencies.add(lat);
            latency_seq.push_back(lat);
            queue.pop_front();
        }
        gpu_free = end;
        busy += svc;
        last_end = end;
        ++batches;
    }

    ServingResult r;
    r.requests = num_requests;
    r.duration = last_end;
    r.throughput = num_requests / last_end;
    r.mean_latency = latencies.mean();
    r.p50_latency = latencies.quantile(0.50);
    r.p95_latency = latencies.quantile(0.95);
    r.p99_latency = latencies.quantile(0.99);
    r.p999_latency = latencies.quantile(0.999);
    r.gpu_utilization = busy / last_end;
    r.avg_batch = static_cast<double>(num_requests) /
                  static_cast<double>(batches);

    // Overload detection: under a stable queue, late-run latencies
    // match mid-run ones; in overload the backlog (and thus latency)
    // grows without bound. Below the sample floor the heuristic has
    // no signal, and the verdict says so explicitly instead of
    // defaulting to "stable" (the pre-fix behavior let short probes
    // bless a saturated load).
    size_t n = latency_seq.size();
    if (n < static_cast<size_t>(kMinSaturationSamples)) {
        r.verdict = OverloadVerdict::Undersampled;
    } else {
        auto mean_range = [&](size_t lo, size_t hi) {
            double acc = 0.0;
            for (size_t j = lo; j < hi; ++j)
                acc += latency_seq[j];
            return acc / static_cast<double>(hi - lo);
        };
        // With a linearly growing backlog the tail-to-middle ratio
        // approaches 1.8 (0.9n vs 0.5n of linear growth); a stable
        // queue keeps it near 1. Split the difference.
        double mid = mean_range(2 * n / 5, 3 * n / 5);
        double tail = mean_range(4 * n / 5, n);
        r.verdict = tail > 1.45 * mid ? OverloadVerdict::Saturated
                                      : OverloadVerdict::Stable;
    }
    r.saturated = r.verdict == OverloadVerdict::Saturated;

    requests_ctr.add(static_cast<uint64_t>(num_requests));
    batches_ctr.add(static_cast<uint64_t>(batches));
    if (r.saturated)
        saturated_ctr.add();
    return r;
}

double
ServingSimulator::maxQpsUnderSlo(const InferenceWorkload &workload,
                                 double slo, double qps_hi,
                                 uint64_t seed,
                                 int64_t probe_requests) const
{
    if (!(slo > 0.0) || !std::isfinite(slo)) {
        throw std::invalid_argument(
            "ServingSimulator::maxQpsUnderSlo: slo must be positive "
            "and finite");
    }
    if (!(qps_hi > 1.0) || !std::isfinite(qps_hi)) {
        throw std::invalid_argument(
            "ServingSimulator::maxQpsUnderSlo: qps_hi must be > 1 "
            "and finite");
    }
    // The sample floor is enforced here, where it matters: a probe
    // too short to judge saturation could otherwise certify an
    // overloaded operating point.
    if (probe_requests < kMinSaturationSamples) {
        throw std::invalid_argument(
            "ServingSimulator::maxQpsUnderSlo: probe_requests must "
            "be >= " +
            std::to_string(kMinSaturationSamples) +
            " (the saturation-detector sample floor), got " +
            std::to_string(probe_requests));
    }
    obs::Span slo_span("inference.max_qps_under_slo");
    static obs::Counter &probes_ctr =
        obs::counter("inference.slo_probes");
    auto ok = [&](double qps) {
        probes_ctr.add();
        ServingResult r =
            run(workload, qps, probe_requests, seed);
        // Only an explicit Stable verdict passes: Saturated and
        // Undersampled both fail the probe.
        return r.verdict == OverloadVerdict::Stable &&
               r.p99_latency <= slo;
    };
    if (!ok(1.0))
        return 0.0;
    if (ok(qps_hi))
        return qps_hi;
    double lo = 1.0, hi = qps_hi;
    for (int iter = 0; iter < 24; ++iter) {
        double mid = 0.5 * (lo + hi);
        if (ok(mid))
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

} // namespace paichar::inference
