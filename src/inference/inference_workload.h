/**
 * @file
 * Inference workloads — the paper's stated future work ("we seek to
 * characterize inference workloads in our cluster using a similar
 * methodology", Sec VIII).
 *
 * An inference request is a forward pass: roughly one third of the
 * training step's FLOPs at the same batch size, no weight/gradient
 * traffic, and a per-request service time with a batch-independent
 * component (reading the weights once per launched batch) plus a
 * per-item component (activation compute and traffic). That cost
 * shape is what makes dynamic batching profitable and is the core of
 * the latency/throughput trade-off this subsystem characterizes.
 */

#ifndef PAICHAR_INFERENCE_INFERENCE_WORKLOAD_H
#define PAICHAR_INFERENCE_INFERENCE_WORKLOAD_H

#include <string>

#include "hw/hardware_config.h"
#include "workload/model_zoo.h"

namespace paichar::inference {

/** Per-request resource demands of a served model. */
struct InferenceWorkload
{
    std::string name;

    /** Forward-pass FLOPs per single request (batch of 1). */
    double flops_per_item = 0.0;
    /** Activation memory traffic per single request. */
    double act_bytes_per_item = 0.0;
    /** Input bytes copied host->GPU per request. */
    double input_bytes_per_item = 0.0;
    /** Parameter bytes streamed from HBM once per launched batch. */
    double weight_bytes = 0.0;

    /** Achieved efficiencies of the serving hardware. */
    workload::EfficiencyProfile efficiency;

    /**
     * Derive an inference workload from a training case study:
     * forward-only cost (training = forward + ~2x backward), per-item
     * demands obtained by dividing by the training batch size, and
     * the dense weights streamed per batch.
     */
    static InferenceWorkload
    fromTraining(const workload::CaseStudyModel &m);

    /**
     * GPU service seconds for one launched batch of @p batch items on
     * @p gpu (weights stream once; items add compute + activations).
     * Equals fixedTime + batch * itemTime.
     */
    double serviceTime(int batch, const hw::GpuSpec &gpu,
                       double launch_overhead) const;

    /**
     * The batch-independent component of one launch: kernel-launch
     * overhead plus the per-launch weight stream from HBM. This is
     * the cost continuous batching amortizes over windows of items.
     */
    double fixedTime(const hw::GpuSpec &gpu,
                     double launch_overhead) const;

    /** The per-item component: activation compute and traffic. */
    double itemTime(const hw::GpuSpec &gpu) const;

    /** PCIe seconds to stage @p batch inputs. */
    double inputTime(int batch, double pcie_bandwidth) const;
};

} // namespace paichar::inference

#endif // PAICHAR_INFERENCE_INFERENCE_WORKLOAD_H
