/**
 * @file
 * A discrete-event model server: Poisson request arrivals, a FIFO
 * request queue, greedy dynamic batching (whenever the GPU goes idle
 * it takes up to max_batch queued requests as one launch), input
 * staging over PCIe, and execution on one simulated GPU.
 *
 * Characterizes the latency/throughput trade-off of serving: per-
 * request latency percentiles versus offered load, attainable QPS
 * under a latency SLO, and the effect of the batching bound.
 *
 * This single-server simulator is the *reference* implementation the
 * testkit fleet oracle compares FleetSimulator against (a one-server
 * greedy fleet must reproduce it byte-for-byte; see
 * testkit/fleet_oracle.h). Input validation is real error handling
 * (std::invalid_argument in release builds too), not asserts, and the
 * overload verdict is explicit: a run too short to judge reports
 * OverloadVerdict::Undersampled instead of silently passing for
 * stable.
 */

#ifndef PAICHAR_INFERENCE_SERVING_SIM_H
#define PAICHAR_INFERENCE_SERVING_SIM_H

#include <cstdint>
#include <vector>

#include "hw/hardware_config.h"
#include "inference/inference_workload.h"
#include "stats/cdf.h"

namespace paichar::inference {

/**
 * The saturation verdict of one serving run.
 *
 * The detector compares late-run latencies to mid-run ones (an
 * unstable queue grows without bound, so the tail keeps climbing);
 * that comparison needs a minimum sample count to mean anything.
 * Runs shorter than kMinSaturationSamples report Undersampled — an
 * explicit "cannot judge", never a silent "stable".
 */
enum class OverloadVerdict
{
    /** Enough samples, queue stable. */
    Stable,
    /** Enough samples, backlog growing without bound. */
    Saturated,
    /** Too few completions to judge (< kMinSaturationSamples). */
    Undersampled,
};

/** CLI/report spelling ("stable" | "saturated" | "undersampled"). */
const char *toString(OverloadVerdict v);

/** Minimum completions the saturation detector needs to judge. */
inline constexpr int64_t kMinSaturationSamples = 100;

/** Serving configuration. */
struct ServingConfig
{
    /** Hardware the model is served on. */
    hw::ServerSpec server = hw::v100Testbed().server;
    /** Largest batch a single launch may aggregate. */
    int max_batch = 8;
    /** Kernel-launch overhead per batch. */
    double launch_overhead = 30e-6;
};

/** Measured serving behavior at one offered load. */
struct ServingResult
{
    /** Requests completed. */
    int64_t requests = 0;
    /** Wall-clock span of the simulation. */
    double duration = 0.0;
    /** Achieved request throughput (completions / duration). */
    double throughput = 0.0;
    /** Latency statistics (arrival to completion), seconds. */
    double mean_latency = 0.0;
    double p50_latency = 0.0;
    double p95_latency = 0.0;
    double p99_latency = 0.0;
    double p999_latency = 0.0;
    /** GPU busy fraction. */
    double gpu_utilization = 0.0;
    /** Mean launched batch size. */
    double avg_batch = 0.0;
    /** True if the queue was still growing at the end (overload). */
    bool saturated = false;
    /** Explicit saturation verdict (saturated == (verdict ==
     *  Saturated); Undersampled is *not* stable). */
    OverloadVerdict verdict = OverloadVerdict::Undersampled;
};

/** Simulates one model server. */
class ServingSimulator
{
  public:
    /**
     * @throws std::invalid_argument if cfg.max_batch < 1 or
     *         cfg.launch_overhead is negative or non-finite.
     */
    explicit ServingSimulator(ServingConfig cfg = ServingConfig{});

    /**
     * Serve @p num_requests Poisson arrivals at @p qps.
     *
     * @param workload Model being served.
     * @param qps      Offered load, requests per second (> 0).
     * @param num_requests Requests to simulate (>= 1).
     * @param seed     Arrival-process seed.
     * @throws std::invalid_argument if qps is non-positive or
     *         non-finite, or num_requests < 1.
     */
    ServingResult run(const InferenceWorkload &workload, double qps,
                      int64_t num_requests, uint64_t seed) const;

    /**
     * Largest offered load whose p99 latency stays within @p slo
     * seconds at a verdict of Stable, found by bisection over
     * [1, qps_hi] (0 if even idle latency violates the SLO).
     *
     * @param probe_requests Requests per probe run; must be at least
     *        kMinSaturationSamples so no probe can come back
     *        Undersampled and bless an overloaded operating point.
     * @throws std::invalid_argument if slo is non-positive or
     *         non-finite, qps_hi is not > 1 and finite, or
     *         probe_requests < kMinSaturationSamples.
     */
    double maxQpsUnderSlo(const InferenceWorkload &workload,
                          double slo, double qps_hi, uint64_t seed,
                          int64_t probe_requests = 20000) const;

    const ServingConfig &config() const { return cfg_; }

  private:
    ServingConfig cfg_;
};

} // namespace paichar::inference

#endif // PAICHAR_INFERENCE_SERVING_SIM_H
