/**
 * @file
 * A discrete-event model server: Poisson request arrivals, a FIFO
 * request queue, greedy dynamic batching (whenever the GPU goes idle
 * it takes up to max_batch queued requests as one launch), input
 * staging over PCIe, and execution on one simulated GPU.
 *
 * Characterizes the latency/throughput trade-off of serving: per-
 * request latency percentiles versus offered load, attainable QPS
 * under a latency SLO, and the effect of the batching bound.
 */

#ifndef PAICHAR_INFERENCE_SERVING_SIM_H
#define PAICHAR_INFERENCE_SERVING_SIM_H

#include <cstdint>
#include <vector>

#include "hw/hardware_config.h"
#include "inference/inference_workload.h"
#include "stats/cdf.h"

namespace paichar::inference {

/** Serving configuration. */
struct ServingConfig
{
    /** Hardware the model is served on. */
    hw::ServerSpec server = hw::v100Testbed().server;
    /** Largest batch a single launch may aggregate. */
    int max_batch = 8;
    /** Kernel-launch overhead per batch. */
    double launch_overhead = 30e-6;
};

/** Measured serving behavior at one offered load. */
struct ServingResult
{
    /** Requests completed. */
    int64_t requests = 0;
    /** Wall-clock span of the simulation. */
    double duration = 0.0;
    /** Achieved request throughput (completions / duration). */
    double throughput = 0.0;
    /** Latency statistics (arrival to completion), seconds. */
    double mean_latency = 0.0;
    double p50_latency = 0.0;
    double p95_latency = 0.0;
    double p99_latency = 0.0;
    /** GPU busy fraction. */
    double gpu_utilization = 0.0;
    /** Mean launched batch size. */
    double avg_batch = 0.0;
    /** True if the queue was still growing at the end (overload). */
    bool saturated = false;
};

/** Simulates one model server. */
class ServingSimulator
{
  public:
    explicit ServingSimulator(ServingConfig cfg = ServingConfig{});

    /**
     * Serve @p num_requests Poisson arrivals at @p qps.
     *
     * @param workload Model being served.
     * @param qps      Offered load, requests per second (> 0).
     * @param num_requests Requests to simulate (>= 1).
     * @param seed     Arrival-process seed.
     */
    ServingResult run(const InferenceWorkload &workload, double qps,
                      int64_t num_requests, uint64_t seed) const;

    /**
     * Largest offered load whose p99 latency stays within @p slo
     * seconds, found by bisection over [1, qps_hi] (0 if even idle
     * latency violates the SLO).
     */
    double maxQpsUnderSlo(const InferenceWorkload &workload,
                          double slo, double qps_hi,
                          uint64_t seed) const;

    const ServingConfig &config() const { return cfg_; }

  private:
    ServingConfig cfg_;
};

} // namespace paichar::inference

#endif // PAICHAR_INFERENCE_SERVING_SIM_H
