#include "inference_workload.h"

#include <cassert>

namespace paichar::inference {

InferenceWorkload
InferenceWorkload::fromTraining(const workload::CaseStudyModel &m)
{
    assert(m.features.batch_size > 0.0);
    InferenceWorkload w;
    w.name = m.name;
    // Training = forward + backward, with backward ~2x forward.
    const double fwd_fraction = 1.0 / 3.0;
    double batch = m.features.batch_size;
    w.flops_per_item = m.features.flop_count * fwd_fraction / batch;
    w.act_bytes_per_item =
        m.features.mem_access_bytes * fwd_fraction / batch;
    w.input_bytes_per_item = m.features.input_bytes / batch;
    // Inference serves trainable parameters only (no optimizer
    // state): half of the Table IV dense figure.
    w.weight_bytes = 0.5 * m.features.dense_weight_bytes;
    w.efficiency = m.measured_efficiency;
    return w;
}

double
InferenceWorkload::serviceTime(int batch, const hw::GpuSpec &gpu,
                               double launch_overhead) const
{
    assert(batch >= 1);
    return fixedTime(gpu, launch_overhead) + batch * itemTime(gpu);
}

double
InferenceWorkload::fixedTime(const hw::GpuSpec &gpu,
                             double launch_overhead) const
{
    double mem_rate = gpu.mem_bandwidth * efficiency.gpu_memory;
    return launch_overhead + weight_bytes / mem_rate;
}

double
InferenceWorkload::itemTime(const hw::GpuSpec &gpu) const
{
    double flops_rate = gpu.peak_flops * efficiency.gpu_flops;
    double mem_rate = gpu.mem_bandwidth * efficiency.gpu_memory;
    return flops_per_item / flops_rate +
           act_bytes_per_item / mem_rate;
}

double
InferenceWorkload::inputTime(int batch, double pcie_bandwidth) const
{
    assert(batch >= 1);
    double rate = pcie_bandwidth * efficiency.pcie;
    return batch * input_bytes_per_item / rate;
}

} // namespace paichar::inference
