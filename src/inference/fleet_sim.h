/**
 * @file
 * The SLO-driven serving-fleet simulator (DESIGN.md Sec 14): the
 * serving-side twin of the paper's hardware-evolution sweeps,
 * answering "how many servers does X QPS need under a Y-ms p99 SLO".
 *
 * A fleet is N identical single-GPU model servers fed by open-loop
 * arrival streams (one stream per served model; constant, diurnal or
 * bursty — stats/arrival.h). Each arriving request is routed to one
 * server (round-robin, least-queue, or power-of-two-choices), passes
 * admission control (a per-server queue-depth bound; over-limit
 * arrivals are rejected and counted), and is served under one of two
 * batching disciplines:
 *
 *  - Greedy (the seed ServingSimulator's): when the GPU goes idle it
 *    takes up to max_batch queued requests *of one model* as a
 *    single launch; everything in the launch completes together.
 *  - Continuous (iteration-level): items are served and complete
 *    individually, with the per-launch fixed cost (kernel launch +
 *    weight stream) amortized over windows of up to max_batch
 *    consecutive same-model items — the batch never blocks a
 *    latecomer for a full launch, which is the continuous-batching
 *    latency win.
 *
 * A reactive autoscaler (optional) samples mean queue depth per up
 * server on a fixed control interval and adds servers (visible only
 * after a provisioning lag) or drains them (stop routing, finish the
 * queue, then retire), bounded by [min_servers, max_servers].
 *
 * Determinism: the entire simulation is a single-threaded event loop
 * over totally ordered events (time, kind, server) with seed-pure
 * per-stream RNGs, so results are byte-identical for every --threads
 * and --shards setting, like every other subcommand. A one-server
 * greedy fleet with a constant stream reproduces the seed
 * ServingSimulator byte-for-byte (pinned by the testkit fleet
 * oracle).
 *
 * Per-request latencies also flow into the obs histogram registry
 * (`inference.fleet.latency_us`), so p50/p99/p999 appear in
 * --metrics / OpenMetrics output for free.
 */

#ifndef PAICHAR_INFERENCE_FLEET_SIM_H
#define PAICHAR_INFERENCE_FLEET_SIM_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "hw/hardware_config.h"
#include "inference/inference_workload.h"
#include "inference/serving_sim.h"
#include "stats/arrival.h"

namespace paichar::inference {

/** Request-to-server routing policy. */
enum class Routing
{
    RoundRobin,
    LeastQueue,
    PowerOfTwo,
};

/** Batching discipline (see file header). */
enum class Batching
{
    Greedy,
    Continuous,
};

/** CLI spellings. */
const char *toString(Routing r);
const char *toString(Batching b);
std::optional<Routing> routingFromString(const std::string &s);
std::optional<Batching> batchingFromString(const std::string &s);

/** Reactive autoscaler settings. */
struct AutoscalerConfig
{
    /** What the control loop reacts to. */
    enum class Mode
    {
        /** Mean queued requests per up server (the original). */
        QueueDepth,
        /**
         * Trailing-window p99 latency vs an SLO (`--autoscale=slo`):
         * scale up when the p99 of the completions observed since
         * the last control decision approaches the SLO, drain down
         * when it clears it with margin. The window quantile is
         * obs::nearestRankQuantile — the same statistic the timeline
         * `inference.fleet.latency_us.p99` series reports — but the
         * controller keeps its own window, so SLO autoscaling works
         * with no timeline attached.
         */
        SloLatency,
    };

    bool enabled = false;
    Mode mode = Mode::QueueDepth;
    /** Fleet-size bounds the controller may move within. */
    int min_servers = 1;
    int max_servers = 64;
    /** Seconds between control decisions (> 0). */
    double check_interval = 1.0;
    /** Seconds before a newly added server starts serving (>= 0). */
    double provision_lag = 10.0;
    /** Scale up when mean queued requests per up server exceeds. */
    double scale_up_depth = 4.0;
    /** Scale (drain) down when it falls below. */
    double scale_down_depth = 0.5;
    /** SloLatency: the p99 target in seconds (> 0). */
    double slo_latency = 0.0;
    /** Scale up when window p99 > slo_latency * slo_up_fraction. */
    double slo_up_fraction = 0.8;
    /** Drain down when window p99 < slo_latency *
     *  slo_down_fraction. */
    double slo_down_fraction = 0.35;
    /**
     * Hold (no decision) when the window saw fewer completions than
     * this — an undersampled p99 is noise, the same lesson as the
     * saturation detector's sample floor.
     */
    int slo_min_samples = 20;
};

/** Fleet shape and policies. */
struct FleetConfig
{
    /** Hardware of every server in the fleet. */
    hw::ServerSpec server = hw::v100Testbed().server;
    /** Servers up at t = 0. */
    int num_servers = 1;
    /** Largest batch (or continuous window) per launch. */
    int max_batch = 8;
    /** Kernel-launch overhead per launch. */
    double launch_overhead = 30e-6;
    Routing routing = Routing::RoundRobin;
    Batching batching = Batching::Greedy;
    /**
     * Admission control: reject an arrival when its routed server
     * already holds this many queued requests (0 = unbounded).
     */
    int admit_queue = 0;
    AutoscalerConfig autoscaler;
    /** Record a per-request log in the result (testkit oracle). */
    bool record_requests = false;
    /**
     * Record timeline probes (servers up, queued, arrival/reject/
     * completion rates, windowed latency quantiles) when a timeline
     * is active. Capacity bisection probes turn this off so only the
     * run the user asked about lands in the exported timeline.
     */
    bool record_timeline = true;
};

/** One served model and the arrival stream offering load for it. */
struct ModelLoad
{
    InferenceWorkload workload;
    stats::ArrivalConfig arrival;
};

/** Per-request trace entry (record_requests). */
struct RequestRecord
{
    double arrival = 0.0;
    /** Launch (or item-service) start; 0 when rejected. */
    double start = 0.0;
    /** Completion time; 0 when rejected. */
    double completion = 0.0;
    int server = -1;
    int model = 0;
    /** Size of the launch this request completed in (1-based). */
    int batch = 0;
    bool rejected = false;
};

/** Per-server accounting. */
struct ServerStats
{
    /** GPU busy seconds. */
    double busy = 0.0;
    /** Seconds the server was up (provisioned until retired/end). */
    double uptime = 0.0;
    /** Launches (greedy) or amortization windows (continuous). */
    int64_t batches = 0;
    /** Requests completed on this server. */
    int64_t items = 0;
};

/** Aggregate outcome of one fleet run. */
struct FleetResult
{
    int64_t offered = 0;
    int64_t admitted = 0;
    int64_t rejected = 0;
    int64_t completed = 0;
    /** Wall-clock span (last completion). */
    double duration = 0.0;
    /** Completions / duration. */
    double throughput = 0.0;
    double mean_latency = 0.0;
    double p50_latency = 0.0;
    double p95_latency = 0.0;
    double p99_latency = 0.0;
    double p999_latency = 0.0;
    double max_latency = 0.0;
    /** Fleet-wide busy seconds / up seconds. */
    double gpu_utilization = 0.0;
    /** Mean items per launch/window. */
    double avg_batch = 0.0;
    int64_t batches = 0;
    /** Same detector and sample floor as the single server. */
    OverloadVerdict verdict = OverloadVerdict::Undersampled;
    bool saturated = false;
    /** Autoscaler trajectory. */
    int peak_servers = 0;
    int final_servers = 0;
    int64_t scale_ups = 0;
    int64_t scale_downs = 0;
    std::vector<ServerStats> servers;
    /** Filled when FleetConfig::record_requests. */
    std::vector<RequestRecord> requests;
};

/** Simulates a multi-server, multi-model serving fleet. */
class FleetSimulator
{
  public:
    /**
     * @throws std::invalid_argument on num_servers < 1,
     *         max_batch < 1, negative/non-finite launch overhead,
     *         admit_queue < 0, or inconsistent autoscaler bounds.
     */
    explicit FleetSimulator(FleetConfig cfg);

    /**
     * Serve the first @p num_requests arrivals of the merged model
     * streams. Stream i draws from a private RNG derived from
     * (@p seed, i); stream 0's seed is exactly @p seed, so a
     * one-model fleet replays the single-server arrival sequence.
     *
     * @throws std::invalid_argument if models is empty,
     *         num_requests < 1, or any arrival config is invalid.
     */
    FleetResult run(const std::vector<ModelLoad> &models,
                    int64_t num_requests, uint64_t seed) const;

    const FleetConfig &config() const { return cfg_; }

  private:
    FleetConfig cfg_;
};

/**
 * Smallest fleet size in [1, max_servers] whose run over @p models
 * (scaled to @p num_requests arrivals from @p seed) reports a Stable
 * verdict, zero rejections, and p99 <= slo — found by bisection
 * (queueing delay is monotone in per-server load). Returns nullopt
 * when even max_servers misses the SLO.
 *
 * The probe at each size reuses @p cfg with num_servers overridden
 * and the autoscaler disabled (capacity planning wants a fixed
 * fleet).
 */
std::optional<int>
minServersForSlo(const FleetConfig &cfg,
                 const std::vector<ModelLoad> &models, double slo,
                 int max_servers, int64_t num_requests,
                 uint64_t seed);

} // namespace paichar::inference

#endif // PAICHAR_INFERENCE_FLEET_SIM_H
