/**
 * @file
 * The planner's shared cost-model interface. A candidate plan
 * (PlanSpec) is first *prepared* -- its passes run over the model's
 * op graph, producing the per-GPU shard graph plus the partition's
 * activation-exchange traffic -- and then *estimated* by a
 * CostModel:
 *
 *  - AnalyticalCostModel: fast closed-form estimate reusing
 *    core::AnalyticalModel (Sec II-B) with the model's measured
 *    Table VI efficiencies, plus kernel-launch overhead and the
 *    NVLink exchange term. Used to prune the plan space.
 *  - SimulatedCostModel: precise event-driven measurement via
 *    testbed::TrainingSimulator. Used on the analytically top-K
 *    candidates.
 *
 * Both models price communication through the same
 * collectives::SyncStrategy per-medium traffic accounting, and both
 * resolve placement through core::resolvePlacement() -- the planner
 * and ArchitectureAdvisor share one statement of feasibility.
 */

#ifndef PAICHAR_OPT_COST_MODEL_H
#define PAICHAR_OPT_COST_MODEL_H

#include <algorithm>
#include <string>
#include <vector>

#include "collectives/strategy.h"
#include "opt/passes.h"
#include "testbed/training_sim.h"
#include "workload/model_zoo.h"

namespace paichar::opt {

/**
 * The search dimensions of one candidate plan (Sec IV-D's MP/XLA and
 * architecture choice, widened with the hybrid-parallelism
 * dimensions: sub-graph partitioning, channel/filter splitting and
 * gradient-accumulation micro-batching). At most one of
 * partition_ways / channel_split_ways exceeds 1.
 */
struct PlanSpec
{
    bool mixed_precision = false;
    bool xla_fusion = false;
    workload::ArchType arch = workload::ArchType::AllReduceLocal;
    /** cNodes (total GPUs) after the placement rules. */
    int num_cnodes = 1;
    /** Sub-graph parallelism degree (transformer-shaped graphs). */
    int partition_ways = 1;
    /** Channel/filter parallelism degree (Conv-heavy graphs). */
    int channel_split_ways = 1;
    /** Gradient-accumulation micro-batches per step. */
    int micro_batches = 1;

    /** The model-parallel degree (either partition dimension). */
    int
    splitWays() const
    {
        return partition_ways > 1 ? partition_ways
                                  : channel_split_ways;
    }

    /** Data-parallel replicas: shard groups of splitWays() GPUs. */
    int
    dataParallel() const
    {
        return std::max(1, num_cnodes / splitWays());
    }

    /** True for the no-op plan on the given architecture. */
    bool
    isDefault() const
    {
        return !mixed_precision && !xla_fusion && splitWays() == 1 &&
               micro_batches == 1;
    }

    /** "MP+XLA+part4+acc2 on AllReduce-Local"-style label. */
    std::string label() const;

    /** Deterministic total order for tie-breaking sorts. */
    bool orderBefore(const PlanSpec &other) const;
};

/** A candidate with its passes applied, ready for cost evaluation. */
struct PreparedPlan
{
    PlanSpec spec;
    /** Per-GPU graph after the plan's passes. */
    workload::OpGraph graph;
    /** Original per-cNode demands (sharding is priced by the
     * strategy layer, not baked into the features). */
    workload::WorkloadFeatures features;
    /** Measured Table VI efficiencies in effect. */
    workload::EfficiencyProfile efficiency;
    /** Per-GPU NVLink activation exchange, one micro-batch. */
    double exchange_nvlink_bytes = 0.0;
    /** Per-pass before/after records. */
    std::vector<PassDiagnostics> diagnostics;
};

/** One cost-model verdict on a prepared plan. */
struct CostEstimate
{
    double step_time = 0.0;
    double data_time = 0.0;
    double compute_time = 0.0;
    double exchange_time = 0.0;
    double comm_time = 0.0;
    /** Eq 2 generalized: dp x batch x micro_batches / step_time. */
    double throughput = 0.0;
    /** Per-GPU per-step sync + exchange traffic by medium. */
    collectives::SyncTraffic traffic;
};

/** Interface shared by the analytical and simulated evaluators. */
class CostModel
{
  public:
    virtual ~CostModel() = default;

    /** Evaluator name for reports ("analytical" | "simulated"). */
    virtual std::string name() const = 0;

    /** Price one prepared plan. */
    virtual CostEstimate estimate(const PreparedPlan &plan) const = 0;
};

/** Closed-form estimate via core::AnalyticalModel. */
class AnalyticalCostModel final : public CostModel
{
  public:
    explicit AnalyticalCostModel(
        testbed::SimOptions opts = testbed::SimOptions{});

    std::string name() const override { return "analytical"; }
    CostEstimate estimate(const PreparedPlan &plan) const override;

  private:
    testbed::SimOptions opts_;
};

/** Event-driven measurement via testbed::TrainingSimulator. */
class SimulatedCostModel final : public CostModel
{
  public:
    explicit SimulatedCostModel(
        testbed::SimOptions opts = testbed::SimOptions{});

    std::string name() const override { return "simulated"; }
    CostEstimate estimate(const PreparedPlan &plan) const override;

    /** The raw testbed measurement behind estimate(). */
    testbed::StepResult simulate(const PreparedPlan &plan) const;

  private:
    testbed::SimOptions opts_;
};

/**
 * Run @p spec's passes over @p model's graph: mixed precision, XLA
 * fusion, then the partition pass (fusion first, so partition
 * boundaries see the fused tensors).
 */
PreparedPlan preparePlan(const workload::CaseStudyModel &model,
                         const PlanSpec &spec);

/** Samples one step trains: dp x batch_size x micro_batches. */
double samplesPerStep(const PlanSpec &spec, double batch_size);

/** Convert a raw testbed measurement into a CostEstimate. */
CostEstimate estimateFromResult(const PreparedPlan &plan,
                                const testbed::StepResult &r);

/**
 * Per-GPU per-step traffic of @p plan by medium: the architecture's
 * sync strategy at the sharded gradient volume, plus the partition's
 * NVLink activation exchange across all micro-batches.
 */
collectives::SyncTraffic planTraffic(const PreparedPlan &plan);

} // namespace paichar::opt

#endif // PAICHAR_OPT_COST_MODEL_H
