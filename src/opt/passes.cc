#include "passes.h"

#include <cassert>
#include <set>
#include <unordered_map>

#include "obs/obs.h"

namespace paichar::opt {

using workload::Op;
using workload::OpGraph;
using workload::OpId;
using workload::OpType;

MixedPrecisionPass::MixedPrecisionPass(double achieved_speedup)
    : achieved_speedup_(achieved_speedup)
{
    assert(achieved_speedup_ >= 1.0);
}

OpGraph
MixedPrecisionPass::run(const OpGraph &in) const
{
    OpGraph out;
    for (const Op &op : in.ops()) {
        Op copy = op;
        copy.id = -1; // reassigned by addOp
        if (workload::isComputeBound(op.type))
            copy.flops /= achieved_speedup_;
        out.addOp(std::move(copy));
    }
    return out;
}

XlaFusionPass::XlaFusionPass(int max_chain) : max_chain_(max_chain)
{
    assert(max_chain_ >= 2);
}

OpGraph
XlaFusionPass::run(const OpGraph &in) const
{
    const auto &ops = in.ops();
    const auto n = ops.size();

    // Consumer lists.
    std::vector<std::vector<OpId>> consumers(n);
    for (const Op &op : ops) {
        for (OpId src : op.inputs)
            consumers[static_cast<size_t>(src)].push_back(op.id);
    }

    // Greedy maximal chains: extend through an op's unique fusable
    // consumer. chain_of[i] = index of the chain containing op i, or
    // -1.
    std::vector<int> chain_of(n, -1);
    std::vector<std::vector<OpId>> chains;
    for (const Op &op : ops) {
        if (!workload::isFusable(op.type) || chain_of[op.id] != -1)
            continue;
        std::vector<OpId> chain{op.id};
        OpId cur = op.id;
        while (static_cast<int>(chain.size()) < max_chain_) {
            const auto &cons = consumers[static_cast<size_t>(cur)];
            if (cons.size() != 1)
                break;
            const Op &next = in.op(cons[0]);
            if (!workload::isFusable(next.type) ||
                chain_of[next.id] != -1) {
                break;
            }
            chain.push_back(next.id);
            cur = next.id;
        }
        if (chain.size() >= 2) {
            for (OpId id : chain)
                chain_of[id] = static_cast<int>(chains.size());
            chains.push_back(std::move(chain));
        }
    }

    // Rebuild: each fused chain is emitted at its *tail* position,
    // where every external input (including side inputs of interior
    // members, which may be produced after the head) already exists
    // in the output graph. Nothing else can reference an interior
    // member, because extension requires a unique fusable consumer.
    OpGraph out;
    std::vector<OpId> remap(n, -1);
    for (const Op &op : ops) {
        int ci = chain_of[op.id];
        if (ci != -1) {
            const auto &chain = chains[static_cast<size_t>(ci)];
            if (op.id != chain.back())
                continue; // deferred to the tail
            std::set<OpId> members(chain.begin(), chain.end());
            std::set<OpId> externals;
            double flops = 0.0;
            for (OpId id : chain) {
                const Op &m = in.op(id);
                flops += m.flops;
                for (OpId src : m.inputs) {
                    if (!members.count(src))
                        externals.insert(src);
                }
            }
            const Op &head = in.op(chain.front());
            const Op &last = in.op(chain.back());
            Op fused;
            fused.name = "fused/" + head.name + "+" +
                         std::to_string(chain.size() - 1);
            fused.type = OpType::Fused;
            fused.flops = flops;
            // Traffic: read each external input once, write the final
            // output once; intermediates never touch device memory.
            fused.mem_bytes = last.output_bytes;
            for (OpId src : externals)
                fused.mem_bytes += in.op(src).output_bytes;
            fused.output_bytes = last.output_bytes;
            for (OpId src : externals) {
                assert(remap[src] != -1);
                fused.inputs.push_back(remap[src]);
            }
            OpId fid = out.addOp(std::move(fused));
            for (OpId id : chain)
                remap[id] = fid;
            continue;
        }
        Op copy = op;
        copy.id = -1;
        copy.inputs.clear();
        std::set<OpId> seen;
        for (OpId src : op.inputs) {
            assert(remap[src] != -1);
            if (seen.insert(remap[src]).second)
                copy.inputs.push_back(remap[src]);
        }
        remap[op.id] = out.addOp(std::move(copy));
    }
    assert(out.validate());
    return out;
}

SubGraphPartitionPass::SubGraphPartitionPass(int ways) : ways_(ways)
{
    assert(ways_ >= 2);
}

OpGraph
SubGraphPartitionPass::run(const OpGraph &in) const
{
    // The per-GPU shard in expectation: 1/ways of every operation's
    // demands; input loading stays per-GPU (the input pipeline feeds
    // each shard its boundary slice at full batch volume --
    // a conservative accounting choice).
    OpGraph out;
    for (const Op &op : in.ops()) {
        Op copy = op;
        copy.id = -1;
        if (op.type != OpType::DataLoad) {
            copy.flops /= ways_;
            copy.mem_bytes /= ways_;
            copy.output_bytes /= ways_;
        }
        out.addOp(std::move(copy));
    }
    return out;
}

double
SubGraphPartitionPass::exchangeBytes(const OpGraph &in) const
{
    // Interior edges (producer has a consumer) cross shards with
    // probability (ways-1)/ways under a uniform spread of whole ops;
    // each GPU sends/receives its 1/ways share of the cut.
    std::vector<bool> has_consumer(in.size(), false);
    for (const Op &op : in.ops()) {
        for (OpId src : op.inputs)
            has_consumer[static_cast<size_t>(src)] = true;
    }
    double interior = 0.0;
    for (const Op &op : in.ops()) {
        if (op.type != OpType::DataLoad &&
            has_consumer[static_cast<size_t>(op.id)]) {
            interior += op.output_bytes;
        }
    }
    double w = ways_;
    return (w - 1.0) / w * interior / w;
}

ChannelFilterSplitPass::ChannelFilterSplitPass(int ways) : ways_(ways)
{
    assert(ways_ >= 2);
}

namespace {

/** Ops that ride on conv activations and split with them. */
bool
splitsWithConv(OpType t)
{
    return t == OpType::Conv || t == OpType::ElementWise ||
           t == OpType::Normalization || t == OpType::Fused;
}

} // namespace

OpGraph
ChannelFilterSplitPass::run(const OpGraph &in) const
{
    OpGraph out;
    for (const Op &op : in.ops()) {
        Op copy = op;
        copy.id = -1;
        if (splitsWithConv(op.type)) {
            copy.flops /= ways_;
            copy.mem_bytes /= ways_;
            copy.output_bytes /= ways_;
        }
        out.addOp(std::move(copy));
    }
    return out;
}

double
ChannelFilterSplitPass::exchangeBytes(const OpGraph &in) const
{
    // Channel-sum reassembly: a ring all-reduce over each conv's
    // activation share, 2(ways-1)/ways of the per-GPU 1/ways slice.
    double conv_out = 0.0;
    for (const Op &op : in.ops()) {
        if (op.type == OpType::Conv)
            conv_out += op.output_bytes;
    }
    double w = ways_;
    return 2.0 * (w - 1.0) / w * conv_out / w;
}

PassManager &
PassManager::add(std::unique_ptr<Pass> pass)
{
    assert(pass);
    passes_.push_back(std::move(pass));
    return *this;
}

OpGraph
PassManager::run(const OpGraph &in) const
{
    // One span per pipeline run (pass-grained, not per-op).
    obs::Span span("opt.pass_pipeline",
                   static_cast<int64_t>(in.ops().size()));
    static obs::Counter &passes_run = obs::counter("opt.passes_run");
    OpGraph g = in; // copy
    for (const auto &pass : passes_)
        g = pass->run(g);
    passes_run.add(passes_.size());
    return g;
}

PassManager::PipelineResult
PassManager::runDiagnosed(const OpGraph &in) const
{
    obs::Span span("opt.pass_pipeline",
                   static_cast<int64_t>(in.ops().size()));
    static obs::Counter &passes_run = obs::counter("opt.passes_run");
    PipelineResult result;
    result.graph = in;
    for (const auto &pass : passes_) {
        obs::Span pass_span(
            obs::internName("opt.pass." + pass->name()));
        PassDiagnostics d;
        d.pass = pass->name();
        auto before = result.graph.totals();
        d.ops_before = result.graph.size();
        d.kernels_before = before.num_kernels;
        d.flops_before = before.flops;
        d.mem_bytes_before = before.mem_access_bytes;
        d.exchange_nvlink_bytes =
            pass->exchangeBytes(result.graph);
        result.graph = pass->run(result.graph);
        auto after = result.graph.totals();
        d.ops_after = result.graph.size();
        d.kernels_after = after.num_kernels;
        d.flops_after = after.flops;
        d.mem_bytes_after = after.mem_access_bytes;
        result.exchange_nvlink_bytes += d.exchange_nvlink_bytes;
        result.diagnostics.push_back(std::move(d));
    }
    passes_run.add(passes_.size());
    return result;
}

std::vector<std::string>
PassManager::names() const
{
    std::vector<std::string> out;
    out.reserve(passes_.size());
    for (const auto &p : passes_)
        out.push_back(p->name());
    return out;
}

} // namespace paichar::opt
