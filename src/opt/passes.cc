#include "passes.h"

#include <cassert>
#include <set>
#include <unordered_map>

#include "obs/obs.h"

namespace paichar::opt {

using workload::Op;
using workload::OpGraph;
using workload::OpId;
using workload::OpType;

MixedPrecisionPass::MixedPrecisionPass(double achieved_speedup)
    : achieved_speedup_(achieved_speedup)
{
    assert(achieved_speedup_ >= 1.0);
}

OpGraph
MixedPrecisionPass::run(const OpGraph &in) const
{
    OpGraph out;
    for (const Op &op : in.ops()) {
        Op copy = op;
        copy.id = -1; // reassigned by addOp
        if (workload::isComputeBound(op.type))
            copy.flops /= achieved_speedup_;
        out.addOp(std::move(copy));
    }
    return out;
}

XlaFusionPass::XlaFusionPass(int max_chain) : max_chain_(max_chain)
{
    assert(max_chain_ >= 2);
}

OpGraph
XlaFusionPass::run(const OpGraph &in) const
{
    const auto &ops = in.ops();
    const auto n = ops.size();

    // Consumer lists.
    std::vector<std::vector<OpId>> consumers(n);
    for (const Op &op : ops) {
        for (OpId src : op.inputs)
            consumers[static_cast<size_t>(src)].push_back(op.id);
    }

    // Greedy maximal chains: extend through an op's unique fusable
    // consumer. chain_of[i] = index of the chain containing op i, or
    // -1.
    std::vector<int> chain_of(n, -1);
    std::vector<std::vector<OpId>> chains;
    for (const Op &op : ops) {
        if (!workload::isFusable(op.type) || chain_of[op.id] != -1)
            continue;
        std::vector<OpId> chain{op.id};
        OpId cur = op.id;
        while (static_cast<int>(chain.size()) < max_chain_) {
            const auto &cons = consumers[static_cast<size_t>(cur)];
            if (cons.size() != 1)
                break;
            const Op &next = in.op(cons[0]);
            if (!workload::isFusable(next.type) ||
                chain_of[next.id] != -1) {
                break;
            }
            chain.push_back(next.id);
            cur = next.id;
        }
        if (chain.size() >= 2) {
            for (OpId id : chain)
                chain_of[id] = static_cast<int>(chains.size());
            chains.push_back(std::move(chain));
        }
    }

    // Rebuild: each fused chain is emitted at its *tail* position,
    // where every external input (including side inputs of interior
    // members, which may be produced after the head) already exists
    // in the output graph. Nothing else can reference an interior
    // member, because extension requires a unique fusable consumer.
    OpGraph out;
    std::vector<OpId> remap(n, -1);
    for (const Op &op : ops) {
        int ci = chain_of[op.id];
        if (ci != -1) {
            const auto &chain = chains[static_cast<size_t>(ci)];
            if (op.id != chain.back())
                continue; // deferred to the tail
            std::set<OpId> members(chain.begin(), chain.end());
            std::set<OpId> externals;
            double flops = 0.0;
            for (OpId id : chain) {
                const Op &m = in.op(id);
                flops += m.flops;
                for (OpId src : m.inputs) {
                    if (!members.count(src))
                        externals.insert(src);
                }
            }
            const Op &head = in.op(chain.front());
            const Op &last = in.op(chain.back());
            Op fused;
            fused.name = "fused/" + head.name + "+" +
                         std::to_string(chain.size() - 1);
            fused.type = OpType::Fused;
            fused.flops = flops;
            // Traffic: read each external input once, write the final
            // output once; intermediates never touch device memory.
            fused.mem_bytes = last.output_bytes;
            for (OpId src : externals)
                fused.mem_bytes += in.op(src).output_bytes;
            fused.output_bytes = last.output_bytes;
            for (OpId src : externals) {
                assert(remap[src] != -1);
                fused.inputs.push_back(remap[src]);
            }
            OpId fid = out.addOp(std::move(fused));
            for (OpId id : chain)
                remap[id] = fid;
            continue;
        }
        Op copy = op;
        copy.id = -1;
        copy.inputs.clear();
        std::set<OpId> seen;
        for (OpId src : op.inputs) {
            assert(remap[src] != -1);
            if (seen.insert(remap[src]).second)
                copy.inputs.push_back(remap[src]);
        }
        remap[op.id] = out.addOp(std::move(copy));
    }
    assert(out.validate());
    return out;
}

PassManager &
PassManager::add(std::unique_ptr<Pass> pass)
{
    assert(pass);
    passes_.push_back(std::move(pass));
    return *this;
}

OpGraph
PassManager::run(const OpGraph &in) const
{
    // One span per pipeline run (pass-grained, not per-op).
    obs::Span span("opt.pass_pipeline",
                   static_cast<int64_t>(in.ops().size()));
    static obs::Counter &passes_run = obs::counter("opt.passes_run");
    OpGraph g = in; // copy
    for (const auto &pass : passes_)
        g = pass->run(g);
    passes_run.add(passes_.size());
    return g;
}

std::vector<std::string>
PassManager::names() const
{
    std::vector<std::string> out;
    out.reserve(passes_.size());
    for (const auto &p : passes_)
        out.push_back(p->name());
    return out;
}

} // namespace paichar::opt
