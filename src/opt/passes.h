/**
 * @file
 * Graph optimization passes evaluated in Sec IV-D (Fig 13):
 *
 *  - MixedPrecisionPass: run TensorCore-eligible compute kernels
 *    (MatMul/Conv) in FP16 mixed precision. Volta's peak is 8x FP32,
 *    but the paper measures ~2.8x achieved on MatMul; the pass scales
 *    eligible ops' effective FLOP demand by the achieved factor.
 *
 *  - XlaFusionPass: XLA-style operation fusion. Maximal chains of
 *    fusable (element-wise / normalization / reduction) operations
 *    collapse into one kernel whose memory traffic is only the chain's
 *    external inputs plus its final output -- intermediates stay in
 *    registers/cache -- and which costs a single kernel launch.
 */

#ifndef PAICHAR_OPT_PASSES_H
#define PAICHAR_OPT_PASSES_H

#include <memory>
#include <string>
#include <vector>

#include "workload/op_graph.h"

namespace paichar::opt {

/** A graph-to-graph transformation. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Pass name for reports. */
    virtual std::string name() const = 0;

    /** Produce the transformed graph (input is untouched). */
    virtual workload::OpGraph run(const workload::OpGraph &in) const = 0;
};

/** TensorCore mixed precision for MatMul/Conv. */
class MixedPrecisionPass final : public Pass
{
  public:
    /**
     * @param achieved_speedup Achieved compute speedup on eligible
     *        ops (paper: ~2.8x on MatMul; hardware peak would be 8x).
     */
    explicit MixedPrecisionPass(double achieved_speedup = 2.8);

    std::string name() const override { return "mixed-precision"; }
    workload::OpGraph run(const workload::OpGraph &in) const override;

    double achievedSpeedup() const { return achieved_speedup_; }

  private:
    double achieved_speedup_;
};

/** XLA-style fusion of element-wise chains. */
class XlaFusionPass final : public Pass
{
  public:
    /**
     * @param max_chain Upper bound on ops merged into one fusion
     *        (rule-based fusers bound region size; Sec VI-A2).
     */
    explicit XlaFusionPass(int max_chain = 16);

    std::string name() const override { return "xla-fusion"; }
    workload::OpGraph run(const workload::OpGraph &in) const override;

  private:
    int max_chain_;
};

/** Applies a sequence of passes in order. */
class PassManager
{
  public:
    /** Append a pass; returns *this for chaining. */
    PassManager &add(std::unique_ptr<Pass> pass);

    /** Run all passes over @p in. */
    workload::OpGraph run(const workload::OpGraph &in) const;

    /** Names of the registered passes, in order. */
    std::vector<std::string> names() const;

  private:
    std::vector<std::unique_ptr<Pass>> passes_;
};

} // namespace paichar::opt

#endif // PAICHAR_OPT_PASSES_H
