/**
 * @file
 * Graph optimization passes. The first two are the techniques
 * evaluated in Sec IV-D (Fig 13); the partition passes extend the
 * plan space to the hybrid-parallelism strategies of the follow-on
 * literature (ROADMAP item 4):
 *
 *  - MixedPrecisionPass: run TensorCore-eligible compute kernels
 *    (MatMul/Conv) in FP16 mixed precision. Volta's peak is 8x FP32,
 *    but the paper measures ~2.8x achieved on MatMul; the pass scales
 *    eligible ops' effective FLOP demand by the achieved factor.
 *
 *  - XlaFusionPass: XLA-style operation fusion. Maximal chains of
 *    fusable (element-wise / normalization / reduction) operations
 *    collapse into one kernel whose memory traffic is only the chain's
 *    external inputs plus its final output -- intermediates stay in
 *    registers/cache -- and which costs a single kernel launch.
 *
 *  - SubGraphPartitionPass: per-layer sub-graph parallelism for
 *    transformer-shaped graphs (SUPER, Jain et al.): the step graph
 *    is split into `ways` shards of whole operations; each GPU
 *    executes 1/ways of the work and boundary activations cross the
 *    NVLink mesh.
 *
 *  - ChannelFilterSplitPass: channel/filter parallelism for
 *    Conv-heavy graphs (Dryden et al., SC'19 / LBANN): convolutions
 *    and their pointwise successors split along the channel/filter
 *    dimension; halo/activation reassembly costs an NVLink exchange
 *    proportional to the conv activations.
 *
 * Passes transform graphs only; the per-GPU traffic a partition pass
 * implies is reported via exchangeBytes() and accounted by the
 * planner's cost models as per-medium SyncTraffic, so communication
 * cost stays honest. PassManager::runDiagnosed() additionally
 * returns structured per-pass diagnostics (op/kernel/FLOP/traffic
 * deltas) for reports and the `paichar plan` CLI.
 */

#ifndef PAICHAR_OPT_PASSES_H
#define PAICHAR_OPT_PASSES_H

#include <memory>
#include <string>
#include <vector>

#include "workload/op_graph.h"

namespace paichar::opt {

/** A graph-to-graph transformation. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Pass name for reports. */
    virtual std::string name() const = 0;

    /** Produce the transformed graph (input is untouched). */
    virtual workload::OpGraph run(const workload::OpGraph &in) const = 0;

    /**
     * Per-GPU boundary-activation bytes (one micro-batch) this pass
     * moves across the NVLink mesh when applied to @p in. Non-zero
     * only for partition passes.
     */
    virtual double
    exchangeBytes(const workload::OpGraph &in) const
    {
        (void)in;
        return 0.0;
    }
};

/** Structured before/after record of one pass application. */
struct PassDiagnostics
{
    std::string pass;
    size_t ops_before = 0;
    size_t ops_after = 0;
    int kernels_before = 0;
    int kernels_after = 0;
    double flops_before = 0.0;
    double flops_after = 0.0;
    double mem_bytes_before = 0.0;
    double mem_bytes_after = 0.0;
    /** Per-GPU NVLink activation traffic the pass adds per step. */
    double exchange_nvlink_bytes = 0.0;
};

/** TensorCore mixed precision for MatMul/Conv. */
class MixedPrecisionPass final : public Pass
{
  public:
    /**
     * @param achieved_speedup Achieved compute speedup on eligible
     *        ops (paper: ~2.8x on MatMul; hardware peak would be 8x).
     */
    explicit MixedPrecisionPass(double achieved_speedup = 2.8);

    std::string name() const override { return "mixed-precision"; }
    workload::OpGraph run(const workload::OpGraph &in) const override;

    double achievedSpeedup() const { return achieved_speedup_; }

  private:
    double achieved_speedup_;
};

/** XLA-style fusion of element-wise chains. */
class XlaFusionPass final : public Pass
{
  public:
    /**
     * @param max_chain Upper bound on ops merged into one fusion
     *        (rule-based fusers bound region size; Sec VI-A2).
     */
    explicit XlaFusionPass(int max_chain = 16);

    std::string name() const override { return "xla-fusion"; }
    workload::OpGraph run(const workload::OpGraph &in) const override;

  private:
    int max_chain_;
};

/**
 * Sub-graph parallelism: distribute whole operations over `ways`
 * GPUs inside one server. The produced graph is the per-GPU shard
 * in expectation -- every non-DataLoad op's demands divide by
 * `ways` (exact conservation: ways x shard totals == original).
 * Boundary tensors crossing shards move over NVLink; with ops
 * spread uniformly, an expected (ways-1)/ways of the interior
 * edges cross, and each GPU carries a 1/ways share of that cut.
 */
class SubGraphPartitionPass final : public Pass
{
  public:
    explicit SubGraphPartitionPass(int ways);

    std::string name() const override { return "subgraph-partition"; }
    workload::OpGraph run(const workload::OpGraph &in) const override;
    double
    exchangeBytes(const workload::OpGraph &in) const override;

    int ways() const { return ways_; }

  private:
    int ways_;
};

/**
 * Channel/filter parallelism: convolutions (and the pointwise /
 * normalization / fused ops riding on their activations) split along
 * the channel dimension over `ways` GPUs. Compute-heavy MatMul,
 * reductions and embedding lookups stay replicated (their demands
 * are untouched). Each split conv costs an activation all-reduce
 * over the NVLink mesh to reassemble channel sums: per GPU,
 * 2(ways-1)/ways of its 1/ways activation share, per conv.
 */
class ChannelFilterSplitPass final : public Pass
{
  public:
    explicit ChannelFilterSplitPass(int ways);

    std::string name() const override { return "channel-split"; }
    workload::OpGraph run(const workload::OpGraph &in) const override;
    double
    exchangeBytes(const workload::OpGraph &in) const override;

    int ways() const { return ways_; }

  private:
    int ways_;
};

/** Applies a sequence of passes in order. */
class PassManager
{
  public:
    /** A pipeline run with per-pass diagnostics. */
    struct PipelineResult
    {
        workload::OpGraph graph;
        std::vector<PassDiagnostics> diagnostics;
        /** Sum of the passes' per-GPU NVLink exchange traffic. */
        double exchange_nvlink_bytes = 0.0;
    };

    /** Append a pass; returns *this for chaining. */
    PassManager &add(std::unique_ptr<Pass> pass);

    /** Run all passes over @p in. */
    workload::OpGraph run(const workload::OpGraph &in) const;

    /** Run all passes, collecting per-pass diagnostics. */
    PipelineResult runDiagnosed(const workload::OpGraph &in) const;

    /** Names of the registered passes, in order. */
    std::vector<std::string> names() const;

  private:
    std::vector<std::unique_ptr<Pass>> passes_;
};

} // namespace paichar::opt

#endif // PAICHAR_OPT_PASSES_H
