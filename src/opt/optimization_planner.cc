#include "optimization_planner.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "core/arch_feasibility.h"
#include "obs/obs.h"

namespace paichar::opt {

using workload::ArchType;
using workload::CaseStudyModel;

namespace {

/** Conv share of the graph's compute-bound FLOPs exceeds 50%. */
bool
convHeavy(const workload::OpGraph &graph)
{
    double conv = 0.0;
    auto totals = graph.totals();
    for (const workload::Op &op : graph.ops()) {
        if (op.type == workload::OpType::Conv)
            conv += op.flops;
    }
    return totals.flops > 0.0 && conv > 0.5 * totals.flops;
}

/** Analytically prepared candidate. */
struct Candidate
{
    PreparedPlan prep;
    CostEstimate analytical;
};

/** Indices of @p ests sorted by throughput desc, spec tiebreak. */
std::vector<size_t>
rankByThroughput(const std::vector<PlanSpec> &specs,
                 const std::vector<double> &throughput)
{
    std::vector<size_t> order(specs.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) {
                  if (throughput[a] != throughput[b])
                      return throughput[a] > throughput[b];
                  return specs[a].orderBefore(specs[b]);
              });
    return order;
}

} // namespace

OptimizationPlanner::OptimizationPlanner(PlannerConfig cfg)
    : cfg_(std::move(cfg))
{
    assert(cfg_.gpu_memory_bytes > 0.0);
    assert(cfg_.beam_width >= 1);
}

std::vector<PlanSpec>
OptimizationPlanner::enumerate(const CaseStudyModel &model) const
{
    const auto &srv = cfg_.sim.cluster.server;
    const bool conv_heavy = convHeavy(model.graph);

    std::vector<ArchType> archs{model.arch};
    if (cfg_.explore_architectures) {
        for (ArchType a : workload::kAllArchTypes) {
            if (a != model.arch)
                archs.push_back(a);
        }
    }

    // The partition dimension matching the graph shape: channel/
    // filter splitting for Conv-dominated graphs, sub-graph
    // partitioning otherwise; the dimensions never combine.
    std::vector<int> ways_options{1};
    const bool partition_enabled = conv_heavy
                                       ? cfg_.enable_channel_split
                                       : cfg_.enable_subgraph_partition;
    if (partition_enabled) {
        for (int w : cfg_.split_ways) {
            if (w > 1)
                ways_options.push_back(w);
        }
    }

    std::vector<int> micro_options{1};
    if (cfg_.enable_micro_batching) {
        for (int k : cfg_.micro_batch_options) {
            if (k > 1)
                micro_options.push_back(k);
        }
    }

    std::vector<bool> mp_options{false};
    if (cfg_.enable_mixed_precision)
        mp_options.push_back(true);
    std::vector<bool> xla_options{false};
    if (cfg_.enable_xla_fusion)
        xla_options.push_back(true);

    std::vector<PlanSpec> specs;
    for (ArchType arch : archs) {
        for (int ways : ways_options) {
            core::Placement p = core::resolvePlacement(
                model.features, arch, model.num_cnodes, srv,
                cfg_.gpu_memory_bytes, ways);
            if (!p.feasible)
                continue;
            for (bool mp : mp_options) {
                for (bool xla : xla_options) {
                    for (int micro : micro_options) {
                        PlanSpec spec;
                        spec.mixed_precision = mp;
                        spec.xla_fusion = xla;
                        spec.arch = arch;
                        spec.num_cnodes = p.num_cnodes;
                        if (ways > 1) {
                            if (conv_heavy)
                                spec.channel_split_ways = ways;
                            else
                                spec.partition_ways = ways;
                        }
                        spec.micro_batches = micro;
                        specs.push_back(spec);
                    }
                }
            }
        }
    }
    return specs;
}

std::vector<PlanSpec>
OptimizationPlanner::beamSearch(const CaseStudyModel &model,
                                runtime::ThreadPool *pool) const
{
    AnalyticalCostModel analytical(cfg_.sim);
    // Prune a spec pool to the analytically best beam_width specs.
    auto prune = [&](std::vector<PlanSpec> specs) {
        auto throughput = runtime::parallelMap<double>(
            pool, specs.size(), [&](size_t i) {
                return analytical
                    .estimate(preparePlan(model, specs[i]))
                    .throughput;
            });
        auto order = rankByThroughput(specs, throughput);
        std::vector<PlanSpec> kept;
        size_t width = static_cast<size_t>(cfg_.beam_width);
        for (size_t idx : order) {
            if (kept.size() >= width)
                break;
            kept.push_back(specs[idx]);
        }
        return kept;
    };

    // Stage 1: placement beam -- the default plan on every feasible
    // (architecture x partition degree) pair.
    std::vector<PlanSpec> beam;
    {
        PlannerConfig seed_cfg = cfg_;
        seed_cfg.enable_mixed_precision = false;
        seed_cfg.enable_xla_fusion = false;
        seed_cfg.enable_micro_batching = false;
        beam = prune(
            OptimizationPlanner(seed_cfg).enumerate(model));
    }

    // Stages 2-4: branch one dimension at a time, re-pruning.
    auto branch = [&](bool enabled, auto mutate) {
        if (!enabled)
            return;
        std::vector<PlanSpec> pool_specs = beam;
        for (const PlanSpec &s : beam)
            mutate(s, pool_specs);
        beam = prune(std::move(pool_specs));
    };
    branch(cfg_.enable_mixed_precision,
           [](const PlanSpec &s, std::vector<PlanSpec> &out) {
               PlanSpec v = s;
               v.mixed_precision = true;
               out.push_back(v);
           });
    branch(cfg_.enable_xla_fusion,
           [](const PlanSpec &s, std::vector<PlanSpec> &out) {
               PlanSpec v = s;
               v.xla_fusion = true;
               out.push_back(v);
           });
    branch(cfg_.enable_micro_batching,
           [this](const PlanSpec &s, std::vector<PlanSpec> &out) {
               for (int k : cfg_.micro_batch_options) {
                   if (k <= 1)
                       continue;
                   PlanSpec v = s;
                   v.micro_batches = k;
                   out.push_back(v);
               }
           });

    // The baseline must be in the pool for speedup normalization.
    bool has_baseline = false;
    for (const PlanSpec &s : beam) {
        if (s.isDefault() && s.arch == model.arch)
            has_baseline = true;
    }
    if (!has_baseline) {
        core::Placement p = core::resolvePlacement(
            model.features, model.arch, model.num_cnodes,
            cfg_.sim.cluster.server, cfg_.gpu_memory_bytes);
        assert(p.feasible);
        PlanSpec base;
        base.arch = model.arch;
        base.num_cnodes = p.num_cnodes;
        beam.push_back(base);
    }
    return beam;
}

std::vector<Plan>
OptimizationPlanner::evaluate(const CaseStudyModel &model,
                              runtime::ThreadPool *pool) const
{
    // Plan-grained instrumentation: one span per evaluate() call,
    // one counter bump per candidate plan priced.
    obs::Span span("opt.evaluate");
    static obs::Counter &plans_ctr =
        obs::counter("opt.plans_evaluated");

    std::vector<PlanSpec> specs = cfg_.search == SearchMode::Beam
                                      ? beamSearch(model, pool)
                                      : enumerate(model);
    assert(!specs.empty());
    plans_ctr.add(specs.size());

    // Phase 1: prepare + fast analytical estimate, every candidate.
    AnalyticalCostModel analytical(cfg_.sim);
    auto cands = runtime::parallelMap<Candidate>(
        pool, specs.size(), [&](size_t i) {
            Candidate c;
            c.prep = preparePlan(model, specs[i]);
            c.analytical = analytical.estimate(c.prep);
            return c;
        });

    size_t base = specs.size();
    for (size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].isDefault() && specs[i].arch == model.arch)
            base = i;
    }
    assert(base < specs.size() && "baseline plan must be feasible");

    // Phase 2: simulate the analytically top-K candidates, plus the
    // baseline (always measured, so speedups are measured-vs-
    // measured).
    std::vector<double> ana_tp(specs.size());
    for (size_t i = 0; i < specs.size(); ++i)
        ana_tp[i] = cands[i].analytical.throughput;
    auto order = rankByThroughput(specs, ana_tp);

    std::vector<char> simulate(specs.size(), 0);
    simulate[base] = 1;
    size_t budget = cfg_.top_k <= 0
                        ? specs.size()
                        : static_cast<size_t>(cfg_.top_k);
    for (size_t idx : order) {
        if (budget == 0)
            break;
        if (idx == base)
            continue; // simulated regardless, not charged
        simulate[idx] = 1;
        --budget;
    }
    std::vector<size_t> sel;
    for (size_t i = 0; i < specs.size(); ++i) {
        if (simulate[i])
            sel.push_back(i);
    }

    SimulatedCostModel sim(cfg_.sim);
    auto results = runtime::parallelMap<testbed::StepResult>(
        pool, sel.size(),
        [&](size_t k) { return sim.simulate(cands[sel[k]].prep); });

    // Phase 3: assemble and rank.
    std::vector<Plan> plans(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        plans[i].spec = specs[i];
        plans[i].analytical = cands[i].analytical;
        plans[i].diagnostics = std::move(cands[i].prep.diagnostics);
        plans[i].throughput = cands[i].analytical.throughput;
    }
    for (size_t k = 0; k < sel.size(); ++k) {
        Plan &p = plans[sel[k]];
        p.simulated = true;
        p.result = results[k];
        p.measured = estimateFromResult(cands[sel[k]].prep,
                                        results[k]);
        p.throughput = p.measured.throughput;
    }

    const double base_measured = plans[base].measured.throughput;
    const double base_analytical =
        plans[base].analytical.throughput;
    assert(base_measured > 0.0 && base_analytical > 0.0);
    for (Plan &p : plans) {
        p.speedup = p.simulated
                        ? p.measured.throughput / base_measured
                        : p.analytical.throughput / base_analytical;
    }

    // Baseline first; then measured plans by measured speedup; then
    // pruned candidates by estimated speedup.
    std::vector<Plan> out;
    out.reserve(plans.size());
    out.push_back(std::move(plans[base]));
    std::vector<size_t> rest;
    for (size_t i = 0; i < plans.size(); ++i) {
        if (i != base)
            rest.push_back(i);
    }
    std::sort(rest.begin(), rest.end(), [&](size_t a, size_t b) {
        if (plans[a].simulated != plans[b].simulated)
            return plans[a].simulated;
        if (plans[a].speedup != plans[b].speedup)
            return plans[a].speedup > plans[b].speedup;
        return plans[a].spec.orderBefore(plans[b].spec);
    });
    for (size_t i : rest)
        out.push_back(std::move(plans[i]));
    return out;
}

Plan
OptimizationPlanner::best(const CaseStudyModel &model,
                          runtime::ThreadPool *pool) const
{
    auto plans = evaluate(model, pool);
    assert(!plans.empty());
    // plans[0] is the baseline; the best measured candidate follows
    // unless the baseline is unbeatable.
    if (plans.size() > 1 && plans[1].simulated &&
        plans[1].speedup >= 1.0) {
        return plans[1];
    }
    return plans[0];
}

} // namespace paichar::opt
