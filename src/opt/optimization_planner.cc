#include "optimization_planner.h"

#include <algorithm>
#include <cassert>

#include "obs/obs.h"
#include "opt/passes.h"

namespace paichar::opt {

using workload::ArchType;
using workload::CaseStudyModel;

std::string
Plan::label() const
{
    std::string passes;
    if (mixed_precision)
        passes = "MP";
    if (xla_fusion)
        passes += passes.empty() ? "XLA" : "+XLA";
    if (passes.empty())
        passes = "default";
    return passes + " on " + workload::toString(arch);
}

OptimizationPlanner::OptimizationPlanner(PlannerConfig cfg)
    : cfg_(std::move(cfg))
{
    assert(cfg_.gpu_memory_bytes > 0.0);
}

bool
OptimizationPlanner::archFeasible(const CaseStudyModel &model,
                                  ArchType arch, int *cnodes) const
{
    const auto &f = model.features;
    const auto &srv = cfg_.sim.cluster.server;
    int n = model.num_cnodes;
    double per_gpu = 0.0;
    switch (arch) {
      case ArchType::OneWorkerOneGpu:
        n = 1;
        per_gpu = f.weightBytes();
        break;
      case ArchType::OneWorkerMultiGpu:
        n = std::min(n, srv.gpus_per_server);
        per_gpu = f.dense_weight_bytes;
        break;
      case ArchType::PsWorker:
        per_gpu = f.dense_weight_bytes + f.comm_bytes;
        break;
      case ArchType::AllReduceLocal:
        n = std::min(n, srv.gpus_per_server);
        per_gpu = f.weightBytes();
        break;
      case ArchType::AllReduceCluster:
        per_gpu = f.weightBytes();
        break;
      case ArchType::Pearl:
        n = std::min(n, srv.gpus_per_server);
        per_gpu = f.dense_weight_bytes +
                  f.embedding_weight_bytes / std::max(1, n);
        break;
    }
    bool needs_nvlink = arch == ArchType::AllReduceLocal ||
                        arch == ArchType::AllReduceCluster ||
                        arch == ArchType::Pearl;
    if (needs_nvlink && !srv.has_nvlink)
        return false;
    if (per_gpu > cfg_.gpu_memory_bytes)
        return false;
    *cnodes = n;
    return true;
}

std::vector<Plan>
OptimizationPlanner::evaluate(const CaseStudyModel &model) const
{
    // Plan-grained instrumentation: one span per evaluate() call,
    // one counter bump per simulated candidate plan.
    obs::Span span("opt.evaluate");
    static obs::Counter &plans_ctr =
        obs::counter("opt.plans_evaluated");
    testbed::TrainingSimulator sim(cfg_.sim);

    std::vector<ArchType> archs{model.arch};
    if (cfg_.explore_architectures) {
        for (ArchType a : workload::kAllArchTypes) {
            if (a != model.arch)
                archs.push_back(a);
        }
    }

    std::vector<Plan> plans;
    Plan baseline;
    for (ArchType arch : archs) {
        int cnodes = model.num_cnodes;
        if (!archFeasible(model, arch, &cnodes))
            continue;
        for (bool mp : {false, true}) {
            for (bool xla : {false, true}) {
                PassManager pm;
                if (mp)
                    pm.add(std::make_unique<MixedPrecisionPass>());
                if (xla)
                    pm.add(std::make_unique<XlaFusionPass>());
                workload::OpGraph g = pm.run(model.graph);

                Plan plan;
                plan.mixed_precision = mp;
                plan.xla_fusion = xla;
                plan.arch = arch;
                plan.num_cnodes = cnodes;
                plan.result =
                    sim.run(g, model.features, arch, cnodes,
                            model.measured_efficiency);
                plan.throughput = cnodes /
                                  plan.result.total_time *
                                  model.features.batch_size;
                if (arch == model.arch && !mp && !xla)
                    baseline = plan;
                plans_ctr.add();
                plans.push_back(std::move(plan));
            }
        }
    }
    assert(!plans.empty());

    assert(baseline.throughput > 0.0);
    for (Plan &p : plans)
        p.speedup = p.throughput / baseline.throughput;

    std::stable_sort(plans.begin(), plans.end(),
                     [&](const Plan &a, const Plan &b) {
                         // Baseline pinned first; then by speedup.
                         bool ab = a.arch == baseline.arch &&
                                   !a.mixed_precision && !a.xla_fusion;
                         bool bb = b.arch == baseline.arch &&
                                   !b.mixed_precision && !b.xla_fusion;
                         if (ab != bb)
                             return ab;
                         return a.speedup > b.speedup;
                     });
    return plans;
}

Plan
OptimizationPlanner::best(const CaseStudyModel &model) const
{
    auto plans = evaluate(model);
    assert(plans.size() >= 2 || !plans.empty());
    // plans[0] is the baseline; the best candidate follows unless the
    // baseline is unbeatable.
    Plan top = plans.size() > 1 ? plans[1] : plans[0];
    return top.speedup >= 1.0 ? top : plans[0];
}

} // namespace paichar::opt
