/**
 * @file
 * Optimization planning (Sec IV-D / VI): enumerate the combinations
 * of the techniques the paper evaluates -- mixed precision, XLA
 * fusion, and the training-architecture choice -- run each candidate
 * on the simulated testbed, and rank them by measured step time.
 *
 * This operationalizes the paper's workflow: characterize a workload,
 * then pick the software configuration that attacks its actual
 * bottleneck (MP for compute-bound, XLA for memory-bound, an
 * architecture/strategy change for communication-bound).
 */

#ifndef PAICHAR_OPT_OPTIMIZATION_PLANNER_H
#define PAICHAR_OPT_OPTIMIZATION_PLANNER_H

#include <string>
#include <vector>

#include "testbed/training_sim.h"
#include "workload/model_zoo.h"

namespace paichar::opt {

/** One evaluated optimization plan. */
struct Plan
{
    bool mixed_precision = false;
    bool xla_fusion = false;
    workload::ArchType arch = workload::ArchType::AllReduceLocal;
    /** cNodes after the architecture's placement rules. */
    int num_cnodes = 1;
    /** Measured on the simulated testbed. */
    testbed::StepResult result;
    /** Overall throughput, Eq 2 (samples per second). */
    double throughput = 0.0;
    /**
     * Throughput speedup over the unmodified baseline. Plans change
     * the cNode count (e.g. PS -> AllReduce-Local clamps to 8), so
     * step-time ratios alone would be misleading; Eq 2 is the
     * comparable metric.
     */
    double speedup = 1.0;

    /** "MP+XLA on AllReduce-Local"-style label. */
    std::string label() const;
};

/** Planner configuration. */
struct PlannerConfig
{
    /** Per-GPU parameter-memory budget for feasibility. */
    double gpu_memory_bytes = 32e9;
    /** Consider switching the training architecture. */
    bool explore_architectures = true;
    /** Simulator used for measurements. */
    testbed::SimOptions sim;
};

/** Enumerates and ranks optimization plans for a workload. */
class OptimizationPlanner
{
  public:
    explicit OptimizationPlanner(PlannerConfig cfg = PlannerConfig{});

    /**
     * Evaluate all candidate plans for @p model. The first entry is
     * the measured baseline (no passes, original architecture);
     * remaining entries are sorted by decreasing speedup. Only
     * feasible architectures are considered (weight residency and
     * NVLink availability, as in ArchitectureAdvisor).
     */
    std::vector<Plan> evaluate(const workload::CaseStudyModel &model)
        const;

    /** The fastest plan (never the baseline unless nothing beats it). */
    Plan best(const workload::CaseStudyModel &model) const;

  private:
    bool archFeasible(const workload::CaseStudyModel &model,
                      workload::ArchType arch, int *cnodes) const;

    PlannerConfig cfg_;
};

} // namespace paichar::opt

#endif // PAICHAR_OPT_OPTIMIZATION_PLANNER_H
