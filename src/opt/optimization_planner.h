/**
 * @file
 * Optimization planning (Sec IV-D / VI operationalized, widened per
 * ROADMAP item 4): enumerate candidate plans over the full strategy
 * space -- mixed precision, XLA fusion, the training-architecture
 * choice, sub-graph / channel-filter model partitioning and
 * gradient-accumulation micro-batching -- then search it with an
 * analytical-prune + simulate-top-K pipeline:
 *
 *   1. every feasible candidate is priced by the fast
 *      AnalyticalCostModel (core/analytical_model under the model's
 *      measured efficiencies),
 *   2. the analytically best K candidates (plus the baseline) are
 *      measured precisely on the event-driven testbed,
 *   3. plans are ranked by measured speedup; candidates that were
 *      pruned keep their analytical estimate.
 *
 * Both evaluators share core::resolvePlacement() feasibility and the
 * collectives::SyncStrategy traffic accounting (see cost_model.h).
 * Candidate evaluation fans out over runtime::parallelMap, so results
 * are byte-identical for any --threads value.
 */

#ifndef PAICHAR_OPT_OPTIMIZATION_PLANNER_H
#define PAICHAR_OPT_OPTIMIZATION_PLANNER_H

#include <string>
#include <vector>

#include "opt/cost_model.h"
#include "runtime/parallel.h"
#include "testbed/training_sim.h"
#include "workload/model_zoo.h"

namespace paichar::opt {

/** One evaluated optimization plan. */
struct Plan
{
    /** The candidate's search-space coordinates. */
    PlanSpec spec;
    /** Fast closed-form estimate (always present). */
    CostEstimate analytical;
    /** Testbed measurement; valid only when simulated is true. */
    CostEstimate measured;
    /** Whether this plan survived the prune and was simulated. */
    bool simulated = false;
    /** Raw testbed step result (valid when simulated). */
    testbed::StepResult result;
    /** Per-pass diagnostics from preparing the plan. */
    std::vector<PassDiagnostics> diagnostics;

    /**
     * Best-available throughput, Eq 2 generalized to
     * dp x batch x micro_batches samples per step: the measurement
     * when simulated, the analytical estimate otherwise.
     */
    double throughput = 0.0;
    /**
     * Throughput speedup over the unmodified baseline. Plans change
     * the cNode count (e.g. PS -> AllReduce-Local clamps to 8), so
     * step-time ratios alone would be misleading; Eq 2 is the
     * comparable metric. Simulated plans compare measured against
     * the measured baseline; pruned plans compare analytical against
     * the analytical baseline.
     */
    double speedup = 1.0;

    /** "MP+XLA+part4 on AllReduce-Local"-style label. */
    std::string label() const { return spec.label(); }
};

/** How the plan space is traversed. */
enum class SearchMode
{
    /** Analytically price every feasible candidate. */
    Exhaustive,
    /**
     * Staged beam search: fix the placement (arch x partition) beam
     * first, then branch mixed precision, fusion and micro-batching,
     * keeping the analytically best beam_width candidates per stage.
     */
    Beam,
};

/** Planner configuration. */
struct PlannerConfig
{
    /** Per-GPU parameter-memory budget for feasibility. */
    double gpu_memory_bytes = 32e9;
    /** Consider switching the training architecture. */
    bool explore_architectures = true;
    /** Simulator used for measurements. */
    testbed::SimOptions sim;

    /** Plan-space traversal mode. */
    SearchMode search = SearchMode::Exhaustive;
    /**
     * Candidates simulated after the analytical prune (the baseline
     * is always simulated on top); <= 0 simulates every candidate.
     */
    int top_k = 12;
    /** Beam width for SearchMode::Beam. */
    int beam_width = 6;

    /** Model-partition degrees explored (1 is implicit). */
    std::vector<int> split_ways = {2, 4, 8};
    /** Micro-batch counts explored (1 is implicit). */
    std::vector<int> micro_batch_options = {4};

    /** Dimension toggles (the CLI's --passes filter). */
    bool enable_mixed_precision = true;
    bool enable_xla_fusion = true;
    bool enable_subgraph_partition = true;
    bool enable_channel_split = true;
    bool enable_micro_batching = true;
};

/** Enumerates and ranks optimization plans for a workload. */
class OptimizationPlanner
{
  public:
    explicit OptimizationPlanner(PlannerConfig cfg = PlannerConfig{});

    /**
     * Search the plan space for @p model. The first entry is the
     * measured baseline (no passes, original architecture); then the
     * simulated plans sorted by decreasing measured speedup; then
     * the analytically pruned candidates by decreasing estimated
     * speedup. Only feasible placements are considered
     * (core::resolvePlacement, as in ArchitectureAdvisor).
     */
    std::vector<Plan>
    evaluate(const workload::CaseStudyModel &model,
             runtime::ThreadPool *pool = runtime::globalPool()) const;

    /** The fastest measured plan (the baseline only if nothing beats
     * it). */
    Plan best(const workload::CaseStudyModel &model,
              runtime::ThreadPool *pool = runtime::globalPool()) const;

    /**
     * The feasible candidate specs evaluate() prices, in
     * deterministic enumeration order (exposed for tests/bench).
     * Sub-graph partitioning applies to transformer-shaped graphs,
     * channel/filter splitting to Conv-dominated ones (> 50% of
     * compute-bound FLOPs in convolutions); the dimensions never
     * combine.
     */
    std::vector<PlanSpec>
    enumerate(const workload::CaseStudyModel &model) const;

    const PlannerConfig &config() const { return cfg_; }

  private:
    std::vector<PlanSpec>
    beamSearch(const workload::CaseStudyModel &model,
               runtime::ThreadPool *pool) const;

    PlannerConfig cfg_;
};

} // namespace paichar::opt

#endif // PAICHAR_OPT_OPTIMIZATION_PLANNER_H
