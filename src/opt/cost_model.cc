#include "cost_model.h"

#include <algorithm>
#include <cassert>
#include <tuple>

#include "core/analytical_model.h"
#include "obs/obs.h"

namespace paichar::opt {

using workload::ArchType;
using workload::CaseStudyModel;

std::string
PlanSpec::label() const
{
    std::string parts;
    auto append = [&parts](const std::string &p) {
        parts += parts.empty() ? p : "+" + p;
    };
    if (mixed_precision)
        append("MP");
    if (xla_fusion)
        append("XLA");
    if (partition_ways > 1)
        append("part" + std::to_string(partition_ways));
    if (channel_split_ways > 1)
        append("ch" + std::to_string(channel_split_ways));
    if (micro_batches > 1)
        append("acc" + std::to_string(micro_batches));
    if (parts.empty())
        parts = "default";
    return parts + " on " + workload::toString(arch);
}

bool
PlanSpec::orderBefore(const PlanSpec &other) const
{
    auto key = [](const PlanSpec &s) {
        return std::make_tuple(static_cast<int>(s.arch),
                               s.mixed_precision, s.xla_fusion,
                               s.partition_ways, s.channel_split_ways,
                               s.micro_batches, s.num_cnodes);
    };
    return key(*this) < key(other);
}

PreparedPlan
preparePlan(const CaseStudyModel &model, const PlanSpec &spec)
{
    assert(spec.partition_ways == 1 || spec.channel_split_ways == 1);
    PassManager pm;
    if (spec.mixed_precision)
        pm.add(std::make_unique<MixedPrecisionPass>());
    if (spec.xla_fusion)
        pm.add(std::make_unique<XlaFusionPass>());
    if (spec.partition_ways > 1) {
        pm.add(std::make_unique<SubGraphPartitionPass>(
            spec.partition_ways));
    }
    if (spec.channel_split_ways > 1) {
        pm.add(std::make_unique<ChannelFilterSplitPass>(
            spec.channel_split_ways));
    }
    auto pipeline = pm.runDiagnosed(model.graph);

    PreparedPlan plan;
    plan.spec = spec;
    plan.graph = std::move(pipeline.graph);
    plan.features = model.features;
    plan.efficiency = model.measured_efficiency;
    plan.exchange_nvlink_bytes = pipeline.exchange_nvlink_bytes;
    plan.diagnostics = std::move(pipeline.diagnostics);
    return plan;
}

double
samplesPerStep(const PlanSpec &spec, double batch_size)
{
    return static_cast<double>(spec.dataParallel()) * batch_size *
           spec.micro_batches;
}

collectives::SyncTraffic
planTraffic(const PreparedPlan &plan)
{
    const PlanSpec &spec = plan.spec;
    auto strategy = collectives::makeStrategy(spec.arch);
    if (spec.splitWays() > 1) {
        strategy = collectives::makeShardedStrategy(
            std::move(strategy), spec.splitWays());
    }
    auto traffic =
        strategy->traffic(plan.features, spec.num_cnodes);
    traffic.nvlink_bytes += plan.exchange_nvlink_bytes *
                            spec.micro_batches;
    return traffic;
}

AnalyticalCostModel::AnalyticalCostModel(testbed::SimOptions opts)
    : opts_(std::move(opts))
{
}

CostEstimate
AnalyticalCostModel::estimate(const PreparedPlan &plan) const
{
    obs::Span span("opt.cost.analytical");
    static obs::Counter &ctr =
        obs::counter("opt.candidates_analytical");
    ctr.add();

    const PlanSpec &spec = plan.spec;
    const int ways = spec.splitWays();
    const int k = spec.micro_batches;
    auto totals = plan.graph.totals();

    workload::TrainingJob job;
    job.arch = spec.arch;
    job.num_cnodes = spec.num_cnodes;
    job.num_ps = spec.arch == ArchType::PsWorker
                     ? std::max(1, spec.num_cnodes / 4)
                     : 0;
    job.features = plan.features;
    job.features.flop_count = totals.flops;
    job.features.mem_access_bytes = totals.mem_access_bytes;
    job.features.input_bytes = totals.input_bytes;
    // Each GPU owns a 1/ways parameter shard; the strategy layer
    // makes the same scaling in the simulated path.
    job.features.comm_bytes /= ways;
    job.features.embedding_comm_bytes /= ways;

    core::AnalyticalModel model(opts_.cluster);
    // Align with the testbed: measured per-component efficiencies,
    // contention folded into them, ring traffic modeled (Fig 12).
    model.setComponentEfficiency(plan.efficiency);
    model.setPcieContention(false);
    model.setRingAware(true);
    core::TimeBreakdown b = model.breakdown(job);

    CostEstimate est;
    est.data_time = k * b.t_data;
    est.compute_time =
        k * (b.compute() +
             totals.num_kernels * opts_.kernel_launch_overhead);
    double nvl_rate = opts_.cluster.server.nvlink_bandwidth *
                      plan.efficiency.network;
    est.exchange_time =
        k * plan.exchange_nvlink_bytes / nvl_rate;
    est.comm_time = b.t_weight;
    est.step_time = est.data_time + est.compute_time +
                    est.exchange_time + est.comm_time;
    est.throughput =
        samplesPerStep(spec, plan.features.batch_size) /
        est.step_time;
    est.traffic = planTraffic(plan);
    return est;
}

SimulatedCostModel::SimulatedCostModel(testbed::SimOptions opts)
    : opts_(std::move(opts))
{
}

testbed::StepResult
SimulatedCostModel::simulate(const PreparedPlan &plan) const
{
    obs::Span span("opt.cost.simulated");
    static obs::Counter &ctr =
        obs::counter("opt.candidates_simulated");
    ctr.add();

    const PlanSpec &spec = plan.spec;
    testbed::StepOptions so;
    so.micro_batches = spec.micro_batches;
    so.partition_ways = spec.splitWays();
    so.exchange_nvlink_bytes =
        plan.exchange_nvlink_bytes * spec.micro_batches;
    testbed::TrainingSimulator sim(opts_);
    return sim.run(plan.graph, plan.features, spec.arch,
                   spec.num_cnodes, plan.efficiency, so);
}

CostEstimate
estimateFromResult(const PreparedPlan &plan,
                   const testbed::StepResult &r)
{
    CostEstimate est;
    est.data_time = r.data_time;
    est.compute_time = r.compute_time;
    est.exchange_time = r.exchange_time;
    est.comm_time = r.comm_time;
    est.step_time = r.total_time;
    est.throughput =
        samplesPerStep(plan.spec, plan.features.batch_size) /
        r.total_time;
    est.traffic = planTraffic(plan);
    return est;
}

CostEstimate
SimulatedCostModel::estimate(const PreparedPlan &plan) const
{
    return estimateFromResult(plan, simulate(plan));
}

} // namespace paichar::opt
