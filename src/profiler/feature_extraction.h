/**
 * @file
 * Workload feature extraction (Fig 4's middle stage): reduce raw run
 * metadata plus job meta information to the per-step, per-cNode
 * feature schema the analytical model consumes.
 */

#ifndef PAICHAR_PROFILER_FEATURE_EXTRACTION_H
#define PAICHAR_PROFILER_FEATURE_EXTRACTION_H

#include "profiler/run_metadata.h"
#include "workload/training_job.h"

namespace paichar::profiler {

/** Reduces profiling records to workload features. */
class FeatureExtractor
{
  public:
    /**
     * Extract a TrainingJob (job meta + features) from a profile.
     *
     * Records are expected to cover a single representative cNode
     * (device filtering is applied with @p device): compute-bound
     * FLOPs and memory-bound traffic come from op records, input and
     * weight-sync volumes from transfer records. For PEARL jobs note
     * that the extracted comm volume is the per-GPU *moved* volume
     * (embedding traffic already divided by the partition count).
     */
    workload::TrainingJob extract(const RunMetadata &md,
                                  int device = 0) const;

    /** Total kernel-busy seconds on the device (for utilization). */
    double kernelBusyTime(const RunMetadata &md, int device = 0) const;

    /** Wall-clock span of all records (max end - min start). */
    double span(const RunMetadata &md) const;
};

} // namespace paichar::profiler

#endif // PAICHAR_PROFILER_FEATURE_EXTRACTION_H
