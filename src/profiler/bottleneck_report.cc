#include "bottleneck_report.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "stats/table.h"

namespace paichar::profiler {

std::string
toString(Bottleneck b)
{
    switch (b) {
      case Bottleneck::ComputeBound:
        return "compute-bound";
      case Bottleneck::MemoryBound:
        return "memory-bound";
      case Bottleneck::CommBound:
        return "communication-bound";
      case Bottleneck::DataBound:
        return "data-I/O-bound";
      case Bottleneck::OverheadBound:
        return "framework-overhead-bound";
    }
    return "unknown";
}

BottleneckAnalyzer::BottleneckAnalyzer(double launch_overhead)
    : launch_overhead_(launch_overhead)
{
    assert(launch_overhead_ >= 0.0);
}

BottleneckReport
BottleneckAnalyzer::analyze(const RunMetadata &md, int device,
                            size_t top_k) const
{
    BottleneckReport r;

    std::map<workload::OpType, OpTypeCost> by_type;
    std::vector<HotKernel> kernels;
    double lo = 0.0, hi = 0.0;
    bool first = true;
    int kernel_count = 0;
    double compute_busy = 0.0, mem_busy = 0.0;

    for (const OpRecord &op : md.ops) {
        if (op.device != device)
            continue;
        double dur = op.end - op.start;
        if (first) {
            lo = op.start;
            hi = op.end;
            first = false;
        } else {
            lo = std::min(lo, op.start);
            hi = std::max(hi, op.end);
        }
        auto &cost = by_type[op.type];
        cost.type = op.type;
        cost.seconds += dur;
        ++cost.kernels;
        ++kernel_count;
        if (workload::isComputeBound(op.type))
            compute_busy += dur;
        else
            mem_busy += dur;
        kernels.push_back({op.name, op.type, dur});
    }
    for (const TransferRecord &tr : md.transfers) {
        if (tr.device != device)
            continue;
        double dur = tr.end - tr.start;
        if (first) {
            lo = tr.start;
            hi = tr.end;
            first = false;
        } else {
            lo = std::min(lo, tr.start);
            hi = std::max(hi, tr.end);
        }
        if (tr.kind == TransferKind::InputData)
            r.data_seconds += dur;
        else
            r.comm_seconds = std::max(r.comm_seconds, dur);
    }

    r.span = first ? 0.0 : hi - lo;
    r.compute_seconds = compute_busy + mem_busy;
    r.overhead_seconds = kernel_count * launch_overhead_;

    for (auto &[type, cost] : by_type)
        r.by_type.push_back(cost);
    std::sort(r.by_type.begin(), r.by_type.end(),
              [](const OpTypeCost &a, const OpTypeCost &b) {
                  return a.seconds > b.seconds;
              });

    std::sort(kernels.begin(), kernels.end(),
              [](const HotKernel &a, const HotKernel &b) {
                  return a.seconds > b.seconds;
              });
    if (kernels.size() > top_k)
        kernels.resize(top_k);
    r.hot_kernels = std::move(kernels);

    // Verdict: the largest of {compute, memory, comm, data, overhead}.
    struct Cand
    {
        Bottleneck b;
        double seconds;
    };
    std::vector<Cand> cands{
        {Bottleneck::ComputeBound, compute_busy},
        {Bottleneck::MemoryBound, mem_busy},
        {Bottleneck::CommBound, r.comm_seconds},
        {Bottleneck::DataBound, r.data_seconds},
        {Bottleneck::OverheadBound, r.overhead_seconds},
    };
    r.bottleneck =
        std::max_element(cands.begin(), cands.end(),
                         [](const Cand &a, const Cand &b) {
                             return a.seconds < b.seconds;
                         })
            ->b;

    switch (r.bottleneck) {
      case Bottleneck::ComputeBound:
        r.recommendation =
            "enable TensorCore mixed precision for MatMul/Conv "
            "(Fig 13a: ~2.8x on MatMul)";
        break;
      case Bottleneck::MemoryBound:
        r.recommendation =
            "enable XLA operation fusion for the element-wise chains "
            "(Fig 13b: up to ~3.4x)";
        break;
      case Bottleneck::CommBound:
        r.recommendation =
            "revisit the system architecture: AllReduce over NVLink "
            "for replicable models, PEARL for large embeddings "
            "(Sec III-C1 / IV-C)";
        break;
      case Bottleneck::DataBound:
        r.recommendation =
            "optimize the input pipeline and PCIe staging; consider "
            "more host-side prefetch (Sec VI-B2)";
        break;
      case Bottleneck::OverheadBound:
        r.recommendation =
            "the graph is dominated by fine-grained kernels: fuse "
            "operations to cut CPU scheduling and launch costs "
            "(Sec VI-A3)";
        break;
    }
    return r;
}

std::string
BottleneckReport::render() const
{
    std::ostringstream os;
    os << "step span: " << stats::fmtSeconds(span)
       << " | compute: " << stats::fmtSeconds(compute_seconds)
       << " | data: " << stats::fmtSeconds(data_seconds)
       << " | comm: " << stats::fmtSeconds(comm_seconds)
       << " | overhead: " << stats::fmtSeconds(overhead_seconds)
       << "\n";

    stats::Table t({"op type", "time", "kernels"});
    for (const OpTypeCost &c : by_type) {
        t.addRow({workload::toString(c.type),
                  stats::fmtSeconds(c.seconds),
                  std::to_string(c.kernels)});
    }
    os << t.render();

    if (!hot_kernels.empty()) {
        stats::Table h({"hot kernel", "type", "time"});
        for (const HotKernel &k : hot_kernels) {
            h.addRow({k.name, workload::toString(k.type),
                      stats::fmtSeconds(k.seconds)});
        }
        os << h.render();
    }
    os << "verdict: " << toString(bottleneck) << "\n"
       << "recommendation: " << recommendation << "\n";
    return os.str();
}

} // namespace paichar::profiler
