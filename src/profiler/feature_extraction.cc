#include "feature_extraction.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace paichar::profiler {

workload::TrainingJob
FeatureExtractor::extract(const RunMetadata &md, int device) const
{
    workload::TrainingJob job;
    job.arch = md.meta.arch;
    job.num_cnodes = md.meta.num_cnodes;
    job.num_ps = md.meta.num_ps;
    job.features.batch_size = md.meta.batch_size;

    for (const OpRecord &op : md.ops) {
        if (op.device != device)
            continue;
        if (op.type == workload::OpType::DataLoad)
            continue; // captured via transfer records
        if (workload::isComputeBound(op.type))
            job.features.flop_count += op.flops;
        else
            job.features.mem_access_bytes += op.mem_bytes;
    }
    // Weight traffic crosses several media in serial legs (e.g. NIC
    // then PCIe for PS/Worker); the logical per-step volume Sw is the
    // largest per-medium sum, not their total.
    double sync_by_medium[3] = {0.0, 0.0, 0.0};
    for (const TransferRecord &tr : md.transfers) {
        if (tr.device != device)
            continue;
        switch (tr.kind) {
          case TransferKind::InputData:
            job.features.input_bytes += tr.bytes;
            break;
          case TransferKind::WeightSync:
            sync_by_medium[static_cast<int>(tr.medium)] += tr.bytes;
            break;
          case TransferKind::ActivationExchange:
            // Model-parallel boundary traffic is per-step exchange,
            // not weight sync; it does not contribute to Sw.
            break;
        }
    }
    job.features.comm_bytes =
        std::max({sync_by_medium[0], sync_by_medium[1],
                  sync_by_medium[2]});
    return job;
}

double
FeatureExtractor::kernelBusyTime(const RunMetadata &md, int device) const
{
    double busy = 0.0;
    for (const OpRecord &op : md.ops) {
        if (op.device == device)
            busy += op.end - op.start;
    }
    return busy;
}

double
FeatureExtractor::span(const RunMetadata &md) const
{
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const OpRecord &op : md.ops) {
        lo = std::min(lo, op.start);
        hi = std::max(hi, op.end);
    }
    for (const TransferRecord &tr : md.transfers) {
        lo = std::min(lo, tr.start);
        hi = std::max(hi, tr.end);
    }
    return hi > lo ? hi - lo : 0.0;
}

} // namespace paichar::profiler
