/**
 * @file
 * Bottleneck diagnosis from profiling records — the per-job
 * counterpart of the paper's cluster-level analysis, in the spirit of
 * the DeepProf-style trace mining its related work surveys. Reduces a
 * RunMetadata capture to: where the step time went, which op types
 * and which individual kernels dominate, how much is framework
 * overhead, and which of the paper's remedies (TensorCore mixed
 * precision, XLA fusion, an architecture/strategy change, input
 * pipeline work) attacks the dominant cost.
 */

#ifndef PAICHAR_PROFILER_BOTTLENECK_REPORT_H
#define PAICHAR_PROFILER_BOTTLENECK_REPORT_H

#include <map>
#include <string>
#include <vector>

#include "profiler/run_metadata.h"

namespace paichar::profiler {

/** The dominant cost class of a step. */
enum class Bottleneck
{
    ComputeBound,   ///< conv/matmul kernels dominate
    MemoryBound,    ///< element-wise / lookup kernels dominate
    CommBound,      ///< weight/gradient transfer dominates
    DataBound,      ///< input staging dominates
    OverheadBound,  ///< kernel-launch / scheduling overhead dominates
};

/** Printable bottleneck name. */
std::string toString(Bottleneck b);

/** Aggregated time for one op type. */
struct OpTypeCost
{
    workload::OpType type = workload::OpType::ElementWise;
    double seconds = 0.0;
    int kernels = 0;
};

/** One dominant kernel. */
struct HotKernel
{
    std::string name;
    workload::OpType type = workload::OpType::ElementWise;
    double seconds = 0.0;
};

/** The full diagnosis. */
struct BottleneckReport
{
    /** Step wall-clock span covered by the records. */
    double span = 0.0;
    /** Busy seconds by phase. */
    double compute_seconds = 0.0;
    double data_seconds = 0.0;
    double comm_seconds = 0.0;
    /** Estimated framework overhead inside the compute phase. */
    double overhead_seconds = 0.0;
    /** Compute time split by op type, largest first. */
    std::vector<OpTypeCost> by_type;
    /** The top-k kernels by time, largest first. */
    std::vector<HotKernel> hot_kernels;
    /** The verdict. */
    Bottleneck bottleneck = Bottleneck::ComputeBound;
    /** The matching remedy from the paper's toolbox (Sec IV-D/VI). */
    std::string recommendation;

    /** Render the report as human-readable text. */
    std::string render() const;
};

/** Builds bottleneck reports from run metadata. */
class BottleneckAnalyzer
{
  public:
    /**
     * @param launch_overhead Per-kernel launch cost assumed when
     *        attributing framework overhead (must match the capture
     *        environment).
     */
    explicit BottleneckAnalyzer(double launch_overhead = 8e-6);

    /**
     * Diagnose device @p device of the capture.
     *
     * @param top_k Hot kernels to include.
     */
    BottleneckReport analyze(const RunMetadata &md, int device = 0,
                             size_t top_k = 5) const;

  private:
    double launch_overhead_;
};

} // namespace paichar::profiler

#endif // PAICHAR_PROFILER_BOTTLENECK_REPORT_H
