/**
 * @file
 * Runtime profiling records, mirroring what tf.RunMetadata() provides
 * on the real platform (Sec II-B1): per-operation kernel timings and
 * tensor volumes, per-transfer records, plus the job meta information
 * (resource allocation) that run metadata alone lacks.
 */

#ifndef PAICHAR_PROFILER_RUN_METADATA_H
#define PAICHAR_PROFILER_RUN_METADATA_H

#include <string>
#include <vector>

#include "workload/arch_type.h"
#include "workload/op_graph.h"

namespace paichar::profiler {

/** One executed GPU kernel (or host-side data op). */
struct OpRecord
{
    std::string name;
    workload::OpType type = workload::OpType::ElementWise;
    /** Flat GPU index the kernel ran on. */
    int device = 0;
    /** Simulated start/end times, seconds. */
    double start = 0.0;
    double end = 0.0;
    /** Arithmetic work performed. */
    double flops = 0.0;
    /** Device-memory traffic caused. */
    double mem_bytes = 0.0;
};

/** What a recorded transfer carried. */
enum class TransferKind
{
    InputData,          ///< training samples, host -> GPU
    WeightSync,         ///< weight/gradient movement
    ActivationExchange, ///< model-parallel boundary activations
};

/** The medium a transfer used. */
enum class Medium
{
    Pcie,
    Ethernet,
    NvLink,
};

/** One data movement. */
struct TransferRecord
{
    TransferKind kind = TransferKind::InputData;
    Medium medium = Medium::Pcie;
    /** Flat GPU index the transfer belongs to. */
    int device = 0;
    double bytes = 0.0;
    double start = 0.0;
    double end = 0.0;
};

/** Job-level allocation info (Sec II-B1's "job meta information"). */
struct JobMeta
{
    workload::ArchType arch = workload::ArchType::OneWorkerOneGpu;
    int num_cnodes = 1;
    int num_ps = 0;
    double batch_size = 1.0;
};

/** Everything the profiling layer captured for one training step. */
struct RunMetadata
{
    JobMeta meta;
    std::vector<OpRecord> ops;
    std::vector<TransferRecord> transfers;
};

} // namespace paichar::profiler

#endif // PAICHAR_PROFILER_RUN_METADATA_H
