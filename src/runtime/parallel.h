/**
 * @file
 * Deterministic parallel-loop helpers over a ThreadPool.
 *
 * Every helper guarantees *bit-identical* results regardless of the
 * thread count, including the serial (no-pool) path:
 *
 *  - parallelFor / parallelMap write each index's result into a
 *    pre-sized slot, so scheduling order cannot change the output;
 *  - parallelReduce splits the range into fixed-size chunks whose
 *    boundaries depend only on the grain (never on the thread count),
 *    accumulates each chunk serially in index order, and combines the
 *    chunk partials in chunk order on the calling thread.
 *
 * Nested calls from inside a pool task run inline (serially) instead
 * of deadlocking on their own pool. Exceptions thrown by loop bodies
 * are captured and rethrown on the calling thread.
 *
 * The process-wide thread count resolves as: setThreadCount() if
 * called with n >= 1, else the PAICHAR_THREADS environment variable,
 * else std::thread::hardware_concurrency(). A count of 1 means no
 * pool at all: globalPool() returns nullptr and every helper runs the
 * plain serial path on the caller.
 */

#ifndef PAICHAR_RUNTIME_PARALLEL_H
#define PAICHAR_RUNTIME_PARALLEL_H

#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "runtime/thread_pool.h"

namespace paichar::runtime {

/** std::thread::hardware_concurrency(), clamped to at least 1. */
int hardwareThreads();

/**
 * Override the process-wide thread count (n >= 1). n <= 0 clears the
 * override, falling back to PAICHAR_THREADS / hardware concurrency.
 * Any existing global pool is torn down and lazily rebuilt.
 */
void setThreadCount(int n);

/** The resolved process-wide thread count (always >= 1). */
int threadCount();

/**
 * The process-wide pool, sized to threadCount() workers; nullptr when
 * threadCount() == 1 (callers then take the exact serial path).
 */
ThreadPool *globalPool();

/**
 * Chunk size for deterministic reductions. Fixed so that chunk
 * boundaries -- and therefore floating-point combination order --
 * never depend on the thread count.
 */
inline constexpr size_t kReduceGrain = 1024;

/**
 * Invoke @p chunk(lo, hi) over disjoint ranges covering [0, n) in
 * steps of @p grain. Chunks run concurrently on @p pool (serially
 * inline when pool is null, has one worker, or we are already on a
 * pool thread). Blocks until every chunk completed; rethrows the
 * first captured exception.
 */
void parallelForChunks(ThreadPool *pool, size_t n, size_t grain,
                       const std::function<void(size_t, size_t)> &chunk);

/** Per-index loop over [0, n); body must only touch index-i state. */
void parallelFor(ThreadPool *pool, size_t n,
                 const std::function<void(size_t)> &body);

/**
 * Split [0, n) into at most @p max_chunks contiguous ranges whose
 * interior boundaries are moved forward by @p snap — e.g. to the next
 * record or line start, so each range covers only whole records.
 *
 * @p snap receives a tentative boundary in (0, n) and must return a
 * boundary position in [pos, n]. Boundaries depend only on n,
 * max_chunks and the record layout, never on the thread count, so a
 * caller that processes the ranges and splices the per-range results
 * in order gets output independent of how the ranges were scheduled.
 */
std::vector<std::pair<size_t, size_t>>
alignedChunks(size_t n, size_t max_chunks,
              const std::function<size_t(size_t)> &snap);

/** Map [0, n) through @p fn into a pre-sized vector, slot by index. */
template <typename T, typename Fn>
std::vector<T>
parallelMap(ThreadPool *pool, size_t n, Fn &&fn)
{
    std::vector<T> out(n);
    parallelFor(pool, n, [&](size_t i) { out[i] = fn(i); });
    return out;
}

/**
 * Deterministic reduction: @p chunkFn(lo, hi) maps each fixed-size
 * chunk to a partial accumulator; @p combine folds the partials in
 * chunk order, starting from @p init. Result is bit-identical for
 * every thread count because the chunking depends only on @p grain.
 */
template <typename Acc, typename ChunkFn, typename CombineFn>
Acc
parallelReduce(ThreadPool *pool, size_t n, Acc init, ChunkFn &&chunkFn,
               CombineFn &&combine, size_t grain = kReduceGrain)
{
    if (n == 0)
        return init;
    grain = std::max<size_t>(1, grain);
    size_t chunks = (n + grain - 1) / grain;
    std::vector<Acc> partials(chunks);
    parallelFor(pool, chunks, [&](size_t c) {
        size_t lo = c * grain;
        size_t hi = std::min(n, lo + grain);
        partials[c] = chunkFn(lo, hi);
    });
    Acc acc = std::move(init);
    for (size_t c = 0; c < chunks; ++c)
        acc = combine(std::move(acc), std::move(partials[c]));
    return acc;
}

} // namespace paichar::runtime

#endif // PAICHAR_RUNTIME_PARALLEL_H
