#include "parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <latch>
#include <memory>
#include <mutex>
#include <thread>

namespace paichar::runtime {

namespace {

std::mutex g_mu;
int g_configured = 0; // explicit setThreadCount() override, 0 = unset
int g_resolved = 0;   // cached resolution, 0 = stale
std::unique_ptr<ThreadPool> g_pool;

int
resolveLocked()
{
    if (g_configured > 0)
        return g_configured;
    if (const char *env = std::getenv("PAICHAR_THREADS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1 && v <= 1 << 16)
            return static_cast<int>(v);
    }
    return hardwareThreads();
}

} // namespace

int
hardwareThreads()
{
    unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<int>(hc);
}

int
threadCount()
{
    std::lock_guard<std::mutex> lock(g_mu);
    if (g_resolved == 0)
        g_resolved = resolveLocked();
    return g_resolved;
}

void
setThreadCount(int n)
{
    std::unique_ptr<ThreadPool> doomed; // destroy outside the lock
    std::lock_guard<std::mutex> lock(g_mu);
    g_configured = n > 0 ? n : 0;
    g_resolved = 0;
    doomed = std::move(g_pool);
}

ThreadPool *
globalPool()
{
    std::unique_ptr<ThreadPool> doomed;
    std::lock_guard<std::mutex> lock(g_mu);
    if (g_resolved == 0)
        g_resolved = resolveLocked();
    if (g_resolved <= 1)
        return nullptr;
    if (g_pool && g_pool->size() != g_resolved)
        doomed = std::move(g_pool);
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(g_resolved);
    return g_pool.get();
}

void
parallelForChunks(ThreadPool *pool, size_t n, size_t grain,
                  const std::function<void(size_t, size_t)> &chunk)
{
    if (n == 0)
        return;
    grain = std::max<size_t>(1, grain);
    size_t nchunks = (n + grain - 1) / grain;

    // Serial path: no pool, trivial split, or nested inside a pool
    // task (running inline avoids queueing behind ourselves).
    if (!pool || pool->size() <= 1 || nchunks <= 1 ||
        ThreadPool::onWorkerThread()) {
        for (size_t c = 0; c < nchunks; ++c)
            chunk(c * grain, std::min(n, c * grain + grain));
        return;
    }

    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex err_mu;
    std::exception_ptr first_error;
    size_t first_error_chunk = ~size_t{0};

    int drivers =
        static_cast<int>(std::min<size_t>(
            static_cast<size_t>(pool->size()), nchunks));
    std::latch done(drivers);
    auto drive = [&] {
        for (;;) {
            size_t c = next.fetch_add(1, std::memory_order_relaxed);
            if (c >= nchunks)
                break;
            if (failed.load(std::memory_order_relaxed))
                continue; // drain the index space, skip the work
            try {
                chunk(c * grain, std::min(n, c * grain + grain));
            } catch (...) {
                std::lock_guard<std::mutex> lock(err_mu);
                if (c < first_error_chunk) {
                    first_error_chunk = c;
                    first_error = std::current_exception();
                }
                failed.store(true, std::memory_order_relaxed);
            }
        }
        done.count_down();
    };
    for (int i = 0; i < drivers; ++i)
        pool->post(drive);
    done.wait();

    if (first_error)
        std::rethrow_exception(first_error);
}

std::vector<std::pair<size_t, size_t>>
alignedChunks(size_t n, size_t max_chunks,
              const std::function<size_t(size_t)> &snap)
{
    std::vector<std::pair<size_t, size_t>> out;
    if (n == 0)
        return out;
    max_chunks = std::max<size_t>(1, max_chunks);
    // Every range is at least `target` long, so the count can only
    // shrink below max_chunks as snapping merges short tails.
    size_t target = (n + max_chunks - 1) / max_chunks;
    size_t lo = 0;
    while (lo < n) {
        size_t hi = n;
        if (lo + target < n)
            hi = std::min(n, std::max(lo + target, snap(lo + target)));
        out.emplace_back(lo, hi);
        lo = hi;
    }
    return out;
}

void
parallelFor(ThreadPool *pool, size_t n,
            const std::function<void(size_t)> &body)
{
    size_t grain = n;
    if (pool && pool->size() > 1) {
        // ~8 chunks per worker for load balance; results are written
        // by index, so the grain never affects the output.
        grain = std::max<size_t>(
            1, n / (8 * static_cast<size_t>(pool->size())));
    }
    parallelForChunks(pool, n, grain, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            body(i);
    });
}

} // namespace paichar::runtime
