/**
 * @file
 * Fixed-size worker thread pool: the execution engine behind every
 * cluster-scale fan-out in the analysis core.
 *
 * The pool is deliberately minimal: a condition-variable task queue,
 * N worker threads, futures for result/exception propagation, and a
 * graceful shutdown that completes all queued work before joining.
 * Parallel-loop structure (chunking, determinism) lives on top of it
 * in runtime/parallel.h.
 */

#ifndef PAICHAR_RUNTIME_THREAD_POOL_H
#define PAICHAR_RUNTIME_THREAD_POOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace paichar::runtime {

/**
 * A fixed-size pool of worker threads draining a FIFO task queue.
 *
 * Thread-safety: post()/submit() may be called concurrently from any
 * thread, including from inside a pool task. Destruction is graceful:
 * every task queued before the destructor runs is completed first.
 */
class ThreadPool
{
  public:
    /** Spawn @p num_threads workers (clamped to at least 1). */
    explicit ThreadPool(int num_threads);

    /** Completes all queued tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    int size() const { return static_cast<int>(workers_.size()); }

    /**
     * Enqueue fire-and-forget work. The task must not throw; use
     * submit() when the work can fail.
     */
    void post(std::function<void()> task);

    /**
     * Enqueue work whose result -- or exception -- is delivered
     * through the returned future.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        post([task] { (*task)(); });
        return task->get_future();
    }

    /**
     * True on a thread currently executing a pool task. The parallel
     * helpers use this to run nested loops inline instead of
     * deadlocking on their own pool.
     */
    static bool onWorkerThread();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

} // namespace paichar::runtime

#endif // PAICHAR_RUNTIME_THREAD_POOL_H
