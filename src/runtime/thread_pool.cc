#include "thread_pool.h"

namespace paichar::runtime {

namespace {
thread_local bool t_on_worker = false;
} // namespace

ThreadPool::ThreadPool(int num_threads)
{
    int n = num_threads < 1 ? 1 : num_threads;
    workers_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::post(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

bool
ThreadPool::onWorkerThread()
{
    return t_on_worker;
}

void
ThreadPool::workerLoop()
{
    t_on_worker = true;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and fully drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

} // namespace paichar::runtime
