#include "thread_pool.h"

#include "obs/obs.h"

namespace paichar::runtime {

namespace {

thread_local bool t_on_worker = false;

/**
 * Pool metrics, interned once. Updates are per *task* (a task is a
 * whole parallel-loop chunk driver), so the cost is invisible next
 * to the work each task performs.
 */
obs::Counter &
tasksCounter()
{
    static obs::Counter &c = obs::counter("runtime.tasks");
    return c;
}

obs::Gauge &
queueDepthGauge()
{
    static obs::Gauge &g = obs::gauge("runtime.queue_depth");
    return g;
}

obs::Histogram &
taskMicrosHistogram()
{
    static obs::Histogram &h = obs::histogram("runtime.task_us");
    return h;
}

} // namespace

ThreadPool::ThreadPool(int num_threads)
{
    int n = num_threads < 1 ? 1 : num_threads;
    workers_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::post(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(task));
    }
    tasksCounter().add();
    queueDepthGauge().add(1);
    cv_.notify_one();
}

bool
ThreadPool::onWorkerThread()
{
    return t_on_worker;
}

void
ThreadPool::workerLoop()
{
    t_on_worker = true;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and fully drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        queueDepthGauge().add(-1);
        if (obs::enabled()) {
            obs::Span span("runtime.task");
            int64_t t0 = obs::nowNs();
            task();
            taskMicrosHistogram().observe(
                static_cast<double>(obs::nowNs() - t0) / 1000.0);
        } else {
            task();
        }
    }
}

} // namespace paichar::runtime
