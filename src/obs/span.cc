#include "obs.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "json_util.h"

namespace paichar::obs {

namespace {

/** One closed span, as recorded in its owning thread's buffer. */
struct SpanEvent
{
    const char *name;
    int64_t start_ns;
    int64_t dur_ns;
    /** Global open order; the deterministic merge tie-breaker. */
    uint64_t seq;
    int64_t arg;
    bool has_arg;
};

/**
 * Per-thread append buffer. The mutex is uncontended in steady state
 * (only the owner appends); it exists so startProfiling() can clear
 * and profileToJson() can read buffers of still-live threads without
 * a data race.
 */
struct ThreadBuffer
{
    std::mutex mu;
    std::vector<SpanEvent> events;
    int tid;
};

struct SpanRegistry
{
    std::mutex mu;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    /** Interned dynamic span names (node-stable storage). */
    std::set<std::string, std::less<>> names;
    int64_t session_t0_ns = 0;
};

SpanRegistry &
spanRegistry()
{
    // Leaked: worker threads may record past static destruction.
    static SpanRegistry *r = new SpanRegistry;
    return *r;
}

std::atomic<uint64_t> g_next_seq{0};

ThreadBuffer &
threadBuffer()
{
    thread_local std::shared_ptr<ThreadBuffer> buf = [] {
        auto b = std::make_shared<ThreadBuffer>();
        SpanRegistry &r = spanRegistry();
        std::lock_guard<std::mutex> lock(r.mu);
        b->tid = static_cast<int>(r.buffers.size());
        r.buffers.push_back(b);
        return b;
    }();
    return *buf;
}

} // namespace

int64_t
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
startProfiling()
{
    SpanRegistry &r = spanRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (auto &buf : r.buffers) {
        std::lock_guard<std::mutex> buf_lock(buf->mu);
        buf->events.clear();
    }
    g_next_seq.store(0, std::memory_order_relaxed);
    r.session_t0_ns = nowNs();
    detail::g_profiling.store(true, std::memory_order_relaxed);
}

void
stopProfiling()
{
    detail::g_profiling.store(false, std::memory_order_relaxed);
}

const char *
internName(std::string_view name)
{
    SpanRegistry &r = spanRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    return r.names.emplace(name).first->c_str();
}

Span::Span(const char *name, int64_t arg, bool has_arg)
{
    if (!profiling())
        return;
    name_ = name;
    arg_ = arg;
    has_arg_ = has_arg;
    seq_ = g_next_seq.fetch_add(1, std::memory_order_relaxed);
    start_ns_ = nowNs();
}

void
Span::close()
{
    int64_t dur = nowNs() - start_ns_;
    ThreadBuffer &buf = threadBuffer();
    std::lock_guard<std::mutex> lock(buf.mu);
    buf.events.push_back(SpanEvent{name_, start_ns_,
                                   dur < 0 ? 0 : dur, seq_, arg_,
                                   has_arg_});
}

std::string
profileToJson()
{
    struct Merged
    {
        SpanEvent ev;
        int tid;
    };
    std::vector<Merged> merged;
    int64_t t0;
    int num_tids;
    {
        SpanRegistry &r = spanRegistry();
        std::lock_guard<std::mutex> lock(r.mu);
        t0 = r.session_t0_ns;
        num_tids = static_cast<int>(r.buffers.size());
        for (auto &buf : r.buffers) {
            std::lock_guard<std::mutex> buf_lock(buf->mu);
            for (const SpanEvent &ev : buf->events)
                merged.push_back(Merged{ev, buf->tid});
        }
    }
    std::sort(merged.begin(), merged.end(),
              [](const Merged &a, const Merged &b) {
                  if (a.ev.start_ns != b.ev.start_ns)
                      return a.ev.start_ns < b.ev.start_ns;
                  return a.ev.seq < b.ev.seq;
              });

    std::string out;
    out.reserve(128 + merged.size() * 120);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    char buf[192];
    bool first = true;
    for (int tid = 0; tid < num_tids; ++tid) {
        std::snprintf(buf, sizeof buf,
                      "%s{\"name\":\"thread_name\",\"ph\":\"M\","
                      "\"pid\":1,\"tid\":%d,\"args\":{\"name\":"
                      "\"%s-%d\"}}",
                      first ? "" : ",", tid,
                      tid == 0 ? "main" : "worker", tid);
        out += buf;
        first = false;
    }
    for (const Merged &m : merged) {
        double ts_us =
            static_cast<double>(m.ev.start_ns - t0) / 1000.0;
        double dur_us = static_cast<double>(m.ev.dur_ns) / 1000.0;
        // Span names are not guaranteed JSON-safe (dynamic names go
        // through internName() unvalidated) -- escape them.
        out += first ? "{\"name\":\"" : ",{\"name\":\"";
        appendJsonEscaped(out, m.ev.name);
        int n = std::snprintf(
            buf, sizeof buf,
            "\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
            "\"ts\":%.3f,\"dur\":%.3f",
            m.tid, ts_us, dur_us);
        out.append(buf, static_cast<size_t>(n));
        if (m.ev.has_arg) {
            n = std::snprintf(buf, sizeof buf,
                              ",\"args\":{\"value\":%lld}",
                              static_cast<long long>(m.ev.arg));
            out.append(buf, static_cast<size_t>(n));
        }
        out += '}';
        first = false;
    }
    out += "]}\n";
    return out;
}

} // namespace paichar::obs
