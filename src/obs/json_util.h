/**
 * @file
 * Minimal JSON building blocks shared by the obs exporters (Chrome
 * trace, job-log JSONL): string escaping per RFC 8259 and
 * shortest-round-trip number formatting via std::to_chars, so every
 * exporter emits byte-identical output for identical inputs.
 */

#ifndef PAICHAR_OBS_JSON_UTIL_H
#define PAICHAR_OBS_JSON_UTIL_H

#include <cstdint>
#include <string>
#include <string_view>

namespace paichar::obs {

/**
 * Append @p s to @p out with JSON string escaping (no surrounding
 * quotes): `"` and `\` are backslash-escaped, the common control
 * characters use their two-character forms (\n, \t, \r, \b, \f), the
 * remaining control bytes become \u00XX, and everything else --
 * including non-ASCII UTF-8 sequences -- passes through unchanged.
 */
void appendJsonEscaped(std::string &out, std::string_view s);

/** Convenience wrapper: the escaped form of @p s (no quotes). */
std::string jsonEscape(std::string_view s);

/**
 * Append @p v in the shortest spelling that parses back to the exact
 * same double (std::to_chars), matching the trace writers' spelling
 * guarantee. Non-finite values, which JSON cannot represent, are
 * emitted as 0 -- exporters must not produce them in the first place.
 */
void appendJsonNumber(std::string &out, double v);

/** Integer overload. */
void appendJsonNumber(std::string &out, int64_t v);

} // namespace paichar::obs

#endif // PAICHAR_OBS_JSON_UTIL_H
