#include "obs.h"

#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <variant>

namespace paichar::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{true};
std::atomic<bool> g_profiling{false};
} // namespace detail

namespace {

using MetricSlot = std::variant<std::unique_ptr<Counter>,
                                std::unique_ptr<Gauge>,
                                std::unique_ptr<Histogram>>;

/**
 * Name -> metric, one slot per name so a counter and a gauge can
 * never alias. Leaked on purpose: call sites cache references in
 * function-local statics, which may run during late shutdown.
 */
struct Registry
{
    std::mutex mu;
    std::map<std::string, MetricSlot, std::less<>> slots;
};

Registry &
registry()
{
    static Registry *r = new Registry;
    return *r;
}

template <typename T>
T &
lookup(std::string_view name, const char *kind)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.slots.find(name);
    if (it == r.slots.end()) {
        it = r.slots
                 .emplace(std::string(name),
                          MetricSlot(std::make_unique<T>()))
                 .first;
    }
    auto *slot = std::get_if<std::unique_ptr<T>>(&it->second);
    if (!slot) {
        throw std::logic_error("obs: metric '" + std::string(name) +
                               "' already registered as a different "
                               "kind than " +
                               kind);
    }
    return **slot;
}

} // namespace

void
setEnabled(bool on)
{
    detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

Counter &
counter(std::string_view name)
{
    return lookup<Counter>(name, "counter");
}

Gauge &
gauge(std::string_view name)
{
    return lookup<Gauge>(name, "gauge");
}

Histogram &
histogram(std::string_view name)
{
    return lookup<Histogram>(name, "histogram");
}

void
resetMetrics()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (auto &[name, slot] : r.slots) {
        (void)name;
        std::visit([](auto &m) { m->reset(); }, slot);
    }
}

void
visitMetrics(
    const std::function<void(const std::string &, const Counter &)>
        &onCounter,
    const std::function<void(const std::string &, const Gauge &)>
        &onGauge,
    const std::function<void(const std::string &, const Histogram &)>
        &onHistogram)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (const auto &[name, slot] : r.slots) {
        if (auto *c = std::get_if<std::unique_ptr<Counter>>(&slot))
            onCounter(name, **c);
        else if (auto *g = std::get_if<std::unique_ptr<Gauge>>(&slot))
            onGauge(name, **g);
        else
            onHistogram(
                name,
                *std::get<std::unique_ptr<Histogram>>(slot));
    }
}

int
Histogram::bucketOf(double v)
{
    if (!(v > 1.0)) // <= 1, negative, NaN
        return 0;
    if (v >= 0x1p62)
        return kBuckets - 1;
    // Bucket i covers (2^(i-1), 2^i]: ceil(log2(v)) for v > 1.
    auto u = static_cast<uint64_t>(std::ceil(v));
    int b = 64 - std::countl_zero(u - 1);
    // Integer ceil over-reaches for non-integral v just below a
    // power of two; the invariant check below is branch-predictable.
    while (b > 1 && v <= std::ldexp(1.0, b - 1))
        --b;
    return b < kBuckets ? b : kBuckets - 1;
}

void
Histogram::atomicAddDouble(std::atomic<uint64_t> &bits, double d)
{
    uint64_t old = bits.load(std::memory_order_relaxed);
    for (;;) {
        double next = std::bit_cast<double>(old) + d;
        if (bits.compare_exchange_weak(old, std::bit_cast<uint64_t>(next),
                                       std::memory_order_relaxed))
            return;
    }
}

void
Histogram::atomicMaxDouble(std::atomic<uint64_t> &bits, double d)
{
    // max_bits_ starts at -infinity, the identity of max, so the
    // first observation always wins -- including negative ones.
    uint64_t old = bits.load(std::memory_order_relaxed);
    while (d > std::bit_cast<double>(old)) {
        if (bits.compare_exchange_weak(old, std::bit_cast<uint64_t>(d),
                                       std::memory_order_relaxed))
            return;
    }
}

double
Histogram::bucketUpperBound(int i)
{
    return std::ldexp(1.0, i);
}

double
Histogram::quantile(double q) const
{
    uint64_t n = count();
    // An empty histogram has no quantiles: NaN, never a misleading
    // 0.0 (renderers print '-'; check empty() to branch first).
    if (n == 0)
        return std::numeric_limits<double>::quiet_NaN();
    if (!(q > 0.0))
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    auto target = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(n)));
    if (target == 0)
        target = 1;
    uint64_t acc = 0;
    for (int b = 0; b < kBuckets; ++b) {
        acc += buckets_[b].load(std::memory_order_relaxed);
        if (acc >= target)
            return std::ldexp(1.0, b); // bucket upper bound 2^b
    }
    return max();
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_bits_.store(0, std::memory_order_relaxed);
    max_bits_.store(kNegInfBits, std::memory_order_relaxed);
}

} // namespace paichar::obs
