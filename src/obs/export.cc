#include "obs.h"

#include <cstdio>

#include "json_util.h"

namespace paichar::obs {

namespace {

/** snprintf into a std::string, growing to fit (never truncates). */
template <typename... Args>
std::string
format(const char *fmt, Args... args)
{
    char buf[128];
    int n = std::snprintf(buf, sizeof buf, fmt, args...);
    if (n < 0)
        return {};
    if (static_cast<size_t>(n) < sizeof buf)
        return std::string(buf, static_cast<size_t>(n));
    std::string s(static_cast<size_t>(n), '\0');
    std::snprintf(s.data(), s.size() + 1, fmt, args...);
    return s;
}

} // namespace

std::string
renderMetricsSummary()
{
    std::string out = "# paichar metrics\n";
    // visitMetrics walks the registry in name order (std::map), so
    // the summary is stable across runs for deterministic metrics.
    visitMetrics(
        [&](const std::string &name, const Counter &c) {
            out += format("counter   %-34s %llu\n", name.c_str(),
                          static_cast<unsigned long long>(c.value()));
        },
        [&](const std::string &name, const Gauge &g) {
            out += format("gauge     %-34s %lld peak %lld\n",
                          name.c_str(),
                          static_cast<long long>(g.value()),
                          static_cast<long long>(g.peak()));
        },
        [&](const std::string &name, const Histogram &h) {
            if (h.empty()) {
                // No observations: quantile() is NaN and mean/max
                // are meaningless, so print '-' instead of numbers
                // that read as measurements.
                out += format("histogram %-34s count 0 mean - "
                              "p50 - p95 - max -\n",
                              name.c_str());
                return;
            }
            out += format(
                "histogram %-34s count %llu mean %.3f p50 %.0f "
                "p95 %.0f max %.3f\n",
                name.c_str(),
                static_cast<unsigned long long>(h.count()), h.mean(),
                h.quantile(0.5), h.quantile(0.95), h.max());
        });
    return out;
}

namespace {

/** A metric name restricted to the OpenMetrics charset
 * [a-zA-Z0-9_:], invalid characters replaced by '_'. */
std::string
openMetricsName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    if (out.empty() || (out[0] >= '0' && out[0] <= '9'))
        out.insert(out.begin(), '_');
    return out;
}

void
appendSample(std::string &out, const std::string &name, double value)
{
    out += name;
    out += ' ';
    appendJsonNumber(out, value);
    out += '\n';
}

void
appendSample(std::string &out, const std::string &name,
             uint64_t value)
{
    out += name;
    out += ' ';
    out += format("%llu", static_cast<unsigned long long>(value));
    out += '\n';
}

} // namespace

std::string
renderMetricsOpenMetrics()
{
    std::string out;
    visitMetrics(
        [&](const std::string &raw, const Counter &c) {
            std::string name = openMetricsName(raw);
            out += "# TYPE " + name + " counter\n";
            appendSample(out, name + "_total", c.value());
        },
        [&](const std::string &raw, const Gauge &g) {
            std::string name = openMetricsName(raw);
            out += "# TYPE " + name + " gauge\n";
            appendSample(out, name,
                         static_cast<double>(g.value()));
            out += "# TYPE " + name + "_peak gauge\n";
            appendSample(out, name + "_peak",
                         static_cast<double>(g.peak()));
        },
        [&](const std::string &raw, const Histogram &h) {
            std::string name = openMetricsName(raw);
            out += "# TYPE " + name + " histogram\n";
            // Cumulative buckets up to the last non-empty one;
            // everything after collapses into +Inf.
            int last = -1;
            for (int b = 0; b < Histogram::kBuckets; ++b)
                if (h.bucketCount(b))
                    last = b;
            uint64_t acc = 0;
            for (int b = 0; b <= last; ++b) {
                acc += h.bucketCount(b);
                std::string le;
                appendJsonNumber(le,
                                 Histogram::bucketUpperBound(b));
                appendSample(out,
                             name + "_bucket{le=\"" + le + "\"}",
                             acc);
            }
            appendSample(out, name + "_bucket{le=\"+Inf\"}",
                         h.count());
            appendSample(out, name + "_count", h.count());
            appendSample(out, name + "_sum", h.sum());
        });
    out += "# EOF\n";
    return out;
}

} // namespace paichar::obs
