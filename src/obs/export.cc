#include "obs.h"

#include <cstdio>

namespace paichar::obs {

namespace {

/** snprintf into a std::string, growing to fit (never truncates). */
template <typename... Args>
std::string
format(const char *fmt, Args... args)
{
    char buf[128];
    int n = std::snprintf(buf, sizeof buf, fmt, args...);
    if (n < 0)
        return {};
    if (static_cast<size_t>(n) < sizeof buf)
        return std::string(buf, static_cast<size_t>(n));
    std::string s(static_cast<size_t>(n), '\0');
    std::snprintf(s.data(), s.size() + 1, fmt, args...);
    return s;
}

} // namespace

std::string
renderMetricsSummary()
{
    std::string out = "# paichar metrics\n";
    // visitMetrics walks the registry in name order (std::map), so
    // the summary is stable across runs for deterministic metrics.
    visitMetrics(
        [&](const std::string &name, const Counter &c) {
            out += format("counter   %-34s %llu\n", name.c_str(),
                          static_cast<unsigned long long>(c.value()));
        },
        [&](const std::string &name, const Gauge &g) {
            out += format("gauge     %-34s %lld peak %lld\n",
                          name.c_str(),
                          static_cast<long long>(g.value()),
                          static_cast<long long>(g.peak()));
        },
        [&](const std::string &name, const Histogram &h) {
            out += format(
                "histogram %-34s count %llu mean %.3f p50 %.0f "
                "p95 %.0f max %.3f\n",
                name.c_str(),
                static_cast<unsigned long long>(h.count()), h.mean(),
                h.quantile(0.5), h.quantile(0.95), h.max());
        });
    return out;
}

} // namespace paichar::obs
