/**
 * @file
 * Low-overhead process-wide observability: metrics and span tracing.
 *
 * Two independent facilities share this header (taxonomy and budgets
 * in DESIGN.md Sec 10):
 *
 *  - **Metrics**: named counters, gauges and histograms held in a
 *    process-wide registry. Handles are interned once per call site
 *    (`static obs::Counter &c = obs::counter("trace.rows_parsed");`)
 *    and every recording operation afterwards is one relaxed atomic.
 *    Recording is gated on a master switch (setEnabled) whose check
 *    is a single relaxed load, so a disabled build path costs a
 *    branch. renderMetricsSummary() exports the registry as sorted,
 *    human-readable text.
 *
 *  - **Spans**: RAII scoped timers (`obs::Span s("trace.parse_csv");`)
 *    appended to per-thread buffers while profiling is active.
 *    Buffers are merged at export time into a deterministic order
 *    (start time, then a global sequence number) and rendered as
 *    Chrome trace-event JSON, loadable in Perfetto or
 *    chrome://tracing. When profiling is off a Span construction is
 *    one relaxed load and no clock read.
 *
 * Instrumentation is deliberately batch-grained -- one span or
 * counter update per parse chunk, pool task or simulator drain, never
 * per row or per event -- which keeps the enabled-vs-disabled delta
 * under the 2% budget proved by bench_micro's obs_overhead section.
 *
 * Thread-safety: every function here may be called from any thread.
 * Metric values observed concurrently with recording are individually
 * coherent (relaxed atomics), not a consistent cross-metric snapshot.
 */

#ifndef PAICHAR_OBS_OBS_H
#define PAICHAR_OBS_OBS_H

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace paichar::obs {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
extern std::atomic<bool> g_profiling;
} // namespace detail

/** Master switch for metric recording (default: on). */
void setEnabled(bool on);

/** True when metric recording is on. One relaxed load. */
inline bool
enabled()
{
    return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

/** True while span capture is active. One relaxed load. */
inline bool
profiling()
{
    return detail::g_profiling.load(std::memory_order_relaxed);
}

/** Monotonic nanoseconds (steady clock), for ad-hoc timing. */
int64_t nowNs();

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/** A monotonically increasing count. */
class Counter
{
  public:
    void
    add(uint64_t n = 1)
    {
        if (enabled())
            v_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        v_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> v_{0};
};

/** A signed level with a high-water mark (e.g. queue depth). */
class Gauge
{
  public:
    void
    add(int64_t delta)
    {
        if (!enabled())
            return;
        int64_t v = v_.fetch_add(delta, std::memory_order_relaxed) +
                    delta;
        int64_t p = peak_.load(std::memory_order_relaxed);
        while (v > p && !peak_.compare_exchange_weak(
                            p, v, std::memory_order_relaxed)) {
        }
    }

    /**
     * Overwrite the level with an absolute value (timeline-style
     * sampling, vs add()'s deltas). The peak only ever ratchets
     * upward: set(10); set(3) leaves value() == 3 and peak() == 10,
     * and a negative set never lowers a previously recorded peak
     * (peak starts at 0, so it is never negative). Only reset()
     * clears the high-water mark.
     */
    void
    set(int64_t v)
    {
        if (!enabled())
            return;
        v_.store(v, std::memory_order_relaxed);
        int64_t p = peak_.load(std::memory_order_relaxed);
        while (v > p && !peak_.compare_exchange_weak(
                            p, v, std::memory_order_relaxed)) {
        }
    }

    int64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

    int64_t
    peak() const
    {
        return peak_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        v_.store(0, std::memory_order_relaxed);
        peak_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<int64_t> v_{0};
    std::atomic<int64_t> peak_{0};
};

/**
 * A power-of-two bucketed histogram over non-negative values.
 *
 * Bucket i >= 1 counts observations in (2^(i-1), 2^i]; bucket 0
 * counts everything <= 1 -- including 0, negative and NaN
 * observations, which are accepted rather than dropped so totals
 * always reconcile (+infinity lands in the top bucket). quantile() is
 * therefore exact only up to the 2x bucket width; count/sum/max are
 * exact. The bucket-0 catch-all is pinned by unit test
 * (HistogramBucketZeroContract).
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 64;

    void
    observe(double v)
    {
        if (!enabled())
            return;
        buckets_[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        atomicAddDouble(sum_bits_, v);
        atomicMaxDouble(max_bits_, v);
    }

    uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    double
    sum() const
    {
        return std::bit_cast<double>(
            sum_bits_.load(std::memory_order_relaxed));
    }

    double
    mean() const
    {
        uint64_t n = count();
        return n ? sum() / static_cast<double>(n) : 0.0;
    }

    double
    max() const
    {
        return count() ? std::bit_cast<double>(max_bits_.load(
                             std::memory_order_relaxed))
                       : 0.0;
    }

    /** True when no observation has been recorded. */
    bool
    empty() const
    {
        return count() == 0;
    }

    /**
     * Upper bound of the smallest bucket holding the q-quantile
     * (q clamped to [0, 1]). An empty histogram has no quantiles:
     * the result is NaN (check empty() to branch first); renderers
     * print '-' rather than a misleading number.
     */
    double quantile(double q) const;

    /** Observation count of bucket @p i (0 <= i < kBuckets). */
    uint64_t
    bucketCount(int i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

    /** Inclusive upper bound of bucket @p i: 2^i (1.0 for i = 0). */
    static double bucketUpperBound(int i);

    void reset();

  private:
    static int bucketOf(double v);
    static void atomicAddDouble(std::atomic<uint64_t> &bits, double d);
    static void atomicMaxDouble(std::atomic<uint64_t> &bits, double d);

    /** Bit pattern of -infinity, the identity of floating max. */
    static constexpr uint64_t kNegInfBits = 0xFFF0000000000000ull;

    std::atomic<uint64_t> buckets_[kBuckets]{};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_bits_{0};
    std::atomic<uint64_t> max_bits_{kNegInfBits};
};

/**
 * Look up (creating on first use) the named metric. References stay
 * valid for the process lifetime; cache them in a function-local
 * static at hot call sites. A name identifies one kind of metric:
 * re-using a counter name for a gauge is a logic error (throws).
 */
Counter &counter(std::string_view name);
Gauge &gauge(std::string_view name);
Histogram &histogram(std::string_view name);

/** Zero every registered metric (tests, repeated CLI runs). */
void resetMetrics();

/**
 * Walk the registry in name order, invoking the callback matching
 * each metric's kind. The registry lock is held across the walk; do
 * not register metrics from inside a callback.
 */
void visitMetrics(
    const std::function<void(const std::string &, const Counter &)>
        &onCounter,
    const std::function<void(const std::string &, const Gauge &)>
        &onGauge,
    const std::function<void(const std::string &, const Histogram &)>
        &onHistogram);

/**
 * The registry as sorted human-readable text, one metric per line:
 *
 *   counter   trace.rows_parsed  100000
 *   gauge     runtime.queue_depth  0 peak 12
 *   histogram runtime.task_us  count 96 mean 412.3 p50 512 p95 4096 max 3012.4
 */
std::string renderMetricsSummary();

/**
 * The registry in OpenMetrics text format (`--metrics-format
 * openmetrics`): counters as `<name>_total`, gauges as `<name>` plus
 * a `<name>_peak` companion gauge, histograms as cumulative
 * `_bucket{le="..."}` samples (power-of-two bounds, trailing empty
 * buckets collapsed into `le="+Inf"`) with `_count`/`_sum`, metric
 * names sanitized to [a-zA-Z0-9_:], terminated by `# EOF`. Mapping
 * documented in DESIGN.md Sec 10.
 */
std::string renderMetricsOpenMetrics();

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/**
 * Start a profiling session: clears all per-thread span buffers and
 * begins capturing spans process-wide.
 */
void startProfiling();

/** Stop capturing spans; the captured buffers remain exportable. */
void stopProfiling();

/**
 * Merge every thread's spans deterministically (start time, then the
 * global sequence number assigned at span open) and render Chrome
 * trace-event JSON ("X" complete events, ts/dur in microseconds,
 * thread-name metadata). Call after stopProfiling(), while no
 * instrumented work is in flight.
 */
std::string profileToJson();

/**
 * Intern a dynamic span name; the returned pointer lives for the
 * process. Span itself stores only the pointer, so names that are not
 * string literals must pass through here.
 */
const char *internName(std::string_view name);

/**
 * RAII scoped span. @p name must outlive the profiling session
 * (string literal or internName()). Construction and destruction are
 * a relaxed load each while profiling is off.
 */
class Span
{
  public:
    explicit Span(const char *name) : Span(name, 0, false) {}

    /** A span carrying one integer payload (bytes, rows, events). */
    Span(const char *name, int64_t arg) : Span(name, arg, true) {}

    ~Span()
    {
        if (name_)
            close();
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Attach/replace the integer payload before the span closes. */
    void
    setArg(int64_t arg)
    {
        arg_ = arg;
        has_arg_ = true;
    }

  private:
    Span(const char *name, int64_t arg, bool has_arg);
    void close();

    const char *name_ = nullptr;
    int64_t start_ns_ = 0;
    uint64_t seq_ = 0;
    int64_t arg_ = 0;
    bool has_arg_ = false;
};

} // namespace paichar::obs

#endif // PAICHAR_OBS_OBS_H
