/**
 * @file
 * Sim-time timeline telemetry: deterministic time-series probes
 * sampled at a fixed simulated-time cadence (DESIGN.md Sec 15).
 *
 * Every metric in obs.h is an end-of-run aggregate; the paper's
 * cluster-level story (Figs 6-9) is a *time-series* analysis. A
 * `Timeline` divides simulated time into half-open windows
 * [w*I, (w+1)*I) of a fixed interval I and owns a registry of named
 * probes, each one of three instrument kinds:
 *
 *  - **Level**: a sampled absolute value (queued jobs, fleet size).
 *    The last `set()` before a window closes is that window's row --
 *    piecewise-constant sampling, emitted from the first window that
 *    saw a `set()` onward.
 *  - **Rate**: a windowed counter. `add()` accumulates into the
 *    current window; each closed window emits the delta (including
 *    zero) from the window the probe was registered in onward.
 *  - **Quantile**: a windowed sample buffer. Each closed window emits
 *    `<name>.count` always, plus `<name>.p50` / `<name>.p99`
 *    (nearest-rank) when the window saw at least one sample.
 *
 * Advancement is driven by the simulators' own clocks: callers invoke
 * `advanceTo(t)` *before* recording anything that happens at time t,
 * which closes every window whose end is <= t (an event exactly on a
 * boundary belongs to the next window). Because windows are a pure
 * function of simulated time and every probe recording happens on the
 * coordinating thread in event order (rate adds from worker shards
 * are order-independent sums within a round), the emitted rows are
 * byte-identical for every --threads x --shards combination -- the
 * same determinism contract as the goldens.
 *
 * Process-wide lifecycle mirrors the job log: `startTimeline()` /
 * `stopTimeline()` bracket a run, `timelineActive()` is one relaxed
 * load so a disabled probe site costs a branch (zero-cost when off,
 * like `--job-log`).
 *
 * Thread-safety: `Rate::add` may be called from any thread (atomic
 * accumulation); `Level::set` is a relaxed store. `Quantile::observe`,
 * `advanceTo`, `finalize`, probe registration and the render/row
 * accessors are driver-thread only.
 */

#ifndef PAICHAR_OBS_TIMELINE_H
#define PAICHAR_OBS_TIMELINE_H

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace paichar::obs {

namespace detail {
extern std::atomic<bool> g_timeline_active;
} // namespace detail

/** Schema identifier on every exported timeline document. */
inline constexpr const char *kTimelineSchema = "paichar.timeline.v1";

/**
 * Nearest-rank quantile of an unsorted sample set (q clamped to
 * [0, 1]); NaN when @p samples is empty. Shared by the timeline's
 * windowed-quantile probe and the fleet autoscaler's SLO window, so
 * both report the same p99 for the same samples.
 */
double nearestRankQuantile(std::vector<double> samples, double q);

/** One emitted sample: series value at the window ending at end_s. */
struct TimelineRow
{
    double end_s = 0.0;
    std::string series;
    double value = 0.0;
};

class Timeline
{
  public:
    /**
     * A timeline with windows of @p interval_s simulated seconds.
     * Throws std::invalid_argument unless interval_s is finite and
     * > 0 (a real exception, not an assert: the value arrives from
     * the `--timeline-interval` flag and must fail in NDEBUG builds).
     */
    explicit Timeline(double interval_s);

    /** Out of line: Slot is incomplete here. */
    ~Timeline();

    Timeline(const Timeline &) = delete;
    Timeline &operator=(const Timeline &) = delete;

    /** A sampled absolute value (piecewise-constant). */
    class Level
    {
      public:
        void
        set(double v)
        {
            bits_.store(std::bit_cast<uint64_t>(v),
                        std::memory_order_relaxed);
            seen_.store(true, std::memory_order_relaxed);
        }

      private:
        friend class Timeline;
        std::atomic<uint64_t> bits_{0};
        std::atomic<bool> seen_{false};
    };

    /** A windowed counter delta; add() is safe from any thread. */
    class Rate
    {
      public:
        void
        add(double n = 1.0)
        {
            uint64_t old = bits_.load(std::memory_order_relaxed);
            while (!bits_.compare_exchange_weak(
                old, std::bit_cast<uint64_t>(std::bit_cast<double>(old) + n),
                std::memory_order_relaxed)) {
            }
        }

      private:
        friend class Timeline;
        /** Window sum, reset on window close. */
        std::atomic<uint64_t> bits_{0};
    };

    /** A windowed sample buffer emitting count/p50/p99 per window. */
    class Quantile
    {
      public:
        void
        observe(double v)
        {
            samples_.push_back(v);
        }

      private:
        friend class Timeline;
        std::vector<double> samples_;
    };

    /**
     * Look up (registering on first use) the named probe. References
     * stay valid for the Timeline's lifetime. A name identifies one
     * probe kind; re-using a level name for a rate is a logic error
     * (throws std::logic_error), exactly like the metrics registry.
     */
    Level &level(std::string_view name);
    Rate &rate(std::string_view name);
    Quantile &quantile(std::string_view name);

    double
    interval() const
    {
        return interval_;
    }

    /**
     * Close every window whose end is <= @p t, emitting its rows.
     * Call before recording anything that happens at time t; time
     * earlier than the current window start is ignored (advancement
     * is monotone).
     */
    void advanceTo(double t);

    /**
     * Close the trailing partial window, if anything was recorded in
     * it or time advanced into it; a run that never advanced time and
     * never recorded emits no rows. Idempotent.
     */
    void finalize();

    /** All emitted rows, in (window, probe-name) order. */
    const std::vector<TimelineRow> &
    rows() const
    {
        return rows_;
    }

    /**
     * CSV export: a `# paichar timeline v1 interval_s I` comment, an
     * `end_s,series,value` header, then one row per line with numbers
     * in shortest-round-trip spelling.
     */
    std::string renderCsv() const;

    /**
     * JSON export: {"schema","interval_s","series":[{"name",
     * "points":[[end_s,value],...]},...]} with series in name order.
     */
    std::string renderJson() const;

  private:
    struct Slot;

    Slot &slot(std::string_view name, int kind);
    void closeWindow();

    double
    windowStart() const
    {
        return interval_ * static_cast<double>(next_window_);
    }

    double
    windowEnd() const
    {
        return interval_ * static_cast<double>(next_window_ + 1);
    }

    double interval_;
    /** Index of the (open) current window. */
    int64_t next_window_ = 0;
    /** True when the current window saw time or samples. */
    bool touched_ = false;
    bool finalized_ = false;
    std::map<std::string, std::unique_ptr<Slot>, std::less<>> slots_;
    std::vector<TimelineRow> rows_;
};

/** True while a timeline is recording. One relaxed load. */
inline bool
timelineActive()
{
    return detail::g_timeline_active.load(std::memory_order_relaxed);
}

/**
 * Start the process-wide timeline with the given window interval
 * (simulated seconds), discarding any previous one. Throws
 * std::invalid_argument for a non-finite or non-positive interval.
 */
void startTimeline(double interval_s);

/** Finalize the trailing window and stop recording; the timeline
 * remains readable until the next startTimeline(). */
void stopTimeline();

/** The process-wide timeline, or nullptr before startTimeline(). */
Timeline *timeline();

/**
 * RAII: deactivate the timeline for a scope, restoring the previous
 * state on exit. Simulator runs with `record_timeline = false` (the
 * FIFO comparison run, capacity bisection probes) wrap themselves in
 * one so their events never pollute the exported timeline. Driver
 * thread only, like start/stop.
 */
class TimelineSuspend
{
  public:
    TimelineSuspend()
        : was_(detail::g_timeline_active.load(
              std::memory_order_relaxed))
    {
        detail::g_timeline_active.store(false,
                                        std::memory_order_relaxed);
    }

    ~TimelineSuspend()
    {
        detail::g_timeline_active.store(was_,
                                        std::memory_order_relaxed);
    }

    TimelineSuspend(const TimelineSuspend &) = delete;
    TimelineSuspend &operator=(const TimelineSuspend &) = delete;

  private:
    bool was_;
};

/**
 * Bumped on every startTimeline(); callers caching probe handles
 * must revalidate when the generation changes (a restarted timeline
 * invalidates all handles).
 */
uint64_t timelineGeneration();

/** renderCsv()/renderJson() of the process-wide timeline; "" when no
 * timeline was ever started. */
std::string renderTimelineCsv();
std::string renderTimelineJson();

// ---------------------------------------------------------------------------
// Analysis (the `paichar obs timeline` family)
// ---------------------------------------------------------------------------

/** A parsed timeline file: per-series (end_s, value) points. */
struct TimelineData
{
    bool ok = true;
    /** "line N: ..." on failure. */
    std::string error;
    double interval_s = 0.0;
    std::map<std::string, std::vector<std::pair<double, double>>>
        series;
};

/** Parse the renderCsv() format. Unknown comment lines are skipped. */
TimelineData loadTimelineCsv(std::string_view text);

/**
 * Per-series statistics table: rows, mean, min, max, last and an
 * ASCII sparkline per series (grow-to-fit columns, like `obs report`).
 */
std::string renderTimelineReport(const TimelineData &data);

/**
 * Derived per-series scalars (`<series>.mean/.max/.last/.rows`) as an
 * analyze.h RunData, so `obs timeline diff` reuses diffRuns() and the
 * CI perf gate's regression semantics unchanged.
 */
struct RunData;
RunData timelineScalars(const TimelineData &data);

} // namespace paichar::obs

#endif // PAICHAR_OBS_TIMELINE_H
