#include "analyze.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace paichar::obs {

namespace {

/** snprintf into a std::string, growing to fit (never truncates). */
template <typename... Args>
std::string
format(const char *fmt, Args... args)
{
    char buf[160];
    int n = std::snprintf(buf, sizeof buf, fmt, args...);
    if (n < 0)
        return {};
    if (static_cast<size_t>(n) < sizeof buf)
        return std::string(buf, static_cast<size_t>(n));
    std::string s(static_cast<size_t>(n), '\0');
    std::snprintf(s.data(), s.size() + 1, fmt, args...);
    return s;
}

/** Nearest-rank percentile of an ascending-sorted vector. */
double
percentile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    double rank = std::ceil(q * static_cast<double>(sorted.size()));
    auto idx = static_cast<size_t>(std::max(rank, 1.0)) - 1;
    return sorted[std::min(idx, sorted.size() - 1)];
}

double
meanOf(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

/** One derived distribution over the completed jobs. */
struct Dist
{
    const char *name;
    std::vector<double> values; // sorted before use
};

std::vector<Dist>
jobDistributions(const std::vector<JobRecord> &records)
{
    std::vector<Dist> dists;
    dists.push_back({"queue_s", {}});
    dists.push_back({"run_s", {}});
    dists.push_back({"step_s", {}});
    dists.push_back({"skew_pct", {}});
    dists.push_back({"placement_attempts", {}});
    for (const JobRecord &r : records) {
        if (r.status != "completed")
            continue;
        dists[0].values.push_back(r.queueSeconds());
        dists[1].values.push_back(r.runSeconds());
        dists[2].values.push_back(r.sim_step_s);
        dists[3].values.push_back(r.skewPct());
        dists[4].values.push_back(
            static_cast<double>(r.placement_attempts));
    }
    for (Dist &d : dists)
        std::sort(d.values.begin(), d.values.end());
    return dists;
}

/** Mean Td/Tc/Tw shares over completed jobs with a phase breakdown. */
struct PhaseShares
{
    double td = 0.0, tc = 0.0, tw = 0.0;
    bool any = false;
};

PhaseShares
phaseShares(const std::vector<JobRecord> &records)
{
    PhaseShares out;
    size_t n = 0;
    for (const JobRecord &r : records) {
        if (r.status != "completed")
            continue;
        double sum = r.sim_td_s + r.sim_tc_s + r.sim_tw_s;
        if (sum <= 0.0)
            continue;
        out.td += r.sim_td_s / sum;
        out.tc += r.sim_tc_s / sum;
        out.tw += r.sim_tw_s / sum;
        ++n;
    }
    if (n) {
        out.any = true;
        out.td /= static_cast<double>(n);
        out.tc /= static_cast<double>(n);
        out.tw /= static_cast<double>(n);
    }
    return out;
}

void
deriveJobScalars(RunData &run)
{
    uint64_t completed = 0, dropped = 0, ported = 0;
    for (const JobRecord &r : run.records) {
        if (r.status == "completed")
            ++completed;
        else
            ++dropped;
        if (r.ported)
            ++ported;
    }
    run.scalars["job.count"] =
        static_cast<double>(run.records.size());
    run.scalars["job.completed"] = static_cast<double>(completed);
    run.scalars["job.dropped"] = static_cast<double>(dropped);
    run.scalars["job.ported"] = static_cast<double>(ported);

    for (const Dist &d : jobDistributions(run.records)) {
        std::string base = std::string("job.") + d.name + ".";
        run.scalars[base + "mean"] = meanOf(d.values);
        run.scalars[base + "p50"] = percentile(d.values, 0.5);
        run.scalars[base + "p95"] = percentile(d.values, 0.95);
        run.scalars[base + "max"] =
            d.values.empty() ? 0.0 : d.values.back();
    }

    PhaseShares ph = phaseShares(run.records);
    run.scalars["job.phase_share.td"] = ph.td;
    run.scalars["job.phase_share.tc"] = ph.tc;
    run.scalars["job.phase_share.tw"] = ph.tw;
}

/** Split a line into whitespace-separated tokens. */
std::vector<std::string_view>
tokens(std::string_view line)
{
    std::vector<std::string_view> out;
    size_t i = 0;
    while (i < line.size()) {
        while (i < line.size() &&
               (line[i] == ' ' || line[i] == '\t'))
            ++i;
        size_t start = i;
        while (i < line.size() && line[i] != ' ' &&
               line[i] != '\t')
            ++i;
        if (i > start)
            out.push_back(line.substr(start, i - start));
    }
    return out;
}

bool
parseDouble(std::string_view s, double *out)
{
    // strtod via a NUL-terminated copy; tokens are short.
    std::string tmp(s);
    char *end = nullptr;
    *out = std::strtod(tmp.c_str(), &end);
    return end == tmp.c_str() + tmp.size() && !tmp.empty();
}

/** Parse the `# paichar metrics` summary-text format. */
RunLoad
loadMetricsText(std::string_view text)
{
    RunLoad out;
    out.data.kind = RunData::Kind::Metrics;
    size_t pos = 0, line_no = 0;
    while (pos < text.size()) {
        size_t nl = text.find('\n', pos);
        std::string_view line = text.substr(
            pos, nl == std::string_view::npos ? std::string_view::npos
                                              : nl - pos);
        pos = nl == std::string_view::npos ? text.size() : nl + 1;
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        auto tok = tokens(line);
        auto fail = [&](const char *what) {
            out.ok = false;
            out.error = "line " + std::to_string(line_no) + ": " +
                        what;
            return out;
        };
        auto num = [&](std::string_view s, double *v) {
            return parseDouble(s, v);
        };
        double v = 0.0;
        if (tok.size() == 3 && tok[0] == "counter") {
            if (!num(tok[2], &v))
                return fail("bad counter value");
            out.data.scalars[std::string(tok[1])] = v;
        } else if (tok.size() == 5 && tok[0] == "gauge" &&
                   tok[3] == "peak") {
            double peak = 0.0;
            if (!num(tok[2], &v) || !num(tok[4], &peak))
                return fail("bad gauge value");
            out.data.scalars[std::string(tok[1])] = v;
            out.data.scalars[std::string(tok[1]) + ".peak"] = peak;
        } else if (tok.size() == 12 && tok[0] == "histogram") {
            // histogram NAME count N mean M p50 X p95 Y max Z
            // An empty histogram renders its stats as '-' (its
            // quantiles are NaN); those fields are simply absent
            // from the scalar view rather than recorded as 0.
            static const char *kFields[] = {"count", "mean", "p50",
                                            "p95", "max"};
            for (int f = 0; f < 5; ++f) {
                if (tok[2 + 2 * f] != kFields[f])
                    return fail("bad histogram line");
                if (tok[3 + 2 * f] == "-")
                    continue;
                if (!num(tok[3 + 2 * f], &v))
                    return fail("bad histogram value");
                out.data.scalars[std::string(tok[1]) + "." +
                                 kFields[f]] = v;
            }
        } else {
            return fail("unrecognized metrics line");
        }
    }
    return out;
}

/** Parse OpenMetrics text: unlabeled `name value` samples only --
 * labeled samples (histogram buckets) are summarized by their
 * _count/_sum companions, which are unlabeled. */
RunLoad
loadOpenMetrics(std::string_view text)
{
    RunLoad out;
    out.data.kind = RunData::Kind::Metrics;
    size_t pos = 0, line_no = 0;
    while (pos < text.size()) {
        size_t nl = text.find('\n', pos);
        std::string_view line = text.substr(
            pos, nl == std::string_view::npos ? std::string_view::npos
                                              : nl - pos);
        pos = nl == std::string_view::npos ? text.size() : nl + 1;
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        if (line.find('{') != std::string_view::npos)
            continue; // labeled sample (bucket); skip
        auto tok = tokens(line);
        if (tok.size() != 2) {
            out.ok = false;
            out.error = "line " + std::to_string(line_no) +
                        ": expected 'name value'";
            return out;
        }
        double v = 0.0;
        if (!parseDouble(tok[1], &v)) {
            out.ok = false;
            out.error = "line " + std::to_string(line_no) +
                        ": bad sample value";
            return out;
        }
        out.data.scalars[std::string(tok[0])] = v;
    }
    return out;
}

} // namespace

RunLoad
loadRunData(std::string_view text)
{
    size_t first = text.find_first_not_of(" \t\r\n");
    if (first == std::string_view::npos) {
        RunLoad out;
        out.ok = false;
        out.error = "empty input";
        return out;
    }
    if (text[first] == '{') {
        RunLoad out;
        JobLogParse parsed = parseJobLogJsonl(text);
        if (!parsed.ok) {
            out.ok = false;
            out.error = parsed.error;
            return out;
        }
        out.data.kind = RunData::Kind::JobLog;
        out.data.records = std::move(parsed.records);
        deriveJobScalars(out.data);
        return out;
    }
    std::string_view rest = text.substr(first);
    if (rest.substr(0, 17) == "# paichar metrics")
        return loadMetricsText(text);
    if (text.find("# TYPE ") != std::string_view::npos ||
        text.find("# EOF") != std::string_view::npos)
        return loadOpenMetrics(text);
    RunLoad out;
    out.ok = false;
    out.error = "unrecognized run format (expected a JSONL job log, "
                "a '# paichar metrics' dump, or OpenMetrics text)";
    return out;
}

std::string
reportText(const RunData &run)
{
    if (run.kind == RunData::Kind::Metrics) {
        std::string out = "# paichar obs report (metrics)\n";
        for (const auto &[key, value] : run.scalars)
            out += format("%-44s %.6g\n", key.c_str(), value);
        return out;
    }

    std::string out = "# paichar obs report (job log)\n";
    out += format(
        "jobs %llu  completed %llu  dropped %llu  ported %llu\n",
        static_cast<unsigned long long>(run.scalars.at("job.count")),
        static_cast<unsigned long long>(
            run.scalars.at("job.completed")),
        static_cast<unsigned long long>(
            run.scalars.at("job.dropped")),
        static_cast<unsigned long long>(
            run.scalars.at("job.ported")));
    out += format("%-22s %9s %10s %10s %10s %10s\n", "metric",
                  "count", "mean", "p50", "p95", "max");
    for (const Dist &d : jobDistributions(run.records)) {
        out += format(
            "%-22s %9llu %10.3f %10.3f %10.3f %10.3f\n", d.name,
            static_cast<unsigned long long>(d.values.size()),
            meanOf(d.values), percentile(d.values, 0.5),
            percentile(d.values, 0.95),
            d.values.empty() ? 0.0 : d.values.back());
    }
    PhaseShares ph = phaseShares(run.records);
    if (ph.any) {
        out += format(
            "phase shares (mean): Td %.1f%%  Tc %.1f%%  Tw %.1f%%\n",
            ph.td * 100.0, ph.tc * 100.0, ph.tw * 100.0);
    }
    return out;
}

DiffResult
diffRuns(const RunData &a, const RunData &b, double tolerance_pct)
{
    DiffResult out;
    out.tolerance_pct = tolerance_pct;
    for (const auto &[key, av] : a.scalars) {
        auto it = b.scalars.find(key);
        if (it == b.scalars.end()) {
            out.only_in_a.push_back(key);
            continue;
        }
        DiffEntry e;
        e.key = key;
        e.a = av;
        e.b = it->second;
        if (e.a == 0.0) {
            e.delta_pct =
                e.b == 0.0
                    ? 0.0
                    : std::numeric_limits<double>::infinity();
        } else {
            e.delta_pct = (e.b - e.a) / std::fabs(e.a) * 100.0;
        }
        e.violation = std::fabs(e.delta_pct) > tolerance_pct;
        if (e.violation)
            out.regression = true;
        out.entries.push_back(std::move(e));
    }
    for (const auto &[key, bv] : b.scalars) {
        (void)bv;
        if (!a.scalars.count(key))
            out.only_in_b.push_back(key);
    }
    return out;
}

std::string
renderDiff(const DiffResult &diff)
{
    std::string out = format("# paichar obs diff (tolerance %.6g%%)\n",
                             diff.tolerance_pct);
    out += format("%-38s %12s %12s %9s\n", "key", "a", "b", "delta%");
    size_t violations = 0;
    for (const DiffEntry &e : diff.entries) {
        std::string delta =
            std::isinf(e.delta_pct) ? std::string("     +inf")
                                    : format("%+9.1f", e.delta_pct);
        out += format("%-38s %12.6g %12.6g %s%s\n", e.key.c_str(),
                      e.a, e.b, delta.c_str(),
                      e.violation ? "  VIOLATION" : "");
        if (e.violation)
            ++violations;
    }
    for (const std::string &key : diff.only_in_a)
        out += "only in a: " + key + "\n";
    for (const std::string &key : diff.only_in_b)
        out += "only in b: " + key + "\n";
    if (diff.regression) {
        out += format("REGRESSION: %zu of %zu shared scalars past "
                      "tolerance\n",
                      violations, diff.entries.size());
    } else {
        out += format("ok: %zu shared scalars within tolerance\n",
                      diff.entries.size());
    }
    return out;
}

std::string
topText(const RunData &run, size_t n)
{
    std::vector<const JobRecord *> jobs;
    for (const JobRecord &r : run.records)
        if (r.status == "completed")
            jobs.push_back(&r);
    std::sort(jobs.begin(), jobs.end(),
              [](const JobRecord *a, const JobRecord *b) {
                  double ra = a->runSeconds(), rb = b->runSeconds();
                  if (ra != rb)
                      return ra > rb;
                  return a->job_id < b->job_id;
              });
    if (jobs.size() > n)
        jobs.resize(n);

    std::string out =
        format("# paichar obs top (%zu slowest jobs by run_s)\n",
               jobs.size());
    out += format("%8s %-16s %-20s %10s %10s %10s %9s %-5s\n",
                  "job_id", "name", "arch", "run_s", "step_s",
                  "queue_s", "skew%", "phase");
    for (const JobRecord *r : jobs) {
        const char *phase = "-";
        double td = r->sim_td_s, tc = r->sim_tc_s, tw = r->sim_tw_s;
        if (td + tc + tw > 0.0)
            phase = (tc >= td && tc >= tw) ? "Tc"
                    : (td >= tw)           ? "Td"
                                           : "Tw";
        const std::string &arch =
            r->executed_arch.empty() ? r->arch : r->executed_arch;
        out += format(
            "%8lld %-16s %-20s %10.3f %10.6f %10.3f %+9.1f %-5s\n",
            static_cast<long long>(r->job_id),
            r->name.empty() ? "-" : r->name.c_str(), arch.c_str(),
            r->runSeconds(), r->sim_step_s, r->queueSeconds(),
            r->skewPct(), phase);
    }

    // Aggregate phase split: each job's running time divided in its
    // simulated phase proportions, summed over all completed jobs.
    double total = 0.0, ptd = 0.0, ptc = 0.0, ptw = 0.0;
    for (const JobRecord &r : run.records) {
        if (r.status != "completed")
            continue;
        double sum = r.sim_td_s + r.sim_tc_s + r.sim_tw_s;
        double runtime = r.runSeconds();
        total += runtime;
        if (sum > 0.0) {
            ptd += runtime * r.sim_td_s / sum;
            ptc += runtime * r.sim_tc_s / sum;
            ptw += runtime * r.sim_tw_s / sum;
        }
    }
    if (total > 0.0) {
        out += format(
            "phase totals: Td %.3fs (%.1f%%)  Tc %.3fs (%.1f%%)  "
            "Tw %.3fs (%.1f%%)\n",
            ptd, ptd / total * 100.0, ptc, ptc / total * 100.0, ptw,
            ptw / total * 100.0);
    }
    return out;
}

} // namespace paichar::obs
