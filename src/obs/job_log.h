/**
 * @file
 * Per-job structured telemetry: the run-metadata the simulators emit
 * about themselves (DESIGN.md Sec 10).
 *
 * The paper's characterization pipeline ingests TensorFlow
 * run-metadata profiles; this module makes our own simulators produce
 * the equivalent. A `JobRecord` captures one job's full lifecycle --
 * submit, queue, placement, the per-step Td/Tc/Tw phase execution and
 * completion -- *and* the analytical model's predicted breakdown for
 * the same job, so predicted-vs-simulated skew is a recorded
 * first-class quantity rather than something recomputed after the
 * fact.
 *
 * Recording follows the Span-buffer discipline: `recordJob()` appends
 * to a per-thread buffer (one uncontended mutex per buffer, no
 * allocation beyond the vector push), gated on a relaxed-atomic
 * active flag so an inactive call site costs a load and a branch.
 * `collectJobLog()` merges every buffer and sorts by (job_id, seq),
 * which makes the exported log deterministic for any thread count:
 * job ids are unique within a trace, and the global sequence number
 * breaks ties for sources that reuse an id.
 *
 * Exports:
 *  - `renderJobLogJsonl()`: the versioned schema-v1 JSONL
 *    "run-metadata" file (`--job-log FILE`), one self-describing
 *    object per line, round-trippable through `parseJobLogJsonl()`;
 *  - `renderJobChromeTrace()`: Chrome trace-event JSON where job
 *    spans sit on per-worker (server) tracks with their Td/Tc/Tw
 *    phase slices nested inside (`--job-trace FILE`).
 *
 * Schema v1 field reference lives in DESIGN.md Sec 10.
 */

#ifndef PAICHAR_OBS_JOB_LOG_H
#define PAICHAR_OBS_JOB_LOG_H

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace paichar::obs {

namespace detail {
extern std::atomic<bool> g_job_log_active;
} // namespace detail

/** Schema identifier emitted (and required) on every JSONL record. */
inline constexpr const char *kJobLogSchema = "paichar.job.v1";

/** One job's lifecycle, as recorded by a simulator. */
struct JobRecord
{
    /** Trace job id; unique per run for clustersim sources. */
    int64_t job_id = 0;
    /** Optional human label (case-study model name); may be empty. */
    std::string name;
    /** Which simulator produced this record ("clustersim", "testbed"). */
    std::string source;
    /** "completed" or "dropped" (admission-rejected, never ran). */
    std::string status = "completed";
    /** Architecture as submitted. */
    std::string arch;
    /** Architecture actually executed (after porting/clamping). */
    std::string executed_arch;
    /** True when a PS/Worker job was ported to AllReduce-Local. */
    bool ported = false;
    /** Replicas actually executed. */
    int num_cnodes = 0;
    /** GPUs occupied while running. */
    int gpus = 0;
    /** First server of the placement; -1 when not applicable. */
    int server = -1;
    /** Training length in steps. */
    int64_t num_steps = 1;
    /** Placement attempts before the job started (>= 1), 0 if dropped. */
    int64_t placement_attempts = 0;

    /** Lifecycle timestamps in simulated seconds. */
    double submit_s = 0.0;
    double start_s = 0.0;
    double finish_s = 0.0;

    /** Analytical per-step prediction for the *submitted* job. */
    double pred_td_s = 0.0;
    double pred_tc_flops_s = 0.0;
    double pred_tc_mem_s = 0.0;
    double pred_tw_s = 0.0;
    double pred_step_s = 0.0;

    /** Simulated/executed per-step phase times. */
    double sim_td_s = 0.0;
    double sim_tc_s = 0.0;
    double sim_tw_s = 0.0;
    double sim_step_s = 0.0;

    /** Queue wait in simulated seconds. */
    double queueSeconds() const { return start_s - submit_s; }

    /** Running time in simulated seconds. */
    double runSeconds() const { return finish_s - start_s; }

    /** Predicted-vs-simulated step-time skew in percent (0 when no
     * prediction was recorded). */
    double
    skewPct() const
    {
        return pred_step_s > 0.0
                   ? (sim_step_s / pred_step_s - 1.0) * 100.0
                   : 0.0;
    }
};

/** True while job recording is active. One relaxed load. */
inline bool
jobLogActive()
{
    return detail::g_job_log_active.load(std::memory_order_relaxed);
}

/** Clear all per-thread job buffers and begin recording. */
void startJobLog();

/** Stop recording; captured records remain collectable. */
void stopJobLog();

/** Append one record to the calling thread's buffer (no-op when
 * recording is inactive). */
void recordJob(JobRecord rec);

/**
 * Merge every thread's records into (job_id, seq) order -- the
 * deterministic export order -- leaving the buffers untouched. Call
 * after stopJobLog(), while no recording site is in flight.
 */
std::vector<JobRecord> collectJobLog();

/** The schema-v1 JSONL document: one object per line, fixed key
 * order, shortest-round-trip numbers. */
std::string renderJobLogJsonl(const std::vector<JobRecord> &records);

/** Result of parsing a JSONL job log. */
struct JobLogParse
{
    bool ok = true;
    /** "line N: ..." on failure. */
    std::string error;
    std::vector<JobRecord> records;
};

/**
 * Parse a schema-v1 JSONL job log (the renderJobLogJsonl() format;
 * unknown keys are ignored for forward compatibility, an unknown
 * schema value is an error). Blank lines are skipped.
 * renderJobLogJsonl(parse(text).records) == text for any text this
 * renderer produced.
 */
JobLogParse parseJobLogJsonl(std::string_view text);

/**
 * Chrome trace-event JSON of a job log: one track per worker (server
 * for clustersim records, a single "testbed" track otherwise), each
 * completed job an "X" span over its running interval with its
 * Td/Tc/Tw phase slices nested inside (scaled to the simulated phase
 * proportions), queue wait and skew attached as args. Loadable in
 * Perfetto or chrome://tracing; dropped jobs are skipped.
 */
std::string renderJobChromeTrace(const std::vector<JobRecord> &records);

} // namespace paichar::obs

#endif // PAICHAR_OBS_JOB_LOG_H
