/**
 * @file
 * Analysis toolchain over recorded runs: the library behind the
 * `paichar obs` CLI family (report / diff / top).
 *
 * A "run" here is a file a previous invocation produced: either a
 * schema-v1 JSONL job log (`--job-log`) or a metrics dump
 * (`--metrics`, in summary-text or OpenMetrics form). `loadRunData()`
 * sniffs the format, and every loaded run exposes a flat
 * name -> value scalar map -- job logs contribute derived
 * distribution statistics (`job.queue_s.p95`, ...), metrics dumps
 * contribute their counters/gauges/histogram summaries -- so two runs
 * of either kind diff uniformly: `diffRuns()` flags any shared scalar
 * whose relative change exceeds a tolerance, which is the CI
 * perf-regression gate (DESIGN.md Sec 10).
 *
 * All rendering is deterministic: fixed column widths, fixed key
 * order (sorted maps), snprintf-fixed decimals.
 */

#ifndef PAICHAR_OBS_ANALYZE_H
#define PAICHAR_OBS_ANALYZE_H

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "job_log.h"

namespace paichar::obs {

/** One loaded run: its kind, records (job logs only) and scalars. */
struct RunData
{
    enum class Kind
    {
        JobLog,  ///< schema-v1 JSONL job log
        Metrics, ///< metrics dump (summary text or OpenMetrics)
    };

    Kind kind = Kind::Metrics;
    /** Parsed job records; empty for metrics dumps. */
    std::vector<JobRecord> records;
    /** Flat scalar view of the run, the diffable surface. */
    std::map<std::string, double> scalars;
};

/** Result of loading a run file's contents. */
struct RunLoad
{
    bool ok = true;
    std::string error;
    RunData data;
};

/**
 * Detect and parse a run file: a leading '{' means a JSONL job log, a
 * `# paichar metrics` header means summary text, `# TYPE`/`# EOF`
 * markers mean OpenMetrics. Anything else is an error.
 */
RunLoad loadRunData(std::string_view text);

/**
 * Human summary of a run. For a job log: lifecycle counts, a
 * count/mean/p50/p95/max table over queue/run/step/skew/attempt
 * distributions and the mean Td/Tc/Tw phase shares. For a metrics
 * dump: the sorted scalar table.
 */
std::string reportText(const RunData &run);

/** One compared scalar in a diff. */
struct DiffEntry
{
    std::string key;
    double a = 0.0;
    double b = 0.0;
    /** Relative change in percent ((b-a)/|a|*100; +inf from zero). */
    double delta_pct = 0.0;
    /** True when |delta_pct| exceeded the tolerance. */
    bool violation = false;
};

/** Result of diffing two runs. */
struct DiffResult
{
    /** Shared keys in sorted order. */
    std::vector<DiffEntry> entries;
    /** Keys present in only one run (informational, never fatal). */
    std::vector<std::string> only_in_a;
    std::vector<std::string> only_in_b;
    /** True when any entry violated the tolerance. */
    bool regression = false;
    double tolerance_pct = 0.0;
};

/**
 * Compare every scalar the two runs share. A scalar violates when its
 * relative change in either direction exceeds @p tolerance_pct (a
 * change from exactly zero to nonzero is always a violation). Keys
 * present in only one run are reported but never violate, so adding a
 * metric does not break an existing baseline.
 */
DiffResult diffRuns(const RunData &a, const RunData &b,
                    double tolerance_pct);

/** Render a diff as an aligned table plus a one-line verdict. */
std::string renderDiff(const DiffResult &diff);

/**
 * The slowest-jobs table (by running time, descending; job id breaks
 * ties) over the top @p n completed jobs, with each job's dominant
 * simulated phase, followed by the aggregate per-phase time split.
 * Requires a job-log run (Kind::JobLog).
 */
std::string topText(const RunData &run, size_t n);

} // namespace paichar::obs

#endif // PAICHAR_OBS_ANALYZE_H
